package autograd

import (
	"math"
	"math/rand"
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/tensor"
)

// gradCheck verifies the analytic gradient of loss() with respect to each
// parameter tensor using central finite differences.
func gradCheck(t *testing.T, name string, params []*Value, loss func() *Value, tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	l := loss()
	l.Backward()
	analytic := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if p.Grad == nil {
			t.Fatalf("%s: param %d has nil grad", name, i)
		}
		analytic[i] = p.Grad.Clone()
	}
	const eps = 1e-2
	for pi, p := range params {
		for i := range p.T.Data() {
			orig := p.T.Data()[i]
			p.T.Data()[i] = orig + eps
			plus := float64(loss().T.Data()[0])
			p.T.Data()[i] = orig - eps
			minus := float64(loss().T.Data()[0])
			p.T.Data()[i] = orig
			numeric := (plus - minus) / (2 * eps)
			a := float64(analytic[pi].Data()[i])
			if math.Abs(a-numeric) > tol*(1+math.Abs(a)+math.Abs(numeric)) {
				t.Fatalf("%s param %d grad[%d]: analytic %v vs numeric %v", name, pi, i, a, numeric)
			}
		}
	}
}

func TestAddMulScaleGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	at := tensor.Randn(rng, 1, 3, 4)
	bt := tensor.Randn(rng, 1, 3, 4)
	a, b := Leaf(at, true), Leaf(bt, true)
	gradCheck(t, "add-mul-scale", []*Value{a, b}, func() *Value {
		return Mean(Scale(Mul(Add(a, b), Sub(a, b)), 0.5))
	}, 1e-3)
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Leaf(tensor.Randn(rng, 1, 3, 4), true)
	b := Leaf(tensor.Randn(rng, 1, 4, 2), true)
	gradCheck(t, "matmul", []*Value{a, b}, func() *Value {
		return Mean(MatMul(a, b))
	}, 1e-3)
}

func TestActivationGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name string
		f    func(*Value) *Value
	}{
		{"sigmoid", Sigmoid},
		{"swish", Swish},
		{"relu", ReLU},
	} {
		x := Leaf(tensor.Randn(rng, 1, 2, 5), true)
		// Shift values away from 0 where ReLU is non-differentiable.
		for i := range x.T.Data() {
			if v := x.T.Data()[i]; v > -0.05 && v < 0.05 {
				x.T.Data()[i] = 0.3
			}
		}
		gradCheck(t, tc.name, []*Value{x}, func() *Value {
			return Mean(tc.f(x))
		}, 2e-3)
	}
}

func TestConv2DGradViaTape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Leaf(tensor.Randn(rng, 1, 1, 2, 5, 5), true)
	w := Leaf(tensor.Randn(rng, 0.5, 3, 2, 3, 3), true)
	spec := tensor.ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	gradCheck(t, "conv2d", []*Value{x, w}, func() *Value {
		return Mean(Conv2D(x, w, spec, bf16.FP32Policy, nil))
	}, 2e-3)
}

func TestDepthwiseConvGradViaTape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := Leaf(tensor.Randn(rng, 1, 1, 3, 5, 5), true)
	w := Leaf(tensor.Randn(rng, 0.5, 3, 1, 3, 3), true)
	spec := tensor.ConvSpec{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	gradCheck(t, "dwconv", []*Value{x, w}, func() *Value {
		return Mean(DepthwiseConv2D(x, w, spec, bf16.FP32Policy))
	}, 2e-3)
}

func TestChannelOpsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Leaf(tensor.Randn(rng, 1, 2, 3, 2, 2), true)
	b := Leaf(tensor.Randn(rng, 1, 3), true)
	s := Leaf(tensor.Randn(rng, 1, 2, 3), true)
	gradCheck(t, "addchannel+mulnc+gap", []*Value{x, b, s}, func() *Value {
		y := AddChannel(x, b)
		y = MulChannelNC(y, s)
		return Mean(GlobalAvgPool(y))
	}, 2e-3)
}

func TestAddRowBiasGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := Leaf(tensor.Randn(rng, 1, 4, 3), true)
	b := Leaf(tensor.Randn(rng, 1, 3), true)
	gradCheck(t, "addrowbias", []*Value{x, b}, func() *Value {
		return Mean(Swish(AddRowBias(x, b)))
	}, 2e-3)
}

func TestSoftmaxCrossEntropyGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := Leaf(tensor.Randn(rng, 1, 4, 5), true)
	labels := []int{0, 2, 4, 1}
	for _, smoothing := range []float32{0, 0.1} {
		gradCheck(t, "softmax_ce", []*Value{logits}, func() *Value {
			return SoftmaxCrossEntropy(logits, labels, smoothing)
		}, 2e-3)
	}
}

func TestSoftmaxCrossEntropyValue(t *testing.T) {
	// Uniform logits over K classes must give loss = log(K) at smoothing 0.
	k := 8
	logits := Leaf(tensor.New(2, k), false)
	// requiresGrad=false leaf: loss should not require grad either.
	l := SoftmaxCrossEntropy(logits, []int{3, 5}, 0)
	want := math.Log(float64(k))
	if got := float64(l.T.Data()[0]); math.Abs(got-want) > 1e-5 {
		t.Fatalf("uniform CE = %v, want log(%d) = %v", got, k, want)
	}
	if l.RequiresGrad() {
		t.Fatal("loss of non-grad leaf must not require grad")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar must panic")
		}
	}()
	v := Leaf(tensor.New(2, 2), true)
	Add(v, v).Backward()
}

func TestDiamondGraphAccumulates(t *testing.T) {
	// y = x*x + x*x: gradient must be 4x, exercising multi-consumer
	// accumulation ordering in the tape.
	x := Leaf(tensor.FromSlice([]float32{3}, 1), true)
	a := Mul(x, x)
	b := Mul(x, x)
	y := Add(a, b)
	Sum(y).Backward()
	if got := x.Grad.Data()[0]; got != 12 {
		t.Fatalf("diamond grad = %v, want 12", got)
	}
}

func TestReusedNodeGrad(t *testing.T) {
	// z = (x + x) * x = 2x^2, dz/dx = 4x.
	x := Leaf(tensor.FromSlice([]float32{2}, 1), true)
	z := Mul(Add(x, x), x)
	Sum(z).Backward()
	if got := x.Grad.Data()[0]; got != 8 {
		t.Fatalf("reused-node grad = %v, want 8", got)
	}
}

func TestZeroGradAndReuse(t *testing.T) {
	x := Leaf(tensor.FromSlice([]float32{1}, 1), true)
	Sum(Scale(x, 3)).Backward()
	if x.Grad.Data()[0] != 3 {
		t.Fatalf("first backward grad = %v", x.Grad.Data()[0])
	}
	x.ZeroGrad()
	Sum(Scale(x, 5)).Backward()
	if x.Grad.Data()[0] != 5 {
		t.Fatalf("after ZeroGrad, grad = %v, want 5", x.Grad.Data()[0])
	}
}

func TestConstantBlocksGradient(t *testing.T) {
	x := Constant(tensor.FromSlice([]float32{2}, 1))
	y := Leaf(tensor.FromSlice([]float32{3}, 1), true)
	z := Mul(x, y)
	Sum(z).Backward()
	if x.Grad != nil {
		t.Fatal("constant must not accumulate gradient")
	}
	if y.Grad.Data()[0] != 2 {
		t.Fatalf("y grad = %v, want 2", y.Grad.Data()[0])
	}
}

func TestBF16PolicyChangesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := Leaf(tensor.Randn(rng, 1, 1, 2, 4, 4), false)
	w := Leaf(tensor.Randn(rng, 1, 2, 2, 3, 3), false)
	spec := tensor.ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	fp32 := Conv2D(x, w, spec, bf16.FP32Policy, nil)
	mixed := Conv2D(x, w, spec, bf16.DefaultPolicy, nil)
	// Outputs must be close (bf16 has ~2^-8 relative error) but generally
	// not bit-identical.
	var differs bool
	for i := range fp32.T.Data() {
		a, b := float64(fp32.T.Data()[i]), float64(mixed.T.Data()[i])
		if math.Abs(a-b) > 0.15*(1+math.Abs(a)) {
			t.Fatalf("bf16 conv diverged at %d: %v vs %v", i, a, b)
		}
		if a != b {
			differs = true
		}
	}
	if !differs {
		t.Fatal("bf16 policy had no effect on conv output")
	}
}

func TestArgmax(t *testing.T) {
	logits := tensor.FromSlice([]float32{0.1, 0.9, 0.2, 3, -1, 0.5}, 2, 3)
	got := Argmax(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v, want [1 0]", got)
	}
}
