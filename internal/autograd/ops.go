package autograd

import (
	"math"

	"effnetscale/internal/bf16"
	"effnetscale/internal/tensor"
)

// --- Activations -----------------------------------------------------------

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Sigmoid applies the logistic function element-wise.
func Sigmoid(a *Value) *Value {
	out := tensor.Apply(a.T, sigmoid)
	return NewOp("sigmoid", out, []*Value{a}, func(g *tensor.Tensor) {
		dx := tensor.New(out.Shape()...)
		od, gd, dd := out.Data(), g.Data(), dx.Data()
		for i := range dd {
			s := od[i]
			dd[i] = gd[i] * s * (1 - s)
		}
		a.Accumulate(dx)
	})
}

// Swish applies x*sigmoid(x) (SiLU), EfficientNet's activation.
func Swish(a *Value) *Value {
	in := a.T.Data()
	out := tensor.New(a.T.Shape()...)
	sig := make([]float32, len(in))
	for i, x := range in {
		s := sigmoid(x)
		sig[i] = s
		out.Data()[i] = x * s
	}
	return NewOp("swish", out, []*Value{a}, func(g *tensor.Tensor) {
		dx := tensor.New(out.Shape()...)
		gd, dd := g.Data(), dx.Data()
		for i := range dd {
			s := sig[i]
			x := in[i]
			// d/dx [x·σ(x)] = σ(x) + x·σ(x)(1−σ(x)) = σ(x)(1 + x(1−σ(x)))
			dd[i] = gd[i] * s * (1 + x*(1-s))
		}
		a.Accumulate(dx)
	})
}

// ReLU applies max(0, x) element-wise.
func ReLU(a *Value) *Value {
	out := tensor.Apply(a.T, func(x float32) float32 {
		if x < 0 {
			return 0
		}
		return x
	})
	in := a.T.Data()
	return NewOp("relu", out, []*Value{a}, func(g *tensor.Tensor) {
		dx := tensor.New(out.Shape()...)
		gd, dd := g.Data(), dx.Data()
		for i := range dd {
			if in[i] > 0 {
				dd[i] = gd[i]
			}
		}
		a.Accumulate(dx)
	})
}

// --- Convolutions with mixed-precision policy -------------------------------

// maybeBF16 returns t rounded to bfloat16 precision when enabled, else t.
// Emulates feeding the MXU bf16 operands (paper §3.5).
func maybeBF16(t *tensor.Tensor, enabled bool) *tensor.Tensor {
	if !enabled {
		return t
	}
	r := tensor.New(t.Shape()...)
	bf16.RoundSlice(r.Data(), t.Data())
	return r
}

// Conv2D convolves x with w under spec. When policy.ConvBF16 is set, inputs
// and weights are rounded to bfloat16 before the kernel runs (forward and
// backward), emulating the paper's mixed-precision training. Accumulation
// stays in fp32, as on TPU. Kernel temporaries come from sc (nil = the
// process-wide arena); engines pass their own so working sets stay separate.
func Conv2D(x, w *Value, spec tensor.ConvSpec, policy bf16.Policy, sc *tensor.Scratch) *Value {
	xc := maybeBF16(x.T, policy.ConvBF16)
	wc := maybeBF16(w.T, policy.ConvBF16)
	out := tensor.Conv2DScratch(xc, wc, spec, sc)
	return NewOp("conv2d", out, []*Value{x, w}, func(g *tensor.Tensor) {
		gc := maybeBF16(g, policy.ConvBF16)
		dx, dw := tensor.Conv2DBackwardScratch(xc, wc, gc, spec, sc)
		x.Accumulate(dx)
		w.Accumulate(dw)
	})
}

// DepthwiseConv2D applies a depthwise convolution under the same
// mixed-precision policy as Conv2D.
func DepthwiseConv2D(x, w *Value, spec tensor.ConvSpec, policy bf16.Policy) *Value {
	xc := maybeBF16(x.T, policy.ConvBF16)
	wc := maybeBF16(w.T, policy.ConvBF16)
	out := tensor.DepthwiseConv2D(xc, wc, spec)
	return NewOp("dwconv2d", out, []*Value{x, w}, func(g *tensor.Tensor) {
		gc := maybeBF16(g, policy.ConvBF16)
		dx, dw := tensor.DepthwiseConv2DBackward(xc, wc, gc, spec)
		x.Accumulate(dx)
		w.Accumulate(dw)
	})
}

// --- Loss -------------------------------------------------------------------

// SoftmaxCrossEntropy computes the mean cross-entropy between logits [N,K]
// and integer labels, with optional label smoothing (EfficientNet trains with
// smoothing 0.1). Returns a scalar Value of shape [1].
func SoftmaxCrossEntropy(logits *Value, labels []int, smoothing float32) *Value {
	n, k := logits.T.Dim(0), logits.T.Dim(1)
	if len(labels) != n {
		panic("autograd: SoftmaxCrossEntropy label count mismatch")
	}
	probs := tensor.New(n, k)
	var loss float64
	onVal := 1 - smoothing + smoothing/float32(k)
	offVal := smoothing / float32(k)
	for i := 0; i < n; i++ {
		row := logits.T.Data()[i*k : (i+1)*k]
		prow := probs.Data()[i*k : (i+1)*k]
		// Stable log-softmax.
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[j] = float32(e)
			sum += e
		}
		logZ := math.Log(sum) + float64(maxv)
		for j := range prow {
			prow[j] = float32(float64(prow[j]) / sum)
		}
		// loss_i = -sum_j target_j * log p_j
		for j := 0; j < k; j++ {
			target := offVal
			if j == labels[i] {
				target = onVal
			}
			if target != 0 {
				logp := float64(row[j]) - logZ
				loss -= float64(target) * logp
			}
		}
	}
	out := tensor.FromSlice([]float32{float32(loss / float64(n))}, 1)
	return NewOp("softmax_ce", out, []*Value{logits}, func(g *tensor.Tensor) {
		scale := g.Data()[0] / float32(n)
		dl := tensor.New(n, k)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				target := offVal
				if j == labels[i] {
					target = onVal
				}
				dl.Data()[i*k+j] = scale * (probs.At(i, j) - target)
			}
		}
		logits.Accumulate(dl)
	})
}

// Argmax returns the index of the max logit per row of a [N,K] tensor.
func Argmax(t *tensor.Tensor) []int {
	n, k := t.Dim(0), t.Dim(1)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best, bi := t.Data()[i*k], 0
		for j := 1; j < k; j++ {
			if v := t.Data()[i*k+j]; v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}
