package autograd

import (
	"math"
	"math/rand"
	"testing"

	"effnetscale/internal/tensor"
)

func TestReshapeGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := Leaf(tensor.Randn(rng, 1, 2, 6), true)
	gradCheck(t, "reshape", []*Value{x}, func() *Value {
		y := Reshape(x, 3, 4)
		return Mean(Swish(y))
	}, 2e-3)
}

func TestSumGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := Leaf(tensor.Randn(rng, 1, 5), true)
	gradCheck(t, "sum", []*Value{x}, func() *Value {
		return Sum(Mul(x, x))
	}, 2e-3)
}

func TestGlobalAvgPoolValues(t *testing.T) {
	// [1,2,2,2] with known means per channel.
	x := Constant(tensor.FromSlice([]float32{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 1, 2, 2, 2))
	y := GlobalAvgPool(x)
	if y.T.At(0, 0) != 2.5 || y.T.At(0, 1) != 10 {
		t.Fatalf("GAP values wrong: %v", y.T.Data())
	}
}

func TestSwishKnownValues(t *testing.T) {
	x := Constant(tensor.FromSlice([]float32{0}, 1))
	if got := Swish(x).T.Data()[0]; got != 0 {
		t.Fatalf("swish(0) = %v, want 0", got)
	}
	// swish(x) → x for large x.
	x2 := Constant(tensor.FromSlice([]float32{20}, 1))
	if got := Swish(x2).T.Data()[0]; math.Abs(float64(got-20)) > 1e-3 {
		t.Fatalf("swish(20) = %v, want ≈20", got)
	}
	// Sigmoid symmetry: σ(-x) = 1 - σ(x).
	a := Sigmoid(Constant(tensor.FromSlice([]float32{1.7}, 1))).T.Data()[0]
	b := Sigmoid(Constant(tensor.FromSlice([]float32{-1.7}, 1))).T.Data()[0]
	if math.Abs(float64(a+b-1)) > 1e-6 {
		t.Fatalf("sigmoid symmetry violated: %v + %v != 1", a, b)
	}
}

func TestSoftmaxCELabelSmoothingRaisesMinimumLoss(t *testing.T) {
	// With smoothing, even a perfectly confident correct prediction keeps a
	// positive loss floor — the regularization effect.
	logits := Leaf(tensor.FromSlice([]float32{30, 0, 0, 0}, 1, 4), false)
	labels := []int{0}
	hard := SoftmaxCrossEntropy(logits, labels, 0).T.Data()[0]
	smooth := SoftmaxCrossEntropy(logits, labels, 0.1).T.Data()[0]
	if hard > 1e-3 {
		t.Fatalf("confident correct prediction should have ~0 hard loss, got %v", hard)
	}
	if smooth < 0.5 {
		t.Fatalf("smoothed loss floor too low: %v", smooth)
	}
}

func TestSoftmaxCEBatchMeanSemantics(t *testing.T) {
	// Loss over a batch must be the mean of per-sample losses.
	l1 := tensor.FromSlice([]float32{2, 0, 0}, 1, 3)
	l2 := tensor.FromSlice([]float32{0, 0, 2}, 1, 3)
	both := tensor.FromSlice([]float32{2, 0, 0, 0, 0, 2}, 2, 3)
	a := SoftmaxCrossEntropy(Constant(l1), []int{0}, 0).T.Data()[0]
	b := SoftmaxCrossEntropy(Constant(l2), []int{1}, 0).T.Data()[0]
	ab := SoftmaxCrossEntropy(Constant(both), []int{0, 1}, 0).T.Data()[0]
	if math.Abs(float64(ab-(a+b)/2)) > 1e-6 {
		t.Fatalf("batch mean semantics violated: %v vs %v", ab, (a+b)/2)
	}
}

func TestMulChannelNCValues(t *testing.T) {
	x := Constant(tensor.Ones(2, 2, 1, 2))
	s := Constant(tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2))
	y := MulChannelNC(x, s)
	want := []float32{1, 1, 2, 2, 3, 3, 4, 4}
	for i, v := range y.T.Data() {
		if v != want[i] {
			t.Fatalf("MulChannelNC[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestLabelCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label count mismatch")
		}
	}()
	SoftmaxCrossEntropy(Constant(tensor.New(2, 3)), []int{0}, 0)
}
