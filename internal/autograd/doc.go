// Package autograd implements tape-based reverse-mode automatic
// differentiation over the tensor engine. A forward pass builds a DAG of
// Values; Backward on a scalar loss walks the DAG in reverse topological
// order, accumulating gradients into every Value that requires them.
//
// Seams: Value is the differentiable handle every layer produces and
// consumes; NewOp registers custom operators, which keeps the op set open —
// batch normalization (with its cross-replica statistics reduction, §3.4 of
// the paper) lives in package nn but plugs into this tape. Gradients
// accumulate across tapes, which is what makes gradient accumulation
// (replica.Config.GradAccumSteps, the paper's path to batch 65536 in §3.1)
// a pure consumer-side composition.
//
// Paper: the backward passes here produce the per-replica gradients whose
// all-reduce is the subject of the paper's communication analysis (§3.4,
// Table 1).
package autograd
