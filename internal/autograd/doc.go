// Package autograd implements tape-based reverse-mode automatic
// differentiation over the tensor engine. A forward pass builds a DAG of
// Values; Backward on a scalar loss walks the DAG in reverse topological
// order, accumulating gradients into every Value that requires them.
//
// Seams: Value is the differentiable handle every layer produces and
// consumes; NewOp registers custom operators, which keeps the op set open —
// batch normalization (with its cross-replica statistics reduction, §3.4 of
// the paper) lives in package nn but plugs into this tape. Gradients
// accumulate across tapes, which is what makes gradient accumulation
// (replica.Config.GradAccumSteps, the paper's path to batch 65536 in §3.1)
// a pure consumer-side composition.
//
// The grad-ready seam: a Tape owns the backward traversal. Leaves
// registered via Tape.Register fire the Tape.OnGradReady hook the moment
// their last gradient contribution of a pass lands — the sort refcounts
// each node's incoming edges and the reverse walk decrements them, so a
// parameter is provably final mid-backward, while the tape is still
// back-propagating through earlier layers. Registered leaves the graph
// never reaches fire after the walk, so every registered leaf fires exactly
// once per Backward. Value.BindGrad complements the hook: it pins a leaf's
// gradient to caller-owned storage (the engine's flattened reduction
// buffer), turning the first Accumulate into an in-place overwrite — no
// Clone, no per-step allocation, bit-for-bit the same result. The Tape also
// reuses its traversal arenas (order slice, DFS stack; visited marks are
// pass stamps on the nodes themselves) across steps.
//
// Paper: the backward passes here produce the per-replica gradients whose
// all-reduce is the subject of the paper's communication analysis (§3.4,
// Table 1); the grad-ready hooks are what lets the replica engine overlap
// that all-reduce with the backward pass itself rather than serializing it
// after (ROADMAP item 1).
package autograd
