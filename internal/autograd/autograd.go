package autograd

import (
	"fmt"

	"effnetscale/internal/tensor"
)

// Value is a node in the autodiff graph: a forward tensor plus the plumbing
// needed to propagate gradients to its parents.
type Value struct {
	// T holds the forward result. It must not be mutated after creation.
	T *tensor.Tensor
	// Grad accumulates dLoss/dT during Backward. It is nil until the first
	// contribution arrives and for Values that do not require gradients.
	Grad *tensor.Tensor

	requiresGrad bool
	parents      []*Value
	// back propagates this node's accumulated gradient into the parents.
	// nil for leaves.
	back func(grad *tensor.Tensor)
	op   string
}

// Leaf wraps t as a graph input. If requiresGrad is true, Backward will
// accumulate into its Grad (model parameters); otherwise the node blocks
// gradient flow (inputs, labels).
func Leaf(t *tensor.Tensor, requiresGrad bool) *Value {
	return &Value{T: t, requiresGrad: requiresGrad, op: "leaf"}
}

// Constant wraps t as a non-differentiable input.
func Constant(t *tensor.Tensor) *Value { return Leaf(t, false) }

// RequiresGrad reports whether gradients flow into this Value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// Op returns the name of the operator that produced this Value.
func (v *Value) Op() string { return v.op }

// ZeroGrad drops the accumulated gradient so the Value can be reused across
// steps (parameters are reused; activations are rebuilt each step).
func (v *Value) ZeroGrad() { v.Grad = nil }

// NewOp creates a Value produced by a custom operator. out is the forward
// result, parents are the graph inputs, and back receives dLoss/dout and must
// push contributions into each parent via Accumulate. back may be nil for
// non-differentiable ops. The node requires grad iff any parent does.
func NewOp(op string, out *tensor.Tensor, parents []*Value, back func(grad *tensor.Tensor)) *Value {
	req := false
	for _, p := range parents {
		if p.requiresGrad {
			req = true
			break
		}
	}
	v := &Value{T: out, requiresGrad: req, parents: parents, op: op}
	if req {
		v.back = back
	}
	return v
}

// Accumulate adds g into v's gradient if v requires one. Ops call this from
// their backward closures.
func (v *Value) Accumulate(g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	tensor.AddInto(v.Grad, g)
}

// Backward computes gradients of v (which must be a scalar: one element)
// with respect to every reachable Value that requires gradients.
func (v *Value) Backward() {
	if v.T.Len() != 1 {
		panic(fmt.Sprintf("autograd: Backward requires a scalar loss, got shape %v", v.T.Shape()))
	}
	if !v.requiresGrad {
		return // nothing depends on parameters
	}
	order := topoSort(v)
	seed := tensor.Ones(v.T.Shape()...)
	v.Grad = seed
	// Reverse topological order: every node's gradient is complete before
	// its back function runs.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.Grad != nil {
			n.back(n.Grad)
		}
	}
}

// topoSort returns nodes reachable from root in topological order
// (parents before children), using an iterative DFS to avoid deep recursion
// on very deep networks.
func topoSort(root *Value) []*Value {
	var order []*Value
	visited := make(map[*Value]bool)
	type frame struct {
		v    *Value
		next int
	}
	stack := []frame{{v: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.v.parents) {
			p := f.v.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{v: p})
			}
			continue
		}
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}
	return order
}

// --- Core differentiable operators ----------------------------------------

// Add returns a + b element-wise.
func Add(a, b *Value) *Value {
	out := tensor.Add(a.T, b.T)
	return NewOp("add", out, []*Value{a, b}, func(g *tensor.Tensor) {
		a.Accumulate(g)
		b.Accumulate(g)
	})
}

// Sub returns a - b element-wise.
func Sub(a, b *Value) *Value {
	out := tensor.Sub(a.T, b.T)
	return NewOp("sub", out, []*Value{a, b}, func(g *tensor.Tensor) {
		a.Accumulate(g)
		b.Accumulate(tensor.Scale(g, -1))
	})
}

// Mul returns the element-wise product a * b.
func Mul(a, b *Value) *Value {
	out := tensor.Mul(a.T, b.T)
	return NewOp("mul", out, []*Value{a, b}, func(g *tensor.Tensor) {
		a.Accumulate(tensor.Mul(g, b.T))
		b.Accumulate(tensor.Mul(g, a.T))
	})
}

// Scale returns a * s for scalar s.
func Scale(a *Value, s float32) *Value {
	out := tensor.Scale(a.T, s)
	return NewOp("scale", out, []*Value{a}, func(g *tensor.Tensor) {
		a.Accumulate(tensor.Scale(g, s))
	})
}

// Reshape returns a view of a with a new shape.
func Reshape(a *Value, shape ...int) *Value {
	out := a.T.Reshape(shape...)
	origShape := a.T.Shape()
	return NewOp("reshape", out, []*Value{a}, func(g *tensor.Tensor) {
		a.Accumulate(g.Reshape(origShape...))
	})
}

// MatMul returns a @ b for rank-2 operands.
func MatMul(a, b *Value) *Value {
	out := tensor.MatMul(a.T, b.T)
	return NewOp("matmul", out, []*Value{a, b}, func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.Accumulate(tensor.MatMulTB(g, b.T)) // dA = g @ Bᵀ
		}
		if b.requiresGrad {
			b.Accumulate(tensor.MatMulTA(a.T, g)) // dB = Aᵀ @ g
		}
	})
}

// AddChannel adds a per-channel bias b [C] to activations x [N,C,H,W].
func AddChannel(x, b *Value) *Value {
	out := tensor.AddChannel(x.T, b.T)
	return NewOp("addchannel", out, []*Value{x, b}, func(g *tensor.Tensor) {
		x.Accumulate(g)
		if b.requiresGrad {
			nc := tensor.SumChannelNC(g) // [N,C]
			n, c := nc.Dim(0), nc.Dim(1)
			db := tensor.New(c)
			for i := 0; i < n; i++ {
				for j := 0; j < c; j++ {
					db.Data()[j] += nc.At(i, j)
				}
			}
			b.Accumulate(db)
		}
	})
}

// AddRowBias adds bias b [M] to every row of x [N,M] (dense-layer bias).
func AddRowBias(x, b *Value) *Value {
	n, m := x.T.Dim(0), x.T.Dim(1)
	if b.T.Rank() != 1 || b.T.Dim(0) != m {
		panic(fmt.Sprintf("autograd: AddRowBias bias shape %v does not match [%d,%d]", b.T.Shape(), n, m))
	}
	out := tensor.New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.Data()[i*m+j] = x.T.Data()[i*m+j] + b.T.Data()[j]
		}
	}
	return NewOp("addrowbias", out, []*Value{x, b}, func(g *tensor.Tensor) {
		x.Accumulate(g)
		if b.requiresGrad {
			db := tensor.New(m)
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					db.Data()[j] += g.Data()[i*m+j]
				}
			}
			b.Accumulate(db)
		}
	})
}

// MulChannelNC scales x [N,C,H,W] by s [N,C] broadcast over H,W
// (squeeze-excitation's re-scaling).
func MulChannelNC(x, s *Value) *Value {
	out := tensor.MulChannelNC(x.T, s.T)
	return NewOp("mulchannelnc", out, []*Value{x, s}, func(g *tensor.Tensor) {
		if x.requiresGrad {
			x.Accumulate(tensor.MulChannelNC(g, s.T))
		}
		if s.requiresGrad {
			s.Accumulate(tensor.SumChannelNC(tensor.Mul(g, x.T)))
		}
	})
}

// GlobalAvgPool reduces x [N,C,H,W] to [N,C] by averaging over H and W.
func GlobalAvgPool(x *Value) *Value {
	_, _, h, w := x.T.Dim4()
	inv := 1 / float32(h*w)
	out := tensor.Scale(tensor.SumChannelNC(x.T), inv)
	xShape := x.T.Shape()
	return NewOp("gap", out, []*Value{x}, func(g *tensor.Tensor) {
		n, c := g.Dim(0), g.Dim(1)
		dx := tensor.New(xShape...)
		hw := h * w
		for nc := 0; nc < n*c; nc++ {
			gv := g.Data()[nc] * inv
			base := nc * hw
			for i := 0; i < hw; i++ {
				dx.Data()[base+i] = gv
			}
		}
		x.Accumulate(dx)
	})
}

// Mean returns the scalar mean of all elements of a, shaped [1].
func Mean(a *Value) *Value {
	n := a.T.Len()
	out := tensor.FromSlice([]float32{float32(a.T.Sum() / float64(n))}, 1)
	aShape := a.T.Shape()
	return NewOp("mean", out, []*Value{a}, func(g *tensor.Tensor) {
		gv := g.Data()[0] / float32(n)
		a.Accumulate(tensor.Full(gv, aShape...))
	})
}

// Sum returns the scalar sum of all elements of a, shaped [1].
func Sum(a *Value) *Value {
	out := tensor.FromSlice([]float32{float32(a.T.Sum())}, 1)
	aShape := a.T.Shape()
	return NewOp("sum", out, []*Value{a}, func(g *tensor.Tensor) {
		a.Accumulate(tensor.Full(g.Data()[0], aShape...))
	})
}
