package autograd

import (
	"fmt"
	"sync/atomic"

	"effnetscale/internal/tensor"
)

// Value is a node in the autodiff graph: a forward tensor plus the plumbing
// needed to propagate gradients to its parents.
type Value struct {
	// T holds the forward result. It must not be mutated after creation.
	T *tensor.Tensor
	// Grad accumulates dLoss/dT during Backward. It is nil until the first
	// contribution arrives and for Values that do not require gradients —
	// unless BindGrad pinned it to caller-owned storage, in which case it
	// is never nil and never reallocated.
	Grad *tensor.Tensor

	requiresGrad bool
	parents      []*Value
	// back propagates this node's accumulated gradient into the parents.
	// nil for leaves.
	back func(grad *tensor.Tensor)
	op   string

	// visit stamps the backward pass that last reached this node; stamps
	// come from a process-wide counter so passes over tapes that share
	// leaves (parameters accumulate across micro-batch tapes) can never
	// collide without any per-pass visited map.
	visit uint64
	// pending counts this node's not-yet-consumed incoming gradient edges
	// within the pass stamped in visit. A parameter leaf reaching zero has
	// received its last Accumulate of the pass — the grad-ready moment.
	pending int32
	// param marks leaves registered with a Tape (see Tape.Register).
	param bool
	// bound marks Grad as pinned storage (BindGrad): ZeroGrad keeps the
	// tensor and Accumulate writes through it instead of cloning.
	bound bool
	// fresh is true while a bound Grad holds no contribution of the
	// current accumulation window; the first Accumulate overwrites
	// (bit-for-bit what Clone used to produce) instead of adding.
	fresh bool
}

// Leaf wraps t as a graph input. If requiresGrad is true, Backward will
// accumulate into its Grad (model parameters); otherwise the node blocks
// gradient flow (inputs, labels).
func Leaf(t *tensor.Tensor, requiresGrad bool) *Value {
	return &Value{T: t, requiresGrad: requiresGrad, op: "leaf"}
}

// Constant wraps t as a non-differentiable input.
func Constant(t *tensor.Tensor) *Value { return Leaf(t, false) }

// RequiresGrad reports whether gradients flow into this Value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// Op returns the name of the operator that produced this Value.
func (v *Value) Op() string { return v.op }

// ZeroGrad drops the accumulated gradient so the Value can be reused across
// steps (parameters are reused; activations are rebuilt each step). A bound
// gradient (BindGrad) keeps its storage and is merely marked fresh — the
// owner of the storage decides whether stale bytes need clearing (a leaf the
// next backward never touches keeps whatever the buffer holds).
func (v *Value) ZeroGrad() {
	if v.bound {
		v.fresh = true
		return
	}
	v.Grad = nil
}

// BindGrad pins v's gradient to t for the rest of the Value's life: Grad is
// never nil again, ZeroGrad keeps the tensor, and the first Accumulate of
// each accumulation window overwrites it in place — no Clone, no per-step
// allocation. t may alias caller-owned storage (the engine binds every
// parameter into its flattened reduction buffer), and t's length must match
// the forward tensor's.
func (v *Value) BindGrad(t *tensor.Tensor) {
	if !v.requiresGrad {
		panic("autograd: BindGrad on a Value that does not require gradients")
	}
	if t.Len() != v.T.Len() {
		panic(fmt.Sprintf("autograd: BindGrad length %d does not match value length %d", t.Len(), v.T.Len()))
	}
	v.Grad = t
	v.bound = true
	v.fresh = true
}

// NewOp creates a Value produced by a custom operator. out is the forward
// result, parents are the graph inputs, and back receives dLoss/dout and must
// push contributions into each parent via Accumulate. back may be nil for
// non-differentiable ops. The node requires grad iff any parent does.
func NewOp(op string, out *tensor.Tensor, parents []*Value, back func(grad *tensor.Tensor)) *Value {
	req := false
	for _, p := range parents {
		if p.requiresGrad {
			req = true
			break
		}
	}
	v := &Value{T: out, requiresGrad: req, parents: parents, op: op}
	if req {
		v.back = back
	}
	return v
}

// Accumulate adds g into v's gradient if v requires one. Ops call this from
// their backward closures. A fresh bound gradient is overwritten in place —
// the same bits Clone used to produce, without the allocation.
func (v *Value) Accumulate(g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	if v.fresh {
		if g.Len() != v.Grad.Len() {
			panic(fmt.Sprintf("autograd: Accumulate length %d into bound gradient of length %d", g.Len(), v.Grad.Len()))
		}
		copy(v.Grad.Data(), g.Data())
		v.fresh = false
		return
	}
	tensor.AddInto(v.Grad, g)
}

// Backward computes gradients of v (which must be a scalar: one element)
// with respect to every reachable Value that requires gradients. Callers
// that need grad-ready hooks or want the traversal arenas reused across
// steps run the equivalent Tape.Backward instead.
func (v *Value) Backward() {
	var t Tape
	t.Backward(v)
}

// passCounter issues process-wide unique stamps for backward passes. A
// global counter (rather than a per-tape one) means parameters shared
// across tapes — gradient accumulation runs one tape per micro-batch over
// the same leaves — can never confuse one pass's visit marks for another's.
var passCounter atomic.Uint64

// frame is one suspended node of the iterative DFS in Tape.topo.
type frame struct {
	v    *Value
	next int
}

// Tape owns a backward traversal: reusable DFS arenas (no per-step visited
// map or order allocation) and the grad-ready seam. Leaves registered as
// parameters fire the OnGradReady hook the moment their last gradient
// contribution of a pass lands — while the pass is still back-propagating
// through earlier layers — which is what lets the engine hand gradient
// buckets to the reduction stream mid-backward (the paper's §3.4 overlap).
//
// A Tape is not safe for concurrent use, and a parameter leaf should be
// registered with exactly one Tape — the hook fires on whichever tape runs
// the pass.
type Tape struct {
	params  []*Value
	onReady func(*Value)

	// order and stack are the traversal arenas, reused across passes.
	order []*Value
	stack []frame
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Register marks leaves as parameters of this tape: each will fire the
// OnGradReady hook exactly once per Backward. Values must require gradients
// and must not be registered twice.
func (t *Tape) Register(vs ...*Value) {
	for _, v := range vs {
		if !v.requiresGrad {
			panic("autograd: Register on a Value that does not require gradients")
		}
		if v.param {
			panic("autograd: Value registered twice")
		}
		v.param = true
		t.params = append(t.params, v)
	}
}

// OnGradReady installs the grad-ready hook. It is called on the goroutine
// running Backward, once per registered leaf per pass: mid-walk the moment
// the leaf's last incoming gradient edge is consumed, or — for registered
// leaves the graph never reached (a frozen or unused parameter) — after the
// walk, in registration order. "Ready" means no further contribution can
// arrive this pass; a leaf the graph never touched is ready with whatever
// its gradient already holds.
func (t *Tape) OnGradReady(fn func(*Value)) { t.onReady = fn }

// Backward computes gradients of root (which must be a scalar) with respect
// to every reachable Value that requires gradients, firing grad-ready hooks
// along the way. Readiness is tracked by refcounting incoming edges during
// the topological sort and decrementing as the reverse walk consumes them —
// a leaf hits zero exactly when the back closure holding its final
// Accumulate has returned.
func (t *Tape) Backward(root *Value) {
	if root.T.Len() != 1 {
		panic(fmt.Sprintf("autograd: Backward requires a scalar loss, got shape %v", root.T.Shape()))
	}
	pass := passCounter.Add(1)
	if root.requiresGrad {
		t.topo(root, pass)
		root.Grad = tensor.Ones(root.T.Shape()...)
		// Reverse topological order: every node's gradient is complete
		// before its back function runs.
		for i := len(t.order) - 1; i >= 0; i-- {
			n := t.order[i]
			if n.back != nil && n.Grad != nil {
				n.back(n.Grad)
			}
			// Consume n's outgoing edges even when back was skipped: the
			// parents' refcounts counted every edge the sort traversed.
			for _, p := range n.parents {
				if !p.requiresGrad || p.visit != pass {
					continue
				}
				p.pending--
				if p.pending == 0 && p.param && p.back == nil && t.onReady != nil {
					t.onReady(p)
				}
			}
		}
	}
	if t.onReady != nil {
		for _, p := range t.params {
			if p.visit != pass {
				t.onReady(p)
			}
		}
	}
}

// topo fills t.order with the nodes reachable from root in topological
// order (parents before children), stamping each with the pass and counting
// its incoming gradient edges into pending. Iterative DFS — deep networks
// must not recurse — over arenas reused across passes.
func (t *Tape) topo(root *Value, pass uint64) {
	t.order = t.order[:0]
	t.stack = append(t.stack[:0], frame{v: root})
	root.visit = pass
	root.pending = 0
	for len(t.stack) > 0 {
		f := &t.stack[len(t.stack)-1]
		if f.next < len(f.v.parents) {
			p := f.v.parents[f.next]
			f.next++
			if !p.requiresGrad {
				continue
			}
			if p.visit != pass {
				p.visit = pass
				p.pending = 0
				t.stack = append(t.stack, frame{v: p})
			}
			p.pending++
			continue
		}
		t.order = append(t.order, f.v)
		t.stack = t.stack[:len(t.stack)-1]
	}
}

// --- Core differentiable operators ----------------------------------------

// Add returns a + b element-wise.
func Add(a, b *Value) *Value {
	out := tensor.Add(a.T, b.T)
	return NewOp("add", out, []*Value{a, b}, func(g *tensor.Tensor) {
		a.Accumulate(g)
		b.Accumulate(g)
	})
}

// Sub returns a - b element-wise.
func Sub(a, b *Value) *Value {
	out := tensor.Sub(a.T, b.T)
	return NewOp("sub", out, []*Value{a, b}, func(g *tensor.Tensor) {
		a.Accumulate(g)
		b.Accumulate(tensor.Scale(g, -1))
	})
}

// Mul returns the element-wise product a * b.
func Mul(a, b *Value) *Value {
	out := tensor.Mul(a.T, b.T)
	return NewOp("mul", out, []*Value{a, b}, func(g *tensor.Tensor) {
		a.Accumulate(tensor.Mul(g, b.T))
		b.Accumulate(tensor.Mul(g, a.T))
	})
}

// Scale returns a * s for scalar s.
func Scale(a *Value, s float32) *Value {
	out := tensor.Scale(a.T, s)
	return NewOp("scale", out, []*Value{a}, func(g *tensor.Tensor) {
		a.Accumulate(tensor.Scale(g, s))
	})
}

// Reshape returns a view of a with a new shape.
func Reshape(a *Value, shape ...int) *Value {
	out := a.T.Reshape(shape...)
	origShape := a.T.Shape()
	return NewOp("reshape", out, []*Value{a}, func(g *tensor.Tensor) {
		a.Accumulate(g.Reshape(origShape...))
	})
}

// MatMul returns a @ b for rank-2 operands.
func MatMul(a, b *Value) *Value {
	out := tensor.MatMul(a.T, b.T)
	return NewOp("matmul", out, []*Value{a, b}, func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.Accumulate(tensor.MatMulTB(g, b.T)) // dA = g @ Bᵀ
		}
		if b.requiresGrad {
			b.Accumulate(tensor.MatMulTA(a.T, g)) // dB = Aᵀ @ g
		}
	})
}

// AddChannel adds a per-channel bias b [C] to activations x [N,C,H,W].
func AddChannel(x, b *Value) *Value {
	out := tensor.AddChannel(x.T, b.T)
	return NewOp("addchannel", out, []*Value{x, b}, func(g *tensor.Tensor) {
		x.Accumulate(g)
		if b.requiresGrad {
			nc := tensor.SumChannelNC(g) // [N,C]
			n, c := nc.Dim(0), nc.Dim(1)
			db := tensor.New(c)
			for i := 0; i < n; i++ {
				for j := 0; j < c; j++ {
					db.Data()[j] += nc.At(i, j)
				}
			}
			b.Accumulate(db)
		}
	})
}

// AddRowBias adds bias b [M] to every row of x [N,M] (dense-layer bias).
func AddRowBias(x, b *Value) *Value {
	n, m := x.T.Dim(0), x.T.Dim(1)
	if b.T.Rank() != 1 || b.T.Dim(0) != m {
		panic(fmt.Sprintf("autograd: AddRowBias bias shape %v does not match [%d,%d]", b.T.Shape(), n, m))
	}
	out := tensor.New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.Data()[i*m+j] = x.T.Data()[i*m+j] + b.T.Data()[j]
		}
	}
	return NewOp("addrowbias", out, []*Value{x, b}, func(g *tensor.Tensor) {
		x.Accumulate(g)
		if b.requiresGrad {
			db := tensor.New(m)
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					db.Data()[j] += g.Data()[i*m+j]
				}
			}
			b.Accumulate(db)
		}
	})
}

// MulChannelNC scales x [N,C,H,W] by s [N,C] broadcast over H,W
// (squeeze-excitation's re-scaling).
func MulChannelNC(x, s *Value) *Value {
	out := tensor.MulChannelNC(x.T, s.T)
	return NewOp("mulchannelnc", out, []*Value{x, s}, func(g *tensor.Tensor) {
		if x.requiresGrad {
			x.Accumulate(tensor.MulChannelNC(g, s.T))
		}
		if s.requiresGrad {
			s.Accumulate(tensor.SumChannelNC(tensor.Mul(g, x.T)))
		}
	})
}

// GlobalAvgPool reduces x [N,C,H,W] to [N,C] by averaging over H and W.
func GlobalAvgPool(x *Value) *Value {
	_, _, h, w := x.T.Dim4()
	inv := 1 / float32(h*w)
	out := tensor.Scale(tensor.SumChannelNC(x.T), inv)
	xShape := x.T.Shape()
	return NewOp("gap", out, []*Value{x}, func(g *tensor.Tensor) {
		n, c := g.Dim(0), g.Dim(1)
		dx := tensor.New(xShape...)
		hw := h * w
		for nc := 0; nc < n*c; nc++ {
			gv := g.Data()[nc] * inv
			base := nc * hw
			for i := 0; i < hw; i++ {
				dx.Data()[base+i] = gv
			}
		}
		x.Accumulate(dx)
	})
}

// Mean returns the scalar mean of all elements of a, shaped [1].
func Mean(a *Value) *Value {
	n := a.T.Len()
	out := tensor.FromSlice([]float32{float32(a.T.Sum() / float64(n))}, 1)
	aShape := a.T.Shape()
	return NewOp("mean", out, []*Value{a}, func(g *tensor.Tensor) {
		gv := g.Data()[0] / float32(n)
		a.Accumulate(tensor.Full(gv, aShape...))
	})
}

// Sum returns the scalar sum of all elements of a, shaped [1].
func Sum(a *Value) *Value {
	out := tensor.FromSlice([]float32{float32(a.T.Sum())}, 1)
	aShape := a.T.Shape()
	return NewOp("sum", out, []*Value{a}, func(g *tensor.Tensor) {
		a.Accumulate(tensor.Full(g.Data()[0], aShape...))
	})
}
