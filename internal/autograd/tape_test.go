package autograd

import (
	"math/rand"
	"testing"

	"effnetscale/internal/tensor"
)

// chain builds a depth-deep chain loss = mean(((x*w0)*w1)*...*wN) over
// registered scalar-shaped parameters and returns the parameters in
// forward order (w0 closest to the input).
func chain(depth int) (params []*Value, loss func() *Value) {
	x := Constant(tensor.Full(0.5, 2, 2))
	for i := 0; i < depth; i++ {
		params = append(params, Leaf(tensor.Full(1.1, 2, 2), true))
	}
	loss = func() *Value {
		v := x
		for _, w := range params {
			v = Mul(v, w)
		}
		return Mean(v)
	}
	return params, loss
}

func TestGradReadyFiresOncePerBackwardInReverseOrder(t *testing.T) {
	params, loss := chain(5)
	tape := NewTape()
	tape.Register(params...)
	var fired []*Value
	tape.OnGradReady(func(v *Value) { fired = append(fired, v) })

	for pass := 0; pass < 3; pass++ {
		fired = fired[:0]
		for _, p := range params {
			p.ZeroGrad()
		}
		tape.Backward(loss())
		if len(fired) != len(params) {
			t.Fatalf("pass %d: %d hooks fired, want %d", pass, len(fired), len(params))
		}
		// The chain multiplies w0 first, so backward reaches w4 (the
		// output side) first: hooks fire in reverse forward order.
		for i, v := range fired {
			if want := params[len(params)-1-i]; v != want {
				t.Fatalf("pass %d: hook %d fired for param %d, want %d", pass, i, indexOf(params, v), len(params)-1-i)
			}
			if v.Grad == nil {
				t.Fatalf("pass %d: hook %d fired before any gradient arrived", pass, i)
			}
		}
	}
}

func indexOf(params []*Value, v *Value) int {
	for i, p := range params {
		if p == v {
			return i
		}
	}
	return -1
}

func TestGradReadyMultiUseLeafFiresAfterLastUse(t *testing.T) {
	// w is consumed twice: loss = mean(x*w + y*w). The hook must fire only
	// after both contributions accumulated.
	w := Leaf(tensor.Full(2, 3), true)
	x := Constant(tensor.Full(1, 3))
	y := Constant(tensor.Full(10, 3))
	tape := NewTape()
	tape.Register(w)
	fired := 0
	tape.OnGradReady(func(v *Value) {
		fired++
		// d/dw mean(x*w + y*w) = (x+y)/3 = 11/3 per element.
		for _, g := range v.Grad.Data() {
			if g < 3.6 || g > 3.8 {
				t.Fatalf("hook saw partial gradient %v, want ~3.667", g)
			}
		}
	})
	tape.Backward(Mean(Add(Mul(x, w), Mul(y, w))))
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
}

func TestGradReadySkipsNonGradLeavesAndFiresUnreached(t *testing.T) {
	used := Leaf(tensor.Full(1, 2), true)
	unused := Leaf(tensor.Full(1, 2), true) // registered, never in the graph
	frozen := Constant(tensor.Full(1, 2))   // requiresGrad=false: not registrable
	tape := NewTape()
	tape.Register(used, unused)
	var fired []*Value
	tape.OnGradReady(func(v *Value) { fired = append(fired, v) })
	tape.Backward(Mean(Mul(used, frozen)))
	if len(fired) != 2 || fired[0] != used || fired[1] != unused {
		t.Fatalf("hooks fired for %d leaves in the wrong order (used first, then the unreached leaf)", len(fired))
	}
	if unused.Grad != nil {
		t.Fatalf("unreached leaf grew a gradient")
	}
}

func TestRegisterRejectsNonGradAndDoubles(t *testing.T) {
	tape := NewTape()
	mustPanic(t, "non-grad leaf", func() { tape.Register(Constant(tensor.Full(1, 1))) })
	w := Leaf(tensor.Full(1, 1), true)
	tape.Register(w)
	mustPanic(t, "double registration", func() { tape.Register(w) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	f()
}

func TestBindGradMatchesUnboundBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	wt := tensor.Randn(rng, 1, 4, 4)
	xt := tensor.Randn(rng, 1, 4, 4)

	build := func(w *Value) func() *Value {
		x := Constant(xt)
		return func() *Value { return Mean(Mul(Mul(x, w), w)) }
	}

	plain := Leaf(wt.Clone(), true)
	lossP := build(plain)
	bound := Leaf(wt.Clone(), true)
	buf := make([]float32, wt.Len())
	bound.BindGrad(tensor.FromSlice(buf, 4, 4))
	lossB := build(bound)

	// Two accumulation windows of two passes each, ZeroGrad between
	// windows — the engine's micro-batch pattern.
	for window := 0; window < 2; window++ {
		plain.ZeroGrad()
		bound.ZeroGrad()
		for pass := 0; pass < 2; pass++ {
			lossP().Backward()
			lossB().Backward()
		}
		for i, g := range plain.Grad.Data() {
			if buf[i] != g {
				t.Fatalf("window %d: bound grad[%d] = %v, plain = %v", window, i, buf[i], g)
			}
		}
	}
	if &bound.Grad.Data()[0] != &buf[0] {
		t.Fatalf("bound gradient storage was reallocated")
	}
}

func TestTapeReusesArenas(t *testing.T) {
	params, loss := chain(30)
	tape := NewTape()
	tape.Register(params...)
	tape.Backward(loss())
	capOrder, capStack := cap(tape.order), cap(tape.stack)
	if capOrder == 0 || capStack == 0 {
		t.Fatalf("arenas empty after a pass")
	}
	for i := 0; i < 5; i++ {
		for _, p := range params {
			p.ZeroGrad()
		}
		tape.Backward(loss())
	}
	if cap(tape.order) != capOrder || cap(tape.stack) != capStack {
		t.Fatalf("arenas reallocated across passes: order %d→%d, stack %d→%d",
			capOrder, cap(tape.order), capStack, cap(tape.stack))
	}
}

func TestTapeBackwardMatchesValueBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	wt := tensor.Randn(rng, 1, 3, 3)
	xt := tensor.Randn(rng, 1, 3, 3)

	a := Leaf(wt.Clone(), true)
	Mean(Mul(Constant(xt), a)).Backward()

	b := Leaf(wt.Clone(), true)
	tape := NewTape()
	tape.Register(b)
	tape.Backward(Mean(Mul(Constant(xt), b)))

	for i := range a.Grad.Data() {
		if a.Grad.Data()[i] != b.Grad.Data()[i] {
			t.Fatalf("grad[%d]: Value.Backward %v vs Tape.Backward %v", i, a.Grad.Data()[i], b.Grad.Data()[i])
		}
	}
}
