package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BatchRecord describes one completed coalesced batch — the serve-side unit
// of telemetry, as a training step is for package telemetry.
type BatchRecord struct {
	// Size is the number of requests coalesced into the batch.
	Size int
	// QueueDepth is the admission-queue depth observed right after the
	// batch ran — how far behind admission the serving loop is.
	QueueDepth int
	// Infer is the wall time of the forward pass alone.
	Infer time.Duration
	// Model is the version tag of the weights that served the batch.
	Model string
	// Latencies are the per-request enqueue-to-reply times.
	Latencies []time.Duration
}

// Sink consumes batch records. The worker calls sinks synchronously after
// answering the batch's requests, so a slow sink delays the next batch that
// worker picks up, not the replies themselves.
type Sink interface {
	Record(BatchRecord)
	// Close flushes buffered output. The sink must not be used after Close.
	Close() error
}

// maxLatencySamples bounds the percentile reservoir: a ring of the most
// recent request latencies, so long-running servers report recent behavior
// in O(1) memory rather than averaging over their whole lifetime.
const maxLatencySamples = 4096

// Stats aggregates batch records into the numbers behind /stats and the load
// generator's report: counts, the batch-size histogram, and latency
// percentiles over a sliding window. It is itself a Sink and is always the
// first one a Batcher records to. Safe for concurrent use.
type Stats struct {
	dropped atomic.Int64 // ErrOverloaded count, bumped by Predict directly

	mu       sync.Mutex
	requests int64
	batches  int64
	sizeHist []int64 // index = batch size, 0 unused
	infer    time.Duration
	queueSum int64
	lat      []time.Duration // ring of recent latencies
	latNext  int
	latFull  bool
}

// NewStats builds an aggregator for batches up to maxBatch requests.
func NewStats(maxBatch int) *Stats {
	return &Stats{sizeHist: make([]int64, maxBatch+1)}
}

// Record implements Sink.
func (s *Stats) Record(r BatchRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.requests += int64(r.Size)
	if r.Size >= 0 && r.Size < len(s.sizeHist) {
		s.sizeHist[r.Size]++
	}
	s.infer += r.Infer
	s.queueSum += int64(r.QueueDepth)
	for _, l := range r.Latencies {
		if len(s.lat) < maxLatencySamples {
			s.lat = append(s.lat, l)
		} else {
			s.lat[s.latNext] = l
			s.latNext = (s.latNext + 1) % maxLatencySamples
			s.latFull = true
		}
	}
}

// Close implements Sink.
func (s *Stats) Close() error { return nil }

// StatsSnapshot is a consistent copy of the aggregate serving telemetry,
// shaped for JSON (/stats) as well as for programmatic assertions. Durations
// are reported in milliseconds.
type StatsSnapshot struct {
	// Requests is the number of requests served (not shed).
	Requests int64 `json:"requests"`
	// Batches is the number of coalesced forwards run.
	Batches int64 `json:"batches"`
	// Dropped is the number of requests shed with ErrOverloaded.
	Dropped int64 `json:"dropped"`
	// AvgBatch is Requests/Batches — the realized coalescing factor.
	AvgBatch float64 `json:"avg_batch"`
	// AvgQueueDepth is the mean admission-queue depth sampled per batch.
	AvgQueueDepth float64 `json:"avg_queue_depth"`
	// BatchHist maps batch size → count for every size that occurred.
	BatchHist map[int]int64 `json:"batch_hist"`
	// InferMS is cumulative forward wall time.
	InferMS float64 `json:"infer_ms"`
	// P50/P95/P99 are request-latency percentiles over the most recent
	// window (up to 4096 requests).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot computes the current aggregate view.
func (s *Stats) Snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatsSnapshot{
		Requests:  s.requests,
		Batches:   s.batches,
		Dropped:   s.dropped.Load(),
		BatchHist: make(map[int]int64),
		InferMS:   ms(s.infer),
	}
	if s.batches > 0 {
		snap.AvgBatch = float64(s.requests) / float64(s.batches)
		snap.AvgQueueDepth = float64(s.queueSum) / float64(s.batches)
	}
	for size, n := range s.sizeHist {
		if n > 0 {
			snap.BatchHist[size] = n
		}
	}
	window := s.lat
	if s.latFull {
		window = s.lat[:maxLatencySamples]
	}
	if len(window) > 0 {
		sorted := append([]time.Duration(nil), window...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		snap.P50MS = ms(percentile(sorted, 50))
		snap.P95MS = ms(percentile(sorted, 95))
		snap.P99MS = ms(percentile(sorted, 99))
	}
	return snap
}

// percentile returns the nearest-rank p-th percentile of sorted.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// --- JSONL -------------------------------------------------------------------

// JSONLSink streams one line per batch in the training telemetry's JSONL
// schema — kind-tagged ("serve_batch"), so serve and train records merge
// into one file and split back apart on kind. The caller owns the underlying
// writer's lifetime; Close flushes but does not close files.
type JSONLSink struct {
	// Label, when non-empty, is stamped into every line as "run", matching
	// the training sink's sweep convention.
	Label string

	mu sync.Mutex
	w  *bufio.Writer
	e  *json.Encoder
}

// NewJSONL builds a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, e: json.NewEncoder(bw)}
}

// jsonlBatch mirrors the fixed-field style of the training line structs:
// every measured value always present, so 0 means zero, not "not reported".
type jsonlBatch struct {
	Kind string `json:"kind"`
	Run  string `json:"run,omitempty"`

	Size       int     `json:"size"`
	QueueDepth int     `json:"queue_depth"`
	InferMS    float64 `json:"infer_ms"`
	Model      string  `json:"model"`
	LatMinMS   float64 `json:"lat_min_ms"`
	LatMaxMS   float64 `json:"lat_max_ms"`
	LatMeanMS  float64 `json:"lat_mean_ms"`
}

// Record implements Sink. The worker pool means concurrent Records; the
// encoder is serialized under a mutex.
func (s *JSONLSink) Record(r BatchRecord) {
	line := jsonlBatch{
		Kind: "serve_batch", Run: s.Label,
		Size: r.Size, QueueDepth: r.QueueDepth,
		InferMS: ms(r.Infer), Model: r.Model,
	}
	if len(r.Latencies) > 0 {
		min, max, sum := r.Latencies[0], r.Latencies[0], time.Duration(0)
		for _, l := range r.Latencies {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
			sum += l
		}
		line.LatMinMS = ms(min)
		line.LatMaxMS = ms(max)
		line.LatMeanMS = ms(sum) / float64(len(r.Latencies))
	}
	s.mu.Lock()
	s.e.Encode(line)
	s.mu.Unlock()
}

// Close implements Sink (flushes; the underlying writer stays open).
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}
