package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"effnetscale/internal/autograd"
	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/tensor"
)

// Sentinel errors Predict can return, testable with errors.Is.
var (
	// ErrClosed reports a Predict after Close.
	ErrClosed = errors.New("serve: batcher closed")
	// ErrOverloaded reports load shedding: the request queue was full. The
	// caller should back off; the server stays healthy.
	ErrOverloaded = errors.New("serve: request queue full")
)

// ModelProvider yields the model a batch runs on. Current is called once per
// coalesced batch, so a swap between batches takes effect immediately while
// a batch already dispatched finishes on the model it captured. The returned
// model must be safe for concurrent tape-free reads (nothing may mutate its
// parameters or BN statistics while it is current or in flight).
type ModelProvider interface {
	// Current returns the model and a human-readable version tag
	// (checkpoint file name, snapshot step) stamped into predictions.
	Current() (*efficientnet.Model, string)
}

// Static is a ModelProvider pinned to one model — the no-hot-reload case and
// the test seam.
type Static struct {
	M   *efficientnet.Model
	Tag string
}

// Current implements ModelProvider.
func (s Static) Current() (*efficientnet.Model, string) { return s.M, s.Tag }

// Config assembles a Batcher.
type Config struct {
	// Provider supplies the model (required). Its model's resolution and
	// class count fix the request shape.
	Provider ModelProvider
	// MaxBatch is the coalescing limit: a full batch flushes immediately.
	// Defaults to 32.
	MaxBatch int
	// MaxWait bounds how long the oldest queued request waits for the batch
	// to fill before a partial batch flushes. Defaults to 2ms.
	MaxWait time.Duration
	// Workers is the number of concurrent inference workers. Defaults to 1;
	// raise it when forwards underuse the host (small batches, multi-core).
	Workers int
	// QueueCap bounds queued-but-undispatched requests; beyond it Predict
	// sheds load with ErrOverloaded. Defaults to 4×MaxBatch (min 16).
	QueueCap int
	// Precision is the inference mixed-precision policy. The zero value is
	// full fp32 — unlike training, serving defaults to fp32 because the
	// bf16 emulation's per-call operand rounding is pure overhead off-TPU.
	Precision bf16.Policy
	// Sinks receive a BatchRecord per completed batch, after the requests
	// are answered. The Batcher closes them on Close.
	Sinks []Sink
}

// request is one queued Predict call.
type request struct {
	pixels []float32
	enq    time.Time
	resp   chan result
}

type result struct {
	pred Prediction
	err  error
}

// Prediction is one request's inference result.
type Prediction struct {
	// Class is the argmax class index.
	Class int
	// Logits are the raw per-class scores (caller-owned copy).
	Logits []float32
	// Model is the version tag of the weights that served the request.
	Model string
	// BatchSize is the coalesced batch the request rode in — the
	// observability hook for verifying batching behavior end to end.
	BatchSize int
	// Latency is enqueue-to-reply wall time.
	Latency time.Duration
}

// Batcher coalesces concurrent Predict calls into batched tape-free
// forwards. Construct with NewBatcher; all methods are safe for concurrent
// use.
type Batcher struct {
	cfg       Config
	res       int // input resolution, from the provider's model
	classes   int
	sampleLen int // 3 × res × res

	queue chan *request
	work  chan []*request

	mu     sync.RWMutex // guards closed ↔ queue sends (close-vs-send race)
	closed bool

	dispatcherDone chan struct{}
	workers        sync.WaitGroup
	closeOnce      sync.Once
	closeErr       error

	pool  *data.BufferPool
	stats *Stats
	sinks []Sink
}

// NewBatcher validates cfg, applies defaults, and starts the dispatcher and
// worker goroutines.
func NewBatcher(cfg Config) (*Batcher, error) {
	if cfg.Provider == nil {
		return nil, fmt.Errorf("serve: Config.Provider is required")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: MaxBatch %d must be >= 1", cfg.MaxBatch)
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.MaxWait < 0 {
		return nil, fmt.Errorf("serve: MaxWait %v must be >= 0", cfg.MaxWait)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("serve: Workers %d must be >= 1", cfg.Workers)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 4 * cfg.MaxBatch
		if cfg.QueueCap < 16 {
			cfg.QueueCap = 16
		}
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("serve: QueueCap %d must be >= 1", cfg.QueueCap)
	}
	m, _ := cfg.Provider.Current()
	if m == nil {
		return nil, fmt.Errorf("serve: provider has no current model")
	}
	res := m.Config.Resolution
	b := &Batcher{
		cfg:            cfg,
		res:            res,
		classes:        m.Config.NumClasses,
		sampleLen:      3 * res * res,
		queue:          make(chan *request, cfg.QueueCap),
		work:           make(chan []*request),
		dispatcherDone: make(chan struct{}),
		// One pooled input tensor per worker: a worker holds at most one
		// batch buffer at a time, so Get below never blocks.
		pool:  data.NewBufferPool(cfg.Workers, cfg.MaxBatch, res),
		stats: NewStats(cfg.MaxBatch),
	}
	b.sinks = append([]Sink{b.stats}, cfg.Sinks...)
	go b.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		b.workers.Add(1)
		go b.worker()
	}
	return b, nil
}

// Resolution returns the input resolution requests must match.
func (b *Batcher) Resolution() int { return b.res }

// Classes returns the model's class count (the logits length).
func (b *Batcher) Classes() int { return b.classes }

// SampleLen returns the required pixel-slice length: 3 × res × res, NCHW.
func (b *Batcher) SampleLen() int { return b.sampleLen }

// Predict enqueues one image ([3,res,res] pixels, flattened NCHW) and blocks
// until its batch has been served. It never blocks on a full queue: beyond
// QueueCap it fails fast with ErrOverloaded so saturation shows up as shed
// load, not unbounded latency. The pixel slice is copied into the pooled
// batch tensor at dispatch; the caller may reuse it once Predict returns.
func (b *Batcher) Predict(pixels []float32) (Prediction, error) {
	if len(pixels) != b.sampleLen {
		return Prediction{}, fmt.Errorf("serve: got %d pixels, want %d (3×%d×%d NCHW)",
			len(pixels), b.sampleLen, b.res, b.res)
	}
	r := &request{pixels: pixels, enq: time.Now(), resp: make(chan result, 1)}
	// The read lock excludes Close's closed=true + close(queue) transition,
	// so a send can never hit a closed channel.
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return Prediction{}, ErrClosed
	}
	select {
	case b.queue <- r:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.stats.dropped.Add(1)
		return Prediction{}, ErrOverloaded
	}
	res := <-r.resp
	return res.pred, res.err
}

// dispatch is the coalescing loop: it owns the pending batch and flushes on
// max-batch-size or the max-wait deadline, whichever comes first.
func (b *Batcher) dispatch() {
	defer close(b.dispatcherDone)
	defer close(b.work)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive && !timer.Stop() {
			<-timer.C
		}
		timerLive = false
	}
	var pending []*request
	flush := func() {
		stopTimer()
		if len(pending) == 0 {
			return
		}
		// An unbuffered work channel is deliberate backpressure: when every
		// worker is busy the dispatcher blocks here, the queue fills, and
		// Predict starts shedding — saturation surfaces at admission.
		b.work <- pending
		pending = nil
	}
	for {
		if len(pending) == 0 {
			r, ok := <-b.queue
			if !ok {
				return
			}
			pending = append(pending, r)
			if len(pending) >= b.cfg.MaxBatch {
				flush()
				continue
			}
			timer.Reset(b.cfg.MaxWait)
			timerLive = true
		}
		select {
		case r, ok := <-b.queue:
			if !ok {
				// Close drained the senders; serve what we already hold.
				flush()
				return
			}
			pending = append(pending, r)
			if len(pending) >= b.cfg.MaxBatch {
				flush()
			}
		case <-timer.C:
			timerLive = false
			flush()
		}
	}
}

// worker runs coalesced batches until the dispatcher closes the work
// channel.
func (b *Batcher) worker() {
	defer b.workers.Done()
	for reqs := range b.work {
		b.runBatch(reqs)
	}
}

// runBatch copies the requests into a pooled input tensor, captures the
// provider's current model, runs one tape-free forward, and answers every
// request. A model swap between batches is invisible here: the pointer is
// read once, so in-flight requests always finish on the weights they
// started with.
func (b *Batcher) runBatch(reqs []*request) {
	buf := b.pool.Get(nil)
	defer b.pool.Put(buf)
	n := len(reqs)
	for i, r := range reqs {
		copy(buf.Images.Data()[i*b.sampleLen:(i+1)*b.sampleLen], r.pixels)
	}
	m, tag := b.cfg.Provider.Current()
	if m.Config.Resolution != b.res || m.Config.NumClasses != b.classes {
		err := fmt.Errorf("serve: current model %q is %d classes @ res %d, batcher built for %d @ %d",
			tag, m.Config.NumClasses, m.Config.Resolution, b.classes, b.res)
		for _, r := range reqs {
			r.resp <- result{err: err}
		}
		return
	}
	// Ragged batches run on a view of the pooled tensor's first n samples —
	// no copy, and no wasted forward compute on stale tail slots.
	view := buf.Images
	if n < buf.Images.Dim(0) {
		view = tensor.FromSlice(buf.Images.Data()[:n*b.sampleLen], n, 3, b.res, b.res)
	}
	t0 := time.Now()
	logits := m.Infer(b.cfg.Precision, view)
	inferWall := time.Since(t0)
	preds := autograd.Argmax(logits)
	k := logits.Dim(1)
	rec := BatchRecord{
		Size:       n,
		QueueDepth: len(b.queue),
		Infer:      inferWall,
		Model:      tag,
		Latencies:  make([]time.Duration, n),
	}
	now := time.Now()
	for i, r := range reqs {
		out := make([]float32, k)
		copy(out, logits.Data()[i*k:(i+1)*k])
		lat := now.Sub(r.enq)
		rec.Latencies[i] = lat
		r.resp <- result{pred: Prediction{
			Class:     preds[i],
			Logits:    out,
			Model:     tag,
			BatchSize: n,
			Latency:   lat,
		}}
	}
	for _, s := range b.sinks {
		s.Record(rec)
	}
}

// Stats returns a consistent snapshot of the serve-side telemetry: request
// and batch counts, shed load, the batch-size histogram, and latency
// percentiles.
func (b *Batcher) Stats() StatsSnapshot { return b.stats.Snapshot() }

// Close stops admission, serves every request already queued (clean
// shutdown: in-flight and queued requests all get answers), waits for the
// workers to drain, then closes the sinks. Idempotent; subsequent Predict
// calls return ErrClosed.
func (b *Batcher) Close() error {
	b.closeOnce.Do(func() {
		b.mu.Lock()
		b.closed = true
		close(b.queue)
		b.mu.Unlock()
		<-b.dispatcherDone
		b.workers.Wait()
		for _, s := range b.sinks {
			if err := s.Close(); err != nil && b.closeErr == nil {
				b.closeErr = err
			}
		}
	})
	return b.closeErr
}
