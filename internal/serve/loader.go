package serve

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/efficientnet"
)

// LoaderConfig tells a Loader where weights come from.
type LoaderConfig struct {
	// WeightsPath boots from a weights-only checkpoint
	// (checkpoint.SaveWeightsFile output). Exactly one of WeightsPath and
	// SnapshotDir must be set.
	WeightsPath string
	// SnapshotDir boots from the newest readable training snapshot in the
	// directory and then watches it: each time a newer snapshot appears,
	// its weights are loaded into a fresh model and hot-swapped in.
	SnapshotDir string
	// Poll is the snapshot-directory polling interval (only meaningful with
	// SnapshotDir). Defaults to 2s; < 0 disables watching (boot only).
	Poll time.Duration
	// OnSwap, when non-nil, is called after each successful hot reload with
	// the new version tag — the server's log hook. Called synchronously
	// from the watch goroutine, so it must not block (a blocked OnSwap
	// stalls further reloads and Close).
	OnSwap func(tag string)
	// OnError, when non-nil, receives watch-loop errors (an unreadable new
	// snapshot). The loader keeps serving the old model and keeps watching.
	OnError func(err error)
}

// loadedModel pairs weights with their version tag and source step so the
// watcher can tell "newer" without re-parsing file names.
type loadedModel struct {
	m    *efficientnet.Model
	tag  string
	path string
}

// Loader is a ModelProvider that boots from a checkpoint and (optionally)
// hot-reloads newer training snapshots. The swap is one atomic pointer
// store: batches dispatched before the swap finish on the model they
// captured, batches after see the new weights — no lock on the serving path.
type Loader struct {
	cfg     LoaderConfig
	cur     atomic.Pointer[loadedModel]
	reloads atomic.Int64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewLoader boots the initial model (deriving the architecture from the
// checkpoint itself via checkpoint.WeightsInfo / checkpoint.ModelInfo) and,
// for snapshot directories, starts the watch goroutine.
func NewLoader(cfg LoaderConfig) (*Loader, error) {
	if (cfg.WeightsPath == "") == (cfg.SnapshotDir == "") {
		return nil, fmt.Errorf("serve: set exactly one of WeightsPath and SnapshotDir")
	}
	if cfg.Poll == 0 {
		cfg.Poll = 2 * time.Second
	}
	l := &Loader{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	var lm *loadedModel
	var err error
	if cfg.WeightsPath != "" {
		lm, err = loadWeightsModel(cfg.WeightsPath)
	} else {
		lm, err = loadLatestSnapshotModel(cfg.SnapshotDir)
	}
	if err != nil {
		return nil, err
	}
	l.cur.Store(lm)
	if cfg.SnapshotDir != "" && cfg.Poll > 0 {
		go l.watch()
	} else {
		close(l.done)
	}
	return l, nil
}

// Current implements ModelProvider.
func (l *Loader) Current() (*efficientnet.Model, string) {
	lm := l.cur.Load()
	return lm.m, lm.tag
}

// Reloads returns the number of successful hot swaps since boot.
func (l *Loader) Reloads() int64 { return l.reloads.Load() }

// Close stops the watch goroutine. The current model stays valid.
func (l *Loader) Close() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// watch polls the snapshot directory and swaps in any snapshot newer than
// the one currently serving. Weights always load into a FRESH model — the
// serving model is read concurrently by workers and must never be mutated.
func (l *Loader) watch() {
	defer close(l.done)
	ticker := time.NewTicker(l.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
		}
		paths, err := checkpoint.ListSnapshots(l.cfg.SnapshotDir)
		if err != nil {
			l.reportError(err)
			continue
		}
		if len(paths) == 0 {
			continue
		}
		newest := paths[len(paths)-1]
		if newest == l.cur.Load().path {
			continue
		}
		lm, err := loadSnapshotModel(newest)
		if err != nil {
			l.reportError(fmt.Errorf("serve: hot reload %s: %w", newest, err))
			continue
		}
		l.cur.Store(lm)
		l.reloads.Add(1)
		if l.cfg.OnSwap != nil {
			l.cfg.OnSwap(lm.tag)
		}
	}
}

func (l *Loader) reportError(err error) {
	if l.cfg.OnError != nil {
		l.cfg.OnError(err)
	}
}

// newModelFor builds the architecture a checkpoint describes. The weight
// init is immediately overwritten, so the RNG seed is irrelevant.
func newModelFor(family string, classes, resolution int) (*efficientnet.Model, error) {
	cfg, ok := efficientnet.ConfigByName(family, classes)
	if !ok {
		return nil, fmt.Errorf("serve: checkpoint names unknown model family %q", family)
	}
	cfg.Resolution = resolution
	return efficientnet.New(rand.New(rand.NewSource(1)), cfg), nil
}

// loadWeightsModel boots from a weights-only checkpoint file.
func loadWeightsModel(path string) (*loadedModel, error) {
	family, classes, res, err := checkpoint.WeightsInfo(path)
	if err != nil {
		return nil, err
	}
	m, err := newModelFor(family, classes, res)
	if err != nil {
		return nil, err
	}
	if err := checkpoint.LoadWeightsFile(path, m); err != nil {
		return nil, err
	}
	return &loadedModel{m: m, tag: filepath.Base(path), path: path}, nil
}

// loadSnapshotModel restores the model component of one training snapshot
// into a fresh model.
func loadSnapshotModel(path string) (*loadedModel, error) {
	s, err := checkpoint.ReadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return snapshotModel(s, path)
}

// loadLatestSnapshotModel boots from the newest readable snapshot in dir.
func loadLatestSnapshotModel(dir string) (*loadedModel, error) {
	s, path, err := checkpoint.ReadLatestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	return snapshotModel(s, path)
}

func snapshotModel(s *checkpoint.Snapshot, path string) (*loadedModel, error) {
	family, classes, res, err := checkpoint.ModelInfo(s)
	if err != nil {
		return nil, err
	}
	m, err := newModelFor(family, classes, res)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(checkpoint.ModelState(m)); err != nil {
		return nil, err
	}
	return &loadedModel{m: m, tag: filepath.Base(path), path: path}, nil
}
