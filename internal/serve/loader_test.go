package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/efficientnet"
)

// writeSnapshot captures m's model state into dir under the training
// engine's snapshot naming scheme.
func writeSnapshot(t *testing.T, dir string, step int64, m *efficientnet.Model) string {
	t.Helper()
	s := checkpoint.NewSnapshot()
	if err := s.Capture(checkpoint.ModelState(m)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("step-%09d.ckpt", step))
	if err := checkpoint.WriteSnapshotFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

// logitsOf runs one deterministic prediction through a batcher over the
// given provider.
func logitsOf(t *testing.T, p ModelProvider) []float32 {
	t.Helper()
	b, err := NewBatcher(Config{Provider: p, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pred, err := b.Predict(testPixels(b.SampleLen(), 42))
	if err != nil {
		t.Fatal(err)
	}
	return pred.Logits
}

func sameLogits(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLoaderBootsFromWeightsFile: the loader must reconstruct the
// architecture from the checkpoint alone and serve the saved weights.
func TestLoaderBootsFromWeightsFile(t *testing.T) {
	m := testModel(t, 5, 4, 16)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := checkpoint.SaveWeightsFile(path, m); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(LoaderConfig{WeightsPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lm, tag := l.Current()
	if tag != "model.ckpt" {
		t.Errorf("tag %q, want model.ckpt", tag)
	}
	if lm.Config.Name != "pico" || lm.Config.NumClasses != 4 || lm.Config.Resolution != 16 {
		t.Errorf("loaded %s/%d/%d, want pico/4/16", lm.Config.Name, lm.Config.NumClasses, lm.Config.Resolution)
	}
	// Served logits must match the saved model bit for bit.
	if !sameLogits(logitsOf(t, l), logitsOf(t, Static{M: m})) {
		t.Error("loader-served logits differ from the saved model's")
	}
}

// TestLoaderBootsFromLatestSnapshot: with several snapshots in the
// directory, boot picks the newest.
func TestLoaderBootsFromLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	old := testModel(t, 1, 4, 16)
	newer := testModel(t, 2, 4, 16)
	writeSnapshot(t, dir, 10, old)
	writeSnapshot(t, dir, 20, newer)
	l, err := NewLoader(LoaderConfig{SnapshotDir: dir, Poll: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, tag := l.Current(); tag != "step-000000020.ckpt" {
		t.Errorf("tag %q, want step-000000020.ckpt", tag)
	}
	if !sameLogits(logitsOf(t, l), logitsOf(t, Static{M: newer})) {
		t.Error("loader did not serve the newest snapshot's weights")
	}
}

// TestLoaderHotReload: a new snapshot appearing in the watched directory
// must swap in without restarting, and predictions issued throughout must
// all succeed (run under -race this covers the swap-vs-serve interleaving).
func TestLoaderHotReload(t *testing.T) {
	dir := t.TempDir()
	v1 := testModel(t, 1, 4, 16)
	v2 := testModel(t, 2, 4, 16)
	writeSnapshot(t, dir, 1, v1)
	swapped := make(chan string, 1)
	l, err := NewLoader(LoaderConfig{
		SnapshotDir: dir,
		Poll:        5 * time.Millisecond,
		OnSwap:      func(tag string) { swapped <- tag },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b, err := NewBatcher(Config{Provider: l, MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Keep traffic flowing across the swap.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			px := testPixels(b.SampleLen(), int64(g))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := b.Predict(px); err != nil {
					t.Errorf("predict during reload: %v", err)
					return
				}
			}
		}(g)
	}

	writeSnapshot(t, dir, 2, v2)
	select {
	case tag := <-swapped:
		if tag != "step-000000002.ckpt" {
			t.Errorf("swapped to %q, want step-000000002.ckpt", tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hot reload never happened")
	}
	close(stop)
	wg.Wait()
	if n := l.Reloads(); n != 1 {
		t.Errorf("reloads %d, want 1", n)
	}
	if !sameLogits(logitsOf(t, l), logitsOf(t, Static{M: v2})) {
		t.Error("post-reload logits do not match the new snapshot's weights")
	}
}

// TestLoaderKeepsServingOnCorruptSnapshot: an unreadable new snapshot must
// not take down the server — the old model keeps serving and the error
// surfaces through OnError.
func TestLoaderKeepsServingOnCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	v1 := testModel(t, 1, 4, 16)
	writeSnapshot(t, dir, 1, v1)
	errc := make(chan error, 16)
	l, err := NewLoader(LoaderConfig{
		SnapshotDir: dir,
		Poll:        5 * time.Millisecond,
		OnError: func(err error) {
			select {
			case errc <- err:
			default: // the same bad snapshot reports every poll; don't block the watcher
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := os.WriteFile(filepath.Join(dir, "step-000000002.ckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !strings.Contains(err.Error(), "step-000000002.ckpt") {
			t.Errorf("error does not name the bad snapshot: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("corrupt snapshot never reported")
	}
	if _, tag := l.Current(); tag != "step-000000001.ckpt" {
		t.Errorf("still-serving tag %q, want step-000000001.ckpt", tag)
	}
	if l.Reloads() != 0 {
		t.Errorf("reloads %d, want 0", l.Reloads())
	}
}

func TestLoaderConfigValidation(t *testing.T) {
	if _, err := NewLoader(LoaderConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewLoader(LoaderConfig{WeightsPath: "a", SnapshotDir: "b"}); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := NewLoader(LoaderConfig{SnapshotDir: t.TempDir()}); err == nil {
		t.Error("empty snapshot dir accepted")
	}
}
