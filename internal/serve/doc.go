// Package serve is the inference side of the train-to-serve loop: it turns a
// trained checkpoint into a request-serving model with dynamic batching —
// the serving dual of the paper's large-batch training insight. Throughput
// on this hardware comes from amortizing per-forward fixed costs (and, on
// multi-core hosts, engaging the batch-parallel convolution kernels) over
// coalesced batches, so the server gathers concurrent Predict calls into one
// tape-free Model.Infer pass.
//
// The seams:
//
//   - Batcher coalesces concurrent requests into batches, flushing on
//     whichever comes first: the batch reaching Config.MaxBatch, or
//     Config.MaxWait elapsing since the oldest queued request. A bounded
//     queue sheds load (ErrOverloaded) instead of letting latency grow
//     without bound, and a worker pool runs the forwards over pooled input
//     tensors (data.BufferPool — allocation-free in steady state).
//
//   - ModelProvider abstracts where weights come from. Static pins one
//     model; Loader boots from a weights-only checkpoint
//     (checkpoint.LoadWeightsFile) or the newest readable training snapshot
//     (checkpoint.ReadLatestSnapshot) and then watches the snapshot
//     directory, hot-swapping freshly loaded weights via an atomic pointer.
//     In-flight batches finish on the model they started with; only
//     subsequent batches see the swap.
//
//   - Sink is the serve-side telemetry seam, mirroring package telemetry's
//     style: every completed batch emits a BatchRecord (coalesced size,
//     queue depth, inference wall time, per-request latencies) to the
//     configured sinks. Stats aggregates them into the batch-size histogram
//     and p50/p95/p99 latency percentiles behind /stats and the load
//     generator's table; JSONL streams kind-tagged records ("serve_batch")
//     compatible with the training telemetry schema.
//
// cmd/effnetserve exposes the package over HTTP (/predict, /healthz,
// /stats) and as a load generator; examples/trainserve walks the full
// train → snapshot → serve → hot-reload loop.
package serve
