package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"effnetscale/internal/efficientnet"
)

// testModel builds a pico model at a tiny resolution, seeded so two calls
// with different seeds yield different weights.
func testModel(t *testing.T, seed int64, classes, res int) *efficientnet.Model {
	t.Helper()
	cfg, ok := efficientnet.ConfigByName("pico", classes)
	if !ok {
		t.Fatal("pico config missing")
	}
	cfg.Resolution = res
	return efficientnet.New(rand.New(rand.NewSource(seed)), cfg)
}

// testPixels renders a deterministic input image for the given sample length.
func testPixels(n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	px := make([]float32, n)
	for i := range px {
		px[i] = r.Float32()
	}
	return px
}

func newTestBatcher(t *testing.T, cfg Config) *Batcher {
	t.Helper()
	if cfg.Provider == nil {
		cfg.Provider = Static{M: testModel(t, 1, 4, 16), Tag: "test"}
	}
	b, err := NewBatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestDeadlineFlushSingleRequest: a lone request must not wait for the batch
// to fill — the MaxWait deadline flushes a partial batch of one.
func TestDeadlineFlushSingleRequest(t *testing.T) {
	b := newTestBatcher(t, Config{MaxBatch: 32, MaxWait: 2 * time.Millisecond})
	start := time.Now()
	p, err := b.Predict(testPixels(b.SampleLen(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if p.BatchSize != 1 {
		t.Errorf("lone request rode batch of %d, want 1", p.BatchSize)
	}
	if len(p.Logits) != 4 {
		t.Errorf("got %d logits, want 4", len(p.Logits))
	}
	if p.Class < 0 || p.Class >= 4 {
		t.Errorf("class %d out of range", p.Class)
	}
	if p.Model != "test" {
		t.Errorf("model tag %q, want %q", p.Model, "test")
	}
	// Generous bound: the point is that it returned via the deadline, not
	// after 32 requests that will never come.
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("lone request took %v", wall)
	}
}

// TestMaxBatchFlushUnderBurst: with an effectively infinite deadline, a
// burst must be served in exactly MaxBatch-sized batches — the size trigger,
// isolated from the timer.
func TestMaxBatchFlushUnderBurst(t *testing.T) {
	const maxBatch, n = 4, 12
	b := newTestBatcher(t, Config{MaxBatch: maxBatch, MaxWait: time.Hour})
	var wg sync.WaitGroup
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := b.Predict(testPixels(b.SampleLen(), int64(i)))
			if err != nil {
				t.Error(err)
				return
			}
			sizes[i] = p.BatchSize
		}(i)
	}
	wg.Wait()
	for i, s := range sizes {
		if s != maxBatch {
			t.Errorf("request %d rode batch of %d, want %d (timer should never fire)", i, s, maxBatch)
		}
	}
	snap := b.Stats()
	if snap.Requests != n || snap.Batches != n/maxBatch {
		t.Errorf("stats: %d requests in %d batches, want %d in %d", snap.Requests, snap.Batches, n, n/maxBatch)
	}
	if snap.BatchHist[maxBatch] != n/maxBatch {
		t.Errorf("histogram at size %d: %d, want %d", maxBatch, snap.BatchHist[maxBatch], n/maxBatch)
	}
}

// gatedProvider blocks the first batch's Current call until released,
// pinning the single worker mid-batch so the test controls what queues up
// behind it. NewBatcher itself calls Current once to read the model
// geometry, so the gate trips on the second call — the first runBatch.
type gatedProvider struct {
	Static
	release chan struct{}
	calls   atomic.Int64
	first   chan struct{} // closed when the first batch reaches Current
}

func newGatedProvider(m *efficientnet.Model) *gatedProvider {
	return &gatedProvider{
		Static:  Static{M: m, Tag: "gated"},
		release: make(chan struct{}),
		first:   make(chan struct{}),
	}
}

func (g *gatedProvider) Current() (*efficientnet.Model, string) {
	if g.calls.Add(1) == 2 {
		close(g.first)
		<-g.release
	}
	return g.Static.Current()
}

// enqueue admits a request directly onto the batcher's queue, bypassing
// Predict's admission so tests can stage exact queue states.
func enqueue(b *Batcher, seed int64) *request {
	r := &request{pixels: testPixels(b.sampleLen, seed), enq: time.Now(), resp: make(chan result, 1)}
	b.queue <- r
	return r
}

// TestCloseWithInFlightRequests: Close must answer every request already
// admitted — the in-flight batch and everything queued behind it — before
// returning, and subsequent Predicts fail fast with ErrClosed.
func TestCloseWithInFlightRequests(t *testing.T) {
	gate := newGatedProvider(testModel(t, 1, 4, 16))
	b, err := NewBatcher(Config{Provider: gate, MaxBatch: 2, MaxWait: time.Millisecond, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	reqs := make([]*request, n)
	reqs[0] = enqueue(b, 0)
	<-gate.first // worker is now pinned mid-batch
	for i := 1; i < n; i++ {
		reqs[i] = enqueue(b, int64(i)) // provably admitted before Close
	}
	closed := make(chan error)
	go func() { closed <- b.Close() }()
	// Close must not complete while a batch is still in flight.
	select {
	case <-closed:
		t.Fatal("Close returned with a batch still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate.release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, r := range reqs {
		res := <-r.resp
		if res.err != nil {
			t.Errorf("request %d admitted before Close got error: %v", i, res.err)
		}
		if len(res.pred.Logits) != 4 {
			t.Errorf("request %d got %d logits", i, len(res.pred.Logits))
		}
	}
	if _, err := b.Predict(testPixels(b.SampleLen(), 99)); !errors.Is(err, ErrClosed) {
		t.Errorf("Predict after Close: %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// swapProvider alternates between two models on demand — the model-swap race
// surface without Loader's file I/O.
type swapProvider struct {
	mu   sync.Mutex
	cur  Static
	next Static
}

func (s *swapProvider) Current() (*efficientnet.Model, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.M, s.cur.Tag
}

func (s *swapProvider) swap() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur, s.next = s.next, s.cur
}

// TestPredictDuringModelSwap hammers Predict from several goroutines while
// the provider swaps models underneath — every request must complete with a
// coherent result (logit count, tag naming a real version). Run under -race
// this is the hot-reload safety test.
func TestPredictDuringModelSwap(t *testing.T) {
	sp := &swapProvider{
		cur:  Static{M: testModel(t, 1, 4, 16), Tag: "v1"},
		next: Static{M: testModel(t, 2, 4, 16), Tag: "v2"},
	}
	b, err := NewBatcher(Config{Provider: sp, MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	stop := make(chan struct{})
	var swaps sync.WaitGroup
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sp.swap()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			px := testPixels(b.SampleLen(), int64(g))
			for i := 0; i < 10; i++ {
				p, err := b.Predict(px)
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if len(p.Logits) != 4 {
					t.Errorf("goroutine %d iter %d: %d logits", g, i, len(p.Logits))
				}
				if p.Model != "v1" && p.Model != "v2" {
					t.Errorf("goroutine %d iter %d: tag %q", g, i, p.Model)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	swaps.Wait()
}

// TestOverloadSheds: with the worker pinned and the queue full, Predict must
// fail fast with ErrOverloaded instead of blocking, and the shed count must
// surface in stats.
func TestOverloadSheds(t *testing.T) {
	gate := newGatedProvider(testModel(t, 1, 4, 16))
	b, err := NewBatcher(Config{Provider: gate, MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Stage a provably full pipeline: one request pinned in the worker, one
	// held by the blocked dispatcher, and the queue filled to QueueCap. The
	// direct sends block until the stage before them drains, so after the
	// last send the queue deterministically holds QueueCap requests.
	reqs := make([]*request, 4)
	reqs[0] = enqueue(b, 0)
	<-gate.first
	for i := 1; i < 4; i++ {
		reqs[i] = enqueue(b, int64(i))
	}
	if _, err := b.Predict(testPixels(b.SampleLen(), 99)); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Predict with full queue: %v, want ErrOverloaded", err)
	}
	if got := b.Stats().Dropped; got != 1 {
		t.Errorf("dropped %d, want 1", got)
	}
	close(gate.release)
	for i, r := range reqs {
		if res := <-r.resp; res.err != nil {
			t.Errorf("admitted request %d: %v", i, res.err)
		}
	}
	b.Close()
}

func TestPredictRejectsBadInput(t *testing.T) {
	b := newTestBatcher(t, Config{})
	if _, err := b.Predict(make([]float32, 5)); err == nil || !strings.Contains(err.Error(), "pixels") {
		t.Errorf("short input: %v, want pixel-count error", err)
	}
}

func TestNewBatcherValidates(t *testing.T) {
	if _, err := NewBatcher(Config{}); err == nil {
		t.Error("nil provider accepted")
	}
	m := testModel(t, 1, 4, 16)
	for _, cfg := range []Config{
		{Provider: Static{M: m}, MaxBatch: -1},
		{Provider: Static{M: m}, MaxWait: -time.Second},
		{Provider: Static{M: m}, Workers: -2},
		{Provider: Static{M: m}, QueueCap: -1},
	} {
		if _, err := NewBatcher(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewBatcher(Config{Provider: Static{}}); err == nil {
		t.Error("provider with nil model accepted")
	}
}

// TestBatchedMatchesSerial: a request must get the same logits whether it
// rides a coalesced batch or a batch of one — batching is a throughput
// optimization, not a semantic change.
func TestBatchedMatchesSerial(t *testing.T) {
	m := testModel(t, 3, 4, 16)
	const n = 4
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = testPixels(3*16*16, int64(i))
	}

	serial := newTestBatcher(t, Config{Provider: Static{M: m, Tag: "m"}, MaxBatch: 1})
	want := make([][]float32, n)
	for i, px := range inputs {
		p, err := serial.Predict(px)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p.Logits
	}

	batched := newTestBatcher(t, Config{Provider: Static{M: m, Tag: "m"}, MaxBatch: n, MaxWait: time.Hour})
	var wg sync.WaitGroup
	got := make([][]float32, n)
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := batched.Predict(inputs[i])
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = p.Logits
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d logit %d: batched %v != serial %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestJSONLSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.Label = "serve-test"
	b := newTestBatcher(t, Config{MaxBatch: 2, MaxWait: time.Millisecond, Sinks: []Sink{sink}})
	for i := 0; i < 3; i++ {
		if _, err := b.Predict(testPixels(b.SampleLen(), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3 (one per batch)", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec["kind"] != "serve_batch" {
			t.Errorf("kind %v, want serve_batch", rec["kind"])
		}
		if rec["run"] != "serve-test" {
			t.Errorf("run %v, want serve-test", rec["run"])
		}
		if rec["size"].(float64) < 1 {
			t.Errorf("size %v, want >= 1", rec["size"])
		}
		for _, key := range []string{"queue_depth", "infer_ms", "model", "lat_min_ms", "lat_max_ms", "lat_mean_ms"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("line missing %q: %s", key, line)
			}
		}
	}
}

func TestStatsPercentiles(t *testing.T) {
	s := NewStats(8)
	// 100 latencies 1ms..100ms in one record: nearest-rank percentiles are
	// exactly the 50th, 95th and 99th values.
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	s.Record(BatchRecord{Size: 8, QueueDepth: 3, Infer: time.Millisecond, Latencies: lats})
	snap := s.Snapshot()
	if snap.P50MS != 50 || snap.P95MS != 95 || snap.P99MS != 99 {
		t.Errorf("percentiles p50=%v p95=%v p99=%v, want 50/95/99", snap.P50MS, snap.P95MS, snap.P99MS)
	}
	if snap.Requests != 8 || snap.Batches != 1 || snap.AvgBatch != 8 {
		t.Errorf("counts: %+v", snap)
	}
	if snap.AvgQueueDepth != 3 {
		t.Errorf("avg queue depth %v, want 3", snap.AvgQueueDepth)
	}
}

func TestStatsLatencyWindowBounded(t *testing.T) {
	s := NewStats(1)
	// Flood with 2× the window of high latencies, then the window of low
	// ones: percentiles must reflect only the recent window.
	big := make([]time.Duration, maxLatencySamples*2)
	for i := range big {
		big[i] = time.Second
	}
	s.Record(BatchRecord{Size: 1, Latencies: big})
	small := make([]time.Duration, maxLatencySamples)
	for i := range small {
		small[i] = time.Millisecond
	}
	s.Record(BatchRecord{Size: 1, Latencies: small})
	if snap := s.Snapshot(); snap.P99MS != 1 {
		t.Errorf("p99 %vms, want 1ms (old samples must age out)", snap.P99MS)
	}
}
