// Package rng provides the deterministic, serializable random streams the
// fault-tolerant snapshot subsystem depends on. The training stack draws
// per-replica randomness (data augmentation, dropout, stochastic depth)
// from math/rand generators; resuming a run bit-for-bit requires capturing
// exactly where each of those streams stands and rewinding to the same
// position later.
//
// math/rand does not expose its generator state, but every value it hands
// out is derived from a sequence of source calls (Int63 or Uint64), and the
// standard additive-lagged-Fibonacci source advances by exactly one state
// transition per call — Int63 is just Uint64 masked to 63 bits. A Stream
// wraps the standard source with a transition counter, so a stream's full
// position is the pair (seed, draws) — two integers that serialize
// trivially — and restoring is "reseed, then discard draws transitions".
//
// Seams: Stream implements rand.Source64, so a *rand.Rand built on it
// produces values bit-identical to rand.New(rand.NewSource(seed)) while
// every state advance flows through the counter; Restore(seed, draws)
// rebuilds a stream at a recorded position.
//
// Paper: not a paper mechanism per se, but the precondition for validating
// §3 mechanisms against bit-for-bit resumed trajectories.
package rng
