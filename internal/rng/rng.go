package rng

import "math/rand"

// Stream is a math/rand source whose exact position can be captured as
// (seed, draws) and replayed with Restore. Not safe for concurrent use —
// like the *rand.Rand values it feeds, each goroutine owns its own Stream.
type Stream struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// NewStream returns a fresh stream positioned at draw 0 of the given seed.
func NewStream(seed int64) *Stream {
	// NewSource's concrete type has implemented Source64 since Go 1.8; the
	// assertion is load-bearing (Uint64 must be a single state transition).
	return &Stream{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Restore returns a stream positioned exactly draws state transitions into
// the given seed's sequence — the stream a snapshot captured with
// (Seed(), Draws()). Cost is O(draws): the generator is replayed, not
// reconstructed, which keeps the on-disk representation two integers.
func Restore(seed int64, draws uint64) *Stream {
	s := NewStream(seed)
	s.Skip(draws)
	return s
}

// Int63 implements rand.Source, counting one draw per call.
func (s *Stream) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64, counting one draw per call (the standard
// source spends exactly one state transition on either method).
func (s *Stream) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the position to draw 0 of seed.
func (s *Stream) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// SeedValue returns the seed this stream was created (or last reseeded) with.
func (s *Stream) SeedValue() int64 { return s.seed }

// Draws returns the number of state transitions consumed so far — together
// with SeedValue, the stream's complete serializable position.
func (s *Stream) Draws() uint64 { return s.draws }

// Skip advances the stream by n draws, discarding the values.
func (s *Stream) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Int63()
	}
	s.draws += n
}

// Rand wraps the stream in a *rand.Rand. All randomness drawn through the
// returned generator advances (and is counted by) the stream.
func (s *Stream) Rand() *rand.Rand { return rand.New(s) }
