package rng

import (
	"math/rand"
	"testing"
)

func TestStreamMatchesStdlib(t *testing.T) {
	// A Stream-backed rand.Rand must produce bit-identical values to the
	// plain stdlib construction — the guarantee that lets replica swap its
	// RNGs for counting streams without changing any training trajectory.
	a := NewStream(42).Rand()
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if x, y := a.Intn(5), b.Intn(5); x != y {
				t.Fatalf("draw %d: Intn %d != %d", i, x, y)
			}
		case 1:
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("draw %d: Float64 %v != %v", i, x, y)
			}
		case 2:
			if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
				t.Fatalf("draw %d: NormFloat64 %v != %v", i, x, y)
			}
		case 3:
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("draw %d: Uint64 %v != %v", i, x, y)
			}
		case 4:
			if x, y := a.Int63n(1<<40), b.Int63n(1<<40); x != y {
				t.Fatalf("draw %d: Int63n %v != %v", i, x, y)
			}
		}
	}
}

func TestRestoreResumesExactly(t *testing.T) {
	s := NewStream(7)
	r := s.Rand()
	for i := 0; i < 137; i++ {
		r.Intn(5) // variable draw count per call (rejection sampling)
		r.NormFloat64()
	}
	draws := s.Draws()
	// Continue the original and a restored copy in lockstep.
	restored := Restore(7, draws)
	r2 := restored.Rand()
	for i := 0; i < 200; i++ {
		if x, y := r.Intn(1000), r2.Intn(1000); x != y {
			t.Fatalf("post-restore draw %d: %d != %d", i, x, y)
		}
	}
	if s.Draws() != restored.Draws() {
		t.Fatalf("draw counters diverged: %d vs %d", s.Draws(), restored.Draws())
	}
}

func TestSeedResetsPosition(t *testing.T) {
	s := NewStream(1)
	s.Rand().Intn(100)
	if s.Draws() == 0 {
		t.Fatal("draws not counted")
	}
	s.Seed(9)
	if s.Draws() != 0 || s.SeedValue() != 9 {
		t.Fatalf("Seed did not reset position: draws=%d seed=%d", s.Draws(), s.SeedValue())
	}
	if got, want := s.Rand().Int63(), rand.New(rand.NewSource(9)).Int63(); got != want {
		t.Fatalf("reseeded stream diverges: %d != %d", got, want)
	}
}
