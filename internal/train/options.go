package train

import (
	"fmt"

	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/mesh"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
	"effnetscale/internal/topology"
)

// Option configures a Session. Options are applied in order, so later
// options override earlier ones — presets first, overrides after:
//
//	train.New(train.MiniRecipe(), train.WithEpochs(3))
type Option func(*config) error

// Decay names an LR decay family for WithLinearScaling.
type Decay string

// The decay families of §3.2: polynomial for the LARS rows of Table 2,
// exponential (staircase ×0.97 / 2.4 epochs) for the RMSProp rows.
const (
	PolynomialDecay  Decay = "polynomial"
	ExponentialDecay Decay = "exponential"
	CosineDecay      Decay = "cosine"
	ConstantDecay    Decay = "constant"
)

// DecayByName converts a flag string into a Decay, erroring on unknowns.
func DecayByName(name string) (Decay, error) {
	switch d := Decay(name); d {
	case PolynomialDecay, ExponentialDecay, CosineDecay, ConstantDecay:
		return d, nil
	default:
		return "", fmt.Errorf("train: unknown decay %q (want polynomial, exponential, cosine, constant)", name)
	}
}

// bnGroupWorld marks "BN group spans the whole world", resolved once the
// world size is known.
const bnGroupWorld = -1

// config accumulates option state until New validates and builds the engine.
type config struct {
	model           string
	dataset         *data.Dataset
	world           int
	perReplicaBatch int
	gradAccum       int
	optimizer       string
	weightDecay     float64
	// scheduleFn defers schedule construction until the global batch and
	// epoch count are known — what lets presets express the §3.2 linear
	// scaling rule without knowing the final world size.
	scheduleFn     func(globalBatch int, epochs int) schedule.Schedule
	mesh           mesh.Shape
	bnGroup        int
	slice          topology.Slice
	precision      bf16.Policy
	labelSmoothing float64
	seed           int64
	dropout        float64
	dropConnect    float64
	augment        bool
	bnMomentum     float64
	emaDecay       float64

	collective        comm.Provider
	gradBuckets       int
	prefetch          int
	noBackwardOverlap bool

	epochs      int
	evalEvery   int
	evalSamples int
	targetAcc   float64
	strategy    EvalStrategy
	callbacks   []Callback

	snapshotDir   string
	snapshotEvery int
	keepLast      int
	resume        string
	elastic       bool

	telemetryOn    bool
	telemetrySinks []telemetry.Sink
}

func defaultConfig() *config {
	return &config{
		model:           "pico",
		world:           1,
		perReplicaBatch: 32,
		gradAccum:       1,
		optimizer:       "sgd",
		scheduleFn: func(int, int) schedule.Schedule {
			return schedule.Constant(0.05)
		},
		bnGroup:     1,
		precision:   bf16.DefaultPolicy,
		seed:        42,
		augment:     true,
		bnMomentum:  0.9,
		epochs:      1,
		evalSamples: 64,
		strategy:    Distributed{},
	}
}

// Options combines several options into one — the building block presets are
// made of.
func Options(opts ...Option) Option {
	return func(c *config) error {
		for _, opt := range opts {
			if opt == nil {
				continue
			}
			if err := opt(c); err != nil {
				return err
			}
		}
		return nil
	}
}

// WithModel selects the EfficientNet variant (pico, nano, micro, b0..b7).
func WithModel(name string) Option {
	return func(c *config) error {
		if name == "" {
			return fmt.Errorf("train: model name must not be empty")
		}
		c.model = name
		return nil
	}
}

// WithDataset provides the (sharded) training and validation data.
func WithDataset(ds *data.Dataset) Option {
	return func(c *config) error {
		if ds == nil {
			return fmt.Errorf("train: dataset must not be nil")
		}
		c.dataset = ds
		return nil
	}
}

// WithData builds a SynthImageNet dataset from cfg and uses it.
func WithData(cfg data.Config) Option {
	return func(c *config) error {
		c.dataset = data.New(cfg)
		return nil
	}
}

// WithWorld sets the number of data-parallel replicas.
func WithWorld(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("train: world %d must be >= 1", n)
		}
		c.world = n
		return nil
	}
}

// WithMesh lays the ranks out as a d×m device mesh: d data-parallel groups
// of m model-parallel shards each (§5 hybrid parallelism). The world size
// becomes d×m; the global batch is d × per-replica batch × grad-accum — the
// model axis shards parameters, it does not multiply data. WithMesh(d, 1) is
// pure data parallelism, bit-for-bit identical to WithWorld(d). A later
// WithWorld must agree with d×m (New rejects the combination otherwise).
func WithMesh(d, m int) Option {
	return func(c *config) error {
		s := mesh.Shape{Data: d, Model: m}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("train: %w", err)
		}
		c.mesh = s
		c.world = s.World()
		return nil
	}
}

// WithPerReplicaBatch sets each replica's local batch size.
func WithPerReplicaBatch(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("train: per-replica batch %d must be >= 1", n)
		}
		c.perReplicaBatch = n
		return nil
	}
}

// WithGradAccum runs n micro-batches per replica per global step,
// accumulating gradients locally before the all-reduce — the effective
// global batch grows ×n without growing per-replica memory.
func WithGradAccum(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("train: grad-accum steps %d must be >= 1", n)
		}
		c.gradAccum = n
		return nil
	}
}

// WithOptimizer selects the optimizer by name (sgd, rmsprop, lars, adam,
// lamb, sm3) with the given L2 weight decay.
func WithOptimizer(name string, weightDecay float64) Option {
	return func(c *config) error {
		if name == "" {
			return fmt.Errorf("train: optimizer name must not be empty")
		}
		if weightDecay < 0 {
			return fmt.Errorf("train: weight decay %g must be >= 0", weightDecay)
		}
		c.optimizer = name
		c.weightDecay = weightDecay
		return nil
	}
}

// WithSchedule uses an explicit LR schedule, bypassing the linear scaling
// rule.
func WithSchedule(s schedule.Schedule) Option {
	return func(c *config) error {
		if s == nil {
			return fmt.Errorf("train: schedule must not be nil")
		}
		c.scheduleFn = func(int, int) schedule.Schedule { return s }
		return nil
	}
}

// WithLinearScaling applies the §3.2 recipe: a base LR per 256 samples
// scaled linearly by the global batch, linear warmup over warmupEpochs, then
// the chosen decay to the end of training.
func WithLinearScaling(lrPer256, warmupEpochs float64, decay Decay) Option {
	return func(c *config) error {
		if lrPer256 <= 0 {
			return fmt.Errorf("train: lr-per-256 %g must be > 0", lrPer256)
		}
		if warmupEpochs < 0 {
			return fmt.Errorf("train: warmup epochs %g must be >= 0", warmupEpochs)
		}
		if _, err := DecayByName(string(decay)); err != nil {
			return err
		}
		c.scheduleFn = func(globalBatch, epochs int) schedule.Schedule {
			peak := schedule.ScaledLR(lrPer256, globalBatch)
			var inner schedule.Schedule
			switch decay {
			case ExponentialDecay:
				inner = schedule.Exponential{Peak: peak, Rate: 0.97, DecayEpochs: 2.4, Staircase: true}
			case CosineDecay:
				inner = schedule.Cosine{Peak: peak, TotalEpochs: float64(epochs)}
			case ConstantDecay:
				inner = schedule.Constant(peak)
			default:
				inner = schedule.Polynomial{Peak: peak, End: 0, TotalEpochs: float64(epochs), Power: 2}
			}
			return schedule.Warmup{Epochs: warmupEpochs, Inner: inner}
		}
		return nil
	}
}

// WithCollective selects the all-reduce algorithm for gradient, metrics and
// batch-norm statistics reduction: comm.RingProvider() (the default),
// comm.TreeProvider(), comm.Torus2DProvider(slice) — the paper's
// hierarchical 2-D torus scheme running for real — or comm.AutoProvider,
// which picks per call from the payload size via the α-β cost model.
func WithCollective(p comm.Provider) Option {
	return func(c *config) error {
		if p.IsZero() {
			return fmt.Errorf("train: collective provider must not be the zero value (use comm.RingProvider() etc.)")
		}
		c.collective = p
		return nil
	}
}

// WithGradBuckets sets the bucket size, in bytes, for overlapped gradient
// reduction: each bucket all-reduces on a background stream the moment the
// backward pass has produced the last gradient it covers (the autograd tape's
// grad-ready hooks). Smaller buckets start communicating earlier; larger
// buckets amortize per-collective latency.
func WithGradBuckets(bytes int) Option {
	return func(c *config) error {
		if bytes < 4 {
			return fmt.Errorf("train: grad bucket size %d bytes must hold at least one fp32 value", bytes)
		}
		c.gradBuckets = bytes
		return nil
	}
}

// WithoutBackwardOverlap disables in-backward gradient reduction: every
// bucket is dispatched only after the backward pass completes, serializing
// compute and communication. Bucket spans and averaging order are unchanged,
// so trained weights are bit-for-bit identical to the overlapped path — this
// is the A/B baseline for measuring what the overlap hides (the telemetry
// reduce vs reduce_tail split).
func WithoutBackwardOverlap() Option {
	return func(c *config) error {
		c.noBackwardOverlap = true
		return nil
	}
}

// WithPrefetch sets the per-replica input-pipeline depth: the number of
// rendered batches buffered ahead of the compute loop, with rendering and
// augmentation running on a background goroutine per replica. Prefetching is
// on by default (depth replica.DefaultPrefetchDepth); this option tunes the
// depth. The prefetched and synchronous paths produce bit-for-bit identical
// batches, so this is purely a throughput knob. Call Session.Close when done
// with a Session to release the pipeline goroutines.
func WithPrefetch(depth int) Option {
	return func(c *config) error {
		if depth < 1 {
			return fmt.Errorf("train: prefetch depth %d must be >= 1 (use WithoutPrefetch to disable)", depth)
		}
		c.prefetch = depth
		return nil
	}
}

// WithoutPrefetch disables the input pipeline: every batch is rendered and
// augmented synchronously on the training critical path — the pre-pipeline
// behaviour, useful for ablations and single-goroutine debugging.
func WithoutPrefetch() Option {
	return func(c *config) error {
		c.prefetch = replica.PrefetchOff
		return nil
	}
}

// WithBNGroup sets the distributed batch-norm group size (1 = local BN).
// Must divide the world size.
func WithBNGroup(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("train: BN group size %d must be >= 1", n)
		}
		c.bnGroup = n
		return nil
	}
}

// WithBNGroupAll spans the batch-norm group over all replicas, whatever the
// world size turns out to be.
func WithBNGroupAll() Option {
	return func(c *config) error {
		c.bnGroup = bnGroupWorld
		return nil
	}
}

// WithSlice sets the TPU slice used for 2-D BN group tiling (§3.4).
func WithSlice(s topology.Slice) Option {
	return func(c *config) error {
		c.slice = s
		return nil
	}
}

// WithPrecision sets the mixed-precision policy (bf16 convolutions by
// default, as in the paper's §3.5).
func WithPrecision(p bf16.Policy) Option {
	return func(c *config) error {
		c.precision = p
		return nil
	}
}

// WithLabelSmoothing sets softmax cross-entropy label smoothing
// (EfficientNet uses 0.1).
func WithLabelSmoothing(eps float64) Option {
	return func(c *config) error {
		if eps < 0 || eps >= 1 {
			return fmt.Errorf("train: label smoothing %g must be in [0, 1)", eps)
		}
		c.labelSmoothing = eps
		return nil
	}
}

// WithSeed fixes model init and per-replica RNG streams.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithDropout overrides the model's dropout and stochastic-depth rates.
// Pass ModelDefaultRate to keep the model family's published rates (the
// PaperRecipe/MiniRecipe choice). Sessions built without this option run
// with both rates at 0 — the right default for short deterministic
// mini-scale runs.
func WithDropout(dropout, dropConnect float64) Option {
	return func(c *config) error {
		c.dropout = dropout
		c.dropConnect = dropConnect
		return nil
	}
}

// ModelDefaultRate keeps the model family's published dropout /
// drop-connect rate when passed to WithDropout.
const ModelDefaultRate = -1

// WithoutAugmentation disables training-time data augmentation (needed by
// determinism tests where per-replica augmentation RNGs would diverge).
func WithoutAugmentation() Option {
	return func(c *config) error {
		c.augment = false
		return nil
	}
}

// WithBNMomentum overrides the batch-norm running-statistics EMA decay.
// Short mini-scale runs want ~0.9; the TF full-scale default is 0.99.
func WithBNMomentum(m float64) Option {
	return func(c *config) error {
		if m < 0 || m >= 1 {
			return fmt.Errorf("train: BN momentum %g must be in [0, 1)", m)
		}
		c.bnMomentum = m
		return nil
	}
}

// WithEMA maintains an exponential moving average of the weights and
// evaluates the EMA weights, as the reference EfficientNet setup does.
func WithEMA(decay float64) Option {
	return func(c *config) error {
		if decay <= 0 || decay >= 1 {
			return fmt.Errorf("train: EMA decay %g must be in (0, 1)", decay)
		}
		c.emaDecay = decay
		return nil
	}
}

// WithEpochs bounds training length.
func WithEpochs(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("train: epochs %d must be >= 1", n)
		}
		c.epochs = n
		return nil
	}
}

// WithEvalEvery sets the evaluation cadence in steps (0 = once per epoch).
// The final step always evaluates.
func WithEvalEvery(steps int) Option {
	return func(c *config) error {
		if steps < 0 {
			return fmt.Errorf("train: eval cadence %d must be >= 0", steps)
		}
		c.evalEvery = steps
		return nil
	}
}

// WithEvalSamples caps per-replica evaluation work (0 = full shard).
func WithEvalSamples(perReplica int) Option {
	return func(c *config) error {
		if perReplica < 0 {
			return fmt.Errorf("train: eval samples %d must be >= 0", perReplica)
		}
		c.evalSamples = perReplica
		return nil
	}
}

// WithTarget stops training early once evaluation accuracy reaches target
// (0 disables). Implemented as a StopAtAccuracy callback over the loop.
func WithTarget(acc float64) Option {
	return func(c *config) error {
		if acc < 0 || acc > 1 {
			return fmt.Errorf("train: target accuracy %g must be in [0, 1]", acc)
		}
		c.targetAcc = acc
		return nil
	}
}

// WithEvalStrategy selects the evaluation strategy (Distributed by default).
func WithEvalStrategy(s EvalStrategy) Option {
	return func(c *config) error {
		if s == nil {
			return fmt.Errorf("train: eval strategy must not be nil")
		}
		c.strategy = s
		return nil
	}
}

// WithCallbacks appends callbacks; they fire in registration order.
func WithCallbacks(cbs ...Callback) Option {
	return func(c *config) error {
		for _, cb := range cbs {
			if cb == nil {
				return fmt.Errorf("train: callback must not be nil")
			}
			c.callbacks = append(c.callbacks, cb)
		}
		return nil
	}
}

// WithBestCheckpoint saves replica 0's model to path after every evaluation
// that improves on the best accuracy so far. Save failures do not abort
// training; they surface in Result.CheckpointErrors.
func WithBestCheckpoint(path string) Option {
	return func(c *config) error {
		if path == "" {
			return fmt.Errorf("train: checkpoint path must not be empty")
		}
		c.callbacks = append(c.callbacks, BestCheckpoint(path))
		return nil
	}
}

// WithSnapshotDir sets the directory periodic training-state snapshots are
// written to (step-<n>.ckpt files, created on demand). Required alongside
// WithSnapshotEvery; the same directory is what WithResume typically points
// back at.
func WithSnapshotDir(dir string) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("train: snapshot directory must not be empty")
		}
		c.snapshotDir = dir
		return nil
	}
}

// WithSnapshotEvery writes a full training-state snapshot (weights, BN
// statistics, optimizer slots, EMA shadow, schedule position, per-replica
// RNG and data-pipeline cursors) every n global steps. The capture is a
// synchronous memory copy at the step boundary; encoding and the atomic
// fsync+rename write happen on a background writer goroutine, off the
// training critical path. Failures surface in Result.CheckpointErrors and
// through OnCheckpoint callbacks, never by aborting training.
func WithSnapshotEvery(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("train: snapshot cadence %d must be >= 1 step", n)
		}
		c.snapshotEvery = n
		return nil
	}
}

// WithKeepLast bounds how many periodic snapshots are retained on disk:
// after each successful write, older step-<n>.ckpt files beyond the n most
// recent are deleted (0, the default, keeps all).
func WithKeepLast(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("train: keep-last %d must be >= 0", n)
		}
		c.keepLast = n
		return nil
	}
}

// WithTelemetry turns on the step-phase telemetry subsystem and fans its
// records out to the given sinks (telemetry.NewJSONL, telemetry.NewCSV,
// telemetry.NewConsole, or your own) in registration order. The engine then
// times every step's phases (data wait, forward, backward, the
// gradient-reduce overlap window and its exposed tail, optimizer apply),
// instruments every collective call (algorithm, payload bytes, rank wall
// time), counts input-pipeline starvation, and aggregates evaluation and
// snapshot-write latencies — surfaced per step/epoch through the sinks and
// as the run-wide Result.Telemetry summary.
//
// Zero sinks is valid and cheap: the recorder only aggregates the summary,
// allocating nothing per step. Without this option telemetry is compiled
// out of the hot path entirely (no clock reads). Session.Close flushes the
// sinks.
func WithTelemetry(sinks ...telemetry.Sink) Option {
	return func(c *config) error {
		for _, s := range sinks {
			if s == nil {
				return fmt.Errorf("train: telemetry sink must not be nil")
			}
		}
		c.telemetryOn = true
		c.telemetrySinks = append(c.telemetrySinks, sinks...)
		return nil
	}
}

// WithResume restores full training state before the first Run: path names
// either a snapshot file or a snapshot directory, where the newest readable
// step-<n>.ckpt wins (falling back past files a crash truncated mid-write).
// The session must be built from the same configuration as the interrupted
// run — model, world, batch geometry, optimizer, seed, collective, dataset
// — which is validated against the snapshot's recorded fingerprint. The
// resumed run continues the original trajectory bit-for-bit;
// Result.Resumed reports that it happened.
func WithResume(path string) Option {
	return func(c *config) error {
		if path == "" {
			return fmt.Errorf("train: resume path must not be empty")
		}
		c.resume = path
		return nil
	}
}

// WithElasticResume is WithResume with the world-size requirement relaxed:
// the snapshot is resharded (internal/elastic) to the session's world before
// restoring, re-partitioning per-rank state and re-factorizing the batch
// geometry so the global batch — and with it the optimizer trajectory and LR
// schedule — is preserved. The configured per-replica batch and accumulation
// act as a factorization hint; the solver overrides them when they do not
// divide the preserved global batch. Resuming at the snapshot's own world is
// still bit-for-bit; at a different world the run is statistically
// continuous (same samples, same schedule, floating-point-level divergence).
func WithElasticResume(path string) Option {
	return func(c *config) error {
		if path == "" {
			return fmt.Errorf("train: resume path must not be empty")
		}
		c.resume = path
		c.elastic = true
		return nil
	}
}
