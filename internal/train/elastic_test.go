package train

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSessionElasticResumeAcrossWorlds: a world-2 session's snapshot resumes
// into a world-1 session under WithElasticResume, with the global batch — and
// therefore the LR schedule fingerprint — preserved by re-factorizing the
// per-replica batch and accumulation.
func TestSessionElasticResumeAcrossWorlds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "world2.ckpt")
	a, err := New(resumeOpts(WithCallbacks(StopAfterStep(3)))...)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if err := a.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	gb := a.GlobalBatch()

	// A plain resume at the wrong world must point at the escape hatch...
	_, err = New(resumeOpts(WithWorld(1), WithBNGroup(1), WithResume(path))...)
	if err == nil || !strings.Contains(err.Error(), "elastic") {
		t.Fatalf("plain world-1 resume of a world-2 snapshot = %v, want error pointing at elastic resharding", err)
	}

	// ...and the elastic resume must take it.
	b, err := New(resumeOpts(WithWorld(1), WithBNGroup(1), WithElasticResume(path))...)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.GlobalBatch() != gb {
		t.Fatalf("elastic resume changed the global batch: %d -> %d", gb, b.GlobalBatch())
	}
	if _, step, ok := b.ResumedFrom(); !ok || step != 3 {
		t.Fatalf("resumed at step %d (ok=%t), want 3", step, ok)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.StepsRun != 2*b.Engine().StepsPerEpoch()-3 {
		t.Fatalf("resumed run: Resumed=%t StepsRun=%d", res.Resumed, res.StepsRun)
	}
	if sync := b.Engine().WeightsInSync(); sync != "" {
		t.Fatalf("elastically resumed replicas out of sync at %s", sync)
	}
}

// TestSessionElasticResumeSameWorldBitForBit: when the world has not
// actually changed, WithElasticResume must be WithResume — the identity
// reshard passes the snapshot through and the run stays bit-for-bit.
func TestSessionElasticResumeSameWorldBitForBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "same.ckpt")
	a, err := New(resumeOpts(WithCallbacks(StopAfterStep(3)))...)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if err := a.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	plain, err := New(resumeOpts(WithResume(path))...)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	elastic, err := New(resumeOpts(WithElasticResume(path))...)
	if err != nil {
		t.Fatal(err)
	}
	defer elastic.Close()
	pres, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	eres, err := elastic.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.History) != len(eres.History) {
		t.Fatalf("eval history length %d vs %d", len(pres.History), len(eres.History))
	}
	for i := range pres.History {
		if pres.History[i].Accuracy != eres.History[i].Accuracy {
			t.Fatalf("eval %d: elastic %v vs plain %v", i, eres.History[i].Accuracy, pres.History[i].Accuracy)
		}
	}
	ps, err := plain.Engine().CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	es, err := elastic.Engine().CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ps.Keys() {
		ca, cb := ps.Components[key], es.Components[key]
		if cb == nil {
			t.Fatalf("elastic snapshot missing component %q", key)
		}
		for _, bk := range ca.Keys() {
			x, y := ca[bk], cb[bk]
			if x.Str != y.Str || len(x.F32) != len(y.F32) {
				t.Fatalf("%s/%s differs between plain and elastic same-world resume", key, bk)
			}
			for i := range x.F32 {
				if x.F32[i] != y.F32[i] {
					t.Fatalf("%s/%s: f32[%d] %v vs %v", key, bk, i, x.F32[i], y.F32[i])
				}
			}
			for i := range x.I64 {
				if x.I64[i] != y.I64[i] {
					t.Fatalf("%s/%s: i64[%d] %d vs %d", key, bk, i, x.I64[i], y.I64[i])
				}
			}
		}
	}
}

// TestSessionElasticResumeRejectsModelAxis: elastic resume is a data-axis
// operation; a hybrid target mesh is rejected at New, before any engine work.
func TestSessionElasticResumeRejectsModelAxis(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	a, err := New(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	_, err = New(resumeOpts(WithMesh(1, 2), WithBNGroup(1), WithElasticResume(path))...)
	if err == nil || !strings.Contains(err.Error(), "model axis") {
		t.Fatalf("elastic resume onto a 1x2 mesh = %v, want model-axis error", err)
	}
}
