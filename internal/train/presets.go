package train

import (
	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
)

// PaperRecipe composes the paper's large-batch training method (§3.1–3.4) at
// whatever scale the surrounding options choose: LARS, the linear LR scaling
// rule with warmup and polynomial (power-2) decay to zero, distributed batch
// norm over all replicas, bf16 convolutions, and label smoothing 0.1.
//
// lrPer256 and warmupEpochs are the two knobs Table 2 varies per batch size;
// LARS wants nominal LRs two orders of magnitude above SGD's (its layer-wise
// trust ratios shrink every update) — ~40 at mini scale.
func PaperRecipe(lrPer256, warmupEpochs float64) Option {
	return Options(
		WithOptimizer("lars", 1e-5),
		WithLinearScaling(lrPer256, warmupEpochs, PolynomialDecay),
		WithBNGroupAll(),
		WithPrecision(bf16.DefaultPolicy),
		WithLabelSmoothing(0.1),
		WithBNMomentum(0.9),
		WithDropout(ModelDefaultRate, ModelDefaultRate),
	)
}

// MiniRecipe is the complete laptop-scale instance of PaperRecipe — the
// quickstart configuration: EfficientNet-Pico on an 8-class SynthImageNet
// across 4 goroutine replicas, global batch 64, 8 epochs. It reaches well
// above chance in under a minute on a laptop. Every choice can be overridden
// by later options:
//
//	train.New(train.MiniRecipe(), train.WithEpochs(3))
func MiniRecipe() Option {
	return Options(
		PaperRecipe(40, 2),
		WithModel("pico"),
		WithWorld(4),
		WithPerReplicaBatch(16),
		WithEpochs(8),
		WithSeed(42),
		WithData(data.MiniConfig(8, 2048, 32)),
	)
}
