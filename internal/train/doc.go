// Package train is the one way to assemble and run a training job: a
// composable public API over the replica engine and the trainloop step
// engine. A Session is built from functional options (validated eagerly, no
// panics), observed through Callback hooks, and evaluated through a
// pluggable EvalStrategy — the composition of mechanisms behind the paper's
// headline result (LARS, linear LR scaling + warmup, distributed batch
// norm, bf16, and the distributed train+eval loop of §3.3) becomes
// one-option-away instead of one-copied-main-away:
//
//	sess, err := train.New(
//	    train.MiniRecipe(),                 // the paper recipe at laptop scale
//	    train.WithEpochs(3),                // override anything after a preset
//	    train.WithCallbacks(train.Progress(func(s string) { fmt.Println(s) })),
//	)
//	if err != nil { ... }
//	defer sess.Close()
//	res, err := sess.Run()
//
// Seams: Option configures (presets first, overrides after — options apply
// in order); Callback observes (OnStep/OnEval/OnCheckpoint/OnEnd, adapted
// from plain funcs via Funcs); EvalStrategy selects the §3.3 loop structure
// (Distributed vs Estimator); WithSnapshotEvery/WithResume run the
// checkpoint subsystem end to end; WithTelemetry attaches the step-phase
// telemetry subsystem (sinks: telemetry.NewJSONL/NewCSV/NewConsole) and
// fills Result.Telemetry with the run's throughput/phase/overlap summary.
//
// Paper: §3.1–3.5 compose here; Result carries Figure 1's time-to-peak
// metric and §3.3's serialized-evaluation counts.
package train
