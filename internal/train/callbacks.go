package train

import (
	"fmt"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/replica"
)

// Callback observes a running Session. All methods run synchronously on the
// training goroutine, in callback registration order. Compose behavior by
// registering several small callbacks rather than one monolith; Funcs
// adapts plain functions so only the events of interest need implementing.
type Callback interface {
	// OnStep fires after every global training step (1-based).
	OnStep(s *Session, step int, res replica.StepResult)
	// OnEval fires after every evaluation.
	OnEval(s *Session, pt EvalPoint)
	// OnCheckpoint fires after every checkpoint save attempt; err is nil on
	// success.
	OnCheckpoint(s *Session, path string, err error)
	// OnEnd fires once, after the loop finishes and the Result is complete.
	OnEnd(s *Session, res *Result)
}

// Funcs adapts functions into a Callback; nil fields are skipped.
type Funcs struct {
	Step       func(s *Session, step int, res replica.StepResult)
	Eval       func(s *Session, pt EvalPoint)
	Checkpoint func(s *Session, path string, err error)
	End        func(s *Session, res *Result)
}

// OnStep implements Callback.
func (f Funcs) OnStep(s *Session, step int, res replica.StepResult) {
	if f.Step != nil {
		f.Step(s, step, res)
	}
}

// OnEval implements Callback.
func (f Funcs) OnEval(s *Session, pt EvalPoint) {
	if f.Eval != nil {
		f.Eval(s, pt)
	}
}

// OnCheckpoint implements Callback.
func (f Funcs) OnCheckpoint(s *Session, path string, err error) {
	if f.Checkpoint != nil {
		f.Checkpoint(s, path, err)
	}
}

// OnEnd implements Callback.
func (f Funcs) OnEnd(s *Session, res *Result) {
	if f.End != nil {
		f.End(s, res)
	}
}

// Progress emits one human-readable line per evaluation (and one per failed
// checkpoint save) through emit — the classic training log.
func Progress(emit func(string)) Callback {
	return Funcs{
		Eval: func(_ *Session, pt EvalPoint) {
			emit(fmt.Sprintf("step %5d epoch %6.2f  top-1 %.4f  (%s)",
				pt.Step, pt.Epoch, pt.Accuracy, pt.Elapsed.Round(1e6)))
		},
		Checkpoint: func(_ *Session, path string, err error) {
			if err != nil {
				emit("checkpoint save failed: " + err.Error())
			}
		},
	}
}

// BestCheckpoint saves replica 0's model to path (atomic, fsynced,
// weights-only) after every evaluation that improves on the best accuracy
// seen so far. Failures are reported through Session.NotifyCheckpoint —
// they reach Result.CheckpointErrors and every callback's OnCheckpoint —
// but never abort training.
func BestCheckpoint(path string) Callback {
	best := 0.0
	return Funcs{
		Eval: func(s *Session, pt EvalPoint) {
			if s.restoredBest > best {
				// A resumed session already saved a checkpoint at the
				// snapshot's recorded best; a post-resume eval must beat
				// that, or the resumed run would overwrite best.ckpt with
				// a worse model the uninterrupted run would have kept.
				best = s.restoredBest
			}
			if pt.Accuracy <= best {
				return
			}
			best = pt.Accuracy
			s.NotifyCheckpoint(path, checkpoint.SaveWeightsFile(path, s.Engine().Replica(0).Model))
		},
	}
}

// StopAfterStep ends the run once the global step counter reaches n — the
// deterministic "kill at step k" used by resume tests and preemption drills
// (global numbering, so a resumed run is not re-stopped at a step it already
// passed).
func StopAfterStep(n int) Callback {
	return Funcs{
		Step: func(s *Session, step int, _ replica.StepResult) {
			if step >= n {
				s.Stop()
			}
		},
	}
}

// StopAtAccuracy ends the run early once evaluation accuracy reaches target
// (0 disables), marking Result.ReachedGoal.
func StopAtAccuracy(target float64) Callback {
	return Funcs{
		Eval: func(s *Session, pt EvalPoint) {
			if target > 0 && pt.Accuracy >= target {
				s.markGoal()
				s.Stop()
			}
		},
	}
}

// TrailingAccuracy tracks the mean training-batch accuracy over the last n
// global steps — the "final train accuracy" the sweep tables report.
type TrailingAccuracy struct {
	Funcs
	n    int
	vals []float64
}

// NewTrailingAccuracy returns a TrailingAccuracy over a window of n steps.
func NewTrailingAccuracy(n int) *TrailingAccuracy {
	if n < 1 {
		n = 1
	}
	return &TrailingAccuracy{n: n}
}

// OnStep implements Callback.
func (t *TrailingAccuracy) OnStep(_ *Session, _ int, res replica.StepResult) {
	t.vals = append(t.vals, res.Accuracy)
	if len(t.vals) > t.n {
		t.vals = t.vals[1:]
	}
}

// Mean returns the windowed mean (0 before any step has run).
func (t *TrailingAccuracy) Mean() float64 {
	if len(t.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range t.vals {
		sum += v
	}
	return sum / float64(len(t.vals))
}
