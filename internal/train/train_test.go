package train

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/checkpoint"
	"effnetscale/internal/data"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
)

// miniOpts is a tiny fast-training configuration shared by the loop tests.
func miniOpts(world, perBatch, bnGroup int, extra ...Option) []Option {
	base := []Option{
		WithModel("pico"),
		WithWorld(world),
		WithPerReplicaBatch(perBatch),
		WithBNGroup(bnGroup),
		WithData(data.MiniConfig(4, 256, 16)),
		WithOptimizer("sgd", 0),
		WithSchedule(schedule.Constant(0.1)),
		WithPrecision(bf16.FP32Policy),
		WithSeed(3),
		WithoutAugmentation(),
		WithEpochs(3),
		WithEvalSamples(16),
	}
	return append(base, extra...)
}

func TestOptionValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"no dataset", []Option{WithWorld(2)}, "dataset is required"},
		{"bad world", []Option{WithWorld(0)}, "world 0"},
		{"bad batch", []Option{WithPerReplicaBatch(-1)}, "per-replica batch"},
		{"bad epochs", []Option{WithEpochs(0)}, "epochs 0"},
		{"bad grad accum", []Option{WithGradAccum(0)}, "grad-accum"},
		{"bad smoothing", []Option{WithLabelSmoothing(1.5)}, "label smoothing"},
		{"bad bn momentum", []Option{WithBNMomentum(1)}, "BN momentum"},
		{"bad ema", []Option{WithEMA(1)}, "EMA decay"},
		{"bad target", []Option{WithTarget(2)}, "target accuracy"},
		{"bad lr", []Option{WithLinearScaling(0, 1, PolynomialDecay)}, "lr-per-256"},
		{"bad decay", []Option{WithLinearScaling(1, 1, Decay("linear"))}, "unknown decay"},
		{"nil schedule", []Option{WithSchedule(nil)}, "schedule"},
		{"nil strategy", []Option{WithEvalStrategy(nil)}, "strategy"},
		{"nil callback", []Option{WithCallbacks(nil)}, "callback"},
		{"nil option", []Option{nil}, "nil Option"},
		{"empty model", []Option{WithModel("")}, "model name"},
		{"empty ckpt path", []Option{WithBestCheckpoint("")}, "checkpoint path"},
		{"bad prefetch", []Option{WithPrefetch(0)}, "prefetch depth"},
		{"bn group does not divide", miniOpts(4, 2, 3), "does not divide"},
		{"unknown model", miniOpts(2, 2, 1, WithModel("b99")), "unknown model"},
		{"unknown optimizer", miniOpts(2, 2, 1, WithOptimizer("adagrad", 0)), "unknown optimizer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.opts...)
			if err == nil {
				t.Fatalf("New(%s) did not error", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestPrefetchOptionsPlumbThrough(t *testing.T) {
	on, err := New(miniOpts(2, 4, 1, WithPrefetch(3))...)
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	if got := on.Engine().Prefetching(); got != 3 {
		t.Fatalf("WithPrefetch(3): engine depth %d", got)
	}
	off, err := New(miniOpts(2, 4, 1, WithoutPrefetch())...)
	if err != nil {
		t.Fatal(err)
	}
	if got := off.Engine().Prefetching(); got != 0 {
		t.Fatalf("WithoutPrefetch: engine depth %d, want 0", got)
	}
	def, err := New(miniOpts(2, 4, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if got := def.Engine().Prefetching(); got != replica.DefaultPrefetchDepth {
		t.Fatalf("default: engine depth %d, want %d", got, replica.DefaultPrefetchDepth)
	}
	// Both modes must run and agree on the trajectory (no augmentation, so
	// the only difference is who renders).
	resOn, err := on.Run()
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := off.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resOn.PeakAccuracy != resOff.PeakAccuracy {
		t.Fatalf("prefetched peak %v != synchronous peak %v", resOn.PeakAccuracy, resOff.PeakAccuracy)
	}
	on.Close() // double Close is safe
}

func TestDecayByName(t *testing.T) {
	for _, name := range []string{"polynomial", "exponential", "cosine", "constant"} {
		if d, err := DecayByName(name); err != nil || string(d) != name {
			t.Fatalf("DecayByName(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := DecayByName("linear"); err == nil {
		t.Fatal("unknown decay must error")
	}
}

func TestCallbackFiringOrder(t *testing.T) {
	var events []string
	record := func(tag string) Callback {
		return Funcs{
			Step:       func(*Session, int, replica.StepResult) { events = append(events, tag+":step") },
			Eval:       func(*Session, EvalPoint) { events = append(events, tag+":eval") },
			Checkpoint: func(*Session, string, error) { events = append(events, tag+":ckpt") },
			End:        func(*Session, *Result) { events = append(events, tag+":end") },
		}
	}
	path := filepath.Join(t.TempDir(), "best.ckpt")
	sess, err := New(miniOpts(2, 8, 1,
		WithEpochs(1),
		WithCallbacks(record("a")),
		WithBestCheckpoint(path),
		WithCallbacks(record("b")),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	steps := res.StepsRun
	if steps == 0 {
		t.Fatal("no steps ran")
	}
	// Expected per-callback event counts: every step, every eval, one
	// checkpoint broadcast per save attempt, one end.
	saves := res.CheckpointsSaved + len(res.CheckpointErrors)
	if saves == 0 {
		t.Fatal("BestCheckpoint never attempted a save")
	}
	var a, b []string
	for _, e := range events {
		switch {
		case strings.HasPrefix(e, "a:"):
			a = append(a, strings.TrimPrefix(e, "a:"))
		case strings.HasPrefix(e, "b:"):
			b = append(b, strings.TrimPrefix(e, "b:"))
		}
	}
	// Both observers see every event the same number of times: one per
	// step, one per eval, one per checkpoint attempt, one end.
	evals := len(res.History)
	for tag, seq := range map[string][]string{"a": a, "b": b} {
		if got := countOf(seq, "step"); got != steps {
			t.Fatalf("%s: OnStep fired %d times, want %d", tag, got, steps)
		}
		if got := countOf(seq, "eval"); got != evals {
			t.Fatalf("%s: OnEval fired %d times, want %d", tag, got, evals)
		}
		if got := countOf(seq, "ckpt"); got != saves {
			t.Fatalf("%s: OnCheckpoint fired %d times, want %d", tag, got, saves)
		}
		if got := countOf(seq, "end"); got != 1 {
			t.Fatalf("%s: OnEnd fired %d times, want 1", tag, got)
		}
	}
	// Shape: training steps come first, evaluation after the epoch's steps,
	// and OnEnd is the very last pair of events, in registration order.
	if a[0] != "step" || events[0] != "a:step" {
		t.Fatalf("first events %v, want a:step first", events[:2])
	}
	if events[len(events)-2] != "a:end" || events[len(events)-1] != "b:end" {
		t.Fatalf("last events %v, want a:end then b:end", events[len(events)-2:])
	}
	// Registration order holds within each broadcast: a:step always directly
	// precedes b:step, and a:eval opens each eval broadcast. The checkpoint
	// broadcast is nested inside the eval broadcast (BestCheckpoint is
	// itself a callback between a and b), so the order per improving eval is
	// a:eval, a:ckpt, b:ckpt, b:eval.
	for i, e := range events {
		if e == "a:step" && events[i+1] != "b:step" {
			t.Fatalf("event %d: a:step followed by %q, want b:step", i, events[i+1])
		}
		if e == "a:ckpt" && events[i+1] != "b:ckpt" {
			t.Fatalf("event %d: a:ckpt followed by %q, want b:ckpt", i, events[i+1])
		}
		if e == "b:eval" && events[i-1] != "a:eval" && events[i-1] != "b:ckpt" {
			t.Fatalf("event %d: b:eval preceded by %q", i, events[i-1])
		}
	}
}

func countOf(xs []string, want string) int {
	n := 0
	for _, x := range xs {
		if x == want {
			n++
		}
	}
	return n
}

func TestEstimatorDistributedParity(t *testing.T) {
	// The §3.3 bottleneck, measured deterministically: with W replicas the
	// Estimator strategy pushes W× more eval samples through a single worker
	// than the distributed strategy pushes through each worker.
	const world = 4
	run := func(strategy EvalStrategy) *Result {
		sess, err := New(miniOpts(world, 4, 1,
			WithEpochs(2),
			WithEvalSamples(8),
			WithEvalStrategy(strategy),
		)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dist := run(Distributed{})
	est := run(Estimator{})
	if est.EvalSerialSamples != world*dist.EvalSerialSamples {
		t.Fatalf("estimator serial samples = %d, want %d (= %d × distributed %d)",
			est.EvalSerialSamples, world*dist.EvalSerialSamples, world, dist.EvalSerialSamples)
	}
	// Both strategies score the same distribution; results must be in-range
	// and training must have happened in both.
	if dist.PeakAccuracy <= 0 || est.PeakAccuracy <= 0 {
		t.Fatalf("degenerate accuracies: dist %.3f est %.3f", dist.PeakAccuracy, est.PeakAccuracy)
	}
}

func TestStrategyNames(t *testing.T) {
	if (Distributed{}).Name() != "distributed" || (Estimator{}).Name() != "estimator" {
		t.Fatal("strategy names wrong")
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	sess, err := New(miniOpts(2, 8, 2, WithEpochs(50), WithTarget(0.5))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedGoal {
		t.Fatalf("never reached 0.5 accuracy (peak %.3f after %d steps)", res.PeakAccuracy, res.StepsRun)
	}
	if !res.Stopped || res.StepsRun >= 50*sess.Engine().StepsPerEpoch() {
		t.Fatal("did not stop early despite reaching target")
	}
}

func TestBestCheckpointSaving(t *testing.T) {
	path := filepath.Join(t.TempDir(), "best.ckpt")
	sess, err := New(miniOpts(2, 8, 2, WithEpochs(2), WithBestCheckpoint(path))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointsSaved == 0 {
		t.Fatal("no best-so-far checkpoint written")
	}
	if len(res.CheckpointErrors) != 0 {
		t.Fatalf("unexpected checkpoint errors: %v", res.CheckpointErrors)
	}
	// The checkpoint must load back into a fresh model of the same family.
	cfg, _ := efficientnet.ConfigByName("pico", 4)
	cfg.Resolution = 16
	fresh := efficientnet.New(rand.New(rand.NewSource(123)), cfg)
	if err := checkpoint.LoadWeightsFile(path, fresh); err != nil {
		t.Fatalf("best checkpoint unloadable: %v", err)
	}
}

func TestCheckpointErrorsSurfaceInResult(t *testing.T) {
	// An unwritable checkpoint path must not abort training, but the
	// failures must be first-class in the Result — not only whispered
	// through a progress callback.
	path := filepath.Join(t.TempDir(), "no-such-dir", "best.ckpt")
	var notified int
	sess, err := New(miniOpts(2, 8, 1,
		WithEpochs(1),
		WithBestCheckpoint(path),
		WithCallbacks(Funcs{Checkpoint: func(_ *Session, _ string, err error) {
			if err != nil {
				notified++
			}
		}}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun == 0 {
		t.Fatal("training aborted by checkpoint failure")
	}
	if len(res.CheckpointErrors) == 0 {
		t.Fatal("checkpoint failures not surfaced in Result.CheckpointErrors")
	}
	if res.CheckpointsSaved != 0 {
		t.Fatalf("CheckpointsSaved = %d for unwritable path", res.CheckpointsSaved)
	}
	if notified != len(res.CheckpointErrors) {
		t.Fatalf("OnCheckpoint notified %d failures, Result has %d", notified, len(res.CheckpointErrors))
	}
}

func TestTrailingAccuracyWindow(t *testing.T) {
	ta := NewTrailingAccuracy(2)
	for _, acc := range []float64{0.1, 0.3, 0.5} {
		ta.OnStep(nil, 0, replica.StepResult{Accuracy: acc})
	}
	if got := ta.Mean(); got != 0.4 {
		t.Fatalf("trailing mean = %v, want 0.4 (last two of three)", got)
	}
}

func TestSessionRerunContinuesTraining(t *testing.T) {
	sess, err := New(miniOpts(2, 8, 1, WithEpochs(1))...)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.StepsRun == 0 || second.StepsRun == 0 {
		t.Fatal("rerun did not train")
	}
	if sync := sess.Engine().WeightsInSync(); sync != "" {
		t.Fatalf("replicas out of sync after rerun: %s", sync)
	}
}

func TestMiniRecipeReachesAccuracy(t *testing.T) {
	// The preset smoke test: the MiniRecipe composition (LARS + linear
	// scaling + warmup + poly decay + distributed BN + bf16) must clear 0.5
	// top-1 on 8-class SynthImageNet — far above the 0.125 chance rate. The
	// dataset is downscaled (resolution 16) and the run early-stops at 0.55
	// to keep the test fast; the recipe math is untouched.
	sess, err := New(
		MiniRecipe(),
		WithData(data.MiniConfig(8, 2048, 16)),
		WithEpochs(6),
		WithEvalEvery(16),
		WithTarget(0.55),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakAccuracy <= 0.5 {
		t.Fatalf("MiniRecipe peak top-1 %.3f, want > 0.5", res.PeakAccuracy)
	}
	if sync := sess.Engine().WeightsInSync(); sync != "" {
		t.Fatalf("replicas out of sync: %s", sync)
	}
}
