package train

import (
	"bytes"
	"strings"
	"testing"

	"effnetscale/internal/data"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
)

func telemetryOpts(extra ...Option) []Option {
	opts := []Option{
		WithModel("pico"),
		WithWorld(2),
		WithPerReplicaBatch(4),
		WithData(data.MiniConfig(4, 64, 16)),
		WithOptimizer("sgd", 0),
		WithSchedule(schedule.Constant(0.05)),
		WithSeed(3),
		WithEpochs(1),
		WithEvalSamples(8),
	}
	return append(opts, extra...)
}

// TestSessionTelemetry runs a session WithTelemetry end to end: sinks see
// per-step and eval records, Result.Telemetry carries the aggregate, and the
// snapshot writer's latencies flow through.
func TestSessionTelemetry(t *testing.T) {
	var buf bytes.Buffer
	var stepCount, evalCount int
	sink := telemetry.SinkFuncs{
		StepFn: func(telemetry.StepRecord) { stepCount++ },
		EvalFn: func(telemetry.EvalRecord) { evalCount++ },
	}
	sess, err := New(telemetryOpts(
		WithTelemetry(sink, telemetry.NewJSONL(&buf)),
		WithSnapshotDir(t.TempDir()),
		WithSnapshotEvery(2),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("Result.Telemetry nil on a WithTelemetry session")
	}
	if res.Telemetry.Steps != res.StepsRun {
		t.Fatalf("summary steps %d != StepsRun %d", res.Telemetry.Steps, res.StepsRun)
	}
	if stepCount != res.StepsRun {
		t.Fatalf("sink saw %d steps, want %d", stepCount, res.StepsRun)
	}
	if evalCount != len(res.History) {
		t.Fatalf("sink saw %d evals, want %d", evalCount, len(res.History))
	}
	if res.Telemetry.Evals != len(res.History) || res.Telemetry.EvalWall <= 0 {
		t.Fatalf("eval summary = %d passes, wall %v", res.Telemetry.Evals, res.Telemetry.EvalWall)
	}
	if res.Telemetry.EvalSerialSamples != res.EvalSerialSamples {
		t.Fatalf("summary serial samples %d != result %d", res.Telemetry.EvalSerialSamples, res.EvalSerialSamples)
	}
	if res.Telemetry.Snapshots == 0 || res.Telemetry.SnapshotWall <= 0 {
		t.Fatalf("snapshot summary = %d writes, wall %v", res.Telemetry.Snapshots, res.Telemetry.SnapshotWall)
	}
	if res.Telemetry.SnapshotErrors != 0 {
		t.Fatalf("snapshot errors = %d", res.Telemetry.SnapshotErrors)
	}
	sess.Close() // flush the JSONL sink (idempotent with the defer)
	if !strings.Contains(buf.String(), `"kind":"step"`) || !strings.Contains(buf.String(), `"kind":"snapshot"`) {
		t.Fatalf("JSONL output missing records: %q", buf.String())
	}
}

// TestSessionWithoutTelemetry pins the default: no recorder, no summary.
func TestSessionWithoutTelemetry(t *testing.T) {
	sess, err := New(telemetryOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Telemetry() != nil {
		t.Fatal("session without WithTelemetry has a recorder")
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("Result.Telemetry non-nil without WithTelemetry")
	}
}

// TestWithTelemetryNilSink rejects nil sinks eagerly.
func TestWithTelemetryNilSink(t *testing.T) {
	_, err := New(telemetryOpts(WithTelemetry(nil))...)
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("err = %v, want nil-sink rejection", err)
	}
}
