package train_test

import (
	"fmt"
	"log"

	"effnetscale/internal/data"
	"effnetscale/internal/train"
)

// ExampleNew is the quickstart: assemble a session from the paper's recipe
// preset, override it down to example scale (options apply in order, so
// anything a preset chose can be overridden after it), run it, and read the
// results. This is the README snippet, executed under `go test`.
func ExampleNew() {
	sess, err := train.New(
		train.MiniRecipe(), // the paper's recipe at laptop scale
		// Overrides shrink the run so this example finishes in seconds;
		// drop them to train the real quickstart configuration.
		train.WithWorld(2),
		train.WithPerReplicaBatch(8),
		train.WithData(data.MiniConfig(4, 128, 16)),
		train.WithEpochs(1),
		train.WithEvalSamples(16),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close() // releases input-pipeline goroutines, flushes sinks

	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global batch %d, %d steps, %s all-reduce, eval strategy %s\n",
		sess.GlobalBatch(), res.StepsRun, sess.Engine().Algorithm(), sess.Strategy().Name())
	fmt.Printf("evaluations recorded: %d\n", len(res.History))
	// Output:
	// global batch 16, 8 steps, ring all-reduce, eval strategy distributed
	// evaluations recorded: 1
}
