package train

import (
	"fmt"
	"os"
	"strings"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/elastic"
	"effnetscale/internal/mesh"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
	"effnetscale/internal/trainloop"
)

// loopComponent is the snapshot component the Session owns on top of the
// engine's: loop-level progress that is not engine state (best accuracy so
// far, which seeds the resumed run's peak tracking).
const loopComponent = "trainloop"

// EvalPoint is one evaluation snapshot (re-exported from the loop engine).
type EvalPoint = trainloop.EvalPoint

// Result summarizes a finished run.
type Result struct {
	*trainloop.Result
	// ReachedGoal reports that a StopAtAccuracy callback (WithTarget) ended
	// the run at its target accuracy.
	ReachedGoal bool
	// CheckpointsSaved counts successful checkpoint and snapshot writes.
	CheckpointsSaved int
	// CheckpointErrors collects checkpoint- and snapshot-save failures.
	// Saving never aborts training, but the failures are first-class
	// results — not whispers through a progress log.
	CheckpointErrors []error
	// Resumed reports that this run continued from a WithResume snapshot
	// rather than from step 0.
	Resumed bool
	// Telemetry is the run's aggregated step-phase/throughput/overlap
	// summary — nil unless the session was built WithTelemetry.
	Telemetry *telemetry.Summary
}

// Session is an assembled training job: a validated configuration, a live
// replica engine, and the callbacks and evaluation strategy that observe it.
type Session struct {
	cfg       *config
	eng       *replica.Engine
	sched     schedule.Schedule
	callbacks []Callback

	stop bool
	cur  *Result

	// writer persists periodic snapshots asynchronously (nil without
	// WithSnapshotEvery).
	writer *checkpoint.Writer
	// rec aggregates step-phase telemetry (nil without WithTelemetry).
	rec *telemetry.Recorder
	// best is the best evaluation accuracy seen across the session's
	// lifetime, including the pre-resume history restored from a snapshot.
	best float64
	// restoredBest is the best accuracy the resume snapshot recorded —
	// frozen at restore time so callbacks like BestCheckpoint can seed
	// their improvement thresholds without racing s.best's live updates.
	restoredBest float64
	// resumeStep/resumeFrom record a WithResume restore; resumePending
	// marks that the next Run should start mid-loop at resumeStep.
	resumeStep    int
	resumeFrom    string
	resumePending bool
}

// New validates opts eagerly and assembles the engine. All configuration
// errors — unknown model or optimizer, a BN group that does not divide the
// world, a missing dataset — surface here, before any training work.
func New(opts ...Option) (*Session, error) {
	c := defaultConfig()
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("train: nil Option")
		}
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.dataset == nil {
		return nil, fmt.Errorf("train: a dataset is required (use WithDataset, WithData, or a preset)")
	}
	msh := c.mesh
	if msh == (mesh.Shape{}) {
		msh = mesh.Shape{Data: c.world, Model: 1}
	}
	if msh.World() != c.world {
		return nil, fmt.Errorf("train: mesh %s covers %d ranks but the world is %d (WithWorld and WithMesh disagree)", msh, msh.World(), c.world)
	}
	// BN groups tile the data axis: the m model shards of a group compute
	// identical activations, so only data-parallel replicas contribute
	// distinct batch statistics.
	bnGroup := c.bnGroup
	if bnGroup == bnGroupWorld {
		bnGroup = msh.Data
	}
	if msh.Data%bnGroup != 0 {
		return nil, fmt.Errorf("train: BN group size %d does not divide the mesh's data axis %d", bnGroup, msh.Data)
	}
	if c.snapshotEvery > 0 && c.snapshotDir == "" {
		return nil, fmt.Errorf("train: WithSnapshotEvery needs WithSnapshotDir")
	}
	// An elastic resume must solve the batch geometry before the engine and
	// schedule exist: the snapshot's global batch wins over the configured
	// per-replica batch and accumulation, which act only as a factorization
	// hint. The resolved geometry feeds the engine, the LR schedule and the
	// lr-curve fingerprint, so a preserved global batch keeps all three
	// identical to the interrupted run's.
	var elasticSnap *checkpoint.Snapshot
	var elasticSrc string
	if c.resume != "" && c.elastic {
		if msh.Model > 1 {
			return nil, fmt.Errorf("train: elastic resume only re-partitions the data axis; the %s mesh has a model axis", msh)
		}
		snap, src, err := loadSnapshot(c.resume)
		if err != nil {
			return nil, fmt.Errorf("train: resume: %w", err)
		}
		plan, err := elastic.Plan(snap, mesh.Shape{Data: msh.Data, Model: 1},
			elastic.WithGeometryHint(c.perReplicaBatch, c.gradAccum))
		if err != nil {
			return nil, fmt.Errorf("train: resume %s: %w", src, err)
		}
		c.perReplicaBatch, c.gradAccum = plan.PerReplicaBatch, plan.GradAccum
		elasticSnap, elasticSrc = snap, src
	}
	globalBatch := msh.Data * c.perReplicaBatch * c.gradAccum
	sched := c.scheduleFn(globalBatch, c.epochs)

	var rec *telemetry.Recorder
	if c.telemetryOn {
		rec = telemetry.NewRecorder(c.telemetrySinks...)
	}

	eng, err := replica.New(replica.Config{
		World:               c.world,
		Mesh:                msh,
		PerReplicaBatch:     c.perReplicaBatch,
		Model:               c.model,
		Dataset:             c.dataset,
		OptimizerName:       c.optimizer,
		WeightDecay:         c.weightDecay,
		Schedule:            sched,
		BNGroupSize:         bnGroup,
		Slice:               c.slice,
		Precision:           c.precision,
		LabelSmoothing:      float32(c.labelSmoothing),
		Seed:                c.seed,
		DropoutOverride:     c.dropout,
		DropConnectOverride: c.dropConnect,
		NoAugment:           !c.augment,
		BNMomentum:          c.bnMomentum,
		GradAccumSteps:      c.gradAccum,
		EMADecay:            c.emaDecay,
		Collective:          c.collective,
		GradBucketBytes:     c.gradBuckets,
		NoBackwardOverlap:   c.noBackwardOverlap,
		PrefetchDepth:       c.prefetch,
		Telemetry:           rec,
	})
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	s := &Session{cfg: c, eng: eng, sched: sched, callbacks: c.callbacks, rec: rec}
	if c.targetAcc > 0 {
		s.callbacks = append(s.callbacks, StopAtAccuracy(c.targetAcc))
	}
	if c.resume != "" {
		var rerr error
		if c.elastic {
			rerr = s.restoreElastic(elasticSnap, elasticSrc, msh)
		} else {
			rerr = s.restoreFrom(c.resume)
		}
		if rerr != nil {
			eng.Close()
			return nil, rerr
		}
	}
	if c.snapshotEvery > 0 {
		w, err := checkpoint.NewWriter(c.snapshotDir, c.keepLast)
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("train: snapshot writer: %w", err)
		}
		s.writer = w
	}
	return s, nil
}

// loadSnapshot reads a snapshot from a file, or from a directory the newest
// readable one (falling back past files a crash truncated mid-write).
func loadSnapshot(path string) (snap *checkpoint.Snapshot, src string, err error) {
	if info, statErr := os.Stat(path); statErr == nil && info.IsDir() {
		return checkpoint.ReadLatestSnapshot(path)
	}
	snap, err = checkpoint.ReadSnapshotFile(path)
	return snap, path, err
}

// restoreFrom loads a snapshot (a file, or the newest readable one in a
// directory) and restores the engine and session progress from it.
func (s *Session) restoreFrom(path string) error {
	snap, src, err := loadSnapshot(path)
	if err != nil {
		return fmt.Errorf("train: resume: %w", err)
	}
	return s.restoreSnapshot(snap, src)
}

// restoreElastic reshards the pre-loaded snapshot to this session's world
// and restores from the result. New already solved the geometry from the
// same snapshot, so the reshard here is either the identity (same world —
// the original snapshot passes through, keeping the bit-for-bit path) or the
// per-rank re-partition.
func (s *Session) restoreElastic(snap *checkpoint.Snapshot, src string, msh mesh.Shape) error {
	resharded, err := elastic.Reshard(snap, mesh.Shape{Data: msh.Data, Model: 1},
		elastic.WithGeometryHint(s.cfg.perReplicaBatch, s.cfg.gradAccum))
	if err != nil {
		return fmt.Errorf("train: resume %s: %w", src, err)
	}
	return s.restoreSnapshot(resharded, src)
}

// restoreSnapshot restores the engine and session progress from a loaded
// snapshot.
func (s *Session) restoreSnapshot(snap *checkpoint.Snapshot, src string) error {
	// Strict component accounting: everything in the snapshot must be
	// either engine state or the session's loop component. Anything else
	// means the snapshot came from a richer setup and dropping it silently
	// would not be a faithful resume. Surplus replica/<r> components are
	// exempt — they mean the snapshot's world is larger than this session's,
	// and the engine's fingerprint validation turns that into the world-
	// mismatch error that names both sizes and the elastic escape hatch.
	expected := map[string]bool{loopComponent: true}
	for _, k := range s.eng.StateComponents() {
		expected[k] = true
	}
	for _, k := range snap.Keys() {
		if !expected[k] && !strings.HasPrefix(k, "replica/") {
			return fmt.Errorf("train: resume %s: snapshot carries unknown component %q", src, k)
		}
	}
	if err := s.eng.RestoreState(snap); err != nil {
		return fmt.Errorf("train: resume %s: %w", src, err)
	}
	// The loop component is optional (engine-level snapshots lack it); when
	// present it must be well-formed and agree with this session's length
	// and schedule.
	if lc, ok := snap.Components[loopComponent]; ok {
		if err := s.restoreLoopComponent(lc); err != nil {
			return fmt.Errorf("train: resume %s: %w", src, err)
		}
	}
	s.resumeStep = s.eng.StepCount()
	s.resumeFrom = src
	s.resumePending = true
	return nil
}

// ResumedFrom reports the snapshot a WithResume session restored from and
// the step it restored to (ok=false for fresh sessions).
func (s *Session) ResumedFrom() (path string, step int, ok bool) {
	return s.resumeFrom, s.resumeStep, s.resumeFrom != ""
}

// Engine exposes the underlying replica engine for direct inspection
// (WeightsInSync, Replica, StepsPerEpoch, ...).
func (s *Session) Engine() *replica.Engine { return s.eng }

// Close flushes and stops the async snapshot writer, flushes the telemetry
// sinks, and releases the engine's input-pipeline goroutines and buffers.
// The returned error is a telemetry sink flush failure (a full disk under a
// JSONL sink, say) — snapshot-write failures surfaced during the run via
// Result.CheckpointErrors. A Session must not Run after Close. Idempotent.
func (s *Session) Close() error {
	if s.writer != nil {
		s.writer.Close()
	}
	var err error
	if s.rec != nil {
		if cerr := s.rec.Close(); cerr != nil {
			err = fmt.Errorf("train: telemetry: %w", cerr)
		}
	}
	s.eng.Close()
	return err
}

// Telemetry exposes the session's telemetry recorder (nil unless built
// WithTelemetry) for direct Summary reads between Runs.
func (s *Session) Telemetry() *telemetry.Recorder { return s.rec }

// GlobalBatch returns the effective global batch size.
func (s *Session) GlobalBatch() int { return s.eng.GlobalBatch() }

// Schedule returns the resolved LR schedule (after linear scaling).
func (s *Session) Schedule() schedule.Schedule { return s.sched }

// Strategy returns the configured evaluation strategy.
func (s *Session) Strategy() EvalStrategy { return s.cfg.strategy }

// Stop requests that the run end after the current step. Safe to call from
// callbacks; outside callbacks it takes effect at the next step boundary.
func (s *Session) Stop() { s.stop = true }

// markGoal records that an accuracy target was reached (see StopAtAccuracy).
func (s *Session) markGoal() {
	if s.cur != nil {
		s.cur.ReachedGoal = true
	}
}

// NotifyCheckpoint records a checkpoint save attempt on the current Result
// and broadcasts it to every callback's OnCheckpoint. Callbacks that write
// checkpoints call this so failures become first-class run results.
func (s *Session) NotifyCheckpoint(path string, err error) {
	if s.cur != nil {
		if err != nil {
			s.cur.CheckpointErrors = append(s.cur.CheckpointErrors, err)
		} else {
			s.cur.CheckpointsSaved++
		}
	}
	for _, cb := range s.callbacks {
		cb.OnCheckpoint(s, path, err)
	}
}

// LoadCheckpoint restores a saved weights-only checkpoint into every
// replica, so training starts from those weights with the replicas bitwise
// in sync. It restores weights only — optimizer slots, EMA, RNG streams and
// the loop position start fresh; use WithResume for bit-for-bit
// continuation of an interrupted run.
func (s *Session) LoadCheckpoint(path string) error {
	for r := 0; r < s.eng.World(); r++ {
		if err := checkpoint.LoadWeightsFile(path, s.eng.Replica(r).Model); err != nil {
			return fmt.Errorf("train: load checkpoint: %w", err)
		}
	}
	return nil
}

// SaveCheckpoint writes replica 0's model to path in the weights-only
// serving format (atomic, fsynced write).
func (s *Session) SaveCheckpoint(path string) error {
	if err := checkpoint.SaveWeightsFile(path, s.eng.Replica(0).Model); err != nil {
		return fmt.Errorf("train: save checkpoint: %w", err)
	}
	return nil
}

// Snapshot synchronously captures the full training state — everything a
// WithResume session needs for a bit-for-bit continuation — and writes it
// to path atomically. Call it between Runs or from a callback (the engine
// is quiescent at both points); periodic in-run snapshots are the
// WithSnapshotEvery option's job.
func (s *Session) Snapshot(path string) error {
	snap, err := s.captureSnapshot()
	if err != nil {
		return fmt.Errorf("train: snapshot: %w", err)
	}
	if err := checkpoint.WriteSnapshotFile(path, snap); err != nil {
		return fmt.Errorf("train: snapshot: %w", err)
	}
	return nil
}

// scheduleCurve samples the resolved LR schedule across the configured run
// — the session-level half of the resume fingerprint. The engine validates
// everything it owns, but the schedule is a function the engine cannot
// inspect; a dense bit-exact sample of its values catches a resume launched
// with different -lr-per-256 / warmup / decay / epochs options, any of
// which would silently fork the trajectory.
func (s *Session) scheduleCurve() []float64 {
	const samples = 64
	curve := make([]float64, samples+1)
	total := float64(s.cfg.epochs)
	for i := range curve {
		curve[i] = s.sched.LR(total * float64(i) / samples)
	}
	return curve
}

// captureSnapshot captures engine state plus the session's loop component.
func (s *Session) captureSnapshot() (*checkpoint.Snapshot, error) {
	snap, err := s.eng.CaptureState()
	if err != nil {
		return nil, err
	}
	lc := checkpoint.Component{}
	lc.PutF64("best", s.best)
	lc.PutI64("epochs", int64(s.cfg.epochs))
	lc.PutF64s("lr-curve", s.scheduleCurve())
	if err := snap.Add(loopComponent, lc); err != nil {
		return nil, err
	}
	return snap, nil
}

// restoreLoopComponent validates the session-level fingerprint and restores
// loop progress. The component is optional (engine-level snapshots lack it),
// but when present it must agree with this session's configuration.
func (s *Session) restoreLoopComponent(lc checkpoint.Component) error {
	best, err := lc.F64("best")
	if err != nil {
		return err
	}
	epochs, err := lc.I64("epochs")
	if err != nil {
		return err
	}
	if int(epochs) != s.cfg.epochs {
		return fmt.Errorf("snapshot trained toward %d epochs, session configured with %d — a resumed run must keep the original length (it shapes the LR schedule)", epochs, s.cfg.epochs)
	}
	curve, err := lc.F64s("lr-curve")
	if err != nil {
		return err
	}
	cur := s.scheduleCurve()
	if len(curve) != len(cur) {
		return fmt.Errorf("snapshot LR curve has %d samples, session's has %d", len(curve), len(cur))
	}
	for i := range curve {
		if curve[i] != cur[i] {
			return fmt.Errorf("LR schedule differs from the interrupted run's (at %.1f%% of training: snapshot %g, session %g) — resume with the original schedule options", 100*float64(i)/float64(len(curve)-1), curve[i], cur[i])
		}
	}
	s.best = best
	s.restoredBest = best
	return nil
}

// drainWriterEvents surfaces finished async snapshot writes as checkpoint
// results. Called on the loop goroutine (and after Flush at run end), so
// callbacks keep their synchronous-dispatch guarantee.
func (s *Session) drainWriterEvents() {
	if s.writer == nil {
		return
	}
	for _, ev := range s.writer.Drain() {
		if s.rec != nil {
			rec := telemetry.SnapshotRecord{Step: ev.Step, Path: ev.Path, Wall: ev.Elapsed}
			if ev.Err != nil {
				rec.Err = ev.Err.Error()
			}
			s.rec.SnapshotDone(rec)
		}
		s.NotifyCheckpoint(ev.Path, ev.Err)
	}
}

// Run drives the trainloop engine to completion under the configured
// callbacks and evaluation strategy. Run may be called again to continue
// training the same weights for another round of epochs.
func (s *Session) Run() (*Result, error) {
	s.stop = false
	s.cur = &Result{}
	startStep := 0
	if s.resumePending {
		// Only the first Run after a restore starts mid-loop; later Runs
		// keep today's "another round of epochs" semantics.
		startStep = s.resumeStep
		s.resumePending = false
		s.cur.Resumed = true
	}
	if s.rec != nil {
		s.rec.BeginRun(telemetry.RunInfo{
			World:         s.eng.World(),
			GlobalBatch:   s.eng.GlobalBatch(),
			StepsPerEpoch: s.eng.StepsPerEpoch(),
			TotalSteps:    s.cfg.epochs * s.eng.StepsPerEpoch(),
		})
	}
	loopRes, err := trainloop.Run(trainloop.Config{
		Engine:                s.eng,
		Epochs:                s.cfg.epochs,
		EvalEverySteps:        s.cfg.evalEvery,
		EvalSamplesPerReplica: s.cfg.evalSamples,
		Evaluator:             s.cfg.strategy,
		Stop:                  func() bool { return s.stop },
		StartStep:             startStep,
		InitialBest:           s.best,
		Hooks: trainloop.Hooks{
			OnStep: func(step int, res replica.StepResult) {
				for _, cb := range s.callbacks {
					cb.OnStep(s, step, res)
				}
			},
			OnEval: func(pt EvalPoint) {
				if pt.Accuracy > s.best {
					s.best = pt.Accuracy
				}
				if s.rec != nil {
					s.rec.EvalDone(telemetry.EvalRecord{
						Step:          pt.Step,
						Epoch:         pt.Epoch,
						Accuracy:      pt.Accuracy,
						Wall:          pt.Wall,
						SerialSamples: pt.SerialSamples,
					})
				}
				for _, cb := range s.callbacks {
					cb.OnEval(s, pt)
				}
			},
			OnStepEnd: func(step int) {
				s.drainWriterEvents()
				if s.writer != nil && s.cfg.snapshotEvery > 0 && step%s.cfg.snapshotEvery == 0 {
					// Capture is synchronous (a memory copy of the state);
					// encoding and the fsynced write happen on the writer
					// goroutine while training continues.
					snap, err := s.captureSnapshot()
					if err != nil {
						s.NotifyCheckpoint(s.cfg.snapshotDir, err)
						return
					}
					s.writer.Enqueue(int64(step), snap)
				}
			},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	if s.writer != nil {
		// The run's Result owns every snapshot outcome: wait for in-flight
		// writes and fold their events in before handing the Result out.
		s.writer.Flush()
		s.drainWriterEvents()
	}
	res := s.cur
	res.Result = loopRes
	if s.rec != nil {
		sum := s.rec.Summary()
		res.Telemetry = &sum
	}
	for _, cb := range s.callbacks {
		cb.OnEnd(s, res)
	}
	s.cur = nil
	return res, nil
}
