// Package train is the one way to assemble and run a training job: a
// composable public API over the replica engine and the trainloop step
// engine. A Session is built from functional options (validated eagerly, no
// panics), observed through Callback hooks, and evaluated through a
// pluggable EvalStrategy — the composition of mechanisms behind the paper's
// headline result (LARS, linear LR scaling + warmup, distributed batch norm,
// bf16, and the distributed train+eval loop of §3.3) becomes one-option-away
// instead of one-copied-main-away:
//
//	sess, err := train.New(
//	    train.MiniRecipe(),                 // the paper recipe at laptop scale
//	    train.WithEpochs(3),                // override anything after a preset
//	    train.WithCallbacks(train.Progress(func(s string) { fmt.Println(s) })),
//	)
//	if err != nil { ... }
//	res, err := sess.Run()
package train

import (
	"fmt"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/trainloop"
)

// EvalPoint is one evaluation snapshot (re-exported from the loop engine).
type EvalPoint = trainloop.EvalPoint

// Result summarizes a finished run.
type Result struct {
	*trainloop.Result
	// ReachedGoal reports that a StopAtAccuracy callback (WithTarget) ended
	// the run at its target accuracy.
	ReachedGoal bool
	// CheckpointsSaved counts successful checkpoint writes.
	CheckpointsSaved int
	// CheckpointErrors collects checkpoint-save failures. Saving never
	// aborts training, but the failures are first-class results — not
	// whispers through a progress log.
	CheckpointErrors []error
}

// Session is an assembled training job: a validated configuration, a live
// replica engine, and the callbacks and evaluation strategy that observe it.
type Session struct {
	cfg       *config
	eng       *replica.Engine
	sched     schedule.Schedule
	callbacks []Callback

	stop bool
	cur  *Result
}

// New validates opts eagerly and assembles the engine. All configuration
// errors — unknown model or optimizer, a BN group that does not divide the
// world, a missing dataset — surface here, before any training work.
func New(opts ...Option) (*Session, error) {
	c := defaultConfig()
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("train: nil Option")
		}
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.dataset == nil {
		return nil, fmt.Errorf("train: a dataset is required (use WithDataset, WithData, or a preset)")
	}
	bnGroup := c.bnGroup
	if bnGroup == bnGroupWorld {
		bnGroup = c.world
	}
	if c.world%bnGroup != 0 {
		return nil, fmt.Errorf("train: BN group size %d does not divide world %d", bnGroup, c.world)
	}
	globalBatch := c.world * c.perReplicaBatch * c.gradAccum
	sched := c.scheduleFn(globalBatch, c.epochs)

	eng, err := replica.New(replica.Config{
		World:               c.world,
		PerReplicaBatch:     c.perReplicaBatch,
		Model:               c.model,
		Dataset:             c.dataset,
		OptimizerName:       c.optimizer,
		WeightDecay:         c.weightDecay,
		Schedule:            sched,
		BNGroupSize:         bnGroup,
		Slice:               c.slice,
		Precision:           c.precision,
		LabelSmoothing:      float32(c.labelSmoothing),
		Seed:                c.seed,
		DropoutOverride:     c.dropout,
		DropConnectOverride: c.dropConnect,
		NoAugment:           !c.augment,
		BNMomentum:          c.bnMomentum,
		GradAccumSteps:      c.gradAccum,
		EMADecay:            c.emaDecay,
		Collective:          c.collective,
		GradBucketBytes:     c.gradBuckets,
		PrefetchDepth:       c.prefetch,
	})
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	s := &Session{cfg: c, eng: eng, sched: sched, callbacks: c.callbacks}
	if c.targetAcc > 0 {
		s.callbacks = append(s.callbacks, StopAtAccuracy(c.targetAcc))
	}
	return s, nil
}

// Engine exposes the underlying replica engine for direct inspection
// (WeightsInSync, Replica, StepsPerEpoch, ...).
func (s *Session) Engine() *replica.Engine { return s.eng }

// Close releases the engine's input-pipeline goroutines and buffers. A
// Session must not Run after Close. Idempotent; a no-op when prefetching is
// disabled.
func (s *Session) Close() { s.eng.Close() }

// GlobalBatch returns the effective global batch size.
func (s *Session) GlobalBatch() int { return s.eng.GlobalBatch() }

// Schedule returns the resolved LR schedule (after linear scaling).
func (s *Session) Schedule() schedule.Schedule { return s.sched }

// Strategy returns the configured evaluation strategy.
func (s *Session) Strategy() EvalStrategy { return s.cfg.strategy }

// Stop requests that the run end after the current step. Safe to call from
// callbacks; outside callbacks it takes effect at the next step boundary.
func (s *Session) Stop() { s.stop = true }

// markGoal records that an accuracy target was reached (see StopAtAccuracy).
func (s *Session) markGoal() {
	if s.cur != nil {
		s.cur.ReachedGoal = true
	}
}

// NotifyCheckpoint records a checkpoint save attempt on the current Result
// and broadcasts it to every callback's OnCheckpoint. Callbacks that write
// checkpoints call this so failures become first-class run results.
func (s *Session) NotifyCheckpoint(path string, err error) {
	if s.cur != nil {
		if err != nil {
			s.cur.CheckpointErrors = append(s.cur.CheckpointErrors, err)
		} else {
			s.cur.CheckpointsSaved++
		}
	}
	for _, cb := range s.callbacks {
		cb.OnCheckpoint(s, path, err)
	}
}

// LoadCheckpoint restores a saved model into every replica, so training
// resumes with the replicas bitwise in sync.
func (s *Session) LoadCheckpoint(path string) error {
	for r := 0; r < s.eng.World(); r++ {
		if err := checkpoint.LoadFile(path, s.eng.Replica(r).Model); err != nil {
			return fmt.Errorf("train: load checkpoint: %w", err)
		}
	}
	return nil
}

// SaveCheckpoint writes replica 0's model to path (atomic write).
func (s *Session) SaveCheckpoint(path string) error {
	if err := checkpoint.SaveFile(path, s.eng.Replica(0).Model); err != nil {
		return fmt.Errorf("train: save checkpoint: %w", err)
	}
	return nil
}

// Run drives the trainloop engine to completion under the configured
// callbacks and evaluation strategy. Run may be called again to continue
// training the same weights for another round of epochs.
func (s *Session) Run() (*Result, error) {
	s.stop = false
	s.cur = &Result{}
	loopRes, err := trainloop.Run(trainloop.Config{
		Engine:                s.eng,
		Epochs:                s.cfg.epochs,
		EvalEverySteps:        s.cfg.evalEvery,
		EvalSamplesPerReplica: s.cfg.evalSamples,
		Evaluator:             s.cfg.strategy,
		Stop:                  func() bool { return s.stop },
		Hooks: trainloop.Hooks{
			OnStep: func(step int, res replica.StepResult) {
				for _, cb := range s.callbacks {
					cb.OnStep(s, step, res)
				}
			},
			OnEval: func(pt EvalPoint) {
				for _, cb := range s.callbacks {
					cb.OnEval(s, pt)
				}
			},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	res := s.cur
	res.Result = loopRes
	for _, cb := range s.callbacks {
		cb.OnEnd(s, res)
	}
	s.cur = nil
	return res, nil
}
