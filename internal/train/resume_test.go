package train

import (
	"path/filepath"
	"strings"
	"testing"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/data"
)

// resumeOpts is the adversarial end-to-end resume configuration: world > 1,
// prefetching on (the default), augmentation on, LARS slots, EMA shadow,
// distributed BN with groups smaller than the world, linear-scaling warmup
// schedule, an eval cadence that does not divide the epoch.
func resumeOpts(extra ...Option) []Option {
	base := []Option{
		WithModel("pico"),
		WithWorld(2),
		WithPerReplicaBatch(4),
		WithBNGroup(2),
		WithData(data.MiniConfig(4, 64, 16)),
		WithOptimizer("lars", 1e-5),
		WithLinearScaling(20, 1, PolynomialDecay),
		WithSeed(11),
		WithEMA(0.9),
		WithEpochs(2),
		WithEvalEvery(3),
		WithEvalSamples(8),
	}
	return append(base, extra...)
}

// TestSessionResumeBitForBit is the acceptance test for the snapshot API:
// training interrupted at an arbitrary (mid-epoch) step and resumed from
// the on-disk snapshot yields bit-for-bit identical weights, EMA shadow,
// optimizer slots, BN statistics and eval trajectory to the uninterrupted
// run — with prefetch on, at world > 1.
func TestSessionResumeBitForBit(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference run.
	ref, err := New(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	spe := ref.Engine().StepsPerEpoch()
	// Kill mid-epoch, into the second epoch, off the eval cadence.
	killAt := spe + spe/2
	for killAt%spe == 0 || killAt%3 == 0 {
		killAt++
	}
	if killAt >= 2*spe {
		t.Fatalf("test setup: killAt %d fell outside the run (%d steps)", killAt, 2*spe)
	}

	// Interrupted run: periodic snapshots, stopped at killAt.
	interrupted, err := New(resumeOpts(
		WithSnapshotDir(dir),
		WithSnapshotEvery(2),
		WithCallbacks(StopAfterStep(killAt)),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	intRes, err := interrupted.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !intRes.Stopped || intRes.StepsRun != killAt {
		t.Fatalf("interrupted run: stopped=%t after %d steps, want stop at %d", intRes.Stopped, intRes.StepsRun, killAt)
	}
	if len(intRes.CheckpointErrors) != 0 {
		t.Fatalf("snapshot errors during interrupted run: %v", intRes.CheckpointErrors)
	}
	if intRes.CheckpointsSaved == 0 {
		t.Fatal("no periodic snapshots written")
	}
	interrupted.Close() // the "kill": session torn down, state only on disk

	// Resumed run in a "fresh process": same options, WithResume(dir).
	resumed, err := New(resumeOpts(WithResume(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if _, step, ok := resumed.ResumedFrom(); !ok || step == 0 || step > killAt {
		t.Fatalf("ResumedFrom step %d (ok=%t), want a snapshot at or before %d", step, ok, killAt)
	}
	resRes, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resRes.Resumed {
		t.Fatal("Result.Resumed not set on the resumed run")
	}

	// The resumed run's eval trajectory must be bit-for-bit the tail of the
	// uninterrupted run's.
	if len(resRes.History) == 0 {
		t.Fatal("resumed run evaluated nothing")
	}
	tail := refRes.History[len(refRes.History)-len(resRes.History):]
	for i, pt := range resRes.History {
		want := tail[i]
		if pt.Step != want.Step || pt.Epoch != want.Epoch || pt.Accuracy != want.Accuracy {
			t.Fatalf("eval %d: resumed (step %d, acc %v) vs uninterrupted (step %d, acc %v)",
				i, pt.Step, pt.Accuracy, want.Step, want.Accuracy)
		}
	}
	if resRes.PeakAccuracy != refRes.PeakAccuracy {
		t.Fatalf("peak accuracy %v vs uninterrupted %v", resRes.PeakAccuracy, refRes.PeakAccuracy)
	}

	// Final state — weights, BN stats on every rank, optimizer slots, EMA
	// shadow, RNG cursors — must be bitwise identical. Snapshots capture
	// all of it, so compare snapshots.
	refSnap, err := ref.Engine().CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	resSnap, err := resumed.Engine().CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range refSnap.Keys() {
		ca, cb := refSnap.Components[key], resSnap.Components[key]
		if cb == nil {
			t.Fatalf("resumed snapshot missing component %q", key)
		}
		for _, bk := range ca.Keys() {
			a, b := ca[bk], cb[bk]
			if a.Str != b.Str || len(a.F32) != len(b.F32) {
				t.Fatalf("%s/%s differs after resume", key, bk)
			}
			for i := range a.F32 {
				if a.F32[i] != b.F32[i] {
					t.Fatalf("%s/%s: f32[%d] %v vs %v", key, bk, i, a.F32[i], b.F32[i])
				}
			}
			for i := range a.I64 {
				if a.I64[i] != b.I64[i] {
					t.Fatalf("%s/%s: i64[%d] %d vs %d", key, bk, i, a.I64[i], b.I64[i])
				}
			}
		}
	}
	if sync := resumed.Engine().WeightsInSync(); sync != "" {
		t.Fatalf("resumed replicas out of sync at %s", sync)
	}
}

func TestSessionSnapshotAndResumeFile(t *testing.T) {
	// Session.Snapshot writes a single resumable file; WithResume accepts
	// it directly (not just a directory).
	path := filepath.Join(t.TempDir(), "manual.ckpt")
	a, err := New(resumeOpts(WithCallbacks(StopAfterStep(3)))...)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if err := a.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	b, err := New(resumeOpts(WithResume(path))...)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, step, ok := b.ResumedFrom(); !ok || step != 3 {
		t.Fatalf("resumed at step %d (ok=%t), want 3", step, ok)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.StepsRun != 2*b.Engine().StepsPerEpoch()-3 {
		t.Fatalf("resumed run: Resumed=%t StepsRun=%d", res.Resumed, res.StepsRun)
	}
}

func TestResumeValidationErrors(t *testing.T) {
	// Missing path.
	if _, err := New(resumeOpts(WithResume(filepath.Join(t.TempDir(), "nope.ckpt")))...); err == nil {
		t.Fatal("resume from a missing file must error")
	}
	// Mismatched configuration: snapshot from seed 11, session at seed 12.
	path := filepath.Join(t.TempDir(), "seed11.ckpt")
	a, err := New(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	_, err = New(resumeOpts(WithSeed(12), WithResume(path))...)
	if err == nil || !strings.Contains(err.Error(), "configuration does not match") {
		t.Fatalf("mismatched-config resume = %v, want configuration error", err)
	}
	// Unknown component.
	snap, err := checkpoint.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Components["mystery"] = checkpoint.Component{}
	if err := checkpoint.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	_, err = New(resumeOpts(WithResume(path))...)
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("unknown-component resume = %v, want error naming it", err)
	}
	// Session-level fingerprint: a resume that would rebuild a different
	// run length or LR schedule must be rejected (both silently fork the
	// trajectory; the engine fingerprint cannot see them).
	path2 := filepath.Join(t.TempDir(), "loop.ckpt")
	if err := a.Snapshot(path2); err != nil {
		t.Fatal(err)
	}
	_, err = New(resumeOpts(WithEpochs(5), WithResume(path2))...)
	if err == nil || !strings.Contains(err.Error(), "epochs") {
		t.Fatalf("epochs-mismatch resume = %v, want epochs error", err)
	}
	_, err = New(resumeOpts(WithLinearScaling(30, 1, PolynomialDecay), WithResume(path2))...)
	if err == nil || !strings.Contains(err.Error(), "LR schedule") {
		t.Fatalf("schedule-mismatch resume = %v, want LR schedule error", err)
	}
	_, err = New(resumeOpts(WithLinearScaling(20, 1, CosineDecay), WithResume(path2))...)
	if err == nil || !strings.Contains(err.Error(), "LR schedule") {
		t.Fatalf("decay-kind-mismatch resume = %v, want LR schedule error", err)
	}
	// Snapshot cadence without a directory.
	if _, err := New(resumeOpts(WithSnapshotEvery(2))...); err == nil || !strings.Contains(err.Error(), "WithSnapshotDir") {
		t.Fatalf("snapshot-every without dir = %v, want WithSnapshotDir error", err)
	}
	// A weights-only checkpoint is not a resumable snapshot.
	wpath := filepath.Join(t.TempDir(), "weights.ckpt")
	if err := a.SaveCheckpoint(wpath); err != nil {
		t.Fatal(err)
	}
	_, err = New(resumeOpts(WithResume(wpath))...)
	if err == nil || !strings.Contains(err.Error(), "LoadWeights") {
		t.Fatalf("resume from weights-only checkpoint = %v, want pointer to LoadWeights", err)
	}
}

func TestKeepLastBoundsSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	sess, err := New(resumeOpts(
		WithSnapshotDir(dir),
		WithSnapshotEvery(1),
		WithKeepLast(2),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if res.CheckpointsSaved < 3 {
		t.Fatalf("only %d snapshots written; cadence broken", res.CheckpointsSaved)
	}
	paths, err := checkpoint.ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("kept %d snapshots, want 2: %v", len(paths), paths)
	}
}
