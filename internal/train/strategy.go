package train

import (
	"effnetscale/internal/replica"
	"effnetscale/internal/trainloop"
)

// EvalStrategy scores the model during training. The two §3.3 loop
// structures the paper contrasts ship as Distributed and Estimator; new
// strategies (async eval, sampled eval, EMA-weights eval) are additive —
// implement the interface and pass it to WithEvalStrategy.
type EvalStrategy = trainloop.Evaluator

// Distributed shards evaluation across all replicas — the Kumar et al.
// train+eval loop the paper adopts (§3.3). Each worker scores
// samplesPerReplica images of its validation shard and the correct/total
// counts are all-reduced.
type Distributed struct{}

// Name implements EvalStrategy.
func (Distributed) Name() string { return "distributed" }

// Evaluate implements EvalStrategy.
func (Distributed) Evaluate(e *replica.Engine, samplesPerReplica int) (float64, int, error) {
	serial := e.Replica(0).ValLen()
	if samplesPerReplica > 0 && samplesPerReplica < serial {
		serial = samplesPerReplica
	}
	acc, err := e.Evaluate(samplesPerReplica)
	return acc, serial, err
}

// Estimator evaluates the validation split on replica 0 only while every
// other replica idles, modelling TPUEstimator's separate evaluation-worker
// bottleneck (§3.3). It targets the same total sample count as Distributed —
// samplesPerReplica × world — but processes it serially on one worker, with
// the same model Distributed would score (EMA weights, training precision).
type Estimator struct{}

// Name implements EvalStrategy.
func (Estimator) Name() string { return "estimator" }

// Evaluate implements EvalStrategy.
func (Estimator) Evaluate(e *replica.Engine, samplesPerReplica int) (float64, int, error) {
	return e.EvaluateSerial(samplesPerReplica * e.World())
}
