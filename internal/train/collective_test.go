package train

import (
	"strings"
	"testing"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
)

func TestWithCollectiveValidation(t *testing.T) {
	if _, err := New(miniOpts(2, 2, 1, WithCollective(comm.Provider{}))...); err == nil {
		t.Fatal("zero collective provider must error at New")
	}
	if _, err := New(miniOpts(2, 2, 1, WithGradBuckets(0))...); err == nil {
		t.Fatal("zero grad bucket size must error at New")
	}
}

func TestSessionTrainsWithTorus2DCollective(t *testing.T) {
	// The acceptance bar for the Collective redesign: the paper's
	// hierarchical 2-D torus all-reduce selected through the public Session
	// API and exercised by a real mini-scale training run.
	sess, err := New(miniOpts(4, 4, 2,
		WithCollective(comm.Torus2DProvider(topology.Slice{Rows: 2, Cols: 2})),
		WithGradBuckets(2048),
		WithEpochs(2),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Engine().Algorithm(); got != "torus2d(2x2)" {
		t.Fatalf("engine algorithm = %q, want torus2d(2x2)", got)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakAccuracy < 0 || res.PeakAccuracy > 1 {
		t.Fatalf("peak accuracy %v out of range", res.PeakAccuracy)
	}
	if d := sess.Engine().WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged training over torus2d: %s", d)
	}
}

func TestSessionTrainsWithAutoCollective(t *testing.T) {
	sess, err := New(miniOpts(4, 2, 1,
		WithCollective(comm.AutoProvider(topology.Slice{Rows: 2, Cols: 2})),
		WithEpochs(1),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Engine().Algorithm(); !strings.HasPrefix(got, "auto[") {
		t.Fatalf("engine algorithm = %q, want auto[...]", got)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if d := sess.Engine().WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged training over auto: %s", d)
	}
}
