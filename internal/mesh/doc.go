// Package mesh lays a world of ranks out as a 2-D device mesh of D data
// shards × M model shards and derives the per-axis sub-communicators the
// hybrid data+model parallelism of the paper's §5 needs. It is the
// executable counterpart of podsim.HybridModelStep: where the simulator
// prices a D×M mesh analytically, Split actually wires one.
//
// The split reuses the comm.Provider seam unchanged: a Shape{Data: D,
// Model: M} places world rank r at coordinates (d, m) = (r/M, r%M)
// (row-major, model axis fastest), and Split calls Provider.Connect(D)
// once per m-column and Provider.Connect(M) once per d-row, so every rank
// ends up holding a data-axis comm.Collective (its column, rank = d) and
// a model-axis comm.Collective (its row, rank = m). Ring, tree, torus2d
// and auto providers all work as axis algorithms without modification —
// and because the engine instruments the provider before splitting,
// per-axis collective calls flow into telemetry like any other.
//
// The replica engine uses the two axes asymmetrically, mirroring §5:
// gradients of replicated parameters travel the data axis through the
// existing bucketed overlapped all-reduce, while channel-sharded layers
// exchange activations and gradient slices on the model axis (the
// mp_exchange step phase). Note the composition is structurally a
// reduce-scatter + all-gather of the full gradient across the whole mesh:
// each m-column all-reduces only the parameter rows its shard owns (the
// scatter), and the row-wise all-gather rebuilds the full gradient
// everywhere — the same decomposition a ring all-reduce performs
// internally, spelled out across two mesh axes.
package mesh
