package mesh

import (
	"strings"
	"sync"
	"testing"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
)

func TestShapeCoordsRoundTrip(t *testing.T) {
	s := Shape{Data: 3, Model: 4}
	for r := 0; r < s.World(); r++ {
		d, m := s.Coords(r)
		if d < 0 || d >= s.Data || m < 0 || m >= s.Model {
			t.Fatalf("rank %d → coords (%d,%d) out of grid", r, d, m)
		}
		if back := s.Rank(d, m); back != r {
			t.Fatalf("Rank(Coords(%d)) = %d", r, back)
		}
	}
}

func TestParseShape(t *testing.T) {
	s, err := ParseShape("2x2")
	if err != nil || s != (Shape{Data: 2, Model: 2}) {
		t.Fatalf("ParseShape(2x2) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "4", "0x2", "2x0", "-1x2", "axb", "2x2x2"} {
		if _, err := ParseShape(bad); err == nil {
			t.Fatalf("ParseShape(%q) did not fail", bad)
		}
	}
}

func TestShapeValidate(t *testing.T) {
	if err := (Shape{Data: 2, Model: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Shape{Data: 0, Model: 2}).Validate(); err == nil {
		t.Fatal("Data=0 accepted")
	}
	if err := (Shape{Data: 2, Model: -1}).Validate(); err == nil {
		t.Fatal("Model=-1 accepted")
	}
}

// TestSplitAxisSums checks the two axes really partition the grid: a
// data-axis all-reduce sums over each m-column, a model-axis all-reduce over
// each d-row, and the composition (data then model on the scalar) equals the
// global sum — every rank contributes exactly once per column and row.
func TestSplitAxisSums(t *testing.T) {
	shape := Shape{Data: 3, Model: 2}
	msh, err := Split(comm.RingProvider(), shape)
	if err != nil {
		t.Fatal(err)
	}
	world := shape.World()
	dataSum := make([]float32, world)
	modelSum := make([]float32, world)
	bothSum := make([]float32, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := float32(int(1) << r) // distinct power of two per rank: sums identify members
			a := []float32{v}
			msh.DataColl(r).AllReduce(a)
			dataSum[r] = a[0]
			b := []float32{v}
			msh.ModelColl(r).AllReduce(b)
			modelSum[r] = b[0]
			c := []float32{v}
			msh.DataColl(r).AllReduce(c)
			msh.ModelColl(r).AllReduce(c)
			bothSum[r] = c[0]
		}(r)
	}
	wg.Wait()
	var global float32
	for r := 0; r < world; r++ {
		global += float32(int(1) << r)
	}
	for r := 0; r < world; r++ {
		d, m := shape.Coords(r)
		var wantData, wantModel float32
		for dd := 0; dd < shape.Data; dd++ {
			wantData += float32(int(1) << shape.Rank(dd, m))
		}
		for mm := 0; mm < shape.Model; mm++ {
			wantModel += float32(int(1) << shape.Rank(d, mm))
		}
		if dataSum[r] != wantData {
			t.Errorf("rank %d data-axis sum = %g, want %g", r, dataSum[r], wantData)
		}
		if modelSum[r] != wantModel {
			t.Errorf("rank %d model-axis sum = %g, want %g", r, modelSum[r], wantModel)
		}
		if bothSum[r] != global {
			t.Errorf("rank %d data∘model sum = %g, want global %g", r, bothSum[r], global)
		}
	}
}

// TestSplitAxisRanksAndSizes pins each endpoint's rank/world to the grid
// coordinates.
func TestSplitAxisRanksAndSizes(t *testing.T) {
	shape := Shape{Data: 2, Model: 3}
	msh, err := Split(comm.TreeProvider(), shape)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < shape.World(); r++ {
		d, m := shape.Coords(r)
		if got := msh.DataColl(r); got.Rank() != d || got.WorldSize() != shape.Data {
			t.Errorf("rank %d data axis = (%d of %d), want (%d of %d)",
				r, got.Rank(), got.WorldSize(), d, shape.Data)
		}
		if got := msh.ModelColl(r); got.Rank() != m || got.WorldSize() != shape.Model {
			t.Errorf("rank %d model axis = (%d of %d), want (%d of %d)",
				r, got.Rank(), got.WorldSize(), m, shape.Model)
		}
	}
	if msh.Shape() != shape {
		t.Fatalf("Shape() = %v", msh.Shape())
	}
}

// TestSplitModelAllGather exercises the model-axis all-gather the sharded
// engine uses for activations and gradient slices.
func TestSplitModelAllGather(t *testing.T) {
	shape := Shape{Data: 2, Model: 2}
	msh, err := Split(comm.AutoProvider(topology.Slice{Rows: 1, Cols: 2}), shape)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([][]float32, shape.World())
	for r := 0; r < shape.World(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, m := shape.Coords(r)
			local := []float32{float32(10 * (m + 1))}
			out := make([]float32, shape.Model)
			msh.ModelColl(r).AllGather(local, out)
			got[r] = out
		}(r)
	}
	wg.Wait()
	for r := 0; r < shape.World(); r++ {
		if got[r][0] != 10 || got[r][1] != 20 {
			t.Errorf("rank %d all-gather = %v, want [10 20]", r, got[r])
		}
	}
}

func TestSplitRejectsBadInput(t *testing.T) {
	if _, err := Split(comm.Provider{}, Shape{Data: 2, Model: 2}); err == nil || !strings.Contains(err.Error(), "zero") {
		t.Fatalf("zero provider: err = %v", err)
	}
	if _, err := Split(comm.RingProvider(), Shape{Data: 0, Model: 2}); err == nil {
		t.Fatal("bad shape accepted")
	}
}
