package mesh

import (
	"fmt"
	"strconv"
	"strings"

	"effnetscale/internal/comm"
)

// Shape is a mesh geometry: Data replicas along the gradient-averaging axis,
// Model shards along the parameter-partition axis. The world size is
// Data×Model. Shape{D, 1} is pure data parallelism.
type Shape struct {
	Data  int
	Model int
}

// World returns the number of ranks the shape covers.
func (s Shape) World() int { return s.Data * s.Model }

// String renders the shape as "DxM" — the form fingerprints, error messages
// and CLI flags use.
func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.Data, s.Model) }

// Validate rejects non-positive axes.
func (s Shape) Validate() error {
	if s.Data < 1 || s.Model < 1 {
		return fmt.Errorf("mesh: shape %s must have both axes >= 1", s)
	}
	return nil
}

// ParseShape parses "DxM" (e.g. "2x2") back into a Shape.
func ParseShape(text string) (Shape, error) {
	a, b, ok := strings.Cut(text, "x")
	if ok {
		d, errD := strconv.Atoi(a)
		m, errM := strconv.Atoi(b)
		s := Shape{Data: d, Model: m}
		if errD == nil && errM == nil && s.Validate() == nil {
			return s, nil
		}
	}
	return Shape{}, fmt.Errorf("mesh: cannot parse shape %q (want \"DxM\", e.g. \"2x2\")", text)
}

// Coords returns the (d, m) grid coordinates of a world rank under the
// row-major layout (model axis fastest): rank = d*Model + m.
func (s Shape) Coords(rank int) (d, m int) { return rank / s.Model, rank % s.Model }

// Rank is the inverse of Coords.
func (s Shape) Rank(d, m int) int { return d*s.Model + m }

// Mesh holds one connected D×M device mesh: for every world rank, the
// data-axis collective (its column of the grid, size Data, rank = d) and the
// model-axis collective (its row, size Model, rank = m).
type Mesh struct {
	shape Shape
	data  []comm.Collective // index = world rank
	model []comm.Collective // index = world rank
}

// Split connects a D×M mesh over prov: one data-axis world per m-column and
// one model-axis world per d-row, each wired by the unmodified provider.
// Instrument the provider first to observe per-axis collective traffic.
func Split(prov comm.Provider, shape Shape) (*Mesh, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if prov.IsZero() {
		return nil, fmt.Errorf("mesh: zero comm.Provider")
	}
	world := shape.World()
	m := &Mesh{
		shape: shape,
		data:  make([]comm.Collective, world),
		model: make([]comm.Collective, world),
	}
	for col := 0; col < shape.Model; col++ {
		colls, err := prov.Connect(shape.Data)
		if err != nil {
			return nil, fmt.Errorf("mesh: connect data axis (column %d): %w", col, err)
		}
		for d := 0; d < shape.Data; d++ {
			m.data[shape.Rank(d, col)] = colls[d]
		}
	}
	for row := 0; row < shape.Data; row++ {
		colls, err := prov.Connect(shape.Model)
		if err != nil {
			return nil, fmt.Errorf("mesh: connect model axis (row %d): %w", row, err)
		}
		for mm := 0; mm < shape.Model; mm++ {
			m.model[shape.Rank(row, mm)] = colls[mm]
		}
	}
	return m, nil
}

// Shape returns the mesh geometry.
func (m *Mesh) Shape() Shape { return m.shape }

// DataColl returns world rank r's data-axis collective (world size
// Shape().Data; the endpoint's rank is r's d coordinate).
func (m *Mesh) DataColl(r int) comm.Collective { return m.data[r] }

// ModelColl returns world rank r's model-axis collective (world size
// Shape().Model; the endpoint's rank is r's m coordinate).
func (m *Mesh) ModelColl(r int) comm.Collective { return m.model[r] }
