package optim

import (
	"strings"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

func stateParams() []*nn.Param {
	mk := func(name string, noAdapt bool, shape ...int) *nn.Param {
		t := tensor.New(shape...)
		for i := range t.Data() {
			t.Data()[i] = float32(i%7) - 3
		}
		p := &nn.Param{Name: name, Value: autograd.Leaf(t, true), NoAdapt: noAdapt}
		p.Value.Grad = tensor.New(shape...)
		return p
	}
	return []*nn.Param{
		mk("conv.w", false, 4, 3, 3, 3),
		mk("bn.scale", true, 4),
		mk("fc.w", false, 4, 6),
	}
}

func setGrads(params []*nn.Param, scale float32) {
	for _, p := range params {
		for i := range p.Value.Grad.Data() {
			p.Value.Grad.Data()[i] = scale * (float32(i%5) - 2)
		}
	}
}

func stepN(o Optimizer, params []*nn.Param, n int, gradScale float32) {
	for s := 0; s < n; s++ {
		setGrads(params, gradScale*float32(s+1))
		o.Step(params, 0.05)
	}
}

func sameWeights(t *testing.T, a, b []*nn.Param, label string) {
	t.Helper()
	for i := range a {
		ad, bd := a[i].Data().Data(), b[i].Data().Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("%s: %s[%d] diverged: %v vs %v", label, a[i].Name, j, ad[j], bd[j])
			}
		}
	}
}

// TestOptimizerStateRoundTrip is the slot-fidelity contract: an optimizer
// restored from a snapshot must continue bit-for-bit identically to the one
// that kept running — for every optimizer the paper trains with.
func TestOptimizerStateRoundTrip(t *testing.T) {
	builders := map[string]func() Optimizer{
		"sgd":     func() Optimizer { return NewSGD(0.9, 1e-4) },
		"rmsprop": func() Optimizer { return NewRMSProp(1e-4) },
		"lars":    func() Optimizer { return NewLARS(1e-4) },
		"adam":    func() Optimizer { return NewAdam(1e-4) },
		"lamb":    func() Optimizer { return NewLAMB(1e-4) },
		"sm3":     func() Optimizer { return NewSM3(1e-4) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			ref := stateParams()
			refOpt := build()
			stepN(refOpt, ref, 5, 0.1)

			// Capture mid-run, restore into a fresh optimizer over fresh
			// params holding the same weights.
			comp, err := refOpt.CaptureState(ref)
			if err != nil {
				t.Fatal(err)
			}
			res := stateParams()
			for i := range res {
				res[i].Data().CopyFrom(ref[i].Data())
			}
			resOpt := build()
			if err := resOpt.RestoreState(res, comp); err != nil {
				t.Fatal(err)
			}

			// Both must now evolve identically.
			stepN(refOpt, ref, 4, 0.2)
			stepN(resOpt, res, 4, 0.2)
			sameWeights(t, ref, res, name)
		})
	}
}

func TestOptimizerStateRejectsMismatches(t *testing.T) {
	params := stateParams()
	o := NewAdam(0)
	stepN(o, params, 2, 0.1)
	comp, err := o.CaptureState(params)
	if err != nil {
		t.Fatal(err)
	}

	// Cross-optimizer restore.
	if err := NewSGD(0.9, 0).RestoreState(params, comp); err == nil || !strings.Contains(err.Error(), "saved from optimizer") {
		t.Fatalf("cross-optimizer restore = %v, want identity error", err)
	}
	// Slot for a parameter the model does not have.
	comp.PutF32("slot/ghost.w/0", []int{2}, []float32{1, 2})
	if err := NewAdam(0).RestoreState(params, comp); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("ghost-slot restore = %v, want unknown-parameter error", err)
	}
	delete(comp, "slot/ghost.w/0")
	// Slot index beyond what the optimizer keeps.
	comp.PutF32("slot/conv.w/7", params[0].Data().Shape(), params[0].Data().Data())
	if err := NewAdam(0).RestoreState(params, comp); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad-slot-index restore = %v, want out-of-range error", err)
	}
	delete(comp, "slot/conv.w/7")
	// Missing step counter.
	delete(comp, "steps")
	if err := NewAdam(0).RestoreState(params, comp); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("missing-steps restore = %v, want missing-state error", err)
	}
}

func TestEMAStateRoundTrip(t *testing.T) {
	ref := stateParams()
	e := NewWeightEMA(0.9)
	for s := 0; s < 4; s++ {
		setGrads(ref, 0.1)
		NewSGD(0.9, 0).Step(ref, 0.05)
		e.Update(ref)
	}
	comp, err := e.CaptureState(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := stateParams()
	for i := range res {
		res[i].Data().CopyFrom(ref[i].Data())
	}
	e2 := NewWeightEMA(0.9)
	if err := e2.RestoreState(res, comp); err != nil {
		t.Fatal(err)
	}
	if e2.Steps() != e.Steps() {
		t.Fatalf("restored steps %d, want %d", e2.Steps(), e.Steps())
	}
	e.Update(ref)
	e2.Update(res)
	if err := e.Swap(ref); err != nil {
		t.Fatal(err)
	}
	if err := e2.Swap(res); err != nil {
		t.Fatal(err)
	}
	sameWeights(t, ref, res, "ema-shadow")

	// Decay mismatch is rejected.
	if err := NewWeightEMA(0.5).RestoreState(res, comp); err == nil || !strings.Contains(err.Error(), "decay") {
		t.Fatalf("decay-mismatch restore = %v, want decay error", err)
	}
}
