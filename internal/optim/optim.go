package optim

import (
	"math"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. lr is the
// global learning rate for this step (produced by a schedule.Schedule).
//
// Every optimizer is a snapshot participant: CaptureState serializes its
// per-parameter slots (momentum buffers, second-moment accumulators) and
// scalar counters keyed by parameter name, and RestoreState rebuilds them so
// a resumed run steps bit-for-bit identically to the uninterrupted one.
type Optimizer interface {
	Step(params []*nn.Param, lr float64)
	Name() string
	// CaptureState serializes the optimizer's slots over params (deep copy).
	CaptureState(params []*nn.Param) (checkpoint.Component, error)
	// RestoreState replaces the optimizer's slots from a captured component,
	// validating optimizer identity, parameter names and shapes.
	RestoreState(params []*nn.Param, c checkpoint.Component) error
}

// state holds per-parameter optimizer slots, lazily allocated.
type state map[*nn.Param][]*tensor.Tensor

func (s state) get(p *nn.Param, n int) []*tensor.Tensor {
	if sl, ok := s[p]; ok {
		return sl
	}
	sl := make([]*tensor.Tensor, n)
	for i := range sl {
		sl[i] = tensor.New(p.Data().Shape()...)
	}
	s[p] = sl
	return sl
}

// --- SGD ---------------------------------------------------------------------

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	Momentum    float64
	WeightDecay float64
	slots       state
}

// NewSGD returns SGD with the given momentum and weight decay.
func NewSGD(momentum, weightDecay float64) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay, slots: state{}}
}

// Name implements Optimizer.
func (o *SGD) Name() string { return "sgd" }

// Step applies one update.
func (o *SGD) Step(params []*nn.Param, lr float64) {
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		w := p.Data()
		v := o.slots.get(p, 1)[0]
		wd := float32(o.WeightDecay)
		if p.NoAdapt {
			wd = 0
		}
		mu := float32(o.Momentum)
		lrf := float32(lr)
		for i := range w.Data() {
			grad := g.Data()[i] + wd*w.Data()[i]
			v.Data()[i] = mu*v.Data()[i] + grad
			w.Data()[i] -= lrf * v.Data()[i]
		}
	}
}

// --- RMSProp -------------------------------------------------------------------

// RMSProp is the TensorFlow-flavoured RMSProp used by the original
// EfficientNet training setup: decay 0.9, momentum 0.9, epsilon 1e-3,
// with L2 weight decay added to the gradient.
type RMSProp struct {
	Decay       float64
	Momentum    float64
	Eps         float64
	WeightDecay float64
	slots       state
}

// NewRMSProp returns RMSProp with the EfficientNet defaults.
func NewRMSProp(weightDecay float64) *RMSProp {
	return &RMSProp{Decay: 0.9, Momentum: 0.9, Eps: 1e-3, WeightDecay: weightDecay, slots: state{}}
}

// Name implements Optimizer.
func (o *RMSProp) Name() string { return "rmsprop" }

// Step applies one update.
func (o *RMSProp) Step(params []*nn.Param, lr float64) {
	rho := float32(o.Decay)
	mu := float32(o.Momentum)
	eps := float32(o.Eps)
	lrf := float32(lr)
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		w := p.Data()
		sl := o.slots.get(p, 2)
		ms, mom := sl[0], sl[1]
		wd := float32(o.WeightDecay)
		if p.NoAdapt {
			wd = 0
		}
		for i := range w.Data() {
			grad := g.Data()[i] + wd*w.Data()[i]
			ms.Data()[i] = rho*ms.Data()[i] + (1-rho)*grad*grad
			mom.Data()[i] = mu*mom.Data()[i] + lrf*grad/float32(math.Sqrt(float64(ms.Data()[i]))+float64(eps))
			w.Data()[i] -= mom.Data()[i]
		}
	}
}

// --- LARS ---------------------------------------------------------------------

// LARS implements Layer-wise Adaptive Rate Scaling (You, Gitman, Ginsburg
// 2017), the optimizer the paper uses to hold accuracy at batch sizes up to
// 65536. Each layer's update is rescaled by the trust ratio
// η·‖w‖/(‖g‖ + λ‖w‖), so layers with small weights relative to their
// gradients take proportionally smaller steps. Batch-norm parameters and
// biases (Param.NoAdapt) skip both adaptation and weight decay, following
// the paper's configuration.
type LARS struct {
	// Eta is the trust coefficient (You et al. use 0.001).
	Eta float64
	// Momentum is the SGD momentum applied after trust scaling.
	Momentum float64
	// WeightDecay is L2 regularization folded into the trust ratio.
	WeightDecay float64
	// Eps guards against division by zero for freshly-zero weights.
	Eps float64
	// UnadaptedLRScale multiplies the global LR for NoAdapt parameters
	// (batch-norm scale/shift and biases). LARS nominal LRs run two orders
	// of magnitude above plain-SGD LRs because the trust ratio shrinks
	// every adapted update; unadapted parameters see the LR raw, so
	// without this scale they blow up whenever gradients are not tiny.
	// 0.01 restores SGD-magnitude steps for them.
	UnadaptedLRScale float64
	slots            state
}

// NewLARS returns LARS with trust coefficient 0.001, momentum 0.9 and
// unadapted-parameter LR scale 0.01.
func NewLARS(weightDecay float64) *LARS {
	return &LARS{Eta: 0.001, Momentum: 0.9, WeightDecay: weightDecay, Eps: 1e-9, UnadaptedLRScale: 0.01, slots: state{}}
}

// Name implements Optimizer.
func (o *LARS) Name() string { return "lars" }

// TrustRatio computes the layer-wise adaptation factor for a parameter with
// the given weight and gradient norms. Exposed for tests and analysis.
func (o *LARS) TrustRatio(wNorm, gNorm float64) float64 {
	denom := gNorm + o.WeightDecay*wNorm
	if wNorm == 0 || denom <= o.Eps {
		return 1
	}
	return o.Eta * wNorm / denom
}

// Step applies one update.
func (o *LARS) Step(params []*nn.Param, lr float64) {
	mu := float32(o.Momentum)
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		w := p.Data()
		v := o.slots.get(p, 1)[0]
		var scale float64
		wd := float32(o.WeightDecay)
		if p.NoAdapt {
			// Unadapted parameters: plain momentum SGD at a rescaled LR,
			// no weight decay.
			scale = lr * o.UnadaptedLRScale
			wd = 0
		} else {
			scale = lr * o.TrustRatio(w.Norm(), g.Norm())
		}
		sf := float32(scale)
		for i := range w.Data() {
			grad := g.Data()[i] + wd*w.Data()[i]
			v.Data()[i] = mu*v.Data()[i] + sf*grad
			w.Data()[i] -= v.Data()[i]
		}
	}
}

// --- Adam ---------------------------------------------------------------------

// Adam is the standard Adam optimizer with bias correction.
type Adam struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	step         int
	slots        state
}

// NewAdam returns Adam with the usual (0.9, 0.999, 1e-8) constants.
func NewAdam(weightDecay float64) *Adam {
	return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay, slots: state{}}
}

// Name implements Optimizer.
func (o *Adam) Name() string { return "adam" }

// Step applies one update.
func (o *Adam) Step(params []*nn.Param, lr float64) {
	o.step++
	b1 := o.Beta1
	b2 := o.Beta2
	bc1 := 1 - math.Pow(b1, float64(o.step))
	bc2 := 1 - math.Pow(b2, float64(o.step))
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		w := p.Data()
		sl := o.slots.get(p, 2)
		m, v := sl[0], sl[1]
		wd := float32(o.WeightDecay)
		if p.NoAdapt {
			wd = 0
		}
		for i := range w.Data() {
			grad := float64(g.Data()[i] + wd*w.Data()[i])
			m.Data()[i] = float32(b1*float64(m.Data()[i]) + (1-b1)*grad)
			v.Data()[i] = float32(b2*float64(v.Data()[i]) + (1-b2)*grad*grad)
			mhat := float64(m.Data()[i]) / bc1
			vhat := float64(v.Data()[i]) / bc2
			w.Data()[i] -= float32(lr * mhat / (math.Sqrt(vhat) + o.Eps))
		}
	}
}

// --- LAMB ---------------------------------------------------------------------

// LAMB (You et al. 2019) combines Adam's per-element adaptivity with a
// LARS-style layer-wise trust ratio; it trained BERT in 76 minutes and is
// the natural large-batch alternative the related-work section cites.
type LAMB struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	step         int
	slots        state
}

// NewLAMB returns LAMB with standard constants.
func NewLAMB(weightDecay float64) *LAMB {
	return &LAMB{Beta1: 0.9, Beta2: 0.999, Eps: 1e-6, WeightDecay: weightDecay, slots: state{}}
}

// Name implements Optimizer.
func (o *LAMB) Name() string { return "lamb" }

// Step applies one update.
func (o *LAMB) Step(params []*nn.Param, lr float64) {
	o.step++
	b1, b2 := o.Beta1, o.Beta2
	bc1 := 1 - math.Pow(b1, float64(o.step))
	bc2 := 1 - math.Pow(b2, float64(o.step))
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		w := p.Data()
		sl := o.slots.get(p, 2)
		m, v := sl[0], sl[1]
		wd := o.WeightDecay
		if p.NoAdapt {
			wd = 0
		}
		update := make([]float64, w.Len())
		var updNorm float64
		for i := range w.Data() {
			grad := float64(g.Data()[i])
			m.Data()[i] = float32(b1*float64(m.Data()[i]) + (1-b1)*grad)
			v.Data()[i] = float32(b2*float64(v.Data()[i]) + (1-b2)*grad*grad)
			u := (float64(m.Data()[i]) / bc1) / (math.Sqrt(float64(v.Data()[i])/bc2) + o.Eps)
			u += wd * float64(w.Data()[i])
			update[i] = u
			updNorm += u * u
		}
		updNorm = math.Sqrt(updNorm)
		ratio := 1.0
		if !p.NoAdapt {
			wNorm := w.Norm()
			if wNorm > 0 && updNorm > 0 {
				ratio = wNorm / updNorm
			}
		}
		s := float32(lr * ratio)
		for i := range w.Data() {
			w.Data()[i] -= s * float32(update[i])
		}
	}
}

// --- SM3 ---------------------------------------------------------------------

// SM3 (Anil, Gupta, Koren, Singer 2019) is the memory-efficient adaptive
// optimizer named in the paper's future work (§5). Instead of a full
// second-moment tensor it keeps one accumulator per index of each dimension
// (rows+cols for a matrix), using the cover structure: the effective
// accumulator for an element is the minimum over the covers containing it.
type SM3 struct {
	Momentum    float64
	WeightDecay float64
	Eps         float64
	// accums[p][d] has length = p.Data().Dim(d).
	accums map[*nn.Param][][]float32
	moms   state
}

// NewSM3 returns SM3 with momentum 0.9.
func NewSM3(weightDecay float64) *SM3 {
	return &SM3{Momentum: 0.9, WeightDecay: weightDecay, Eps: 1e-12, accums: map[*nn.Param][][]float32{}, moms: state{}}
}

// Name implements Optimizer.
func (o *SM3) Name() string { return "sm3" }

// MemoryElems reports the number of accumulator elements SM3 keeps for a
// parameter of the given shape — the quantity the optimizer economizes
// compared to Adam's full-shape second moment.
func MemoryElems(shape []int) int {
	n := 0
	for _, d := range shape {
		n += d
	}
	return n
}

// Step applies one update.
func (o *SM3) Step(params []*nn.Param, lr float64) {
	mu := float32(o.Momentum)
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		w := p.Data()
		shape := w.Shape()
		acc, ok := o.accums[p]
		if !ok {
			acc = make([][]float32, len(shape))
			for d, sz := range shape {
				acc[d] = make([]float32, sz)
			}
			o.accums[p] = acc
		}
		mom := o.moms.get(p, 1)[0]
		wd := float32(o.WeightDecay)
		if p.NoAdapt {
			wd = 0
		}
		// Walk elements with an odometer over the multi-index.
		idx := make([]int, len(shape))
		lrf := float32(lr)
		for i := range w.Data() {
			grad := g.Data()[i] + wd*w.Data()[i]
			// nu = min over covers + g².
			nu := acc[0][idx[0]]
			for d := 1; d < len(idx); d++ {
				if a := acc[d][idx[d]]; a < nu {
					nu = a
				}
			}
			nu += grad * grad
			// Write back max into every cover.
			for d := range idx {
				if nu > acc[d][idx[d]] {
					acc[d][idx[d]] = nu
				}
			}
			var upd float32
			if nu > 0 {
				upd = grad / float32(math.Sqrt(float64(nu))+o.Eps)
			}
			mom.Data()[i] = mu*mom.Data()[i] + upd
			w.Data()[i] -= lrf * mom.Data()[i]
			// Advance odometer.
			for d := len(idx) - 1; d >= 0; d-- {
				idx[d]++
				if idx[d] < shape[d] {
					break
				}
				idx[d] = 0
			}
		}
	}
}

// ByName constructs an optimizer from its lower-case name. Supported:
// sgd, rmsprop, lars, adam, lamb, sm3.
func ByName(name string, weightDecay float64) (Optimizer, bool) {
	switch name {
	case "sgd":
		return NewSGD(0.9, weightDecay), true
	case "rmsprop":
		return NewRMSProp(weightDecay), true
	case "lars":
		return NewLARS(weightDecay), true
	case "adam":
		return NewAdam(weightDecay), true
	case "lamb":
		return NewLAMB(weightDecay), true
	case "sm3":
		return NewSM3(weightDecay), true
	}
	return nil, false
}
