package optim

import (
	"math"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

func emaParam(vals ...float32) *nn.Param {
	return &nn.Param{Name: "w", Value: autograd.Leaf(tensor.FromSlice(vals, len(vals)), true)}
}

func TestWeightEMATracksAverage(t *testing.T) {
	p := emaParam(0)
	e := NewWeightEMA(0.5)
	params := []*nn.Param{p}

	e.Update(params) // shadow seeded at 0
	p.Data().Data()[0] = 10
	e.Update(params)
	// Warmup decay at step 2: min(0.5, 3/12)=0.25 → shadow = 0.25*0 + 0.75*10 = 7.5
	e.Swap(params)
	if got := p.Data().Data()[0]; math.Abs(float64(got-7.5)) > 1e-6 {
		t.Fatalf("shadow after swap = %v, want 7.5", got)
	}
	// Swap back restores live weights.
	e.Swap(params)
	if got := p.Data().Data()[0]; got != 10 {
		t.Fatalf("live weight after double swap = %v, want 10", got)
	}
	if e.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", e.Steps())
	}
}

func TestWeightEMAWarmupCap(t *testing.T) {
	// With a huge decay, early updates must still move (warmup cap).
	p := emaParam(0)
	e := NewWeightEMA(0.9999)
	e.Update([]*nn.Param{p})
	p.Data().Data()[0] = 100
	e.Update([]*nn.Param{p})
	e.Swap([]*nn.Param{p})
	if p.Data().Data()[0] < 50 {
		t.Fatalf("warmup-capped EMA too sluggish: %v", p.Data().Data()[0])
	}
}

func TestWeightEMACopyTo(t *testing.T) {
	src := emaParam(4)
	dst := emaParam(0)
	e := NewWeightEMA(0.5)
	e.Update([]*nn.Param{src})
	e.CopyTo([]*nn.Param{src}, []*nn.Param{dst})
	if dst.Data().Data()[0] != 4 {
		t.Fatalf("CopyTo wrote %v, want 4", dst.Data().Data()[0])
	}
}

func TestWeightEMAConvergesToConstant(t *testing.T) {
	// If weights stop moving, the shadow must converge to them.
	p := emaParam(3)
	e := NewWeightEMA(0.9)
	for i := 0; i < 200; i++ {
		e.Update([]*nn.Param{p})
	}
	e.Swap([]*nn.Param{p})
	if math.Abs(float64(p.Data().Data()[0]-3)) > 1e-4 {
		t.Fatalf("EMA did not converge to constant weights: %v", p.Data().Data()[0])
	}
}
