package optim

import (
	"math"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

func emaParam(vals ...float32) *nn.Param {
	return &nn.Param{Name: "w", Value: autograd.Leaf(tensor.FromSlice(vals, len(vals)), true)}
}

func TestWeightEMATracksAverage(t *testing.T) {
	p := emaParam(0)
	e := NewWeightEMA(0.5)
	params := []*nn.Param{p}

	e.Update(params) // shadow seeded at 0
	p.Data().Data()[0] = 10
	e.Update(params)
	// Warmup decay at step 2: min(0.5, 3/12)=0.25 → shadow = 0.25*0 + 0.75*10 = 7.5
	e.Swap(params)
	if got := p.Data().Data()[0]; math.Abs(float64(got-7.5)) > 1e-6 {
		t.Fatalf("shadow after swap = %v, want 7.5", got)
	}
	// Swap back restores live weights.
	e.Swap(params)
	if got := p.Data().Data()[0]; got != 10 {
		t.Fatalf("live weight after double swap = %v, want 10", got)
	}
	if e.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", e.Steps())
	}
}

func TestWeightEMAWarmupCap(t *testing.T) {
	// With a huge decay, early updates must still move (warmup cap).
	p := emaParam(0)
	e := NewWeightEMA(0.9999)
	e.Update([]*nn.Param{p})
	p.Data().Data()[0] = 100
	e.Update([]*nn.Param{p})
	e.Swap([]*nn.Param{p})
	if p.Data().Data()[0] < 50 {
		t.Fatalf("warmup-capped EMA too sluggish: %v", p.Data().Data()[0])
	}
}

func TestWeightEMACopyTo(t *testing.T) {
	src := emaParam(4)
	dst := emaParam(0)
	e := NewWeightEMA(0.5)
	e.Update([]*nn.Param{src})
	e.CopyTo([]*nn.Param{src}, []*nn.Param{dst})
	if dst.Data().Data()[0] != 4 {
		t.Fatalf("CopyTo wrote %v, want 4", dst.Data().Data()[0])
	}
}

func TestWeightEMASwapBeforeUpdateSeedsShadows(t *testing.T) {
	// Swap before the first Update used to silently skip every param (no
	// shadow entries); now it seeds the shadows with the live weights, so
	// the swap is consistent (an identity exchange) and a later Update
	// continues from the seeded state.
	p := emaParam(4)
	e := NewWeightEMA(0.5)
	if err := e.Swap([]*nn.Param{p}); err != nil {
		t.Fatal(err)
	}
	if got := p.Data().Data()[0]; got != 4 {
		t.Fatalf("identity swap changed weight to %v", got)
	}
	if err := e.Swap([]*nn.Param{p}); err != nil {
		t.Fatal(err)
	}
	e.Update([]*nn.Param{p})
	if err := e.Swap([]*nn.Param{p}); err != nil {
		t.Fatal(err)
	}
	if got := p.Data().Data()[0]; got != 4 {
		t.Fatalf("shadow after seeded update = %v, want 4", got)
	}
}

func TestWeightEMASwapRejectsMismatchedParams(t *testing.T) {
	a, b := emaParam(1), emaParam(2)
	e := NewWeightEMA(0.5)
	e.Update([]*nn.Param{a})
	// b appeared after Update: a silent partial swap would leave the model
	// half live, half shadow. It must error without touching any weight.
	if err := e.Swap([]*nn.Param{a, b}); err == nil {
		t.Fatal("partial-shadow Swap must error")
	}
	if a.Data().Data()[0] != 1 || b.Data().Data()[0] != 2 {
		t.Fatalf("failed Swap mutated weights: %v %v", a.Data().Data()[0], b.Data().Data()[0])
	}
	// Dropping a tracked param is a mismatch too.
	e2 := NewWeightEMA(0.5)
	e2.Update([]*nn.Param{a, b})
	if err := e2.Swap([]*nn.Param{a}); err == nil {
		t.Fatal("shrunken-param-set Swap must error")
	}
}

func TestWeightEMAConvergesToConstant(t *testing.T) {
	// If weights stop moving, the shadow must converge to them.
	p := emaParam(3)
	e := NewWeightEMA(0.9)
	for i := 0; i < 200; i++ {
		e.Update([]*nn.Param{p})
	}
	e.Swap([]*nn.Param{p})
	if math.Abs(float64(p.Data().Data()[0]-3)) > 1e-4 {
		t.Fatalf("EMA did not converge to constant weights: %v", p.Data().Data()[0])
	}
}
