package optim

import (
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

// WeightEMA maintains an exponential moving average of model weights, the
// "shadow" parameters the reference EfficientNet training evaluates with
// (decay 0.9999 at full scale; shorter runs want smaller decays). The EMA
// smooths the large-batch optimization noise and typically adds a few tenths
// of a point of top-1 at evaluation time.
type WeightEMA struct {
	// Decay is the per-step EMA coefficient.
	Decay float64
	// shadow holds the averaged weights, keyed by parameter.
	shadow map[*nn.Param]*tensor.Tensor
	steps  int
}

// NewWeightEMA creates an EMA tracker with the given decay.
func NewWeightEMA(decay float64) *WeightEMA {
	return &WeightEMA{Decay: decay, shadow: map[*nn.Param]*tensor.Tensor{}}
}

// Update folds the current weights into the shadow average. Call once per
// optimizer step, after Optimizer.Step.
func (e *WeightEMA) Update(params []*nn.Param) {
	e.steps++
	// Debias early steps by warming the effective decay up, as in the TF
	// implementation: min(decay, (1+t)/(10+t)).
	d := e.Decay
	if warm := float64(1+e.steps) / float64(10+e.steps); warm < d {
		d = warm
	}
	df := float32(d)
	for _, p := range params {
		s, ok := e.shadow[p]
		if !ok {
			s = p.Data().Clone()
			e.shadow[p] = s
			continue
		}
		sd, wd := s.Data(), p.Data().Data()
		for i := range sd {
			sd[i] = df*sd[i] + (1-df)*wd[i]
		}
	}
}

// Steps reports how many updates have been folded in.
func (e *WeightEMA) Steps() int { return e.steps }

// Swap exchanges the live weights with the shadow weights. Call before
// evaluation and again after, restoring the training weights.
func (e *WeightEMA) Swap(params []*nn.Param) {
	for _, p := range params {
		s, ok := e.shadow[p]
		if !ok {
			continue
		}
		wd := p.Data().Data()
		sd := s.Data()
		for i := range wd {
			wd[i], sd[i] = sd[i], wd[i]
		}
	}
}

// CopyTo writes the shadow weights into dst parameters (same order/shapes as
// the tracked params). Parameters never updated keep dst's values.
func (e *WeightEMA) CopyTo(src, dst []*nn.Param) {
	for i, p := range src {
		if s, ok := e.shadow[p]; ok {
			dst[i].Data().CopyFrom(s)
		}
	}
}
