package optim

import (
	"fmt"
	"strings"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

// WeightEMA maintains an exponential moving average of model weights, the
// "shadow" parameters the reference EfficientNet training evaluates with
// (decay 0.9999 at full scale; shorter runs want smaller decays). The EMA
// smooths the large-batch optimization noise and typically adds a few tenths
// of a point of top-1 at evaluation time.
type WeightEMA struct {
	// Decay is the per-step EMA coefficient.
	Decay float64
	// shadow holds the averaged weights, keyed by parameter.
	shadow map[*nn.Param]*tensor.Tensor
	steps  int
}

// NewWeightEMA creates an EMA tracker with the given decay.
func NewWeightEMA(decay float64) *WeightEMA {
	return &WeightEMA{Decay: decay, shadow: map[*nn.Param]*tensor.Tensor{}}
}

// Update folds the current weights into the shadow average. Call once per
// optimizer step, after Optimizer.Step.
func (e *WeightEMA) Update(params []*nn.Param) {
	e.steps++
	// Debias early steps by warming the effective decay up, as in the TF
	// implementation: min(decay, (1+t)/(10+t)).
	d := e.Decay
	if warm := float64(1+e.steps) / float64(10+e.steps); warm < d {
		d = warm
	}
	df := float32(d)
	for _, p := range params {
		s, ok := e.shadow[p]
		if !ok {
			s = p.Data().Clone()
			e.shadow[p] = s
			continue
		}
		sd, wd := s.Data(), p.Data().Data()
		for i := range sd {
			sd[i] = df*sd[i] + (1-df)*wd[i]
		}
	}
}

// Steps reports how many updates have been folded in.
func (e *WeightEMA) Steps() int { return e.steps }

// Swap exchanges the live weights with the shadow weights. Call before
// evaluation and again after, restoring the training weights.
//
// Called before the first Update, Swap seeds every shadow with the current
// weights (an identity swap, but a consistent one). A partial shadow — some
// params tracked, others not, as happens when the param set changes between
// Update and Swap — is an error, detected before any weight is touched:
// the old behaviour of silently skipping untracked params left the model in
// a mixed live/shadow state that evaluated garbage.
func (e *WeightEMA) Swap(params []*nn.Param) error {
	if len(e.shadow) == 0 {
		for _, p := range params {
			e.shadow[p] = p.Data().Clone()
		}
	}
	if len(e.shadow) != len(params) {
		return fmt.Errorf("optim: EMA tracks %d params, Swap got %d — param set changed since Update", len(e.shadow), len(params))
	}
	for _, p := range params {
		if _, ok := e.shadow[p]; !ok {
			return fmt.Errorf("optim: EMA has no shadow for %q — param set changed since Update", p.Name)
		}
	}
	for _, p := range params {
		wd := p.Data().Data()
		sd := e.shadow[p].Data()
		for i := range wd {
			wd[i], sd[i] = sd[i], wd[i]
		}
	}
	return nil
}

// CopyTo writes the shadow weights into dst parameters (same order/shapes as
// the tracked params). Parameters never updated keep dst's values.
func (e *WeightEMA) CopyTo(src, dst []*nn.Param) {
	for i, p := range src {
		if s, ok := e.shadow[p]; ok {
			dst[i].Data().CopyFrom(s)
		}
	}
}

// CaptureState serializes the shadow weights (keyed by parameter name), the
// update count driving warmup debiasing, and the decay, for the snapshot
// subsystem.
func (e *WeightEMA) CaptureState(params []*nn.Param) (checkpoint.Component, error) {
	if _, err := nn.ParamIndex(params); err != nil {
		return nil, err
	}
	c := checkpoint.Component{}
	c.PutF64("decay", e.Decay)
	c.PutI64("steps", int64(e.steps))
	for _, p := range params {
		if s, ok := e.shadow[p]; ok {
			c.PutF32("shadow/"+p.Name, s.Shape(), s.Data())
		}
	}
	return c, nil
}

// RestoreState rebuilds the shadow from a captured component, validating the
// decay, parameter names and shapes; unknown shadow entries are an error.
func (e *WeightEMA) RestoreState(params []*nn.Param, c checkpoint.Component) error {
	decay, err := c.F64("decay")
	if err != nil {
		return err
	}
	if decay != e.Decay {
		return fmt.Errorf("optim: snapshot EMA decay %g, tracker configured with %g", decay, e.Decay)
	}
	steps, err := c.I64("steps")
	if err != nil {
		return err
	}
	idx, err := nn.ParamIndex(params)
	if err != nil {
		return err
	}
	shadow := map[*nn.Param]*tensor.Tensor{}
	for key := range c {
		if key == "decay" || key == "steps" {
			continue
		}
		name, ok := strings.CutPrefix(key, "shadow/")
		if !ok {
			return fmt.Errorf("optim: unknown state %q in EMA snapshot", key)
		}
		p, ok := idx[name]
		if !ok {
			return fmt.Errorf("optim: EMA snapshot has shadow for unknown parameter %q", name)
		}
		data, err := c.F32(key, p.Data().Shape())
		if err != nil {
			return err
		}
		t := tensor.New(p.Data().Shape()...)
		copy(t.Data(), data)
		shadow[p] = t
	}
	e.shadow = shadow
	e.steps = int(steps)
	return nil
}
