package optim

import (
	"fmt"
	"strconv"
	"strings"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/nn"
)

// This file implements snapshot state capture/restore for every optimizer:
// the momentum buffers and second-moment accumulators that live in the
// per-parameter slot map, plus scalar counters (Adam/LAMB bias-correction
// steps) and SM3's per-dimension cover accumulators. State is keyed by
// parameter name — the stable identity that survives process restarts —
// and restore validates names, shapes and counters so a snapshot from a
// different run shape fails loudly instead of training on garbage.

// captureSlotState serializes a slot map: one "slot/<param>/<i>" blob per
// slot tensor, plus the optimizer name for cross-optimizer restore checks.
func captureSlotState(name string, slots state, params []*nn.Param) (checkpoint.Component, error) {
	if _, err := nn.ParamIndex(params); err != nil {
		return nil, err
	}
	c := checkpoint.Component{}
	c.PutStr("name", name)
	for _, p := range params {
		sl, ok := slots[p]
		if !ok {
			// Never stepped (no gradient yet): nothing to save; restore
			// recreates the same lazily-zero state.
			continue
		}
		for i, t := range sl {
			c.PutF32(fmt.Sprintf("slot/%s/%d", p.Name, i), t.Shape(), t.Data())
		}
	}
	return c, nil
}

// restoreSlotState rebuilds a slot map from a captured component. extraKeys
// names the non-slot blobs the calling optimizer owns (e.g. "steps");
// anything else that is not a well-formed slot for a known parameter is an
// error — extra state means the snapshot belongs to a different setup.
func restoreSlotState(name string, slots *state, nSlots int, params []*nn.Param, c checkpoint.Component, extraKeys ...string) error {
	saved, err := c.Str("name")
	if err != nil {
		return err
	}
	if saved != name {
		return fmt.Errorf("optim: snapshot saved from optimizer %q, restoring into %q", saved, name)
	}
	idx, err := nn.ParamIndex(params)
	if err != nil {
		return err
	}
	known := map[string]bool{"name": true}
	for _, k := range extraKeys {
		known[k] = true
	}
	fresh := state{}
	for key := range c {
		if known[key] {
			continue
		}
		rest, ok := strings.CutPrefix(key, "slot/")
		if !ok {
			return fmt.Errorf("optim: unknown state %q in %s snapshot", key, name)
		}
		j := strings.LastIndex(rest, "/")
		if j <= 0 {
			return fmt.Errorf("optim: malformed slot key %q", key)
		}
		pname := rest[:j]
		i, err := strconv.Atoi(rest[j+1:])
		if err != nil || i < 0 || i >= nSlots {
			return fmt.Errorf("optim: slot key %q out of range (optimizer %s keeps %d slots)", key, name, nSlots)
		}
		p, ok := idx[pname]
		if !ok {
			return fmt.Errorf("optim: snapshot has slot state for unknown parameter %q", pname)
		}
		data, err := c.F32(key, p.Data().Shape())
		if err != nil {
			return err
		}
		sl := fresh.get(p, nSlots)
		copy(sl[i].Data(), data)
	}
	*slots = fresh
	return nil
}

// CaptureState implements Optimizer.
func (o *SGD) CaptureState(params []*nn.Param) (checkpoint.Component, error) {
	return captureSlotState(o.Name(), o.slots, params)
}

// RestoreState implements Optimizer.
func (o *SGD) RestoreState(params []*nn.Param, c checkpoint.Component) error {
	return restoreSlotState(o.Name(), &o.slots, 1, params, c)
}

// CaptureState implements Optimizer.
func (o *RMSProp) CaptureState(params []*nn.Param) (checkpoint.Component, error) {
	return captureSlotState(o.Name(), o.slots, params)
}

// RestoreState implements Optimizer.
func (o *RMSProp) RestoreState(params []*nn.Param, c checkpoint.Component) error {
	return restoreSlotState(o.Name(), &o.slots, 2, params, c)
}

// CaptureState implements Optimizer.
func (o *LARS) CaptureState(params []*nn.Param) (checkpoint.Component, error) {
	return captureSlotState(o.Name(), o.slots, params)
}

// RestoreState implements Optimizer.
func (o *LARS) RestoreState(params []*nn.Param, c checkpoint.Component) error {
	return restoreSlotState(o.Name(), &o.slots, 1, params, c)
}

// CaptureState implements Optimizer.
func (o *Adam) CaptureState(params []*nn.Param) (checkpoint.Component, error) {
	c, err := captureSlotState(o.Name(), o.slots, params)
	if err != nil {
		return nil, err
	}
	c.PutI64("steps", int64(o.step))
	return c, nil
}

// RestoreState implements Optimizer.
func (o *Adam) RestoreState(params []*nn.Param, c checkpoint.Component) error {
	steps, err := c.I64("steps")
	if err != nil {
		return err
	}
	if err := restoreSlotState(o.Name(), &o.slots, 2, params, c, "steps"); err != nil {
		return err
	}
	o.step = int(steps)
	return nil
}

// CaptureState implements Optimizer.
func (o *LAMB) CaptureState(params []*nn.Param) (checkpoint.Component, error) {
	c, err := captureSlotState(o.Name(), o.slots, params)
	if err != nil {
		return nil, err
	}
	c.PutI64("steps", int64(o.step))
	return c, nil
}

// RestoreState implements Optimizer.
func (o *LAMB) RestoreState(params []*nn.Param, c checkpoint.Component) error {
	steps, err := c.I64("steps")
	if err != nil {
		return err
	}
	if err := restoreSlotState(o.Name(), &o.slots, 2, params, c, "steps"); err != nil {
		return err
	}
	o.step = int(steps)
	return nil
}

// CaptureState implements Optimizer. SM3's state is the per-dimension cover
// accumulators ("accum/<param>/<dim>") plus the momentum slot.
func (o *SM3) CaptureState(params []*nn.Param) (checkpoint.Component, error) {
	c, err := captureSlotState(o.Name(), o.moms, params)
	if err != nil {
		return nil, err
	}
	for _, p := range params {
		acc, ok := o.accums[p]
		if !ok {
			continue
		}
		for d, cover := range acc {
			c.PutF32(fmt.Sprintf("accum/%s/%d", p.Name, d), []int{len(cover)}, cover)
		}
	}
	return c, nil
}

// RestoreState implements Optimizer.
func (o *SM3) RestoreState(params []*nn.Param, c checkpoint.Component) error {
	idx, err := nn.ParamIndex(params)
	if err != nil {
		return err
	}
	// Split the component: the shared helper handles "slot/..." momentum
	// blobs and rejects unknowns, so accumulator blobs are peeled first.
	moms := checkpoint.Component{}
	accums := map[*nn.Param][][]float32{}
	for key, blob := range c {
		rest, ok := strings.CutPrefix(key, "accum/")
		if !ok {
			moms[key] = blob
			continue
		}
		j := strings.LastIndex(rest, "/")
		if j <= 0 {
			return fmt.Errorf("optim: malformed accumulator key %q", key)
		}
		pname := rest[:j]
		d, err := strconv.Atoi(rest[j+1:])
		if err != nil || d < 0 {
			return fmt.Errorf("optim: malformed accumulator key %q", key)
		}
		p, ok := idx[pname]
		if !ok {
			return fmt.Errorf("optim: snapshot has accumulator state for unknown parameter %q", pname)
		}
		shape := p.Data().Shape()
		if d >= len(shape) {
			return fmt.Errorf("optim: accumulator %q names dimension %d of a rank-%d parameter", key, d, len(shape))
		}
		data, err := c.F32(key, []int{shape[d]})
		if err != nil {
			return err
		}
		acc, ok := accums[p]
		if !ok {
			acc = make([][]float32, len(shape))
			accums[p] = acc
		}
		acc[d] = append([]float32(nil), data...)
	}
	for p, acc := range accums {
		for d, cover := range acc {
			if cover == nil {
				return fmt.Errorf("optim: snapshot is missing accumulator dimension %d of parameter %q", d, p.Name)
			}
		}
	}
	if err := restoreSlotState(o.Name(), &o.moms, 1, params, moms); err != nil {
		return err
	}
	o.accums = accums
	return nil
}
