package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"effnetscale/internal/autograd"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

// quadParam builds a parameter holding w and a gradient equal to
// dL/dw for L = 0.5*||w - target||^2, i.e. grad = w - target.
func quadParam(w, target []float32) *nn.Param {
	wt := tensor.FromSlice(append([]float32(nil), w...), len(w))
	p := &nn.Param{Name: "w", Value: autograd.Leaf(wt, true)}
	g := tensor.New(len(w))
	for i := range w {
		g.Data()[i] = w[i] - target[i]
	}
	p.Value.Grad = g
	return p
}

func refreshGrad(p *nn.Param, target []float32) {
	for i := range target {
		p.Value.Grad.Data()[i] = p.Data().Data()[i] - target[i]
	}
}

// convergesToTarget runs an optimizer on the quadratic bowl and checks it
// approaches the minimum.
func convergesToTarget(t *testing.T, opt Optimizer, lr float64, steps int, tol float64) {
	t.Helper()
	target := []float32{1, -2, 3, 0.5}
	p := quadParam([]float32{5, 5, -5, -5}, target)
	for s := 0; s < steps; s++ {
		refreshGrad(p, target)
		opt.Step([]*nn.Param{p}, lr)
	}
	for i, tv := range target {
		if d := math.Abs(float64(p.Data().Data()[i] - tv)); d > tol {
			t.Fatalf("%s: w[%d] = %v, want %v (dist %v)", opt.Name(), i, p.Data().Data()[i], tv, d)
		}
	}
}

func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	cases := []struct {
		opt   Optimizer
		lr    float64
		steps int
		tol   float64
	}{
		{NewSGD(0.9, 0), 0.05, 300, 1e-2},
		{NewRMSProp(0), 0.02, 600, 5e-2},
		{NewAdam(0), 0.05, 800, 5e-2},
		{NewLAMB(0), 0.01, 800, 0.3},
		{NewSM3(0), 0.05, 800, 5e-2},
	}
	for _, c := range cases {
		convergesToTarget(t, c.opt, c.lr, c.steps, c.tol)
	}
}

func TestLARSConvergesOnQuadratic(t *testing.T) {
	// LARS scales updates by η·||w||/||g||; with η=0.001 it needs a large
	// nominal LR (that is exactly the paper's point: LR 0.236·batch/256).
	convergesToTarget(t, NewLARS(0), 40, 2000, 0.1)
}

func TestNilGradSkipped(t *testing.T) {
	for _, name := range []string{"sgd", "rmsprop", "lars", "adam", "lamb", "sm3"} {
		opt, ok := ByName(name, 0)
		if !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
		w := tensor.FromSlice([]float32{1, 2}, 2)
		p := &nn.Param{Name: "w", Value: autograd.Leaf(w, true)} // no grad
		opt.Step([]*nn.Param{p}, 0.1)
		if w.Data()[0] != 1 || w.Data()[1] != 2 {
			t.Fatalf("%s moved weights without a gradient", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("adagrad", 0); ok {
		t.Fatal("unknown optimizer must return !ok")
	}
}

func TestLARSTrustRatio(t *testing.T) {
	o := NewLARS(1e-4)
	// ||w||=10, ||g||=1: ratio = 0.001*10/(1 + 1e-4*10) ≈ 0.00999.
	got := o.TrustRatio(10, 1)
	want := 0.001 * 10 / (1 + 1e-3)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TrustRatio = %v, want %v", got, want)
	}
	// Zero weight norm: neutral ratio.
	if o.TrustRatio(0, 1) != 1 {
		t.Fatal("zero-weight trust ratio must be 1")
	}
}

func TestLARSTrustRatioScaleInvarianceQuick(t *testing.T) {
	// With zero weight decay, the trust ratio is invariant to common
	// rescaling of w and g: ratio(c·w, c·g) = ratio(w, g).
	o := NewLARS(0)
	f := func(wn, gn, c uint16) bool {
		w := float64(wn)/100 + 0.01
		g := float64(gn)/100 + 0.01
		scale := float64(c)/100 + 0.5
		a := o.TrustRatio(w, g)
		b := o.TrustRatio(scale*w, scale*g)
		return math.Abs(a-b) < 1e-9*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLARSSkipsAdaptationForNoAdapt(t *testing.T) {
	// A NoAdapt param must receive a plain momentum-SGD update at the
	// rescaled LR (lr × UnadaptedLRScale), independent of weight/grad
	// norms — LARS-style trust adaptation must not apply.
	o := NewLARS(1e-4)
	w := tensor.FromSlice([]float32{100, 100}, 2)
	p := &nn.Param{Name: "bn.gamma", Value: autograd.Leaf(w, true), NoAdapt: true}
	p.Value.Grad = tensor.FromSlice([]float32{1, 1}, 2)
	o.Step([]*nn.Param{p}, 0.5)
	want := float32(100) - float32(0.5*o.UnadaptedLRScale)
	if w.Data()[0] != want {
		t.Fatalf("NoAdapt step moved w to %v, want %v", w.Data()[0], want)
	}
	// The step must be far smaller than the raw LR would give: that raw
	// step is what blows up BN parameters under LARS-scale LRs.
	if raw := float32(100 - 0.5); w.Data()[0] <= raw {
		t.Fatalf("NoAdapt step used raw LR: w = %v", w.Data()[0])
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	// With zero gradient signal... use tiny constant gradient zero: weight
	// decay alone must pull weights toward zero for SGD.
	o := NewSGD(0, 0.1)
	w := tensor.FromSlice([]float32{10}, 1)
	p := &nn.Param{Name: "w", Value: autograd.Leaf(w, true)}
	p.Value.Grad = tensor.New(1) // zero gradient
	before := w.Data()[0]
	o.Step([]*nn.Param{p}, 0.5)
	if w.Data()[0] >= before {
		t.Fatalf("weight decay did not shrink weight: %v -> %v", before, w.Data()[0])
	}
	// NoAdapt params must NOT be decayed.
	w2 := tensor.FromSlice([]float32{10}, 1)
	p2 := &nn.Param{Name: "b", Value: autograd.Leaf(w2, true), NoAdapt: true}
	p2.Value.Grad = tensor.New(1)
	o.Step([]*nn.Param{p2}, 0.5)
	if w2.Data()[0] != 10 {
		t.Fatalf("NoAdapt weight was decayed: %v", w2.Data()[0])
	}
}

func TestSM3MemoryFootprint(t *testing.T) {
	// SM3's raison d'être: sub-linear optimizer state. For a [256,1024]
	// matrix it keeps 256+1024 accumulators, not 256*1024.
	if got := MemoryElems([]int{256, 1024}); got != 1280 {
		t.Fatalf("MemoryElems = %d, want 1280", got)
	}
	o := NewSM3(0)
	w := tensor.New(8, 16)
	p := &nn.Param{Name: "w", Value: autograd.Leaf(w, true)}
	p.Value.Grad = tensor.Ones(8, 16)
	o.Step([]*nn.Param{p}, 0.1)
	acc := o.accums[p]
	if len(acc) != 2 || len(acc[0]) != 8 || len(acc[1]) != 16 {
		t.Fatalf("SM3 accumulator shapes wrong: %d dims", len(acc))
	}
}

func TestSM3AccumulatorsGrowMonotonically(t *testing.T) {
	o := NewSM3(0)
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, 1, 4, 4)
	p := &nn.Param{Name: "w", Value: autograd.Leaf(w, true)}
	var prev []float32
	for s := 0; s < 5; s++ {
		p.Value.Grad = tensor.Randn(rng, 1, 4, 4)
		o.Step([]*nn.Param{p}, 0.01)
		cur := append([]float32(nil), o.accums[p][0]...)
		if prev != nil {
			for i := range cur {
				if cur[i] < prev[i] {
					t.Fatalf("SM3 row accumulator %d decreased: %v -> %v", i, prev[i], cur[i])
				}
			}
		}
		prev = cur
	}
}

func TestRMSPropMatchesManualStep(t *testing.T) {
	// Single-element hand computation of the TF-style update.
	o := &RMSProp{Decay: 0.9, Momentum: 0.0, Eps: 1e-3, WeightDecay: 0, slots: state{}}
	w := tensor.FromSlice([]float32{1}, 1)
	p := &nn.Param{Name: "w", Value: autograd.Leaf(w, true)}
	p.Value.Grad = tensor.FromSlice([]float32{2}, 1)
	o.Step([]*nn.Param{p}, 0.1)
	// ms = 0.1*4 = 0.4; step = 0.1*2/(sqrt(0.4)+1e-3)
	want := 1 - float32(0.1*2/(math.Sqrt(0.4)+1e-3))
	if math.Abs(float64(w.Data()[0]-want)) > 1e-6 {
		t.Fatalf("RMSProp step = %v, want %v", w.Data()[0], want)
	}
}

func TestOptimizerStateIsPerParam(t *testing.T) {
	// Two parameters must not share momentum buffers.
	o := NewSGD(0.9, 0)
	w1 := tensor.FromSlice([]float32{0}, 1)
	w2 := tensor.FromSlice([]float32{0}, 1)
	p1 := &nn.Param{Name: "a", Value: autograd.Leaf(w1, true)}
	p2 := &nn.Param{Name: "b", Value: autograd.Leaf(w2, true)}
	p1.Value.Grad = tensor.FromSlice([]float32{1}, 1)
	p2.Value.Grad = tensor.FromSlice([]float32{0}, 1)
	o.Step([]*nn.Param{p1, p2}, 1)
	if w2.Data()[0] != 0 {
		t.Fatalf("p2 moved by p1's momentum: %v", w2.Data()[0])
	}
	if w1.Data()[0] != -1 {
		t.Fatalf("p1 step = %v, want -1", w1.Data()[0])
	}
}
