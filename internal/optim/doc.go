// Package optim implements the optimizers the paper trains with: RMSProp
// (the original EfficientNet optimizer, used for batch ≤ 16384) and LARS
// (used to reach batch 65536, §3.1), plus SM3 (the paper's future-work
// optimizer, §5), LAMB, Adam and SGD as baselines.
//
// All optimizers mutate nn.Param weights in place given the gradients
// accumulated by autograd, and are stateful across steps (momentum buffers
// and second-moment accumulators keyed per parameter).
//
// Seams: Optimizer is the interface the replica engine drives (Step +
// checkpoint.StateCodec, so every optimizer's slots snapshot and restore
// bit-for-bit); ByName resolves CLI names; WeightEMA maintains the
// exponential moving average of the weights the reference EfficientNet
// setup evaluates, with Swap exchanging live and shadow weights around
// evaluation.
//
// Paper: §3.1/§3.2 and the optimizer column of Table 2.
package optim
