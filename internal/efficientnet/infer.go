package efficientnet

import (
	"effnetscale/internal/bf16"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

// Infer runs the block tape-free in inference mode: drop-path is identity,
// batch norm uses running statistics. Bit-for-bit identical to Forward with
// ctx.Training == false under the same precision policy.
func (b *MBConv) Infer(policy bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	h := x
	if b.Expand != nil {
		h = nn.SwishTensor(b.ExpandBN.Infer(policy, b.Expand.Infer(policy, h)))
	}
	h = nn.SwishTensor(b.DWBN.Infer(policy, b.Depthwise.Infer(policy, h)))
	h = b.SE.Infer(policy, h)
	h = b.ProjectBN.Infer(policy, b.Project.Infer(policy, h))
	if b.HasSkip {
		h = tensor.Add(h, x)
	}
	return h
}

// Infer maps images [N,3,H,W] to logits [N,NumClasses] without building an
// autograd tape — the model-level seam evaluation and serving run on. It is
// safe for concurrent use by multiple goroutines as long as nothing mutates
// the parameters or BN statistics meanwhile: the pass only reads model state
// and allocates its own activations. The output is bit-for-bit identical to
// Forward in eval mode under the same precision policy.
func (m *Model) Infer(policy bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	h := nn.SwishTensor(m.StemBN.Infer(policy, m.StemConv.Infer(policy, x)))
	for _, b := range m.Blocks {
		h = b.Infer(policy, h)
	}
	h = nn.SwishTensor(m.HeadBN.Infer(policy, m.HeadConv.Infer(policy, h)))
	_, _, hh, ww := h.Dim4()
	pooled := tensor.Scale(tensor.SumChannelNC(h), 1/float32(hh*ww)) // [N, head]
	return m.FC.Infer(policy, pooled)
}
