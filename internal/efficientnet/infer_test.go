package efficientnet

import (
	"math/rand"
	"sync"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/bf16"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

// newTestModel builds a pico model with perturbed BN running statistics so
// the parity tests cannot pass by accident on the fresh-init identity stats.
func newTestModel(t testing.TB, classes int) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	cfg, ok := ConfigByName("pico", classes)
	if !ok {
		t.Fatal("pico config missing")
	}
	cfg.Resolution = 32
	m := New(rng, cfg)
	for _, bn := range m.BatchNorms() {
		for i := range bn.RunningMean.Data() {
			bn.RunningMean.Data()[i] = float32(rng.NormFloat64() * 0.2)
			bn.RunningVar.Data()[i] = float32(0.5 + rng.Float64())
		}
	}
	return m
}

func TestModelInferMatchesEvalForward(t *testing.T) {
	m := newTestModel(t, 7)
	rng := rand.New(rand.NewSource(12))
	x := tensor.Randn(rng, 1, 3, 3, 32, 32)
	for pname, pol := range map[string]bf16.Policy{"fp32": bf16.FP32Policy, "bf16": bf16.DefaultPolicy} {
		t.Run(pname, func(t *testing.T) {
			want := m.Forward(&nn.Ctx{Precision: pol}, autograd.Constant(x)).T
			got := m.Infer(pol, x)
			if !tensor.SameShape(got, want) {
				t.Fatalf("shape mismatch: got %v want %v", got.Shape(), want.Shape())
			}
			for i := range got.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("logit %d differs: infer %v, eval-mode forward %v",
						i, got.Data()[i], want.Data()[i])
				}
			}
		})
	}
}

// TestModelInferConcurrent exercises the serving contract: many goroutines
// running Infer on one frozen model must neither race nor influence each
// other's results. Run under -race in CI.
func TestModelInferConcurrent(t *testing.T) {
	m := newTestModel(t, 5)
	rng := rand.New(rand.NewSource(13))
	x := tensor.Randn(rng, 1, 2, 3, 32, 32)
	want := m.Infer(bf16.FP32Policy, x)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				got := m.Infer(bf16.FP32Policy, x)
				for i := range got.Data() {
					if got.Data()[i] != want.Data()[i] {
						errs <- "concurrent Infer diverged from serial result"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
