package efficientnet

import "math"

// BlockArgs describes one stage of MBConv blocks before compound scaling.
type BlockArgs struct {
	Kernel      int     // depthwise kernel size
	Repeats     int     // baseline number of blocks in the stage
	InFilters   int     // baseline input channels
	OutFilters  int     // baseline output channels
	ExpandRatio int     // MBConv expansion factor (1 or 6)
	Stride      int     // stride of the first block in the stage
	SERatio     float64 // squeeze-excitation ratio (0.25)
}

// baselineBlocks is the EfficientNet-B0 stage table.
var baselineBlocks = []BlockArgs{
	{Kernel: 3, Repeats: 1, InFilters: 32, OutFilters: 16, ExpandRatio: 1, Stride: 1, SERatio: 0.25},
	{Kernel: 3, Repeats: 2, InFilters: 16, OutFilters: 24, ExpandRatio: 6, Stride: 2, SERatio: 0.25},
	{Kernel: 5, Repeats: 2, InFilters: 24, OutFilters: 40, ExpandRatio: 6, Stride: 2, SERatio: 0.25},
	{Kernel: 3, Repeats: 3, InFilters: 40, OutFilters: 80, ExpandRatio: 6, Stride: 2, SERatio: 0.25},
	{Kernel: 5, Repeats: 3, InFilters: 80, OutFilters: 112, ExpandRatio: 6, Stride: 1, SERatio: 0.25},
	{Kernel: 5, Repeats: 4, InFilters: 112, OutFilters: 192, ExpandRatio: 6, Stride: 2, SERatio: 0.25},
	{Kernel: 3, Repeats: 1, InFilters: 192, OutFilters: 320, ExpandRatio: 6, Stride: 1, SERatio: 0.25},
}

const (
	baselineStemFilters = 32
	baselineHeadFilters = 1280
)

// Config selects a member of the EfficientNet family.
type Config struct {
	Name string
	// WidthCoeff and DepthCoeff are the compound-scaling coefficients.
	WidthCoeff, DepthCoeff float64
	// Resolution is the train/eval image size.
	Resolution int
	// DropoutRate is the final-classifier dropout.
	DropoutRate float64
	// DropConnectRate is the stochastic-depth rate scaled over block index.
	DropConnectRate float64
	// DepthDivisor is the channel-rounding granularity (8 for the standard
	// family; smaller for the CPU-scale variants so tiny widths survive).
	DepthDivisor int
	// NumClasses sizes the classifier head.
	NumClasses int
	// MinResolutionStages caps how many stride-2 stages are kept; 0 keeps
	// all. Tiny-resolution variants drop later downsampling to avoid 1×1
	// feature maps.
	MinResolutionStages int
}

// Standard family coefficients from Tan & Le, Table 1 and released code.
var family = map[string]Config{
	"b0": {Name: "b0", WidthCoeff: 1.0, DepthCoeff: 1.0, Resolution: 224, DropoutRate: 0.2},
	"b1": {Name: "b1", WidthCoeff: 1.0, DepthCoeff: 1.1, Resolution: 240, DropoutRate: 0.2},
	"b2": {Name: "b2", WidthCoeff: 1.1, DepthCoeff: 1.2, Resolution: 260, DropoutRate: 0.3},
	"b3": {Name: "b3", WidthCoeff: 1.2, DepthCoeff: 1.4, Resolution: 300, DropoutRate: 0.3},
	"b4": {Name: "b4", WidthCoeff: 1.4, DepthCoeff: 1.8, Resolution: 380, DropoutRate: 0.4},
	"b5": {Name: "b5", WidthCoeff: 1.6, DepthCoeff: 2.2, Resolution: 456, DropoutRate: 0.4},
	"b6": {Name: "b6", WidthCoeff: 1.8, DepthCoeff: 2.6, Resolution: 528, DropoutRate: 0.5},
	"b7": {Name: "b7", WidthCoeff: 2.0, DepthCoeff: 3.1, Resolution: 600, DropoutRate: 0.5},

	// CPU-scale variants for real training in tests/examples. They keep the
	// full MBConv topology but shrink width/depth/resolution drastically.
	"pico":  {Name: "pico", WidthCoeff: 0.125, DepthCoeff: 0.2, Resolution: 32, DropoutRate: 0.1, DepthDivisor: 4},
	"nano":  {Name: "nano", WidthCoeff: 0.25, DepthCoeff: 0.33, Resolution: 48, DropoutRate: 0.1, DepthDivisor: 4},
	"micro": {Name: "micro", WidthCoeff: 0.5, DepthCoeff: 0.5, Resolution: 64, DropoutRate: 0.2, DepthDivisor: 8},
}

// ConfigByName returns the named family member with the given class count.
// Known names: b0..b7, pico, nano, micro.
func ConfigByName(name string, numClasses int) (Config, bool) {
	c, ok := family[name]
	if !ok {
		return Config{}, false
	}
	c.NumClasses = numClasses
	if c.DepthDivisor == 0 {
		c.DepthDivisor = 8
	}
	if c.DropConnectRate == 0 {
		c.DropConnectRate = 0.2
	}
	return c, true
}

// FamilyNames lists the available configuration names in a stable order.
func FamilyNames() []string {
	return []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "pico", "nano", "micro"}
}

// RoundFilters applies the compound-scaling channel rounding rule: multiply
// by the width coefficient and round to the nearest multiple of divisor,
// never dropping below 90% of the scaled value.
func RoundFilters(filters int, widthCoeff float64, divisor int) int {
	if widthCoeff == 1 {
		return filters
	}
	f := widthCoeff * float64(filters)
	newF := math.Max(float64(divisor), float64(int(f+float64(divisor)/2)/divisor*divisor))
	if newF < 0.9*f {
		newF += float64(divisor)
	}
	return int(newF)
}

// RoundRepeats applies depth scaling: ceil(depthCoeff × repeats).
func RoundRepeats(repeats int, depthCoeff float64) int {
	if depthCoeff == 1 {
		return repeats
	}
	return int(math.Ceil(depthCoeff * float64(repeats)))
}

// ScaledBlocks returns the stage table after compound scaling under cfg.
func (cfg Config) ScaledBlocks() []BlockArgs {
	out := make([]BlockArgs, len(baselineBlocks))
	for i, b := range baselineBlocks {
		b.InFilters = RoundFilters(b.InFilters, cfg.WidthCoeff, cfg.DepthDivisor)
		b.OutFilters = RoundFilters(b.OutFilters, cfg.WidthCoeff, cfg.DepthDivisor)
		b.Repeats = RoundRepeats(b.Repeats, cfg.DepthCoeff)
		out[i] = b
	}
	return out
}

// StemFilters returns the scaled stem width.
func (cfg Config) StemFilters() int {
	return RoundFilters(baselineStemFilters, cfg.WidthCoeff, cfg.DepthDivisor)
}

// HeadFilters returns the scaled head width.
func (cfg Config) HeadFilters() int {
	return RoundFilters(baselineHeadFilters, cfg.WidthCoeff, cfg.DepthDivisor)
}
