package efficientnet

// Stats summarizes a model's size and compute cost. FLOPs follows the
// EfficientNet paper's convention of counting multiply-adds as single
// operations (so B0 ≈ 0.39 G), which is also the convention the pod
// simulator's roofline model is calibrated in.
type Stats struct {
	Params       int     // trainable parameter count
	FLOPsPerImg  float64 // forward multiply-adds per image
	Resolution   int     // input resolution used for the FLOPs figure
	NumBlocks    int     // MBConv block count
	GradBytes    int     // bytes all-reduced per step (fp32 gradients)
	ActivationHW int     // final feature-map side length
	BNChannels   int     // total channels across all BN layers (stats payload)
	// ActElemsPerImg is the total activation volume one image produces
	// across all conv outputs — the payload a model-parallel split must
	// exchange at shard boundaries (§5 future-work analysis).
	ActElemsPerImg float64
}

// ComputeStats derives parameter and FLOP counts analytically from the
// configuration, without materializing weights. It mirrors the builder in
// model.go exactly; TestStatsMatchBuiltModel enforces the agreement.
func ComputeStats(cfg Config) Stats {
	if cfg.DepthDivisor == 0 {
		cfg.DepthDivisor = 8
	}
	if cfg.NumClasses == 0 {
		cfg.NumClasses = 1000
	}
	var s Stats
	s.Resolution = cfg.Resolution
	res := cfg.Resolution

	convOut := func(in, k, stride int) int {
		pad := (k - 1) / 2
		return (in+2*pad-k)/stride + 1
	}

	addConv := func(cin, cout, k, stride, hw int) int {
		out := convOut(hw, k, stride)
		s.Params += cout * cin * k * k
		s.FLOPsPerImg += float64(cout) * float64(out) * float64(out) * float64(cin) * float64(k) * float64(k)
		s.ActElemsPerImg += float64(cout) * float64(out) * float64(out)
		return out
	}
	addDW := func(c, k, stride, hw int) int {
		out := convOut(hw, k, stride)
		s.Params += c * k * k
		s.FLOPsPerImg += float64(c) * float64(out) * float64(out) * float64(k) * float64(k)
		s.ActElemsPerImg += float64(c) * float64(out) * float64(out)
		return out
	}
	addBN := func(c int) {
		s.Params += 2 * c
		s.BNChannels += c
	}
	addDense := func(in, out int) {
		s.Params += in*out + out
		s.FLOPsPerImg += float64(in) * float64(out)
	}

	stem := cfg.StemFilters()
	res = addConv(3, stem, 3, 2, res)
	addBN(stem)

	prev := stem
	for _, stage := range cfg.ScaledBlocks() {
		for r := 0; r < stage.Repeats; r++ {
			in := prev
			stride := stage.Stride
			if r > 0 {
				in = stage.OutFilters
				stride = 1
			}
			expanded := in * stage.ExpandRatio
			if stage.ExpandRatio != 1 {
				res = addConv(in, expanded, 1, 1, res)
				addBN(expanded)
			}
			res = addDW(expanded, stage.Kernel, stride, res)
			addBN(expanded)
			squeezed := int(float64(in) * stage.SERatio)
			if squeezed < 1 {
				squeezed = 1
			}
			addDense(expanded, squeezed)
			addDense(squeezed, expanded)
			res = addConv(expanded, stage.OutFilters, 1, 1, res)
			addBN(stage.OutFilters)
			prev = stage.OutFilters
			s.NumBlocks++
		}
	}
	head := cfg.HeadFilters()
	res = addConv(prev, head, 1, 1, res)
	addBN(head)
	addDense(head, cfg.NumClasses)

	s.ActivationHW = res
	s.GradBytes = s.Params * 4
	return s
}

// TrainFLOPsPerImg estimates training compute per image: forward plus
// roughly 2× for the backward pass (the standard accounting).
func (s Stats) TrainFLOPsPerImg() float64 { return 3 * s.FLOPsPerImg }
