package efficientnet

import (
	"fmt"
	"math/rand"

	"effnetscale/internal/autograd"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

// MBConv is the mobile inverted bottleneck block with squeeze-excitation:
// 1×1 expand → depthwise k×k → SE → 1×1 project, with a drop-path residual
// when the shapes allow it.
type MBConv struct {
	Expand     *nn.Conv2D // nil when ExpandRatio == 1
	ExpandBN   *nn.BatchNorm
	Depthwise  *nn.DepthwiseConv2D
	DWBN       *nn.BatchNorm
	SE         *nn.SqueezeExcite
	Project    *nn.Conv2D
	ProjectBN  *nn.BatchNorm
	DropPath   *nn.DropPath
	HasSkip    bool
	In, Out    int
	Stride     int
	Kernel     int
	ExpandedCh int
}

// NewMBConv builds one MBConv block.
func NewMBConv(rng *rand.Rand, name string, args BlockArgs, dropRate float64) *MBConv {
	expanded := args.InFilters * args.ExpandRatio
	b := &MBConv{
		In: args.InFilters, Out: args.OutFilters,
		Stride: args.Stride, Kernel: args.Kernel,
		ExpandedCh: expanded,
		HasSkip:    args.Stride == 1 && args.InFilters == args.OutFilters,
		DropPath:   &nn.DropPath{Rate: dropRate},
	}
	if args.ExpandRatio != 1 {
		b.Expand = nn.NewConv2D(rng, name+".expand", args.InFilters, expanded, 1, 1)
		b.ExpandBN = nn.NewBatchNorm(name+".expand_bn", expanded)
	}
	b.Depthwise = nn.NewDepthwiseConv2D(rng, name+".dw", expanded, args.Kernel, args.Stride)
	b.DWBN = nn.NewBatchNorm(name+".dw_bn", expanded)
	squeezed := int(float64(args.InFilters) * args.SERatio)
	b.SE = nn.NewSqueezeExcite(rng, name+".se", expanded, squeezed)
	b.Project = nn.NewConv2D(rng, name+".project", expanded, args.OutFilters, 1, 1)
	b.ProjectBN = nn.NewBatchNorm(name+".project_bn", args.OutFilters)
	return b
}

// Forward runs the block.
func (b *MBConv) Forward(ctx *nn.Ctx, x *autograd.Value) *autograd.Value {
	return b.forwardConv(ctx, x, defaultConv)
}

// forwardConv runs the block with the 1×1 convolutions (expand, project)
// routed through conv — the hook channel-sharded model parallelism uses.
func (b *MBConv) forwardConv(ctx *nn.Ctx, x *autograd.Value, conv Conv1x1Fn) *autograd.Value {
	h := x
	if b.Expand != nil {
		h = autograd.Swish(b.ExpandBN.Forward(ctx, conv(ctx, b.Expand, h)))
	}
	h = autograd.Swish(b.DWBN.Forward(ctx, b.Depthwise.Forward(ctx, h)))
	h = b.SE.Forward(ctx, h)
	h = b.ProjectBN.Forward(ctx, conv(ctx, b.Project, h))
	if b.HasSkip {
		h = autograd.Add(b.DropPath.Forward(ctx, h), x)
	}
	return h
}

// Params returns all trainable parameters of the block.
func (b *MBConv) Params() []*nn.Param {
	var ps []*nn.Param
	if b.Expand != nil {
		ps = append(ps, b.Expand.Params()...)
		ps = append(ps, b.ExpandBN.Params()...)
	}
	ps = append(ps, b.Depthwise.Params()...)
	ps = append(ps, b.DWBN.Params()...)
	ps = append(ps, b.SE.Params()...)
	ps = append(ps, b.Project.Params()...)
	ps = append(ps, b.ProjectBN.Params()...)
	return ps
}

// batchNorms returns the block's BN layers for reducer rebinding.
func (b *MBConv) batchNorms() []*nn.BatchNorm {
	var bns []*nn.BatchNorm
	if b.ExpandBN != nil {
		bns = append(bns, b.ExpandBN)
	}
	return append(bns, b.DWBN, b.ProjectBN)
}

// Model is a full EfficientNet: stem conv, MBConv stages, head conv,
// global pooling, dropout and the classifier.
type Model struct {
	Config Config

	StemConv *nn.Conv2D
	StemBN   *nn.BatchNorm
	Blocks   []*MBConv
	HeadConv *nn.Conv2D
	HeadBN   *nn.BatchNorm
	Dropout  *nn.Dropout
	FC       *nn.Dense

	params []*nn.Param
}

// New builds an EfficientNet for cfg with weights drawn from rng.
func New(rng *rand.Rand, cfg Config) *Model {
	if cfg.DepthDivisor == 0 {
		cfg.DepthDivisor = 8
	}
	if cfg.NumClasses == 0 {
		cfg.NumClasses = 1000
	}
	m := &Model{Config: cfg}
	stem := cfg.StemFilters()
	m.StemConv = nn.NewConv2D(rng, "stem", 3, stem, 3, 2)
	m.StemBN = nn.NewBatchNorm("stem_bn", stem)

	blocks := cfg.ScaledBlocks()
	total := 0
	for _, s := range blocks {
		total += s.Repeats
	}
	idx := 0
	prev := stem
	for si, stage := range blocks {
		for r := 0; r < stage.Repeats; r++ {
			args := stage
			args.InFilters = prev
			if r > 0 {
				args.Stride = 1
				args.InFilters = stage.OutFilters
			}
			dropRate := cfg.DropConnectRate * float64(idx) / float64(total)
			name := fmt.Sprintf("block%d_%d", si+1, r)
			blk := NewMBConv(rng, name, args, dropRate)
			m.Blocks = append(m.Blocks, blk)
			prev = stage.OutFilters
			idx++
		}
	}
	head := cfg.HeadFilters()
	m.HeadConv = nn.NewConv2D(rng, "head", prev, head, 1, 1)
	m.HeadBN = nn.NewBatchNorm("head_bn", head)
	m.Dropout = &nn.Dropout{Rate: cfg.DropoutRate}
	m.FC = nn.NewDense(rng, "fc", head, cfg.NumClasses)

	m.params = m.collectParams()
	return m
}

// NewByName builds the named family member, panicking on unknown names
// (use ConfigByName to probe).
func NewByName(rng *rand.Rand, name string, numClasses int) *Model {
	cfg, ok := ConfigByName(name, numClasses)
	if !ok {
		panic(fmt.Sprintf("efficientnet: unknown model %q", name))
	}
	return New(rng, cfg)
}

// Conv1x1Fn computes one of the model's 1×1 convolutions (MBConv expand and
// project, the head conv). ForwardConv routes every such conv through it,
// letting the replica engine substitute a channel-sharded evaluation whose
// output-channel rows are computed by different model-parallel ranks.
type Conv1x1Fn func(ctx *nn.Ctx, l *nn.Conv2D, x *autograd.Value) *autograd.Value

func defaultConv(ctx *nn.Ctx, l *nn.Conv2D, x *autograd.Value) *autograd.Value {
	return l.Forward(ctx, x)
}

// Forward maps images [N,3,H,W] to logits [N,NumClasses].
func (m *Model) Forward(ctx *nn.Ctx, x *autograd.Value) *autograd.Value {
	return m.ForwardConv(ctx, x, defaultConv)
}

// ForwardConv is Forward with the 1×1 convolutions routed through conv. With
// defaultConv it is bit-for-bit Forward; the hybrid data+model-parallel
// engine passes a sharded implementation (see internal/replica).
func (m *Model) ForwardConv(ctx *nn.Ctx, x *autograd.Value, conv Conv1x1Fn) *autograd.Value {
	h := autograd.Swish(m.StemBN.Forward(ctx, m.StemConv.Forward(ctx, x)))
	for _, b := range m.Blocks {
		h = b.forwardConv(ctx, h, conv)
	}
	h = autograd.Swish(m.HeadBN.Forward(ctx, conv(ctx, m.HeadConv, h)))
	pooled := autograd.GlobalAvgPool(h) // [N, head]
	pooled = m.Dropout.Forward(ctx, pooled)
	return m.FC.Forward(ctx, pooled)
}

// ShardableConvs returns the 1×1 convolutions ForwardConv routes through its
// hook — the channel-shardable parameter set, in Params() order.
func (m *Model) ShardableConvs() []*nn.Conv2D {
	var out []*nn.Conv2D
	for _, b := range m.Blocks {
		if b.Expand != nil {
			out = append(out, b.Expand)
		}
		out = append(out, b.Project)
	}
	return append(out, m.HeadConv)
}

func (m *Model) collectParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.StemConv.Params()...)
	ps = append(ps, m.StemBN.Params()...)
	for _, b := range m.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.HeadConv.Params()...)
	ps = append(ps, m.HeadBN.Params()...)
	ps = append(ps, m.FC.Params()...)
	return ps
}

// Params returns every trainable parameter (stable order).
func (m *Model) Params() []*nn.Param { return m.params }

// BatchNorms returns every BN layer, letting the distributed engine install
// group statistics reducers (§3.4).
func (m *Model) BatchNorms() []*nn.BatchNorm {
	bns := []*nn.BatchNorm{m.StemBN}
	for _, b := range m.Blocks {
		bns = append(bns, b.batchNorms()...)
	}
	return append(bns, m.HeadBN)
}

// NumParams returns the total element count of all trainable parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += p.Data().Len()
	}
	return n
}

// RegisterParams registers every parameter with the tape so Backward fires
// a grad-ready hook per parameter (the engine's bucket-assembly seam).
func (m *Model) RegisterParams(t *autograd.Tape) {
	nn.RegisterParams(t, m.params)
}

// BindGrads pins every parameter's gradient to consecutive spans of buf in
// Params() order — the engine's flattened gradient layout — and returns the
// floats consumed (== NumParams()). After this, backward accumulates
// directly into buf and no flatten copy exists.
func (m *Model) BindGrads(buf []float32) int {
	off := 0
	for _, p := range m.params {
		n := p.Data().Len()
		p.BindGrad(buf[off : off+n])
		off += n
	}
	return off
}

// CopyWeightsFrom copies all parameters and BN running statistics from src.
// Models must have identical architecture. Used to give every replica the
// same initial weights.
func (m *Model) CopyWeightsFrom(src *Model) {
	sp := src.Params()
	dp := m.Params()
	if len(sp) != len(dp) {
		panic("efficientnet: CopyWeightsFrom architecture mismatch")
	}
	for i := range dp {
		dp[i].Data().CopyFrom(sp[i].Data())
	}
	sb, db := src.BatchNorms(), m.BatchNorms()
	for i := range db {
		db[i].RunningMean.CopyFrom(sb[i].RunningMean)
		db[i].RunningVar.CopyFrom(sb[i].RunningVar)
	}
}

// InputTensor allocates an input batch tensor of the model's resolution.
func (m *Model) InputTensor(batch int) *tensor.Tensor {
	return tensor.New(batch, 3, m.Config.Resolution, m.Config.Resolution)
}
