package efficientnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"effnetscale/internal/autograd"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

func TestRoundFilters(t *testing.T) {
	cases := []struct {
		filters int
		coeff   float64
		divisor int
		want    int
	}{
		{32, 1.0, 8, 32},
		{32, 1.1, 8, 32}, // 35.2 → 32 (within 90%)
		{32, 1.6, 8, 48}, // B5 stem: 51.2 → 48
		{16, 1.1, 8, 16}, // B2: 17.6 → 16
		{320, 1.1, 8, 352},
		{1280, 1.6, 8, 2048},
		{40, 1.2, 8, 48},
	}
	for _, c := range cases {
		if got := RoundFilters(c.filters, c.coeff, c.divisor); got != c.want {
			t.Errorf("RoundFilters(%d, %v, %d) = %d, want %d", c.filters, c.coeff, c.divisor, got, c.want)
		}
	}
}

func TestRoundFiltersInvariantsQuick(t *testing.T) {
	f := func(filters uint8, coeffPct uint8) bool {
		fl := int(filters)%512 + 8
		coeff := 0.1 + float64(coeffPct%40)/10 // 0.1 .. 4.0
		got := RoundFilters(fl, coeff, 8)
		if got%8 != 0 && coeff != 1 {
			return false // always a multiple of the divisor
		}
		return float64(got) >= 0.9*coeff*float64(fl) // never below 90% of target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundRepeats(t *testing.T) {
	if got := RoundRepeats(3, 2.2); got != 7 {
		t.Errorf("RoundRepeats(3, 2.2) = %d, want 7", got)
	}
	if got := RoundRepeats(4, 1.2); got != 5 {
		t.Errorf("RoundRepeats(4, 1.2) = %d, want 5", got)
	}
	if got := RoundRepeats(2, 1.0); got != 2 {
		t.Errorf("RoundRepeats(2, 1.0) = %d, want 2", got)
	}
}

func TestFamilyStatsMatchPublishedSizes(t *testing.T) {
	// Published parameter counts (Tan & Le): B0 5.3M, B2 9.2M, B5 30M.
	// Published FLOPs (multiply-add convention): B0 0.39G, B2 1.0G, B5 9.9G.
	cases := []struct {
		name       string
		wantParams float64 // millions
		wantFLOPs  float64 // billions
	}{
		{"b0", 5.3e6, 0.39e9},
		{"b2", 9.2e6, 1.0e9},
		{"b5", 30e6, 9.9e9},
	}
	for _, c := range cases {
		cfg, ok := ConfigByName(c.name, 1000)
		if !ok {
			t.Fatalf("missing config %s", c.name)
		}
		s := ComputeStats(cfg)
		if rel := math.Abs(float64(s.Params)-c.wantParams) / c.wantParams; rel > 0.10 {
			t.Errorf("%s params = %d, want ≈%.2gM (off by %.1f%%)", c.name, s.Params, c.wantParams/1e6, rel*100)
		}
		if rel := math.Abs(s.FLOPsPerImg-c.wantFLOPs) / c.wantFLOPs; rel > 0.15 {
			t.Errorf("%s FLOPs = %.3g, want ≈%.3g (off by %.1f%%)", c.name, s.FLOPsPerImg, c.wantFLOPs, rel*100)
		}
	}
}

func TestStatsMatchBuiltModel(t *testing.T) {
	// The analytic counter must agree exactly with the real builder.
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"pico", "nano"} {
		cfg, _ := ConfigByName(name, 10)
		m := New(rng, cfg)
		s := ComputeStats(cfg)
		if m.NumParams() != s.Params {
			t.Errorf("%s: built model has %d params, analytic says %d", name, m.NumParams(), s.Params)
		}
		if len(m.Blocks) != s.NumBlocks {
			t.Errorf("%s: built model has %d blocks, analytic says %d", name, len(m.Blocks), s.NumBlocks)
		}
	}
}

func TestB0HasSixteenBlocks(t *testing.T) {
	cfg, _ := ConfigByName("b0", 1000)
	s := ComputeStats(cfg)
	if s.NumBlocks != 16 {
		t.Fatalf("B0 must have 16 MBConv blocks, got %d", s.NumBlocks)
	}
}

func TestPicoForwardShapesAndDeterminism(t *testing.T) {
	cfg, _ := ConfigByName("pico", 10)
	m := New(rand.New(rand.NewSource(42)), cfg)
	x := autograd.Constant(tensor.Randn(rand.New(rand.NewSource(7)), 1, 2, 3, cfg.Resolution, cfg.Resolution))
	ctx := nn.EvalCtx()
	y := m.Forward(ctx, x)
	if y.T.Dim(0) != 2 || y.T.Dim(1) != 10 {
		t.Fatalf("logits shape %v, want [2 10]", y.T.Shape())
	}
	// Eval forward must be deterministic.
	y2 := m.Forward(ctx, x)
	for i := range y.T.Data() {
		if y.T.Data()[i] != y2.T.Data()[i] {
			t.Fatal("eval forward is nondeterministic")
		}
	}
}

func TestPicoTrainStepReducesLoss(t *testing.T) {
	// One model, one small batch, plain SGD on the raw gradients: the loss
	// on that batch must go down. End-to-end sanity of the whole
	// model+autograd stack.
	cfg, _ := ConfigByName("pico", 4)
	m := New(rand.New(rand.NewSource(3)), cfg)
	rng := rand.New(rand.NewSource(11))
	xT := tensor.Randn(rng, 0.5, 4, 3, cfg.Resolution, cfg.Resolution)
	labels := []int{0, 1, 2, 3}
	ctx := &nn.Ctx{Training: true, RNG: rand.New(rand.NewSource(5))}

	lossAt := func() float64 {
		x := autograd.Constant(xT)
		loss := autograd.SoftmaxCrossEntropy(m.Forward(ctx, x), labels, 0)
		return float64(loss.T.Data()[0])
	}

	before := lossAt()
	for step := 0; step < 5; step++ {
		for _, p := range m.Params() {
			p.Value.ZeroGrad()
		}
		x := autograd.Constant(xT)
		loss := autograd.SoftmaxCrossEntropy(m.Forward(ctx, x), labels, 0)
		loss.Backward()
		for _, p := range m.Params() {
			if p.Grad() != nil {
				tensor.AxpyInto(p.Data(), -0.05, p.Grad())
			}
		}
	}
	after := lossAt()
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	cfg, _ := ConfigByName("pico", 10)
	a := New(rand.New(rand.NewSource(1)), cfg)
	b := New(rand.New(rand.NewSource(2)), cfg)
	b.CopyWeightsFrom(a)
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Data().Data() {
			if ap[i].Data().Data()[j] != bp[i].Data().Data()[j] {
				t.Fatalf("param %s differs after copy", ap[i].Name)
			}
		}
	}
	// Identical weights → identical eval outputs.
	x := autograd.Constant(tensor.Randn(rand.New(rand.NewSource(3)), 1, 1, 3, cfg.Resolution, cfg.Resolution))
	ctx := nn.EvalCtx()
	ya, yb := a.Forward(ctx, x), b.Forward(ctx, x)
	for i := range ya.T.Data() {
		if ya.T.Data()[i] != yb.T.Data()[i] {
			t.Fatal("copied model produces different outputs")
		}
	}
}

func TestBatchNormsEnumerated(t *testing.T) {
	cfg, _ := ConfigByName("pico", 10)
	m := New(rand.New(rand.NewSource(1)), cfg)
	// stem + head + per block (2 or 3 each).
	want := 2
	for _, b := range m.Blocks {
		if b.Expand != nil {
			want += 3
		} else {
			want += 2
		}
	}
	if got := len(m.BatchNorms()); got != want {
		t.Fatalf("BatchNorms() = %d, want %d", got, want)
	}
}

func TestMBConvResidualOnlyWhenShapesMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	withSkip := NewMBConv(rng, "b", BlockArgs{Kernel: 3, InFilters: 8, OutFilters: 8, ExpandRatio: 6, Stride: 1, SERatio: 0.25}, 0)
	if !withSkip.HasSkip {
		t.Fatal("stride-1 same-channel block must have residual")
	}
	noSkipStride := NewMBConv(rng, "b", BlockArgs{Kernel: 3, InFilters: 8, OutFilters: 8, ExpandRatio: 6, Stride: 2, SERatio: 0.25}, 0)
	if noSkipStride.HasSkip {
		t.Fatal("stride-2 block must not have residual")
	}
	noSkipCh := NewMBConv(rng, "b", BlockArgs{Kernel: 3, InFilters: 8, OutFilters: 16, ExpandRatio: 6, Stride: 1, SERatio: 0.25}, 0)
	if noSkipCh.HasSkip {
		t.Fatal("channel-changing block must not have residual")
	}
}

func TestConfigByNameUnknown(t *testing.T) {
	if _, ok := ConfigByName("b9", 10); ok {
		t.Fatal("unknown name must report !ok")
	}
	names := FamilyNames()
	if len(names) != 11 {
		t.Fatalf("FamilyNames() = %d entries, want 11", len(names))
	}
	for _, n := range names {
		if _, ok := ConfigByName(n, 10); !ok {
			t.Fatalf("FamilyNames lists %q but ConfigByName rejects it", n)
		}
	}
}
