// Package efficientnet builds the EfficientNet model family (Tan & Le 2019)
// on top of the nn layer library: MBConv blocks with squeeze-excitation,
// compound scaling of width/depth/resolution, and the B0–B7 configurations
// the paper trains (B2 and B5 in its evaluation). Scaled-down variants
// (Pico/Nano/Micro) make real CPU training feasible for the mini-scale
// validation experiments.
//
// Seams: ConfigByName resolves a family name into a Config (the dataset's
// resolution wins over the family default, so models are
// resolution-agnostic); Model exposes Params for the optimizers,
// BatchNorms for distributed-BN wiring, and CopyWeightsFrom for replica
// initialization. Model state serializes through checkpoint.ModelState.
// Model.Infer is the tape-free forward (the nn inference split end to end:
// running-stats BN, no dropout/drop-connect, no autograd allocations) —
// the path evaluation strategies score on and internal/serve batches over;
// it matches Forward with Training=false bit for bit
// (TestModelInferMatchesEvalForward).
//
// Paper: §2 describes the EfficientNet workload whose scaling limits the
// paper explores; Table 1/2 train B2 and B5.
package efficientnet
