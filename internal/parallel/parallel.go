package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds concurrency for all helpers in this package. It defaults
// to GOMAXPROCS and may be lowered in tests via SetMaxWorkers.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers overrides the worker bound. n < 1 resets to GOMAXPROCS.
// It returns the previous value so callers can restore it.
func SetMaxWorkers(n int) int {
	prev := int(maxWorkers.Load())
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers.Store(int64(n))
	return prev
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// minGrain is the smallest amount of per-worker iteration count worth the
// cost of spawning a goroutine. Loops smaller than this run serially.
const minGrain = 256

// For runs body(i) for every i in [0, n), potentially in parallel. Iterations
// must be independent. Loops of at most minGrain iterations run inline on the
// calling goroutine — For is meant for cheap per-index bodies; loops with
// expensive iterations should use ForChunked with a small grain instead.
func For(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if n <= minGrain || MaxWorkers() <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ForChunked(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked divides [0, n) into contiguous chunks and invokes body(lo, hi)
// for each chunk, potentially in parallel. grain is the minimum chunk size
// (values < 1 are treated as 1): the caller's statement of how many
// iterations are worth one goroutine. When n <= grain the whole range is a
// single chunk and runs inline on the calling goroutine — a larger grain
// makes the serial path more likely, never less. Chunks never overlap and
// cover [0, n) exactly.
func ForChunked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	// Serial fast path: a single worker, or at most one grain's worth of
	// work. (This used to test n*grain <= minGrain, which inverted the
	// heuristic: declaring bigger chunks made goroutine spawning *more*
	// likely, so n=2 with grain=4096 paid goroutine+WaitGroup overhead for
	// work its caller had declared must run as one chunk.)
	if workers <= 1 || n <= grain {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < grain {
		chunk = grain
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// ReduceFloat64 computes the sum of body(i) over i in [0, n) with
// deterministic per-chunk partial sums combined in index order, so results
// are reproducible for a fixed worker bound.
func ReduceFloat64(n int, body func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= minGrain {
		var s float64
		for i := 0; i < n; i++ {
			s += body(i)
		}
		return s
	}
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	partial := make([]float64, nchunks)
	var wg sync.WaitGroup
	for c := 0; c < nchunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += body(i)
			}
			partial[c] = s
		}(c, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}
