// Package parallel provides small, allocation-conscious helpers for
// data-parallel loops on the host CPU. Every compute kernel in the tensor
// engine funnels through this package so that parallelism policy (grain
// size, worker count) lives in one place.
//
// Seams: For and ForChunked split an index range across workers; ForChunked
// runs inline when the range is at or below its grain, so small kernels pay
// no goroutine overhead. The input pipeline also uses ForChunked to render
// the samples of a batch in parallel.
//
// Paper: stands in for the on-chip parallelism a TPU core gets for free —
// it is what makes mini-scale wall-clock measurements meaningful at all.
package parallel
