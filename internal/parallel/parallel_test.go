package parallel

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// gid returns the current goroutine's id (test-only; parsed from the stack
// header "goroutine N [...").
func gid() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	buf = bytes.TrimPrefix(buf, []byte("goroutine "))
	if i := bytes.IndexByte(buf, ' '); i >= 0 {
		buf = buf[:i]
	}
	return string(buf)
}

func TestForChunkedSingleChunkRunsInline(t *testing.T) {
	// n <= grain means one chunk: it must run on the calling goroutine, not
	// pay goroutine+WaitGroup overhead. (Regression: the old heuristic
	// n*grain <= minGrain made a larger grain MORE likely to spawn.)
	caller := gid()
	for _, c := range []struct{ n, grain int }{{2, 4096}, {300, 300}, {1, 1}, {256, 1024}} {
		calls := 0
		ForChunked(c.n, c.grain, func(lo, hi int) {
			calls++
			if lo != 0 || hi != c.n {
				t.Errorf("n=%d grain=%d: chunk [%d,%d), want [0,%d)", c.n, c.grain, lo, hi, c.n)
			}
			if g := gid(); g != caller {
				t.Errorf("n=%d grain=%d: ran on goroutine %s, want inline on %s", c.n, c.grain, g, caller)
			}
		})
		if calls != 1 {
			t.Errorf("n=%d grain=%d: %d body calls, want 1", c.n, c.grain, calls)
		}
	}
}

func TestForChunkedRespectsGrain(t *testing.T) {
	// When it does go parallel, every chunk except the last must hold at
	// least grain iterations.
	const n, grain = 10000, 64
	var minSeen atomic.Int64
	minSeen.Store(n)
	var last atomic.Int64
	ForChunked(n, grain, func(lo, hi int) {
		if hi == n {
			last.Store(int64(hi - lo))
			return
		}
		for {
			cur := minSeen.Load()
			if int64(hi-lo) >= cur || minSeen.CompareAndSwap(cur, int64(hi-lo)) {
				break
			}
		}
	})
	if minSeen.Load() < grain {
		t.Fatalf("non-final chunk of %d iterations, want >= %d", minSeen.Load(), grain)
	}
}

func TestForSmallLoopRunsInline(t *testing.T) {
	caller := gid()
	For(100, func(i int) {
		if g := gid(); g != caller {
			t.Fatalf("For(100) iteration ran on goroutine %s, want inline", g)
		}
	})
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 1000, 4096} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedExactPartition(t *testing.T) {
	f := func(n uint16, grain uint8) bool {
		nn := int(n) % 5000
		var total int64
		ForChunked(nn, int(grain), func(lo, hi int) {
			if lo < 0 || hi > nn || lo > hi {
				t.Fatalf("bad chunk [%d,%d) for n=%d", lo, hi, nn)
			}
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(nn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReduceFloat64MatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, 257, 10000} {
		got := ReduceFloat64(n, func(i int) float64 { return float64(i) })
		want := float64(n) * float64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("ReduceFloat64(n=%d) = %v, want %v", n, got, want)
		}
	}
}

func TestReduceDeterministic(t *testing.T) {
	// Floating-point reduction must be reproducible run-to-run because
	// partials are combined in chunk-index order.
	body := func(i int) float64 { return 1.0 / float64(i+1) }
	a := ReduceFloat64(100000, body)
	for k := 0; k < 5; k++ {
		if b := ReduceFloat64(100000, body); b != a {
			t.Fatalf("nondeterministic reduction: %v vs %v", a, b)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if MaxWorkers() != 1 {
		t.Fatal("SetMaxWorkers(1) not applied")
	}
	var ran int
	For(1000, func(i int) { ran++ }) // safe: single worker means serial
	if ran != 1000 {
		t.Fatalf("serial run visited %d of 1000", ran)
	}
	if got := SetMaxWorkers(0); got != 1 {
		t.Fatalf("SetMaxWorkers returned %d, want previous value 1", got)
	}
	if MaxWorkers() < 1 {
		t.Fatal("reset worker count must be >= 1")
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Int32
	Do(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Do did not run all functions")
	}
	Do(func() { a.Store(10) }) // single-function fast path
	if a.Load() != 10 {
		t.Fatal("Do single-function path failed")
	}
}
