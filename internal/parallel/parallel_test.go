package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 1000, 4096} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedExactPartition(t *testing.T) {
	f := func(n uint16, grain uint8) bool {
		nn := int(n) % 5000
		var total int64
		ForChunked(nn, int(grain), func(lo, hi int) {
			if lo < 0 || hi > nn || lo > hi {
				t.Fatalf("bad chunk [%d,%d) for n=%d", lo, hi, nn)
			}
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(nn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReduceFloat64MatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, 257, 10000} {
		got := ReduceFloat64(n, func(i int) float64 { return float64(i) })
		want := float64(n) * float64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("ReduceFloat64(n=%d) = %v, want %v", n, got, want)
		}
	}
}

func TestReduceDeterministic(t *testing.T) {
	// Floating-point reduction must be reproducible run-to-run because
	// partials are combined in chunk-index order.
	body := func(i int) float64 { return 1.0 / float64(i+1) }
	a := ReduceFloat64(100000, body)
	for k := 0; k < 5; k++ {
		if b := ReduceFloat64(100000, body); b != a {
			t.Fatalf("nondeterministic reduction: %v vs %v", a, b)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if MaxWorkers() != 1 {
		t.Fatal("SetMaxWorkers(1) not applied")
	}
	var ran int
	For(1000, func(i int) { ran++ }) // safe: single worker means serial
	if ran != 1000 {
		t.Fatalf("serial run visited %d of 1000", ran)
	}
	if got := SetMaxWorkers(0); got != 1 {
		t.Fatalf("SetMaxWorkers returned %d, want previous value 1", got)
	}
	if MaxWorkers() < 1 {
		t.Fatal("reset worker count must be >= 1")
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Int32
	Do(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Do did not run all functions")
	}
	Do(func() { a.Store(10) }) // single-function fast path
	if a.Load() != 10 {
		t.Fatal("Do single-function path failed")
	}
}
