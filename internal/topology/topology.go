package topology

import "fmt"

// CoresPerChip is fixed at 2 on TPU-v3.
const CoresPerChip = 2

// FullPodCores is the size of a complete TPU-v3 pod.
const FullPodCores = 2048

// Slice is a rectangular sub-grid of a pod's chip torus.
type Slice struct {
	// Rows and Cols are the chip-grid dimensions.
	Rows, Cols int
}

// standardSlices maps core counts to their chip-grid shapes, following the
// actual TPU-v3 slice geometry (a full pod is a 32×32 chip torus).
var standardSlices = map[int]Slice{
	32:   {4, 4},
	64:   {8, 4},
	128:  {8, 8},
	256:  {16, 8},
	512:  {16, 16},
	1024: {32, 16},
	2048: {32, 32},
}

// SliceForCores returns the standard slice shape for a core count.
func SliceForCores(cores int) (Slice, error) {
	s, ok := standardSlices[cores]
	if !ok {
		return Slice{}, fmt.Errorf("topology: no standard TPU-v3 slice with %d cores", cores)
	}
	return s, nil
}

// StandardCoreCounts lists supported slice sizes in ascending order.
func StandardCoreCounts() []int { return []int{32, 64, 128, 256, 512, 1024, 2048} }

// Chips returns the number of chips in the slice.
func (s Slice) Chips() int { return s.Rows * s.Cols }

// Cores returns the number of TPU cores in the slice.
func (s Slice) Cores() int { return s.Chips() * CoresPerChip }

// IsTorus reports whether the slice wraps around (full pod rows/cols of 32
// get wraparound links; smaller slices are meshes on TPU-v3).
func (s Slice) IsTorus() bool { return s.Rows == 32 && s.Cols == 32 }

// Links returns the number of inter-chip links in the slice (mesh counting;
// wraparound links added for full-pod dimensions).
func (s Slice) Links() int {
	horiz := s.Rows * (s.Cols - 1)
	vert := s.Cols * (s.Rows - 1)
	if s.Cols == 32 {
		horiz += s.Rows
	}
	if s.Rows == 32 {
		vert += s.Cols
	}
	return horiz + vert
}

// --- Batch-normalization replica groups --------------------------------------

// BNGroups partitions world replicas into groups of the given size for
// distributed batch normalization. Groups of 16 or fewer replicas are
// contiguous runs of ranks (1-D); larger groups use the 2-D tiling of §3.4,
// which keeps group members physically close in both torus dimensions and
// thus lowers the cost of the statistics all-reduce.
//
// size must divide world. The returned groups are an exact partition of
// [0, world).
func BNGroups(world, size int, slice Slice) ([][]int, error) {
	if size < 1 || world < 1 {
		return nil, fmt.Errorf("topology: invalid BN group size %d for world %d", size, world)
	}
	if world%size != 0 {
		return nil, fmt.Errorf("topology: BN group size %d does not divide world %d", size, world)
	}
	if size <= 16 {
		return groups1D(world, size), nil
	}
	return groups2D(world, size, slice)
}

// groups1D produces contiguous rank runs.
func groups1D(world, size int) [][]int {
	groups := make([][]int, 0, world/size)
	for lo := 0; lo < world; lo += size {
		g := make([]int, size)
		for i := range g {
			g[i] = lo + i
		}
		groups = append(groups, g)
	}
	return groups
}

// groups2D tiles the slice's core grid with near-square tiles of the given
// size. Cores are laid out row-major over a (Rows × Cols·CoresPerChip) grid:
// the two cores of a chip sit next to each other in the column dimension.
func groups2D(world, size int, slice Slice) ([][]int, error) {
	rows := slice.Rows
	cols := slice.Cols * CoresPerChip
	if rows*cols != world {
		return nil, fmt.Errorf("topology: slice %dx%d (%d cores) does not match world %d", slice.Rows, slice.Cols, rows*cols, world)
	}
	tileR, tileC, ok := tileShape(size, rows, cols)
	if !ok {
		return nil, fmt.Errorf("topology: cannot tile %d-core groups onto a %dx%d core grid", size, rows, cols)
	}
	var groups [][]int
	for r0 := 0; r0 < rows; r0 += tileR {
		for c0 := 0; c0 < cols; c0 += tileC {
			g := make([]int, 0, size)
			for r := r0; r < r0+tileR; r++ {
				for c := c0; c < c0+tileC; c++ {
					g = append(g, r*cols+c)
				}
			}
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// tileShape finds the most square tileR×tileC = size that evenly tiles a
// rows×cols grid, preferring shapes closest to square.
func tileShape(size, rows, cols int) (tileR, tileC int, ok bool) {
	best := -1
	for r := 1; r <= size; r++ {
		if size%r != 0 {
			continue
		}
		c := size / r
		if r > rows || c > cols || rows%r != 0 || cols%c != 0 {
			continue
		}
		// Squareness score: smaller |r-c| is better.
		d := r - c
		if d < 0 {
			d = -d
		}
		if best == -1 || d < best {
			best = d
			tileR, tileC = r, c
		}
	}
	return tileR, tileC, best != -1
}

// GroupDiameter returns the maximum intra-group hop distance for a group
// under the slice's core-grid layout — the latency-relevant measure that 2-D
// tiling minimizes relative to 1-D runs.
func GroupDiameter(group []int, slice Slice) int {
	cols := slice.Cols * CoresPerChip
	maxD := 0
	for i := 0; i < len(group); i++ {
		ri, ci := group[i]/cols, group[i]%cols
		for j := i + 1; j < len(group); j++ {
			rj, cj := group[j]/cols, group[j]%cols
			d := abs(ri-rj) + abs(ci-cj)
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
