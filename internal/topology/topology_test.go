package topology

import (
	"testing"
	"testing/quick"
)

func TestStandardSlices(t *testing.T) {
	for _, cores := range StandardCoreCounts() {
		s, err := SliceForCores(cores)
		if err != nil {
			t.Fatalf("SliceForCores(%d): %v", cores, err)
		}
		if s.Cores() != cores {
			t.Errorf("slice %dx%d has %d cores, want %d", s.Rows, s.Cols, s.Cores(), cores)
		}
	}
	if _, err := SliceForCores(100); err == nil {
		t.Fatal("non-standard core count must error")
	}
	full, _ := SliceForCores(FullPodCores)
	if !full.IsTorus() {
		t.Fatal("full pod must be a torus")
	}
	small, _ := SliceForCores(128)
	if small.IsTorus() {
		t.Fatal("128-core slice is a mesh, not a torus")
	}
}

func TestLinksCount(t *testing.T) {
	// 2x2 mesh: 2*(2-1) horizontal rows *2 + vertical = 2+2 = 4.
	s := Slice{Rows: 2, Cols: 2}
	if got := s.Links(); got != 4 {
		t.Fatalf("2x2 mesh links = %d, want 4", got)
	}
	// Full pod 32x32 torus: 32*32 horizontal + 32*32 vertical = 2048.
	full := Slice{Rows: 32, Cols: 32}
	if got := full.Links(); got != 2048 {
		t.Fatalf("32x32 torus links = %d, want 2048", got)
	}
}

func TestBNGroups1DContiguous(t *testing.T) {
	slice, _ := SliceForCores(128)
	groups, err := BNGroups(128, 8, slice)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 16 {
		t.Fatalf("got %d groups, want 16", len(groups))
	}
	if groups[1][0] != 8 || groups[1][7] != 15 {
		t.Fatalf("group 1 not contiguous: %v", groups[1])
	}
}

func TestBNGroups2DTiling(t *testing.T) {
	// 128 cores on an 8x8 chip slice = 8 rows x 16 core-cols. Group size 32
	// (>16) must use 2-D tiles.
	slice, _ := SliceForCores(128)
	groups, err := BNGroups(128, 32, slice)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	// A 32-member 2-D tile on an 8x16 grid should be 4x8 or 8x4, with
	// diameter well below the 1-D run's 31.
	d := GroupDiameter(groups[0], slice)
	if d >= 31 {
		t.Fatalf("2-D tiled group diameter %d not better than 1-D", d)
	}
	if d > 12 {
		t.Fatalf("2-D tile diameter %d too large for a near-square tile", d)
	}
}

func TestBNGroupsPartitionQuick(t *testing.T) {
	slice, _ := SliceForCores(256)
	world := 256
	f := func(szRaw uint8) bool {
		sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
		size := sizes[int(szRaw)%len(sizes)]
		groups, err := BNGroups(world, size, slice)
		if err != nil {
			return false
		}
		seen := make([]bool, world)
		for _, g := range groups {
			if len(g) != size {
				return false
			}
			for _, r := range g {
				if r < 0 || r >= world || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBNGroupsErrors(t *testing.T) {
	slice, _ := SliceForCores(128)
	if _, err := BNGroups(128, 7, slice); err == nil {
		t.Fatal("non-dividing group size must error")
	}
	if _, err := BNGroups(128, 0, slice); err == nil {
		t.Fatal("zero group size must error")
	}
	// World not matching the slice in 2-D mode must error.
	if _, err := BNGroups(64, 32, slice); err == nil {
		t.Fatal("world/slice mismatch must error for 2-D grouping")
	}
}

func TestGroupDiameter(t *testing.T) {
	slice := Slice{Rows: 4, Cols: 4} // 4x8 core grid
	// Two cores at opposite corners of the core grid: distance 3+7 = 10.
	if d := GroupDiameter([]int{0, 31}, slice); d != 10 {
		t.Fatalf("diameter = %d, want 10", d)
	}
	if d := GroupDiameter([]int{5}, slice); d != 0 {
		t.Fatalf("singleton diameter = %d, want 0", d)
	}
}

func TestTileShapePrefersSquare(t *testing.T) {
	r, c, ok := tileShape(64, 16, 32)
	if !ok {
		t.Fatal("tileShape failed")
	}
	if r*c != 64 {
		t.Fatalf("tile %dx%d does not have 64 members", r, c)
	}
	if r != 8 || c != 8 {
		t.Fatalf("tile = %dx%d, want 8x8", r, c)
	}
}
