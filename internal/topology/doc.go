// Package topology models the TPU-v3 pod the paper trains on: chips with
// two cores each, arranged in a 2-D torus, carved into rectangular slices
// of 32–2048 cores. It also constructs the batch-normalization replica
// groups of §3.4, including the two-dimensional tiling used for groups
// larger than 16.
//
// Seams: Slice is the geometry value threaded through the whole stack — BN
// group tiling (BNGroups, GroupDiameter), the torus collectives
// (comm.Torus2DProvider), and the pod simulator's per-row slice resolution
// (SliceForCores).
//
// Paper: §2 (the TPU-v3 pod) and §3.4 (2-D BN group tiling, whose smaller
// group diameters are the point of tiling).
package topology
