package schedule

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScaledLRLinearRule(t *testing.T) {
	// Table 2: LR 0.016 per 256 at batch 4096 → peak 0.256.
	if got := ScaledLR(0.016, 4096); math.Abs(got-0.256) > 1e-12 {
		t.Fatalf("ScaledLR = %v, want 0.256", got)
	}
	// LARS row: 0.236 per 256 at batch 16384 → 15.104.
	if got := ScaledLR(0.236, 16384); math.Abs(got-15.104) > 1e-9 {
		t.Fatalf("ScaledLR = %v, want 15.104", got)
	}
	// Doubling the batch doubles the LR.
	f := func(b uint16) bool {
		batch := int(b)%65536 + 256
		return math.Abs(ScaledLR(0.1, 2*batch)-2*ScaledLR(0.1, batch)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWarmupRampsLinearly(t *testing.T) {
	s := Warmup{Epochs: 5, Inner: Constant(1.0)}
	if got := s.LR(0); got != 0 {
		t.Fatalf("warmup LR(0) = %v, want 0", got)
	}
	if got := s.LR(2.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("warmup LR(2.5) = %v, want 0.5", got)
	}
	if got := s.LR(5); got != 1 {
		t.Fatalf("warmup LR(5) = %v, want 1", got)
	}
	if got := s.LR(100); got != 1 {
		t.Fatalf("after warmup LR = %v, want 1", got)
	}
}

func TestWarmupMonotoneDuringRampQuick(t *testing.T) {
	s := Warmup{Epochs: 50, Inner: Constant(2.0)}
	f := func(a, b uint16) bool {
		e1 := float64(a%5000) / 100 // 0..50
		e2 := float64(b%5000) / 100
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		return s.LR(e1) <= s.LR(e2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExponentialStaircase(t *testing.T) {
	e := Exponential{Peak: 1, Rate: 0.97, DecayEpochs: 2.4, Staircase: true}
	if got := e.LR(0); got != 1 {
		t.Fatalf("LR(0) = %v", got)
	}
	if got := e.LR(2.3); got != 1 {
		t.Fatalf("staircase LR(2.3) = %v, want 1 (no drop before 2.4)", got)
	}
	if got := e.LR(2.4); math.Abs(got-0.97) > 1e-12 {
		t.Fatalf("LR(2.4) = %v, want 0.97", got)
	}
	if got := e.LR(4.8); math.Abs(got-0.97*0.97) > 1e-12 {
		t.Fatalf("LR(4.8) = %v, want 0.9409", got)
	}
	// Smooth variant interpolates.
	s := Exponential{Peak: 1, Rate: 0.97, DecayEpochs: 2.4}
	if got := s.LR(1.2); !(got < 1 && got > 0.97) {
		t.Fatalf("smooth LR(1.2) = %v, want in (0.97, 1)", got)
	}
}

func TestPolynomialDecay(t *testing.T) {
	p := Polynomial{Peak: 10, End: 0, TotalEpochs: 350, Power: 2}
	if got := p.LR(0); got != 10 {
		t.Fatalf("LR(0) = %v", got)
	}
	if got := p.LR(175); math.Abs(got-2.5) > 1e-12 { // 10 * (0.5)^2
		t.Fatalf("LR(175) = %v, want 2.5", got)
	}
	if got := p.LR(350); got != 0 {
		t.Fatalf("LR(350) = %v, want 0", got)
	}
	if got := p.LR(400); got != 0 {
		t.Fatalf("LR beyond total = %v, want End", got)
	}
}

func TestDecaySchedulesMonotoneQuick(t *testing.T) {
	scheds := []Schedule{
		Exponential{Peak: 3, Rate: 0.9, DecayEpochs: 2},
		Polynomial{Peak: 3, End: 0, TotalEpochs: 100, Power: 2},
		Cosine{Peak: 3, TotalEpochs: 100},
	}
	f := func(a, b uint16) bool {
		e1 := float64(a % 10000 / 100)
		e2 := float64(b % 10000 / 100)
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		for _, s := range scheds {
			if s.LR(e1) < s.LR(e2)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineEndpoints(t *testing.T) {
	c := Cosine{Peak: 2, TotalEpochs: 10}
	if got := c.LR(0); got != 2 {
		t.Fatalf("cosine LR(0) = %v", got)
	}
	if got := c.LR(5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine LR(mid) = %v, want 1", got)
	}
	if got := c.LR(10); got != 0 {
		t.Fatalf("cosine LR(end) = %v, want 0", got)
	}
}

func TestPaperPresets(t *testing.T) {
	// RMSProp preset at batch 4096: peak 0.256 after 5-epoch warmup.
	r := RMSPropPreset(4096)
	if got := r.LR(5); math.Abs(got-0.256*math.Pow(0.97, math.Floor(5/2.4))) > 1e-9 {
		t.Fatalf("RMSProp preset LR(5) = %v", got)
	}
	if r.LR(1) >= r.LR(4.9) {
		t.Fatal("RMSProp preset must still be warming up at epoch 1")
	}
	// LARS preset (Table 2 row: 0.236/256, batch 16384, warmup 50).
	l := LARSPreset(0.236, 16384, 50, 350)
	peak := ScaledLR(0.236, 16384)
	if got := l.LR(50); math.Abs(got-peak*math.Pow(1-50.0/350, 2)) > 1e-9 {
		t.Fatalf("LARS preset LR(50) = %v", got)
	}
	if got := l.LR(350); got != 0 {
		t.Fatalf("LARS preset final LR = %v, want 0", got)
	}
	if l.LR(10) >= l.LR(49) {
		t.Fatal("LARS preset must ramp during its 50-epoch warmup")
	}
}
