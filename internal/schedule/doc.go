// Package schedule implements the learning-rate schedules from the paper's
// §3.2: the linear scaling rule (a base LR per 256 samples scaled by the
// global batch size), linear warmup, and exponential / polynomial / cosine
// decay — exponential for the RMSProp rows of Table 2, polynomial for the
// LARS rows.
//
// Seams: Schedule maps a fractional epoch to a learning rate — the single
// interface the replica engine queries each step; Warmup wraps any inner
// schedule; ScaledLR applies the linear scaling rule. train.WithLinearScaling
// composes these the way §3.2 prescribes.
package schedule
