package schedule

import "math"

// Schedule maps a (fractional) epoch to a learning rate.
type Schedule interface {
	LR(epoch float64) float64
}

// ScaledLR applies the linear scaling rule of Goyal et al., as used in the
// paper: the per-256-sample learning rate from Table 2 times batch/256.
func ScaledLR(lrPer256 float64, globalBatch int) float64 {
	return lrPer256 * float64(globalBatch) / 256.0
}

// Constant is a flat schedule.
type Constant float64

// LR implements Schedule.
func (c Constant) LR(float64) float64 { return float64(c) }

// Warmup wraps an inner schedule with a linear ramp from 0 to the inner
// schedule's value over Epochs epochs. The paper warms up for 5 epochs
// (RMSProp) or 43–50 epochs (LARS).
type Warmup struct {
	Epochs float64
	Inner  Schedule
}

// LR implements Schedule.
func (w Warmup) LR(epoch float64) float64 {
	if w.Epochs > 0 && epoch < w.Epochs {
		return w.Inner.LR(epoch) * epoch / w.Epochs
	}
	return w.Inner.LR(epoch)
}

// Exponential decays the peak LR by a factor Rate every DecayEpochs epochs.
// Staircase selects discrete drops (the EfficientNet reference setting:
// ×0.97 every 2.4 epochs, staircase).
type Exponential struct {
	Peak        float64
	Rate        float64
	DecayEpochs float64
	Staircase   bool
}

// LR implements Schedule.
func (e Exponential) LR(epoch float64) float64 {
	p := epoch / e.DecayEpochs
	if e.Staircase {
		p = math.Floor(p)
	}
	return e.Peak * math.Pow(e.Rate, p)
}

// Polynomial decays from Peak to End over TotalEpochs with the given Power.
// Power 2 is the MLPerf/LARS convention the paper follows for its LARS rows.
type Polynomial struct {
	Peak        float64
	End         float64
	TotalEpochs float64
	Power       float64
}

// LR implements Schedule.
func (p Polynomial) LR(epoch float64) float64 {
	if epoch >= p.TotalEpochs {
		return p.End
	}
	frac := 1 - epoch/p.TotalEpochs
	return (p.Peak-p.End)*math.Pow(frac, p.Power) + p.End
}

// Cosine decays from Peak to zero over TotalEpochs following a half cosine.
type Cosine struct {
	Peak        float64
	TotalEpochs float64
}

// LR implements Schedule.
func (c Cosine) LR(epoch float64) float64 {
	if epoch >= c.TotalEpochs {
		return 0
	}
	return c.Peak * 0.5 * (1 + math.Cos(math.Pi*epoch/c.TotalEpochs))
}

// --- Paper presets ------------------------------------------------------------

// RMSPropPreset reproduces the RMSProp rows of Table 2: LR 0.016 per 256
// samples scaled linearly, warmed up over 5 epochs, exponential decay ×0.97
// every 2.4 epochs (staircase).
func RMSPropPreset(globalBatch int) Schedule {
	peak := ScaledLR(0.016, globalBatch)
	return Warmup{Epochs: 5, Inner: Exponential{Peak: peak, Rate: 0.97, DecayEpochs: 2.4, Staircase: true}}
}

// LARSPreset reproduces the LARS rows of Table 2: the per-256 LR from the
// table scaled linearly, long warmup, polynomial (power-2) decay to zero
// over the full 350 epochs.
func LARSPreset(lrPer256 float64, globalBatch int, warmupEpochs, totalEpochs float64) Schedule {
	peak := ScaledLR(lrPer256, globalBatch)
	return Warmup{Epochs: warmupEpochs, Inner: Polynomial{Peak: peak, End: 0, TotalEpochs: totalEpochs, Power: 2}}
}
