// Package xla models the XLA memory-layout rules that drive the paper's
// batch-size arithmetic (§2): XLA pads each tensor's batch dimension to a
// multiple of eight, so a TPU core processing fewer than 8 examples wastes
// cycles on padding. That is why a full 2048-core TPU-v3 pod needs a global
// batch of at least 16384, and why the paper must make very large batches
// work at all.
//
// Seams: SplitBatch shards a global batch across cores (erroring when it
// cannot be split evenly) and PadBatch applies the multiple-of-8 padding;
// the pod simulator charges compute on the padded per-core batch.
package xla
