package xla

import (
	"testing"
	"testing/quick"
)

func TestPadBatch(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {1, 8}, {7, 8}, {8, 8}, {9, 16}, {32, 32}, {33, 40},
	}
	for _, c := range cases {
		if got := PadBatch(c.in); got != c.want {
			t.Errorf("PadBatch(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPadBatchPropertiesQuick(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw) % 10000
		p := PadBatch(n)
		if n == 0 {
			return p == 0
		}
		return p >= n && p%BatchPadMultiple == 0 && p-n < BatchPadMultiple
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaddingWaste(t *testing.T) {
	if w := PaddingWaste(8); w != 0 {
		t.Errorf("PaddingWaste(8) = %v, want 0", w)
	}
	if w := PaddingWaste(4); w != 0.5 {
		t.Errorf("PaddingWaste(4) = %v, want 0.5", w)
	}
	if w := PaddingWaste(1); w != 7.0/8 {
		t.Errorf("PaddingWaste(1) = %v, want 7/8", w)
	}
}

func TestMinEfficientGlobalBatchFullPod(t *testing.T) {
	// §2: "training on an entire TPU-v3 pod which has 2048 TPU cores
	// requires at least a global batch size of 16384".
	if got := MinEfficientGlobalBatch(2048); got != 16384 {
		t.Fatalf("MinEfficientGlobalBatch(2048) = %d, want 16384", got)
	}
}

func TestSplitBatch(t *testing.T) {
	if pc, err := SplitBatch(32768, 1024); err != nil || pc != 32 {
		t.Fatalf("SplitBatch(32768, 1024) = %d, %v; want 32, nil", pc, err)
	}
	if pc, err := SplitBatch(65536, 1024); err != nil || pc != 64 {
		t.Fatalf("SplitBatch(65536, 1024) = %d, %v; want 64, nil", pc, err)
	}
	if _, err := SplitBatch(100, 64); err == nil {
		t.Fatal("non-dividing batch must error")
	}
	if _, err := SplitBatch(0, 64); err == nil {
		t.Fatal("zero batch must error")
	}
	if _, err := SplitBatch(64, 0); err == nil {
		t.Fatal("zero cores must error")
	}
}

func TestEffectiveThroughputFactor(t *testing.T) {
	if f := EffectiveThroughputFactor(32); f != 1 {
		t.Errorf("factor(32) = %v, want 1", f)
	}
	if f := EffectiveThroughputFactor(4); f != 0.5 {
		t.Errorf("factor(4) = %v, want 0.5", f)
	}
}
