package xla

import "fmt"

// BatchPadMultiple is XLA's padding granularity for the batch dimension.
const BatchPadMultiple = 8

// PadBatch returns the padded per-core batch the hardware actually executes.
func PadBatch(perCore int) int {
	if perCore <= 0 {
		return 0
	}
	return (perCore + BatchPadMultiple - 1) / BatchPadMultiple * BatchPadMultiple
}

// PaddingWaste returns the fraction of executed examples that are padding
// for the given per-core batch (0 when perCore is a multiple of 8).
func PaddingWaste(perCore int) float64 {
	if perCore <= 0 {
		return 0
	}
	p := PadBatch(perCore)
	return float64(p-perCore) / float64(p)
}

// MinEfficientGlobalBatch is the smallest global batch that incurs no
// padding waste on the given number of cores — 16384 for a full 2048-core
// pod, exactly the constraint stated in §2.
func MinEfficientGlobalBatch(cores int) int { return cores * BatchPadMultiple }

// SplitBatch validates and splits a global batch across cores, returning the
// per-core batch. The global batch must divide evenly (the data-parallel
// engine assigns identical shards).
func SplitBatch(globalBatch, cores int) (int, error) {
	if cores <= 0 {
		return 0, fmt.Errorf("xla: core count %d must be positive", cores)
	}
	if globalBatch <= 0 {
		return 0, fmt.Errorf("xla: global batch %d must be positive", globalBatch)
	}
	if globalBatch%cores != 0 {
		return 0, fmt.Errorf("xla: global batch %d does not divide across %d cores", globalBatch, cores)
	}
	return globalBatch / cores, nil
}

// EffectiveThroughputFactor returns the fraction of compute doing useful
// work for a per-core batch: useful / padded examples.
func EffectiveThroughputFactor(perCore int) float64 {
	if perCore <= 0 {
		return 0
	}
	return float64(perCore) / float64(PadBatch(perCore))
}
