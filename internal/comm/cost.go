package comm

import "effnetscale/internal/topology"

// LinkParams characterizes one inter-chip link of the TPU-v3 interconnect
// for the α-β cost model: per-message latency α and per-direction effective
// bandwidth β.
type LinkParams struct {
	// BandwidthGBs is the effective per-link bandwidth in GB/s.
	BandwidthGBs float64
	// LatencyUS is the per-hop latency in microseconds.
	LatencyUS float64
}

// TPUv3Links holds the calibrated interconnect constants. The bandwidth is
// fit once against Table 1's 128-core rows (see internal/podsim/constants.go
// for the calibration story); the other slice sizes are then predictions.
var TPUv3Links = LinkParams{BandwidthGBs: 45, LatencyUS: 1.5}

// RingAllReduceSeconds returns the modelled wall-clock time of a ring
// all-reduce of the given payload across n nodes: 2(n−1)/n·B/β + 2(n−1)·α.
func RingAllReduceSeconds(bytes int, n int, lp LinkParams) float64 {
	if n <= 1 {
		return 0
	}
	b := float64(bytes)
	bw := lp.BandwidthGBs * 1e9
	alpha := lp.LatencyUS * 1e-6
	return 2*float64(n-1)/float64(n)*b/bw + 2*float64(n-1)*alpha
}

// RingAllGatherSeconds returns the modelled wall-clock time of a ring
// all-gather whose gathered output is totalBytes across n nodes: each node
// forwards (n−1)/n of the output around the ring, (n−1)/n·B/β + (n−1)·α —
// half a ring all-reduce, which is a reduce-scatter plus this gather.
func RingAllGatherSeconds(totalBytes int, n int, lp LinkParams) float64 {
	if n <= 1 {
		return 0
	}
	b := float64(totalBytes)
	bw := lp.BandwidthGBs * 1e9
	alpha := lp.LatencyUS * 1e-6
	return float64(n-1)/float64(n)*b/bw + float64(n-1)*alpha
}

// Torus2DAllReduceSeconds models the hierarchical all-reduce TPU pods use on
// their 2-D interconnect: a ring phase along each row (full payload),
// followed by a ring phase along each column on the row-reduced 1/cols
// share, then the mirrored gather phases. This is the algorithm from Ying et
// al. that the paper's distributed training inherits.
func Torus2DAllReduceSeconds(bytes int, slice topology.Slice, lp LinkParams) float64 {
	rows, cols := slice.Rows, slice.Cols
	if rows*cols <= 1 {
		return 0
	}
	b := float64(bytes)
	bw := lp.BandwidthGBs * 1e9
	alpha := lp.LatencyUS * 1e-6
	var t float64
	if cols > 1 {
		t += 2 * (float64(cols-1) / float64(cols)) * b / bw
		t += 2 * float64(cols-1) * alpha
	}
	share := b / float64(cols)
	if rows > 1 {
		t += 2 * (float64(rows-1) / float64(rows)) * share / bw
		t += 2 * float64(rows-1) * alpha
	}
	return t
}

// TreeAllReduceSeconds models a recursive-doubling all-reduce: log2(n)
// rounds, each moving the full payload once. Better than the ring when the
// payload is small and latency dominates; worse for large payloads.
func TreeAllReduceSeconds(bytes int, n int, lp LinkParams) float64 {
	if n <= 1 {
		return 0
	}
	b := float64(bytes)
	bw := lp.BandwidthGBs * 1e9
	alpha := lp.LatencyUS * 1e-6
	rounds := 0
	for x := n; x > 1; x >>= 1 {
		rounds++
	}
	return float64(rounds) * (b/bw + alpha)
}

// GroupAllReduceSeconds models the small, latency-dominated all-reduce of
// per-channel batch-norm statistics within a BN replica group (§3.4). bytes
// is the statistics payload; diameter is the group's maximum hop distance
// (2-D tiled groups have much smaller diameters than 1-D runs of the same
// size, which is the point of tiling).
func GroupAllReduceSeconds(bytes, groupSize, diameter int, lp LinkParams) float64 {
	if groupSize <= 1 {
		return 0
	}
	b := float64(bytes)
	bw := lp.BandwidthGBs * 1e9
	alpha := lp.LatencyUS * 1e-6
	// Ring over the group members, with per-step latency scaled by how far
	// apart members physically are.
	hops := float64(diameter)/float64(groupSize-1) + 1
	return 2*float64(groupSize-1)/float64(groupSize)*b/bw + 2*float64(groupSize-1)*alpha*hops
}
