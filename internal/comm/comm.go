package comm

import (
	"fmt"
	"sync"
)

// stagePoolCap bounds how many staging buffers a rank keeps for reuse. Ring
// algorithms have at most one message of this rank in flight plus one being
// processed by the receiver; tree rounds add one more. Four gives headroom
// without hoarding memory.
const stagePoolCap = 4

// World wires n ranks into a ring. Each rank must be driven by its own
// goroutine; collectives are synchronous across the world.
type World struct {
	n   int
	f32 []chan []float32 // f32[r]: channel rank r sends to rank (r+1)%n
	f64 []chan []float64
	// rec32[r] recycles staging buffers back to rank r after the receiver
	// has consumed them, so steady-state collectives allocate nothing.
	rec32 []chan []float32
	rec64 []chan []float64
	bar   *cyclicBarrier
}

// NewWorld creates a communication world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("comm: world size must be >= 1")
	}
	w := &World{n: n, bar: newCyclicBarrier(n)}
	w.f32 = make([]chan []float32, n)
	w.f64 = make([]chan []float64, n)
	w.rec32 = make([]chan []float32, n)
	w.rec64 = make([]chan []float64, n)
	for i := 0; i < n; i++ {
		w.f32[i] = make(chan []float32, 1)
		w.f64[i] = make(chan []float64, 1)
		w.rec32[i] = make(chan []float32, stagePoolCap)
		w.rec64[i] = make(chan []float64, stagePoolCap)
	}
	return w
}

// cyclicBarrier is a reusable rendezvous for n goroutines.
type cyclicBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cyclicBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Size returns the world size.
func (w *World) Size() int { return w.n }

// Peer returns rank r's endpoint.
func (w *World) Peer(r int) *Peer {
	if r < 0 || r >= w.n {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", r, w.n))
	}
	return &Peer{w: w, rank: r}
}

// Peer is one rank's view of a World: the channel transport the Collective
// implementations are built on. All collectives must be entered by every
// rank of the world (from distinct goroutines) or they deadlock — matching
// the lockstep SPMD semantics of TPU collectives.
//
// The collective algorithms themselves are unexported methods; call sites
// outside this package go through the Collective interface.
type Peer struct {
	w    *World
	rank int
}

// Rank returns this peer's rank.
func (p *Peer) Rank() int { return p.rank }

// WorldSize returns the number of ranks.
func (p *Peer) WorldSize() int { return p.w.n }

// Barrier blocks until every rank of the world has entered it.
func (p *Peer) Barrier() {
	if p.w.n == 1 {
		return
	}
	p.w.bar.wait()
}

// --- Staging-buffer reuse ----------------------------------------------------
//
// Every ring/tree step used to allocate a fresh slice to stage the outgoing
// chunk. Instead, each rank owns a small pool of staging buffers: senders pop
// from their own pool (allocating only on a miss), and receivers return a
// consumed buffer to the *sender's* pool once its contents have been folded
// into the local state. A buffer is recycled only after explicit release, so
// reuse can never race with a receiver still reading it.

// stage32 pops a staging buffer of length n from this rank's pool.
func (p *Peer) stage32(n int) []float32 {
	select {
	case b := <-p.w.rec32[p.rank]:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]float32, n)
}

// release32 returns a fully-consumed received buffer to its sender's pool.
func (p *Peer) release32(sender int, b []float32) {
	select {
	case p.w.rec32[sender] <- b:
	default: // pool full: let the GC have it
	}
}

func (p *Peer) stage64(n int) []float64 {
	select {
	case b := <-p.w.rec64[p.rank]:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]float64, n)
}

func (p *Peer) release64(sender int, b []float64) {
	select {
	case p.w.rec64[sender] <- b:
	default:
	}
}

// chunkBounds splits length l into n contiguous chunks; chunk i is
// [lo, hi). Chunks may be empty when l < n.
func chunkBounds(l, n, i int) (lo, hi int) {
	base := l / n
	rem := l % n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ringAllReduce sums buf element-wise across all ranks; on return every
// rank's buf holds the identical total. The algorithm is the bandwidth-
// optimal ring: n−1 reduce-scatter steps followed by n−1 all-gather steps,
// each moving 1/n of the buffer, for 2(n−1)/n · |buf| total bytes per link.
func (p *Peer) ringAllReduce(buf []float32) {
	if p.w.n == 1 {
		return
	}
	p.ringReduceScatter(buf)
	p.ringAllGather(buf)
}

// ringReduceScatter runs the n−1 reduce-scatter steps of the ring in place.
// On return, rank r owns the fully-reduced chunk (r+1) mod n of buf (bounds
// per chunkBounds); the rest of buf is partially reduced.
func (p *Peer) ringReduceScatter(buf []float32) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	prev := (rank - 1 + n) % n
	send := p.w.f32[rank]
	recv := p.w.f32[prev]

	// After step s, chunk (rank−s) holds partial sums of s+1 ranks; after
	// n−1 steps chunk (rank+1 mod n) is complete.
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := p.stage32(hi - lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s-1)%n+n)%n)
		if len(in) != rhi-rlo {
			panic("comm: ring reduce-scatter buffer length mismatch across ranks")
		}
		for i := range in {
			buf[rlo+i] += in[i]
		}
		p.release32(prev, in)
	}
}

// ringAllGather circulates completed chunks so every rank ends with the full
// buffer. It assumes the post-reduce-scatter ownership: rank r holds the
// final value of chunk (r+1) mod n.
func (p *Peer) ringAllGather(buf []float32) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	prev := (rank - 1 + n) % n
	send := p.w.f32[rank]
	recv := p.w.f32[prev]
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank+1-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := p.stage32(hi - lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s)%n+n)%n)
		if len(in) != rhi-rlo {
			panic("comm: ring all-gather buffer length mismatch across ranks")
		}
		copy(buf[rlo:rhi], in)
		p.release32(prev, in)
	}
}

// ringAllReduceF64 is ringAllReduce over float64 buffers (used for
// batch-norm statistics and metrics, which accumulate in double precision).
func (p *Peer) ringAllReduceF64(buf []float64) {
	if p.w.n == 1 {
		return
	}
	p.ringReduceScatterF64(buf)
	p.ringAllGatherF64(buf)
}

func (p *Peer) ringReduceScatterF64(buf []float64) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	prev := (rank - 1 + n) % n
	send := p.w.f64[rank]
	recv := p.w.f64[prev]
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := p.stage64(hi - lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s-1)%n+n)%n)
		if len(in) != rhi-rlo {
			panic("comm: ring reduce-scatter buffer length mismatch across ranks")
		}
		for i := range in {
			buf[rlo+i] += in[i]
		}
		p.release64(prev, in)
	}
}

func (p *Peer) ringAllGatherF64(buf []float64) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	prev := (rank - 1 + n) % n
	send := p.w.f64[rank]
	recv := p.w.f64[prev]
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank+1-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := p.stage64(hi - lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s)%n+n)%n)
		if len(in) != rhi-rlo {
			panic("comm: ring all-gather buffer length mismatch across ranks")
		}
		copy(buf[rlo:rhi], in)
		p.release64(prev, in)
	}
}

// AllReduceScalar sums a scalar across the collective's ranks (convenience
// for counts and losses).
func AllReduceScalar(c Collective, v float64) float64 {
	buf := []float64{v}
	c.AllReduceF64(buf)
	return buf[0]
}
