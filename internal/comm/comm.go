// Package comm implements the collective-communication layer in two forms:
//
//  1. Functional collectives — real ring all-reduce (reduce-scatter followed
//     by all-gather) over goroutine "replicas" connected by channels. The
//     mini-scale distributed training runs actually move gradient and
//     batch-norm statistics through these, so the algorithms are exercised,
//     not just modelled.
//
//  2. An analytic α-β cost model for the same collectives on a TPU-v3
//     slice's 2-D (torus) interconnect, used by the pod simulator to
//     produce Table 1's "% of time spent on All-Reduce" column.
package comm

import (
	"fmt"
	"sync"
)

// World wires n ranks into a ring. Each rank must be driven by its own
// goroutine; collectives are synchronous across the world.
type World struct {
	n   int
	f32 []chan []float32 // f32[r]: channel rank r sends to rank (r+1)%n
	f64 []chan []float64
	bar *cyclicBarrier
}

// NewWorld creates a communication world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("comm: world size must be >= 1")
	}
	w := &World{n: n, bar: newCyclicBarrier(n)}
	w.f32 = make([]chan []float32, n)
	w.f64 = make([]chan []float64, n)
	for i := 0; i < n; i++ {
		w.f32[i] = make(chan []float32, 1)
		w.f64[i] = make(chan []float64, 1)
	}
	return w
}

// cyclicBarrier is a reusable rendezvous for n goroutines.
type cyclicBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cyclicBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Size returns the world size.
func (w *World) Size() int { return w.n }

// Peer returns rank r's endpoint.
func (w *World) Peer(r int) *Peer {
	if r < 0 || r >= w.n {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", r, w.n))
	}
	return &Peer{w: w, rank: r}
}

// Peer is one rank's view of a World. All collectives must be entered by
// every rank of the world (from distinct goroutines) or they deadlock —
// matching the lockstep SPMD semantics of TPU collectives.
type Peer struct {
	w    *World
	rank int
}

// Rank returns this peer's rank.
func (p *Peer) Rank() int { return p.rank }

// WorldSize returns the number of ranks.
func (p *Peer) WorldSize() int { return p.w.n }

// Barrier blocks until every rank of the world has entered it.
func (p *Peer) Barrier() {
	if p.w.n == 1 {
		return
	}
	p.w.bar.wait()
}

// chunkBounds splits length l into n contiguous chunks; chunk i is
// [lo, hi). Chunks may be empty when l < n.
func chunkBounds(l, n, i int) (lo, hi int) {
	base := l / n
	rem := l % n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RingAllReduce sums buf element-wise across all ranks; on return every
// rank's buf holds the identical total. The algorithm is the bandwidth-
// optimal ring: n−1 reduce-scatter steps followed by n−1 all-gather steps,
// each moving 1/n of the buffer, for 2(n−1)/n · |buf| total bytes per link.
func (p *Peer) RingAllReduce(buf []float32) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	send := p.w.f32[rank]
	recv := p.w.f32[(rank-1+n)%n]

	// Reduce-scatter: after step s, chunk (rank−s) holds partial sums of
	// s+1 ranks; after n−1 steps chunk (rank+1 mod n) is complete.
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := make([]float32, hi-lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s-1)%n+n)%n)
		if len(in) != rhi-rlo {
			panic("comm: RingAllReduce buffer length mismatch across ranks")
		}
		for i := range in {
			buf[rlo+i] += in[i]
		}
	}
	// All-gather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank+1-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := make([]float32, hi-lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo := 0
		rhi := 0
		rlo, rhi = chunkBounds(len(buf), n, ((rank-s)%n+n)%n)
		copy(buf[rlo:rhi], in)
	}
}

// RingAllReduceF64 is RingAllReduce over float64 buffers (used for
// batch-norm statistics, which accumulate in double precision).
func (p *Peer) RingAllReduceF64(buf []float64) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	send := p.w.f64[rank]
	recv := p.w.f64[(rank-1+n)%n]
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := make([]float64, hi-lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s-1)%n+n)%n)
		if len(in) != rhi-rlo {
			panic("comm: RingAllReduceF64 buffer length mismatch across ranks")
		}
		for i := range in {
			buf[rlo+i] += in[i]
		}
	}
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank+1-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := make([]float64, hi-lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s)%n+n)%n)
		copy(buf[rlo:rhi], in)
	}
}

// AllReduceScalar sums a scalar across ranks (convenience for counts and
// losses).
func (p *Peer) AllReduceScalar(v float64) float64 {
	buf := []float64{v}
	p.RingAllReduceF64(buf)
	return buf[0]
}
