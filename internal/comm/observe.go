package comm

import (
	"time"

	"effnetscale/internal/topology"
)

// Op identifies a collective operation in an observed Event.
type Op string

// The collective operations an instrumented endpoint reports.
const (
	OpAllReduce     Op = "allreduce"
	OpAllReduceF64  Op = "allreduce_f64"
	OpAllGather     Op = "allgather"
	OpReduceScatter Op = "reduce_scatter"
	OpBroadcast     Op = "broadcast"
	OpBarrier       Op = "barrier"
)

// Event is one observed collective call on one rank: which operation ran,
// which concrete algorithm carried it (Auto resolves its per-call choice),
// the local payload size, and the rank's wall-clock time inside the call.
// Because collectives are lockstep, a rank's elapsed time includes any wait
// for peers to enter the call — it is the collective's cost as seen from
// that rank's critical path, which is exactly what step accounting wants.
type Event struct {
	Op        Op
	Algorithm string
	Rank      int
	World     int
	// Bytes is the local payload size: len(buf) × element size for
	// reductions and broadcast, the gathered output size for all-gather,
	// 0 for barriers.
	Bytes   int
	Elapsed time.Duration
}

// Observer receives collective events from instrumented endpoints. Every
// rank of an instrumented world reports through the same Observer from its
// own goroutine, so implementations must be safe for concurrent use and
// should be cheap — the observer sits on the gradient-reduction hot path.
type Observer interface {
	Collective(Event)
}

// Instrument wraps c so that every collective call is timed and reported to
// obs. A nil obs returns c unchanged, so call sites can wrap
// unconditionally. The wrapper delegates Rank/WorldSize/Algorithm untouched;
// per-call algorithm choosers (Auto) keep their ChooseFor introspection via
// the event's Algorithm field, which records the algorithm that actually
// carried each payload.
func Instrument(c Collective, obs Observer) Collective {
	if obs == nil {
		return c
	}
	return &instrumented{c: c, obs: obs}
}

// InstrumentProvider returns a Provider whose Connect wraps every endpoint
// with Instrument(…, obs) — one call instruments the gradient world and
// every BN-group world the consumer builds from the same provider. The cost
// model half (ModelAllReduce) is untouched: pricing an algorithm is not a
// collective call.
func InstrumentProvider(p Provider, obs Observer) Provider {
	if obs == nil || p.IsZero() {
		return p
	}
	inner := p.connect
	p.connect = func(n int, slice topology.Slice) ([]Collective, error) {
		colls, err := inner(n, slice)
		if err != nil {
			return nil, err
		}
		for i := range colls {
			colls[i] = Instrument(colls[i], obs)
		}
		return colls, nil
	}
	return p
}

// chooser is the optional per-call algorithm introspection Auto implements.
type chooser interface {
	ChooseFor(bytes int) string
}

type instrumented struct {
	c   Collective
	obs Observer
}

// algorithmFor resolves the concrete algorithm an all-reduce of the given
// payload runs — Auto's per-call choice when the wrapped collective is Auto,
// the endpoint's fixed algorithm otherwise.
func (in *instrumented) algorithmFor(bytes int) string {
	if ch, ok := in.c.(chooser); ok {
		return ch.ChooseFor(bytes)
	}
	return in.c.Algorithm()
}

func (in *instrumented) emit(op Op, alg string, bytes int, start time.Time) {
	in.obs.Collective(Event{
		Op:        op,
		Algorithm: alg,
		Rank:      in.c.Rank(),
		World:     in.c.WorldSize(),
		Bytes:     bytes,
		Elapsed:   time.Since(start),
	})
}

// Rank implements Collective.
func (in *instrumented) Rank() int { return in.c.Rank() }

// WorldSize implements Collective.
func (in *instrumented) WorldSize() int { return in.c.WorldSize() }

// Algorithm implements Collective.
func (in *instrumented) Algorithm() string { return in.c.Algorithm() }

// AllReduce implements Collective.
func (in *instrumented) AllReduce(buf []float32) {
	bytes := 4 * len(buf)
	alg := in.algorithmFor(bytes)
	start := time.Now()
	in.c.AllReduce(buf)
	in.emit(OpAllReduce, alg, bytes, start)
}

// AllReduceF64 implements Collective.
func (in *instrumented) AllReduceF64(buf []float64) {
	bytes := 8 * len(buf)
	alg := in.algorithmFor(bytes)
	start := time.Now()
	in.c.AllReduceF64(buf)
	in.emit(OpAllReduceF64, alg, bytes, start)
}

// AllGather implements Collective.
func (in *instrumented) AllGather(local, out []float32) {
	start := time.Now()
	in.c.AllGather(local, out)
	in.emit(OpAllGather, in.c.Algorithm(), 4*len(out), start)
}

// ReduceScatter implements Collective.
func (in *instrumented) ReduceScatter(buf []float32) []float32 {
	start := time.Now()
	got := in.c.ReduceScatter(buf)
	in.emit(OpReduceScatter, in.c.Algorithm(), 4*len(buf), start)
	return got
}

// Broadcast implements Collective.
func (in *instrumented) Broadcast(buf []float32, root int) {
	start := time.Now()
	in.c.Broadcast(buf, root)
	in.emit(OpBroadcast, in.c.Algorithm(), 4*len(buf), start)
}

// Barrier implements Collective.
func (in *instrumented) Barrier() {
	start := time.Now()
	in.c.Barrier()
	in.emit(OpBarrier, in.c.Algorithm(), 0, start)
}
