// Package comm implements the collective-communication layer in two forms:
//
//  1. Functional collectives — real ring, tree and hierarchical 2-D torus
//     algorithms over goroutine "replicas" connected by channels, all behind
//     the Collective interface (see collective.go). The mini-scale
//     distributed training runs actually move gradient and batch-norm
//     statistics through these, so the algorithms are exercised, not just
//     modelled.
//
//  2. An analytic α-β cost model for the same collectives on a TPU-v3
//     slice's 2-D (torus) interconnect (see cost.go), used by the pod
//     simulator to produce Table 1's "% of time spent on All-Reduce" column
//     and by the Auto collective to pick an algorithm per call.
//
// Seams: the Collective interface (AllReduce, AllReduceF64, AllGather,
// ReduceScatter, Broadcast, Barrier, Algorithm) is what every consumer
// programs against; Provider values (RingProvider, TreeProvider,
// Torus2DProvider, AutoProvider, ProviderByName) both wire the executable
// endpoints (Connect) and price the identical algorithm under the cost
// model (ModelAllReduce), so the algorithm the simulator charges and the
// algorithm training runs cannot drift apart. Observer + Instrument /
// InstrumentProvider add per-call accounting (operation, algorithm, payload
// bytes, rank wall time) without touching the algorithms — the telemetry
// subsystem's view into every collective, and the capture side of
// `podbench -validate`'s measured-vs-modeled comparison. World and Peer are
// the underlying channel transport.
//
// Paper: §3.4 (topology-aware all-reduce on the 2-D torus, following Ying
// et al.) and Table 1's communication-share column.
package comm
