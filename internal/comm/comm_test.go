package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"effnetscale/internal/topology"
)

// runWorld drives body(rank, peer) on n goroutines and waits.
func runWorld(n int, body func(rank int, p *Peer)) {
	w := NewWorld(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			body(r, w.Peer(r))
		}(r)
	}
	wg.Wait()
}

// runCollectives drives body(rank, colls[rank]) on len(colls) goroutines.
func runCollectives(colls []Collective, body func(rank int, c Collective)) {
	var wg sync.WaitGroup
	for r := range colls {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			body(r, colls[r])
		}(r)
	}
	wg.Wait()
}

func TestRingAllReduceMatchesSequentialSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		for _, l := range []int{1, 5, 16, 100, 1037} {
			rng := rand.New(rand.NewSource(int64(n*1000 + l)))
			inputs := make([][]float32, n)
			want := make([]float64, l)
			for r := 0; r < n; r++ {
				inputs[r] = make([]float32, l)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.NormFloat64())
					want[i] += float64(inputs[r][i])
				}
			}
			results := make([][]float32, n)
			runWorld(n, func(rank int, p *Peer) {
				buf := append([]float32(nil), inputs[rank]...)
				p.ringAllReduce(buf)
				results[rank] = buf
			})
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Abs(float64(results[r][i])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
						t.Fatalf("n=%d l=%d rank %d elem %d: got %v, want %v", n, l, r, i, results[r][i], want[i])
					}
				}
			}
			// Bitwise consistency across ranks: every replica must hold
			// exactly the same weights after the gradient all-reduce, or
			// replicas drift apart step by step.
			for r := 1; r < n; r++ {
				for i := range results[0] {
					if results[r][i] != results[0][i] {
						t.Fatalf("n=%d l=%d: ranks 0 and %d disagree bitwise at %d", n, l, r, i)
					}
				}
			}
		}
	}
}

func TestRingAllReduceF64PropertyQuick(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		n := int(nRaw)%6 + 1
		l := int(lRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float64, n)
		want := make([]float64, l)
		for r := range inputs {
			inputs[r] = make([]float64, l)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
				want[i] += inputs[r][i]
			}
		}
		ok := true
		var mu sync.Mutex
		runWorld(n, func(rank int, p *Peer) {
			buf := append([]float64(nil), inputs[rank]...)
			p.ringAllReduceF64(buf)
			for i := range want {
				if math.Abs(buf[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllReduceScalar(t *testing.T) {
	n := 5
	colls, err := RingProvider().Connect(n)
	if err != nil {
		t.Fatal(err)
	}
	runCollectives(colls, func(rank int, c Collective) {
		got := AllReduceScalar(c, float64(rank+1))
		if got != 15 { // 1+2+3+4+5
			t.Errorf("rank %d: scalar all-reduce = %v, want 15", rank, got)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	n := 8
	var phase [8]int32
	runWorld(n, func(rank int, p *Peer) {
		phase[rank] = 1
		p.Barrier()
		// After the barrier, every rank must have set phase 1.
		for r := 0; r < n; r++ {
			if phase[r] != 1 {
				t.Errorf("rank %d passed barrier before rank %d arrived", rank, r)
			}
		}
		p.Barrier()
	})
}

func TestSingleRankCollectivesNoop(t *testing.T) {
	runWorld(1, func(rank int, p *Peer) {
		buf := []float32{1, 2, 3}
		p.ringAllReduce(buf)
		if buf[0] != 1 || buf[2] != 3 {
			t.Error("single-rank all-reduce must be identity")
		}
		p.Barrier()
	})
}

func TestPeerRankValidation(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Peer() must panic")
		}
	}()
	w.Peer(2)
}

func TestChunkBoundsCoverExactly(t *testing.T) {
	f := func(lRaw uint16, nRaw uint8) bool {
		l := int(lRaw) % 5000
		n := int(nRaw)%32 + 1
		prev := 0
		for i := 0; i < n; i++ {
			lo, hi := chunkBounds(l, n, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStagingBuffersAreReused(t *testing.T) {
	// After a first collective has populated the recycle pools, further
	// collectives on the same world must not allocate staging buffers.
	n, l := 4, 1024
	colls, err := RingProvider().Connect(n)
	if err != nil {
		t.Fatal(err)
	}
	warm := func() {
		runCollectives(colls, func(rank int, c Collective) {
			buf := make([]float32, l)
			c.AllReduce(buf)
		})
	}
	warm()
	w := colls[0].(*Ring).p.w
	pooled := 0
	for r := 0; r < n; r++ {
		pooled += len(w.rec32[r])
	}
	if pooled == 0 {
		t.Fatal("no staging buffers were recycled after an all-reduce")
	}
	warm()
	pooledAfter := 0
	for r := 0; r < n; r++ {
		pooledAfter += len(w.rec32[r])
	}
	if pooledAfter < pooled {
		t.Fatalf("staging pool shrank across collectives: %d -> %d", pooled, pooledAfter)
	}
}

// --- Cost-model tests -------------------------------------------------------

func TestRingCostMonotoneInBytes(t *testing.T) {
	lp := TPUv3Links
	if RingAllReduceSeconds(1<<20, 8, lp) >= RingAllReduceSeconds(1<<24, 8, lp) {
		t.Fatal("ring cost must grow with payload")
	}
	if RingAllReduceSeconds(1<<20, 1, lp) != 0 {
		t.Fatal("single-node all-reduce must be free")
	}
}

func TestRingCostApproachesBandwidthBound(t *testing.T) {
	// For large payloads, time ≈ 2B/bw regardless of n (the (n−1)/n factor
	// saturates) — this is why the paper's all-reduce percentage stays
	// nearly flat from 128 to 1024 cores.
	lp := LinkParams{BandwidthGBs: 50, LatencyUS: 0}
	b := 100 << 20
	t64 := RingAllReduceSeconds(b, 64, lp)
	t1024 := RingAllReduceSeconds(b, 1024, lp)
	if t1024 < t64 {
		t.Fatal("cost must be nondecreasing in n at zero latency")
	}
	if t1024 > t64*1.05 {
		t.Fatalf("ring cost must saturate: t64=%v t1024=%v", t64, t1024)
	}
}

func TestTorus2DCheaperThanFlatRingForLargeSlices(t *testing.T) {
	// With per-hop latency, the 2-D hierarchical algorithm beats a flat
	// ring over all chips (fewer, shorter phases) — the reason pods use it.
	lp := LinkParams{BandwidthGBs: 45, LatencyUS: 1.5}
	slice, err := topology.SliceForCores(1024)
	if err != nil {
		t.Fatal(err)
	}
	bytes := 36 << 20
	flat := RingAllReduceSeconds(bytes, slice.Chips(), lp)
	hier := Torus2DAllReduceSeconds(bytes, slice, lp)
	if hier >= flat {
		t.Fatalf("2-D torus all-reduce (%v) must beat flat ring (%v) at 512 chips", hier, flat)
	}
}

func TestGroupAllReduceDiameterMatters(t *testing.T) {
	// Same group size, smaller diameter (2-D tile) must cost no more than a
	// long 1-D run — quantifying §3.4's tiling rationale.
	lp := TPUv3Links
	bytes := 4096                                      // per-channel stats are small
	compact := GroupAllReduceSeconds(bytes, 32, 8, lp) // 2-D tile: diameter ~8
	strung := GroupAllReduceSeconds(bytes, 32, 31, lp) // 1-D run: diameter 31
	if compact >= strung {
		t.Fatalf("compact group (%v) must be cheaper than strung-out group (%v)", compact, strung)
	}
	if GroupAllReduceSeconds(bytes, 1, 0, lp) != 0 {
		t.Fatal("group of one must be free")
	}
}
