package comm

import (
	"math"
	"math/rand"
	"testing"
)

func TestBroadcastFromEveryRoot(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			results := make([][]float32, n)
			runWorld(n, func(rank int, p *Peer) {
				buf := make([]float32, 7)
				if rank == root {
					for i := range buf {
						buf[i] = float32(root*100 + i)
					}
				}
				p.Broadcast(buf, root)
				results[rank] = buf
			})
			for r := 0; r < n; r++ {
				for i := 0; i < 7; i++ {
					want := float32(root*100 + i)
					if results[r][i] != want {
						t.Fatalf("n=%d root=%d rank=%d: buf[%d] = %v, want %v", n, root, r, i, results[r][i], want)
					}
				}
			}
		}
	}
}

func TestAllGatherOrdersChunksByRank(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		l := 3
		results := make([][]float32, n)
		runWorld(n, func(rank int, p *Peer) {
			local := make([]float32, l)
			for i := range local {
				local[i] = float32(rank*10 + i)
			}
			out := make([]float32, n*l)
			p.AllGather(local, out)
			results[rank] = out
		})
		for r := 0; r < n; r++ {
			for src := 0; src < n; src++ {
				for i := 0; i < l; i++ {
					want := float32(src*10 + i)
					if got := results[r][src*l+i]; got != want {
						t.Fatalf("n=%d rank %d: out[%d] = %v, want %v", n, r, src*l+i, got, want)
					}
				}
			}
		}
	}
}

func TestReduceScatterChunksSumCorrectly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6} {
		l := 13 // deliberately not divisible by n
		rng := rand.New(rand.NewSource(int64(n)))
		inputs := make([][]float32, n)
		want := make([]float64, l)
		for r := range inputs {
			inputs[r] = make([]float32, l)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.NormFloat64())
				want[i] += float64(inputs[r][i])
			}
		}
		chunks := make([][]float32, n)
		runWorld(n, func(rank int, p *Peer) {
			buf := append([]float32(nil), inputs[rank]...)
			chunks[rank] = p.ReduceScatter(buf)
		})
		// Reassemble: rank r holds chunk (r+1) mod n... chunk indices follow
		// chunkBounds of index (rank+1)%n for n>1, own data for n=1.
		for r := 0; r < n; r++ {
			idx := (r + 1) % n
			if n == 1 {
				idx = 0
			}
			lo, hi := chunkBounds(l, n, idx)
			if len(chunks[r]) != hi-lo {
				t.Fatalf("n=%d rank %d: chunk length %d, want %d", n, r, len(chunks[r]), hi-lo)
			}
			for i := lo; i < hi; i++ {
				if math.Abs(float64(chunks[r][i-lo])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d rank %d: chunk[%d] = %v, want %v", n, r, i-lo, chunks[r][i-lo], want[i])
				}
			}
		}
	}
}

func TestTreeAllReduceMatchesRing(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 3, 6} { // non-powers fall back to ring
		l := 37
		rng := rand.New(rand.NewSource(int64(n * 7)))
		inputs := make([][]float32, n)
		want := make([]float64, l)
		for r := range inputs {
			inputs[r] = make([]float32, l)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.NormFloat64())
				want[i] += float64(inputs[r][i])
			}
		}
		results := make([][]float32, n)
		runWorld(n, func(rank int, p *Peer) {
			buf := append([]float32(nil), inputs[rank]...)
			p.TreeAllReduce(buf)
			results[rank] = buf
		})
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(float64(results[r][i])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d rank %d elem %d: got %v, want %v", n, r, i, results[r][i], want[i])
				}
			}
		}
		// All ranks must agree bitwise (pairwise combines are commutative).
		for r := 1; r < n; r++ {
			for i := range results[0] {
				if results[r][i] != results[0][i] {
					t.Fatalf("n=%d: tree all-reduce ranks 0 and %d disagree at %d", n, r, i)
				}
			}
		}
	}
}

func TestTreeCostBeatsRingForSmallPayloads(t *testing.T) {
	lp := LinkParams{BandwidthGBs: 45, LatencyUS: 1.5}
	small := 1024 // 1 KiB of BN stats
	if TreeAllReduceSeconds(small, 64, lp) >= RingAllReduceSeconds(small, 64, lp) {
		t.Fatal("tree must beat ring for small payloads at 64 nodes")
	}
	big := 64 << 20
	if TreeAllReduceSeconds(big, 64, lp) <= RingAllReduceSeconds(big, 64, lp) {
		t.Fatal("ring must beat tree for large payloads")
	}
	if TreeAllReduceSeconds(small, 1, lp) != 0 {
		t.Fatal("single-node tree must be free")
	}
}
