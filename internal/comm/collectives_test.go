package comm

// Tests of the Collective interface across all four implementations. Every
// collective runs at odd and non-power-of-two world sizes (3, 5, 6, 7) as
// well as the friendly ones — the silent assumptions of power-of-two worlds
// are exactly what these sizes flush out.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"effnetscale/internal/topology"
)

// allProviders returns every provider family, parameterized for world n.
func allProviders() []Provider {
	return []Provider{
		RingProvider(),
		TreeProvider(),
		Torus2DProvider(topology.Slice{}),
		AutoProvider(topology.Slice{}),
	}
}

var testWorldSizes = []int{1, 2, 3, 4, 5, 6, 7, 8}

func connectOrFatal(t *testing.T, p Provider, n int) []Collective {
	t.Helper()
	colls, err := p.Connect(n)
	if err != nil {
		t.Fatalf("%s.Connect(%d): %v", p.Name(), n, err)
	}
	if len(colls) != n {
		t.Fatalf("%s.Connect(%d) returned %d endpoints", p.Name(), n, len(colls))
	}
	return colls
}

func TestAllReduceAllImplementationsAllWorldSizes(t *testing.T) {
	for _, prov := range allProviders() {
		for _, n := range testWorldSizes {
			for _, l := range []int{1, 3, 37, 1037} {
				rng := rand.New(rand.NewSource(int64(n*10000 + l)))
				inputs := make([][]float32, n)
				want := make([]float64, l)
				for r := range inputs {
					inputs[r] = make([]float32, l)
					for i := range inputs[r] {
						inputs[r][i] = float32(rng.NormFloat64())
						want[i] += float64(inputs[r][i])
					}
				}
				colls := connectOrFatal(t, prov, n)
				results := make([][]float32, n)
				runCollectives(colls, func(rank int, c Collective) {
					buf := append([]float32(nil), inputs[rank]...)
					c.AllReduce(buf)
					results[rank] = buf
				})
				for r := 0; r < n; r++ {
					for i := range want {
						if math.Abs(float64(results[r][i])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
							t.Fatalf("%s n=%d l=%d rank %d elem %d: got %v, want %v",
								prov.Name(), n, l, r, i, results[r][i], want[i])
						}
					}
					// Ranks must agree bitwise or SPMD replicas drift.
					for i := range results[0] {
						if results[r][i] != results[0][i] {
							t.Fatalf("%s n=%d l=%d: ranks 0 and %d disagree bitwise at %d",
								prov.Name(), n, l, r, i)
						}
					}
				}
			}
		}
	}
}

func TestAllReduceF64AllImplementationsOddWorlds(t *testing.T) {
	for _, prov := range allProviders() {
		for _, n := range []int{3, 5, 6, 7, 8} {
			l := 29
			rng := rand.New(rand.NewSource(int64(n)))
			inputs := make([][]float64, n)
			want := make([]float64, l)
			for r := range inputs {
				inputs[r] = make([]float64, l)
				for i := range inputs[r] {
					inputs[r][i] = rng.NormFloat64()
					want[i] += inputs[r][i]
				}
			}
			colls := connectOrFatal(t, prov, n)
			results := make([][]float64, n)
			runCollectives(colls, func(rank int, c Collective) {
				buf := append([]float64(nil), inputs[rank]...)
				c.AllReduceF64(buf)
				results[rank] = buf
			})
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Abs(results[r][i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
						t.Fatalf("%s n=%d rank %d elem %d: got %v, want %v",
							prov.Name(), n, r, i, results[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestBroadcastAllImplementationsFromEveryRoot(t *testing.T) {
	for _, prov := range allProviders() {
		for _, n := range []int{1, 3, 5, 6, 7, 8} {
			for root := 0; root < n; root++ {
				colls := connectOrFatal(t, prov, n)
				results := make([][]float32, n)
				runCollectives(colls, func(rank int, c Collective) {
					buf := make([]float32, 7)
					if rank == root {
						for i := range buf {
							buf[i] = float32(root*100 + i)
						}
					}
					c.Broadcast(buf, root)
					results[rank] = buf
				})
				for r := 0; r < n; r++ {
					for i := 0; i < 7; i++ {
						want := float32(root*100 + i)
						if results[r][i] != want {
							t.Fatalf("%s n=%d root=%d rank=%d: buf[%d] = %v, want %v",
								prov.Name(), n, root, r, i, results[r][i], want)
						}
					}
				}
			}
		}
	}
}

func TestAllGatherAllImplementationsOrdersChunksByRank(t *testing.T) {
	for _, prov := range allProviders() {
		for _, n := range []int{1, 3, 5, 6, 7, 8} {
			l := 3
			colls := connectOrFatal(t, prov, n)
			results := make([][]float32, n)
			runCollectives(colls, func(rank int, c Collective) {
				local := make([]float32, l)
				for i := range local {
					local[i] = float32(rank*10 + i)
				}
				out := make([]float32, n*l)
				c.AllGather(local, out)
				results[rank] = out
			})
			for r := 0; r < n; r++ {
				for src := 0; src < n; src++ {
					for i := 0; i < l; i++ {
						want := float32(src*10 + i)
						if got := results[r][src*l+i]; got != want {
							t.Fatalf("%s n=%d rank %d: out[%d] = %v, want %v",
								prov.Name(), n, r, src*l+i, got, want)
						}
					}
				}
			}
		}
	}
}

func TestReduceScatterAllImplementationsChunksSumCorrectly(t *testing.T) {
	for _, prov := range allProviders() {
		for _, n := range []int{1, 3, 5, 6, 7, 8} {
			l := 13 // deliberately not divisible by n
			rng := rand.New(rand.NewSource(int64(n)))
			inputs := make([][]float32, n)
			want := make([]float64, l)
			for r := range inputs {
				inputs[r] = make([]float32, l)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.NormFloat64())
					want[i] += float64(inputs[r][i])
				}
			}
			chunks := make([][]float32, n)
			colls := connectOrFatal(t, prov, n)
			runCollectives(colls, func(rank int, c Collective) {
				buf := append([]float32(nil), inputs[rank]...)
				chunks[rank] = c.ReduceScatter(buf)
			})
			// Rank r holds chunk (r+1) mod n (own data for n=1).
			for r := 0; r < n; r++ {
				idx := (r + 1) % n
				if n == 1 {
					idx = 0
				}
				lo, hi := chunkBounds(l, n, idx)
				if len(chunks[r]) != hi-lo {
					t.Fatalf("%s n=%d rank %d: chunk length %d, want %d", prov.Name(), n, r, len(chunks[r]), hi-lo)
				}
				for i := lo; i < hi; i++ {
					if math.Abs(float64(chunks[r][i-lo])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
						t.Fatalf("%s n=%d rank %d: chunk[%d] = %v, want %v", prov.Name(), n, r, i-lo, chunks[r][i-lo], want[i])
					}
				}
			}
		}
	}
}

func TestCrossAlgorithmConsistency(t *testing.T) {
	// Ring, Tree and Torus2D all-reduce of the same payload must agree
	// within float tolerance — they are different summation orders of the
	// same sum, so results may differ in the last bits but nothing more.
	for _, n := range []int{3, 4, 6, 8} {
		l := 513
		rng := rand.New(rand.NewSource(int64(n * 31)))
		inputs := make([][]float32, n)
		for r := range inputs {
			inputs[r] = make([]float32, l)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.NormFloat64())
			}
		}
		reduced := map[string][][]float32{}
		for _, prov := range []Provider{RingProvider(), TreeProvider(), Torus2DProvider(topology.Slice{})} {
			colls := connectOrFatal(t, prov, n)
			results := make([][]float32, n)
			runCollectives(colls, func(rank int, c Collective) {
				buf := append([]float32(nil), inputs[rank]...)
				c.AllReduce(buf)
				results[rank] = buf
			})
			reduced[prov.Name()] = results
		}
		ring := reduced["ring"]
		for name, results := range reduced {
			for i := range ring[0] {
				diff := math.Abs(float64(results[0][i] - ring[0][i]))
				if diff > 1e-4*(1+math.Abs(float64(ring[0][i]))) {
					t.Fatalf("n=%d: %s and ring disagree at %d: %v vs %v", n, name, i, results[0][i], ring[0][i])
				}
			}
		}
	}
}

func TestAlgorithmReporting(t *testing.T) {
	// The silent tree→ring fallback of non-power-of-two worlds must be
	// observable through Algorithm().
	for _, tc := range []struct {
		n    int
		want string
	}{
		{4, "tree"},
		{8, "tree"},
		{3, "tree(ring-fallback,n=3)"},
		{6, "tree(ring-fallback,n=6)"},
	} {
		colls := connectOrFatal(t, TreeProvider(), tc.n)
		if got := colls[0].Algorithm(); got != tc.want {
			t.Errorf("Tree n=%d: Algorithm() = %q, want %q", tc.n, got, tc.want)
		}
	}

	colls := connectOrFatal(t, RingProvider(), 4)
	if got := colls[0].Algorithm(); got != "ring" {
		t.Errorf("Ring: Algorithm() = %q", got)
	}

	colls = connectOrFatal(t, Torus2DProvider(topology.Slice{Rows: 2, Cols: 3}), 6)
	if got := colls[0].Algorithm(); got != "torus2d(2x3)" {
		t.Errorf("Torus2D: Algorithm() = %q, want torus2d(2x3)", got)
	}

	colls = connectOrFatal(t, AutoProvider(topology.Slice{}), 4)
	if got := colls[0].Algorithm(); !strings.HasPrefix(got, "auto[") {
		t.Errorf("Auto: Algorithm() = %q, want auto[...]", got)
	}
}

func TestAutoPicksTreeForSmallTorusForLarge(t *testing.T) {
	// 16 ranks on a 4x4 grid: a few floats are latency-bound (tree wins);
	// tens of MB are bandwidth-bound (hierarchical torus wins).
	colls := connectOrFatal(t, AutoProvider(topology.Slice{Rows: 4, Cols: 4}), 16)
	auto := colls[0].(*Auto)
	if got := auto.ChooseFor(64); got != "tree" {
		t.Errorf("Auto.ChooseFor(64B) = %q, want tree", got)
	}
	if got := auto.ChooseFor(64 << 20); !strings.HasPrefix(got, "torus2d") {
		t.Errorf("Auto.ChooseFor(64MB) = %q, want torus2d(...)", got)
	}
	// The provider's analytic pricing must make the identical choice — the
	// functional and analytic halves can no longer drift apart.
	_, algo := AutoProvider(topology.Slice{Rows: 4, Cols: 4}).ModelAllReduce(64, 16, TPUv3Links)
	if algo != "tree" {
		t.Errorf("AutoProvider.ModelAllReduce(64B) charged %q, want tree", algo)
	}
	_, algo = AutoProvider(topology.Slice{Rows: 4, Cols: 4}).ModelAllReduce(64<<20, 16, TPUv3Links)
	if !strings.HasPrefix(algo, "torus2d") {
		t.Errorf("AutoProvider.ModelAllReduce(64MB) charged %q, want torus2d(...)", algo)
	}
}

func TestTorus2DGridResolution(t *testing.T) {
	// A slice matching the world keeps its geometry; a slice matching the
	// world in cores uses the row-major core grid; anything else factorizes
	// near-square.
	for _, tc := range []struct {
		n     int
		slice topology.Slice
		want  topology.Slice
	}{
		{6, topology.Slice{Rows: 2, Cols: 3}, topology.Slice{Rows: 2, Cols: 3}},
		{32, topology.Slice{Rows: 4, Cols: 4}, topology.Slice{Rows: 4, Cols: 8}}, // 32 cores on a 4x4 chip slice
		{12, topology.Slice{}, topology.Slice{Rows: 3, Cols: 4}},
		{7, topology.Slice{}, topology.Slice{Rows: 1, Cols: 7}}, // prime: degenerate ring
		{9, topology.Slice{Rows: 2, Cols: 2}, topology.Slice{Rows: 3, Cols: 3}},
	} {
		if got := gridFor(tc.n, tc.slice); got != tc.want {
			t.Errorf("gridFor(%d, %v) = %v, want %v", tc.n, tc.slice, got, tc.want)
		}
	}
}

func TestProviderByName(t *testing.T) {
	for _, name := range []string{"ring", "tree", "torus2d", "auto"} {
		p, err := ProviderByName(name, topology.Slice{Rows: 2, Cols: 2})
		if err != nil {
			t.Fatalf("ProviderByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ProviderByName(%q).Name() = %q", name, p.Name())
		}
		if _, err := p.Connect(4); err != nil {
			t.Errorf("%s.Connect(4): %v", name, err)
		}
	}
	if _, err := ProviderByName("bogus", topology.Slice{}); err == nil {
		t.Fatal("unknown provider name must error")
	}
	var zero Provider
	if !zero.IsZero() {
		t.Fatal("zero Provider must report IsZero")
	}
	if _, err := zero.Connect(2); err == nil {
		t.Fatal("zero Provider Connect must error")
	}
}

func TestTorus2DModelMatchesExecutableShape(t *testing.T) {
	// The executable Torus2D and the analytic Torus2DAllReduceSeconds are
	// the same algorithm: both price/run a row phase on the full payload and
	// a column phase on the 1/cols share. Check the provider reports the
	// grid the executable endpoints actually use.
	slice := topology.Slice{Rows: 2, Cols: 4}
	prov := Torus2DProvider(slice)
	colls := connectOrFatal(t, prov, 8)
	_, algo := prov.ModelAllReduce(1<<20, 8, TPUv3Links)
	if algo != colls[0].Algorithm() {
		t.Fatalf("modelled algorithm %q != executable algorithm %q", algo, colls[0].Algorithm())
	}
	if g := colls[0].(*Torus2D).Grid(); g != slice {
		t.Fatalf("Grid() = %v, want %v", g, slice)
	}
}

func TestCollectiveRankAndWorldSize(t *testing.T) {
	for _, prov := range allProviders() {
		colls := connectOrFatal(t, prov, 6)
		for r, c := range colls {
			if c.Rank() != r {
				t.Fatalf("%s: endpoint %d reports rank %d", prov.Name(), r, c.Rank())
			}
			if c.WorldSize() != 6 {
				t.Fatalf("%s: WorldSize = %d, want 6", prov.Name(), c.WorldSize())
			}
		}
	}
}

func TestBarrierAllImplementations(t *testing.T) {
	for _, prov := range allProviders() {
		n := 5
		colls := connectOrFatal(t, prov, n)
		var phase [5]int32
		runCollectives(colls, func(rank int, c Collective) {
			phase[rank] = 1
			c.Barrier()
			for r := 0; r < n; r++ {
				if phase[r] != 1 {
					t.Errorf("%s: rank %d passed barrier before rank %d", prov.Name(), rank, r)
				}
			}
			c.Barrier()
		})
	}
}

func TestTreeCostBeatsRingForSmallPayloads(t *testing.T) {
	lp := LinkParams{BandwidthGBs: 45, LatencyUS: 1.5}
	small := 1024 // 1 KiB of BN stats
	if TreeAllReduceSeconds(small, 64, lp) >= RingAllReduceSeconds(small, 64, lp) {
		t.Fatal("tree must beat ring for small payloads at 64 nodes")
	}
	big := 64 << 20
	if TreeAllReduceSeconds(big, 64, lp) <= RingAllReduceSeconds(big, 64, lp) {
		t.Fatal("ring must beat tree for large payloads")
	}
	if TreeAllReduceSeconds(small, 1, lp) != 0 {
		t.Fatal("single-node tree must be free")
	}
}

func ExampleProviderByName() {
	prov, _ := ProviderByName("tree", topology.Slice{})
	colls, _ := prov.Connect(6)
	fmt.Println(colls[0].Algorithm())
	// Output: tree(ring-fallback,n=6)
}
