package comm_test

import (
	"fmt"
	"log"
	"sync"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
)

// ExampleProviderByName resolves a collective algorithm by its CLI name,
// wires an executable 8-rank world from it, runs a lockstep all-reduce, and
// prices the identical algorithm under the α-β cost model — the two halves
// of a Provider.
func ExampleProviderByName() {
	prov, err := comm.ProviderByName("torus2d", topology.Slice{Rows: 2, Cols: 4})
	if err != nil {
		log.Fatal(err)
	}

	colls, err := prov.Connect(8) // one endpoint per rank
	if err != nil {
		log.Fatal(err)
	}
	// Every rank must enter the collective from its own goroutine — the
	// lockstep SPMD semantics of TPU collectives.
	bufs := make([][]float32, len(colls))
	var wg sync.WaitGroup
	for r, c := range colls {
		bufs[r] = []float32{float32(r)}
		wg.Add(1)
		go func(c comm.Collective, buf []float32) {
			defer wg.Done()
			c.AllReduce(buf)
		}(c, bufs[r])
	}
	wg.Wait()

	_, alg := prov.ModelAllReduce(1<<20, 8, comm.TPUv3Links)
	fmt.Printf("algorithm %s, sum across ranks %.0f\n", colls[0].Algorithm(), bufs[0][0])
	fmt.Printf("cost model prices: %s\n", alg)
	// Output:
	// algorithm torus2d(2x4), sum across ranks 28
	// cost model prices: torus2d(2x4)
}
