package comm

// The Collective interface is the package's public seam: every consumer of
// collective communication — gradient reduction in the replica engine,
// batch-norm statistics in nn, metrics, the benchmark harness — programs
// against it, and the concrete algorithm (ring, recursive-doubling tree,
// hierarchical 2-D torus, or an automatic per-call choice) is injected via a
// Provider. This is what lets the paper's §3.4 topology-aware algorithm
// selection — bandwidth-optimal rings and hierarchical torus reductions for
// large gradient payloads, latency-bound trees for small BN statistics —
// become a configuration choice instead of a hardcoded call.

import (
	"fmt"

	"effnetscale/internal/topology"
)

// Collective is one rank's endpoint of a communication world. All methods
// are synchronous SPMD collectives: every rank of the world must enter the
// same call (in the same order) from its own goroutine, or the world
// deadlocks — the lockstep semantics of TPU collectives.
type Collective interface {
	// Rank returns this endpoint's rank in [0, WorldSize).
	Rank() int
	// WorldSize returns the number of ranks.
	WorldSize() int
	// AllReduce sums buf element-wise across all ranks, in place; on return
	// every rank holds the identical total.
	AllReduce(buf []float32)
	// AllReduceF64 is AllReduce over float64 buffers (batch-norm statistics
	// and metrics accumulate in double precision).
	AllReduceF64(buf []float64)
	// AllGather concatenates every rank's local slice into out, ordered by
	// rank. len(out) must equal WorldSize() × len(local).
	AllGather(local, out []float32)
	// ReduceScatter sums buf across ranks and returns the chunk this rank
	// owns of the reduced result (chunk (rank+1) mod n per chunkBounds).
	// buf is left in an unspecified partially-reduced state.
	ReduceScatter(buf []float32) []float32
	// Broadcast copies root's buf to every rank.
	Broadcast(buf []float32, root int)
	// Barrier blocks until every rank has entered it.
	Barrier()
	// Algorithm names the algorithm this endpoint runs, including any
	// fallback in effect (e.g. "tree(ring-fallback,n=6)") — the observable
	// answer to "which collective actually ran?".
	Algorithm() string
}

// --- Ring --------------------------------------------------------------------

// Ring is the bandwidth-optimal ring collective: reduce-scatter followed by
// all-gather, 2(n−1)/n · |buf| bytes per link. The right choice for large
// gradient payloads on a 1-D ring.
type Ring struct {
	p *Peer
}

// Rank implements Collective.
func (r *Ring) Rank() int { return r.p.rank }

// WorldSize implements Collective.
func (r *Ring) WorldSize() int { return r.p.w.n }

// AllReduce implements Collective.
func (r *Ring) AllReduce(buf []float32) { r.p.ringAllReduce(buf) }

// AllReduceF64 implements Collective.
func (r *Ring) AllReduceF64(buf []float64) { r.p.ringAllReduceF64(buf) }

// AllGather implements Collective.
func (r *Ring) AllGather(local, out []float32) { r.p.allGather(local, out) }

// ReduceScatter implements Collective.
func (r *Ring) ReduceScatter(buf []float32) []float32 { return r.p.reduceScatter(buf) }

// Broadcast implements Collective.
func (r *Ring) Broadcast(buf []float32, root int) { r.p.broadcast(buf, root) }

// Barrier implements Collective.
func (r *Ring) Barrier() { r.p.Barrier() }

// Algorithm implements Collective.
func (r *Ring) Algorithm() string { return "ring" }

// --- Tree --------------------------------------------------------------------

// Tree specializes all-reduce to recursive halving/doubling: log2(n) rounds
// each moving the full payload, beating the ring when the payload is small
// and latency dominates (BN statistics, metrics). Non-power-of-two worlds
// fall back to the ring for all-reduce — the fallback is visible in
// Algorithm(), not silent. The embedded Ring supplies
// AllGather/ReduceScatter/Broadcast/Barrier on the same transport.
type Tree struct {
	Ring
}

// AllReduce implements Collective.
func (t *Tree) AllReduce(buf []float32) { t.p.treeAllReduce(buf) }

// AllReduceF64 implements Collective.
func (t *Tree) AllReduceF64(buf []float64) { t.p.treeAllReduceF64(buf) }

// Algorithm implements Collective. On non-power-of-two worlds, where the
// recursive-doubling exchange has no partner for every rank, it reports the
// ring fallback the all-reduce actually runs.
func (t *Tree) Algorithm() string {
	n := t.p.w.n
	if n&(n-1) != 0 {
		return fmt.Sprintf("tree(ring-fallback,n=%d)", n)
	}
	return "tree"
}

// --- Torus2D -----------------------------------------------------------------

// Torus2D is the executable form of the hierarchical 2-D torus all-reduce
// from Ying et al. that Torus2DAllReduceSeconds has modelled analytically all
// along: a reduce-scatter ring along each row (full payload), an all-reduce
// ring along each column on the row-owned 1/cols share, then an all-gather
// ring along each row. Ranks are laid out row-major on the grid. Large
// payloads cross each link only ~2(1/cols + 1/(cols·rows)) times per element
// instead of circling one long ring — the reason pods run it.
//
// AllGather/ReduceScatter/Broadcast/Barrier use a flat ring over all ranks;
// the hierarchical decomposition is an all-reduce algorithm.
type Torus2D struct {
	rank, n int
	grid    topology.Slice
	row     *Peer // ring over this rank's row (size grid.Cols)
	col     *Peer // ring over this rank's column (size grid.Rows)
	flat    *Peer // flat ring over all ranks for non-hierarchical ops
}

// Rank implements Collective.
func (t *Torus2D) Rank() int { return t.rank }

// WorldSize implements Collective.
func (t *Torus2D) WorldSize() int { return t.n }

// Grid returns the rank grid the hierarchy runs on.
func (t *Torus2D) Grid() topology.Slice { return t.grid }

// AllReduce implements Collective with the row-then-column hierarchy.
func (t *Torus2D) AllReduce(buf []float32) {
	rows, cols := t.grid.Rows, t.grid.Cols
	if t.n == 1 {
		return
	}
	if rows == 1 || cols == 1 {
		// Degenerate grid: one ring covers everything.
		t.flat.ringAllReduce(buf)
		return
	}
	// Phase 1: reduce-scatter along the row; this rank ends owning the
	// row-sum of chunk (col+1) mod cols.
	t.row.ringReduceScatter(buf)
	lo, hi := chunkBounds(len(buf), cols, (t.row.rank+1)%cols)
	// Phase 2: all-reduce the owned share along the column. Every rank of a
	// column owns the same chunk index, so the share is fully reduced across
	// the whole world after this phase.
	t.col.ringAllReduce(buf[lo:hi])
	// Phase 3: all-gather along the row to rebuild the full buffer.
	t.row.ringAllGather(buf)
}

// AllReduceF64 implements Collective.
func (t *Torus2D) AllReduceF64(buf []float64) {
	rows, cols := t.grid.Rows, t.grid.Cols
	if t.n == 1 {
		return
	}
	if rows == 1 || cols == 1 {
		t.flat.ringAllReduceF64(buf)
		return
	}
	t.row.ringReduceScatterF64(buf)
	lo, hi := chunkBounds(len(buf), cols, (t.row.rank+1)%cols)
	t.col.ringAllReduceF64(buf[lo:hi])
	t.row.ringAllGatherF64(buf)
}

// AllGather implements Collective.
func (t *Torus2D) AllGather(local, out []float32) { t.flat.allGather(local, out) }

// ReduceScatter implements Collective.
func (t *Torus2D) ReduceScatter(buf []float32) []float32 { return t.flat.reduceScatter(buf) }

// Broadcast implements Collective.
func (t *Torus2D) Broadcast(buf []float32, root int) { t.flat.broadcast(buf, root) }

// Barrier implements Collective.
func (t *Torus2D) Barrier() { t.flat.Barrier() }

// Algorithm implements Collective.
func (t *Torus2D) Algorithm() string {
	return fmt.Sprintf("torus2d(%dx%d)", t.grid.Rows, t.grid.Cols)
}

// --- Auto --------------------------------------------------------------------

// Auto picks the cheapest algorithm per call from the payload size and world
// via the α-β cost model (cost.go) — the package's analytic half steering its
// functional half. Large gradient payloads route to the hierarchical torus,
// small latency-bound payloads (BN statistics, scalar metrics) to the tree.
// The choice is a pure function of (bytes, world, grid), so every rank picks
// the same algorithm and lockstep is preserved.
type Auto struct {
	ring  *Ring
	tree  *Tree
	torus *Torus2D
	lp    LinkParams
}

// Rank implements Collective.
func (a *Auto) Rank() int { return a.ring.Rank() }

// WorldSize implements Collective.
func (a *Auto) WorldSize() int { return a.ring.WorldSize() }

// pick returns the sub-collective the cost model selects for a payload.
func (a *Auto) pick(bytes int) Collective {
	switch name, _ := autoChoose(bytes, a.WorldSize(), a.torus.grid, a.lp); name {
	case "tree":
		return a.tree
	case a.torus.Algorithm():
		return a.torus
	default:
		return a.ring
	}
}

// ChooseFor reports which algorithm an all-reduce of the given payload size
// (in bytes) would run — Auto's per-call decision, made observable.
func (a *Auto) ChooseFor(bytes int) string {
	name, _ := autoChoose(bytes, a.WorldSize(), a.torus.grid, a.lp)
	return name
}

// AllReduce implements Collective.
func (a *Auto) AllReduce(buf []float32) { a.pick(4 * len(buf)).AllReduce(buf) }

// AllReduceF64 implements Collective.
func (a *Auto) AllReduceF64(buf []float64) { a.pick(8 * len(buf)).AllReduceF64(buf) }

// AllGather implements Collective.
func (a *Auto) AllGather(local, out []float32) { a.ring.AllGather(local, out) }

// ReduceScatter implements Collective.
func (a *Auto) ReduceScatter(buf []float32) []float32 { return a.ring.ReduceScatter(buf) }

// Broadcast implements Collective.
func (a *Auto) Broadcast(buf []float32, root int) { a.ring.Broadcast(buf, root) }

// Barrier implements Collective.
func (a *Auto) Barrier() { a.ring.Barrier() }

// Algorithm implements Collective.
func (a *Auto) Algorithm() string {
	return fmt.Sprintf("auto[ring|%s|%s]", a.tree.Algorithm(), a.torus.Algorithm())
}

// autoChoose prices an all-reduce of bytes across n ranks under each
// candidate algorithm and returns the cheapest (name, seconds). The tree is
// only a candidate on power-of-two worlds (elsewhere it would silently run
// the ring anyway); the torus only when the grid is genuinely 2-D. Ties go
// to the ring.
func autoChoose(bytes, n int, grid topology.Slice, lp LinkParams) (string, float64) {
	name, best := "ring", RingAllReduceSeconds(bytes, n, lp)
	if n&(n-1) == 0 {
		if t := TreeAllReduceSeconds(bytes, n, lp); t < best {
			name, best = "tree", t
		}
	}
	if grid.Rows > 1 && grid.Cols > 1 {
		if t := Torus2DAllReduceSeconds(bytes, grid, lp); t < best {
			name, best = fmt.Sprintf("torus2d(%dx%d)", grid.Rows, grid.Cols), t
		}
	}
	return name, best
}

// --- Provider ----------------------------------------------------------------

// A Provider names a collective algorithm and wires it for any world size.
// It carries both halves of the package: Connect builds the executable
// per-rank endpoints, ModelAllReduce prices the identical algorithm under
// the α-β cost model — so the algorithm the simulator charges for and the
// algorithm the mini-scale training actually runs can no longer drift apart.
//
// The zero Provider is invalid (IsZero reports it); consumers substitute
// their own default.
type Provider struct {
	name    string
	slice   topology.Slice
	connect func(n int, slice topology.Slice) ([]Collective, error)
	model   func(bytes, n int, slice topology.Slice, lp LinkParams) (float64, string)
}

// IsZero reports whether p is the zero Provider (no algorithm selected).
func (p Provider) IsZero() bool { return p.connect == nil }

// Name returns the provider's algorithm family name.
func (p Provider) Name() string { return p.name }

// Connect builds one communication world of n ranks and returns the per-rank
// endpoints, index = rank.
func (p Provider) Connect(n int) ([]Collective, error) {
	if p.IsZero() {
		return nil, fmt.Errorf("comm: zero Provider (use RingProvider, TreeProvider, Torus2DProvider or AutoProvider)")
	}
	if n < 1 {
		return nil, fmt.Errorf("comm: world size %d must be >= 1", n)
	}
	return p.connect(n, p.slice)
}

// ModelAllReduce prices an all-reduce of the payload across n ranks under
// the α-β cost model — the analytic twin of the algorithm Connect wires.
// It returns the modelled seconds and the concrete algorithm charged (Auto
// resolves its per-call choice). Like Connect, it refuses the zero Provider
// (panic — pricing nothing is a programming error, not a runtime state).
func (p Provider) ModelAllReduce(bytes, n int, lp LinkParams) (float64, string) {
	if p.IsZero() {
		panic("comm: ModelAllReduce on zero Provider (use RingProvider, TreeProvider, Torus2DProvider or AutoProvider)")
	}
	return p.model(bytes, n, p.slice, lp)
}

// ModelAllReduceSeconds is ModelAllReduce without the algorithm name.
func (p Provider) ModelAllReduceSeconds(bytes, n int, lp LinkParams) float64 {
	s, _ := p.ModelAllReduce(bytes, n, lp)
	return s
}

// RingProvider builds ring collectives.
func RingProvider() Provider {
	return Provider{
		name: "ring",
		connect: func(n int, _ topology.Slice) ([]Collective, error) {
			w := NewWorld(n)
			out := make([]Collective, n)
			for r := 0; r < n; r++ {
				out[r] = &Ring{p: w.Peer(r)}
			}
			return out, nil
		},
		model: func(bytes, n int, _ topology.Slice, lp LinkParams) (float64, string) {
			return RingAllReduceSeconds(bytes, n, lp), "ring"
		},
	}
}

// TreeProvider builds recursive-doubling tree collectives (ring fallback on
// non-power-of-two worlds, reported by Algorithm()).
func TreeProvider() Provider {
	return Provider{
		name: "tree",
		connect: func(n int, _ topology.Slice) ([]Collective, error) {
			w := NewWorld(n)
			out := make([]Collective, n)
			for r := 0; r < n; r++ {
				out[r] = &Tree{Ring{p: w.Peer(r)}}
			}
			return out, nil
		},
		model: func(bytes, n int, _ topology.Slice, lp LinkParams) (float64, string) {
			if n&(n-1) != 0 {
				return RingAllReduceSeconds(bytes, n, lp), fmt.Sprintf("tree(ring-fallback,n=%d)", n)
			}
			return TreeAllReduceSeconds(bytes, n, lp), "tree"
		},
	}
}

// Torus2DProvider builds hierarchical 2-D torus collectives on the given
// slice. Worlds whose size matches the slice (Rows×Cols ranks, or its
// Cores() under the topology package's row-major core-grid layout) use its
// geometry; any other world size — BN groups, odd test worlds — gets a
// near-square factorization so the provider works everywhere.
func Torus2DProvider(slice topology.Slice) Provider {
	return Provider{
		name:  "torus2d",
		slice: slice,
		connect: func(n int, slice topology.Slice) ([]Collective, error) {
			return connectTorus2D(n, gridFor(n, slice))
		},
		model: func(bytes, n int, slice topology.Slice, lp LinkParams) (float64, string) {
			grid := gridFor(n, slice)
			return Torus2DAllReduceSeconds(bytes, grid, lp), fmt.Sprintf("torus2d(%dx%d)", grid.Rows, grid.Cols)
		},
	}
}

// AutoProvider builds collectives that pick ring, tree or 2-D torus per call
// from the payload size via the α-β cost model, on the given slice's
// geometry (same slice resolution rules as Torus2DProvider).
func AutoProvider(slice topology.Slice) Provider {
	return Provider{
		name:  "auto",
		slice: slice,
		connect: func(n int, slice topology.Slice) ([]Collective, error) {
			grid := gridFor(n, slice)
			rings, err := RingProvider().Connect(n)
			if err != nil {
				return nil, err
			}
			trees, err := TreeProvider().Connect(n)
			if err != nil {
				return nil, err
			}
			tori, err := connectTorus2D(n, grid)
			if err != nil {
				return nil, err
			}
			out := make([]Collective, n)
			for r := 0; r < n; r++ {
				out[r] = &Auto{
					ring:  rings[r].(*Ring),
					tree:  trees[r].(*Tree),
					torus: tori[r].(*Torus2D),
					lp:    TPUv3Links,
				}
			}
			return out, nil
		},
		model: func(bytes, n int, slice topology.Slice, lp LinkParams) (float64, string) {
			name, s := autoChoose(bytes, n, gridFor(n, slice), lp)
			return s, name
		},
	}
}

// ProviderByName resolves a command-line algorithm name. The slice
// parameterizes the torus-based providers and is ignored by ring and tree.
func ProviderByName(name string, slice topology.Slice) (Provider, error) {
	switch name {
	case "ring":
		return RingProvider(), nil
	case "tree":
		return TreeProvider(), nil
	case "torus2d":
		return Torus2DProvider(slice), nil
	case "auto":
		return AutoProvider(slice), nil
	default:
		return Provider{}, fmt.Errorf("comm: unknown collective %q (want ring, tree, torus2d, auto)", name)
	}
}

// gridFor resolves the rank grid a world of n ranks runs on. A slice that
// matches n exactly — Rows×Cols ranks (one rank per chip, the pod
// simulator's view) or Cores() ranks (one rank per core, laid out row-major
// as in topology.BNGroups) — keeps its geometry; anything else gets the most
// square factorization of n.
func gridFor(n int, slice topology.Slice) topology.Slice {
	if slice.Rows >= 1 && slice.Cols >= 1 {
		if slice.Rows*slice.Cols == n {
			return slice
		}
		if slice.Cores() == n {
			return topology.Slice{Rows: slice.Rows, Cols: slice.Cols * topology.CoresPerChip}
		}
	}
	rows := 1
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return topology.Slice{Rows: rows, Cols: n / rows}
}

// connectTorus2D wires the row, column and flat worlds of a rows×cols grid.
func connectTorus2D(n int, grid topology.Slice) ([]Collective, error) {
	rows, cols := grid.Rows, grid.Cols
	if rows*cols != n {
		return nil, fmt.Errorf("comm: torus grid %dx%d does not cover world %d", rows, cols, n)
	}
	rowWorlds := make([]*World, rows)
	for r := range rowWorlds {
		rowWorlds[r] = NewWorld(cols)
	}
	colWorlds := make([]*World, cols)
	for c := range colWorlds {
		colWorlds[c] = NewWorld(rows)
	}
	flat := NewWorld(n)
	out := make([]Collective, n)
	for rank := 0; rank < n; rank++ {
		r, c := rank/cols, rank%cols
		out[rank] = &Torus2D{
			rank: rank,
			n:    n,
			grid: grid,
			row:  rowWorlds[r].Peer(c),
			col:  colWorlds[c].Peer(r),
			flat: flat.Peer(rank),
		}
	}
	return out, nil
}
