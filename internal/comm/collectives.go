package comm

// Additional transport-level collectives beyond the ring all-reduce:
// broadcast, all-gather, reduce-scatter and a recursive-doubling tree
// all-reduce. These are the building blocks the Collective implementations
// (collective.go) compose; the ring variants are bandwidth-optimal for large
// payloads, the tree variant beats them for small latency-bound payloads.

// broadcast copies root's buf to every rank (ring pipeline). All ranks must
// pass buffers of the same length; non-root contents are overwritten.
func (p *Peer) broadcast(buf []float32, root int) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	prev := (rank - 1 + n) % n
	send := p.w.f32[rank]
	recv := p.w.f32[prev]
	// Positions along the ring starting at root.
	pos := ((rank-root)%n + n) % n
	// Each rank (except the last) forwards once; each rank (except root)
	// receives once. Receive strictly before forwarding.
	if pos != 0 {
		in := <-recv
		if len(in) != len(buf) {
			panic("comm: broadcast buffer length mismatch across ranks")
		}
		copy(buf, in)
		p.release32(prev, in)
	}
	if pos != n-1 {
		out := p.stage32(len(buf))
		copy(out, buf)
		send <- out
	}
	p.Barrier()
}

// allGather concatenates every rank's local slice into out, ordered by rank.
// len(out) must equal WorldSize() × len(local).
func (p *Peer) allGather(local, out []float32) {
	n := p.w.n
	l := len(local)
	if len(out) != n*l {
		panic("comm: all-gather output length must be world × local length")
	}
	rank := p.rank
	copy(out[rank*l:(rank+1)*l], local)
	if n == 1 {
		return
	}
	prev := (rank - 1 + n) % n
	send := p.w.f32[rank]
	recv := p.w.f32[prev]
	// Ring all-gather: in step s, forward the chunk received in step s−1.
	cur := rank
	for s := 0; s < n-1; s++ {
		outChunk := p.stage32(l)
		copy(outChunk, out[cur*l:(cur+1)*l])
		send <- outChunk
		in := <-recv
		cur = ((cur-1)%n + n) % n
		if len(in) != l {
			panic("comm: all-gather buffer length mismatch across ranks")
		}
		copy(out[cur*l:(cur+1)*l], in)
		p.release32(prev, in)
	}
}

// reduceScatter sums buf across ranks and leaves rank r holding only chunk r
// of the reduced result (returned as a fresh slice; chunk boundaries follow
// chunkBounds of index (r+1) mod n). buf is left in an unspecified
// partially-reduced state.
func (p *Peer) reduceScatter(buf []float32) []float32 {
	n := p.w.n
	if n == 1 {
		out := make([]float32, len(buf))
		copy(out, buf)
		return out
	}
	p.ringReduceScatter(buf)
	// After n−1 steps, rank owns the fully reduced chunk (rank+1 mod n).
	lo, hi := chunkBounds(len(buf), n, (p.rank+1)%n)
	out := make([]float32, hi-lo)
	copy(out, buf[lo:hi])
	return out
}

// treeAllReduce sums buf across all ranks using recursive halving/doubling:
// log2(n) rounds, each exchanging the full payload with a partner at
// distance 2^round. It moves O(log n) full payloads per rank, beating the
// ring for small latency-bound payloads. The implementation stages through
// per-rank channels with a barrier per round to keep the SPMD lockstep
// property. Non-power-of-two worlds fall back to the ring (reported by
// Tree.Algorithm as a ring fallback); returns true when the tree actually
// ran.
func (p *Peer) treeAllReduce(buf []float32) bool {
	n := p.w.n
	if n == 1 {
		return true
	}
	if n&(n-1) != 0 {
		p.ringAllReduce(buf)
		return false
	}
	rank := p.rank
	for dist := 1; dist < n; dist <<= 1 {
		partner := rank ^ dist
		out := p.stage32(len(buf))
		copy(out, buf)
		// Stage the payload for the partner, then collect the partner's.
		// Addressing: channel f32[rank] carries rank's payload this round;
		// rendezvous via barrier so rounds never overlap.
		p.w.f32[rank] <- out
		p.Barrier()
		in := <-p.w.f32[partner]
		if len(in) != len(buf) {
			panic("comm: tree all-reduce buffer length mismatch across ranks")
		}
		for i := range buf {
			buf[i] += in[i]
		}
		p.release32(partner, in)
		p.Barrier()
	}
	return true
}

// treeAllReduceF64 is treeAllReduce over float64 buffers.
func (p *Peer) treeAllReduceF64(buf []float64) bool {
	n := p.w.n
	if n == 1 {
		return true
	}
	if n&(n-1) != 0 {
		p.ringAllReduceF64(buf)
		return false
	}
	rank := p.rank
	for dist := 1; dist < n; dist <<= 1 {
		partner := rank ^ dist
		out := p.stage64(len(buf))
		copy(out, buf)
		p.w.f64[rank] <- out
		p.Barrier()
		in := <-p.w.f64[partner]
		if len(in) != len(buf) {
			panic("comm: tree all-reduce buffer length mismatch across ranks")
		}
		for i := range buf {
			buf[i] += in[i]
		}
		p.release64(partner, in)
		p.Barrier()
	}
	return true
}
