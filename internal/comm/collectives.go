package comm

// Additional collectives beyond the ring all-reduce: broadcast, all-gather,
// reduce-scatter and a recursive-doubling tree all-reduce. The replica
// engine uses RingAllReduce for gradients (bandwidth-optimal for large
// payloads); the tree variant is better for small latency-bound payloads
// and is exercised by the benchmark harness for comparison.

// Broadcast copies root's buf to every rank (ring pipeline). All ranks must
// pass buffers of the same length; non-root contents are overwritten.
func (p *Peer) Broadcast(buf []float32, root int) {
	n := p.w.n
	if n == 1 {
		return
	}
	rank := p.rank
	send := p.w.f32[rank]
	recv := p.w.f32[(rank-1+n)%n]
	// Positions along the ring starting at root.
	pos := ((rank-root)%n + n) % n
	// Each rank (except the last) forwards once; each rank (except root)
	// receives once. Receive strictly before forwarding.
	if pos != 0 {
		in := <-recv
		if len(in) != len(buf) {
			panic("comm: Broadcast buffer length mismatch across ranks")
		}
		copy(buf, in)
	}
	if pos != n-1 {
		out := make([]float32, len(buf))
		copy(out, buf)
		send <- out
	}
	p.Barrier()
}

// AllGather concatenates every rank's local slice into out, ordered by rank.
// len(out) must equal WorldSize() × len(local).
func (p *Peer) AllGather(local, out []float32) {
	n := p.w.n
	l := len(local)
	if len(out) != n*l {
		panic("comm: AllGather output length must be world × local length")
	}
	rank := p.rank
	copy(out[rank*l:(rank+1)*l], local)
	if n == 1 {
		return
	}
	send := p.w.f32[rank]
	recv := p.w.f32[(rank-1+n)%n]
	// Ring all-gather: in step s, forward the chunk received in step s−1.
	cur := rank
	for s := 0; s < n-1; s++ {
		outChunk := make([]float32, l)
		copy(outChunk, out[cur*l:(cur+1)*l])
		send <- outChunk
		in := <-recv
		cur = ((cur-1)%n + n) % n
		if len(in) != l {
			panic("comm: AllGather buffer length mismatch across ranks")
		}
		copy(out[cur*l:(cur+1)*l], in)
	}
}

// ReduceScatter sums buf across ranks and leaves rank r holding only chunk r
// of the reduced result (returned as a fresh slice; chunk boundaries follow
// chunkBounds). buf is left in an unspecified partially-reduced state.
func (p *Peer) ReduceScatter(buf []float32) []float32 {
	n := p.w.n
	rank := p.rank
	if n == 1 {
		out := make([]float32, len(buf))
		copy(out, buf)
		return out
	}
	send := p.w.f32[rank]
	recv := p.w.f32[(rank-1+n)%n]
	for s := 0; s < n-1; s++ {
		sendIdx := ((rank-s)%n + n) % n
		lo, hi := chunkBounds(len(buf), n, sendIdx)
		out := make([]float32, hi-lo)
		copy(out, buf[lo:hi])
		send <- out
		in := <-recv
		rlo, rhi := chunkBounds(len(buf), n, ((rank-s-1)%n+n)%n)
		if len(in) != rhi-rlo {
			panic("comm: ReduceScatter buffer length mismatch across ranks")
		}
		for i := range in {
			buf[rlo+i] += in[i]
		}
	}
	// After n−1 steps, rank owns the fully reduced chunk (rank+1 mod n).
	lo, hi := chunkBounds(len(buf), n, (rank+1)%n)
	out := make([]float32, hi-lo)
	copy(out, buf[lo:hi])
	return out
}

// TreeAllReduce sums buf across all ranks using recursive halving/doubling
// on the barrier-synchronized shared staging area. It moves O(log n) full
// payloads per rank, beating the ring for small latency-bound payloads. The
// implementation stages through per-round dedicated channels to keep the
// SPMD lockstep property.
func (p *Peer) TreeAllReduce(buf []float32) {
	n := p.w.n
	if n == 1 {
		return
	}
	// For non-power-of-two worlds, fall back to the ring (correctness
	// first; the analytic model covers tree costs separately).
	if n&(n-1) != 0 {
		p.RingAllReduce(buf)
		return
	}
	rank := p.rank
	for dist := 1; dist < n; dist <<= 1 {
		partner := rank ^ dist
		out := make([]float32, len(buf))
		copy(out, buf)
		// Stage the payload for the partner, then collect the partner's.
		// Addressing: channel f32[rank] carries rank's payload this round;
		// rendezvous via barrier so rounds never overlap.
		p.w.f32[rank] <- out
		p.Barrier()
		in := <-p.w.f32[partner]
		if len(in) != len(buf) {
			panic("comm: TreeAllReduce buffer length mismatch across ranks")
		}
		for i := range buf {
			buf[i] += in[i]
		}
		p.Barrier()
	}
}
