// Package trainloop is the thin step/evaluate engine under the public
// train.Session API. It advances a replica.Engine through a fixed number of
// epochs, runs a pluggable evaluation strategy on a configurable cadence,
// and records the accuracy trajectory — in particular the peak top-1
// accuracy and the wall-clock time at which it is reached, exactly the
// quantity plotted in the paper's Figure 1.
//
// Policy — progress logging, checkpointing, early stopping, metrics
// emission — lives above this package: callers observe the loop through
// Hooks and interrupt it through Stop.
//
// Seams: Evaluator is the evaluation-strategy interface — the paper's two
// §3.3 loop structures (the sharded distributed train+eval loop versus
// TPUEstimator's serialized evaluation worker) are Evaluator
// implementations provided by the train package. Hooks (OnStep, OnEval,
// OnStepEnd) observe the loop; OnStepEnd fires at the quiescent step
// boundary where the snapshot subsystem captures state. EvalPoint carries
// each evaluation's own wall cost and serial-sample count, which the
// telemetry subsystem aggregates.
//
// Paper: §3.3 (loop structure and the serialized-evaluation bottleneck) and
// Figure 1 (time to peak accuracy).
package trainloop
