package trainloop

import (
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
)

// distEval is the minimal distributed evaluator — the engine's own sharded
// evaluation. The full strategy implementations live in the train package.
type distEval struct{}

func (distEval) Name() string { return "distributed" }
func (distEval) Evaluate(e *replica.Engine, per int) (float64, int, error) {
	acc, err := e.Evaluate(per)
	return acc, per, err
}

func testEngine(t *testing.T, world, perBatch, bnGroup int, opt string, sched schedule.Schedule) *replica.Engine {
	t.Helper()
	ds := data.New(data.MiniConfig(4, 256, 16))
	e, err := replica.New(replica.Config{
		World:               world,
		PerReplicaBatch:     perBatch,
		Model:               "pico",
		Dataset:             ds,
		OptimizerName:       opt,
		Schedule:            sched,
		BNGroupSize:         bnGroup,
		Precision:           bf16.FP32Policy,
		Seed:                3,
		DropoutOverride:     0,
		DropConnectOverride: 0,
		NoAugment:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDistributedLoopTracksPeak(t *testing.T) {
	e := testEngine(t, 2, 8, 2, "sgd", schedule.Constant(0.1))
	res, err := Run(Config{
		Engine:                e,
		Epochs:                3,
		EvalSamplesPerReplica: 16,
		Evaluator:             distEval{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no evaluation points recorded")
	}
	if res.PeakAccuracy <= 0.25 {
		t.Fatalf("peak accuracy %.3f not above chance", res.PeakAccuracy)
	}
	if res.TimeToPeak <= 0 || res.TimeToPeak > res.TotalTime {
		t.Fatalf("TimeToPeak %v outside (0, %v]", res.TimeToPeak, res.TotalTime)
	}
	if res.StepsRun != 3*e.StepsPerEpoch() {
		t.Fatalf("StepsRun = %d, want %d", res.StepsRun, 3*e.StepsPerEpoch())
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{Evaluator: distEval{}, Epochs: 1}); err == nil {
		t.Fatal("nil engine must error")
	}
	e := testEngine(t, 1, 4, 1, "sgd", schedule.Constant(0.1))
	if _, err := Run(Config{Engine: e, Epochs: 1}); err == nil {
		t.Fatal("nil evaluator must error")
	}
	if _, err := Run(Config{Engine: e, Evaluator: distEval{}, Epochs: 0}); err == nil {
		t.Fatal("zero epochs must error")
	}
}

func TestStopEndsRunEarly(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	steps := 0
	res, err := Run(Config{
		Engine:                e,
		Epochs:                50,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
		Hooks:                 Hooks{OnStep: func(int, replica.StepResult) { steps++ }},
		Stop:                  func() bool { return steps >= 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("Stopped not set")
	}
	if res.StepsRun != 3 {
		t.Fatalf("ran %d steps, want 3", res.StepsRun)
	}
}

func TestStartStepResumesNumberingAndCadence(t *testing.T) {
	// A loop resumed at StartStep must keep the original global step
	// numbers and the original evaluation cadence — the resumed tail's
	// EvalPoints line up with the uninterrupted run's.
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	spe := e.StepsPerEpoch()
	start := spe/2 + 1 // mid-epoch
	var steps []int
	res, err := Run(Config{
		Engine:                e,
		Epochs:                2,
		EvalEverySteps:        3,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
		StartStep:             start,
		InitialBest:           0.75,
		Hooks:                 Hooks{OnStep: func(step int, _ replica.StepResult) { steps = append(steps, step) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun != 2*spe-start {
		t.Fatalf("StepsRun = %d, want %d", res.StepsRun, 2*spe-start)
	}
	if steps[0] != start+1 || steps[len(steps)-1] != 2*spe {
		t.Fatalf("global steps ran %d..%d, want %d..%d", steps[0], steps[len(steps)-1], start+1, 2*spe)
	}
	for _, pt := range res.History {
		if pt.Step%3 != 0 && pt.Step != 2*spe {
			t.Fatalf("eval at step %d breaks the global cadence", pt.Step)
		}
	}
	if res.PeakAccuracy < 0.75 {
		t.Fatalf("PeakAccuracy %v lost the seeded initial best", res.PeakAccuracy)
	}
	// Starting at or past the end runs nothing, cleanly.
	res, err = Run(Config{Engine: e, Epochs: 1, Evaluator: distEval{}, StartStep: spe, InitialBest: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun != 0 || res.PeakAccuracy != 0.5 {
		t.Fatalf("past-the-end resume ran %d steps (peak %v), want 0 (0.5)", res.StepsRun, res.PeakAccuracy)
	}
	if _, err := Run(Config{Engine: e, Epochs: 1, Evaluator: distEval{}, StartStep: -1}); err == nil {
		t.Fatal("negative StartStep must error")
	}
}

func TestOnStepEndFiresAfterEval(t *testing.T) {
	e := testEngine(t, 1, 8, 1, "sgd", schedule.Constant(0.05))
	var order []string
	_, err := Run(Config{
		Engine:                e,
		Epochs:                1,
		EvalEverySteps:        2,
		EvalSamplesPerReplica: 4,
		Evaluator:             distEval{},
		Hooks: Hooks{
			OnStep:    func(step int, _ replica.StepResult) { order = append(order, "step") },
			OnEval:    func(EvalPoint) { order = append(order, "eval") },
			OnStepEnd: func(step int) { order = append(order, "end") },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range order {
		if ev == "eval" {
			if i == 0 || order[i-1] != "step" || i+1 >= len(order) || order[i+1] != "end" {
				t.Fatalf("eval not bracketed by step/end: %v", order)
			}
		}
	}
	if order[len(order)-1] != "end" {
		t.Fatalf("loop did not end on OnStepEnd: %v", order)
	}
}

func TestEvalEveryStepsCadence(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	res, err := Run(Config{
		Engine:                e,
		Epochs:                1,
		EvalEverySteps:        4,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := e.StepsPerEpoch()
	want := steps / 4
	if steps%4 != 0 {
		want++ // final-step eval
	}
	if len(res.History) != want {
		t.Fatalf("history has %d points, want %d", len(res.History), want)
	}
}

func TestHooksObserveLoop(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	var steps, evals int
	lastEvalStep := 0
	res, err := Run(Config{
		Engine:                e,
		Epochs:                1,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
		Hooks: Hooks{
			OnStep: func(step int, sr replica.StepResult) {
				steps++
				if step != steps {
					t.Fatalf("OnStep got step %d, want %d", step, steps)
				}
			},
			OnEval: func(pt EvalPoint) {
				evals++
				lastEvalStep = pt.Step
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.StepsRun {
		t.Fatalf("OnStep fired %d times, want %d", steps, res.StepsRun)
	}
	if evals != len(res.History) {
		t.Fatalf("OnEval fired %d times, want %d", evals, len(res.History))
	}
	if lastEvalStep != res.StepsRun {
		t.Fatalf("final eval at step %d, want %d", lastEvalStep, res.StepsRun)
	}
}

func TestEvalSerialSamplesAccumulate(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	res, err := Run(Config{
		Engine:                e,
		Epochs:                2,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * len(res.History); res.EvalSerialSamples != want {
		t.Fatalf("EvalSerialSamples = %d, want %d", res.EvalSerialSamples, want)
	}
}

func TestLARSLoopRuns(t *testing.T) {
	// Smoke-test the paper's actual large-batch configuration end to end:
	// LARS + warmup + polynomial decay on the mini engine.
	e := testEngine(t, 2, 8, 2, "lars", schedule.LARSPreset(0.236, 32, 1, 5))
	res, err := Run(Config{Engine: e, Epochs: 2, EvalSamplesPerReplica: 8, Evaluator: distEval{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun == 0 || len(res.History) == 0 {
		t.Fatal("LARS loop did not run")
	}
}
