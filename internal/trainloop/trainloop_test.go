package trainloop

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/checkpoint"
	"effnetscale/internal/data"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
)

func testEngine(t *testing.T, world, perBatch, bnGroup int, opt string, sched schedule.Schedule) *replica.Engine {
	t.Helper()
	ds := data.New(data.MiniConfig(4, 256, 16))
	e, err := replica.New(replica.Config{
		World:               world,
		PerReplicaBatch:     perBatch,
		Model:               "pico",
		Dataset:             ds,
		OptimizerName:       opt,
		Schedule:            sched,
		BNGroupSize:         bnGroup,
		Precision:           bf16.FP32Policy,
		Seed:                3,
		DropoutOverride:     0,
		DropConnectOverride: 0,
		NoAugment:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDistributedLoopTracksPeak(t *testing.T) {
	e := testEngine(t, 2, 8, 2, "sgd", schedule.Constant(0.1))
	var lines []string
	res := Run(Config{
		Engine:                e,
		Epochs:                3,
		EvalSamplesPerReplica: 16,
		Mode:                  Distributed,
		Progress:              func(s string) { lines = append(lines, s) },
	})
	if len(res.History) == 0 {
		t.Fatal("no evaluation points recorded")
	}
	if res.PeakAccuracy <= 0.25 {
		t.Fatalf("peak accuracy %.3f not above chance", res.PeakAccuracy)
	}
	if res.TimeToPeak <= 0 || res.TimeToPeak > res.TotalTime {
		t.Fatalf("TimeToPeak %v outside (0, %v]", res.TimeToPeak, res.TotalTime)
	}
	if res.StepsRun != 3*e.StepsPerEpoch() {
		t.Fatalf("StepsRun = %d, want %d", res.StepsRun, 3*e.StepsPerEpoch())
	}
	if len(lines) != len(res.History) {
		t.Fatalf("progress lines %d != history %d", len(lines), len(res.History))
	}
	if !strings.Contains(lines[0], "top-1") {
		t.Fatalf("progress line malformed: %q", lines[0])
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	e := testEngine(t, 2, 8, 2, "sgd", schedule.Constant(0.1))
	res := Run(Config{
		Engine:                e,
		Epochs:                50,
		EvalSamplesPerReplica: 16,
		TargetAccuracy:        0.5,
		Mode:                  Distributed,
	})
	if !res.ReachedGoal {
		t.Fatalf("never reached 0.5 accuracy (peak %.3f after %d steps)", res.PeakAccuracy, res.StepsRun)
	}
	if res.StepsRun >= 50*e.StepsPerEpoch() {
		t.Fatal("did not stop early despite reaching target")
	}
}

func TestEstimatorModeSerializesEvaluation(t *testing.T) {
	// The §3.3 bottleneck, measured deterministically: with W replicas the
	// Estimator loop pushes W× more eval samples through a single worker
	// than the distributed loop pushes through each worker.
	world := 4
	evalPer := 8
	epochs := 2

	eDist := testEngine(t, world, 4, 1, "sgd", schedule.Constant(0.05))
	dist := Run(Config{Engine: eDist, Epochs: epochs, EvalSamplesPerReplica: evalPer, Mode: Distributed})

	eEst := testEngine(t, world, 4, 1, "sgd", schedule.Constant(0.05))
	est := Run(Config{Engine: eEst, Epochs: epochs, EvalSamplesPerReplica: evalPer, Mode: Estimator})

	if est.EvalSerialSamples != world*dist.EvalSerialSamples {
		t.Fatalf("estimator serial samples = %d, want %d (= %d × distributed %d)",
			est.EvalSerialSamples, world*dist.EvalSerialSamples, world, dist.EvalSerialSamples)
	}
	// Both loops measure accuracy on the same distribution; results must be
	// in-range and training must have happened in both.
	if dist.PeakAccuracy <= 0 || est.PeakAccuracy <= 0 {
		t.Fatalf("degenerate accuracies: dist %.3f est %.3f", dist.PeakAccuracy, est.PeakAccuracy)
	}
}

func TestEvalEveryStepsCadence(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	res := Run(Config{
		Engine:                e,
		Epochs:                1,
		EvalEverySteps:        4,
		EvalSamplesPerReplica: 8,
		Mode:                  Distributed,
	})
	steps := e.StepsPerEpoch()
	want := steps / 4
	if steps%4 != 0 {
		want++ // final-step eval
	}
	if len(res.History) != want {
		t.Fatalf("history has %d points, want %d", len(res.History), want)
	}
}

func TestBestCheckpointSaving(t *testing.T) {
	e := testEngine(t, 2, 8, 2, "sgd", schedule.Constant(0.1))
	path := filepath.Join(t.TempDir(), "best.ckpt")
	res := Run(Config{
		Engine:                e,
		Epochs:                2,
		EvalSamplesPerReplica: 16,
		Mode:                  Distributed,
		CheckpointPath:        path,
	})
	if res.CheckpointsSaved == 0 {
		t.Fatal("no best-so-far checkpoint written")
	}
	// The checkpoint must load back into a fresh model of the same family.
	cfg, _ := efficientnet.ConfigByName("pico", 4)
	cfg.Resolution = 16
	fresh := efficientnet.New(rand.New(rand.NewSource(123)), cfg)
	if err := checkpoint.LoadFile(path, fresh); err != nil {
		t.Fatalf("best checkpoint unloadable: %v", err)
	}
}

func TestLoopModeString(t *testing.T) {
	if Distributed.String() != "distributed" || Estimator.String() != "estimator" {
		t.Fatal("LoopMode.String wrong")
	}
}

func TestLARSLoopRuns(t *testing.T) {
	// Smoke-test the paper's actual large-batch configuration end to end:
	// LARS + warmup + polynomial decay on the mini engine.
	e := testEngine(t, 2, 8, 2, "lars", schedule.LARSPreset(0.236, 32, 1, 5))
	res := Run(Config{Engine: e, Epochs: 2, EvalSamplesPerReplica: 8, Mode: Distributed})
	if res.StepsRun == 0 || len(res.History) == 0 {
		t.Fatal("LARS loop did not run")
	}
}
