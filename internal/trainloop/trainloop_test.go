package trainloop

import (
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
)

// distEval is the minimal distributed evaluator — the engine's own sharded
// evaluation. The full strategy implementations live in the train package.
type distEval struct{}

func (distEval) Name() string { return "distributed" }
func (distEval) Evaluate(e *replica.Engine, per int) (float64, int) {
	return e.Evaluate(per), per
}

func testEngine(t *testing.T, world, perBatch, bnGroup int, opt string, sched schedule.Schedule) *replica.Engine {
	t.Helper()
	ds := data.New(data.MiniConfig(4, 256, 16))
	e, err := replica.New(replica.Config{
		World:               world,
		PerReplicaBatch:     perBatch,
		Model:               "pico",
		Dataset:             ds,
		OptimizerName:       opt,
		Schedule:            sched,
		BNGroupSize:         bnGroup,
		Precision:           bf16.FP32Policy,
		Seed:                3,
		DropoutOverride:     0,
		DropConnectOverride: 0,
		NoAugment:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDistributedLoopTracksPeak(t *testing.T) {
	e := testEngine(t, 2, 8, 2, "sgd", schedule.Constant(0.1))
	res, err := Run(Config{
		Engine:                e,
		Epochs:                3,
		EvalSamplesPerReplica: 16,
		Evaluator:             distEval{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no evaluation points recorded")
	}
	if res.PeakAccuracy <= 0.25 {
		t.Fatalf("peak accuracy %.3f not above chance", res.PeakAccuracy)
	}
	if res.TimeToPeak <= 0 || res.TimeToPeak > res.TotalTime {
		t.Fatalf("TimeToPeak %v outside (0, %v]", res.TimeToPeak, res.TotalTime)
	}
	if res.StepsRun != 3*e.StepsPerEpoch() {
		t.Fatalf("StepsRun = %d, want %d", res.StepsRun, 3*e.StepsPerEpoch())
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{Evaluator: distEval{}, Epochs: 1}); err == nil {
		t.Fatal("nil engine must error")
	}
	e := testEngine(t, 1, 4, 1, "sgd", schedule.Constant(0.1))
	if _, err := Run(Config{Engine: e, Epochs: 1}); err == nil {
		t.Fatal("nil evaluator must error")
	}
	if _, err := Run(Config{Engine: e, Evaluator: distEval{}, Epochs: 0}); err == nil {
		t.Fatal("zero epochs must error")
	}
}

func TestStopEndsRunEarly(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	steps := 0
	res, err := Run(Config{
		Engine:                e,
		Epochs:                50,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
		Hooks:                 Hooks{OnStep: func(int, replica.StepResult) { steps++ }},
		Stop:                  func() bool { return steps >= 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("Stopped not set")
	}
	if res.StepsRun != 3 {
		t.Fatalf("ran %d steps, want 3", res.StepsRun)
	}
}

func TestEvalEveryStepsCadence(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	res, err := Run(Config{
		Engine:                e,
		Epochs:                1,
		EvalEverySteps:        4,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := e.StepsPerEpoch()
	want := steps / 4
	if steps%4 != 0 {
		want++ // final-step eval
	}
	if len(res.History) != want {
		t.Fatalf("history has %d points, want %d", len(res.History), want)
	}
}

func TestHooksObserveLoop(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	var steps, evals int
	lastEvalStep := 0
	res, err := Run(Config{
		Engine:                e,
		Epochs:                1,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
		Hooks: Hooks{
			OnStep: func(step int, sr replica.StepResult) {
				steps++
				if step != steps {
					t.Fatalf("OnStep got step %d, want %d", step, steps)
				}
			},
			OnEval: func(pt EvalPoint) {
				evals++
				lastEvalStep = pt.Step
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.StepsRun {
		t.Fatalf("OnStep fired %d times, want %d", steps, res.StepsRun)
	}
	if evals != len(res.History) {
		t.Fatalf("OnEval fired %d times, want %d", evals, len(res.History))
	}
	if lastEvalStep != res.StepsRun {
		t.Fatalf("final eval at step %d, want %d", lastEvalStep, res.StepsRun)
	}
}

func TestEvalSerialSamplesAccumulate(t *testing.T) {
	e := testEngine(t, 2, 8, 1, "sgd", schedule.Constant(0.05))
	res, err := Run(Config{
		Engine:                e,
		Epochs:                2,
		EvalSamplesPerReplica: 8,
		Evaluator:             distEval{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * len(res.History); res.EvalSerialSamples != want {
		t.Fatalf("EvalSerialSamples = %d, want %d", res.EvalSerialSamples, want)
	}
}

func TestLARSLoopRuns(t *testing.T) {
	// Smoke-test the paper's actual large-batch configuration end to end:
	// LARS + warmup + polynomial decay on the mini engine.
	e := testEngine(t, 2, 8, 2, "lars", schedule.LARSPreset(0.236, 32, 1, 5))
	res, err := Run(Config{Engine: e, Epochs: 2, EvalSamplesPerReplica: 8, Evaluator: distEval{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun == 0 || len(res.History) == 0 {
		t.Fatal("LARS loop did not run")
	}
}
