// Package trainloop implements the two training-and-evaluation loop
// structures the paper contrasts in §3.3:
//
//   - EstimatorLoop — the TPUEstimator baseline, where evaluation runs
//     serially on a single dedicated worker while the training replicas
//     idle. End-to-end time then depends heavily on evaluation time.
//   - DistributedLoop — the Kumar et al. loop the paper adopts, where both
//     training and evaluation steps are sharded across all replicas.
//
// The loop tracks peak top-1 accuracy and the wall-clock time at which it is
// reached, which is exactly the quantity plotted in the paper's Figure 1.
package trainloop

import (
	"fmt"
	"time"

	"effnetscale/internal/autograd"
	"effnetscale/internal/checkpoint"
	"effnetscale/internal/data"
	"effnetscale/internal/nn"
	"effnetscale/internal/replica"
	"effnetscale/internal/tensor"
)

// LoopMode selects the evaluation strategy.
type LoopMode int

const (
	// Distributed shards evaluation across all replicas (§3.3).
	Distributed LoopMode = iota
	// Estimator evaluates the full validation split on replica 0 only,
	// modelling TPUEstimator's separate-evaluation-worker bottleneck.
	Estimator
)

// String names the mode.
func (m LoopMode) String() string {
	if m == Estimator {
		return "estimator"
	}
	return "distributed"
}

// Config drives Run.
type Config struct {
	Engine *replica.Engine
	// Epochs bounds training length.
	Epochs int
	// EvalEverySteps is the evaluation cadence (0 = once per epoch).
	EvalEverySteps int
	// EvalSamplesPerReplica caps eval work in Distributed mode; Estimator
	// mode scales it by the world size so both modes score the same total
	// sample count per evaluation.
	EvalSamplesPerReplica int
	// TargetAccuracy stops training early when reached (0 = run all epochs).
	TargetAccuracy float64
	// Mode selects the evaluation structure.
	Mode LoopMode
	// Progress, if non-nil, receives one line per evaluation.
	Progress func(string)
	// CheckpointPath, when set, saves replica 0's model there after every
	// evaluation that improves on the best accuracy so far (atomic write).
	CheckpointPath string
}

// EvalPoint is one evaluation snapshot.
type EvalPoint struct {
	Step     int
	Epoch    float64
	Accuracy float64
	Elapsed  time.Duration
}

// Result summarizes a run.
type Result struct {
	History      []EvalPoint
	PeakAccuracy float64
	// TimeToPeak is the elapsed wall-clock time at which peak accuracy was
	// first observed — the paper's Figure 1 metric.
	TimeToPeak time.Duration
	TotalTime  time.Duration
	StepsRun   int
	// EvalSerialSamples counts evaluation samples processed serially by the
	// busiest worker — the deterministic measure of the §3.3 bottleneck
	// (Estimator mode processes world× more than Distributed mode).
	EvalSerialSamples int
	// EvalWallTime accumulates wall-clock time spent in evaluation.
	EvalWallTime time.Duration
	ReachedGoal  bool
	// CheckpointsSaved counts best-so-far checkpoints written.
	CheckpointsSaved int
}

// Run trains the engine under the configured loop and returns the history.
func Run(cfg Config) *Result {
	if cfg.Engine == nil {
		panic("trainloop: engine is required")
	}
	eng := cfg.Engine
	evalEvery := cfg.EvalEverySteps
	if evalEvery <= 0 {
		evalEvery = eng.StepsPerEpoch()
	}
	res := &Result{}
	start := time.Now()

	totalSteps := cfg.Epochs * eng.StepsPerEpoch()
	for s := 0; s < totalSteps; s++ {
		eng.Step()
		res.StepsRun++
		if (s+1)%evalEvery != 0 && s+1 != totalSteps {
			continue
		}
		evalStart := time.Now()
		var acc float64
		switch cfg.Mode {
		case Estimator:
			// Full validation set on one worker; everyone else waits.
			n := cfg.EvalSamplesPerReplica * eng.World()
			acc = estimatorEvaluate(eng, n)
			res.EvalSerialSamples += n
		default:
			acc = eng.Evaluate(cfg.EvalSamplesPerReplica)
			res.EvalSerialSamples += cfg.EvalSamplesPerReplica
		}
		res.EvalWallTime += time.Since(evalStart)
		pt := EvalPoint{
			Step:     res.StepsRun,
			Epoch:    float64(res.StepsRun) / float64(eng.StepsPerEpoch()),
			Accuracy: acc,
			Elapsed:  time.Since(start),
		}
		res.History = append(res.History, pt)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("step %5d epoch %6.2f  top-1 %.4f  (%s)", pt.Step, pt.Epoch, pt.Accuracy, pt.Elapsed.Round(time.Millisecond)))
		}
		if acc > res.PeakAccuracy {
			res.PeakAccuracy = acc
			res.TimeToPeak = pt.Elapsed
			if cfg.CheckpointPath != "" {
				if err := checkpoint.SaveFile(cfg.CheckpointPath, eng.Replica(0).Model); err != nil {
					// Surface via progress rather than aborting training.
					if cfg.Progress != nil {
						cfg.Progress("checkpoint save failed: " + err.Error())
					}
				} else {
					res.CheckpointsSaved++
				}
			}
		}
		if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy {
			res.ReachedGoal = true
			break
		}
	}
	res.TotalTime = time.Since(start)
	return res
}

// estimatorEvaluate scores maxSamples validation images on replica 0 alone,
// reproducing the serialized-evaluation structure of TPUEstimator.
func estimatorEvaluate(e *replica.Engine, maxSamples int) float64 {
	rep := e.Replica(0)
	model := rep.Model
	ds := rep.Dataset()
	shard := data.NewShard(ds, 1, 0, 1) // the whole validation split
	n := shard.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	bs := rep.BatchSize()
	res := ds.Config().Resolution
	batch := tensor.New(bs, 3, res, res)
	labels := make([]int, bs)
	ctx := nn.EvalCtx()
	correct, total := 0, 0
	for lo := 0; lo < n; lo += bs {
		cnt := bs
		if lo+cnt > n {
			cnt = n - lo
		}
		shard.FillBatch(0, lo/bs, batch, labels)
		logits := model.Forward(ctx, autograd.Constant(batch))
		pred := autograd.Argmax(logits.T)
		for i := 0; i < cnt; i++ {
			if pred[i] == labels[i] {
				correct++
			}
		}
		total += cnt
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
