package trainloop

import (
	"fmt"
	"time"

	"effnetscale/internal/replica"
)

// Evaluator is the pluggable evaluation strategy seam. Implementations score
// the engine's current model and report both the accuracy and the number of
// evaluation samples processed serially by the busiest worker — the
// deterministic measure of the §3.3 evaluation bottleneck.
type Evaluator interface {
	// Name identifies the strategy in logs and tables.
	Name() string
	// Evaluate scores the model. samplesPerReplica caps the per-replica
	// evaluation work (0 = full shard); serial is the sample count the
	// busiest single worker processed. A non-nil error (an engine poisoned
	// by a failed state restore, say) aborts the run.
	Evaluate(e *replica.Engine, samplesPerReplica int) (acc float64, serial int, err error)
}

// Hooks receive loop events. Nil fields are skipped. Hooks run synchronously
// on the loop goroutine, so a slow hook slows training.
type Hooks struct {
	// OnStep fires after every global training step (1-based index; resumed
	// runs continue the original numbering from StartStep+1).
	OnStep func(step int, res replica.StepResult)
	// OnEval fires after every evaluation, once the point is recorded.
	OnEval func(pt EvalPoint)
	// OnStepEnd fires after the step's evaluation (if any) has completed
	// and been recorded — the step boundary at which the engine state,
	// including best-accuracy bookkeeping, is complete and quiescent. The
	// snapshot subsystem captures training state here.
	OnStepEnd func(step int)
}

// Config drives Run.
type Config struct {
	Engine *replica.Engine
	// Epochs bounds training length.
	Epochs int
	// EvalEverySteps is the evaluation cadence (0 = once per epoch). The
	// final step always evaluates regardless of cadence.
	EvalEverySteps int
	// EvalSamplesPerReplica caps per-replica eval work (0 = full shard).
	EvalSamplesPerReplica int
	// Evaluator is the evaluation strategy (required).
	Evaluator Evaluator
	// Hooks observe the loop.
	Hooks Hooks
	// Stop, when non-nil, is polled after every step; returning true ends
	// the run early (Result.Stopped is set). A final evaluation is NOT
	// forced — the caller decided it has seen enough.
	Stop func() bool
	// StartStep resumes a run mid-way: the loop executes steps
	// StartStep+1 .. Epochs×StepsPerEpoch, keeping the original step
	// numbering and evaluation cadence, exactly as if the first StartStep
	// steps had run in this process. The engine must already hold the
	// training state of step StartStep (replica.Engine.RestoreState).
	// StartStep at or past the end runs zero steps and returns cleanly.
	StartStep int
	// InitialBest seeds Result.PeakAccuracy for resumed runs, so the peak
	// reported at the end matches the uninterrupted run even when the peak
	// predates the resume point. TimeToPeak stays zero unless the resumed
	// run improves on it (wall-clock is not resumable state).
	InitialBest float64
}

// EvalPoint is one evaluation snapshot.
type EvalPoint struct {
	Step     int
	Epoch    float64
	Accuracy float64
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Wall is this evaluation's own wall-clock cost.
	Wall time.Duration
	// SerialSamples is the evaluation samples the busiest single worker
	// processed — the per-point form of Result.EvalSerialSamples.
	SerialSamples int
}

// Result summarizes a run.
type Result struct {
	History      []EvalPoint
	PeakAccuracy float64
	// TimeToPeak is the elapsed wall-clock time at which peak accuracy was
	// first observed — the paper's Figure 1 metric.
	TimeToPeak time.Duration
	TotalTime  time.Duration
	// StepsRun counts steps executed by this Run call; a resumed run counts
	// only post-resume steps (EvalPoint.Step carries the global numbering).
	StepsRun int
	// EvalSerialSamples counts evaluation samples processed serially by the
	// busiest worker — the deterministic measure of the §3.3 bottleneck
	// (the Estimator strategy processes world× more than Distributed).
	EvalSerialSamples int
	// EvalWallTime accumulates wall-clock time spent in evaluation.
	EvalWallTime time.Duration
	// Stopped reports that Config.Stop ended the run before all epochs.
	Stopped bool
}

// Run trains the engine under the configured loop and returns the history.
func Run(cfg Config) (*Result, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("trainloop: engine is required")
	}
	if cfg.Evaluator == nil {
		return nil, fmt.Errorf("trainloop: evaluator is required")
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("trainloop: epochs %d must be >= 1", cfg.Epochs)
	}
	if cfg.StartStep < 0 {
		return nil, fmt.Errorf("trainloop: start step %d must be >= 0", cfg.StartStep)
	}
	eng := cfg.Engine
	evalEvery := cfg.EvalEverySteps
	if evalEvery <= 0 {
		evalEvery = eng.StepsPerEpoch()
	}
	res := &Result{PeakAccuracy: cfg.InitialBest}
	start := time.Now()

	totalSteps := cfg.Epochs * eng.StepsPerEpoch()
	for s := cfg.StartStep; s < totalSteps; s++ {
		stepRes, err := eng.Step()
		if err != nil {
			return nil, fmt.Errorf("trainloop: step %d: %w", s+1, err)
		}
		res.StepsRun++
		step := s + 1 // global 1-based step number, resume-stable
		if cfg.Hooks.OnStep != nil {
			cfg.Hooks.OnStep(step, stepRes)
		}
		if step%evalEvery == 0 || step == totalSteps {
			evalStart := time.Now()
			acc, serial, err := cfg.Evaluator.Evaluate(eng, cfg.EvalSamplesPerReplica)
			if err != nil {
				return nil, fmt.Errorf("trainloop: eval at step %d: %w", step, err)
			}
			evalWall := time.Since(evalStart)
			res.EvalSerialSamples += serial
			res.EvalWallTime += evalWall
			pt := EvalPoint{
				Step:          step,
				Epoch:         float64(step) / float64(eng.StepsPerEpoch()),
				Accuracy:      acc,
				Elapsed:       time.Since(start),
				Wall:          evalWall,
				SerialSamples: serial,
			}
			res.History = append(res.History, pt)
			if acc > res.PeakAccuracy {
				res.PeakAccuracy = acc
				res.TimeToPeak = pt.Elapsed
			}
			if cfg.Hooks.OnEval != nil {
				cfg.Hooks.OnEval(pt)
			}
		}
		if cfg.Hooks.OnStepEnd != nil {
			cfg.Hooks.OnStepEnd(step)
		}
		if cfg.Stop != nil && cfg.Stop() {
			res.Stopped = true
			break
		}
	}
	res.TotalTime = time.Since(start)
	return res, nil
}
