package podsim

import (
	"math"

	"effnetscale/internal/data"
	"effnetscale/internal/xla"
)

// batchEfficiency models the per-core-batch utilization gain: TPU matrix
// units run closer to peak with more rows per step, so per-core batch 64
// executes markedly better than twice the batch-32 time. Calibrated so the
// B5 / batch-65536 headline run lands at the paper's ~64 minutes.
func batchEfficiency(perCoreBatch int) float64 {
	padded := xla.PadBatch(perCoreBatch)
	if padded <= 32 {
		return 1
	}
	eff := 1 + 0.5*math.Log2(float64(padded)/32)
	if eff > 2 {
		eff = 2
	}
	return eff
}

// Fig1Point is one point of the paper's Figure 1: training time to peak
// accuracy for a model on a slice size.
type Fig1Point struct {
	Model       string
	Cores       int
	GlobalBatch int
	Optimizer   string
	// MinutesToPeak is wall-clock training time until peak top-1 accuracy,
	// including distributed-evaluation overhead (the paper measures "from
	// initialization of the distributed training and evaluation loop to
	// peak accuracy").
	MinutesToPeak float64
	PeakAcc       float64
}

// TimeToPeak models the end-to-end time of one full-scale configuration.
func TimeToPeak(cfg TrainConfig, cores, bnGroup int) (Fig1Point, error) {
	sb, err := ModelStep(cfg.Model, cores, cfg.GlobalBatch, bnGroup)
	if err != nil {
		return Fig1Point{}, err
	}
	step := sb.ComputeSeconds/batchEfficiency(sb.PerCoreBatch) + sb.AllReduceSeconds + sb.BNSeconds
	peak, err := PeakAccuracy(cfg)
	if err != nil {
		return Fig1Point{}, err
	}
	epochs := EpochsToPeak(cfg)
	stepsPerEpoch := math.Ceil(float64(data.ImageNetTrainSize) / float64(cfg.GlobalBatch))
	trainSeconds := epochs * stepsPerEpoch * step

	// Distributed evaluation once per epoch over the 50k validation split.
	evalSec, err := EvalSeconds(cfg.Model, cores, data.ImageNetValSize, sb.PerCoreBatch)
	if err != nil {
		return Fig1Point{}, err
	}
	total := trainSeconds + epochs*evalSec
	return Fig1Point{
		Model:         cfg.Model,
		Cores:         cores,
		GlobalBatch:   cfg.GlobalBatch,
		Optimizer:     cfg.Optimizer,
		MinutesToPeak: total / 60,
		PeakAcc:       peak,
	}, nil
}

// Figure1Configs lists the slice-size sweep the paper's Figure 1 plots:
// per-core batch 32 at every slice size, RMSProp below the 16384-batch
// threshold and LARS above it, plus the headline B5 / 65536 point.
func Figure1Configs() []struct {
	Cfg   TrainConfig
	Cores int
} {
	var out []struct {
		Cfg   TrainConfig
		Cores int
	}
	for _, model := range []string{"b2", "b5"} {
		for _, cores := range []int{128, 256, 512, 1024} {
			batch := cores * 32
			cfg := TrainConfig{Model: model, GlobalBatch: batch, Epochs: 350}
			if batch <= 16384 {
				cfg.Optimizer = "rmsprop"
				cfg.LRPer256 = 0.016
				cfg.Decay = "exponential"
				cfg.WarmupEpochs = 5
			} else {
				cfg.Optimizer = "lars"
				cfg.LRPer256 = tunedLRPer256("lars", batch)
				cfg.Decay = "polynomial"
				cfg.WarmupEpochs = 50
			}
			out = append(out, struct {
				Cfg   TrainConfig
				Cores int
			}{cfg, cores})
		}
	}
	// Headline: B5 at global batch 65536 on 1024 cores.
	out = append(out, struct {
		Cfg   TrainConfig
		Cores int
	}{TrainConfig{Model: "b5", Optimizer: "lars", GlobalBatch: 65536, LRPer256: 0.081, Decay: "polynomial", WarmupEpochs: 43, Epochs: 350}, 1024})
	return out
}

// Figure1 reproduces the paper's Figure 1 series.
func Figure1() ([]Fig1Point, error) {
	var pts []Fig1Point
	for _, c := range Figure1Configs() {
		p, err := TimeToPeak(c.Cfg, c.Cores, 0)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}
