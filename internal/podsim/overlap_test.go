package podsim

import "testing"

func TestOverlapHidesMostOfAllReduce(t *testing.T) {
	o, err := ModelStepOverlapped("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B2's all-reduce is ~2.5% of the step while backward is ~60%: nearly
	// all of it (90%, the non-tail share) must be hideable.
	if o.OverlapFraction < 0.85 || o.OverlapFraction > 0.90001 {
		t.Fatalf("overlap fraction = %v, want ≈0.9", o.OverlapFraction)
	}
	if o.OverlappedStepSeconds >= o.StepBreakdown.StepSeconds() {
		t.Fatal("overlap must shrink the step")
	}
	// Speedup is bounded by the all-reduce share itself.
	if s := o.SpeedupPct(); s <= 0 || s > o.AllReducePct() {
		t.Fatalf("speedup %v%% outside (0, %v%%]", s, o.AllReducePct())
	}
}

func TestOverlapValidation(t *testing.T) {
	if _, err := ModelStepOverlapped("bogus", 1024, 32768, 0); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestOverlapDirectionAcrossModels(t *testing.T) {
	// B2 (more comm-bound) gains more from overlap than B5.
	b2, err := ModelStepOverlapped("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	b5, err := ModelStepOverlapped("b5", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b2.SpeedupPct() <= b5.SpeedupPct() {
		t.Fatalf("B2 overlap speedup (%v%%) must exceed B5's (%v%%)", b2.SpeedupPct(), b5.SpeedupPct())
	}
}

func TestGradReadyTailIsOneBucket(t *testing.T) {
	const mib = 1 << 20
	small, err := ModelStepGradReady("b2", 1024, 32768, 0, mib)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ModelStepGradReady("b2", 1024, 32768, 0, 8*mib)
	if err != nil {
		t.Fatal(err)
	}
	exposed := func(o OverlapResult) float64 {
		return o.AllReduceSeconds * (1 - o.OverlapFraction)
	}
	// The exposed tail is one bucket's collective, so it shrinks with the
	// bucket size ...
	if exposed(small) >= exposed(big) {
		t.Fatalf("1 MiB tail %v must beat 8 MiB tail %v", exposed(small), exposed(big))
	}
	// ... while total busy time grows: more buckets, more α latency.
	if small.AllReduceSeconds <= big.AllReduceSeconds {
		t.Fatalf("1 MiB busy %v must exceed 8 MiB busy %v", small.AllReduceSeconds, big.AllReduceSeconds)
	}
	// Grad-ready dispatch with per-layer buckets beats the fixed-10%-tail
	// flatten model of ModelStepOverlapped.
	flat, err := ModelStepOverlapped("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.OverlapFraction <= flat.OverlapFraction {
		t.Fatalf("grad-ready overlap %v must exceed the flatten model's %v", small.OverlapFraction, flat.OverlapFraction)
	}
	if small.OverlappedStepSeconds >= small.StepBreakdown.StepSeconds() {
		t.Fatal("overlap must shrink the step")
	}
}

func TestGradReadyValidation(t *testing.T) {
	if _, err := ModelStepGradReady("bogus", 1024, 32768, 0, 1<<20); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := ModelStepGradReady("b2", 1024, 32768, 0, 0); err == nil {
		t.Fatal("zero bucket size must error")
	}
}
