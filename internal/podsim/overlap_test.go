package podsim

import "testing"

func TestOverlapHidesMostOfAllReduce(t *testing.T) {
	o, err := ModelStepOverlapped("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B2's all-reduce is ~2.5% of the step while backward is ~60%: nearly
	// all of it (90%, the non-tail share) must be hideable.
	if o.OverlapFraction < 0.85 || o.OverlapFraction > 0.90001 {
		t.Fatalf("overlap fraction = %v, want ≈0.9", o.OverlapFraction)
	}
	if o.OverlappedStepSeconds >= o.StepBreakdown.StepSeconds() {
		t.Fatal("overlap must shrink the step")
	}
	// Speedup is bounded by the all-reduce share itself.
	if s := o.SpeedupPct(); s <= 0 || s > o.AllReducePct() {
		t.Fatalf("speedup %v%% outside (0, %v%%]", s, o.AllReducePct())
	}
}

func TestOverlapValidation(t *testing.T) {
	if _, err := ModelStepOverlapped("bogus", 1024, 32768, 0); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestOverlapDirectionAcrossModels(t *testing.T) {
	// B2 (more comm-bound) gains more from overlap than B5.
	b2, err := ModelStepOverlapped("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	b5, err := ModelStepOverlapped("b5", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b2.SpeedupPct() <= b5.SpeedupPct() {
		t.Fatalf("B2 overlap speedup (%v%%) must exceed B5's (%v%%)", b2.SpeedupPct(), b5.SpeedupPct())
	}
}
