package podsim

import (
	"strings"
	"testing"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
)

func TestModelStepChargesTorus2DByDefault(t *testing.T) {
	b, err := ModelStep("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1024 cores = a 32x16 chip slice; the default all-reduce is the
	// hierarchical torus on that grid, same name the executable reports.
	if b.Algorithm != "torus2d(32x16)" {
		t.Fatalf("default Algorithm = %q, want torus2d(32x16)", b.Algorithm)
	}
}

func TestModelStepWithPricesProviderAlgorithms(t *testing.T) {
	slice, err := topology.SliceForCores(1024)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := ModelStepWith(comm.RingProvider(), "b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := ModelStepWith(comm.Torus2DProvider(slice), "b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Algorithm != "ring" {
		t.Fatalf("ring Algorithm = %q", ring.Algorithm)
	}
	// Gradients are bandwidth-heavy but at 512 chips the flat ring pays
	// 2(n−1) latencies; the hierarchy must be cheaper (the paper's point).
	if torus.AllReduceSeconds >= ring.AllReduceSeconds {
		t.Fatalf("torus all-reduce (%v) must beat flat ring (%v) at 512 chips",
			torus.AllReduceSeconds, ring.AllReduceSeconds)
	}
	// Compute is identical; only the communication term moves.
	if torus.ComputeSeconds != ring.ComputeSeconds {
		t.Fatalf("compute differs across collectives: %v vs %v", torus.ComputeSeconds, ring.ComputeSeconds)
	}
	auto, err := ModelStepWith(comm.AutoProvider(slice), "b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Auto must charge no more than the best fixed choice and name it.
	if auto.AllReduceSeconds > torus.AllReduceSeconds {
		t.Fatalf("auto (%v) charged more than torus (%v)", auto.AllReduceSeconds, torus.AllReduceSeconds)
	}
	if !strings.HasPrefix(auto.Algorithm, "torus2d") && auto.Algorithm != "ring" && auto.Algorithm != "tree" {
		t.Fatalf("auto Algorithm = %q, want a concrete per-call choice", auto.Algorithm)
	}
}
