package podsim

// PaperTable1 holds the published Table 1 values for side-by-side
// comparison in EXPERIMENTS.md and the benchmark harness.
var PaperTable1 = []Table1Row{
	{Model: "b2", Cores: 128, GlobalBatch: 4096, ThroughputImgPerMs: 57.57, AllReducePct: 2.1},
	{Model: "b2", Cores: 256, GlobalBatch: 8192, ThroughputImgPerMs: 113.73, AllReducePct: 2.6},
	{Model: "b2", Cores: 512, GlobalBatch: 16384, ThroughputImgPerMs: 227.13, AllReducePct: 2.5},
	{Model: "b2", Cores: 1024, GlobalBatch: 32768, ThroughputImgPerMs: 451.35, AllReducePct: 2.81},
	{Model: "b5", Cores: 128, GlobalBatch: 4096, ThroughputImgPerMs: 9.76, AllReducePct: 0.89},
	{Model: "b5", Cores: 256, GlobalBatch: 8192, ThroughputImgPerMs: 19.48, AllReducePct: 1.24},
	{Model: "b5", Cores: 512, GlobalBatch: 16384, ThroughputImgPerMs: 38.55, AllReducePct: 1.24},
	{Model: "b5", Cores: 1024, GlobalBatch: 32768, ThroughputImgPerMs: 77.44, AllReducePct: 1.03},
}

// PaperTable2 holds the published Table 2 peak accuracies, in the same
// order as Table2Configs.
var PaperTable2 = []float64{
	0.801, 0.800, 0.799, 0.795, 0.797, // B2 rows
	0.835, 0.834, 0.834, 0.833, 0.832, 0.830, // B5 rows
}

// PaperHeadlines holds the headline results quoted in the abstract and §4.
var PaperHeadlines = struct {
	// B2 on 1024 cores: 18 minutes to 79.7%.
	B2MinutesTo797 float64
	// B5 on 1024 cores at batch 65536: 1 hour 4 minutes to 83.0%.
	B5MinutesTo830 float64
}{
	B2MinutesTo797: 18,
	B5MinutesTo830: 64,
}
