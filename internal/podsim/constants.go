package podsim

import (
	"fmt"

	"effnetscale/internal/comm"
	"effnetscale/internal/efficientnet"
)

// Hardware constants for a TPU-v3 core.
const (
	// PeakMACsPerCore is the bf16 multiply-accumulate peak of one TPU-v3
	// core (123 TFLOP/s per chip ÷ 2 cores ÷ 2 flops-per-MAC).
	PeakMACsPerCore = 30.7e12
	// HBMBytesPerCore is per-core high-bandwidth memory (16 GiB).
	HBMBytesPerCore = 16 << 30
)

// table1Anchor holds the 128-core Table 1 rows used for calibration.
type table1Anchor struct {
	throughputImgPerMs float64 // paper's measured throughput at 128 cores
	perCoreBatch       int
}

// anchors128 are the calibration rows (Table 1, 128-core entries).
var anchors128 = map[string]table1Anchor{
	"b2": {throughputImgPerMs: 57.57, perCoreBatch: 32},
	"b5": {throughputImgPerMs: 9.76, perCoreBatch: 32},
}

// ModelPerf bundles the derived per-model performance constants.
type ModelPerf struct {
	Name  string
	Stats efficientnet.Stats
	// Util is the effective MXU utilization fraction (EfficientNets run
	// their depthwise convolutions far below peak, so this is small).
	Util float64
}

// perfCache holds calibrated per-model constants.
var perfCache = map[string]ModelPerf{}

// PerfFor returns the calibrated performance constants for a family model.
// Models without a Table 1 anchor inherit an interpolated utilization.
func PerfFor(model string) (ModelPerf, error) {
	if p, ok := perfCache[model]; ok {
		return p, nil
	}
	cfg, ok := efficientnet.ConfigByName(model, 1000)
	if !ok {
		return ModelPerf{}, fmt.Errorf("podsim: unknown model %q", model)
	}
	st := efficientnet.ComputeStats(cfg)
	p := ModelPerf{Name: model, Stats: st}
	if a, ok := anchors128[model]; ok {
		p.Util = calibrateUtil(st, a)
	} else {
		// Default utilization between the two anchors; documented as an
		// extrapolation for models the paper did not benchmark.
		p.Util = 0.055
	}
	perfCache[model] = p
	return p, nil
}

// calibrateUtil solves for the MXU utilization that makes the modelled
// 128-core step time reproduce the anchor throughput exactly, after
// subtracting the modelled all-reduce time from the measured step.
func calibrateUtil(st efficientnet.Stats, a table1Anchor) float64 {
	cores := 128
	globalBatch := cores * a.perCoreBatch
	stepTarget := float64(globalBatch) / (a.throughputImgPerMs * 1000) // seconds
	slice := mustSlice(cores)
	tAR := comm.Torus2DAllReduceSeconds(st.GradBytes, slice, comm.TPUv3Links)
	tCompute := stepTarget - tAR
	if tCompute <= 0 {
		panic("podsim: calibration anchor implies non-positive compute time")
	}
	// tCompute = perCoreBatch * trainMACs / (peak * util)
	return float64(a.perCoreBatch) * st.TrainFLOPsPerImg() / (PeakMACsPerCore * tCompute)
}
