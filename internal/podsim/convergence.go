package podsim

import (
	"fmt"
	"math"
)

// TrainConfig describes one full-scale training configuration — one row of
// the paper's Table 2.
type TrainConfig struct {
	Model       string  // "b2" or "b5" (any family member accepted)
	Optimizer   string  // "rmsprop" or "lars"
	GlobalBatch int     // 4096 … 65536
	LRPer256    float64 // learning rate per 256 samples (linear scaling rule)
	// Decay is "exponential" (RMSProp rows) or "polynomial" (LARS rows).
	Decay        string
	WarmupEpochs float64
	Epochs       int // the paper trains 350 epochs throughout
}

// Convergence-model coefficients. These are CALIBRATED to Table 2 (they are
// the quantities the paper measures, not predicts); the functional form
// encodes the mechanisms: a base accuracy per model, a generalization-gap
// term growing with log2(batch), a sharp RMSProp blow-up beyond batch 16384
// (the reason the paper switches optimizer), a small constant LARS offset,
// and penalties for schedule/LR mistuning.
const (
	baseAccB2 = 0.8015
	baseAccB5 = 0.8355
	// refBatch is the batch where base accuracy is anchored (Table 2 row 1).
	refBatch = 4096
	// rmspropGapPerDoubling: −0.001 per ×2 batch (0.801→0.800→0.799).
	rmspropGapPerDoubling = 0.001
	// rmspropBlowup applies beyond 16384, superlinear in doublings: the
	// degradation that motivates §3.1.
	rmspropBlowup = 0.015
	// larsOffset is LARS's small constant accuracy cost vs well-tuned
	// RMSProp at moderate batch (Table 2: 0.799→0.795 on B2, 0.834→0.833
	// on B5).
	larsOffsetB2 = 0.005
	larsOffsetB5 = 0.0025
	// larsGapPerDoubling applies beyond 16384 (0.833→0.832→0.830 on B5).
	larsGapPerDoubling = 0.0015
	// wrongDecayPenalty: §3.2 found polynomial best for LARS and the
	// EfficientNet exponential schedule best for RMSProp.
	wrongDecayPenalty = 0.005
	// lrMistunePenalty scales with squared log2 deviation from the paper's
	// tuned LR for the batch size.
	lrMistunePenalty = 0.004
	// shortWarmupPenalty per missing warmup epoch (relative to the
	// batch-scaled requirement).
	shortWarmupPenalty = 0.0005
)

func baseAcc(model string) (float64, error) {
	switch model {
	case "b2":
		return baseAccB2, nil
	case "b5":
		return baseAccB5, nil
	default:
		return 0, fmt.Errorf("podsim: convergence model calibrated for b2/b5 only, got %q", model)
	}
}

// tunedLRPer256 returns the paper's tuned per-256 learning rate for an
// optimizer/batch combination (Table 2's LR column).
func tunedLRPer256(optimizer string, globalBatch int) float64 {
	if optimizer == "rmsprop" {
		return 0.016
	}
	// LARS rows: 0.236 @ 16384, 0.118 @ 32768, 0.081 @ 65536 — the paper
	// keeps the *global* LR roughly constant above 16384 instead of linear
	// scaling. Interpolate on that rule.
	switch {
	case globalBatch <= 16384:
		return 0.236
	case globalBatch <= 32768:
		return 0.118
	default:
		return 0.081
	}
}

// requiredWarmup estimates the warmup epochs needed for stability at a
// given batch (the paper uses 5 for RMSProp rows, 43–50 for LARS rows).
func requiredWarmup(optimizer string, globalBatch int) float64 {
	if optimizer == "rmsprop" {
		return 5
	}
	// LARS with its very large global LR needs tens of epochs.
	w := 10 * math.Log2(float64(globalBatch)/4096)
	if w < 10 {
		w = 10
	}
	return w
}

// PeakAccuracy predicts the peak top-1 validation accuracy of a full-scale
// configuration (the paper's Table 2 quantity).
func PeakAccuracy(cfg TrainConfig) (float64, error) {
	base, err := baseAcc(cfg.Model)
	if err != nil {
		return 0, err
	}
	doublings := math.Log2(float64(cfg.GlobalBatch) / refBatch)
	acc := base
	switch cfg.Optimizer {
	case "rmsprop":
		if doublings > 0 {
			acc -= rmspropGapPerDoubling * doublings
		}
		if over := math.Log2(float64(cfg.GlobalBatch) / 16384); over > 0 {
			acc -= rmspropBlowup * math.Pow(over, 1.5)
		}
		if cfg.Decay != "exponential" {
			acc -= wrongDecayPenalty
		}
	case "lars":
		switch cfg.Model {
		case "b2":
			acc -= larsOffsetB2
		default:
			acc -= larsOffsetB5
		}
		if over := math.Log2(float64(cfg.GlobalBatch) / 16384); over > 0 {
			acc -= larsGapPerDoubling * over
		}
		if cfg.Decay != "polynomial" {
			acc -= wrongDecayPenalty
		}
	default:
		return 0, fmt.Errorf("podsim: convergence model covers rmsprop and lars, got %q", cfg.Optimizer)
	}
	// LR mistuning penalty (zero for the paper's tuned values).
	tuned := tunedLRPer256(cfg.Optimizer, cfg.GlobalBatch)
	if cfg.LRPer256 > 0 && tuned > 0 {
		dev := math.Log2(cfg.LRPer256 / tuned)
		acc -= lrMistunePenalty * dev * dev
	}
	// Warmup shortfall.
	if need := requiredWarmup(cfg.Optimizer, cfg.GlobalBatch); cfg.WarmupEpochs < need {
		acc -= shortWarmupPenalty * (need - cfg.WarmupEpochs)
	}
	// Truncated training cannot reach the full peak.
	if cfg.Epochs > 0 && cfg.Epochs < 350 {
		acc *= rampFraction(float64(cfg.Epochs) / EpochsToPeak(cfg))
	}
	if acc < 0 {
		acc = 0
	}
	return acc, nil
}

// EpochsToPeak returns the epoch at which peak accuracy is first reached.
// RMSProp's staircase decay plateaus slightly before the end; LARS's
// polynomial-to-zero decay peaks essentially at the end of training.
func EpochsToPeak(cfg TrainConfig) float64 {
	if cfg.Optimizer == "rmsprop" {
		return 340
	}
	return 348
}

// rampFraction is the saturating convergence shape: fraction of peak
// accuracy attained after x ∈ [0,1] of the epochs-to-peak.
func rampFraction(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return 1 - math.Pow(1-x, 3)
}

// AccuracyAtEpoch returns the modelled accuracy trajectory, including the
// warmup phase during which accuracy grows slowly.
func AccuracyAtEpoch(cfg TrainConfig, epoch float64) (float64, error) {
	peak, err := PeakAccuracy(cfg)
	if err != nil {
		return 0, err
	}
	ePeak := EpochsToPeak(cfg)
	// During warmup, progress is discounted: the LR is still ramping.
	effective := epoch
	if cfg.WarmupEpochs > 0 && epoch < cfg.WarmupEpochs {
		effective = epoch * epoch / (2 * cfg.WarmupEpochs)
	}
	return peak * rampFraction(effective/ePeak), nil
}

// Table2Row matches one row of the paper's Table 2.
type Table2Row struct {
	Model        string
	Cores        int
	GlobalBatch  int
	Optimizer    string
	LRPer256     float64
	Decay        string
	WarmupEpochs float64
	PeakAcc      float64
}

// Table2Configs lists the paper's 11 Table 2 configurations in order.
func Table2Configs() []Table2Row {
	return []Table2Row{
		{Model: "b2", Cores: 128, GlobalBatch: 4096, Optimizer: "rmsprop", LRPer256: 0.016, Decay: "exponential", WarmupEpochs: 5},
		{Model: "b2", Cores: 256, GlobalBatch: 8192, Optimizer: "rmsprop", LRPer256: 0.016, Decay: "exponential", WarmupEpochs: 5},
		{Model: "b2", Cores: 512, GlobalBatch: 16384, Optimizer: "rmsprop", LRPer256: 0.016, Decay: "exponential", WarmupEpochs: 5},
		{Model: "b2", Cores: 512, GlobalBatch: 16384, Optimizer: "lars", LRPer256: 0.236, Decay: "polynomial", WarmupEpochs: 50},
		{Model: "b2", Cores: 1024, GlobalBatch: 32768, Optimizer: "lars", LRPer256: 0.118, Decay: "polynomial", WarmupEpochs: 50},
		{Model: "b5", Cores: 128, GlobalBatch: 4096, Optimizer: "rmsprop", LRPer256: 0.016, Decay: "exponential", WarmupEpochs: 5},
		{Model: "b5", Cores: 256, GlobalBatch: 8192, Optimizer: "rmsprop", LRPer256: 0.016, Decay: "exponential", WarmupEpochs: 5},
		{Model: "b5", Cores: 512, GlobalBatch: 16384, Optimizer: "rmsprop", LRPer256: 0.016, Decay: "exponential", WarmupEpochs: 5},
		{Model: "b5", Cores: 512, GlobalBatch: 16384, Optimizer: "lars", LRPer256: 0.236, Decay: "polynomial", WarmupEpochs: 50},
		{Model: "b5", Cores: 1024, GlobalBatch: 32768, Optimizer: "lars", LRPer256: 0.118, Decay: "polynomial", WarmupEpochs: 50},
		{Model: "b5", Cores: 1024, GlobalBatch: 65536, Optimizer: "lars", LRPer256: 0.081, Decay: "polynomial", WarmupEpochs: 43},
	}
}

// Table2 reproduces the paper's Table 2 from the convergence model.
func Table2() ([]Table2Row, error) {
	rows := Table2Configs()
	for i := range rows {
		acc, err := PeakAccuracy(TrainConfig{
			Model:        rows[i].Model,
			Optimizer:    rows[i].Optimizer,
			GlobalBatch:  rows[i].GlobalBatch,
			LRPer256:     rows[i].LRPer256,
			Decay:        rows[i].Decay,
			WarmupEpochs: rows[i].WarmupEpochs,
			Epochs:       350,
		})
		if err != nil {
			return nil, err
		}
		rows[i].PeakAcc = acc
	}
	return rows, nil
}
