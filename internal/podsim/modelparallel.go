package podsim

import (
	"fmt"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
	"effnetscale/internal/xla"
)

// The paper's §5 names model parallelism as future work: "model parallelism
// ... would supplement the current data parallelism to allow training on
// large numbers of chips without standard global batch sizes." This file
// implements that study analytically: a hybrid (D data shards × M model
// shards) decomposition where each model-shard group splits every layer's
// channels M ways, trading extra activation communication for an M× smaller
// minimum global batch.

// HybridStep extends StepBreakdown with the model-parallel exchange term.
type HybridStep struct {
	StepBreakdown
	// ModelShards is M in the D×M decomposition (1 = pure data parallel).
	ModelShards int
	// DataShards is D = cores / M.
	DataShards int
	// ActExchangeSeconds is the per-step activation (forward) + activation-
	// gradient (backward) exchange within each model-shard group.
	ActExchangeSeconds float64
}

// StepSeconds includes the activation-exchange term.
func (h HybridStep) StepSeconds() float64 {
	return h.StepBreakdown.StepSeconds() + h.ActExchangeSeconds
}

// ThroughputImgPerMs recomputes throughput with the exchange term included.
func (h HybridStep) ThroughputImgPerMs() float64 {
	return float64(h.GlobalBatch) / h.StepSeconds() / 1000
}

// HybridModelStep models one training step of a D×M hybrid decomposition on
// a slice. globalBatch is split across the D data shards only; each data
// shard's work is further split M ways across its model-shard group.
func HybridModelStep(model string, cores, globalBatch, modelShards int) (HybridStep, error) {
	if modelShards < 1 {
		return HybridStep{}, fmt.Errorf("podsim: model shards %d must be >= 1", modelShards)
	}
	if cores%modelShards != 0 {
		return HybridStep{}, fmt.Errorf("podsim: model shards %d do not divide %d cores", modelShards, cores)
	}
	perf, err := PerfFor(model)
	if err != nil {
		return HybridStep{}, err
	}
	slice, err := topology.SliceForCores(cores)
	if err != nil {
		return HybridStep{}, err
	}
	dataShards := cores / modelShards
	perData, err := xla.SplitBatch(globalBatch, dataShards)
	if err != nil {
		return HybridStep{}, err
	}
	// Each core executes the padded per-data-shard batch over 1/M of the
	// channels. Channel splitting fragments the matrix units, modelled as a
	// mild efficiency loss per halving.
	padded := xla.PadBatch(perData)
	shardEff := shardEfficiency(modelShards)
	h := HybridStep{
		StepBreakdown: StepBreakdown{
			Model:        model,
			Cores:        cores,
			GlobalBatch:  globalBatch,
			PerCoreBatch: perData, // per data shard; each core sees all of it
		},
		ModelShards: modelShards,
		DataShards:  dataShards,
	}
	h.ComputeSeconds = float64(padded) * perf.Stats.TrainFLOPsPerImg() /
		float64(modelShards) / (PeakMACsPerCore * perf.Util * shardEff)

	// Gradient all-reduce: each core holds 1/M of the parameters, reduced
	// across the D data shards.
	gradBytes := perf.Stats.GradBytes / modelShards
	h.AllReduceSeconds = comm.Torus2DAllReduceSeconds(gradBytes, slice, comm.TPUv3Links)

	// Activation exchange within the model-shard group: forward activations
	// and backward activation gradients at every layer boundary, each core
	// contributing its 1/M channel slice (ring all-gather per boundary,
	// aggregated here as one payload).
	if modelShards > 1 {
		actBytes := int(float64(padded) * perf.Stats.ActElemsPerImg * 2 / float64(modelShards) * 2)
		h.ActExchangeSeconds = comm.RingAllReduceSeconds(actBytes, modelShards, comm.TPUv3Links)
	}
	return h, nil
}

// shardEfficiency is the matrix-unit efficiency retained after splitting
// every layer's channels M ways: a mild loss per halving.
func shardEfficiency(modelShards int) float64 {
	eff := 1.0
	for m := modelShards; m > 1; m >>= 1 {
		eff *= 0.92
	}
	return eff
}

// MiniCollective is one collective call of a measured mini-scale step — the
// payload trace MiniHybridStep prices. AllGather marks the model-axis
// activation/gradient-slice gathers; everything else is priced as a ring
// all-reduce.
type MiniCollective struct {
	AllGather bool
	Bytes     int
	World     int
}

// MiniHybridStep prices one mini-scale D×M training step the way
// HybridModelStep prices a pod step, calibrated to a measured run instead of
// TPU datasheet constants: compute is the per-data-shard batch times a
// measured per-image cost, scaled by 1/M with HybridModelStep's
// channel-sharding efficiency loss, and communication prices the step's
// actual collective payload trace with the α-β ring formulas under the
// fitted link constants (the PR 5 measured-vs-modeled fit). The result is
// the §5 analytic structure predicting a step the executable mesh engine
// actually runs — podbench -validate reports the per-cell error.
func MiniHybridStep(model string, d, m, globalBatch int, perImgSeconds float64, calls []MiniCollective, links comm.LinkParams) (HybridStep, error) {
	if d < 1 || m < 1 {
		return HybridStep{}, fmt.Errorf("podsim: mesh %dx%d must have both axes >= 1", d, m)
	}
	if globalBatch%d != 0 {
		return HybridStep{}, fmt.Errorf("podsim: global batch %d does not split across %d data shards", globalBatch, d)
	}
	h := HybridStep{
		StepBreakdown: StepBreakdown{
			Model:        model,
			Cores:        d * m,
			GlobalBatch:  globalBatch,
			PerCoreBatch: globalBatch / d,
		},
		ModelShards: m,
		DataShards:  d,
	}
	h.ComputeSeconds = float64(globalBatch/d) * perImgSeconds / (float64(m) * shardEfficiency(m))
	for _, c := range calls {
		if c.World < 2 {
			continue
		}
		if c.AllGather {
			h.ActExchangeSeconds += comm.RingAllGatherSeconds(c.Bytes, c.World, links)
		} else {
			h.AllReduceSeconds += comm.RingAllReduceSeconds(c.Bytes, c.World, links)
		}
	}
	return h, nil
}

// MinGlobalBatch returns the smallest padding-free global batch for a D×M
// decomposition on the given cores — the §5 motivation: M model shards cut
// the XLA-imposed minimum by M.
func MinGlobalBatch(cores, modelShards int) int {
	return xla.MinEfficientGlobalBatch(cores) / modelShards
}

// HybridSweepRow is one configuration of the future-work study.
type HybridSweepRow struct {
	ModelShards        int
	DataShards         int
	GlobalBatch        int
	ThroughputImgPerMs float64
	ActExchangePct     float64
}

// HybridSweep evaluates M ∈ {1,2,4,8} on a full 2048-core pod at each M's
// minimum padding-free batch, quantifying the §5 trade-off: smaller feasible
// batches versus activation-exchange overhead.
func HybridSweep(model string, cores int) ([]HybridSweepRow, error) {
	var rows []HybridSweepRow
	for _, m := range []int{1, 2, 4, 8} {
		batch := MinGlobalBatch(cores, m)
		h, err := HybridModelStep(model, cores, batch, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HybridSweepRow{
			ModelShards:        m,
			DataShards:         h.DataShards,
			GlobalBatch:        batch,
			ThroughputImgPerMs: h.ThroughputImgPerMs(),
			ActExchangePct:     100 * h.ActExchangeSeconds / h.StepSeconds(),
		})
	}
	return rows, nil
}
