package podsim

import (
	"fmt"

	"effnetscale/internal/comm"
)

// Overlap ablation: Table 1 reports all-reduce as a separate share of step
// time, i.e. the gradient all-reduce is serialized after the backward pass.
// A standard optimization overlaps the all-reduce of already-computed layer
// gradients with the remaining backward computation, hiding communication
// behind compute. This file models that design choice so the benchmark
// harness can quantify how much of Table 1's all-reduce share is hideable.

// OverlapResult compares serialized and overlapped step times for one
// configuration.
type OverlapResult struct {
	StepBreakdown
	// OverlapFraction is the fraction of the all-reduce hideable behind
	// backward compute (bounded by the backward pass's duration and by the
	// fraction of gradients available before backward finishes).
	OverlapFraction float64
	// OverlappedStepSeconds is the modelled step time with overlap.
	OverlappedStepSeconds float64
}

// SpeedupPct is the step-time reduction from overlapping, in percent.
func (o OverlapResult) SpeedupPct() float64 {
	base := o.StepBreakdown.StepSeconds()
	return 100 * (base - o.OverlappedStepSeconds) / base
}

// ModelStepOverlapped models a step where gradient all-reduce chunks start
// as soon as their layer's backward completes. The last layer's gradients
// (the input-side stem, computed at the very end of backward) cannot be
// hidden; empirically ~10% of the payload must remain serialized, plus the
// α latency of the final chunk.
func ModelStepOverlapped(model string, cores, globalBatch, bnGroup int) (OverlapResult, error) {
	sb, err := ModelStep(model, cores, globalBatch, bnGroup)
	if err != nil {
		return OverlapResult{}, err
	}
	// Backward is ~2/3 of training compute; communication can hide under
	// it as long as bandwidth-time fits.
	backward := sb.ComputeSeconds * 2 / 3
	const tailFraction = 0.10 // stem gradients, not hideable
	hideable := sb.AllReduceSeconds * (1 - tailFraction)
	if hideable > backward {
		hideable = backward
	}
	res := OverlapResult{
		StepBreakdown:   sb,
		OverlapFraction: hideable / sb.AllReduceSeconds,
	}
	res.OverlappedStepSeconds = sb.StepSeconds() - hideable
	return res, nil
}

// ModelStepGradReady prices the engine's grad-ready dispatch (ROADMAP item
// 1): the gradient payload splits into ⌈GradBytes/bucketBytes⌉ buckets, each
// all-reduced the moment the backward pass produces its last member. Unlike
// ModelStepOverlapped's fixed 10% tail, the exposed tail here is structural:
// exactly one bucket — the input-side stem, whose gradients land when
// backward ends — plus whatever the backward window cannot absorb. Smaller
// buckets shrink that tail but pay per-collective α latency on every bucket,
// so total all-reduce busy time rises as buckets shrink; the returned
// StepBreakdown carries the bucketed busy time so SpeedupPct compares
// serialized-vs-overlapped dispatch of the same collectives. The ragged last
// bucket is priced as a full bucket (conservative).
func ModelStepGradReady(model string, cores, globalBatch, bnGroup, bucketBytes int) (OverlapResult, error) {
	if bucketBytes < 4 {
		return OverlapResult{}, fmt.Errorf("podsim: bucket size %d bytes must hold at least one fp32 value", bucketBytes)
	}
	sb, err := ModelStep(model, cores, globalBatch, bnGroup)
	if err != nil {
		return OverlapResult{}, err
	}
	perf, err := PerfFor(model)
	if err != nil {
		return OverlapResult{}, err
	}
	slice := mustSlice(cores)
	prov := comm.Torus2DProvider(slice)
	buckets := (perf.Stats.GradBytes + bucketBytes - 1) / bucketBytes
	perBucket, alg := prov.ModelAllReduce(bucketBytes, slice.Chips(), comm.TPUv3Links)
	busy := float64(buckets) * perBucket
	backward := sb.ComputeSeconds * 2 / 3
	hideable := busy - perBucket // every bucket but the stem's
	if hideable < 0 {
		hideable = 0
	}
	if hideable > backward {
		hideable = backward
	}
	sb.AllReduceSeconds = busy
	sb.Algorithm = alg
	res := OverlapResult{
		StepBreakdown:   sb,
		OverlapFraction: hideable / busy,
	}
	res.OverlappedStepSeconds = sb.StepSeconds() - hideable
	return res, nil
}
