package podsim

// Overlap ablation: Table 1 reports all-reduce as a separate share of step
// time, i.e. the gradient all-reduce is serialized after the backward pass.
// A standard optimization overlaps the all-reduce of already-computed layer
// gradients with the remaining backward computation, hiding communication
// behind compute. This file models that design choice so the benchmark
// harness can quantify how much of Table 1's all-reduce share is hideable.

// OverlapResult compares serialized and overlapped step times for one
// configuration.
type OverlapResult struct {
	StepBreakdown
	// OverlapFraction is the fraction of the all-reduce hideable behind
	// backward compute (bounded by the backward pass's duration and by the
	// fraction of gradients available before backward finishes).
	OverlapFraction float64
	// OverlappedStepSeconds is the modelled step time with overlap.
	OverlappedStepSeconds float64
}

// SpeedupPct is the step-time reduction from overlapping, in percent.
func (o OverlapResult) SpeedupPct() float64 {
	base := o.StepBreakdown.StepSeconds()
	return 100 * (base - o.OverlappedStepSeconds) / base
}

// ModelStepOverlapped models a step where gradient all-reduce chunks start
// as soon as their layer's backward completes. The last layer's gradients
// (the input-side stem, computed at the very end of backward) cannot be
// hidden; empirically ~10% of the payload must remain serialized, plus the
// α latency of the final chunk.
func ModelStepOverlapped(model string, cores, globalBatch, bnGroup int) (OverlapResult, error) {
	sb, err := ModelStep(model, cores, globalBatch, bnGroup)
	if err != nil {
		return OverlapResult{}, err
	}
	// Backward is ~2/3 of training compute; communication can hide under
	// it as long as bandwidth-time fits.
	backward := sb.ComputeSeconds * 2 / 3
	const tailFraction = 0.10 // stem gradients, not hideable
	hideable := sb.AllReduceSeconds * (1 - tailFraction)
	if hideable > backward {
		hideable = backward
	}
	res := OverlapResult{
		StepBreakdown:   sb,
		OverlapFraction: hideable / sb.AllReduceSeconds,
	}
	res.OverlappedStepSeconds = sb.StepSeconds() - hideable
	return res, nil
}
