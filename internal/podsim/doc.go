// Package podsim is the analytic TPU-v3 pod simulator that regenerates the
// paper's evaluation artifacts — Table 1 (throughput and all-reduce share),
// Table 2 (peak accuracies across optimizer/batch configurations) and
// Figure 1 (training time to peak accuracy versus slice size) — from a
// roofline step-time model plus a calibrated convergence model.
//
// Calibration contract (see DESIGN.md §5): the compute-utilization
// constants are fit once against the 128-core rows of Table 1 and the
// interconnect constants come from comm.TPUv3Links; every other slice size
// is then a prediction of the model, so the scaling behaviour (near-linear
// throughput, small flat all-reduce share) is emergent rather than copied.
// Accuracy constants in the convergence model are calibrated to Table 2 and
// clearly labelled as calibrated in EXPERIMENTS.md.
//
// Seams: ModelStepWith prices a step under any comm.Provider — the same
// value that wires the executable mini-scale collectives — so modelled and
// measured algorithms stay one artifact; StepBreakdown decomposes the step
// the way the telemetry subsystem decomposes real steps, and
// `podbench -validate` closes the loop by fitting the cost model to
// measured collectives and reporting the per-cell error.
//
// Paper: the whole evaluation section (§4) plus the overlap and hybrid
// model-parallel analyses (§5).
package podsim
