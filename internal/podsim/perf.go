package podsim

import (
	"fmt"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
	"effnetscale/internal/xla"
)

// StepBreakdown decomposes one modelled training step.
type StepBreakdown struct {
	Model        string
	Cores        int
	GlobalBatch  int
	PerCoreBatch int
	// ComputeSeconds is forward+backward math on the padded per-core batch.
	ComputeSeconds float64
	// AllReduceSeconds is the fp32 gradient all-reduce on the 2-D torus.
	AllReduceSeconds float64
	// BNSeconds is the per-step distributed batch-norm statistics traffic
	// (forward mean/var + backward correction sums) for the group size.
	BNSeconds float64
	// BNGroupSize used for the BN cost term.
	BNGroupSize int
}

// StepSeconds is the total modelled step time.
func (b StepBreakdown) StepSeconds() float64 {
	return b.ComputeSeconds + b.AllReduceSeconds + b.BNSeconds
}

// ThroughputImgPerMs is the Table 1 throughput metric.
func (b StepBreakdown) ThroughputImgPerMs() float64 {
	return float64(b.GlobalBatch) / b.StepSeconds() / 1000
}

// AllReducePct is Table 1's "Percent of time spent on All-Reduce".
func (b StepBreakdown) AllReducePct() float64 {
	return 100 * b.AllReduceSeconds / b.StepSeconds()
}

func mustSlice(cores int) topology.Slice {
	s, err := topology.SliceForCores(cores)
	if err != nil {
		panic(err)
	}
	return s
}

// ModelStep produces the step-time breakdown for a model on a slice with a
// global batch and BN group size (bnGroup ≤ 1 means local batch norm).
func ModelStep(model string, cores, globalBatch, bnGroup int) (StepBreakdown, error) {
	perf, err := PerfFor(model)
	if err != nil {
		return StepBreakdown{}, err
	}
	slice, err := topology.SliceForCores(cores)
	if err != nil {
		return StepBreakdown{}, err
	}
	perCore, err := xla.SplitBatch(globalBatch, cores)
	if err != nil {
		return StepBreakdown{}, err
	}
	padded := xla.PadBatch(perCore)
	b := StepBreakdown{
		Model:        model,
		Cores:        cores,
		GlobalBatch:  globalBatch,
		PerCoreBatch: perCore,
		BNGroupSize:  bnGroup,
	}
	b.ComputeSeconds = float64(padded) * perf.Stats.TrainFLOPsPerImg() / (PeakMACsPerCore * perf.Util)
	b.AllReduceSeconds = comm.Torus2DAllReduceSeconds(perf.Stats.GradBytes, slice, comm.TPUv3Links)
	if bnGroup > 1 {
		groups, gerr := topology.BNGroups(cores, bnGroup, slice)
		if gerr != nil {
			return StepBreakdown{}, gerr
		}
		diameter := topology.GroupDiameter(groups[0], slice)
		// Two stats reductions per step (forward mean/var, backward
		// correction sums), each carrying two float64 vectors over all BN
		// channels.
		statsBytes := 2 * perf.Stats.BNChannels * 8
		b.BNSeconds = 2 * comm.GroupAllReduceSeconds(statsBytes, bnGroup, diameter, comm.TPUv3Links)
	}
	return b, nil
}

// EvalSeconds models one distributed evaluation pass over the validation
// split: forward-only compute (1/3 of training FLOPs) sharded over all cores.
func EvalSeconds(model string, cores, valSize, perCoreBatch int) (float64, error) {
	perf, err := PerfFor(model)
	if err != nil {
		return 0, err
	}
	imgsPerCore := (valSize + cores - 1) / cores
	padded := xla.PadBatch(perCoreBatch)
	steps := (imgsPerCore + perCoreBatch - 1) / perCoreBatch
	perImg := perf.Stats.FLOPsPerImg / (PeakMACsPerCore * perf.Util)
	return float64(steps*padded) * perImg, nil
}

// Table1Row matches one row of the paper's Table 1.
type Table1Row struct {
	Model              string
	Cores              int
	GlobalBatch        int
	ThroughputImgPerMs float64
	AllReducePct       float64
}

// Table1Configs lists the paper's Table 1 configurations in order.
func Table1Configs() []struct {
	Model string
	Cores int
	Batch int
} {
	var out []struct {
		Model string
		Cores int
		Batch int
	}
	for _, model := range []string{"b2", "b5"} {
		for _, cores := range []int{128, 256, 512, 1024} {
			out = append(out, struct {
				Model string
				Cores int
				Batch int
			}{model, cores, cores * 32})
		}
	}
	return out
}

// Table1 reproduces the paper's Table 1 from the step-time model.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, c := range Table1Configs() {
		b, err := ModelStep(c.Model, c.Cores, c.Batch, 0)
		if err != nil {
			return nil, fmt.Errorf("podsim: table1 %s/%d: %w", c.Model, c.Cores, err)
		}
		rows = append(rows, Table1Row{
			Model:              c.Model,
			Cores:              c.Cores,
			GlobalBatch:        c.Batch,
			ThroughputImgPerMs: b.ThroughputImgPerMs(),
			AllReducePct:       b.AllReducePct(),
		})
	}
	return rows, nil
}
