package podsim

import (
	"fmt"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
	"effnetscale/internal/xla"
)

// StepBreakdown decomposes one modelled training step.
type StepBreakdown struct {
	Model        string
	Cores        int
	GlobalBatch  int
	PerCoreBatch int
	// ComputeSeconds is forward+backward math on the padded per-core batch.
	ComputeSeconds float64
	// AllReduceSeconds is the fp32 gradient all-reduce under the selected
	// collective algorithm.
	AllReduceSeconds float64
	// Algorithm is the collective algorithm charged for the gradient
	// all-reduce — the same name the executable comm.Collective reports, so
	// modelled and measured algorithms cannot drift apart.
	Algorithm string
	// BNSeconds is the per-step distributed batch-norm statistics traffic
	// (forward mean/var + backward correction sums) for the group size.
	BNSeconds float64
	// BNGroupSize used for the BN cost term.
	BNGroupSize int
}

// StepSeconds is the total modelled step time.
func (b StepBreakdown) StepSeconds() float64 {
	return b.ComputeSeconds + b.AllReduceSeconds + b.BNSeconds
}

// ThroughputImgPerMs is the Table 1 throughput metric.
func (b StepBreakdown) ThroughputImgPerMs() float64 {
	return float64(b.GlobalBatch) / b.StepSeconds() / 1000
}

// AllReducePct is Table 1's "Percent of time spent on All-Reduce".
func (b StepBreakdown) AllReducePct() float64 {
	return 100 * b.AllReduceSeconds / b.StepSeconds()
}

func mustSlice(cores int) topology.Slice {
	s, err := topology.SliceForCores(cores)
	if err != nil {
		panic(err)
	}
	return s
}

// ModelStep produces the step-time breakdown for a model on a slice with a
// global batch and BN group size (bnGroup ≤ 1 means local batch norm),
// charging the gradient all-reduce to the paper's hierarchical 2-D torus
// algorithm — the pod default. Use ModelStepWith to price a different
// collective.
func ModelStep(model string, cores, globalBatch, bnGroup int) (StepBreakdown, error) {
	return ModelStepWith(comm.Provider{}, model, cores, globalBatch, bnGroup)
}

// ModelStepWith is ModelStep under an explicit collective provider: the same
// comm.Provider value that wires executable mini-scale collectives prices
// the pod-scale step, so Table 1's all-reduce column and the algorithm the
// training engine runs stay one artifact. A zero provider selects the 2-D
// torus on the slice's chip grid.
func ModelStepWith(prov comm.Provider, model string, cores, globalBatch, bnGroup int) (StepBreakdown, error) {
	perf, err := PerfFor(model)
	if err != nil {
		return StepBreakdown{}, err
	}
	slice, err := topology.SliceForCores(cores)
	if err != nil {
		return StepBreakdown{}, err
	}
	if prov.IsZero() {
		prov = comm.Torus2DProvider(slice)
	}
	perCore, err := xla.SplitBatch(globalBatch, cores)
	if err != nil {
		return StepBreakdown{}, err
	}
	padded := xla.PadBatch(perCore)
	b := StepBreakdown{
		Model:        model,
		Cores:        cores,
		GlobalBatch:  globalBatch,
		PerCoreBatch: perCore,
		BNGroupSize:  bnGroup,
	}
	b.ComputeSeconds = float64(padded) * perf.Stats.TrainFLOPsPerImg() / (PeakMACsPerCore * perf.Util)
	// The all-reduce runs over the slice's chip grid (one torus node per
	// chip, its two cores contributing through shared HBM).
	b.AllReduceSeconds, b.Algorithm = prov.ModelAllReduce(perf.Stats.GradBytes, slice.Chips(), comm.TPUv3Links)
	if bnGroup > 1 {
		groups, gerr := topology.BNGroups(cores, bnGroup, slice)
		if gerr != nil {
			return StepBreakdown{}, gerr
		}
		diameter := topology.GroupDiameter(groups[0], slice)
		// Two stats reductions per step (forward mean/var, backward
		// correction sums), each carrying two float64 vectors over all BN
		// channels.
		statsBytes := 2 * perf.Stats.BNChannels * 8
		b.BNSeconds = 2 * comm.GroupAllReduceSeconds(statsBytes, bnGroup, diameter, comm.TPUv3Links)
	}
	return b, nil
}

// EvalSeconds models one distributed evaluation pass over the validation
// split: forward-only compute (1/3 of training FLOPs) sharded over all cores.
func EvalSeconds(model string, cores, valSize, perCoreBatch int) (float64, error) {
	perf, err := PerfFor(model)
	if err != nil {
		return 0, err
	}
	imgsPerCore := (valSize + cores - 1) / cores
	padded := xla.PadBatch(perCoreBatch)
	steps := (imgsPerCore + perCoreBatch - 1) / perCoreBatch
	perImg := perf.Stats.FLOPsPerImg / (PeakMACsPerCore * perf.Util)
	return float64(steps*padded) * perImg, nil
}

// Table1Row matches one row of the paper's Table 1, plus the collective
// algorithm the all-reduce column was charged to.
type Table1Row struct {
	Model              string
	Cores              int
	GlobalBatch        int
	Algorithm          string
	ThroughputImgPerMs float64
	AllReducePct       float64
}

// Table1Configs lists the paper's Table 1 configurations in order.
func Table1Configs() []struct {
	Model string
	Cores int
	Batch int
} {
	var out []struct {
		Model string
		Cores int
		Batch int
	}
	for _, model := range []string{"b2", "b5"} {
		for _, cores := range []int{128, 256, 512, 1024} {
			out = append(out, struct {
				Model string
				Cores int
				Batch int
			}{model, cores, cores * 32})
		}
	}
	return out
}

// Table1 reproduces the paper's Table 1 from the step-time model, charging
// the all-reduce to the pod's hierarchical 2-D torus algorithm.
func Table1() ([]Table1Row, error) {
	return Table1With("torus2d")
}

// Table1With reproduces Table 1 with the gradient all-reduce priced under
// the named collective (ring, tree, torus2d, auto), built per row against
// that row's slice geometry — the same provider names train.WithCollective
// and podbench accept.
func Table1With(collective string) ([]Table1Row, error) {
	var rows []Table1Row
	for _, c := range Table1Configs() {
		slice, err := topology.SliceForCores(c.Cores)
		if err != nil {
			return nil, fmt.Errorf("podsim: table1 %s/%d: %w", c.Model, c.Cores, err)
		}
		prov, err := comm.ProviderByName(collective, slice)
		if err != nil {
			return nil, fmt.Errorf("podsim: table1: %w", err)
		}
		b, err := ModelStepWith(prov, c.Model, c.Cores, c.Batch, 0)
		if err != nil {
			return nil, fmt.Errorf("podsim: table1 %s/%d: %w", c.Model, c.Cores, err)
		}
		rows = append(rows, Table1Row{
			Model:              c.Model,
			Cores:              c.Cores,
			GlobalBatch:        c.Batch,
			Algorithm:          b.Algorithm,
			ThroughputImgPerMs: b.ThroughputImgPerMs(),
			AllReducePct:       b.AllReducePct(),
		})
	}
	return rows, nil
}
