package podsim

import (
	"math"
	"testing"
)

func TestHybridDegeneratesToDataParallel(t *testing.T) {
	// M=1 must reproduce the pure data-parallel step exactly.
	dp, err := ModelStep("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HybridModelStep("b2", 1024, 32768, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.ActExchangeSeconds != 0 {
		t.Fatal("M=1 must have no activation exchange")
	}
	if math.Abs(h.StepSeconds()-dp.StepSeconds()) > 1e-12 {
		t.Fatalf("M=1 step %v != data-parallel step %v", h.StepSeconds(), dp.StepSeconds())
	}
}

func TestHybridShrinksMinimumBatch(t *testing.T) {
	// §2: full pod needs batch 16384 with pure data parallelism; §5's
	// motivation is that M model shards divide that by M.
	if MinGlobalBatch(2048, 1) != 16384 {
		t.Fatalf("MinGlobalBatch(2048,1) = %d", MinGlobalBatch(2048, 1))
	}
	if MinGlobalBatch(2048, 4) != 4096 {
		t.Fatalf("MinGlobalBatch(2048,4) = %d", MinGlobalBatch(2048, 4))
	}
}

func TestHybridTradeoff(t *testing.T) {
	rows, err := HybridSweep("b5", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sweep has %d rows", len(rows))
	}
	// Batch shrinks with M; activation-exchange share grows with M.
	for i := 1; i < len(rows); i++ {
		if rows[i].GlobalBatch >= rows[i-1].GlobalBatch {
			t.Errorf("M=%d batch %d not smaller than M=%d's %d",
				rows[i].ModelShards, rows[i].GlobalBatch, rows[i-1].ModelShards, rows[i-1].GlobalBatch)
		}
		if rows[i].ActExchangePct <= rows[i-1].ActExchangePct {
			t.Errorf("activation-exchange share must grow with M: M=%d %.2f%% vs M=%d %.2f%%",
				rows[i].ModelShards, rows[i].ActExchangePct, rows[i-1].ModelShards, rows[i-1].ActExchangePct)
		}
	}
	// The overhead must be material but not absurd.
	last := rows[len(rows)-1]
	if last.ActExchangePct <= 0 || last.ActExchangePct >= 95 {
		t.Fatalf("M=8 exchange share %.2f%% implausible", last.ActExchangePct)
	}
}

func TestHybridValidation(t *testing.T) {
	if _, err := HybridModelStep("b2", 1024, 32768, 3); err == nil {
		t.Error("non-dividing model shards must error")
	}
	if _, err := HybridModelStep("b2", 1024, 32768, 0); err == nil {
		t.Error("zero model shards must error")
	}
	if _, err := HybridModelStep("nope", 1024, 32768, 2); err == nil {
		t.Error("unknown model must error")
	}
}
