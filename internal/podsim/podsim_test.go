package podsim

import (
	"math"
	"testing"
)

func TestCalibrationReproduces128CoreAnchors(t *testing.T) {
	// The 128-core Table 1 rows are the calibration anchors: the model must
	// reproduce them (nearly) exactly.
	for _, model := range []string{"b2", "b5"} {
		b, err := ModelStep(model, 128, 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := anchors128[model].throughputImgPerMs
		if rel := math.Abs(b.ThroughputImgPerMs()-want) / want; rel > 0.001 {
			t.Errorf("%s @128: modelled %.2f img/ms, anchor %.2f", model, b.ThroughputImgPerMs(), want)
		}
	}
}

func TestTable1PredictionsMatchPaperShape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperTable1) {
		t.Fatalf("got %d rows, want %d", len(rows), len(PaperTable1))
	}
	for i, r := range rows {
		p := PaperTable1[i]
		if r.Model != p.Model || r.Cores != p.Cores || r.GlobalBatch != p.GlobalBatch {
			t.Fatalf("row %d config mismatch: %+v vs %+v", i, r, p)
		}
		// Throughput within 10% of the paper at every slice size — the
		// 256/512/1024 rows are predictions, not calibrations.
		if rel := math.Abs(r.ThroughputImgPerMs-p.ThroughputImgPerMs) / p.ThroughputImgPerMs; rel > 0.10 {
			t.Errorf("%s @%d: throughput %.2f vs paper %.2f (off %.1f%%)", r.Model, r.Cores, r.ThroughputImgPerMs, p.ThroughputImgPerMs, rel*100)
		}
		// All-reduce share small and in the paper's ballpark (within 2x,
		// and < 5% absolute) — the column is noisy in the paper itself.
		if r.AllReducePct <= 0 || r.AllReducePct > 5 {
			t.Errorf("%s @%d: all-reduce %.2f%% implausible", r.Model, r.Cores, r.AllReducePct)
		}
		if r.AllReducePct > 2.5*p.AllReducePct || r.AllReducePct < p.AllReducePct/2.5 {
			t.Errorf("%s @%d: all-reduce %.2f%% vs paper %.2f%%", r.Model, r.Cores, r.AllReducePct, p.AllReducePct)
		}
	}
	// Scaling shape: throughput ~doubles per doubling of cores.
	for _, base := range []int{0, 4} { // b2 rows start at 0, b5 at 4
		for i := 1; i < 4; i++ {
			ratio := rows[base+i].ThroughputImgPerMs / rows[base+i-1].ThroughputImgPerMs
			if ratio < 1.85 || ratio > 2.05 {
				t.Errorf("%s: scaling %d->%d cores gives ratio %.3f, want ≈2",
					rows[base+i].Model, rows[base+i-1].Cores, rows[base+i].Cores, ratio)
			}
		}
	}
	// B5 spends a smaller fraction on all-reduce than B2 (more compute per
	// parameter), as in the paper.
	if rows[4].AllReducePct >= rows[0].AllReducePct {
		t.Errorf("B5 all-reduce share (%.2f%%) must be below B2's (%.2f%%)", rows[4].AllReducePct, rows[0].AllReducePct)
	}
}

func TestTable2MatchesPaperAccuracies(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperTable2) {
		t.Fatalf("got %d rows, want %d", len(rows), len(PaperTable2))
	}
	for i, r := range rows {
		if d := math.Abs(r.PeakAcc - PaperTable2[i]); d > 0.0035 {
			t.Errorf("row %d (%s %s batch %d): modelled %.4f vs paper %.3f (|Δ| = %.4f)",
				i, r.Model, r.Optimizer, r.GlobalBatch, r.PeakAcc, PaperTable2[i], d)
		}
	}
}

func TestHeadline83PercentPreserved(t *testing.T) {
	// The paper's headline: B5, batch 65536, LARS → 83.0% top-1.
	acc, err := PeakAccuracy(TrainConfig{
		Model: "b5", Optimizer: "lars", GlobalBatch: 65536,
		LRPer256: 0.081, Decay: "polynomial", WarmupEpochs: 43, Epochs: 350,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.828 || acc > 0.833 {
		t.Fatalf("headline B5@65536 accuracy = %.4f, want ≈0.830", acc)
	}
}

func TestRMSPropLARSCrossover(t *testing.T) {
	// Who wins: RMSProp at ≤16384, LARS above — the paper's §3.1 story.
	mk := func(opt string, batch int) float64 {
		cfg := TrainConfig{Model: "b5", Optimizer: opt, GlobalBatch: batch, Epochs: 350}
		if opt == "rmsprop" {
			cfg.LRPer256, cfg.Decay, cfg.WarmupEpochs = 0.016, "exponential", 5
		} else {
			cfg.LRPer256, cfg.Decay, cfg.WarmupEpochs = tunedLRPer256("lars", batch), "polynomial", 50
		}
		acc, err := PeakAccuracy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	if mk("rmsprop", 16384) <= mk("lars", 16384) {
		t.Error("at batch 16384 RMSProp should still edge out LARS (Table 2)")
	}
	if mk("rmsprop", 32768) >= mk("lars", 32768) {
		t.Error("at batch 32768 LARS must beat RMSProp (the paper's motivation)")
	}
	if mk("rmsprop", 65536) >= mk("lars", 65536) {
		t.Error("at batch 65536 LARS must beat RMSProp decisively")
	}
}

func TestScheduleAndLRPenalties(t *testing.T) {
	good := TrainConfig{Model: "b2", Optimizer: "lars", GlobalBatch: 32768, LRPer256: 0.118, Decay: "polynomial", WarmupEpochs: 50, Epochs: 350}
	base, _ := PeakAccuracy(good)

	wrongDecay := good
	wrongDecay.Decay = "exponential"
	if a, _ := PeakAccuracy(wrongDecay); a >= base {
		t.Error("exponential decay with LARS must score below polynomial (§3.2)")
	}
	badLR := good
	badLR.LRPer256 = 0.118 * 8
	if a, _ := PeakAccuracy(badLR); a >= base {
		t.Error("8x-mistuned LR must lose accuracy")
	}
	shortWarmup := good
	shortWarmup.WarmupEpochs = 2
	if a, _ := PeakAccuracy(shortWarmup); a >= base {
		t.Error("too-short warmup at batch 32768 must lose accuracy (§3.2)")
	}
}

func TestFigure1HeadlinesAndMonotonicity(t *testing.T) {
	pts, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 { // 4 slices × 2 models + headline 65536 point
		t.Fatalf("Figure 1 has %d points, want 9", len(pts))
	}
	var b2At1024, b5At65536 *Fig1Point
	for i := range pts {
		p := &pts[i]
		if p.MinutesToPeak <= 0 {
			t.Fatalf("non-positive time for %+v", p)
		}
		if p.Model == "b2" && p.Cores == 1024 {
			b2At1024 = p
		}
		if p.Model == "b5" && p.GlobalBatch == 65536 {
			b5At65536 = p
		}
	}
	// Headline checks, within 25% of the paper's wall-clock numbers.
	if b2At1024 == nil || b5At65536 == nil {
		t.Fatal("missing headline points")
	}
	if rel := math.Abs(b2At1024.MinutesToPeak-PaperHeadlines.B2MinutesTo797) / PaperHeadlines.B2MinutesTo797; rel > 0.25 {
		t.Errorf("B2@1024 time = %.1f min, paper %.0f min (off %.0f%%)", b2At1024.MinutesToPeak, PaperHeadlines.B2MinutesTo797, rel*100)
	}
	if rel := math.Abs(b5At65536.MinutesToPeak-PaperHeadlines.B5MinutesTo830) / PaperHeadlines.B5MinutesTo830; rel > 0.25 {
		t.Errorf("B5@65536 time = %.1f min, paper %.0f min (off %.0f%%)", b5At65536.MinutesToPeak, PaperHeadlines.B5MinutesTo830, rel*100)
	}
	if b2At1024.PeakAcc < 0.79 {
		t.Errorf("B2@1024 peak %.4f, want ≈0.797", b2At1024.PeakAcc)
	}
	// More cores → strictly less time, per model at per-core batch 32.
	for _, model := range []string{"b2", "b5"} {
		var prev float64
		for _, cores := range []int{128, 256, 512, 1024} {
			for _, p := range pts {
				if p.Model == model && p.Cores == cores && p.GlobalBatch == cores*32 {
					if prev > 0 && p.MinutesToPeak >= prev {
						t.Errorf("%s: time did not shrink from %d to %d cores", model, cores/2, cores)
					}
					prev = p.MinutesToPeak
				}
			}
		}
	}
}

func TestModelStepValidation(t *testing.T) {
	if _, err := ModelStep("b2", 100, 3200, 0); err == nil {
		t.Error("non-standard core count must error")
	}
	if _, err := ModelStep("b2", 128, 1000, 0); err == nil {
		t.Error("non-dividing batch must error")
	}
	if _, err := ModelStep("b9", 128, 4096, 0); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := PeakAccuracy(TrainConfig{Model: "b0", Optimizer: "rmsprop", GlobalBatch: 4096}); err == nil {
		t.Error("uncalibrated model must error in convergence model")
	}
	if _, err := PeakAccuracy(TrainConfig{Model: "b2", Optimizer: "sgd", GlobalBatch: 4096}); err == nil {
		t.Error("uncovered optimizer must error in convergence model")
	}
}

func TestDistributedBNCostSmallButPresent(t *testing.T) {
	with, err := ModelStep("b2", 1024, 32768, 64)
	if err != nil {
		t.Fatal(err)
	}
	without, err := ModelStep("b2", 1024, 32768, 0)
	if err != nil {
		t.Fatal(err)
	}
	if with.BNSeconds <= 0 {
		t.Fatal("BN group cost must be positive")
	}
	if without.BNSeconds != 0 {
		t.Fatal("local BN must be free")
	}
	// §3.4: the trade-off is real but small relative to the step.
	if with.BNSeconds > 0.1*with.StepSeconds() {
		t.Fatalf("BN cost %.4fs is implausibly large vs step %.4fs", with.BNSeconds, with.StepSeconds())
	}
}

func TestBatchEfficiency(t *testing.T) {
	if batchEfficiency(32) != 1 {
		t.Error("batch 32 is the calibration reference: efficiency 1")
	}
	if e := batchEfficiency(64); e <= 1 || e > 2 {
		t.Errorf("batch 64 efficiency = %v, want in (1, 2]", e)
	}
	if batchEfficiency(8) != 1 {
		t.Error("sub-32 batches must not get a bonus")
	}
}

func TestAccuracyTrajectoryMonotone(t *testing.T) {
	cfg := TrainConfig{Model: "b5", Optimizer: "lars", GlobalBatch: 65536, LRPer256: 0.081, Decay: "polynomial", WarmupEpochs: 43, Epochs: 350}
	var prev float64
	for e := 0.0; e <= 360; e += 10 {
		acc, err := AccuracyAtEpoch(cfg, e)
		if err != nil {
			t.Fatal(err)
		}
		if acc < prev-1e-12 {
			t.Fatalf("trajectory decreased at epoch %v: %v -> %v", e, prev, acc)
		}
		prev = acc
	}
	peak, _ := PeakAccuracy(cfg)
	if math.Abs(prev-peak) > 1e-9 {
		t.Fatalf("trajectory end %v != peak %v", prev, peak)
	}
}
