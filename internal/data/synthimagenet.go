package data

import (
	"math"
	"math/rand"

	"effnetscale/internal/parallel"
	"effnetscale/internal/tensor"
)

// ImageNet canonical split sizes.
const (
	ImageNetTrainSize  = 1281167
	ImageNetValSize    = 50000
	ImageNetNumClasses = 1000
)

// Config parameterizes a SynthImageNet instance.
type Config struct {
	NumClasses int
	TrainSize  int
	ValSize    int
	Resolution int
	// NoiseStd is the per-pixel Gaussian corruption; higher is harder.
	NoiseStd float64
	// Seed fixes the entire dataset deterministically.
	Seed int64
}

// ImageNetConfig returns the full-size virtual dataset at the given
// resolution (what the pod-scale simulation accounts against).
func ImageNetConfig(resolution int) Config {
	return Config{
		NumClasses: ImageNetNumClasses,
		TrainSize:  ImageNetTrainSize,
		ValSize:    ImageNetValSize,
		Resolution: resolution,
		NoiseStd:   0.25,
		Seed:       1,
	}
}

// MiniConfig returns a small, quickly learnable dataset for real CPU
// training in tests and examples.
func MiniConfig(numClasses, trainSize, resolution int) Config {
	return Config{
		NumClasses: numClasses,
		TrainSize:  trainSize,
		ValSize:    trainSize / 4,
		Resolution: resolution,
		NoiseStd:   0.25,
		Seed:       1,
	}
}

// classProto holds the procedural parameters defining one class.
type classProto struct {
	theta   float64    // texture orientation
	freq    float64    // texture frequency (cycles per image)
	phase   [3]float64 // per-channel phase
	amp     [3]float64 // per-channel texture amplitude
	blobX   float64    // blob center (relative)
	blobY   float64
	blobSig float64    // blob width (relative)
	blobCol [3]float64 // blob color
}

// Dataset is a deterministic synthetic image-classification dataset.
type Dataset struct {
	cfg    Config
	protos []classProto
}

// New builds the dataset, materializing only the per-class prototypes.
func New(cfg Config) *Dataset {
	if cfg.NumClasses < 2 {
		panic("data: need at least 2 classes")
	}
	if cfg.Resolution < 8 {
		panic("data: resolution must be >= 8")
	}
	d := &Dataset{cfg: cfg, protos: make([]classProto, cfg.NumClasses)}
	for c := range d.protos {
		rng := rand.New(rand.NewSource(cfg.Seed*1e9 + int64(c)))
		p := &d.protos[c]
		p.theta = rng.Float64() * math.Pi
		p.freq = 2 + rng.Float64()*4
		for k := 0; k < 3; k++ {
			p.phase[k] = rng.Float64() * 2 * math.Pi
			p.amp[k] = 0.4 + rng.Float64()*0.6
			p.blobCol[k] = 1.5 * (1 - 2*rng.Float64())
		}
		p.blobX = 0.25 + 0.5*rng.Float64()
		p.blobY = 0.25 + 0.5*rng.Float64()
		p.blobSig = 0.15 + 0.15*rng.Float64()
	}
	return d
}

// Config returns the dataset configuration.
func (d *Dataset) Config() Config { return d.cfg }

// TrainLabel returns the label of training image idx. Labels cycle through
// classes so every shard sees a balanced class mix.
func (d *Dataset) TrainLabel(idx int) int { return idx % d.cfg.NumClasses }

// ValLabel returns the label of validation image idx.
func (d *Dataset) ValLabel(idx int) int { return idx % d.cfg.NumClasses }

// sampleSeed derives the per-image RNG seed. split 0=train, 1=val.
func (d *Dataset) sampleSeed(split, idx int) int64 {
	return d.cfg.Seed*1e12 + int64(split)*1e10 + int64(idx)
}

// Render synthesizes image idx of the given split (0=train, 1=val) into dst,
// a [3, R, R] slice of a batch tensor's storage, and returns the label.
// Pixels are approximately zero-mean with unit-order variance.
func (d *Dataset) Render(split, idx int, dst []float32) int {
	r := d.cfg.Resolution
	if len(dst) != 3*r*r {
		panic("data: Render destination has wrong size")
	}
	label := idx % d.cfg.NumClasses
	p := &d.protos[label]
	rng := rand.New(rand.NewSource(d.sampleSeed(split, idx)))

	// Per-image intrinsic variation: translation, frequency jitter and
	// amplitude jitter — the "pose" variance a real dataset would have.
	dx := (rng.Float64() - 0.5) * 0.12
	dy := (rng.Float64() - 0.5) * 0.12
	freq := p.freq * (0.95 + 0.1*rng.Float64())
	ampJit := 0.9 + 0.2*rng.Float64()

	ct, st := math.Cos(p.theta), math.Sin(p.theta)
	bx, by := p.blobX+dx, p.blobY+dy
	inv2sig2 := 1 / (2 * p.blobSig * p.blobSig)
	noise := d.cfg.NoiseStd

	for y := 0; y < r; y++ {
		fy := float64(y)/float64(r) + dy
		for x := 0; x < r; x++ {
			fx := float64(x)/float64(r) + dx
			t := 2 * math.Pi * freq * (fx*ct + fy*st)
			gx := float64(x)/float64(r) - bx
			gy := float64(y)/float64(r) - by
			blob := math.Exp(-(gx*gx + gy*gy) * inv2sig2)
			for k := 0; k < 3; k++ {
				v := ampJit*p.amp[k]*math.Sin(t+p.phase[k]) + p.blobCol[k]*blob
				v += rng.NormFloat64() * noise
				dst[k*r*r+y*r+x] = float32(v)
			}
		}
	}
	return label
}

// FillBatch renders the images with the given indices of a split into batch
// (shape [N,3,R,R]) and writes their labels. len(indices) must equal
// len(labels) and must not exceed N; a shorter index list renders a ragged
// prefix and leaves the batch tail untouched. Samples render in parallel
// (each image is an independent, per-sample-seeded computation, so the
// result is deterministic regardless of scheduling).
func (d *Dataset) FillBatch(split int, indices []int, batch *tensor.Tensor, labels []int) {
	n, c, h, w := batch.Dim4()
	if c != 3 || h != d.cfg.Resolution || w != d.cfg.Resolution {
		panic("data: FillBatch tensor shape mismatch")
	}
	if len(indices) != len(labels) || len(indices) > n {
		panic("data: FillBatch index/label length mismatch")
	}
	img := 3 * h * w
	parallel.ForChunked(len(indices), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			labels[i] = d.Render(split, indices[i], batch.Data()[i*img:(i+1)*img])
		}
	})
}

// Augment applies random horizontal flips and ±shift crops in place to a
// training batch. rng drives the randomness (per replica, seeded).
func Augment(batch *tensor.Tensor, rng *rand.Rand) {
	n, c, h, w := batch.Dim4()
	plane := h * w
	tmp := make([]float32, plane)
	for s := 0; s < n; s++ {
		flip := rng.Intn(2) == 1
		shiftX := rng.Intn(5) - 2 // ±2 pixel jitter
		shiftY := rng.Intn(5) - 2
		for ch := 0; ch < c; ch++ {
			pl := batch.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			copy(tmp, pl)
			for y := 0; y < h; y++ {
				sy := y + shiftY
				if sy < 0 {
					sy = 0
				} else if sy >= h {
					sy = h - 1
				}
				for x := 0; x < w; x++ {
					sx := x + shiftX
					if sx < 0 {
						sx = 0
					} else if sx >= w {
						sx = w - 1
					}
					v := tmp[sy*w+sx]
					if flip {
						pl[y*w+(w-1-x)] = v
					} else {
						pl[y*w+x] = v
					}
				}
			}
		}
	}
}
