package data

import (
	"math/rand"
	"testing"

	"effnetscale/internal/tensor"
)

func newTestPipeline(t *testing.T, cfg PipelineConfig) *Pipeline {
	t.Helper()
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineMatchesInline(t *testing.T) {
	// The prefetched stream must be bit-for-bit the sequence the inline path
	// produces: same indices per (epoch, step), same augmentation RNG
	// consumption order — the invariant that lets replica turn prefetching
	// on by default without changing any loss trajectory.
	d := miniDataset()
	const bs, stepsPerEpoch, seed = 4, 3, 7
	p := newTestPipeline(t, PipelineConfig{
		Shard: NewShard(d, 0, 1, 2), BatchSize: bs, StepsPerEpoch: stepsPerEpoch,
		Depth: 2, Augment: true, AugmentSeed: seed,
	})
	defer p.Stop()

	inlineShard := NewShard(d, 0, 1, 2)
	rng := rand.New(rand.NewSource(seed))
	want := tensor.New(bs, 3, 16, 16)
	wantLabels := make([]int, bs)
	for i := 0; i < 2*stepsPerEpoch+2; i++ { // crosses an epoch boundary
		epoch, step := i/stepsPerEpoch, i%stepsPerEpoch
		inlineShard.FillBatch(epoch, step, want, wantLabels)
		Augment(want, rng)

		b, ok := p.Next()
		if !ok {
			t.Fatalf("pipeline closed at batch %d", i)
		}
		if b.Epoch != epoch || b.Step != step || b.N != bs {
			t.Fatalf("batch %d: got (%d,%d,N=%d), want (%d,%d,N=%d)", i, b.Epoch, b.Step, b.N, epoch, step, bs)
		}
		for j := range wantLabels {
			if b.Labels[j] != wantLabels[j] {
				t.Fatalf("batch %d label %d: %d vs inline %d", i, j, b.Labels[j], wantLabels[j])
			}
		}
		for j, v := range want.Data() {
			if b.Images.Data()[j] != v {
				t.Fatalf("batch %d pixel %d differs from inline path", i, j)
			}
		}
		p.Recycle(b)
	}
}

func TestPipelineResumeCursorMatchesContinuousStream(t *testing.T) {
	// A pipeline restarted mid-stream from (StartEpoch, StartStep, AugDraws)
	// must deliver exactly the batches the original pipeline would have
	// delivered next — pixels, labels and augmentation included. This is the
	// data-side half of killed-at-step-k training resume.
	d := miniDataset()
	const bs, stepsPerEpoch, seed = 4, 3, 11
	mk := func(startEpoch, startStep int, augDraws uint64) *Pipeline {
		return newTestPipeline(t, PipelineConfig{
			Shard: NewShard(d, 0, 0, 2), BatchSize: bs, StepsPerEpoch: stepsPerEpoch,
			Depth: 2, Augment: true, AugmentSeed: seed,
			StartEpoch: startEpoch, StartStep: startStep, AugDraws: augDraws,
		})
	}
	full := mk(0, 0, 0)
	defer full.Stop()

	// Consume 4 batches (one past the epoch boundary at 3) and record the
	// cursor the consumer would snapshot: mid-epoch interruption.
	var draws uint64
	for i := 0; i < 4; i++ {
		b, ok := full.Next()
		if !ok {
			t.Fatal("pipeline closed early")
		}
		draws = b.AugDraws
		if draws == 0 {
			t.Fatal("AugDraws not stamped")
		}
		full.Recycle(b)
	}
	resumed := mk(1, 1, draws) // micro position 4 = epoch 1, step 1
	defer resumed.Stop()
	for i := 4; i < 9; i++ {
		want, ok := full.Next()
		if !ok {
			t.Fatal("continuous pipeline closed early")
		}
		got, ok := resumed.Next()
		if !ok {
			t.Fatal("resumed pipeline closed early")
		}
		if got.Epoch != want.Epoch || got.Step != want.Step || got.AugDraws != want.AugDraws {
			t.Fatalf("batch %d: resumed (%d,%d,%d) vs continuous (%d,%d,%d)",
				i, got.Epoch, got.Step, got.AugDraws, want.Epoch, want.Step, want.AugDraws)
		}
		for j := range want.Labels {
			if got.Labels[j] != want.Labels[j] {
				t.Fatalf("batch %d label %d differs after resume", i, j)
			}
		}
		for j, v := range want.Images.Data() {
			if got.Images.Data()[j] != v {
				t.Fatalf("batch %d pixel %d differs after resume", i, j)
			}
		}
		full.Recycle(want)
		resumed.Recycle(got)
	}
}

func TestPipelineRejectsBadStartPosition(t *testing.T) {
	d := miniDataset()
	_, err := NewPipeline(PipelineConfig{
		Shard: NewShard(d, 0, 0, 1), BatchSize: 2, StepsPerEpoch: 3, StartStep: 3,
	})
	if err == nil {
		t.Fatal("StartStep >= StepsPerEpoch must error")
	}
	_, err = NewPipeline(PipelineConfig{
		Shard: NewShard(d, 0, 0, 1), BatchSize: 2, StepsPerEpoch: 3, StartEpoch: -1,
	})
	if err == nil {
		t.Fatal("negative StartEpoch must error")
	}
}

func TestPipelineStopBlocksUntilProducerExits(t *testing.T) {
	d := miniDataset()
	p := newTestPipeline(t, PipelineConfig{
		Shard: NewShard(d, 0, 0, 1), BatchSize: 4, StepsPerEpoch: 3, Depth: 2,
	})
	b, ok := p.Next()
	if !ok {
		t.Fatal("pipeline closed immediately")
	}
	p.Recycle(b)
	p.Stop()
	// After Stop: the producer has exited, C is closed, and the buffered
	// batches were drained back into the pool.
	select {
	case <-p.done:
	default:
		t.Fatal("Stop returned before the producer goroutine exited")
	}
	if _, ok := p.Next(); ok {
		t.Fatal("C delivered a batch after Stop drained and closed it")
	}
	if got := len(p.pool.ch); got != p.cfg.Depth+1 {
		t.Fatalf("pool holds %d buffers after Stop, want all %d back", got, p.cfg.Depth+1)
	}
	p.Stop() // idempotent
}

func TestPipelineFiniteRaggedRun(t *testing.T) {
	// MaxSamples=10 at batch 4 must deliver batches of N=4,4,2 and close.
	// The ragged tail is never rendered: with a fresh (zeroed) pool big
	// enough to avoid reuse, the last batch's tail pixels stay zero.
	d := miniDataset()
	p := newTestPipeline(t, PipelineConfig{
		Shard: NewShard(d, 1, 0, 1), BatchSize: 4, StepsPerEpoch: 3,
		Depth: 3, MaxSamples: 10,
	})
	defer p.Stop()
	wantN := []int{4, 4, 2}
	img := 3 * 16 * 16
	for i, n := range wantN {
		b, ok := p.Next()
		if !ok {
			t.Fatalf("pipeline closed after %d batches, want %d", i, len(wantN))
		}
		if b.N != n || b.Epoch != 0 || b.Step != i {
			t.Fatalf("batch %d: (epoch %d, step %d, N %d), want (0, %d, %d)", i, b.Epoch, b.Step, b.N, i, n)
		}
		for s := 0; s < b.N; s++ {
			nonzero := false
			for _, v := range b.Images.Data()[s*img : (s+1)*img] {
				if v != 0 {
					nonzero = true
					break
				}
			}
			if !nonzero {
				t.Fatalf("batch %d sample %d not rendered", i, s)
			}
		}
		for s := b.N; s < 4; s++ {
			for _, v := range b.Images.Data()[s*img : (s+1)*img] {
				if v != 0 {
					t.Fatalf("batch %d: discarded tail sample %d was rendered", i, s)
				}
			}
		}
		p.Recycle(b)
	}
	if _, ok := p.Next(); ok {
		t.Fatal("finite pipeline delivered more batches than MaxSamples allows")
	}
}

func TestPipelineSharedPoolReuse(t *testing.T) {
	// Successive finite pipelines over a shared pool — the evaluation
	// pattern — must keep working and return every buffer by the end.
	d := miniDataset()
	pool := NewBufferPool(3, 4, 16)
	for call := 0; call < 3; call++ {
		p := newTestPipeline(t, PipelineConfig{
			Shard: NewShard(d, 1, 0, 2), BatchSize: 4, StepsPerEpoch: 2,
			Depth: 2, MaxSamples: 7, Pool: pool,
		})
		got := 0
		for {
			b, ok := p.Next()
			if !ok {
				break
			}
			got += b.N
			p.Recycle(b)
		}
		p.Stop()
		if got != 7 {
			t.Fatalf("call %d: scored %d samples, want 7", call, got)
		}
		if len(pool.ch) != 3 {
			t.Fatalf("call %d: pool holds %d buffers, want 3", call, len(pool.ch))
		}
	}
}

func TestPipelineRejectsEmptyShard(t *testing.T) {
	d := miniDataset()
	if _, err := NewPipeline(PipelineConfig{
		Shard: NewShard(d, 1, 99, 100), BatchSize: 4, StepsPerEpoch: 1, Depth: 1,
	}); err == nil {
		t.Fatal("pipeline over an empty shard must error")
	}
}
