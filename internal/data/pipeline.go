package data

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"effnetscale/internal/rng"
	"effnetscale/internal/tensor"
)

// Batch is one prefetched unit of work flowing through a Pipeline. Its
// tensors come from a bounded BufferPool; the consumer must hand a delivered
// batch back with Pipeline.Recycle once it is done reading, which is what
// keeps the pipeline allocation-free in steady state.
type Batch struct {
	Images *tensor.Tensor
	Labels []int
	Epoch  int
	Step   int
	// N is the number of valid samples. A ragged final evaluation batch has
	// N < Images.Dim(0): only the first N samples were rendered (the
	// wrap-around tail is never drawn), and entries past N are stale.
	N int
	// AugDraws is the cumulative augmentation-RNG position (rng.Stream
	// draws since AugmentSeed) after this batch was augmented — the
	// data-pipeline cursor a training snapshot records. The producer runs
	// ahead of the consumer, so the live stream's position belongs to
	// batches not yet consumed; the per-batch stamp is the position as of
	// what the consumer has actually seen. 0 when augmentation is off.
	AugDraws uint64

	// pooled tracks whether the batch currently sits in its BufferPool's
	// free list, so a double Recycle fails loudly instead of silently
	// aliasing one buffer to two holders.
	pooled bool
}

// BufferPool is a bounded free list of batch buffers. A pool may be shared
// across successive pipelines of identical batch geometry (the per-replica
// evaluation prefetchers reuse one pool across Evaluate calls), so batch
// tensors are allocated once per replica, not once per step or per call.
type BufferPool struct {
	ch chan *Batch
}

// NewBufferPool pre-allocates n batch buffers of shape
// [batchSize, 3, resolution, resolution].
func NewBufferPool(n, batchSize, resolution int) *BufferPool {
	p := &BufferPool{ch: make(chan *Batch, n)}
	for i := 0; i < n; i++ {
		p.ch <- &Batch{
			Images: tensor.New(batchSize, 3, resolution, resolution),
			Labels: make([]int, batchSize),
			pooled: true,
		}
	}
	return p
}

// Get blocks until a free buffer is available, returning nil if stop closes
// first (nil stop never aborts). Direct consumers — the inference batcher
// runs forwards over pooled batch tensors without a Pipeline in front — pair
// each Get with a Put; batches delivered by a Pipeline are returned via
// Pipeline.Recycle instead.
func (p *BufferPool) Get(stop <-chan struct{}) *Batch { return p.get(stop) }

// Put hands a buffer obtained via Get back to the pool. Putting a batch
// twice, or a batch from another pool, panics — the double-free would alias
// one buffer to two holders.
func (p *BufferPool) Put(b *Batch) { p.put(b) }

// get blocks until a free buffer is available or stop closes.
func (p *BufferPool) get(stop <-chan struct{}) *Batch {
	select {
	case b := <-p.ch:
		b.pooled = false
		return b
	case <-stop:
		return nil
	}
}

// put returns a buffer to the pool. The pool is sized to hold every buffer
// it handed out, so the send never blocks; a batch recycled twice (which
// would alias one buffer to two holders — the producer overwriting pixels
// another consumer is still reading) panics instead of corrupting data.
func (p *BufferPool) put(b *Batch) {
	if b.pooled {
		panic("data: batch recycled twice")
	}
	b.pooled = true
	select {
	case p.ch <- b:
	default:
		panic("data: buffer pool overflow (batch from another pool?)")
	}
}

// PipelineConfig assembles a prefetching input pipeline over one shard.
type PipelineConfig struct {
	// Shard supplies the sample indices and rendering; it must be non-empty
	// and must not be used by anyone else while the pipeline runs (Shard is
	// not safe for concurrent use).
	Shard *Shard
	// BatchSize is the number of samples per delivered batch.
	BatchSize int
	// StepsPerEpoch is the number of steps per epoch: after that many
	// batches the epoch increments and the shard reshuffles. For training
	// pipelines under gradient accumulation this counts micro-steps
	// (engine steps × accumulation factor).
	StepsPerEpoch int
	// Depth is the number of rendered batches buffered ahead of the
	// consumer (minimum 1). The pipeline owns Depth+1 buffers — the classic
	// double buffer at Depth 1: one batch in the consumer's hands, one
	// rendering ahead.
	Depth int
	// Augment applies training augmentation inside the pipeline, drawing
	// from a single RNG stream seeded with AugmentSeed and consumed in
	// batch order — bit-for-bit the sequence the inline training path
	// consumed from its per-replica RNG.
	Augment     bool
	AugmentSeed int64
	// StartEpoch/StartStep position the first delivered batch mid-stream:
	// a pipeline restored from a training snapshot resumes at the exact
	// (epoch, step) the interrupted run would have consumed next, including
	// mid-epoch. Both default to 0 (a fresh run).
	StartEpoch int
	StartStep  int
	// AugDraws fast-forwards the augmentation stream to the given position
	// (draws already consumed from AugmentSeed's sequence) before the first
	// batch renders — the Batch.AugDraws stamp the snapshot recorded.
	AugDraws uint64
	// MaxSamples, when > 0, makes the run finite: the pipeline delivers
	// ceil(MaxSamples/BatchSize) batches starting at epoch 0 step 0 — the
	// last one ragged (Batch.N < BatchSize) when BatchSize does not divide
	// MaxSamples — and then closes C. 0 streams forever.
	MaxSamples int
	// Pool supplies the batch buffers; nil builds a private pool of Depth+1
	// buffers. A shared pool must hold buffers of matching shape.
	Pool *BufferPool
}

// Pipeline prefetches shard batches on a background goroutine — the
// host-side input pipeline that keeps accelerator cores fed (§3.3). Batches
// arrive on C in deterministic (epoch, step) order; consumers Recycle each
// batch after use and call Stop when done.
type Pipeline struct {
	// C delivers prefetched batches in order. It closes when MaxSamples is
	// reached or the pipeline is stopped.
	C <-chan *Batch

	cfg  PipelineConfig
	pool *BufferPool
	ch   chan *Batch
	stop chan struct{}
	done chan struct{}
	once sync.Once

	// starved counts Next calls that found the pipeline empty and had to
	// block — the producer fell behind the consumer. Detected with one
	// non-blocking receive attempt, so the counter is always on (no clock
	// reads); the telemetry layer reads per-step deltas when attached.
	starved atomic.Int64
}

// NewPipeline validates cfg and starts the producer goroutine.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Shard == nil {
		return nil, fmt.Errorf("data: pipeline needs a shard")
	}
	if cfg.Shard.Len() == 0 {
		return nil, fmt.Errorf("data: pipeline over empty shard (split %d has %d samples for world %d)",
			cfg.Shard.Split, cfg.Shard.TotalLen(), cfg.Shard.World)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("data: pipeline batch size %d must be >= 1", cfg.BatchSize)
	}
	if cfg.StepsPerEpoch < 1 {
		return nil, fmt.Errorf("data: pipeline steps per epoch %d must be >= 1", cfg.StepsPerEpoch)
	}
	if cfg.StartEpoch < 0 || cfg.StartStep < 0 || cfg.StartStep >= cfg.StepsPerEpoch {
		return nil, fmt.Errorf("data: pipeline start position (%d, %d) out of range (steps per epoch %d)", cfg.StartEpoch, cfg.StartStep, cfg.StepsPerEpoch)
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	pool := cfg.Pool
	if pool == nil {
		pool = NewBufferPool(cfg.Depth+1, cfg.BatchSize, cfg.Shard.D.cfg.Resolution)
	}
	p := &Pipeline{
		cfg:  cfg,
		pool: pool,
		ch:   make(chan *Batch, cfg.Depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.C = p.ch
	go p.run()
	return p, nil
}

// run is the producer: render, augment, deliver, forever (or until
// MaxSamples batches are out, or Stop).
func (p *Pipeline) run() {
	defer close(p.done)
	defer close(p.ch)
	var augStream *rng.Stream
	var augRand *rand.Rand
	if p.cfg.Augment {
		// Resume support: the stream is positioned AugDraws transitions
		// into the seed's sequence — 0 for a fresh run, the snapshot's
		// recorded cursor when restoring.
		augStream = rng.Restore(p.cfg.AugmentSeed, p.cfg.AugDraws)
		augRand = augStream.Rand()
	}
	bs := p.cfg.BatchSize
	remaining := -1 // infinite
	if p.cfg.MaxSamples > 0 {
		remaining = p.cfg.MaxSamples
	}
	for epoch := p.cfg.StartEpoch; ; epoch++ {
		step := 0
		if epoch == p.cfg.StartEpoch {
			step = p.cfg.StartStep
		}
		for ; step < p.cfg.StepsPerEpoch; step++ {
			if remaining == 0 {
				return
			}
			b := p.pool.get(p.stop)
			if b == nil {
				return
			}
			cnt := bs
			if remaining > 0 && remaining < cnt {
				cnt = remaining
			}
			b.Epoch, b.Step, b.N, b.AugDraws = epoch, step, cnt, 0
			p.cfg.Shard.FillBatchN(epoch, step, cnt, b.Images, b.Labels)
			if p.cfg.Augment {
				Augment(b.Images, augRand)
				b.AugDraws = augStream.Draws()
			}
			select {
			case p.ch <- b:
				if remaining > 0 {
					remaining -= cnt
				}
			case <-p.stop:
				p.pool.put(b)
				return
			}
		}
	}
}

// Next returns the next prefetched batch in (epoch, step) order, blocking
// until one is ready. ok is false once the pipeline is exhausted (finite
// runs) or stopped. The caller must Recycle the batch when done with it.
func (p *Pipeline) Next() (b *Batch, ok bool) {
	select {
	case b, ok = <-p.ch:
		// Fast path: a batch was already rendered and waiting (a closed
		// channel is also always ready — exhaustion is not starvation).
		return b, ok
	default:
	}
	p.starved.Add(1)
	b, ok = <-p.ch
	return b, ok
}

// Starved returns the cumulative count of Next calls that blocked because no
// batch was ready — the pipeline-starvation counter telemetry reports per
// step. Safe to call concurrently with Next.
func (p *Pipeline) Starved() int64 { return p.starved.Load() }

// Recycle hands a delivered batch's buffers back to the pool for reuse.
// After Recycle the batch contents may be overwritten at any moment.
func (p *Pipeline) Recycle(b *Batch) {
	p.pool.put(b)
}

// Stop terminates the producer and blocks until it has exited: after Stop
// returns, no pipeline goroutine is running and none of the pool's buffers
// are being written. Batches still buffered in C are drained back into the
// pool with their contents discarded, and C is closed. Batches already in
// the consumer's hands stay valid until Recycled. Stop is idempotent and
// also runs implicitly to completion on finite pipelines, but calling it is
// always safe and releases the buffers promptly.
func (p *Pipeline) Stop() {
	p.once.Do(func() { close(p.stop) })
	for b := range p.ch {
		p.pool.put(b)
	}
	<-p.done
}
