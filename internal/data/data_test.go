package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"effnetscale/internal/tensor"
)

func miniDataset() *Dataset {
	return New(MiniConfig(4, 256, 16))
}

func TestRenderDeterministic(t *testing.T) {
	d := miniDataset()
	r := d.Config().Resolution
	a := make([]float32, 3*r*r)
	b := make([]float32, 3*r*r)
	la := d.Render(0, 17, a)
	lb := d.Render(0, 17, b)
	if la != lb {
		t.Fatalf("labels differ: %d vs %d", la, lb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pixel %d differs between identical renders", i)
		}
	}
}

func TestRenderSplitsDiffer(t *testing.T) {
	d := miniDataset()
	r := d.Config().Resolution
	a := make([]float32, 3*r*r)
	b := make([]float32, 3*r*r)
	d.Render(0, 5, a)
	d.Render(1, 5, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and val image 5 are identical; splits must be independent")
	}
}

func TestLabelsBalanced(t *testing.T) {
	d := miniDataset()
	counts := make([]int, 4)
	for i := 0; i < 256; i++ {
		counts[d.TrainLabel(i)]++
	}
	for c, n := range counts {
		if n != 64 {
			t.Fatalf("class %d has %d samples, want 64", c, n)
		}
	}
}

func TestClassesAreSeparated(t *testing.T) {
	// Mean within-class pixel distance must be smaller than between-class
	// distance — otherwise the dataset is unlearnable and all training
	// experiments are meaningless.
	d := New(MiniConfig(4, 64, 16))
	r := d.Config().Resolution
	n := 8 // images per class to sample
	imgs := make([][][]float32, 4)
	for c := 0; c < 4; c++ {
		for k := 0; k < n; k++ {
			img := make([]float32, 3*r*r)
			idx := k*4 + c // labels cycle mod numClasses
			if got := d.Render(0, idx, img); got != c {
				t.Fatalf("index %d: label %d, want %d", idx, got, c)
			}
			imgs[c] = append(imgs[c], img)
		}
	}
	dist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			df := float64(a[i] - b[i])
			s += df * df
		}
		return math.Sqrt(s / float64(len(a)))
	}
	var within, between float64
	var wn, bn int
	for c1 := 0; c1 < 4; c1++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				within += dist(imgs[c1][i], imgs[c1][j])
				wn++
			}
			for c2 := c1 + 1; c2 < 4; c2++ {
				for j := 0; j < n; j++ {
					between += dist(imgs[c1][i], imgs[c2][j])
					bn++
				}
			}
		}
	}
	within /= float64(wn)
	between /= float64(bn)
	if between <= within*1.1 {
		t.Fatalf("classes not separated: within=%.3f between=%.3f", within, between)
	}
}

func TestPixelStatisticsReasonable(t *testing.T) {
	d := miniDataset()
	r := d.Config().Resolution
	img := make([]float32, 3*r*r)
	var sum, sq float64
	var n int
	for idx := 0; idx < 16; idx++ {
		d.Render(0, idx, img)
		for _, v := range img {
			sum += float64(v)
			sq += float64(v) * float64(v)
			n++
		}
	}
	mean := sum / float64(n)
	std := math.Sqrt(sq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.5 {
		t.Fatalf("pixel mean %v too far from 0", mean)
	}
	if std < 0.2 || std > 2.5 {
		t.Fatalf("pixel std %v outside sane range", std)
	}
}

func TestShardPartitionQuick(t *testing.T) {
	// Shard sizes must sum to the split size for any world size.
	d := miniDataset()
	f := func(w uint8) bool {
		world := int(w)%16 + 1
		total := 0
		for r := 0; r < world; r++ {
			total += NewShard(d, 0, r, world).Len()
		}
		return total == d.Config().TrainSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestShardsDisjointWithinStep(t *testing.T) {
	// At a fixed (epoch, step), different replicas must see different
	// global indices (data parallelism without sample duplication).
	d := miniDataset()
	world := 4
	seen := map[int]int{}
	for r := 0; r < world; r++ {
		s := NewShard(d, 0, r, world)
		for _, idx := range s.BatchIndices(0, 0, 8) {
			if prev, dup := seen[idx]; dup {
				t.Fatalf("index %d assigned to replicas %d and %d", idx, prev, r)
			}
			seen[idx] = r
		}
	}
}

func TestEpochPermutationIsBijective(t *testing.T) {
	// Over one epoch, a single-replica shard must visit every index
	// exactly once.
	d := New(MiniConfig(4, 100, 16)) // non-power-of-two size
	s := NewShard(d, 0, 0, 1)
	for _, epoch := range []int{0, 1, 5} {
		seen := make([]bool, 100)
		for pos := 0; pos < 100; pos++ {
			g := s.globalIndex(epoch, pos)
			if g < 0 || g >= 100 {
				t.Fatalf("epoch %d pos %d: index %d out of range", epoch, pos, g)
			}
			if seen[g] {
				t.Fatalf("epoch %d: index %d visited twice", epoch, g)
			}
			seen[g] = true
		}
	}
}

func TestEpochsShuffleDifferently(t *testing.T) {
	d := miniDataset()
	s := NewShard(d, 0, 0, 1)
	a := s.BatchIndices(0, 0, 32)
	b := s.BatchIndices(1, 0, 32)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch 0 and epoch 1 orders are identical")
	}
}

func TestFillBatchShapesAndLabels(t *testing.T) {
	d := miniDataset()
	s := NewShard(d, 0, 0, 2)
	batch := tensor.New(8, 3, 16, 16)
	labels := make([]int, 8)
	s.FillBatch(0, 0, batch, labels)
	for i, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label[%d] = %d out of range", i, l)
		}
	}
	var nonzero bool
	for _, v := range batch.Data() {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("batch is all zeros")
	}
}

func TestAugmentPreservesShapeAndValues(t *testing.T) {
	d := miniDataset()
	batch := tensor.New(4, 3, 16, 16)
	labels := make([]int, 4)
	NewShard(d, 0, 0, 1).FillBatch(0, 0, batch, labels)
	orig := batch.Clone()
	Augment(batch, rand.New(rand.NewSource(3)))
	// Augmentation must keep value range similar (it only moves pixels).
	if batch.MaxAbs() > orig.MaxAbs()+1e-5 {
		t.Fatalf("augment increased max abs value: %v -> %v", orig.MaxAbs(), batch.MaxAbs())
	}
}

func TestBatchIndicesEmptyShard(t *testing.T) {
	// A rank whose shard is empty (split smaller than the world) must get an
	// empty index list, not the divide-by-zero panic this used to hit.
	d := miniDataset() // ValSize = 64
	s := NewShard(d, 1, 70, 100)
	if s.Len() != 0 {
		t.Fatalf("shard len = %d, want 0", s.Len())
	}
	if idx := s.BatchIndices(0, 0, 8); len(idx) != 0 {
		t.Fatalf("empty shard returned %d indices", len(idx))
	}
	// FillBatch on an empty shard must fail loudly, not divide by zero.
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("FillBatch on empty shard did not panic")
		}
	}()
	batch := tensor.New(4, 3, 16, 16)
	s.FillBatch(0, 0, batch, make([]int, 4))
}

func TestShardsDisjointAndCoverNonDivisible(t *testing.T) {
	// total % world != 0: per step the ranks' batches must be disjoint, and
	// over one epoch the union of all ranks' positions must cover the split
	// exactly once.
	d := New(MiniConfig(4, 100, 16)) // 100 samples, world 3 -> shards 34/33/33
	world := 3
	for _, epoch := range []int{0, 2} {
		seen := map[int]int{}
		n := 0
		for r := 0; r < world; r++ {
			s := NewShard(d, 0, r, world)
			for _, idx := range s.BatchIndices(epoch, 0, s.Len()) {
				if prev, dup := seen[idx]; dup {
					t.Fatalf("epoch %d: index %d assigned to ranks %d and %d", epoch, idx, prev, r)
				}
				seen[idx] = r
				n++
			}
		}
		if n != 100 {
			t.Fatalf("epoch %d: %d indices covered, want 100", epoch, n)
		}
	}
	// Within a single step at a fixed batch size, ranks stay disjoint too.
	seen := map[int]int{}
	for r := 0; r < world; r++ {
		for _, idx := range NewShard(d, 0, r, world).BatchIndices(1, 2, 8) {
			if prev, dup := seen[idx]; dup {
				t.Fatalf("step batch: index %d on ranks %d and %d", idx, prev, r)
			}
			seen[idx] = r
		}
	}
}

func TestFillBatchNRendersOnlyPrefix(t *testing.T) {
	d := miniDataset()
	s := NewShard(d, 0, 0, 1)
	batch := tensor.New(8, 3, 16, 16)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = -1
	}
	s.FillBatchN(0, 0, 5, batch, labels)
	img := 3 * 16 * 16
	for i := 0; i < 5; i++ {
		if labels[i] < 0 || labels[i] >= 4 {
			t.Fatalf("label[%d] = %d not rendered", i, labels[i])
		}
	}
	for i := 5; i < 8; i++ {
		if labels[i] != -1 {
			t.Fatalf("label[%d] = %d; tail must stay untouched", i, labels[i])
		}
		for _, v := range batch.Data()[i*img : (i+1)*img] {
			if v != 0 {
				t.Fatalf("sample %d pixels rendered; tail must stay untouched", i)
			}
		}
	}
	// The rendered prefix must match the same samples drawn via a full
	// batch: positions advance by the full batch size either way.
	full := tensor.New(8, 3, 16, 16)
	fullLabels := make([]int, 8)
	s.FillBatch(0, 0, full, fullLabels)
	for i := 0; i < 5*img; i++ {
		if batch.Data()[i] != full.Data()[i] {
			t.Fatalf("partial render diverges from full render at %d", i)
		}
	}
}

func TestImageNetConfigCanonicalSizes(t *testing.T) {
	c := ImageNetConfig(260)
	if c.TrainSize != 1281167 || c.ValSize != 50000 || c.NumClasses != 1000 {
		t.Fatalf("ImageNet split sizes wrong: %+v", c)
	}
}
