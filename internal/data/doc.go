// Package data provides the SynthImageNet dataset: a deterministic,
// procedurally generated stand-in for ImageNet-1k. The real experiments
// need 1.28 M labelled images that cannot ship with this repository, so
// each class is defined by a procedural "prototype" (oriented sinusoidal
// texture + colored Gaussian blob) and every image is a seeded perturbation
// of its class prototype. The class structure is genuinely learnable by a
// convnet, which lets the mini-scale experiments exercise the full training
// stack, and the dataset is virtualized: images are synthesized on demand,
// so the canonical 1,281,167-image train split costs no storage.
//
// Seams: Dataset renders samples; Shard carves a split across replicas with
// per-epoch shuffling (disjoint and complete at any world size); Pipeline
// prefetches rendered, augmented batches on a producer goroutine with
// buffers recycled through a bounded BufferPool — the host-side input
// pipeline that keeps accelerator cores fed. Pipelines carry resume cursors
// (PipelineConfig.StartEpoch/StartStep/AugDraws) so a restored run consumes
// exactly the batches the interrupted one would have, and a starvation
// counter (Pipeline.Starved) the telemetry subsystem reads per step.
//
// Paper: §3.3 — the input-side responsibilities of the distributed training
// loop; prefetch depth and starvation are the knob and the symptom of the
// paper's "keep the accelerators busy" constraint.
package data
