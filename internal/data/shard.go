package data

import (
	"context"
	"fmt"
	"math/rand"

	"effnetscale/internal/tensor"
)

// Shard is one replica's deterministic view of a dataset split. Replica r of
// R sees the strided subset {r, r+R, r+2R, ...}; within an epoch the order is
// permuted by an affine index map seeded by the epoch, so all replicas agree
// on the permutation without communicating — exactly how the paper's
// distributed loop shards both training and evaluation data.
type Shard struct {
	D           *Dataset
	Split       int // 0 = train, 1 = val
	Rank, World int

	size int // number of samples in this shard
}

// NewShard creates replica rank's shard of the given split.
func NewShard(d *Dataset, split, rank, world int) *Shard {
	if world < 1 || rank < 0 || rank >= world {
		panic(fmt.Sprintf("data: invalid shard rank %d of %d", rank, world))
	}
	total := d.cfg.TrainSize
	if split == 1 {
		total = d.cfg.ValSize
	}
	size := total / world
	if rank < total%world {
		size++
	}
	return &Shard{D: d, Split: split, Rank: rank, World: world, size: size}
}

// Len returns the number of samples in this shard.
func (s *Shard) Len() int { return s.size }

// TotalLen returns the split's full size across all shards.
func (s *Shard) TotalLen() int {
	if s.Split == 1 {
		return s.D.cfg.ValSize
	}
	return s.D.cfg.TrainSize
}

// epochPerm maps a within-epoch position to a global dataset index using an
// affine permutation over the full split (a odd => coprime with any power of
// two; we permute over the next power of two and skip out-of-range values).
func (s *Shard) globalIndex(epoch, pos int) int {
	total := s.TotalLen()
	// Size of permutation domain: next power of two >= total.
	n := 1
	for n < total {
		n <<= 1
	}
	rng := rand.New(rand.NewSource(int64(s.D.cfg.Seed)*1e6 + int64(epoch)*7919 + int64(s.Split)))
	a := rng.Intn(n/2)*2 + 1 // odd multiplier: bijective mod 2^k
	b := rng.Intn(n)
	// Cycle-walk until the value lands inside the split.
	x := pos
	for {
		x = (a*x + b) & (n - 1)
		if x < total {
			return x
		}
	}
}

// BatchIndices returns the global dataset indices for this shard's batch at
// the given epoch and step, with perShardBatch samples. Indices wrap around
// the shard (steady-state training semantics).
func (s *Shard) BatchIndices(epoch, step, perShardBatch int) []int {
	idx := make([]int, perShardBatch)
	for i := 0; i < perShardBatch; i++ {
		pos := (step*perShardBatch + i) % s.size
		// Position within shard -> position within split -> permuted index.
		idx[i] = s.globalIndex(epoch, pos*s.World+s.Rank)
	}
	return idx
}

// FillBatch renders this shard's batch for (epoch, step) into batch/labels.
func (s *Shard) FillBatch(epoch, step int, batch *tensor.Tensor, labels []int) {
	n := batch.Dim(0)
	indices := s.BatchIndices(epoch, step, n)
	s.D.FillBatch(s.Split, indices, batch, labels)
}

// Batch is one prefetched unit of work flowing through a Pipeline.
type Batch struct {
	Images *tensor.Tensor
	Labels []int
	Epoch  int
	Step   int
}

// Pipeline prefetches shard batches on background goroutines, modelling the
// host-side input pipeline that keeps accelerator cores fed. Close the
// context to stop it.
type Pipeline struct {
	C <-chan *Batch

	cancel context.CancelFunc
}

// NewPipeline starts prefetching batches of size batchSize from shard,
// beginning at epoch 0 step 0, with stepsPerEpoch steps per epoch. augment
// applies training augmentation with the given seed; depth is the prefetch
// buffer size.
func NewPipeline(shard *Shard, batchSize, stepsPerEpoch, depth int, augment bool, seed int64) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan *Batch, depth)
	go func() {
		defer close(ch)
		rng := rand.New(rand.NewSource(seed))
		for epoch := 0; ; epoch++ {
			for step := 0; step < stepsPerEpoch; step++ {
				b := &Batch{
					Images: tensor.New(batchSize, 3, shard.D.cfg.Resolution, shard.D.cfg.Resolution),
					Labels: make([]int, batchSize),
					Epoch:  epoch,
					Step:   step,
				}
				shard.FillBatch(epoch, step, b.Images, b.Labels)
				if augment {
					Augment(b.Images, rng)
				}
				select {
				case ch <- b:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return &Pipeline{C: ch, cancel: cancel}
}

// Stop terminates the prefetch goroutine. The channel is drained and closed
// asynchronously; pending batches may still be delivered.
func (p *Pipeline) Stop() { p.cancel() }
