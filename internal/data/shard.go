package data

import (
	"fmt"
	"math/rand"

	"effnetscale/internal/tensor"
)

// Shard is one replica's deterministic view of a dataset split. Replica r of
// R sees the strided subset {r, r+R, r+2R, ...}; within an epoch the order is
// permuted by an affine index map seeded by the epoch, so all replicas agree
// on the permutation without communicating — exactly how the paper's
// distributed loop shards both training and evaluation data.
//
// A Shard is not safe for concurrent use: it caches the current epoch's
// permutation constants and a scratch index slice. Each replica (and each
// Pipeline) owns its own Shard.
type Shard struct {
	D           *Dataset
	Split       int // 0 = train, 1 = val
	Rank, World int

	size int // number of samples in this shard

	// perm caches the affine permutation constants for the last epoch seen,
	// hoisted out of the per-sample path: rebuilding a rand.Rand per index
	// used to dominate BatchIndices (once per sample per step).
	perm epochPerm
	// scratch is the reusable index slice behind FillBatch.
	scratch []int
}

// epochPerm holds one epoch's affine permutation over the split: x ->
// (a*x + b) mod 2^k, cycle-walked until the value lands inside the split.
type epochPerm struct {
	epoch int
	valid bool
	a, b  int
	mask  int // 2^k - 1 with 2^k the next power of two >= the split size
	total int
}

// apply maps a within-epoch position to a global dataset index.
func (p epochPerm) apply(pos int) int {
	x := pos
	for {
		x = (p.a*x + p.b) & p.mask
		if x < p.total {
			return x
		}
	}
}

// NewShard creates replica rank's shard of the given split. The shard may be
// empty when the split has fewer samples than the world; Len reports 0 and
// BatchIndices returns no indices in that case.
func NewShard(d *Dataset, split, rank, world int) *Shard {
	if world < 1 || rank < 0 || rank >= world {
		panic(fmt.Sprintf("data: invalid shard rank %d of %d", rank, world))
	}
	total := d.cfg.TrainSize
	if split == 1 {
		total = d.cfg.ValSize
	}
	size := total / world
	if rank < total%world {
		size++
	}
	return &Shard{D: d, Split: split, Rank: rank, World: world, size: size}
}

// Len returns the number of samples in this shard.
func (s *Shard) Len() int { return s.size }

// TotalLen returns the split's full size across all shards.
func (s *Shard) TotalLen() int {
	if s.Split == 1 {
		return s.D.cfg.ValSize
	}
	return s.D.cfg.TrainSize
}

// permFor returns the epoch's permutation constants, rebuilding them only
// when the epoch changes (a odd => coprime with any power of two, so the map
// is bijective mod 2^k; out-of-range values are skipped by cycle-walking).
func (s *Shard) permFor(epoch int) epochPerm {
	if s.perm.valid && s.perm.epoch == epoch {
		return s.perm
	}
	total := s.TotalLen()
	n := 1
	for n < total {
		n <<= 1
	}
	rng := rand.New(rand.NewSource(int64(s.D.cfg.Seed)*1e6 + int64(epoch)*7919 + int64(s.Split)))
	s.perm = epochPerm{
		epoch: epoch,
		valid: true,
		a:     rng.Intn(n/2)*2 + 1, // odd multiplier: bijective mod 2^k
		b:     rng.Intn(n),
		mask:  n - 1,
		total: total,
	}
	return s.perm
}

// globalIndex maps a within-epoch position to a global dataset index via the
// epoch's affine permutation.
func (s *Shard) globalIndex(epoch, pos int) int {
	return s.permFor(epoch).apply(pos)
}

// BatchIndices returns the global dataset indices for this shard's batch at
// the given epoch and step, with perShardBatch samples. Indices wrap around
// the shard (steady-state training semantics). An empty shard (split smaller
// than the world) yields an empty slice instead of the divide-by-zero panic
// it used to hit.
func (s *Shard) BatchIndices(epoch, step, perShardBatch int) []int {
	return s.appendIndices(nil, epoch, step, perShardBatch, perShardBatch)
}

// appendIndices appends the first count indices of the (epoch, step) batch of
// stride samples to dst and returns it — the allocation-free form behind
// FillBatch. count < stride renders a ragged prefix: positions still advance
// by stride per step, exactly as if the full batch had been drawn.
func (s *Shard) appendIndices(dst []int, epoch, step, stride, count int) []int {
	if s.size == 0 || count <= 0 {
		return dst
	}
	p := s.permFor(epoch)
	for i := 0; i < count; i++ {
		pos := (step*stride + i) % s.size
		// Position within shard -> position within split -> permuted index.
		dst = append(dst, p.apply(pos*s.World+s.Rank))
	}
	return dst
}

// FillBatch renders this shard's batch for (epoch, step) into batch/labels.
// It panics on an empty shard; callers guard with Len() (replica.New rejects
// configurations whose train split is smaller than the world).
func (s *Shard) FillBatch(epoch, step int, batch *tensor.Tensor, labels []int) {
	s.FillBatchN(epoch, step, batch.Dim(0), batch, labels)
}

// FillBatchN renders only the first n samples of the (epoch, step) batch,
// leaving the rest of the tensor and labels untouched — what ragged final
// evaluation batches use to skip rendering the wrap-around tail that would
// be discarded anyway. Step positions advance by the full batch size
// (batch.Dim(0)), so partial and full batches address the same samples.
func (s *Shard) FillBatchN(epoch, step, n int, batch *tensor.Tensor, labels []int) {
	if s.size == 0 {
		panic(fmt.Sprintf("data: FillBatch on empty shard (split %d has %d samples for world %d)", s.Split, s.TotalLen(), s.World))
	}
	if n > batch.Dim(0) || n > len(labels) {
		panic(fmt.Sprintf("data: FillBatchN count %d exceeds batch capacity %d/%d", n, batch.Dim(0), len(labels)))
	}
	s.scratch = s.appendIndices(s.scratch[:0], epoch, step, batch.Dim(0), n)
	s.D.FillBatch(s.Split, s.scratch, batch, labels[:n])
}
