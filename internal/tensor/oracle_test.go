package tensor

// Reference-kernel oracle suite. Every optimized kernel is checked against a
// naive float64 reference over a table + randomized sweep of shapes chosen to
// exercise the blocked GEMM's edges (ragged tile tails, multi-slab k), the
// convolution fast paths (1×1, strided 1×1) and the depthwise interior/
// border split. Tolerances are derived from the accumulation length: an
// ascending float32 sum of k products (fused or not) differs from the exact
// value by at most ~k·eps32 relative to the sum of magnitudes, so we assert
//
//	|got − want64| ≤ (k+2)·eps32·Σ|terms| + tiny
//
// which holds for both the portable kernel and the FMA assembly kernels.
// NaN results must stay NaN (the 0·NaN regression below pins the sparsity-
// skip bugfix).

import (
	"math"
	"math/rand"
	"testing"
)

const eps32 = 1.1920929e-7 // 2^-23

// assertOracle compares kernel output against a float64 oracle value/
// magnitude pair with an accumulation-length-aware tolerance.
func assertOracle(t *testing.T, name string, got []float32, want, mag []float64, k int) {
	t.Helper()
	tol := float64(k+2) * eps32
	for i := range got {
		w := want[i]
		if math.IsNaN(w) {
			if !math.IsNaN(float64(got[i])) {
				t.Fatalf("%s: elem %d = %v, want NaN", name, i, got[i])
			}
			continue
		}
		if math.IsInf(w, 0) {
			if float64(got[i]) != w && !math.IsNaN(float64(got[i])) {
				t.Fatalf("%s: elem %d = %v, want %v", name, i, got[i], w)
			}
			continue
		}
		if diff := math.Abs(float64(got[i]) - w); diff > tol*mag[i]+1e-30 {
			t.Fatalf("%s: elem %d = %v, want %v (|Δ|=%g > %g)", name, i, got[i], w, diff, tol*mag[i])
		}
	}
}

// oracleGEMM computes op(A)@op(B) in float64, returning per-element values
// and magnitudes (Σ|a·b| used for the error bound).
func oracleGEMM(a, b []float32, lda, ldb int, at, bt bool, m, n, k int) (val, mag []float64) {
	val = make([]float64, m*n)
	mag = make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s, ab float64
			for p := 0; p < k; p++ {
				var av, bv float32
				if at {
					av = a[p*lda+i]
				} else {
					av = a[i*lda+p]
				}
				if bt {
					bv = b[j*ldb+p]
				} else {
					bv = b[p*ldb+j]
				}
				prod := float64(av) * float64(bv)
				s += prod
				ab += math.Abs(prod)
			}
			val[i*n+j] = s
			mag[i*n+j] = ab
		}
	}
	return val, mag
}

// oracleConv2D computes a direct convolution in float64 (values+magnitudes).
func oracleConv2D(x, w *Tensor, spec ConvSpec) (val, mag []float64, k int) {
	n, cin, h, wd := x.Dim4()
	cout, _, kh, kw := w.Dim4()
	oh := outSize(h, kh, spec.StrideH, spec.PadH)
	ow := outSize(wd, kw, spec.StrideW, spec.PadW)
	val = make([]float64, n*cout*oh*ow)
	mag = make([]float64, n*cout*oh*ow)
	xd, wdta := x.Data(), w.Data()
	for s := 0; s < n; s++ {
		for co := 0; co < cout; co++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc, ab float64
					for ci := 0; ci < cin; ci++ {
						for i := 0; i < kh; i++ {
							iy := oy*spec.StrideH - spec.PadH + i
							for j := 0; j < kw; j++ {
								ix := ox*spec.StrideW - spec.PadW + j
								var xv float32 // zero padding
								if iy >= 0 && iy < h && ix >= 0 && ix < wd {
									xv = xd[((s*cin+ci)*h+iy)*wd+ix]
								}
								wv := wdta[((co*cin+ci)*kh+i)*kw+j]
								prod := float64(xv) * float64(wv)
								acc += prod
								ab += math.Abs(prod)
							}
						}
					}
					idx := ((s*cout+co)*oh+oy)*ow + ox
					val[idx] = acc
					mag[idx] = ab
				}
			}
		}
	}
	return val, mag, cin * kh * kw
}

// oracleDepthwise is the direct depthwise reference.
func oracleDepthwise(x, w *Tensor, spec ConvSpec) (val, mag []float64, k int) {
	n, c, h, wd := x.Dim4()
	_, _, kh, kw := w.Dim4()
	oh := outSize(h, kh, spec.StrideH, spec.PadH)
	ow := outSize(wd, kw, spec.StrideW, spec.PadW)
	val = make([]float64, n*c*oh*ow)
	mag = make([]float64, n*c*oh*ow)
	xd, wdta := x.Data(), w.Data()
	for nc := 0; nc < n*c; nc++ {
		ch := nc % c
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc, ab float64
				for i := 0; i < kh; i++ {
					iy := oy*spec.StrideH - spec.PadH + i
					if iy < 0 || iy >= h {
						continue
					}
					for j := 0; j < kw; j++ {
						ix := ox*spec.StrideW - spec.PadW + j
						if ix < 0 || ix >= wd {
							continue
						}
						prod := float64(xd[(nc*h+iy)*wd+ix]) * float64(wdta[(ch*kh+i)*kw+j])
						acc += prod
						ab += math.Abs(prod)
					}
				}
				val[nc*oh*ow+oy*ow+ox] = acc
				mag[nc*oh*ow+oy*ow+ox] = ab
			}
		}
	}
	return val, mag, kh * kw
}

// runBothKernelPaths runs fn once with the FMA assembly kernels enabled (a
// no-op where unsupported) and once forced onto the portable Go kernel.
func runBothKernelPaths(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	t.Run("fma", fn)
	restore := forceFMA(false)
	defer restore()
	t.Run("portable", fn)
}

func TestMatMulOracleSweep(t *testing.T) {
	cases := []struct{ m, n, k int }{
		{1, 1, 1},     // degenerate
		{3, 5, 2},     // sub-tile everything
		{4, 16, 8},    // exactly one full tile
		{5, 17, 3},    // ragged rows and cols
		{8, 32, 256},  // exactly one k-slab
		{9, 33, 257},  // ragged + multi-slab k
		{12, 20, 300}, // multi-slab with col tail 4
		{33, 17, 9},   // historic regression shapes
		{2, 100, 7},   // wide with 4-col tail
		{130, 40, 64}, // spans two row blocks (gemmMC=128)
		{16, 10, 5},   // col tail < 4
		{64, 64, 64},  // square
	}
	runBothKernelPaths(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for _, tc := range cases {
			a := Randn(rng, 1, tc.m, tc.k)
			b := Randn(rng, 1, tc.k, tc.n)
			want, mag := oracleGEMM(a.Data(), b.Data(), tc.k, tc.n, false, false, tc.m, tc.n, tc.k)
			assertOracle(t, "MatMul", MatMul(a, b).Data(), want, mag, tc.k)

			at := Randn(rng, 1, tc.k, tc.m) // stored [K,M]
			wantTA, magTA := oracleGEMM(at.Data(), b.Data(), tc.m, tc.n, true, false, tc.m, tc.n, tc.k)
			assertOracle(t, "MatMulTA", MatMulTA(at, b).Data(), wantTA, magTA, tc.k)

			bt := Randn(rng, 1, tc.n, tc.k) // stored [N,K]
			wantTB, magTB := oracleGEMM(a.Data(), bt.Data(), tc.k, tc.k, false, true, tc.m, tc.n, tc.k)
			assertOracle(t, "MatMulTB", MatMulTB(a, bt).Data(), wantTB, magTB, tc.k)

			// Accumulating MatMulInto: run twice, oracle doubles.
			dst := New(tc.m, tc.n)
			MatMulInto(dst, a, b, false)
			MatMulInto(dst, a, b, true)
			want2 := make([]float64, len(want))
			mag2 := make([]float64, len(mag))
			for i := range want {
				want2[i] = 2 * want[i]
				mag2[i] = 2 * mag[i]
			}
			assertOracle(t, "MatMulInto/acc", dst.Data(), want2, mag2, 2*tc.k)
		}
	})
}

func TestMatMulOracleRandomized(t *testing.T) {
	runBothKernelPaths(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for iter := 0; iter < 30; iter++ {
			m := 1 + rng.Intn(70)
			n := 1 + rng.Intn(70)
			k := 1 + rng.Intn(90)
			if iter%7 == 0 {
				k += gemmKC // force multi-slab
			}
			a := Randn(rng, 1, m, k)
			b := Randn(rng, 1, k, n)
			want, mag := oracleGEMM(a.Data(), b.Data(), k, n, false, false, m, n, k)
			assertOracle(t, "MatMul/rand", MatMul(a, b).Data(), want, mag, k)
		}
	})
}

func TestConv2DOracleSweep(t *testing.T) {
	type cc struct {
		name                 string
		n, cin, h, w         int
		cout, kh, kw, stride int
		samePad              bool
	}
	cases := []cc{
		{"3x3_same", 2, 3, 8, 8, 5, 3, 3, 1, true},
		{"3x3_stride2", 2, 4, 9, 7, 6, 3, 3, 2, true}, // odd H/W, stride 2
		{"5x5_same", 1, 2, 11, 11, 3, 5, 5, 1, true},
		{"cin1", 2, 1, 6, 6, 4, 3, 3, 1, true},
		{"1x1_fast", 2, 7, 6, 6, 9, 1, 1, 1, false},    // pointwise fast path
		{"1x1_stride2", 2, 5, 7, 7, 3, 1, 1, 2, false}, // strided 1×1 gather
		{"nopad", 1, 3, 10, 10, 2, 3, 3, 1, false},     // valid conv
		{"ragged", 1, 6, 5, 5, 13, 3, 3, 1, true},      // cout not mult of 4
	}
	runBothKernelPaths(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		for _, c := range cases {
			x := Randn(rng, 1, c.n, c.cin, c.h, c.w)
			w := Randn(rng, 1, c.cout, c.cin, c.kh, c.kw)
			spec := ConvSpec{StrideH: c.stride, StrideW: c.stride}
			if c.samePad {
				spec.PadH, spec.PadW = SamePad(c.kh), SamePad(c.kw)
			}
			want, mag, k := oracleConv2D(x, w, spec)
			assertOracle(t, "Conv2D/"+c.name, Conv2D(x, w, spec).Data(), want, mag, k)
		}
	})
}

func TestDepthwiseOracleSweep(t *testing.T) {
	type dc struct {
		name       string
		n, c, h, w int
		k, stride  int
		samePad    bool
	}
	cases := []dc{
		{"3x3_same", 2, 3, 8, 8, 3, 1, true},
		{"3x3_stride2_odd", 2, 4, 9, 7, 3, 2, true},
		{"5x5_same", 1, 2, 11, 9, 5, 1, true},
		{"3x3_nopad", 1, 3, 7, 7, 3, 1, false},  // interior == everything
		{"5x5_stride2", 1, 2, 6, 6, 5, 2, true}, // border-dominated
		{"tiny", 1, 1, 3, 3, 3, 1, true},        // all border
	}
	runBothKernelPaths(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		for _, c := range cases {
			x := Randn(rng, 1, c.n, c.c, c.h, c.w)
			w := Randn(rng, 1, c.c, 1, c.k, c.k)
			spec := ConvSpec{StrideH: c.stride, StrideW: c.stride}
			if c.samePad {
				spec.PadH, spec.PadW = SamePad(c.k), SamePad(c.k)
			}
			want, mag, k := oracleDepthwise(x, w, spec)
			assertOracle(t, "Depthwise/"+c.name, DepthwiseConv2D(x, w, spec).Data(), want, mag, k)
		}
	})
}

// TestInteriorRange pins the border-split arithmetic the depthwise kernels
// rely on for bounds-check-free interiors.
func TestInteriorRange(t *testing.T) {
	cases := []struct {
		stride, pad, k, in, out int
		lo, hi                  int
	}{
		{1, 1, 3, 8, 8, 1, 7}, // SAME 3×3: rows 1..6 interior
		{2, 1, 3, 9, 5, 1, 4}, // stride 2
		{1, 0, 3, 8, 6, 0, 6}, // VALID: everything interior
		{1, 2, 5, 8, 8, 2, 6}, // SAME 5×5
		{1, 1, 3, 3, 3, 1, 2}, // tiny input
		{1, 1, 3, 2, 2, 1, 1}, // interior empty (hi==lo)
		{2, 2, 5, 6, 3, 1, 2}, // border-dominated
	}
	for _, c := range cases {
		lo, hi := interiorRange(c.stride, c.pad, c.k, c.in, c.out)
		if lo != c.lo || hi != c.hi {
			t.Errorf("interiorRange(s=%d p=%d k=%d in=%d out=%d) = [%d,%d), want [%d,%d)",
				c.stride, c.pad, c.k, c.in, c.out, lo, hi, c.lo, c.hi)
		}
		// Property: every output in [lo,hi) has a fully in-bounds window,
		// and lo-1 / hi (when valid outputs) do not.
		inBounds := func(o int) bool {
			lo0 := o*c.stride - c.pad
			return lo0 >= 0 && lo0+c.k <= c.in
		}
		for o := lo; o < hi; o++ {
			if !inBounds(o) {
				t.Errorf("interiorRange(s=%d p=%d k=%d in=%d out=%d): output %d not interior",
					c.stride, c.pad, c.k, c.in, c.out, o)
			}
		}
		if lo > 0 && inBounds(lo-1) {
			t.Errorf("interiorRange: lo=%d too conservative", lo)
		}
		if hi < c.out && inBounds(hi) {
			t.Errorf("interiorRange: hi=%d too conservative", hi)
		}
	}
}

// TestZeroTimesNaNPropagates is the regression test for the sparsity-skip
// bugfix: the old kernels skipped zero operands, silently converting
// 0·NaN (= NaN) and 0·Inf (= NaN) into 0.
func TestZeroTimesNaNPropagates(t *testing.T) {
	nan32 := float32(math.NaN())
	inf32 := float32(math.Inf(1))
	runBothKernelPaths(t, func(t *testing.T) {
		// MatMul: a row of zeros against NaN/Inf columns.
		a := FromSlice([]float32{0, 0}, 1, 2)
		b := FromSlice([]float32{nan32, 1, inf32, 2}, 2, 2)
		got := MatMul(a, b)
		if !math.IsNaN(float64(got.At(0, 0))) {
			t.Errorf("MatMul 0·NaN = %v, want NaN", got.At(0, 0))
		}
		if !math.IsNaN(float64(got.At(0, 1))) { // 0·1 + 0·2 = 0... column 1 is finite
			// col 1 = 0*1+0*2 = 0: finite is correct.
			_ = got
		}
		if v := got.At(0, 1); v != 0 {
			t.Errorf("MatMul finite column = %v, want 0", v)
		}

		// MatMulTA with zero A against NaN B.
		at := FromSlice([]float32{0, 0}, 2, 1)
		bn := FromSlice([]float32{nan32, 0}, 2, 1)
		if v := MatMulTA(at, bn).At(0, 0); !math.IsNaN(float64(v)) {
			t.Errorf("MatMulTA 0·NaN = %v, want NaN", v)
		}

		// Conv2D: NaN input against a zero weight must still yield NaN.
		x := New(1, 1, 3, 3)
		x.Data()[4] = nan32  // center pixel
		w := New(1, 1, 3, 3) // all-zero kernel
		spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		out := Conv2D(x, w, spec)
		if v := out.Data()[4]; !math.IsNaN(float64(v)) {
			t.Errorf("Conv2D 0-weight over NaN input = %v, want NaN", v)
		}

		// Depthwise backward: zero upstream gradient over NaN input must
		// produce NaN weight gradients (old code skipped g == 0).
		xn := New(1, 1, 3, 3)
		xn.Data()[0] = nan32
		wd := Randn(rand.New(rand.NewSource(1)), 1, 1, 1, 3, 3)
		dy := New(1, 1, 3, 3) // all-zero upstream grad
		_, dw := DepthwiseConv2DBackward(xn, wd, dy, spec)
		foundNaN := false
		for _, v := range dw.Data() {
			if math.IsNaN(float64(v)) {
				foundNaN = true
			}
		}
		if !foundNaN {
			t.Error("DepthwiseConv2DBackward dropped 0·NaN in dw, want NaN propagation")
		}
	})
}

// TestConv2DBackwardOracle checks input/weight gradients against the direct
// adjoint computed in float64.
func TestConv2DBackwardOracle(t *testing.T) {
	type cc struct {
		name                 string
		n, cin, h, w         int
		cout, kh, kw, stride int
		samePad              bool
	}
	cases := []cc{
		{"3x3_same", 1, 2, 6, 6, 3, 3, 3, 1, true},
		{"3x3_stride2", 1, 3, 7, 7, 4, 3, 3, 2, true},
		{"1x1", 2, 5, 4, 4, 7, 1, 1, 1, false},
		{"1x1_stride2", 1, 4, 5, 5, 3, 1, 1, 2, false},
	}
	runBothKernelPaths(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(17))
		for _, c := range cases {
			x := Randn(rng, 1, c.n, c.cin, c.h, c.w)
			w := Randn(rng, 1, c.cout, c.cin, c.kh, c.kw)
			spec := ConvSpec{StrideH: c.stride, StrideW: c.stride}
			if c.samePad {
				spec.PadH, spec.PadW = SamePad(c.kh), SamePad(c.kw)
			}
			oh := outSize(c.h, c.kh, spec.StrideH, spec.PadH)
			ow := outSize(c.w, c.kw, spec.StrideW, spec.PadW)
			dy := Randn(rng, 1, c.n, c.cout, oh, ow)
			dx, dw := Conv2DBackward(x, w, dy, spec)

			// Direct adjoint in float64.
			dxW := make([]float64, x.Len())
			dxM := make([]float64, x.Len())
			dwW := make([]float64, w.Len())
			dwM := make([]float64, w.Len())
			xd, wd2, dyd := x.Data(), w.Data(), dy.Data()
			for s := 0; s < c.n; s++ {
				for co := 0; co < c.cout; co++ {
					for oy := 0; oy < oh; oy++ {
						for ox := 0; ox < ow; ox++ {
							g := float64(dyd[((s*c.cout+co)*oh+oy)*ow+ox])
							for ci := 0; ci < c.cin; ci++ {
								for i := 0; i < c.kh; i++ {
									iy := oy*spec.StrideH - spec.PadH + i
									if iy < 0 || iy >= c.h {
										continue
									}
									for j := 0; j < c.kw; j++ {
										ix := ox*spec.StrideW - spec.PadW + j
										if ix < 0 || ix >= c.w {
											continue
										}
										xi := ((s*c.cin+ci)*c.h+iy)*c.w + ix
										wi := ((co*c.cin+ci)*c.kh+i)*c.kw + j
										dxW[xi] += g * float64(wd2[wi])
										dxM[xi] += math.Abs(g * float64(wd2[wi]))
										dwW[wi] += g * float64(xd[xi])
										dwM[wi] += math.Abs(g * float64(xd[xi]))
									}
								}
							}
						}
					}
				}
			}
			kdx := c.cout * c.kh * c.kw
			kdw := c.n * oh * ow
			assertOracle(t, "Conv2DBackward/dx/"+c.name, dx.Data(), dxW, dxM, kdx)
			assertOracle(t, "Conv2DBackward/dw/"+c.name, dw.Data(), dwW, dwM, kdw)
		}
	})
}

// TestIm2ColAdjointProperty verifies ⟨col2im(c), x⟩ == ⟨c, im2col(x)⟩: the
// two routines are exact adjoints, which is what makes the im2col-based
// backward pass the true gradient of the im2col-based forward.
func TestIm2ColAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		cin := 1 + rng.Intn(4)
		h := 3 + rng.Intn(8)
		w := 3 + rng.Intn(8)
		kh := 1 + rng.Intn(3)
		kw := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		spec := ConvSpec{StrideH: stride, StrideW: stride, PadH: SamePad(kh), PadW: SamePad(kw)}
		oh := outSize(h, kh, spec.StrideH, spec.PadH)
		ow := outSize(w, kw, spec.StrideW, spec.PadW)
		if oh <= 0 || ow <= 0 {
			continue
		}
		x := Randn(rng, 1, 1, cin, h, w)
		colLen := cin * kh * kw * oh * ow
		c := make([]float32, colLen)
		for i := range c {
			c[i] = float32(rng.NormFloat64())
		}
		col := make([]float32, colLen)
		im2col(col, x.Data(), cin, h, w, kh, kw, oh, ow, spec)
		var lhs float64
		for i := range c {
			lhs += float64(c[i]) * float64(col[i])
		}
		back := make([]float32, cin*h*w)
		col2im(back, c, cin, h, w, kh, kw, oh, ow, spec)
		var rhs float64
		for i := range back {
			rhs += float64(back[i]) * float64(x.Data()[i])
		}
		if math.Abs(lhs-rhs) > 1e-3*(math.Abs(lhs)+1) {
			t.Fatalf("adjoint mismatch: ⟨c, im2col(x)⟩=%g vs ⟨col2im(c), x⟩=%g", lhs, rhs)
		}
	}
}

// TestDepthwiseBackwardBorderOracle extends gradient coverage to border
// cases of DepthwiseConv2DBackward (previously untested): strided odd
// inputs where the interior is empty or a single row.
func TestDepthwiseBackwardBorderOracle(t *testing.T) {
	type dc struct {
		name       string
		n, c, h, w int
		k, stride  int
	}
	cases := []dc{
		{"all_border_3x3", 1, 2, 3, 3, 3, 1},
		{"thin_rows", 1, 1, 2, 9, 3, 1},
		{"stride2_odd", 2, 3, 9, 7, 3, 2},
		{"k5_small", 1, 2, 5, 5, 5, 1},
		{"stride2_k5", 1, 1, 7, 7, 5, 2},
	}
	runBothKernelPaths(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(29))
		for _, c := range cases {
			x := Randn(rng, 1, c.n, c.c, c.h, c.w)
			w := Randn(rng, 1, c.c, 1, c.k, c.k)
			spec := ConvSpec{StrideH: c.stride, StrideW: c.stride, PadH: SamePad(c.k), PadW: SamePad(c.k)}
			oh := outSize(c.h, c.k, spec.StrideH, spec.PadH)
			ow := outSize(c.w, c.k, spec.StrideW, spec.PadW)
			dy := Randn(rng, 1, c.n, c.c, oh, ow)
			dx, dw := DepthwiseConv2DBackward(x, w, dy, spec)

			dxW := make([]float64, x.Len())
			dxM := make([]float64, x.Len())
			dwW := make([]float64, w.Len())
			dwM := make([]float64, w.Len())
			xd, wd2, dyd := x.Data(), w.Data(), dy.Data()
			for nc := 0; nc < c.n*c.c; nc++ {
				ch := nc % c.c
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						g := float64(dyd[nc*oh*ow+oy*ow+ox])
						for i := 0; i < c.k; i++ {
							iy := oy*spec.StrideH - spec.PadH + i
							if iy < 0 || iy >= c.h {
								continue
							}
							for j := 0; j < c.k; j++ {
								ix := ox*spec.StrideW - spec.PadW + j
								if ix < 0 || ix >= c.w {
									continue
								}
								xi := (nc*c.h+iy)*c.w + ix
								wi := (ch*c.k+i)*c.k + j
								dxW[xi] += g * float64(wd2[wi])
								dxM[xi] += math.Abs(g * float64(wd2[wi]))
								dwW[wi] += g * float64(xd[xi])
								dwM[wi] += math.Abs(g * float64(xd[xi]))
							}
						}
					}
				}
			}
			assertOracle(t, "DepthwiseBackward/dx/"+c.name, dx.Data(), dxW, dxM, c.k*c.k)
			assertOracle(t, "DepthwiseBackward/dw/"+c.name, dw.Data(), dwW, dwM, c.n*oh*ow)
		}
	})
}

// TestZeroInputsExact: all-zero inputs must produce exactly zero outputs on
// every path (packing must not leak garbage from pooled buffers).
func TestZeroInputsExact(t *testing.T) {
	runBothKernelPaths(t, func(t *testing.T) {
		a := New(5, 300) // multi-slab k
		b := New(300, 17)
		for _, v := range MatMul(a, b).Data() {
			if v != 0 {
				t.Fatalf("MatMul of zeros = %v, want exact 0", v)
			}
		}
		x := New(2, 3, 8, 8)
		w := New(4, 3, 3, 3)
		spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		for _, v := range Conv2D(x, w, spec).Data() {
			if v != 0 {
				t.Fatalf("Conv2D of zeros = %v, want exact 0", v)
			}
		}
	})
}
