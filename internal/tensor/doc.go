// Package tensor implements the dense float32 tensor engine that underpins
// the whole training stack: shapes, element-wise kernels, a blocked
// parallel matrix multiply, im2col convolutions (normal and depthwise) with
// their backward passes, pooling and reductions.
//
// Layout is row-major. Convolutional tensors use NCHW (batch, channel,
// height, width), matching the layout discussion in the paper's §2.
//
// # Kernel architecture
//
// The matrix multiply is cache-blocked in the GotoBLAS style (see
// matmul.go): k is cut into gemmKC-deep slabs, B is packed once per slab
// into 16-wide k-major column panels, and each gemmMC-row block of A is
// packed into 4-high k-major row panels consumed by a register-tiled 4×16
// micro-kernel. On amd64 machines with AVX2+FMA (detected at startup via
// CPUID, gemm_amd64.go) the micro-kernel is hand-written assembly; edge
// tiles run narrower 4×8/4×4 assembly kernels against the same packed
// panels, and other architectures fall back to a portable Go kernel.
// Every output element accumulates in ascending-k order regardless of its
// tile position, so results are independent of batch raggedness: batch-1
// and batch-N runs produce bitwise-equal values.
//
// Convolutions lower onto that GEMM through im2col; pointwise 1×1 convs
// skip the lowering entirely (stride 1 multiplies the activation matrix
// in place; larger strides gather into a dense matrix first), and the
// depthwise kernels split each plane into a branch-free interior and a
// bounds-checked border (depthwise.go).
//
// # Scratch arenas
//
// Kernel temporaries — im2col column matrices, packing panels, gathered
// 1×1 grids, per-worker weight-gradient partials — come from a Scratch
// arena of size-classed buffer pools rather than make, so the Into
// variants (Conv2DInto, Conv2DBackwardInto, MatMulInto, ...) allocate
// nothing in steady state (proved by BenchmarkConv's allocs/op). Passing
// a nil *Scratch uses a process-wide arena; the replica engine owns one
// arena per engine and threads it through nn.Ctx.Scratch.
//
// # Correctness and performance harness
//
// oracle_test.go checks every kernel path (FMA and portable, forced via
// forceFMA) against float64 reference implementations with a
// k-proportional ULP tolerance, including zero-times-NaN propagation —
// the kernels deliberately contain no sparsity skips, since 0·NaN must
// stay NaN. fuzz_test.go extends the oracles over fuzzed shapes and pins
// the im2col/col2im adjoint identity; seed corpora live under testdata.
// Performance is gated by cmd/benchdiff comparing BenchmarkStep /
// BenchmarkMatMul / BenchmarkConv against the committed
// BENCH_BASELINE.json in CI.
//
// Seams: Tensor is the storage type everything above shares; kernels
// parallelize through package parallel so host-CPU parallelism policy stays
// in one place. The compute timed by the telemetry subsystem's forward/
// backward phases is ultimately these kernels.
package tensor
