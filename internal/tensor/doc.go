// Package tensor implements the dense float32 tensor engine that underpins
// the whole training stack: shapes, element-wise kernels, a blocked
// parallel matrix multiply, im2col convolutions (normal and depthwise) with
// their backward passes, pooling and reductions.
//
// Layout is row-major. Convolutional tensors use NCHW (batch, channel,
// height, width), matching the layout discussion in the paper's §2.
//
// Seams: Tensor is the storage type everything above shares; kernels
// parallelize through package parallel so host-CPU parallelism policy stays
// in one place. The compute timed by the telemetry subsystem's forward/
// backward phases is ultimately these kernels.
package tensor
