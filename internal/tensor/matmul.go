package tensor

import (
	"fmt"

	"effnetscale/internal/parallel"
)

// The GEMM kernel is cache-blocked in the GotoBLAS style: the k dimension is
// cut into slabs of at most gemmKC, the B slab is packed once into
// column-panel layout (gemmNR-wide, k-major), and each gemmMC-row block of A
// is packed into row panels (gemmMR-high, k-major) that a register-tiled
// gemmMR×gemmNR micro-kernel consumes. Packing zero-pads ragged tile tails,
// so the micro-kernel itself is branch-free; partial tiles are masked only at
// write-back. Full interior tiles dispatch to an AVX2+FMA assembly kernel on
// amd64 machines that support it (see gemm_amd64.s); edge tiles and other
// architectures run the pure-Go kernel. For a fixed output element the
// products accumulate in ascending-k order — the same order as a naive
// triple loop — so the Go path is bit-identical to the float32 reference
// oracle whenever k fits one slab (k <= gemmKC); the FMA path keeps the same
// order but fuses each multiply-add (one rounding instead of two), a
// documented ULP-level difference bounded by the oracle suite's tolerance.
const (
	gemmMR = 4   // micro-kernel rows (register tile height)
	gemmNR = 16  // micro-kernel cols (two YMM vectors per row)
	gemmKC = 256 // k-slab: one packed A panel is gemmMR*gemmKC*4 B = 4 KiB
	gemmMC = 128 // rows of A packed per block (gemmMC*gemmKC*4 B ≈ L2-sized)
)

// MatMul returns a @ b for a of shape [M,K] and b of shape [K,N].
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	gemm(out.data, a.data, k, false, b.data, n, false, m, n, k, false, nil, true)
	return out
}

// MatMulInto computes dst = a @ b (or dst += a @ b when accumulate is true)
// reusing dst's storage. dst must have shape [M,N].
func MatMulInto(dst, a, b *Tensor, accumulate bool) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	gemm(dst.data, a.data, k, false, b.data, n, false, m, n, k, accumulate, nil, true)
}

// MatMulTA returns aᵀ @ b for a of shape [K,M] and b of shape [K,N];
// the result has shape [M,N]. Used by dense-layer weight gradients.
func MatMulTA(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTA inner dimension mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(m, n)
	gemm(out.data, a.data, m, true, b.data, n, false, m, n, k, false, nil, true)
	return out
}

// MatMulTB returns a @ bᵀ for a of shape [M,K] and b of shape [N,K];
// the result has shape [M,N]. Used by dense-layer input gradients.
func MatMulTB(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTB inner dimension mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(m, n)
	gemm(out.data, a.data, k, false, b.data, k, true, m, n, k, false, nil, true)
	return out
}

// gemm computes dst[m,n] (+)= op(A) @ op(B), where op transposes when the
// corresponding flag is set. lda/ldb are the leading (row) strides of the
// *stored* layouts: element A[i,p] lives at a[i*lda+p] (or a[p*lda+i] when
// at), and B[p,j] at b[p*ldb+j] (or b[j*ldb+p] when bt). dst is row-major
// [m,n] with stride n. Temporaries come from sc (nil = default arena). When
// par is set the row blocks of each k-slab run on parallel workers; callers
// already inside a parallel region (per-sample convolution loops) pass
// par=false to avoid nested fan-out.
func gemm(dst []float32, a []float32, lda int, at bool, b []float32, ldb int, bt bool, m, n, k int, accumulate bool, sc *Scratch, par bool) {
	if m <= 0 || n <= 0 {
		return
	}
	arena := sc.orDefault()
	if !accumulate {
		clear(dst[:m*n])
	}
	if k <= 0 {
		return
	}
	npad := (n + gemmNR - 1) / gemmNR * gemmNR
	bpPtr := arena.get(gemmKC * npad)
	bp := *bpPtr
	for p0 := 0; p0 < k; p0 += gemmKC {
		kl := k - p0
		if kl > gemmKC {
			kl = gemmKC
		}
		packB(bp, b, ldb, bt, n, p0, kl)
		nBlocks := (m + gemmMC - 1) / gemmMC
		if par && nBlocks > 1 {
			// The closure is evaluated only on this branch, so the serial
			// path below stays allocation-free.
			parallel.ForChunked(nBlocks, 1, func(blo, bhi int) {
				gemmRowBlocks(dst, a, lda, at, bp, arena, m, n, p0, kl, blo, bhi)
			})
		} else {
			gemmRowBlocks(dst, a, lda, at, bp, arena, m, n, p0, kl, 0, nBlocks)
		}
	}
	arena.put(bpPtr)
}

// gemmRowBlocks processes row blocks [blo, bhi) of one k-slab: pack each
// gemmMC-row block of op(A) and sweep its micro-tiles against the packed B
// slab bp. A named function (not a closure) so the serial gemm path performs
// no per-call allocations.
func gemmRowBlocks(dst, a []float32, lda int, at bool, bp []float32, arena *Scratch, m, n, p0, kl, blo, bhi int) {
	apPtr := arena.get(gemmMC * gemmKC)
	ap := *apPtr
	for bi := blo; bi < bhi; bi++ {
		i0 := bi * gemmMC
		rows := m - i0
		if rows > gemmMC {
			rows = gemmMC
		}
		packA(ap, a, lda, at, i0, rows, p0, kl)
		for ir := 0; ir < rows; ir += gemmMR {
			tr := rows - ir
			if tr > gemmMR {
				tr = gemmMR
			}
			apanel := ap[(ir/gemmMR)*kl*gemmMR:]
			drow := dst[(i0+ir)*n:]
			for jr := 0; jr < n; jr += gemmNR {
				tc := n - jr
				if tc > gemmNR {
					tc = gemmNR
				}
				bpanel := bp[(jr/gemmNR)*kl*gemmNR:]
				microTile(drow[jr:], n, apanel, bpanel, kl, tr, tc)
			}
		}
	}
	arena.put(apPtr)
}

// microTile computes one (possibly ragged) output tile. With FMA support,
// every tile — full or ragged — runs the same assembly kernels so a given
// output element accumulates identically regardless of its tile position
// (zero-padded panel rows/columns compute into a discarded stack buffer).
// That keeps results independent of m/n raggedness: batch-1 and batch-N
// inference produce bitwise-equal logits. Without FMA the portable Go
// kernel has the same property.
func microTile(dst []float32, ldc int, ap, bp []float32, kl, tr, tc int) {
	if !useFMA {
		microKernel4x16(dst, ldc, ap, bp, kl, tr, tc)
		return
	}
	if tr == gemmMR {
		if tc == gemmNR {
			microKernel4x16FMA(&dst[0], int64(ldc), &ap[0], &bp[0], int64(kl))
			return
		}
		off := 0
		if tc >= 8 {
			microKernel4x8FMA(&dst[0], int64(ldc), &ap[0], &bp[0], int64(kl))
			off = 8
		}
		if tc-off >= 4 {
			microKernel4x4FMA(&dst[off], int64(ldc), &ap[0], &bp[off], int64(kl))
			off += 4
		}
		if off < tc {
			var tile [gemmMR * 4]float32
			microKernel4x4FMA(&tile[0], 4, &ap[0], &bp[off], int64(kl))
			for r := 0; r < tr; r++ {
				for c := 0; c < tc-off; c++ {
					dst[r*ldc+off+c] += tile[r*4+c]
				}
			}
		}
		return
	}
	// Short row tail: compute the full-height tile into a stack buffer (the
	// packed A panel is zero-padded past tr) and add back only live rows.
	var tile [gemmMR * gemmNR]float32
	for jc := 0; jc < tc; jc += 4 {
		microKernel4x4FMA(&tile[jc/4*gemmMR*4], 4, &ap[0], &bp[jc], int64(kl))
	}
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			dst[r*ldc+c] += tile[c/4*gemmMR*4+r*4+c%4]
		}
	}
}

// microKernel4x16 is the portable micro-kernel: a 4×16 output tile computed
// as four strided 4×4 sub-tiles over the 16-wide packed B panel. tr/tc mask
// the write-back for ragged edge tiles.
func microKernel4x16(dst []float32, ldc int, ap, bp []float32, kl, tr, tc int) {
	for s := 0; s*4 < tc; s++ {
		cw := tc - s*4
		if cw > 4 {
			cw = 4
		}
		microTile4x4(dst[s*4:], ldc, ap, bp[s*4:], kl, tr, cw)
	}
}

// microTile4x4 accumulates a 4×4 output tile over kl packed k-steps: ap
// holds gemmMR row values per k (zero-padded), bp gemmNR column values per k
// of which this tile consumes four. The 16 accumulators live in registers
// across the k loop; tr/tc mask the write-back. dst is the tile's top-left
// element, rows strided by ldc.
func microTile4x4(dst []float32, ldc int, ap, bp []float32, kl, tr, tc int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	for kk := 0; kk < kl; kk++ {
		av := ap[kk*4 : kk*4+4 : kk*4+4]
		bv := bp[kk*gemmNR : kk*gemmNR+4 : kk*gemmNR+4]
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	if tr == 4 && tc == 4 {
		d0 := dst[0:4:4]
		d1 := dst[ldc : ldc+4 : ldc+4]
		d2 := dst[2*ldc : 2*ldc+4 : 2*ldc+4]
		d3 := dst[3*ldc : 3*ldc+4 : 3*ldc+4]
		d0[0] += c00
		d0[1] += c01
		d0[2] += c02
		d0[3] += c03
		d1[0] += c10
		d1[1] += c11
		d1[2] += c12
		d1[3] += c13
		d2[0] += c20
		d2[1] += c21
		d2[2] += c22
		d2[3] += c23
		d3[0] += c30
		d3[1] += c31
		d3[2] += c32
		d3[3] += c33
		return
	}
	ct := [16]float32{
		c00, c01, c02, c03,
		c10, c11, c12, c13,
		c20, c21, c22, c23,
		c30, c31, c32, c33,
	}
	for r := 0; r < tr; r++ {
		for c := 0; c < tc; c++ {
			dst[r*ldc+c] += ct[r*4+c]
		}
	}
}

// packA packs rows [i0, i0+rows) of op(A), k-slab [p0, p0+kl), into
// gemmMR-high k-major panels: panel q holds rows i0+q*4…, laid out as 4
// consecutive row values per k step. Rows past the edge pack as zeros, so
// the micro-kernel needs no row masking.
func packA(dst, a []float32, lda int, trans bool, i0, rows, p0, kl int) {
	for q := 0; q*gemmMR < rows; q++ {
		panel := dst[q*kl*gemmMR : (q+1)*kl*gemmMR]
		r0 := i0 + q*gemmMR
		pr := rows - q*gemmMR
		if pr >= gemmMR && !trans {
			// Full panel, A row-major: four streaming reads.
			s0 := a[(r0+0)*lda+p0 : (r0+0)*lda+p0+kl]
			s1 := a[(r0+1)*lda+p0 : (r0+1)*lda+p0+kl]
			s2 := a[(r0+2)*lda+p0 : (r0+2)*lda+p0+kl]
			s3 := a[(r0+3)*lda+p0 : (r0+3)*lda+p0+kl]
			for kk := 0; kk < kl; kk++ {
				d := panel[kk*4 : kk*4+4 : kk*4+4]
				d[0] = s0[kk]
				d[1] = s1[kk]
				d[2] = s2[kk]
				d[3] = s3[kk]
			}
			continue
		}
		if trans {
			// Aᵀ stored [k, m]: each k step's panel rows are contiguous.
			for kk := 0; kk < kl; kk++ {
				src := a[(p0+kk)*lda+r0:]
				d := panel[kk*4 : kk*4+4 : kk*4+4]
				if pr >= gemmMR {
					s := src[0:4:4]
					d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
				} else {
					for r := 0; r < gemmMR; r++ {
						if r < pr {
							d[r] = src[r]
						} else {
							d[r] = 0
						}
					}
				}
			}
			continue
		}
		// Ragged row tail, row-major: copy valid rows, zero the rest.
		for kk := 0; kk < kl; kk++ {
			d := panel[kk*4 : kk*4+4 : kk*4+4]
			for r := 0; r < gemmMR; r++ {
				if r < pr {
					d[r] = a[(r0+r)*lda+p0+kk]
				} else {
					d[r] = 0
				}
			}
		}
	}
}

// packB packs all n columns of op(B), k-slab [p0, p0+kl), into gemmNR-wide
// k-major column panels, zero-padding the ragged column tail.
func packB(dst, b []float32, ldb int, trans bool, n, p0, kl int) {
	for q := 0; q*gemmNR < n; q++ {
		panel := dst[q*kl*gemmNR : (q+1)*kl*gemmNR]
		j0 := q * gemmNR
		pc := n - j0
		if pc > gemmNR {
			pc = gemmNR
		}
		if !trans {
			// B row-major [k, n]: each k step's panel cols are contiguous.
			if pc == gemmNR {
				for kk := 0; kk < kl; kk++ {
					s := b[(p0+kk)*ldb+j0 : (p0+kk)*ldb+j0+gemmNR : (p0+kk)*ldb+j0+gemmNR]
					copy(panel[kk*gemmNR:kk*gemmNR+gemmNR], s)
				}
			} else {
				for kk := 0; kk < kl; kk++ {
					d := panel[kk*gemmNR : kk*gemmNR+gemmNR : kk*gemmNR+gemmNR]
					for c := 0; c < gemmNR; c++ {
						if c < pc {
							d[c] = b[(p0+kk)*ldb+j0+c]
						} else {
							d[c] = 0
						}
					}
				}
			}
			continue
		}
		// Bᵀ stored [n, k]: each column is a contiguous k run.
		for c := 0; c < gemmNR; c++ {
			if c < pc {
				src := b[(j0+c)*ldb+p0 : (j0+c)*ldb+p0+kl]
				for kk := 0; kk < kl; kk++ {
					panel[kk*gemmNR+c] = src[kk]
				}
			} else {
				for kk := 0; kk < kl; kk++ {
					panel[kk*gemmNR+c] = 0
				}
			}
		}
	}
}
