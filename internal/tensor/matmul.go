package tensor

import (
	"fmt"

	"effnetscale/internal/parallel"
)

// MatMul returns a @ b for a of shape [M,K] and b of shape [K,N].
// The kernel is a cache-blocked ikj loop parallelized over row blocks.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n, false)
	return out
}

// MatMulInto computes dst = a @ b (or dst += a @ b when accumulate is true)
// reusing dst's storage. dst must have shape [M,N].
func MatMulInto(dst, a, b *Tensor, accumulate bool) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	matmulInto(dst.data, a.data, b.data, m, k, n, accumulate)
}

// matmulInto is the shared scalar kernel: dst[m,n] (+)= a[m,k] @ b[k,n].
// It uses an ikj ordering so the inner loop streams through contiguous rows
// of b and dst, which the Go compiler turns into reasonably tight code.
func matmulInto(dst, a, b []float32, m, k, n int, accumulate bool) {
	// Parallelize over output rows; each row is independent.
	parallel.ForChunked(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			if !accumulate {
				for j := range drow {
					drow[j] = 0
				}
			}
			arow := a[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				axpyRow(drow, av, brow)
			}
		}
	})
}

// axpyRow computes dst += alpha * src over equal-length rows. The 4-way
// manual unroll measurably improves throughput of the scalar kernel.
func axpyRow(dst []float32, alpha float32, src []float32) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulTA returns aᵀ @ b for a of shape [K,M] and b of shape [K,N];
// the result has shape [M,N]. Used by dense-layer weight gradients.
func MatMulTA(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTA inner dimension mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(m, n)
	od, ad, bd := out.data, a.data, b.data
	// out[i,j] = sum_p a[p,i]*b[p,j]. Parallelize over i.
	parallel.ForChunked(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := od[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				axpyRow(drow, av, bd[p*n:(p+1)*n])
			}
		}
	})
	return out
}

// MatMulTB returns a @ bᵀ for a of shape [M,K] and b of shape [N,K];
// the result has shape [M,N]. Used by dense-layer input gradients.
func MatMulTB(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTB inner dimension mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(m, n)
	od, ad, bd := out.data, a.data, b.data
	parallel.ForChunked(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				p := 0
				for ; p+4 <= k; p += 4 {
					s += arow[p]*brow[p] + arow[p+1]*brow[p+1] +
						arow[p+2]*brow[p+2] + arow[p+3]*brow[p+3]
				}
				for ; p < k; p++ {
					s += arow[p] * brow[p]
				}
				od[i*n+j] = s
			}
		}
	})
	return out
}
