package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewShapeAndLen(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{1, 1, 1, 1}, 1},
	}
	for _, c := range cases {
		x := New(c.shape...)
		if x.Len() != c.want {
			t.Errorf("New(%v).Len() = %d, want %d", c.shape, x.Len(), c.want)
		}
		if x.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, x.Rank(), len(c.shape))
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}, {3, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At(1,2,3) = %v, want 7.5", got)
	}
	// Row-major offset check: index (1,2,3) = 1*12 + 2*4 + 3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatalf("row-major layout violated: data[23] = %v", x.Data()[23])
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must share storage")
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped element order wrong: got %v", y.At(2, 1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(99, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b).Data(); got[0] != 5 || got[3] != 5 {
		t.Errorf("Add wrong: %v", got)
	}
	if got := Sub(a, b).Data(); got[0] != -3 || got[3] != 3 {
		t.Errorf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 6 || got[2] != 6 {
		t.Errorf("Mul wrong: %v", got)
	}
	if got := Div(a, b).Data(); got[3] != 4 {
		t.Errorf("Div wrong: %v", got)
	}
}

func TestScaleAndAxpy(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3}, 3)
	s := Scale(a, 2)
	want := []float32{2, -4, 6}
	for i, v := range s.Data() {
		if v != want[i] {
			t.Fatalf("Scale[%d] = %v, want %v", i, v, want[i])
		}
	}
	dst := FromSlice([]float32{1, 1, 1}, 3)
	AxpyInto(dst, 3, a)
	want = []float32{4, -5, 10}
	for i, v := range dst.Data() {
		if v != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestSumDotNorm(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if got := a.Sum(); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
	if got := a.Norm(); !almostEqual(got, 5, 1e-7) {
		t.Errorf("Norm = %v, want 5", got)
	}
	b := FromSlice([]float32{1, 2}, 2)
	if got := Dot(a, b); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
}

func TestAddCommutesQuick(t *testing.T) {
	f := func(vals [8]float32) bool {
		a := FromSlice(append([]float32(nil), vals[:4]...), 4)
		b := FromSlice(append([]float32(nil), vals[4:]...), 4)
		ab, ba := Add(a, b), Add(b, a)
		for i := range ab.Data() {
			x, y := ab.Data()[i], ba.Data()[i]
			if x != y && !(math.IsNaN(float64(x)) && math.IsNaN(float64(y))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleDistributesOverAddQuick(t *testing.T) {
	f := func(vals [8]int8, s int8) bool {
		// Use small integers so float arithmetic is exact.
		av := make([]float32, 4)
		bv := make([]float32, 4)
		for i := 0; i < 4; i++ {
			av[i] = float32(vals[i])
			bv[i] = float32(vals[i+4])
		}
		a, b := FromSlice(av, 4), FromSlice(bv, 4)
		lhs := Scale(Add(a, b), float32(s))
		rhs := Add(Scale(a, float32(s)), Scale(b, float32(s)))
		for i := range lhs.Data() {
			if lhs.Data()[i] != rhs.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMatMulAgainstNaive checks small fixed shapes against the shared
// float64 triple-loop oracle (oracle_test.go); the broader shape sweeps
// and both-kernel-path runs live in TestMatMulOracleSweep.
func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {33, 17, 9}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want, mag := oracleGEMM(a.Data(), b.Data(), k, n, false, false, m, n, k)
		assertOracle(t, fmt.Sprintf("MatMul(%dx%dx%d)", m, k, n), MatMul(a, b).Data(), want, mag, k)
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 5, 4, 6
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	want, mag := oracleGEMM(a.Data(), b.Data(), k, n, false, false, m, n, k)

	// MatMulTA(aT, b) must equal a@b.
	aT := New(k, m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			aT.Set(a.At(i, p), p, i)
		}
	}
	assertOracle(t, "MatMulTA", MatMulTA(aT, b).Data(), want, mag, k)
	// MatMulTB(a, bT) must equal a@b.
	bT := New(n, k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bT.Set(b.At(p, j), j, p)
		}
	}
	assertOracle(t, "MatMulTB", MatMulTB(a, bT).Data(), want, mag, k)
}

func TestMatMulIntoAccumulate(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2) // identity
	b := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	dst := FromSlice([]float32{10, 10, 10, 10}, 2, 2)
	MatMulInto(dst, a, b, true)
	want := []float32{11, 12, 13, 14}
	for i, v := range dst.Data() {
		if v != want[i] {
			t.Fatalf("accumulate MatMulInto[%d] = %v, want %v", i, v, want[i])
		}
	}
	MatMulInto(dst, a, b, false)
	for i, v := range dst.Data() {
		if v != b.Data()[i] {
			t.Fatalf("overwrite MatMulInto[%d] = %v, want %v", i, v, b.Data()[i])
		}
	}
}

func TestChannelBroadcastOps(t *testing.T) {
	// x: [1, 2, 2, 2]
	x := FromSlice([]float32{
		1, 2, 3, 4, // channel 0
		5, 6, 7, 8, // channel 1
	}, 1, 2, 2, 2)
	b := FromSlice([]float32{10, 20}, 2)
	y := AddChannel(x, b)
	if y.At(0, 0, 0, 0) != 11 || y.At(0, 1, 1, 1) != 28 {
		t.Fatalf("AddChannel wrong: %v", y.Data())
	}
	s := FromSlice([]float32{2, 3}, 1, 2)
	z := MulChannelNC(x, s)
	if z.At(0, 0, 1, 1) != 8 || z.At(0, 1, 0, 0) != 15 {
		t.Fatalf("MulChannelNC wrong: %v", z.Data())
	}
	sums := SumChannelNC(x)
	if sums.At(0, 0) != 10 || sums.At(0, 1) != 26 {
		t.Fatalf("SumChannelNC wrong: %v", sums.Data())
	}
}
