package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzMatMulShapes drives the blocked GEMM (and its transposed variants)
// through arbitrary shapes — ragged micro-tile tails, multi-slab k, single
// rows/columns — and checks every element against the float64 triple-loop
// oracle. Shapes are derived from the fuzz inputs by clamping, so every
// byte sequence maps to a valid case.
func FuzzMatMulShapes(f *testing.F) {
	f.Add(uint16(4), uint16(16), uint16(8), int64(1))
	f.Add(uint16(1), uint16(1), uint16(1), int64(2))
	f.Add(uint16(5), uint16(17), uint16(300), int64(3)) // k > gemmKC, ragged tails
	f.Add(uint16(130), uint16(40), uint16(64), int64(4))
	f.Add(uint16(3), uint16(5), uint16(2), int64(5))
	f.Fuzz(func(t *testing.T, mRaw, nRaw, kRaw uint16, seed int64) {
		m := 1 + int(mRaw)%96
		n := 1 + int(nRaw)%96
		k := 1 + int(kRaw)%(gemmKC+40)
		rng := rand.New(rand.NewSource(seed))

		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want, mag := oracleGEMM(a.Data(), b.Data(), k, n, false, false, m, n, k)
		assertOracle(t, "MatMul", MatMul(a, b).Data(), want, mag, k)

		at := Randn(rng, 1, k, m)
		want, mag = oracleGEMM(at.Data(), b.Data(), m, n, true, false, m, n, k)
		assertOracle(t, "MatMulTA", MatMulTA(at, b).Data(), want, mag, k)

		bt := Randn(rng, 1, n, k)
		want, mag = oracleGEMM(a.Data(), bt.Data(), k, k, false, true, m, n, k)
		assertOracle(t, "MatMulTB", MatMulTB(a, bt).Data(), want, mag, k)
	})
}

// FuzzConv2DOracle checks Conv2D (including the 1×1 fast paths, which the
// clamped shape space reaches whenever kh=kw=1) against the direct float64
// convolution oracle over fuzzed geometry: stride 1-3, pad 0-3, odd spatial
// sizes, cin=1, ragged cout.
func FuzzConv2DOracle(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(5), uint8(7), uint8(7), uint8(3), uint8(3), uint8(1), uint8(1), int64(1))
	f.Add(uint8(1), uint8(4), uint8(8), uint8(8), uint8(8), uint8(1), uint8(1), uint8(1), uint8(0), int64(2)) // 1×1 fast path
	f.Add(uint8(2), uint8(4), uint8(6), uint8(9), uint8(9), uint8(1), uint8(1), uint8(2), uint8(0), int64(3)) // strided 1×1
	f.Add(uint8(1), uint8(1), uint8(13), uint8(5), uint8(11), uint8(3), uint8(2), uint8(2), uint8(1), int64(4))
	f.Fuzz(func(t *testing.T, nRaw, cinRaw, coutRaw, hRaw, wRaw, khRaw, kwRaw, strideRaw, padRaw uint8, seed int64) {
		n := 1 + int(nRaw)%3
		cin := 1 + int(cinRaw)%8
		cout := 1 + int(coutRaw)%13
		h := 1 + int(hRaw)%12
		w := 1 + int(wRaw)%12
		kh := 1 + int(khRaw)%4
		kw := 1 + int(kwRaw)%4
		stride := 1 + int(strideRaw)%3
		pad := int(padRaw) % 4
		// Keep the padding sane: a kernel that can sit entirely in the pad
		// region only ever reads zeros, which is legal but uninteresting.
		if pad >= kh && pad >= kw {
			pad = kh - 1
		}
		spec := ConvSpec{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		if outSize(h, kh, stride, pad) <= 0 || outSize(w, kw, stride, pad) <= 0 {
			t.Skip("empty output")
		}
		rng := rand.New(rand.NewSource(seed))
		x := Randn(rng, 1, n, cin, h, w)
		wt := Randn(rng, 1, cout, cin, kh, kw)
		want, mag, k := oracleConv2D(x, wt, spec)
		assertOracle(t, "Conv2D", Conv2D(x, wt, spec).Data(), want, mag, k)
	})
}

// FuzzIm2ColAdjoint checks the defining adjoint property of the im2col /
// col2im pair over fuzzed geometry: for all x and c,
// ⟨c, im2col(x)⟩ == ⟨col2im(c), x⟩. Conv2DBackward's dx path is col2im of
// a GEMM result, so this pins the lowering's correctness independently of
// any convolution oracle.
func FuzzIm2ColAdjoint(f *testing.F) {
	f.Add(uint8(3), uint8(6), uint8(6), uint8(3), uint8(3), uint8(1), uint8(1), int64(1))
	f.Add(uint8(1), uint8(5), uint8(9), uint8(2), uint8(4), uint8(2), uint8(0), int64(2))
	f.Add(uint8(2), uint8(7), uint8(3), uint8(3), uint8(1), uint8(3), uint8(2), int64(3))
	f.Fuzz(func(t *testing.T, cinRaw, hRaw, wRaw, khRaw, kwRaw, strideRaw, padRaw uint8, seed int64) {
		cin := 1 + int(cinRaw)%6
		h := 1 + int(hRaw)%10
		w := 1 + int(wRaw)%10
		kh := 1 + int(khRaw)%4
		kw := 1 + int(kwRaw)%4
		stride := 1 + int(strideRaw)%3
		pad := int(padRaw) % 3
		spec := ConvSpec{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		oh := outSize(h, kh, stride, pad)
		ow := outSize(w, kw, stride, pad)
		if oh <= 0 || ow <= 0 {
			t.Skip("empty output")
		}
		rng := rand.New(rand.NewSource(seed))
		x := Randn(rng, 1, 1, cin, h, w)
		colLen := cin * kh * kw * oh * ow
		c := make([]float32, colLen)
		for i := range c {
			c[i] = float32(rng.NormFloat64())
		}
		col := make([]float32, colLen)
		im2col(col, x.Data(), cin, h, w, kh, kw, oh, ow, spec)
		var lhs float64
		for i := range c {
			lhs += float64(c[i]) * float64(col[i])
		}
		back := make([]float32, cin*h*w)
		col2im(back, c, cin, h, w, kh, kw, oh, ow, spec)
		var rhs float64
		for i := range back {
			rhs += float64(back[i]) * float64(x.Data()[i])
		}
		if math.Abs(lhs-rhs) > 1e-3*(math.Abs(lhs)+1) {
			t.Fatalf("adjoint mismatch: ⟨c, im2col(x)⟩=%g vs ⟨col2im(c), x⟩=%g", lhs, rhs)
		}
	})
}
