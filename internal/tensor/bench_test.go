package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{64, 256} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			x := Randn(rng, 1, n, n)
			y := Randn(rng, 1, n, n)
			b.SetBytes(int64(3 * n * n * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "64x64"
	case 256:
		return "256x256"
	}
	return "n"
}

func BenchmarkConv2DForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 4, 16, 16, 16)
	w := Randn(rng, 0.2, 32, 16, 3, 3)
	spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Conv2D(x, w, spec)
		}
	})
	b.Run("backward", func(b *testing.B) {
		dy := Randn(rng, 1, spec.OutShape(x, w)...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Conv2DBackward(x, w, dy, spec)
		}
	})
}

func BenchmarkDepthwiseForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := Randn(rng, 1, 4, 32, 16, 16)
	w := Randn(rng, 0.2, 32, 1, 3, 3)
	spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DepthwiseConv2D(x, w, spec)
		}
	})
	b.Run("backward", func(b *testing.B) {
		dy := Randn(rng, 1, spec.OutShape(x, &Tensor{shape: []int{32, 32, 3, 3}})...)
		// Correct dy shape from the real forward.
		dy = Randn(rng, 1, DepthwiseConv2D(x, w, spec).Shape()...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			DepthwiseConv2DBackward(x, w, dy, spec)
		}
	})
}

func BenchmarkElementwiseAdd1M(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 1, 1<<20)
	y := Randn(rng, 1, 1<<20)
	b.SetBytes(3 << 22)
	for i := 0; i < b.N; i++ {
		Add(x, y)
	}
}

// BenchmarkConv measures the steady-state conv kernels through the Into
// variants with a warm scratch arena — the configuration the training loop
// runs in. ReportAllocs proves the allocs/op = 0 contract that the
// bench-regression guard enforces.
func BenchmarkConv(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sc := NewScratch()
	b.Run("forward3x3", func(b *testing.B) {
		x := Randn(rng, 1, 4, 16, 16, 16)
		w := Randn(rng, 0.2, 32, 16, 3, 3)
		spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		dst := New(spec.OutShape(x, w)...)
		Conv2DInto(dst, x, w, spec, sc) // warm the arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Conv2DInto(dst, x, w, spec, sc)
		}
	})
	b.Run("forward1x1", func(b *testing.B) {
		x := Randn(rng, 1, 4, 32, 16, 16)
		w := Randn(rng, 0.2, 64, 32, 1, 1)
		spec := ConvSpec{StrideH: 1, StrideW: 1}
		dst := New(spec.OutShape(x, w)...)
		Conv2DInto(dst, x, w, spec, sc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Conv2DInto(dst, x, w, spec, sc)
		}
	})
	b.Run("backward3x3", func(b *testing.B) {
		x := Randn(rng, 1, 4, 16, 16, 16)
		w := Randn(rng, 0.2, 32, 16, 3, 3)
		spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		dy := Randn(rng, 1, spec.OutShape(x, w)...)
		dx := New(x.Shape()...)
		dw := New(w.Shape()...)
		Conv2DBackwardInto(dx, dw, x, w, dy, spec, sc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Conv2DBackwardInto(dx, dw, x, w, dy, spec, sc)
		}
	})
	b.Run("backward1x1", func(b *testing.B) {
		x := Randn(rng, 1, 4, 32, 16, 16)
		w := Randn(rng, 0.2, 64, 32, 1, 1)
		spec := ConvSpec{StrideH: 1, StrideW: 1}
		dy := Randn(rng, 1, spec.OutShape(x, w)...)
		dx := New(x.Shape()...)
		dw := New(w.Shape()...)
		Conv2DBackwardInto(dx, dw, x, w, dy, spec, sc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Conv2DBackwardInto(dx, dw, x, w, dy, spec, sc)
		}
	})
	b.Run("depthwise", func(b *testing.B) {
		x := Randn(rng, 1, 4, 32, 16, 16)
		w := Randn(rng, 0.2, 32, 1, 3, 3)
		spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		dst := New(DepthwiseConv2D(x, w, spec).Shape()...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			DepthwiseConv2DInto(dst, x, w, spec)
		}
	})
}
