//go:build !amd64

package tensor

// useFMA is false off amd64: every tile runs the portable Go micro-kernel.
const useFMA = false

// forceFMA is a no-op off amd64; only the portable kernel exists.
func forceFMA(bool) func() { return func() {} }

// microKernel4x16FMA is never called when useFMA is false; this stub only
// satisfies the linker on non-amd64 builds.
func microKernel4x16FMA(dst *float32, ldc int64, ap, bp *float32, kl int64) {
	panic("tensor: FMA micro-kernel unavailable on this architecture")
}

func microKernel4x8FMA(dst *float32, ldc int64, ap, bp *float32, kl int64) {
	panic("tensor: FMA micro-kernel unavailable on this architecture")
}

func microKernel4x4FMA(dst *float32, ldc int64, ap, bp *float32, kl int64) {
	panic("tensor: FMA micro-kernel unavailable on this architecture")
}
