package tensor

import (
	"math/bits"
	"sync"
)

// Scratch is a reusable arena of float32 buffers for kernel temporaries:
// im2col column matrices, packed GEMM panels, strided 1×1-conv gathers and
// per-worker weight-gradient partials. Kernels that accept a *Scratch draw
// every temporary from it instead of calling make, so a steady-state
// training or serving step performs zero kernel allocations (see
// BenchmarkConv allocs/op).
//
// Buffers are recycled through power-of-two size-class pools: a kernel that
// interleaves a large im2col buffer with small packing panels never evicts
// one with the other, which is what keeps the steady state allocation-free.
//
// A Scratch is safe for concurrent use: each size class is a sync.Pool, so
// parallel kernel workers check out their own buffers. Passing nil to any
// kernel falls back to a process-wide default arena. The replica engine
// owns one Scratch per engine and threads it through nn.Ctx so concurrent
// engines (train + serve in one process) keep separate working sets;
// dropping the engine releases the arena to the garbage collector.
type Scratch struct {
	classes [33]sync.Pool // classes[b] holds buffers with cap >= 1<<b
}

// NewScratch returns an empty arena. Buffers are created on demand and
// sized to their class, so the arena's footprint is the high-water mark
// of the kernels that borrow from it (rounded up to powers of two).
func NewScratch() *Scratch {
	return &Scratch{}
}

// defaultScratch serves kernels called with a nil *Scratch.
var defaultScratch = NewScratch()

func (s *Scratch) orDefault() *Scratch {
	if s == nil {
		return defaultScratch
	}
	return s
}

// sizeClass is the smallest b with 1<<b >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get borrows a buffer of length n (contents undefined). The returned
// pointer must be handed back via put; the *[]float32 indirection keeps
// Put from allocating a fresh interface box on every cycle.
func (s *Scratch) get(n int) *[]float32 {
	b := sizeClass(n)
	p, _ := s.classes[b].Get().(*[]float32)
	if p == nil {
		buf := make([]float32, n, 1<<b)
		return &buf
	}
	*p = (*p)[:n]
	return p
}

// getZeroed borrows a buffer of length n with every element set to zero.
func (s *Scratch) getZeroed(n int) *[]float32 {
	p := s.get(n)
	buf := *p
	for i := range buf {
		buf[i] = 0
	}
	return p
}

func (s *Scratch) put(p *[]float32) {
	c := cap(*p)
	if c == 0 {
		return
	}
	// File under the largest class the capacity fully covers, so a future
	// get of that class is always satisfied without reallocation.
	b := bits.Len(uint(c)) - 1
	s.classes[b].Put(p)
}
