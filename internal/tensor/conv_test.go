package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestConv2DAgainstNaive checks a fixed shape table against the shared
// float64 direct-convolution oracle (oracle_test.go); the both-kernel-path
// sweep lives in TestConv2DOracleSweep.
func TestConv2DAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		n, cin, h, w, cout, k int
		spec                  ConvSpec
	}{
		{1, 1, 5, 5, 1, 3, ConvSpec{1, 1, 1, 1}},
		{2, 3, 8, 8, 4, 3, ConvSpec{1, 1, 1, 1}},
		{2, 3, 9, 9, 5, 3, ConvSpec{2, 2, 1, 1}},
		{1, 2, 7, 7, 3, 5, ConvSpec{2, 2, 2, 2}},
		{3, 4, 6, 6, 2, 1, ConvSpec{1, 1, 0, 0}},
		{1, 2, 8, 8, 2, 1, ConvSpec{2, 2, 0, 0}},
	}
	for _, c := range cases {
		x := Randn(rng, 1, c.n, c.cin, c.h, c.w)
		w := Randn(rng, 1, c.cout, c.cin, c.k, c.k)
		got := Conv2D(x, w, c.spec)
		want, mag, k := oracleConv2D(x, w, c.spec)
		if got.Len() != len(want) {
			t.Fatalf("Conv2D case %+v: %d outputs, oracle has %d", c, got.Len(), len(want))
		}
		assertOracle(t, fmt.Sprintf("Conv2D case %+v", c), got.Data(), want, mag, k)
	}
}

// numericalGrad computes the central finite-difference gradient of
// f with respect to x, perturbing one element at a time.
func numericalGrad(x *Tensor, f func() float64, eps float32) *Tensor {
	g := New(x.Shape()...)
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		plus := f()
		x.Data()[i] = orig - eps
		minus := f()
		x.Data()[i] = orig
		g.Data()[i] = float32((plus - minus) / (2 * float64(eps)))
	}
	return g
}

func checkGrad(t *testing.T, name string, analytic, numeric *Tensor, tol float64) {
	t.Helper()
	for i := range analytic.Data() {
		a, n := float64(analytic.Data()[i]), float64(numeric.Data()[i])
		if math.Abs(a-n) > tol*(1+math.Abs(a)+math.Abs(n)) {
			t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, a, n)
		}
	}
}

func TestConv2DBackwardGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 1, 2, 2, 5, 5)
	w := Randn(rng, 1, 3, 2, 3, 3)
	spec := ConvSpec{2, 2, 1, 1}
	// Loss = sum(conv(x, w) * fixed random weighting) to get nontrivial dy.
	weighting := Randn(rng, 1, spec.OutShape(x, w)...)
	loss := func() float64 {
		y := Conv2D(x, w, spec)
		return Dot(y, weighting)
	}
	dx, dw := Conv2DBackward(x, w, weighting, spec)
	checkGrad(t, "conv dx", dx, numericalGrad(x, loss, 1e-2), 2e-2)
	checkGrad(t, "conv dw", dw, numericalGrad(w, loss, 1e-2), 2e-2)
}

// TestDepthwiseConv2DAgainstNaive checks a fixed shape table against the
// shared float64 depthwise oracle; the both-kernel-path sweep lives in
// TestDepthwiseOracleSweep.
func TestDepthwiseConv2DAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct {
		n, ch, h, w, k int
		spec           ConvSpec
	}{
		{1, 1, 5, 5, 3, ConvSpec{1, 1, 1, 1}},
		{2, 4, 8, 8, 3, ConvSpec{2, 2, 1, 1}},
		{1, 3, 7, 7, 5, ConvSpec{1, 1, 2, 2}},
	} {
		x := Randn(rng, 1, c.n, c.ch, c.h, c.w)
		w := Randn(rng, 1, c.ch, 1, c.k, c.k)
		got := DepthwiseConv2D(x, w, c.spec)
		want, mag, k := oracleDepthwise(x, w, c.spec)
		assertOracle(t, fmt.Sprintf("DepthwiseConv2D case %+v", c), got.Data(), want, mag, k)
	}
}

func TestDepthwiseBackwardGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Randn(rng, 1, 2, 3, 6, 6)
	w := Randn(rng, 1, 3, 1, 3, 3)
	spec := ConvSpec{2, 2, 1, 1}
	weighting := Randn(rng, 1, spec.OutShape(x, &Tensor{shape: []int{3, 3, 3, 3}})[0], 3, 3, 3)
	// Build weighting with the true output shape instead.
	y := DepthwiseConv2D(x, w, spec)
	weighting = Randn(rng, 1, y.Shape()...)
	loss := func() float64 {
		return Dot(DepthwiseConv2D(x, w, spec), weighting)
	}
	dx, dw := DepthwiseConv2DBackward(x, w, weighting, spec)
	checkGrad(t, "dw dx", dx, numericalGrad(x, loss, 1e-2), 2e-2)
	checkGrad(t, "dw dw", dw, numericalGrad(w, loss, 1e-2), 2e-2)
}

func TestConvOutShape(t *testing.T) {
	x := New(2, 3, 32, 32)
	w := New(8, 3, 3, 3)
	spec := ConvSpec{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	got := spec.OutShape(x, w)
	want := []int{2, 8, 16, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OutShape = %v, want %v", got, want)
		}
	}
	if SamePad(3) != 1 || SamePad(5) != 2 || SamePad(1) != 0 {
		t.Fatal("SamePad wrong")
	}
}
