package tensor

import (
	"fmt"

	"effnetscale/internal/parallel"
)

// ConvSpec describes a 2-D convolution's geometry. Padding is symmetric
// (PadH rows above and below, PadW columns left and right), which is how the
// layer code realizes TensorFlow-style SAME padding for odd kernels.
type ConvSpec struct {
	StrideH, StrideW int
	PadH, PadW       int
}

// OutSize returns the spatial output size for an input of size in with
// kernel size k under the spec, for one dimension.
func outSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// OutShape returns the NCHW output shape of Conv2D(x, w, spec).
func (s ConvSpec) OutShape(x, w *Tensor) []int {
	n, _, h, wd := x.Dim4()
	cout := w.Dim(0)
	kh, kw := w.Dim(2), w.Dim(3)
	return []int{n, cout, outSize(h, kh, s.StrideH, s.PadH), outSize(wd, kw, s.StrideW, s.PadW)}
}

// SamePad returns the symmetric padding that keeps output size == ceil(in/stride)
// for an odd kernel size k.
func SamePad(k int) int { return (k - 1) / 2 }

// is1x1 reports whether the convolution is a pointwise (1×1, unpadded)
// conv — the shape the dedicated fast path handles without im2col.
func is1x1(kh, kw int, spec ConvSpec) bool {
	return kh == 1 && kw == 1 && spec.PadH == 0 && spec.PadW == 0
}

// im2col expands one sample's receptive fields into a column matrix of shape
// [Cin*KH*KW, OH*OW]. xd is the sample's [Cin,H,W] data. The result is
// written into col, which must have the right size.
func im2col(col []float32, xd []float32, cin, h, w, kh, kw, oh, ow int, spec ConvSpec) {
	// col[(c*kh*kw + i*kw + j) * (oh*ow) + (oy*ow + ox)] = x[c, oy*s - p + i, ox*s - p + j]
	ohw := oh * ow
	for c := 0; c < cin; c++ {
		xbase := c * h * w
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				crow := col[(c*kh*kw+i*kw+j)*ohw:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + i
					orow := crow[oy*ow : oy*ow+ow]
					if iy < 0 || iy >= h {
						for ox := range orow {
							orow[ox] = 0
						}
						continue
					}
					xrow := xd[xbase+iy*w : xbase+iy*w+w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + j
						if ix < 0 || ix >= w {
							orow[ox] = 0
						} else {
							orow[ox] = xrow[ix]
						}
					}
				}
			}
		}
	}
}

// col2im scatters a column-matrix gradient back into an input-shaped gradient
// (accumulating where receptive fields overlap).
func col2im(dx []float32, col []float32, cin, h, w, kh, kw, oh, ow int, spec ConvSpec) {
	ohw := oh * ow
	for c := 0; c < cin; c++ {
		xbase := c * h * w
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				crow := col[(c*kh*kw+i*kw+j)*ohw:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + i
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + j
						if ix < 0 || ix >= w {
							continue
						}
						dx[xbase+iy*w+ix] += crow[oy*ow+ox]
					}
				}
			}
		}
	}
}

// Conv2D computes a standard convolution of x [N,Cin,H,W] with weights
// w [Cout,Cin,KH,KW] under spec, returning [N,Cout,OH,OW]. Temporaries come
// from the process-wide default arena; engines with their own Scratch use
// Conv2DScratch.
func Conv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	return Conv2DScratch(x, w, spec, nil)
}

// Conv2DScratch is Conv2D drawing its temporaries from sc (nil = default).
func Conv2DScratch(x, w *Tensor, spec ConvSpec, sc *Scratch) *Tensor {
	out := New(spec.OutShape(x, w)...)
	Conv2DInto(out, x, w, spec, sc)
	return out
}

// Conv2DInto computes the convolution into dst, which must have shape
// spec.OutShape(x, w). Steady-state it allocates nothing: the im2col column
// matrix and GEMM packing panels are reused through sc.
func Conv2DInto(dst, x, w *Tensor, spec ConvSpec, sc *Scratch) {
	n, cin, h, wd := x.Dim4()
	cout, cin2, kh, kw := w.Dim4()
	if cin != cin2 {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch x=%v w=%v", x.shape, w.shape))
	}
	oh := outSize(h, kh, spec.StrideH, spec.PadH)
	ow := outSize(wd, kw, spec.StrideW, spec.PadW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D produces empty output for x=%v w=%v spec=%+v", x.shape, w.shape, spec))
	}
	dn, dc, doh, dow := dst.Dim4()
	if dn != n || dc != cout || doh != oh || dow != ow {
		panic(fmt.Sprintf("tensor: Conv2DInto dst shape %v, want %v", dst.shape, []int{n, cout, oh, ow}))
	}
	arena := sc.orDefault()

	// Parallelize across samples when the batch can feed every worker;
	// otherwise run samples serially and let the GEMM spread row blocks.
	// The closure exists only on the parallel branch so the serial path
	// (named function, explicit args) stays allocation-free.
	if workers := parallel.MaxWorkers(); workers > 1 && n >= workers {
		parallel.ForChunked(n, 1, func(lo, hi int) {
			conv2DForwardRange(dst, x, w, spec, arena, false, lo, hi)
		})
	} else {
		conv2DForwardRange(dst, x, w, spec, arena, true, 0, n)
	}
}

// conv2DForwardRange convolves samples [lo, hi) into dst. gemmPar spreads
// each sample's GEMM over row-block workers; callers already fanned out
// across samples pass false to avoid nested parallelism.
func conv2DForwardRange(dst, x, w *Tensor, spec ConvSpec, arena *Scratch, gemmPar bool, lo, hi int) {
	_, cin, h, wd := x.Dim4()
	cout, _, kh, kw := w.Dim4()
	_, _, oh, ow := dst.Dim4()
	ckk := cin * kh * kw
	ohw := oh * ow
	chw := cin * h * wd
	if is1x1(kh, kw, spec) && spec.StrideH == 1 && spec.StrideW == 1 {
		// Pointwise fast path: out_s [Cout,HW] = W [Cout,Cin] @ x_s
		// [Cin,HW] — the input matrix is the activation itself, no
		// im2col copy at all. This is the layout the channel-sharded
		// 1×1 convs of the hybrid engine hit (efficientnet.Conv1x1Fn).
		for s := lo; s < hi; s++ {
			gemm(dst.data[s*cout*ohw:(s+1)*cout*ohw], w.data, cin, false,
				x.data[s*chw:(s+1)*chw], ohw, false, cout, ohw, cin, false, arena, gemmPar)
		}
		return
	}
	if is1x1(kh, kw, spec) {
		// Strided 1×1: gather the strided grid into a dense [Cin,OHW]
		// matrix (far smaller than an im2col buffer), then one GEMM.
		gp := arena.get(cin * ohw)
		for s := lo; s < hi; s++ {
			gather1x1(*gp, x.data[s*chw:(s+1)*chw], cin, h, wd, oh, ow, spec)
			gemm(dst.data[s*cout*ohw:(s+1)*cout*ohw], w.data, cin, false,
				*gp, ohw, false, cout, ohw, cin, false, arena, gemmPar)
		}
		arena.put(gp)
		return
	}
	cp := arena.get(ckk * ohw)
	for s := lo; s < hi; s++ {
		im2col(*cp, x.data[s*chw:(s+1)*chw], cin, h, wd, kh, kw, oh, ow, spec)
		// out_s [Cout,OHW] = W [Cout,CKK] @ col [CKK,OHW]
		gemm(dst.data[s*cout*ohw:(s+1)*cout*ohw], w.data, ckk, false,
			*cp, ohw, false, cout, ohw, ckk, false, arena, gemmPar)
	}
	arena.put(cp)
}

// gather1x1 packs the stride-sampled spatial grid of one [Cin,H,W] sample
// into a dense [Cin,OH*OW] matrix.
func gather1x1(dst, xs []float32, cin, h, w, oh, ow int, spec ConvSpec) {
	ohw := oh * ow
	for c := 0; c < cin; c++ {
		d := dst[c*ohw : (c+1)*ohw]
		for oy := 0; oy < oh; oy++ {
			xrow := xs[c*h*w+oy*spec.StrideH*w:]
			drow := d[oy*ow : oy*ow+ow]
			for ox := range drow {
				drow[ox] = xrow[ox*spec.StrideW]
			}
		}
	}
}

// scatter1x1Add adds a dense [Cin,OH*OW] gradient back onto the
// stride-sampled positions of one [Cin,H,W] gradient.
func scatter1x1Add(dxs, g []float32, cin, h, w, oh, ow int, spec ConvSpec) {
	ohw := oh * ow
	for c := 0; c < cin; c++ {
		s := g[c*ohw : (c+1)*ohw]
		for oy := 0; oy < oh; oy++ {
			dxrow := dxs[c*h*w+oy*spec.StrideH*w:]
			srow := s[oy*ow : oy*ow+ow]
			for ox := range srow {
				dxrow[ox*spec.StrideW] += srow[ox]
			}
		}
	}
}

// Conv2DBackward computes the gradients of Conv2D with respect to the input
// and the weights given the upstream gradient dy [N,Cout,OH,OW].
func Conv2DBackward(x, w, dy *Tensor, spec ConvSpec) (dx, dw *Tensor) {
	return Conv2DBackwardScratch(x, w, dy, spec, nil)
}

// Conv2DBackwardScratch is Conv2DBackward drawing temporaries from sc.
func Conv2DBackwardScratch(x, w, dy *Tensor, spec ConvSpec, sc *Scratch) (dx, dw *Tensor) {
	dx = New(x.shape...)
	dw = New(w.shape...)
	Conv2DBackwardInto(dx, dw, x, w, dy, spec, sc)
	return dx, dw
}

// Conv2DBackwardInto computes input and weight gradients into dx and dw
// (overwriting both; shapes must match x and w). Steady-state it allocates
// nothing. Worker-partial weight gradients merge in deterministic chunk
// order, so results do not depend on goroutine scheduling.
func Conv2DBackwardInto(dx, dw, x, w, dy *Tensor, spec ConvSpec, sc *Scratch) {
	n := x.Dim(0)
	if !SameShape(dx, x) || !SameShape(dw, w) {
		panic(fmt.Sprintf("tensor: Conv2DBackwardInto gradient shapes dx=%v dw=%v, want %v and %v", dx.shape, dw.shape, x.shape, w.shape))
	}
	arena := sc.orDefault()
	dx.Zero()
	dw.Zero()

	workers := parallel.MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		conv2DBackwardRange(dx, dw.data, x, w, dy, spec, arena, false, 0, n)
		return
	}
	// Deterministic parallel reduction: chunk c accumulates into its own
	// region of one pooled buffer, and the partials merge in chunk order —
	// the sum never depends on which worker finished first.
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	wlen := len(w.data)
	pp := arena.getZeroed(nChunks * wlen)
	partials := *pp
	parallel.ForChunked(nChunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			conv2DBackwardRange(dx, partials[c*wlen:(c+1)*wlen], x, w, dy, spec, arena, false, lo, hi)
		}
	})
	for c := 0; c < nChunks; c++ {
		part := partials[c*wlen : (c+1)*wlen]
		for i, v := range part {
			dw.data[i] += v
		}
	}
	arena.put(pp)
}

// conv2DBackwardRange accumulates the weight gradient of samples [lo, hi)
// into dwAcc and writes their (exclusively owned) input-gradient slices of
// dx. A named function so the single-worker path allocates nothing.
func conv2DBackwardRange(dx *Tensor, dwAcc []float32, x, w, dy *Tensor, spec ConvSpec, arena *Scratch, gemmPar bool, lo, hi int) {
	_, cin, h, wd := x.Dim4()
	cout, _, kh, kw := w.Dim4()
	_, _, oh, ow := dy.Dim4()
	ckk := cin * kh * kw
	ohw := oh * ow
	chw := cin * h * wd
	pointwise := is1x1(kh, kw, spec)
	unitStride := spec.StrideH == 1 && spec.StrideW == 1
	if pointwise && unitStride {
		for s := lo; s < hi; s++ {
			dys := dy.data[s*cout*ohw : (s+1)*cout*ohw]
			// dW [Cout,Cin] += dy_s [Cout,HW] @ x_sᵀ
			gemm(dwAcc, dys, ohw, false, x.data[s*chw:(s+1)*chw], ohw, true,
				cout, cin, ohw, true, arena, gemmPar)
			// dx_s [Cin,HW] = Wᵀ [Cin,Cout] @ dy_s
			gemm(dx.data[s*chw:(s+1)*chw], w.data, cin, true, dys, ohw, false,
				cin, ohw, cout, false, arena, gemmPar)
		}
		return
	}
	if pointwise {
		gp := arena.get(cin * ohw)
		dgp := arena.get(cin * ohw)
		for s := lo; s < hi; s++ {
			dys := dy.data[s*cout*ohw : (s+1)*cout*ohw]
			gather1x1(*gp, x.data[s*chw:(s+1)*chw], cin, h, wd, oh, ow, spec)
			gemm(dwAcc, dys, ohw, false, *gp, ohw, true, cout, cin, ohw, true, arena, gemmPar)
			gemm(*dgp, w.data, cin, true, dys, ohw, false, cin, ohw, cout, false, arena, gemmPar)
			scatter1x1Add(dx.data[s*chw:(s+1)*chw], *dgp, cin, h, wd, oh, ow, spec)
		}
		arena.put(dgp)
		arena.put(gp)
		return
	}
	cp := arena.get(ckk * ohw)
	dcp := arena.get(ckk * ohw)
	for s := lo; s < hi; s++ {
		dys := dy.data[s*cout*ohw : (s+1)*cout*ohw]
		im2col(*cp, x.data[s*chw:(s+1)*chw], cin, h, wd, kh, kw, oh, ow, spec)
		// dW [Cout,CKK] += dy_s [Cout,OHW] @ colᵀ
		gemm(dwAcc, dys, ohw, false, *cp, ohw, true, cout, ckk, ohw, true, arena, gemmPar)
		// dcol [CKK,OHW] = Wᵀ [CKK,Cout] @ dy_s
		gemm(*dcp, w.data, ckk, true, dys, ohw, false, ckk, ohw, cout, false, arena, gemmPar)
		col2im(dx.data[s*chw:(s+1)*chw], *dcp, cin, h, wd, kh, kw, oh, ow, spec)
	}
	arena.put(dcp)
	arena.put(cp)
}
