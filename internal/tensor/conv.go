package tensor

import (
	"fmt"

	"effnetscale/internal/parallel"
)

// ConvSpec describes a 2-D convolution's geometry. Padding is symmetric
// (PadH rows above and below, PadW columns left and right), which is how the
// layer code realizes TensorFlow-style SAME padding for odd kernels.
type ConvSpec struct {
	StrideH, StrideW int
	PadH, PadW       int
}

// OutSize returns the spatial output size for an input of size in with
// kernel size k under the spec, for one dimension.
func outSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// OutShape returns the NCHW output shape of Conv2D(x, w, spec).
func (s ConvSpec) OutShape(x, w *Tensor) []int {
	n, _, h, wd := x.Dim4()
	cout := w.Dim(0)
	kh, kw := w.Dim(2), w.Dim(3)
	return []int{n, cout, outSize(h, kh, s.StrideH, s.PadH), outSize(wd, kw, s.StrideW, s.PadW)}
}

// SamePad returns the symmetric padding that keeps output size == ceil(in/stride)
// for an odd kernel size k.
func SamePad(k int) int { return (k - 1) / 2 }

// Im2Col expands one sample's receptive fields into a column matrix of shape
// [Cin*KH*KW, OH*OW]. xd is the sample's [Cin,H,W] data. The result is
// written into col, which must have the right size.
func im2col(col []float32, xd []float32, cin, h, w, kh, kw, oh, ow int, spec ConvSpec) {
	// col[(c*kh*kw + i*kw + j) * (oh*ow) + (oy*ow + ox)] = x[c, oy*s - p + i, ox*s - p + j]
	ohw := oh * ow
	for c := 0; c < cin; c++ {
		xbase := c * h * w
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				crow := col[(c*kh*kw+i*kw+j)*ohw:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + i
					orow := crow[oy*ow : oy*ow+ow]
					if iy < 0 || iy >= h {
						for ox := range orow {
							orow[ox] = 0
						}
						continue
					}
					xrow := xd[xbase+iy*w : xbase+iy*w+w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + j
						if ix < 0 || ix >= w {
							orow[ox] = 0
						} else {
							orow[ox] = xrow[ix]
						}
					}
				}
			}
		}
	}
}

// col2im scatters a column-matrix gradient back into an input-shaped gradient
// (accumulating where receptive fields overlap).
func col2im(dx []float32, col []float32, cin, h, w, kh, kw, oh, ow int, spec ConvSpec) {
	ohw := oh * ow
	for c := 0; c < cin; c++ {
		xbase := c * h * w
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				crow := col[(c*kh*kw+i*kw+j)*ohw:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + i
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + j
						if ix < 0 || ix >= w {
							continue
						}
						dx[xbase+iy*w+ix] += crow[oy*ow+ox]
					}
				}
			}
		}
	}
}

// Conv2D computes a standard convolution of x [N,Cin,H,W] with weights
// w [Cout,Cin,KH,KW] under spec, returning [N,Cout,OH,OW]. The implementation
// is im2col + matmul per sample, parallelized over the batch.
func Conv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	n, cin, h, wd := x.Dim4()
	cout, cin2, kh, kw := w.Dim4()
	if cin != cin2 {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch x=%v w=%v", x.shape, w.shape))
	}
	oh := outSize(h, kh, spec.StrideH, spec.PadH)
	ow := outSize(wd, kw, spec.StrideW, spec.PadW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D produces empty output for x=%v w=%v spec=%+v", x.shape, w.shape, spec))
	}
	out := New(n, cout, oh, ow)
	ckk := cin * kh * kw
	ohw := oh * ow
	wmat := w.data // [cout, ckk] row-major view

	parallel.ForChunked(n, 1, func(lo, hi int) {
		col := make([]float32, ckk*ohw)
		for s := lo; s < hi; s++ {
			im2col(col, x.data[s*cin*h*wd:(s+1)*cin*h*wd], cin, h, wd, kh, kw, oh, ow, spec)
			// out_s [cout, ohw] = wmat [cout, ckk] @ col [ckk, ohw]
			dst := out.data[s*cout*ohw : (s+1)*cout*ohw]
			for i := 0; i < cout; i++ {
				drow := dst[i*ohw : (i+1)*ohw]
				wrow := wmat[i*ckk : (i+1)*ckk]
				for p, wv := range wrow {
					if wv == 0 {
						continue
					}
					axpyRow(drow, wv, col[p*ohw:(p+1)*ohw])
				}
			}
		}
	})
	return out
}

// Conv2DBackward computes the gradients of Conv2D with respect to the input
// and the weights given the upstream gradient dy [N,Cout,OH,OW].
func Conv2DBackward(x, w, dy *Tensor, spec ConvSpec) (dx, dw *Tensor) {
	n, cin, h, wd := x.Dim4()
	cout, _, kh, kw := w.Dim4()
	_, _, oh, ow := dy.Dim4()
	ckk := cin * kh * kw
	ohw := oh * ow

	dx = New(x.shape...)
	// Per-worker dw accumulators avoid a lock on the shared weight gradient.
	nWorkers := parallel.MaxWorkers()
	if nWorkers > n {
		nWorkers = n
	}
	partials := make(chan []float32, nWorkers+1)

	parallel.ForChunked(n, 1, func(lo, hi int) {
		col := make([]float32, ckk*ohw)
		dcol := make([]float32, ckk*ohw)
		dwLocal := make([]float32, len(w.data))
		for s := lo; s < hi; s++ {
			xs := x.data[s*cin*h*wd : (s+1)*cin*h*wd]
			im2col(col, xs, cin, h, wd, kh, kw, oh, ow, spec)
			dys := dy.data[s*cout*ohw : (s+1)*cout*ohw]
			// dW += dy_s [cout, ohw] @ col^T [ohw, ckk]
			for i := 0; i < cout; i++ {
				dyrow := dys[i*ohw : (i+1)*ohw]
				dwrow := dwLocal[i*ckk : (i+1)*ckk]
				for p := 0; p < ckk; p++ {
					crow := col[p*ohw : (p+1)*ohw]
					var acc float32
					q := 0
					for ; q+4 <= ohw; q += 4 {
						acc += dyrow[q]*crow[q] + dyrow[q+1]*crow[q+1] +
							dyrow[q+2]*crow[q+2] + dyrow[q+3]*crow[q+3]
					}
					for ; q < ohw; q++ {
						acc += dyrow[q] * crow[q]
					}
					dwrow[p] += acc
				}
			}
			// dcol = w^T [ckk, cout] @ dy_s [cout, ohw]
			for i := range dcol {
				dcol[i] = 0
			}
			for i := 0; i < cout; i++ {
				wrow := w.data[i*ckk : (i+1)*ckk]
				dyrow := dys[i*ohw : (i+1)*ohw]
				for p, wv := range wrow {
					if wv == 0 {
						continue
					}
					axpyRow(dcol[p*ohw:(p+1)*ohw], wv, dyrow)
				}
			}
			col2im(dx.data[s*cin*h*wd:(s+1)*cin*h*wd], dcol, cin, h, wd, kh, kw, oh, ow, spec)
		}
		partials <- dwLocal
	})
	close(partials)
	dw = New(w.shape...)
	for p := range partials {
		for i, v := range p {
			dw.data[i] += v
		}
	}
	return dx, dw
}

// DepthwiseConv2D convolves each channel of x [N,C,H,W] with its own filter
// from w [C,1,KH,KW], returning [N,C,OH,OW]. This is the dominant operator of
// EfficientNet's MBConv blocks.
func DepthwiseConv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	n, c, h, wd := x.Dim4()
	cw, one, kh, kw := w.Dim4()
	if cw != c || one != 1 {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D weight shape %v does not match channels %d", w.shape, c))
	}
	oh := outSize(h, kh, spec.StrideH, spec.PadH)
	ow := outSize(wd, kw, spec.StrideW, spec.PadW)
	out := New(n, c, oh, ow)
	parallel.For(n*c, func(nc int) {
		ch := nc % c
		xs := x.data[nc*h*wd : (nc+1)*h*wd]
		ws := w.data[ch*kh*kw : (ch+1)*kh*kw]
		os := out.data[nc*oh*ow : (nc+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc float32
				for i := 0; i < kh; i++ {
					iy := oy*spec.StrideH - spec.PadH + i
					if iy < 0 || iy >= h {
						continue
					}
					for j := 0; j < kw; j++ {
						ix := ox*spec.StrideW - spec.PadW + j
						if ix < 0 || ix >= wd {
							continue
						}
						acc += xs[iy*wd+ix] * ws[i*kw+j]
					}
				}
				os[oy*ow+ox] = acc
			}
		}
	})
	return out
}

// DepthwiseConv2DBackward computes input and weight gradients of
// DepthwiseConv2D.
func DepthwiseConv2DBackward(x, w, dy *Tensor, spec ConvSpec) (dx, dw *Tensor) {
	n, c, h, wd := x.Dim4()
	_, _, kh, kw := w.Dim4()
	_, _, oh, ow := dy.Dim4()
	dx = New(x.shape...)
	dw = New(w.shape...)
	// Parallelize over channels; each channel's dw slice is owned by exactly
	// one goroutine, and dx slices are disjoint per (n, c).
	parallel.For(c, func(ch int) {
		ws := w.data[ch*kh*kw : (ch+1)*kh*kw]
		dws := dw.data[ch*kh*kw : (ch+1)*kh*kw]
		for s := 0; s < n; s++ {
			nc := s*c + ch
			xs := x.data[nc*h*wd : (nc+1)*h*wd]
			dxs := dx.data[nc*h*wd : (nc+1)*h*wd]
			dys := dy.data[nc*oh*ow : (nc+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dys[oy*ow+ox]
					if g == 0 {
						continue
					}
					for i := 0; i < kh; i++ {
						iy := oy*spec.StrideH - spec.PadH + i
						if iy < 0 || iy >= h {
							continue
						}
						for j := 0; j < kw; j++ {
							ix := ox*spec.StrideW - spec.PadW + j
							if ix < 0 || ix >= wd {
								continue
							}
							dxs[iy*wd+ix] += g * ws[i*kw+j]
							dws[i*kw+j] += g * xs[iy*wd+ix]
						}
					}
				}
			}
		}
	})
	return dx, dw
}
