//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func microKernel4x16FMA(dst *float32, ldc int64, ap, bp *float32, kl int64)
//
// Accumulates a full 4×16 tile: dst[i*ldc+j] += sum_k ap[k*4+i] * bp[k*16+j].
// ap is the packed A panel (4 row values per k step), bp the packed B panel
// (16 column values per k step). Eight YMM accumulators (4 rows × 2 vectors)
// stay live across the whole k loop; each k step costs 2 B loads, 4 A
// broadcasts and 8 FMAs. Products accumulate in ascending-k order, matching
// the portable kernel's order except that mul+add round once (FMA).
TEXT ·microKernel4x16FMA(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ ap+16(FP), SI
	MOVQ bp+24(FP), DX
	MOVQ kl+32(FP), AX
	SHLQ $2, CX            // row stride in bytes

	VXORPS Y0, Y0, Y0      // c[0][0:8]
	VXORPS Y1, Y1, Y1      // c[0][8:16]
	VXORPS Y2, Y2, Y2      // c[1][0:8]
	VXORPS Y3, Y3, Y3      // c[1][8:16]
	VXORPS Y4, Y4, Y4      // c[2][0:8]
	VXORPS Y5, Y5, Y5      // c[2][8:16]
	VXORPS Y6, Y6, Y6      // c[3][0:8]
	VXORPS Y7, Y7, Y7      // c[3][8:16]

kloop:
	VMOVUPS (DX), Y12      // b[0:8]
	VMOVUPS 32(DX), Y13    // b[8:16]
	VBROADCASTSS (SI), Y14
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VBROADCASTSS 4(SI), Y14
	VFMADD231PS Y12, Y14, Y2
	VFMADD231PS Y13, Y14, Y3
	VBROADCASTSS 8(SI), Y14
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VBROADCASTSS 12(SI), Y14
	VFMADD231PS Y12, Y14, Y6
	VFMADD231PS Y13, Y14, Y7
	ADDQ $16, SI           // next k step of A (4 floats)
	ADDQ $64, DX           // next k step of B (16 floats)
	DECQ AX
	JNE  kloop

	// dst += accumulators, row by row.
	VMOVUPS (DI), Y14
	VADDPS  Y14, Y0, Y0
	VMOVUPS Y0, (DI)
	VMOVUPS 32(DI), Y14
	VADDPS  Y14, Y1, Y1
	VMOVUPS Y1, 32(DI)
	ADDQ    CX, DI
	VMOVUPS (DI), Y14
	VADDPS  Y14, Y2, Y2
	VMOVUPS Y2, (DI)
	VMOVUPS 32(DI), Y14
	VADDPS  Y14, Y3, Y3
	VMOVUPS Y3, 32(DI)
	ADDQ    CX, DI
	VMOVUPS (DI), Y14
	VADDPS  Y14, Y4, Y4
	VMOVUPS Y4, (DI)
	VMOVUPS 32(DI), Y14
	VADDPS  Y14, Y5, Y5
	VMOVUPS Y5, 32(DI)
	ADDQ    CX, DI
	VMOVUPS (DI), Y14
	VADDPS  Y14, Y6, Y6
	VMOVUPS Y6, (DI)
	VMOVUPS 32(DI), Y14
	VADDPS  Y14, Y7, Y7
	VMOVUPS Y7, 32(DI)

	VZEROUPPER
	RET

// func microKernel4x8FMA(dst *float32, ldc int64, ap, bp *float32, kl int64)
//
// As microKernel4x16FMA but for the first 8 columns of a packed 16-wide B
// panel (B advances 64 bytes per k step regardless). Used on column tails.
TEXT ·microKernel4x8FMA(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ ap+16(FP), SI
	MOVQ bp+24(FP), DX
	MOVQ kl+32(FP), AX
	SHLQ $2, CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

kloop8:
	VMOVUPS (DX), Y12
	VBROADCASTSS (SI), Y14
	VFMADD231PS Y12, Y14, Y0
	VBROADCASTSS 4(SI), Y14
	VFMADD231PS Y12, Y14, Y1
	VBROADCASTSS 8(SI), Y14
	VFMADD231PS Y12, Y14, Y2
	VBROADCASTSS 12(SI), Y14
	VFMADD231PS Y12, Y14, Y3
	ADDQ $16, SI
	ADDQ $64, DX
	DECQ AX
	JNE  kloop8

	VMOVUPS (DI), Y14
	VADDPS  Y14, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    CX, DI
	VMOVUPS (DI), Y14
	VADDPS  Y14, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    CX, DI
	VMOVUPS (DI), Y14
	VADDPS  Y14, Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    CX, DI
	VMOVUPS (DI), Y14
	VADDPS  Y14, Y3, Y3
	VMOVUPS Y3, (DI)

	VZEROUPPER
	RET

// func microKernel4x4FMA(dst *float32, ldc int64, ap, bp *float32, kl int64)
//
// XMM variant for 4-column tails of a packed 16-wide B panel.
TEXT ·microKernel4x4FMA(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ ap+16(FP), SI
	MOVQ bp+24(FP), DX
	MOVQ kl+32(FP), AX
	SHLQ $2, CX

	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	VXORPS X2, X2, X2
	VXORPS X3, X3, X3

kloop4:
	VMOVUPS (DX), X12
	VBROADCASTSS (SI), X14
	VFMADD231PS X12, X14, X0
	VBROADCASTSS 4(SI), X14
	VFMADD231PS X12, X14, X1
	VBROADCASTSS 8(SI), X14
	VFMADD231PS X12, X14, X2
	VBROADCASTSS 12(SI), X14
	VFMADD231PS X12, X14, X3
	ADDQ $16, SI
	ADDQ $64, DX
	DECQ AX
	JNE  kloop4

	VMOVUPS (DI), X14
	VADDPS  X14, X0, X0
	VMOVUPS X0, (DI)
	ADDQ    CX, DI
	VMOVUPS (DI), X14
	VADDPS  X14, X1, X1
	VMOVUPS X1, (DI)
	ADDQ    CX, DI
	VMOVUPS (DI), X14
	VADDPS  X14, X2, X2
	VMOVUPS X2, (DI)
	ADDQ    CX, DI
	VMOVUPS (DI), X14
	VADDPS  X14, X3, X3
	VMOVUPS X3, (DI)

	RET
