//go:build amd64

package tensor

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled SIMD state mask).
func xgetbv() (eax, edx uint32)

// microKernel4x16FMA accumulates a full 4×16 output tile over kl packed
// k-steps using AVX2 FMA: dst[i*ldc+j] += sum_k ap[k*4+i]*bp[k*16+j].
// Implemented in gemm_amd64.s; only called when useFMA is true.
//
//go:noescape
func microKernel4x16FMA(dst *float32, ldc int64, ap, bp *float32, kl int64)

// microKernel4x8FMA handles the first 8 columns of a packed 16-wide B panel
// (column-tail tiles with 8 <= tc < 16).
//
//go:noescape
func microKernel4x8FMA(dst *float32, ldc int64, ap, bp *float32, kl int64)

// microKernel4x4FMA handles 4 columns of a packed 16-wide B panel
// (column-tail tiles with 4 <= tc-offset < 8).
//
//go:noescape
func microKernel4x4FMA(dst *float32, ldc int64, ap, bp *float32, kl int64)

// useFMA gates the assembly micro-kernel. Requires AVX2 and FMA support in
// the CPU plus OS-managed YMM state (OSXSAVE + XCR0 bits 1-2).
var useFMA = detectFMA()

// forceFMA overrides the kernel dispatch for tests (both paths must satisfy
// the oracle suite). Returns a restore func; not safe to call while kernels
// are running on other goroutines.
func forceFMA(v bool) func() {
	old := useFMA
	useFMA = v && detectFMA()
	return func() { useFMA = old }
}

func detectFMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 { // XMM and YMM state saved by the OS
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}
