package tensor

import (
	"fmt"

	"effnetscale/internal/parallel"
)

// interiorRange returns the half-open output range [lo, hi) along one spatial
// dimension for which the kernel window lies entirely inside the input, i.e.
// no padding is touched. Outputs outside the range need per-tap bounds
// checks; outputs inside it do not.
func interiorRange(stride, pad, k, in, out int) (lo, hi int) {
	lo = (pad + stride - 1) / stride
	if lo > out {
		lo = out
	}
	last := in - k + pad // largest iy0 = oy*stride-pad allowed is in-k
	if last < 0 {
		return lo, lo
	}
	hi = last/stride + 1
	if hi > out {
		hi = out
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// dwGeom carries a depthwise convolution's resolved geometry to the
// per-channel worker functions. Passed by value: no allocation.
type dwGeom struct {
	h, w, kh, kw, oh, ow   int
	strideH, strideW       int
	padH, padW             int
	oyLo, oyHi, oxLo, oxHi int
}

// DepthwiseConv2D convolves each channel of x [N,C,H,W] with its own filter
// from w [C,1,KH,KW], returning [N,C,OH,OW]. This is the dominant operator of
// EfficientNet's MBConv blocks.
func DepthwiseConv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	n, c, h, wd := x.Dim4()
	cw, one, kh, kw := w.Dim4()
	if cw != c || one != 1 {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D weight shape %v does not match channels %d", w.shape, c))
	}
	oh := outSize(h, kh, spec.StrideH, spec.PadH)
	ow := outSize(wd, kw, spec.StrideW, spec.PadW)
	out := New(n, c, oh, ow)
	DepthwiseConv2DInto(out, x, w, spec)
	return out
}

// DepthwiseConv2DInto computes the depthwise convolution into dst, which
// must have shape spec.OutShape-for-depthwise ([N,C,OH,OW]). It allocates
// nothing when running single-worker.
func DepthwiseConv2DInto(dst, x, w *Tensor, spec ConvSpec) {
	n, c, h, wd := x.Dim4()
	_, _, kh, kw := w.Dim4()
	_, _, oh, ow := dst.Dim4()
	g := dwGeom{h: h, w: wd, kh: kh, kw: kw, oh: oh, ow: ow,
		strideH: spec.StrideH, strideW: spec.StrideW, padH: spec.PadH, padW: spec.PadW}
	g.oyLo, g.oyHi = interiorRange(spec.StrideH, spec.PadH, kh, h, oh)
	g.oxLo, g.oxHi = interiorRange(spec.StrideW, spec.PadW, kw, wd, ow)
	if parallel.MaxWorkers() > 1 {
		parallel.For(n*c, func(nc int) {
			depthwiseForwardOne(dst, x, w, g, c, nc)
		})
		return
	}
	for nc := 0; nc < n*c; nc++ {
		depthwiseForwardOne(dst, x, w, g, c, nc)
	}
}

// depthwiseForwardOne convolves one (sample, channel) plane. The interior
// (windows fully inside the input) runs branch-free on subsliced rows; the
// border runs the checked path.
func depthwiseForwardOne(dst, x, w *Tensor, g dwGeom, c, nc int) {
	h, wd, kh, kw, oh, ow := g.h, g.w, g.kh, g.kw, g.oh, g.ow
	ch := nc % c
	xs := x.data[nc*h*wd : (nc+1)*h*wd]
	ws := w.data[ch*kh*kw : (ch+1)*kh*kw]
	os := dst.data[nc*oh*ow : (nc+1)*oh*ow]
	// Hot interior: every kernel tap is in-bounds, so the loop body
	// carries no branches and the compiler can elide bounds checks on
	// the subsliced rows.
	if kh == 3 && kw == 3 {
		w0, w1, w2 := ws[0], ws[1], ws[2]
		w3, w4, w5 := ws[3], ws[4], ws[5]
		w6, w7, w8 := ws[6], ws[7], ws[8]
		for oy := g.oyLo; oy < g.oyHi; oy++ {
			iy0 := oy*g.strideH - g.padH
			r0 := xs[iy0*wd : iy0*wd+wd]
			r1 := xs[(iy0+1)*wd : (iy0+1)*wd+wd]
			r2 := xs[(iy0+2)*wd : (iy0+2)*wd+wd]
			orow := os[oy*ow : oy*ow+ow]
			for ox := g.oxLo; ox < g.oxHi; ox++ {
				ix0 := ox*g.strideW - g.padW
				var acc float32
				acc += r0[ix0] * w0
				acc += r0[ix0+1] * w1
				acc += r0[ix0+2] * w2
				acc += r1[ix0] * w3
				acc += r1[ix0+1] * w4
				acc += r1[ix0+2] * w5
				acc += r2[ix0] * w6
				acc += r2[ix0+1] * w7
				acc += r2[ix0+2] * w8
				orow[ox] = acc
			}
		}
	} else {
		for oy := g.oyLo; oy < g.oyHi; oy++ {
			iy0 := oy*g.strideH - g.padH
			orow := os[oy*ow : oy*ow+ow]
			for ox := g.oxLo; ox < g.oxHi; ox++ {
				ix0 := ox*g.strideW - g.padW
				var acc float32
				for i := 0; i < kh; i++ {
					xrow := xs[(iy0+i)*wd+ix0 : (iy0+i)*wd+ix0+kw]
					wrow := ws[i*kw : i*kw+kw]
					for j, wv := range wrow {
						acc += xrow[j] * wv
					}
				}
				orow[ox] = acc
			}
		}
	}
	// Border: windows that overhang the input run the checked path.
	border := func(oy, ox int) {
		var acc float32
		for i := 0; i < kh; i++ {
			iy := oy*g.strideH - g.padH + i
			if iy < 0 || iy >= h {
				continue
			}
			for j := 0; j < kw; j++ {
				ix := ox*g.strideW - g.padW + j
				if ix < 0 || ix >= wd {
					continue
				}
				acc += xs[iy*wd+ix] * ws[i*kw+j]
			}
		}
		os[oy*ow+ox] = acc
	}
	for oy := 0; oy < g.oyLo; oy++ {
		for ox := 0; ox < ow; ox++ {
			border(oy, ox)
		}
	}
	for oy := g.oyHi; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			border(oy, ox)
		}
	}
	for oy := g.oyLo; oy < g.oyHi; oy++ {
		for ox := 0; ox < g.oxLo; ox++ {
			border(oy, ox)
		}
		for ox := g.oxHi; ox < ow; ox++ {
			border(oy, ox)
		}
	}
}

// DepthwiseConv2DBackward computes input and weight gradients of
// DepthwiseConv2D.
func DepthwiseConv2DBackward(x, w, dy *Tensor, spec ConvSpec) (dx, dw *Tensor) {
	dx = New(x.shape...)
	dw = New(w.shape...)
	DepthwiseConv2DBackwardInto(dx, dw, x, w, dy, spec)
	return dx, dw
}

// DepthwiseConv2DBackwardInto computes gradients into dx and dw, overwriting
// both. It allocates nothing when running single-worker. Channels are
// processed independently (each channel's dw slice has a single owner), so
// the result is deterministic under any goroutine schedule.
func DepthwiseConv2DBackwardInto(dx, dw, x, w, dy *Tensor, spec ConvSpec) {
	n, c, h, wd := x.Dim4()
	_, _, kh, kw := w.Dim4()
	_, _, oh, ow := dy.Dim4()
	if !SameShape(dx, x) || !SameShape(dw, w) {
		panic(fmt.Sprintf("tensor: DepthwiseConv2DBackwardInto gradient shapes dx=%v dw=%v, want %v and %v", dx.shape, dw.shape, x.shape, w.shape))
	}
	dx.Zero()
	dw.Zero()
	g := dwGeom{h: h, w: wd, kh: kh, kw: kw, oh: oh, ow: ow,
		strideH: spec.StrideH, strideW: spec.StrideW, padH: spec.PadH, padW: spec.PadW}
	g.oyLo, g.oyHi = interiorRange(spec.StrideH, spec.PadH, kh, h, oh)
	g.oxLo, g.oxHi = interiorRange(spec.StrideW, spec.PadW, kw, wd, ow)
	if parallel.MaxWorkers() > 1 {
		parallel.For(c, func(ch int) {
			depthwiseBackwardChannel(dx, dw, x, w, dy, g, n, c, ch)
		})
		return
	}
	for ch := 0; ch < c; ch++ {
		depthwiseBackwardChannel(dx, dw, x, w, dy, g, n, c, ch)
	}
}

// depthwiseBackwardChannel accumulates input and weight gradients for one
// channel across all samples. Outputs are visited in row-major (oy, ox)
// order with kernel taps ascending, so accumulation order — and therefore
// the float32 result — is identical to a naive quadruple loop.
func depthwiseBackwardChannel(dx, dw, x, w, dy *Tensor, g dwGeom, n, c, ch int) {
	h, wd, kh, kw, oh, ow := g.h, g.w, g.kh, g.kw, g.oh, g.ow
	ws := w.data[ch*kh*kw : (ch+1)*kh*kw]
	dws := dw.data[ch*kh*kw : (ch+1)*kh*kw]
	for s := 0; s < n; s++ {
		nc := s*c + ch
		xs := x.data[nc*h*wd : (nc+1)*h*wd]
		dxs := dx.data[nc*h*wd : (nc+1)*h*wd]
		dys := dy.data[nc*oh*ow : (nc+1)*oh*ow]
		// Checked path for the full window; shared by border outputs.
		scatter := func(oy, ox int) {
			gv := dys[oy*ow+ox]
			for i := 0; i < kh; i++ {
				iy := oy*g.strideH - g.padH + i
				if iy < 0 || iy >= h {
					continue
				}
				for j := 0; j < kw; j++ {
					ix := ox*g.strideW - g.padW + j
					if ix < 0 || ix >= wd {
						continue
					}
					dxs[iy*wd+ix] += gv * ws[i*kw+j]
					dws[i*kw+j] += gv * xs[iy*wd+ix]
				}
			}
		}
		for oy := 0; oy < g.oyLo; oy++ {
			for ox := 0; ox < ow; ox++ {
				scatter(oy, ox)
			}
		}
		for oy := g.oyLo; oy < g.oyHi; oy++ {
			for ox := 0; ox < g.oxLo; ox++ {
				scatter(oy, ox)
			}
			iy0 := oy*g.strideH - g.padH
			for ox := g.oxLo; ox < g.oxHi; ox++ {
				ix0 := ox*g.strideW - g.padW
				gv := dys[oy*ow+ox]
				for i := 0; i < kh; i++ {
					dxrow := dxs[(iy0+i)*wd+ix0 : (iy0+i)*wd+ix0+kw]
					xrow := xs[(iy0+i)*wd+ix0 : (iy0+i)*wd+ix0+kw]
					wrow := ws[i*kw : i*kw+kw]
					dwrow := dws[i*kw : i*kw+kw]
					for j := range wrow {
						dxrow[j] += gv * wrow[j]
						dwrow[j] += gv * xrow[j]
					}
				}
			}
			for ox := g.oxHi; ox < ow; ox++ {
				scatter(oy, ox)
			}
		}
		for oy := g.oyHi; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				scatter(oy, ox)
			}
		}
	}
}
