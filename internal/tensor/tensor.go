package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"effnetscale/internal/parallel"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
// The zero value is an empty scalar-less tensor; use New or the factory
// helpers to construct usable tensors.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. Dimensions must be
// strictly positive; New panics otherwise (shape errors are programming
// errors in this engine, mirroring slice-bounds semantics).
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Randn fills a new tensor with N(0, stddev) samples from rng.
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * stddev)
	}
	return t
}

// Uniform fills a new tensor with samples in [lo, hi) from rng.
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a tensor sharing t's data with a new shape of equal element
// count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

func assertSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// --- Element-wise kernels -------------------------------------------------

// binary applies op element-wise into a fresh tensor.
func binary(op string, a, b *Tensor, f func(x, y float32) float32) *Tensor {
	assertSameShape(op, a, b)
	out := New(a.shape...)
	ad, bd, od := a.data, b.data, out.data
	parallel.ForChunked(len(ad), 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = f(ad[i], bd[i])
		}
	})
	return out
}

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor {
	return binary("Add", a, b, func(x, y float32) float32 { return x + y })
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	return binary("Sub", a, b, func(x, y float32) float32 { return x - y })
}

// Mul returns a * b element-wise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	return binary("Mul", a, b, func(x, y float32) float32 { return x * y })
}

// Div returns a / b element-wise.
func Div(a, b *Tensor) *Tensor {
	return binary("Div", a, b, func(x, y float32) float32 { return x / y })
}

// AddInto accumulates src into dst (dst += src).
func AddInto(dst, src *Tensor) {
	assertSameShape("AddInto", dst, src)
	dd, sd := dst.data, src.data
	parallel.ForChunked(len(dd), 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] += sd[i]
		}
	})
}

// Scale returns a*s element-wise.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	ad, od := a.data, out.data
	parallel.ForChunked(len(ad), 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = ad[i] * s
		}
	})
	return out
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float32) {
	d := t.data
	parallel.ForChunked(len(d), 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] *= s
		}
	})
}

// AxpyInto computes dst += alpha*src.
func AxpyInto(dst *Tensor, alpha float32, src *Tensor) {
	assertSameShape("AxpyInto", dst, src)
	dd, sd := dst.data, src.data
	parallel.ForChunked(len(dd), 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] += alpha * sd[i]
		}
	})
}

// Apply returns f applied element-wise.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	ad, od := a.data, out.data
	parallel.ForChunked(len(ad), 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = f(ad[i])
		}
	})
	return out
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	return parallel.ReduceFloat64(len(t.data), func(i int) float64 { return float64(t.data[i]) })
}

// Dot returns the inner product of a and b accumulated in float64.
func Dot(a, b *Tensor) float64 {
	assertSameShape("Dot", a, b)
	return parallel.ReduceFloat64(len(a.data), func(i int) float64 { return float64(a.data[i]) * float64(b.data[i]) })
}

// Norm returns the Euclidean norm of t accumulated in float64.
func (t *Tensor) Norm() float64 {
	s := parallel.ReduceFloat64(len(t.data), func(i int) float64 {
		v := float64(t.data[i])
		return v * v
	})
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for empty data.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// --- Broadcast helpers for NCHW activations --------------------------------

// AddChannel adds per-channel bias b (shape [C]) to x (shape [N,C,H,W]).
func AddChannel(x, b *Tensor) *Tensor {
	n, c, h, w := x.Dim4()
	if b.Rank() != 1 || b.Dim(0) != c {
		panic(fmt.Sprintf("tensor: AddChannel bias shape %v does not match channels %d", b.shape, c))
	}
	out := New(x.shape...)
	hw := h * w
	xd, bd, od := x.data, b.data, out.data
	parallel.For(n*c, func(nc int) {
		bias := bd[nc%c]
		base := nc * hw
		for i := 0; i < hw; i++ {
			od[base+i] = xd[base+i] + bias
		}
	})
	return out
}

// MulChannelNC multiplies x (shape [N,C,H,W]) by per-sample-per-channel scale
// s (shape [N,C]), broadcasting over H and W. Used by squeeze-excitation.
func MulChannelNC(x, s *Tensor) *Tensor {
	n, c, h, w := x.Dim4()
	if s.Rank() != 2 || s.Dim(0) != n || s.Dim(1) != c {
		panic(fmt.Sprintf("tensor: MulChannelNC scale shape %v does not match [%d,%d]", s.shape, n, c))
	}
	out := New(x.shape...)
	hw := h * w
	xd, sd, od := x.data, s.data, out.data
	parallel.For(n*c, func(nc int) {
		scale := sd[nc]
		base := nc * hw
		for i := 0; i < hw; i++ {
			od[base+i] = xd[base+i] * scale
		}
	})
	return out
}

// SumChannelNC reduces x (shape [N,C,H,W]) over H and W into shape [N,C].
func SumChannelNC(x *Tensor) *Tensor {
	n, c, h, w := x.Dim4()
	out := New(n, c)
	hw := h * w
	xd, od := x.data, out.data
	parallel.For(n*c, func(nc int) {
		base := nc * hw
		var s float64
		for i := 0; i < hw; i++ {
			s += float64(xd[base+i])
		}
		od[nc] = float32(s)
	})
	return out
}

// Dim4 returns the four dimensions of an NCHW tensor, panicking if rank != 4.
func (t *Tensor) Dim4() (n, c, h, w int) {
	if len(t.shape) != 4 {
		panic(fmt.Sprintf("tensor: expected rank-4 NCHW tensor, got shape %v", t.shape))
	}
	return t.shape[0], t.shape[1], t.shape[2], t.shape[3]
}
