package checkpoint

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SnapshotFormat is the on-disk format version of full training-state
// snapshots. Version 1 is the legacy weights-only format (SaveWeights /
// LoadWeights); bump this on incompatible layout changes.
const SnapshotFormat = 2

// Blob is one named piece of component state: a shaped float32 tensor, a
// float64/int64 vector, or a string. Exactly the payload kinds the training
// stack needs — weights and optimizer slots (F32 + Shape), bit-exact scalar
// metrics and RNG cursors (F64/I64), and identity/config strings (Str).
type Blob struct {
	Shape []int
	F32   []float32
	F64   []float64
	I64   []int64
	Str   string
}

// Component is the serialized state of one training subsystem (the model,
// an optimizer, one replica's private state, ...), keyed by blob name.
type Component map[string]Blob

// PutF32 stores a copy of data under key with the given shape. Copying is
// deliberate: captures happen at a step boundary and the training loop keeps
// mutating the source buffers immediately afterwards, while the async writer
// is still encoding the snapshot.
func (c Component) PutF32(key string, shape []int, data []float32) {
	c[key] = Blob{
		Shape: append([]int(nil), shape...),
		F32:   append([]float32(nil), data...),
	}
}

// PutI64 stores a single int64 under key.
func (c Component) PutI64(key string, v int64) { c[key] = Blob{I64: []int64{v}} }

// PutF64 stores a single float64 under key (bit-exact, unlike a float32
// round trip).
func (c Component) PutF64(key string, v float64) { c[key] = Blob{F64: []float64{v}} }

// PutF64s stores a copy of a float64 vector under key.
func (c Component) PutF64s(key string, vals []float64) {
	c[key] = Blob{F64: append([]float64(nil), vals...)}
}

// PutStr stores a string under key.
func (c Component) PutStr(key, v string) { c[key] = Blob{Str: v} }

// F32 returns the float32 payload under key, validating presence and, when
// wantShape is non-nil, the exact shape.
func (c Component) F32(key string, wantShape []int) ([]float32, error) {
	b, ok := c[key]
	if !ok {
		return nil, fmt.Errorf("checkpoint: missing state %q", key)
	}
	if b.F32 == nil {
		return nil, fmt.Errorf("checkpoint: state %q holds no float32 payload", key)
	}
	if wantShape != nil {
		if len(b.Shape) != len(wantShape) {
			return nil, fmt.Errorf("checkpoint: state %q has shape %v, want %v", key, b.Shape, wantShape)
		}
		n := 1
		for i, d := range wantShape {
			if b.Shape[i] != d {
				return nil, fmt.Errorf("checkpoint: state %q has shape %v, want %v", key, b.Shape, wantShape)
			}
			n *= d
		}
		if len(b.F32) != n {
			return nil, fmt.Errorf("checkpoint: state %q has %d elements, shape %v wants %d", key, len(b.F32), wantShape, n)
		}
	}
	return b.F32, nil
}

// I64 returns the int64 scalar under key.
func (c Component) I64(key string) (int64, error) {
	b, ok := c[key]
	if !ok {
		return 0, fmt.Errorf("checkpoint: missing state %q", key)
	}
	if len(b.I64) != 1 {
		return 0, fmt.Errorf("checkpoint: state %q is not an int64 scalar", key)
	}
	return b.I64[0], nil
}

// F64 returns the float64 scalar under key.
func (c Component) F64(key string) (float64, error) {
	b, ok := c[key]
	if !ok {
		return 0, fmt.Errorf("checkpoint: missing state %q", key)
	}
	if len(b.F64) != 1 {
		return 0, fmt.Errorf("checkpoint: state %q is not a float64 scalar", key)
	}
	return b.F64[0], nil
}

// F64s returns the float64 vector under key.
func (c Component) F64s(key string) ([]float64, error) {
	b, ok := c[key]
	if !ok {
		return nil, fmt.Errorf("checkpoint: missing state %q", key)
	}
	if b.F64 == nil {
		return nil, fmt.Errorf("checkpoint: state %q holds no float64 payload", key)
	}
	return b.F64, nil
}

// Str returns the string under key.
func (c Component) Str(key string) (string, error) {
	b, ok := c[key]
	if !ok {
		return "", fmt.Errorf("checkpoint: missing state %q", key)
	}
	return b.Str, nil
}

// Keys returns the component's blob names, sorted.
func (c Component) Keys() []string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot is a complete, versioned capture of training state at a step
// boundary: one Component per stateful subsystem. A run restored from a
// snapshot continues bit-for-bit identically to the uninterrupted run.
type Snapshot struct {
	Format     int
	Components map[string]Component
}

// NewSnapshot returns an empty snapshot at the current format version.
func NewSnapshot() *Snapshot {
	return &Snapshot{Format: SnapshotFormat, Components: map[string]Component{}}
}

// Add registers a component under key, rejecting duplicates (two subsystems
// claiming one key would silently shadow each other's state).
func (s *Snapshot) Add(key string, c Component) error {
	if _, dup := s.Components[key]; dup {
		return fmt.Errorf("checkpoint: duplicate snapshot component %q", key)
	}
	s.Components[key] = c
	return nil
}

// Component returns the named component, with an error naming the available
// components when it is absent — the "missing subsystem state" failure mode.
func (s *Snapshot) Component(key string) (Component, error) {
	c, ok := s.Components[key]
	if !ok {
		return nil, fmt.Errorf("checkpoint: snapshot has no %q component (has %v)", key, s.Keys())
	}
	return c, nil
}

// Keys returns the snapshot's component names, sorted.
func (s *Snapshot) Keys() []string {
	keys := make([]string, 0, len(s.Components))
	for k := range s.Components {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StateCodec is the seam every stateful training subsystem implements to
// participate in snapshots: the model, each optimizer, the weight EMA, and
// each replica's private state (BN statistics, RNG cursors). CaptureState
// must deep-copy anything still mutated by training; RestoreState must
// validate presence and shape of everything it reads and reject unknown
// state rather than silently dropping it.
type StateCodec interface {
	// StateKey names this subsystem's component inside a snapshot.
	StateKey() string
	// CaptureState serializes the subsystem's current state.
	CaptureState() (Component, error)
	// RestoreState overwrites the subsystem's state from a captured
	// component.
	RestoreState(Component) error
}

// Capture adds each codec's component to the snapshot.
func (s *Snapshot) Capture(codecs ...StateCodec) error {
	for _, codec := range codecs {
		c, err := codec.CaptureState()
		if err != nil {
			return fmt.Errorf("checkpoint: capture %q: %w", codec.StateKey(), err)
		}
		if err := s.Add(codec.StateKey(), c); err != nil {
			return err
		}
	}
	return nil
}

// Restore feeds each codec its component from the snapshot, erroring if any
// component is missing or rejected.
func (s *Snapshot) Restore(codecs ...StateCodec) error {
	for _, codec := range codecs {
		c, err := s.Component(codec.StateKey())
		if err != nil {
			return err
		}
		if err := codec.RestoreState(c); err != nil {
			return fmt.Errorf("checkpoint: restore %q: %w", codec.StateKey(), err)
		}
	}
	return nil
}

// --- Snapshot file IO --------------------------------------------------------

// WriteSnapshot gob-encodes the snapshot to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot decodes and validates a snapshot from r. Weights-only
// checkpoints (formats 1 and 3) are detected and rejected with a pointer to
// LoadWeights; truncated or corrupt input fails the decode with a
// descriptive error rather than returning partial state.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode snapshot (truncated or corrupt?): %w", err)
	}
	if s.Format == weightsFormatMap || s.Format == weightsFormat {
		return nil, fmt.Errorf("checkpoint: file is a weights-only checkpoint (format %d); load it with LoadWeights", s.Format)
	}
	if s.Format != SnapshotFormat {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot format %d (want %d)", s.Format, SnapshotFormat)
	}
	if len(s.Components) == 0 {
		return nil, fmt.Errorf("checkpoint: snapshot has no components")
	}
	return &s, nil
}

// WriteSnapshotFile writes the snapshot to path atomically and durably: the
// payload goes to a temp file in the same directory, which is fsynced before
// the rename and whose directory is fsynced after it, so a crash at any
// point leaves either the complete old file or the complete new one — never
// a truncated snapshot under the final name.
func WriteSnapshotFile(path string, s *Snapshot) error {
	return writeFileAtomic(path, func(w io.Writer) error { return WriteSnapshot(w, s) })
}

// ReadSnapshotFile reads and validates a snapshot from path.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// snapshotName formats the file name periodic snapshots are written under.
func snapshotName(step int64) string { return fmt.Sprintf("step-%09d.ckpt", step) }

// snapshotStep parses a snapshot file name, reporting ok=false for files
// that are not periodic snapshots. The match is exact — in particular the
// temp files a crash can leave next to real snapshots
// ("step-N.ckpt.tmp-123") must not count, or retention pruning would spend
// keep-last slots on unreadable garbage.
func snapshotStep(name string) (step int64, ok bool) {
	digits, found := strings.CutPrefix(name, "step-")
	digits, found2 := strings.CutSuffix(digits, ".ckpt")
	if !found || !found2 || digits == "" {
		return 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	s, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return s, true
}

// ListSnapshots returns the periodic snapshot files in dir, sorted by step
// ascending. A missing directory is an empty listing, not an error.
func ListSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	type cand struct {
		step int64
		path string
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if step, ok := snapshotStep(e.Name()); ok {
			cands = append(cands, cand{step, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].step < cands[j].step })
	paths := make([]string, len(cands))
	for i, c := range cands {
		paths[i] = c.path
	}
	return paths, nil
}

// ReadLatestSnapshot loads the newest readable snapshot from dir, falling
// back to older ones when the newest is truncated or corrupt (the file a
// crash interrupted mid-write, on filesystems without rename atomicity).
// The returned path names the snapshot actually loaded.
func ReadLatestSnapshot(dir string) (*Snapshot, string, error) {
	paths, err := ListSnapshots(dir)
	if err != nil {
		return nil, "", err
	}
	if len(paths) == 0 {
		return nil, "", fmt.Errorf("checkpoint: no snapshots (step-*.ckpt) in %s", dir)
	}
	var errs []error
	for i := len(paths) - 1; i >= 0; i-- {
		s, err := ReadSnapshotFile(paths[i])
		if err == nil {
			return s, paths[i], nil
		}
		errs = append(errs, err)
	}
	return nil, "", fmt.Errorf("checkpoint: no readable snapshot in %s: %w", dir, errors.Join(errs...))
}

// writeFileAtomic writes via a same-directory temp file with fsync on the
// file before rename and on the directory after, shared by snapshot and
// legacy weights writers.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	// fsync the temp file before renaming it into place: rename orders
	// metadata, not data, so without this a crash shortly after "atomic"
	// save could still expose a truncated or empty checkpoint under the
	// final name.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// fsync the directory so the rename itself survives a crash.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
