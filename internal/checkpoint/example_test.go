package checkpoint_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"effnetscale/internal/checkpoint"
)

// ExampleReadLatestSnapshot resumes "from a directory": periodic snapshot
// writes leave step-<n>.ckpt files behind, and ReadLatestSnapshot picks the
// newest one that decodes — falling back past files a crash truncated
// mid-write, exactly what train.WithResume does with a directory path.
func ExampleReadLatestSnapshot() {
	dir, err := os.MkdirTemp("", "snaps")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Two good snapshots, as an interrupted training run leaves behind.
	for _, step := range []int64{3, 7} {
		snap := checkpoint.NewSnapshot()
		c := checkpoint.Component{}
		c.PutI64("step", step)
		if err := snap.Add("loop", c); err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("step-%09d.ckpt", step)
		if err := checkpoint.WriteSnapshotFile(filepath.Join(dir, name), snap); err != nil {
			log.Fatal(err)
		}
	}
	// A newer snapshot truncated by a crash mid-write: unreadable, skipped.
	if err := os.WriteFile(filepath.Join(dir, "step-000000009.ckpt"), []byte("torn"), 0o644); err != nil {
		log.Fatal(err)
	}

	snap, path, err := checkpoint.ReadLatestSnapshot(dir)
	if err != nil {
		log.Fatal(err)
	}
	loop, err := snap.Component("loop")
	if err != nil {
		log.Fatal(err)
	}
	step, err := loop.I64("step")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed from %s at step %d\n", filepath.Base(path), step)
	// Output:
	// resumed from step-000000007.ckpt at step 7
}
