package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// WriteEvent reports the outcome of one asynchronous snapshot write.
type WriteEvent struct {
	Step int64
	Path string
	Err  error
	// Elapsed is the write's own wall-clock latency (encode + fsync +
	// rename), spent on the writer goroutine off the training critical path.
	Elapsed time.Duration
}

// Writer persists snapshots to a directory on a background goroutine, off
// the training critical path: the training loop captures state (a memory
// copy) at a step boundary, enqueues it, and keeps stepping while the writer
// gob-encodes and fsyncs the file. Writes are atomic and durable
// (WriteSnapshotFile), named step-<n>.ckpt, and pruned to the most recent
// KeepLast snapshots. Outcomes are collected as WriteEvents the owner drains
// from its own goroutine — the writer never calls back into training code.
type Writer struct {
	dir  string
	keep int

	jobs    chan writeJob
	done    chan struct{}
	pending sync.WaitGroup

	mu      sync.Mutex
	events  []WriteEvent
	history []string // snapshot paths on disk, oldest first
	closed  bool
}

type writeJob struct {
	step int64
	snap *Snapshot
}

// NewWriter starts a snapshot writer over dir (created if missing). keep
// bounds how many snapshots are retained on disk (0 = keep all); snapshots
// already in dir from an earlier process count against the bound, so a
// crash-resume loop does not accumulate files forever.
func NewWriter(dir string, keep int) (*Writer, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: writer needs a directory")
	}
	if keep < 0 {
		return nil, fmt.Errorf("checkpoint: keep-last %d must be >= 0", keep)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Sweep temp droppings a crash left mid-write; they are unreadable by
	// construction (the rename never happened) and would otherwise
	// accumulate across crash/resume cycles.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.Contains(e.Name(), ".ckpt.tmp-") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	existing, err := ListSnapshots(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		dir:     dir,
		keep:    keep,
		jobs:    make(chan writeJob, 1),
		done:    make(chan struct{}),
		history: existing,
	}
	go w.run()
	return w, nil
}

// Dir returns the directory snapshots are written to.
func (w *Writer) Dir() string { return w.dir }

// Enqueue hands a snapshot to the background writer. It blocks only when a
// write is already in flight and one more is queued — back-pressure instead
// of unbounded snapshot copies in memory. Enqueue must not be called
// concurrently with Close.
func (w *Writer) Enqueue(step int64, snap *Snapshot) {
	w.pending.Add(1)
	w.jobs <- writeJob{step: step, snap: snap}
}

// Drain returns the write outcomes recorded since the last call. The
// training loop polls it from its own goroutine to surface failures as
// first-class results without the writer calling into loop code.
func (w *Writer) Drain() []WriteEvent {
	w.mu.Lock()
	defer w.mu.Unlock()
	evs := w.events
	w.events = nil
	return evs
}

// Flush blocks until every enqueued snapshot has been written (or failed).
func (w *Writer) Flush() { w.pending.Wait() }

// Close flushes outstanding writes and stops the writer. Idempotent.
func (w *Writer) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.jobs)
	<-w.done
}

// run is the writer goroutine: write, record the outcome, prune.
func (w *Writer) run() {
	defer close(w.done)
	for job := range w.jobs {
		path := filepath.Join(w.dir, snapshotName(job.step))
		start := time.Now()
		err := WriteSnapshotFile(path, job.snap)
		elapsed := time.Since(start)
		w.mu.Lock()
		w.events = append(w.events, WriteEvent{Step: job.step, Path: path, Err: err, Elapsed: elapsed})
		if err == nil {
			w.history = append(w.history, path)
			for w.keep > 0 && len(w.history) > w.keep {
				// Pruning failures are ignored: stale snapshots are
				// harmless, and the fresh write already succeeded.
				os.Remove(w.history[0])
				w.history = w.history[1:]
			}
		}
		w.mu.Unlock()
		w.pending.Done()
	}
}
