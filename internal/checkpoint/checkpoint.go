// Package checkpoint serializes model weights and batch-norm running
// statistics with encoding/gob, so trained mini-scale models can be saved,
// reloaded and served. Checkpoints are keyed by parameter name and validated
// on load (missing/mismatched shapes are errors, not silent corruption).
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"effnetscale/internal/efficientnet"
)

// fileFormat is bumped on incompatible layout changes.
const fileFormat = 1

// snapshot is the on-disk representation.
type snapshot struct {
	Format     int
	ModelName  string
	NumClasses int
	Resolution int
	Params     map[string]tensorBlob
	BNMeans    []tensorBlob
	BNVars     []tensorBlob
}

type tensorBlob struct {
	Shape []int
	Data  []float32
}

// Save writes the model's parameters and BN running statistics to w.
func Save(w io.Writer, m *efficientnet.Model) error {
	s := snapshot{
		Format:     fileFormat,
		ModelName:  m.Config.Name,
		NumClasses: m.Config.NumClasses,
		Resolution: m.Config.Resolution,
		Params:     make(map[string]tensorBlob),
	}
	for _, p := range m.Params() {
		if _, dup := s.Params[p.Name]; dup {
			return fmt.Errorf("checkpoint: duplicate parameter name %q", p.Name)
		}
		s.Params[p.Name] = tensorBlob{
			Shape: append([]int(nil), p.Data().Shape()...),
			Data:  append([]float32(nil), p.Data().Data()...),
		}
	}
	for _, bn := range m.BatchNorms() {
		s.BNMeans = append(s.BNMeans, tensorBlob{Shape: bn.RunningMean.Shape(), Data: append([]float32(nil), bn.RunningMean.Data()...)})
		s.BNVars = append(s.BNVars, tensorBlob{Shape: bn.RunningVar.Shape(), Data: append([]float32(nil), bn.RunningVar.Data()...)})
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load restores parameters and BN statistics into m, which must have the
// same architecture the checkpoint was saved from.
func Load(r io.Reader, m *efficientnet.Model) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("checkpoint: decode: %w", err)
	}
	if s.Format != fileFormat {
		return fmt.Errorf("checkpoint: unsupported format %d (want %d)", s.Format, fileFormat)
	}
	if s.ModelName != m.Config.Name {
		return fmt.Errorf("checkpoint: saved from model %q, loading into %q", s.ModelName, m.Config.Name)
	}
	params := m.Params()
	if len(s.Params) != len(params) {
		return fmt.Errorf("checkpoint: has %d params, model has %d", len(s.Params), len(params))
	}
	for _, p := range params {
		blob, ok := s.Params[p.Name]
		if !ok {
			return fmt.Errorf("checkpoint: missing parameter %q", p.Name)
		}
		if len(blob.Data) != p.Data().Len() {
			return fmt.Errorf("checkpoint: parameter %q has %d elements, model wants %d", p.Name, len(blob.Data), p.Data().Len())
		}
		copy(p.Data().Data(), blob.Data)
	}
	bns := m.BatchNorms()
	if len(s.BNMeans) != len(bns) || len(s.BNVars) != len(bns) {
		return fmt.Errorf("checkpoint: has %d BN stats, model has %d", len(s.BNMeans), len(bns))
	}
	for i, bn := range bns {
		if len(s.BNMeans[i].Data) != bn.RunningMean.Len() {
			return fmt.Errorf("checkpoint: BN %d stats size mismatch", i)
		}
		copy(bn.RunningMean.Data(), s.BNMeans[i].Data)
		copy(bn.RunningVar.Data(), s.BNVars[i].Data)
	}
	return nil
}

// SaveFile writes a checkpoint to path atomically (write + rename).
func SaveFile(path string, m *efficientnet.Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a checkpoint from path.
func LoadFile(path string, m *efficientnet.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, m)
}
