package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"effnetscale/internal/efficientnet"
	"effnetscale/internal/nn"
)

// Weights-only format versions. They share one number space with
// SnapshotFormat (2) so each reader can recognize the other kind of file and
// point at the right API instead of failing on a field mismatch.
const (
	// weightsFormatMap is the original weights-only layout: parameters in a
	// gob map, whose encoding order gob randomizes — two saves of identical
	// weights produce different bytes. Still readable, no longer written.
	weightsFormatMap = 1
	// weightsFormat is the current weights-only layout: parameters as a
	// name-sorted slice, so identical weights always encode to identical
	// bytes and two checkpoints can be compared with cmp/sha256sum.
	weightsFormat = 3
)

// weightsFile is the on-disk representation of the current weights-only
// format: the header of the original checkpoint.Save with the parameter map
// replaced by a name-sorted slice for deterministic encoding.
type weightsFile struct {
	Format     int
	ModelName  string
	NumClasses int
	Resolution int
	Params     []namedBlob
	BNMeans    []tensorBlob
	BNVars     []tensorBlob
}

// legacyWeightsFile is the format-1 layout (the gob shape of the original
// checkpoint.Save), kept so old checkpoints load unchanged.
type legacyWeightsFile struct {
	Format     int
	ModelName  string
	NumClasses int
	Resolution int
	Params     map[string]tensorBlob
	BNMeans    []tensorBlob
	BNVars     []tensorBlob
}

type tensorBlob struct {
	Shape []int
	Data  []float32
}

type namedBlob struct {
	Name  string
	Shape []int
	Data  []float32
}

// SaveWeights writes the model's parameters and BN running statistics to w
// in the weights-only serving format (previously checkpoint.Save). The
// encoding is deterministic: saving the same weights twice produces
// byte-identical output, so two training runs can be compared with cmp on
// their checkpoints. Full training state belongs in a Snapshot instead.
func SaveWeights(w io.Writer, m *efficientnet.Model) error {
	s := weightsFile{
		Format:     weightsFormat,
		ModelName:  m.Config.Name,
		NumClasses: m.Config.NumClasses,
		Resolution: m.Config.Resolution,
	}
	seen := make(map[string]bool)
	for _, p := range m.Params() {
		if seen[p.Name] {
			return fmt.Errorf("checkpoint: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		s.Params = append(s.Params, namedBlob{
			Name:  p.Name,
			Shape: append([]int(nil), p.Data().Shape()...),
			Data:  append([]float32(nil), p.Data().Data()...),
		})
	}
	sort.Slice(s.Params, func(i, j int) bool { return s.Params[i].Name < s.Params[j].Name })
	for _, bn := range m.BatchNorms() {
		s.BNMeans = append(s.BNMeans, tensorBlob{Shape: bn.RunningMean.Shape(), Data: append([]float32(nil), bn.RunningMean.Data()...)})
		s.BNVars = append(s.BNVars, tensorBlob{Shape: bn.RunningVar.Shape(), Data: append([]float32(nil), bn.RunningVar.Data()...)})
	}
	return gob.NewEncoder(w).Encode(s)
}

// decodeWeights reads either weights-only layout from r and returns the
// normalized contents (parameters keyed by name). Format validation belongs
// to the caller: a snapshot file decodes "successfully" here (its Format
// field is readable, its components are not weights fields) precisely so the
// caller can point at the snapshot API.
func decodeWeights(r io.Reader) (*legacyWeightsFile, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	var s weightsFile
	serr := gob.NewDecoder(bytes.NewReader(raw)).Decode(&s)
	if serr == nil {
		out := &legacyWeightsFile{
			Format:     s.Format,
			ModelName:  s.ModelName,
			NumClasses: s.NumClasses,
			Resolution: s.Resolution,
			Params:     make(map[string]tensorBlob, len(s.Params)),
			BNMeans:    s.BNMeans,
			BNVars:     s.BNVars,
		}
		for _, p := range s.Params {
			out.Params[p.Name] = tensorBlob{Shape: p.Shape, Data: p.Data}
		}
		return out, nil
	}
	// The sorted decode fails on a format-1 file at the Params field (wire
	// map vs local slice) — re-decode with the legacy struct.
	var l legacyWeightsFile
	if lerr := gob.NewDecoder(bytes.NewReader(raw)).Decode(&l); lerr != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", serr)
	}
	return &l, nil
}

// LoadWeights restores parameters and BN statistics into m, which must have
// the same architecture the checkpoint was saved from (previously
// checkpoint.Load). Files written by the old map-ordered Save (format 1)
// load unchanged.
func LoadWeights(r io.Reader, m *efficientnet.Model) error {
	s, err := decodeWeights(r)
	if err != nil {
		return err
	}
	if s.Format != weightsFormat && s.Format != weightsFormatMap {
		if s.Format == SnapshotFormat {
			return fmt.Errorf("checkpoint: file is a full training snapshot (format %d); restore it with ReadSnapshot / train.WithResume, or extract weights via the model codec", SnapshotFormat)
		}
		return fmt.Errorf("checkpoint: unsupported format %d (want %d)", s.Format, weightsFormat)
	}
	if s.ModelName != m.Config.Name {
		return fmt.Errorf("checkpoint: saved from model %q, loading into %q", s.ModelName, m.Config.Name)
	}
	params := m.Params()
	if len(s.Params) != len(params) {
		return fmt.Errorf("checkpoint: has %d params, model has %d", len(s.Params), len(params))
	}
	for _, p := range params {
		blob, ok := s.Params[p.Name]
		if !ok {
			return fmt.Errorf("checkpoint: missing parameter %q", p.Name)
		}
		if len(blob.Data) != p.Data().Len() {
			return fmt.Errorf("checkpoint: parameter %q has %d elements, model wants %d", p.Name, len(blob.Data), p.Data().Len())
		}
		copy(p.Data().Data(), blob.Data)
	}
	bns := m.BatchNorms()
	if len(s.BNMeans) != len(bns) || len(s.BNVars) != len(bns) {
		return fmt.Errorf("checkpoint: has %d BN stats, model has %d", len(s.BNMeans), len(bns))
	}
	for i, bn := range bns {
		if len(s.BNMeans[i].Data) != bn.RunningMean.Len() {
			return fmt.Errorf("checkpoint: BN %d stats size mismatch", i)
		}
		copy(bn.RunningMean.Data(), s.BNMeans[i].Data)
		copy(bn.RunningVar.Data(), s.BNVars[i].Data)
	}
	return nil
}

// SaveWeightsFile writes a weights-only checkpoint to path atomically and
// durably (temp file + fsync + rename + directory fsync; previously
// checkpoint.SaveFile, which renamed without syncing).
func SaveWeightsFile(path string, m *efficientnet.Model) error {
	return writeFileAtomic(path, func(w io.Writer) error { return SaveWeights(w, m) })
}

// LoadWeightsFile restores a weights-only checkpoint from path (previously
// checkpoint.LoadFile).
func LoadWeightsFile(path string, m *efficientnet.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadWeights(f, m)
}

// WeightsInfo reports a weights-only checkpoint's model identity without a
// pre-built model: family name, class count and train/eval resolution. A
// serving loader uses this to construct the matching architecture before
// LoadWeightsFile fills it.
func WeightsInfo(path string) (model string, numClasses, resolution int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, 0, err
	}
	defer f.Close()
	s, err := decodeWeights(f)
	if err != nil {
		return "", 0, 0, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if s.Format != weightsFormat && s.Format != weightsFormatMap {
		return "", 0, 0, fmt.Errorf("checkpoint: %s has format %d, not a weights-only checkpoint (want %d)", path, s.Format, weightsFormat)
	}
	return s.ModelName, s.NumClasses, s.Resolution, nil
}

// ModelInfo reports the model identity recorded in a snapshot's "model"
// component — the counterpart of WeightsInfo for full training-state
// snapshots.
func ModelInfo(s *Snapshot) (model string, numClasses, resolution int, err error) {
	c, err := s.Component("model")
	if err != nil {
		return "", 0, 0, err
	}
	family, err := c.Str("family")
	if err != nil {
		return "", 0, 0, err
	}
	classes, err := c.I64("classes")
	if err != nil {
		return "", 0, 0, err
	}
	res, err := c.I64("resolution")
	if err != nil {
		return "", 0, 0, err
	}
	return family, int(classes), int(res), nil
}

// --- Model state codec --------------------------------------------------------

// modelState adapts an EfficientNet model to the StateCodec interface:
// parameters keyed by name ("param/<name>") plus BN running statistics in
// layer order ("bn/<i>/mean", "bn/<i>/var") and the model identity, all
// validated on restore.
type modelState struct {
	m *efficientnet.Model
}

// ModelState returns the model's snapshot codec (component "model").
func ModelState(m *efficientnet.Model) StateCodec { return modelState{m} }

// StateKey implements StateCodec.
func (modelState) StateKey() string { return "model" }

// CaptureState implements StateCodec.
func (s modelState) CaptureState() (Component, error) {
	c := Component{}
	c.PutStr("family", s.m.Config.Name)
	c.PutI64("classes", int64(s.m.Config.NumClasses))
	c.PutI64("resolution", int64(s.m.Config.Resolution))
	if _, err := nn.ParamIndex(s.m.Params()); err != nil {
		return nil, err
	}
	for _, p := range s.m.Params() {
		c.PutF32("param/"+p.Name, p.Data().Shape(), p.Data().Data())
	}
	for i, bn := range s.m.BatchNorms() {
		c.PutF32(fmt.Sprintf("bn/%d/mean", i), bn.RunningMean.Shape(), bn.RunningMean.Data())
		c.PutF32(fmt.Sprintf("bn/%d/var", i), bn.RunningVar.Shape(), bn.RunningVar.Data())
	}
	return c, nil
}

// RestoreState implements StateCodec. Every model parameter and BN layer
// must be present with matching shape, and the component must carry nothing
// the model does not have — extra state means the snapshot was taken from a
// different architecture and silently dropping it would corrupt the resume.
func (s modelState) RestoreState(c Component) error {
	family, err := c.Str("family")
	if err != nil {
		return err
	}
	if family != s.m.Config.Name {
		return fmt.Errorf("snapshot saved from model %q, restoring into %q", family, s.m.Config.Name)
	}
	classes, err := c.I64("classes")
	if err != nil {
		return err
	}
	if int(classes) != s.m.Config.NumClasses {
		return fmt.Errorf("snapshot has %d classes, model has %d", classes, s.m.Config.NumClasses)
	}
	res, err := c.I64("resolution")
	if err != nil {
		return err
	}
	if int(res) != s.m.Config.Resolution {
		return fmt.Errorf("snapshot at resolution %d, model at %d", res, s.m.Config.Resolution)
	}
	known := map[string]bool{"family": true, "classes": true, "resolution": true}
	for _, p := range s.m.Params() {
		key := "param/" + p.Name
		data, err := c.F32(key, p.Data().Shape())
		if err != nil {
			return err
		}
		copy(p.Data().Data(), data)
		known[key] = true
	}
	for i, bn := range s.m.BatchNorms() {
		for _, kv := range []struct {
			key string
			dst []float32
			sh  []int
		}{
			{fmt.Sprintf("bn/%d/mean", i), bn.RunningMean.Data(), bn.RunningMean.Shape()},
			{fmt.Sprintf("bn/%d/var", i), bn.RunningVar.Data(), bn.RunningVar.Shape()},
		} {
			data, err := c.F32(kv.key, kv.sh)
			if err != nil {
				return err
			}
			copy(kv.dst, data)
			known[kv.key] = true
		}
	}
	var extra []string
	for key := range c {
		if !known[key] {
			extra = append(extra, key)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		return fmt.Errorf("snapshot carries state the model does not have: %s", strings.Join(extra, ", "))
	}
	return nil
}
