// Package checkpoint is the versioned training-state snapshot subsystem: a
// component-based Snapshot format that captures everything a resumed run
// needs to continue bit-for-bit (model weights and BN statistics, optimizer
// slots, EMA shadow weights, loop position, per-replica RNG and
// data-pipeline cursors), an async Writer that persists snapshots atomically
// (fsync + rename) off the training critical path, and the legacy
// weights-only format (SaveWeights/LoadWeights) kept for serving trained
// models.
//
// Seams: StateCodec (StateKey/CaptureState/RestoreState with presence,
// shape and identity validation) is how stateful subsystems participate —
// the model (ModelState), every optim.Optimizer, optim.WeightEMA and each
// replica's private state implement it. The replica engine composes their
// components into full snapshots (replica.Engine.CaptureState /
// RestoreState) and the train package surfaces the end-to-end story
// (train.WithSnapshotEvery, train.WithResume). Writer reports each write's
// outcome and latency as WriteEvents, which the telemetry subsystem
// aggregates into snapshot-write statistics.
//
// Paper: a pod-scale job outlives TPU preemption only if training state is
// durable; this package is the fault-tolerance layer under the paper's
// wall-clock claims (§3.3's loop structure decides *when* it runs — at
// quiescent step boundaries).
package checkpoint
