package checkpoint

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

func newPico(seed int64) *efficientnet.Model {
	cfg, _ := efficientnet.ConfigByName("pico", 10)
	return efficientnet.New(rand.New(rand.NewSource(seed)), cfg)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := newPico(1)
	// Make BN running stats nontrivial.
	src.BatchNorms()[0].RunningMean.Data()[0] = 3.25

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newPico(99) // different init
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Data().Data() {
			if sp[i].Data().Data()[j] != dp[i].Data().Data()[j] {
				t.Fatalf("param %s differs after round trip", sp[i].Name)
			}
		}
	}
	if dst.BatchNorms()[0].RunningMean.Data()[0] != 3.25 {
		t.Fatal("BN running stats not restored")
	}
	// Same outputs on the same input.
	x := autograd.Constant(tensor.Randn(rand.New(rand.NewSource(5)), 1, 1, 3, 32, 32))
	ctx := nn.EvalCtx()
	ys, yd := src.Forward(ctx, x), dst.Forward(ctx, x)
	for i := range ys.T.Data() {
		if ys.T.Data()[i] != yd.T.Data()[i] {
			t.Fatal("restored model produces different outputs")
		}
	}
}

func TestLoadRejectsWrongModel(t *testing.T) {
	src := newPico(1)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	cfg, _ := efficientnet.ConfigByName("nano", 10)
	other := efficientnet.New(rand.New(rand.NewSource(2)), cfg)
	if err := Load(&buf, other); err == nil {
		t.Fatal("loading a pico checkpoint into nano must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m := newPico(1)
	if err := Load(bytes.NewReader([]byte("not a checkpoint")), m); err == nil {
		t.Fatal("garbage input must fail to decode")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	src := newPico(3)
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := newPico(4)
	if err := LoadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if src.Params()[0].Data().Data()[0] != dst.Params()[0].Data().Data()[0] {
		t.Fatal("file round trip lost data")
	}
	if err := LoadFile(filepath.Join(dir, "missing.ckpt"), dst); err == nil {
		t.Fatal("missing file must error")
	}
}
