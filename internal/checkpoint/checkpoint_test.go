package checkpoint

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/nn"
	"effnetscale/internal/tensor"
)

func newPico(seed int64) *efficientnet.Model {
	cfg, _ := efficientnet.ConfigByName("pico", 10)
	return efficientnet.New(rand.New(rand.NewSource(seed)), cfg)
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	src := newPico(1)
	// Make BN running stats nontrivial.
	src.BatchNorms()[0].RunningMean.Data()[0] = 3.25

	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newPico(99) // different init
	if err := LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Data().Data() {
			if sp[i].Data().Data()[j] != dp[i].Data().Data()[j] {
				t.Fatalf("param %s differs after round trip", sp[i].Name)
			}
		}
	}
	if dst.BatchNorms()[0].RunningMean.Data()[0] != 3.25 {
		t.Fatal("BN running stats not restored")
	}
	// Same outputs on the same input.
	x := autograd.Constant(tensor.Randn(rand.New(rand.NewSource(5)), 1, 1, 3, 32, 32))
	ctx := nn.EvalCtx()
	ys, yd := src.Forward(ctx, x), dst.Forward(ctx, x)
	for i := range ys.T.Data() {
		if ys.T.Data()[i] != yd.T.Data()[i] {
			t.Fatal("restored model produces different outputs")
		}
	}
}

func TestSaveWeightsDeterministic(t *testing.T) {
	// The weights encoding must be byte-for-byte reproducible so two runs'
	// checkpoints can be compared with cmp (CI's hybrid-smoke job does
	// exactly that to prove a D×1 mesh matches pure data parallelism).
	// The original map-backed format failed this: gob randomizes map order.
	var a, b bytes.Buffer
	if err := SaveWeights(&a, newPico(1)); err != nil {
		t.Fatal(err)
	}
	if err := SaveWeights(&b, newPico(1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of identical weights produced different bytes")
	}
}

func TestLoadWeightsReadsLegacyMapFormat(t *testing.T) {
	// Checkpoints written before the sorted format (format 1, parameters in
	// a gob map) must keep loading.
	src := newPico(1)
	legacy := legacyWeightsFile{
		Format:     weightsFormatMap,
		ModelName:  src.Config.Name,
		NumClasses: src.Config.NumClasses,
		Resolution: src.Config.Resolution,
		Params:     make(map[string]tensorBlob),
	}
	for _, p := range src.Params() {
		legacy.Params[p.Name] = tensorBlob{Shape: p.Data().Shape(), Data: p.Data().Data()}
	}
	for _, bn := range src.BatchNorms() {
		legacy.BNMeans = append(legacy.BNMeans, tensorBlob{Shape: bn.RunningMean.Shape(), Data: bn.RunningMean.Data()})
		legacy.BNVars = append(legacy.BNVars, tensorBlob{Shape: bn.RunningVar.Shape(), Data: bn.RunningVar.Data()})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	dst := newPico(99)
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatalf("legacy format load: %v", err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Data().Data() {
			if sp[i].Data().Data()[j] != dp[i].Data().Data()[j] {
				t.Fatalf("param %s differs after legacy load", sp[i].Name)
			}
		}
	}
}

func TestLoadWeightsRejectsWrongModel(t *testing.T) {
	src := newPico(1)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	cfg, _ := efficientnet.ConfigByName("nano", 10)
	other := efficientnet.New(rand.New(rand.NewSource(2)), cfg)
	if err := LoadWeights(&buf, other); err == nil {
		t.Fatal("loading a pico checkpoint into nano must fail")
	}
}

func TestLoadWeightsRejectsGarbage(t *testing.T) {
	m := newPico(1)
	if err := LoadWeights(bytes.NewReader([]byte("not a checkpoint")), m); err == nil {
		t.Fatal("garbage input must fail to decode")
	}
}

func TestSaveLoadWeightsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	src := newPico(3)
	if err := SaveWeightsFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := newPico(4)
	if err := LoadWeightsFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if src.Params()[0].Data().Data()[0] != dst.Params()[0].Data().Data()[0] {
		t.Fatal("file round trip lost data")
	}
	if err := LoadWeightsFile(filepath.Join(dir, "missing.ckpt"), dst); err == nil {
		t.Fatal("missing file must error")
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after atomic save, want 1", len(entries))
	}
}

// --- Snapshot component/codec error paths -------------------------------------

func modelSnapshot(t *testing.T, m *efficientnet.Model) *Snapshot {
	t.Helper()
	snap := NewSnapshot()
	if err := snap.Capture(ModelState(m)); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestModelStateRoundTrip(t *testing.T) {
	src := newPico(1)
	src.BatchNorms()[1].RunningVar.Data()[0] = 7.5
	snap := modelSnapshot(t, src)
	dst := newPico(42)
	if err := snap.Restore(ModelState(dst)); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		dp := dst.Params()[i]
		for j := range p.Data().Data() {
			if p.Data().Data()[j] != dp.Data().Data()[j] {
				t.Fatalf("param %s differs after snapshot round trip", p.Name)
			}
		}
	}
	if dst.BatchNorms()[1].RunningVar.Data()[0] != 7.5 {
		t.Fatal("BN running stats not restored through codec")
	}
}

func TestModelStateRejectsWrongFamily(t *testing.T) {
	snap := modelSnapshot(t, newPico(1))
	cfg, _ := efficientnet.ConfigByName("nano", 10)
	nano := efficientnet.New(rand.New(rand.NewSource(2)), cfg)
	err := snap.Restore(ModelState(nano))
	if err == nil || !strings.Contains(err.Error(), "saved from model") {
		t.Fatalf("wrong-family restore = %v, want saved-from-model error", err)
	}
}

func TestModelStateRejectsMissingAndExtraState(t *testing.T) {
	m := newPico(1)
	snap := modelSnapshot(t, m)
	comp := snap.Components["model"]

	// Missing parameter state.
	name := "param/" + m.Params()[3].Name
	saved := comp[name]
	delete(comp, name)
	if err := snap.Restore(ModelState(newPico(2))); err == nil || !strings.Contains(err.Error(), "missing state") {
		t.Fatalf("missing param restore = %v, want missing-state error", err)
	}
	comp[name] = saved

	// Extra state the model does not have.
	comp.PutF32("param/ghost.w", []int{2}, []float32{1, 2})
	err := snap.Restore(ModelState(newPico(2)))
	if err == nil || !strings.Contains(err.Error(), "ghost.w") {
		t.Fatalf("extra-state restore = %v, want error naming ghost.w", err)
	}
	delete(comp, "param/ghost.w")

	// Shape mismatch.
	comp.PutF32(name, []int{1}, []float32{3})
	if err := snap.Restore(ModelState(newPico(2))); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape-mismatch restore = %v, want shape error", err)
	}
}

func TestSnapshotFileRoundTripAndErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	snap := modelSnapshot(t, newPico(3))
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Restore(ModelState(newPico(4))); err != nil {
		t.Fatal(err)
	}

	// Truncated file: descriptive decode error, not a panic or partial load.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(trunc, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(trunc); err == nil || !strings.Contains(err.Error(), "truncated or corrupt") {
		t.Fatalf("truncated read = %v, want truncated/corrupt error", err)
	}

	// Format-version mismatch.
	bad := modelSnapshot(t, newPico(3))
	bad.Format = SnapshotFormat + 5
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&buf); err == nil || !strings.Contains(err.Error(), "unsupported snapshot format") {
		t.Fatalf("future-format read = %v, want unsupported-format error", err)
	}
}

func TestFormatCrossoverErrors(t *testing.T) {
	// A legacy weights file is not a snapshot, and vice versa; both
	// directions must fail with errors that point at the right API.
	var weights bytes.Buffer
	if err := SaveWeights(&weights, newPico(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(weights.Bytes())); err == nil || !strings.Contains(err.Error(), "LoadWeights") {
		t.Fatalf("snapshot-read of weights file = %v, want pointer to LoadWeights", err)
	}

	var snapBuf bytes.Buffer
	if err := WriteSnapshot(&snapBuf, modelSnapshot(t, newPico(1))); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(bytes.NewReader(snapBuf.Bytes()), newPico(2)); err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("weights-read of snapshot file = %v, want pointer to snapshot API", err)
	}
}

func TestReadLatestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Enqueue(3, modelSnapshot(t, newPico(7)))
	w.Enqueue(6, modelSnapshot(t, newPico(8)))
	w.Close()
	for _, ev := range w.Drain() {
		if ev.Err != nil {
			t.Fatal(ev.Err)
		}
	}
	// Corrupt the newest snapshot, as a crash mid-write would on a
	// filesystem without atomic rename; resume must fall back to step 3.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(6)), []byte("shredded"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, path, err := ReadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, snapshotName(3)) {
		t.Fatalf("fell back to %s, want %s", path, snapshotName(3))
	}
	if err := snap.Restore(ModelState(newPico(9))); err != nil {
		t.Fatal(err)
	}
	// An empty directory is a descriptive error.
	if _, _, err := ReadLatestSnapshot(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no snapshots") {
		t.Fatalf("empty-dir read = %v, want no-snapshots error", err)
	}
}

func TestWriterKeepLastPrunes(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(1); step <= 5; step++ {
		w.Enqueue(step, modelSnapshot(t, newPico(step)))
	}
	w.Close()
	paths, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("kept %d snapshots, want 2: %v", len(paths), paths)
	}
	if !strings.Contains(paths[0], snapshotName(4)) || !strings.Contains(paths[1], snapshotName(5)) {
		t.Fatalf("kept wrong snapshots: %v", paths)
	}
	// A new writer over the same directory counts existing files against
	// the bound.
	w2, err := NewWriter(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	w2.Enqueue(6, modelSnapshot(t, newPico(6)))
	w2.Close()
	paths, _ = ListSnapshots(dir)
	if len(paths) != 2 || !strings.Contains(paths[1], snapshotName(6)) {
		t.Fatalf("cross-process pruning kept %v", paths)
	}
}

func TestSnapshotListingIgnoresTempDroppings(t *testing.T) {
	// A crash mid-write leaves step-N.ckpt.tmp-XXX next to real snapshots.
	// Those must not be listed as snapshots (they would waste keep-last
	// retention slots and resume decode attempts), and a new writer sweeps
	// them away.
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Enqueue(4, modelSnapshot(t, newPico(1)))
	w.Close()
	dropping := filepath.Join(dir, "step-000000009.ckpt.tmp-12345")
	if err := os.WriteFile(dropping, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "step-notanumber.ckpt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !strings.Contains(paths[0], snapshotName(4)) {
		t.Fatalf("listing includes non-snapshots: %v", paths)
	}
	if _, path, err := ReadLatestSnapshot(dir); err != nil || !strings.Contains(path, snapshotName(4)) {
		t.Fatalf("latest = %s (%v), want step 4", path, err)
	}
	// A fresh writer over the directory sweeps the temp dropping.
	w2, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if _, err := os.Stat(dropping); !os.IsNotExist(err) {
		t.Fatalf("temp dropping survived writer startup: %v", err)
	}
}

func TestWriterReportsFailures(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the writer so the write fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	w.Enqueue(1, modelSnapshot(t, newPico(1)))
	w.Flush()
	evs := w.Drain()
	w.Close()
	if len(evs) != 1 || evs[0].Err == nil {
		t.Fatalf("events = %+v, want one failure", evs)
	}
}
