// Package nn provides the neural-network layer library used to build
// EfficientNets: convolutions, batch normalization with pluggable
// cross-replica statistics reduction (paper §3.4), squeeze-excitation,
// dense layers, activations and regularizers, plus a parameter registry
// consumed by the optimizers.
//
// Seams: Param is the registry entry optimizers and checkpoints traverse;
// Ctx carries per-forward mode (training/eval), the bf16 precision policy
// and the dropout RNG stream; StatsReducer is the distributed-BN seam — a
// BatchNorm whose Reducer is set all-reduces its per-channel statistics
// across its BN group, and CollectiveStats adapts any comm.Collective into
// that seam.
//
// The inference split: every Layer has both Forward (autograd tape, the
// training path) and Infer (plain tensors, no tape — batch norm reads its
// running statistics, dropout and drop-connect are identity). The two paths
// share the same weights and the same math, asserted bit-for-bit against
// Forward-with-Training=false by the parity tests; Infer exists so
// evaluation and serving pay no tape allocations. New layers must implement
// both methods or the compiler rejects them.
//
// Paper: §3.4 — distributed batch normalization over replica groups, the
// accuracy-critical ingredient for very large global batches.
package nn
