// Package nn provides the neural-network layer library used to build
// EfficientNets: convolutions, batch normalization with pluggable
// cross-replica statistics reduction (paper §3.4), squeeze-excitation,
// dense layers, activations and regularizers, plus a parameter registry
// consumed by the optimizers.
//
// Seams: Param is the registry entry optimizers and checkpoints traverse;
// Ctx carries per-forward mode (training/eval), the bf16 precision policy
// and the dropout RNG stream; StatsReducer is the distributed-BN seam — a
// BatchNorm whose Reducer is set all-reduces its per-channel statistics
// across its BN group, and CollectiveStats adapts any comm.Collective into
// that seam.
//
// Paper: §3.4 — distributed batch normalization over replica groups, the
// accuracy-critical ingredient for very large global batches.
package nn
