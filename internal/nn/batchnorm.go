package nn

import (
	"fmt"
	"math"

	"effnetscale/internal/autograd"
	"effnetscale/internal/tensor"
)

// StatsReducer sums per-channel statistics across a batch-normalization
// replica group. This is the seam through which the paper's §3.4 distributed
// batch normalization plugs in: the replica engine installs a reducer that
// all-reduces the vectors over the replicas in the same BN group, so the
// effective normalization batch is (per-replica batch) × (group size).
type StatsReducer interface {
	// ReduceStats sums count and each vector element-wise across the group,
	// in place, returning the summed count. A local (non-distributed)
	// implementation returns its inputs unchanged.
	ReduceStats(count float64, vecs ...[]float64) float64
}

// LocalStats is the identity reducer: batch-norm statistics are computed
// over the local replica batch only (the non-distributed baseline).
type LocalStats struct{}

// ReduceStats returns count and leaves vecs untouched.
func (LocalStats) ReduceStats(count float64, _ ...[]float64) float64 { return count }

// BatchNorm normalizes NCHW activations per channel. During training it uses
// (possibly group-reduced) batch statistics and maintains exponential moving
// averages for inference.
type BatchNorm struct {
	Gamma, Beta *Param
	// RunningMean and RunningVar are the inference-time moving statistics.
	RunningMean, RunningVar *tensor.Tensor
	// Momentum is the EMA decay (TF EfficientNet uses 0.99).
	Momentum float64
	// Eps stabilizes the variance denominator.
	Eps float64
	// Reducer aggregates statistics across the BN replica group. Defaults
	// to LocalStats; the distributed engine replaces it per §3.4.
	Reducer StatsReducer

	c int
}

// NewBatchNorm creates a batch-norm layer for c channels with gamma=1,
// beta=0, and TF-style defaults (momentum 0.99, eps 1e-3).
func NewBatchNorm(name string, c int) *BatchNorm {
	return &BatchNorm{
		Gamma:       &Param{Name: name + ".gamma", Value: autograd.Leaf(tensor.Ones(c), true), NoAdapt: true},
		Beta:        &Param{Name: name + ".beta", Value: autograd.Leaf(tensor.New(c), true), NoAdapt: true},
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
		Momentum:    0.99,
		Eps:         1e-3,
		Reducer:     LocalStats{},
		c:           c,
	}
}

// Params returns gamma and beta.
func (l *BatchNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// Forward normalizes x. In training mode, per-channel mean and variance are
// computed over the local batch and reduced across the BN group via Reducer;
// in eval mode the running statistics are used.
func (l *BatchNorm) Forward(ctx *Ctx, x *autograd.Value) *autograd.Value {
	n, c, h, w := x.T.Dim4()
	if c != l.c {
		panic(fmt.Sprintf("nn: BatchNorm built for %d channels, got %d", l.c, c))
	}
	if !ctx.Training {
		return l.evalForward(x, n, c, h, w)
	}

	hw := h * w
	xd := x.T.Data()
	sum := make([]float64, c)
	sqsum := make([]float64, c)
	for nc := 0; nc < n*c; nc++ {
		ch := nc % c
		base := nc * hw
		var s, sq float64
		for i := 0; i < hw; i++ {
			v := float64(xd[base+i])
			s += v
			sq += v * v
		}
		sum[ch] += s
		sqsum[ch] += sq
	}
	m := l.Reducer.ReduceStats(float64(n*hw), sum, sqsum)

	mean := make([]float64, c)
	invstd := make([]float64, c)
	variance := make([]float64, c)
	for ch := 0; ch < c; ch++ {
		mean[ch] = sum[ch] / m
		v := sqsum[ch]/m - mean[ch]*mean[ch]
		if v < 0 {
			v = 0 // guard against catastrophic cancellation
		}
		variance[ch] = v
		invstd[ch] = 1 / math.Sqrt(v+l.Eps)
	}

	// Update running statistics (side effect; not part of the tape).
	for ch := 0; ch < c; ch++ {
		l.RunningMean.Data()[ch] = float32(l.Momentum*float64(l.RunningMean.Data()[ch]) + (1-l.Momentum)*mean[ch])
		l.RunningVar.Data()[ch] = float32(l.Momentum*float64(l.RunningVar.Data()[ch]) + (1-l.Momentum)*variance[ch])
	}

	// Normalize and cache xhat for backward.
	xhat := tensor.New(x.T.Shape()...)
	out := tensor.New(x.T.Shape()...)
	gd := l.Gamma.Value.T.Data()
	bd := l.Beta.Value.T.Data()
	for nc := 0; nc < n*c; nc++ {
		ch := nc % c
		mu, is := float32(mean[ch]), float32(invstd[ch])
		g, b := gd[ch], bd[ch]
		base := nc * hw
		for i := 0; i < hw; i++ {
			xh := (xd[base+i] - mu) * is
			xhat.Data()[base+i] = xh
			out.Data()[base+i] = g*xh + b
		}
	}

	gamma, beta := l.Gamma.Value, l.Beta.Value
	reducer := l.Reducer
	return autograd.NewOp("batchnorm", out, []*autograd.Value{x, gamma, beta}, func(dy *tensor.Tensor) {
		dyd := dy.Data()
		// Local per-channel sums of dy and dy*xhat.
		s1 := make([]float64, c)
		s2 := make([]float64, c)
		dgamma := tensor.New(c)
		dbeta := tensor.New(c)
		for nc := 0; nc < n*c; nc++ {
			ch := nc % c
			base := nc * hw
			var a, b float64
			for i := 0; i < hw; i++ {
				g := float64(dyd[base+i])
				a += g
				b += g * float64(xhat.Data()[base+i])
			}
			s1[ch] += a
			s2[ch] += b
		}
		// dgamma/dbeta are local sums: the global gradient all-reduce
		// across replicas completes them.
		for ch := 0; ch < c; ch++ {
			dgamma.Data()[ch] = float32(s2[ch])
			dbeta.Data()[ch] = float32(s1[ch])
		}
		gamma.Accumulate(dgamma)
		beta.Accumulate(dbeta)

		if x.RequiresGrad() {
			// The dx correction terms need *group* means of dy and
			// dy*xhat — a second reduction per §3.4's communication cost.
			reducer.ReduceStats(float64(n*hw), s1, s2)
			dx := tensor.New(x.T.Shape()...)
			for nc := 0; nc < n*c; nc++ {
				ch := nc % c
				k := gd[ch] * float32(invstd[ch])
				m1 := float32(s1[ch] / m)
				m2 := float32(s2[ch] / m)
				base := nc * hw
				for i := 0; i < hw; i++ {
					dx.Data()[base+i] = k * (dyd[base+i] - m1 - xhat.Data()[base+i]*m2)
				}
			}
			x.Accumulate(dx)
		}
	})
}

func (l *BatchNorm) evalForward(x *autograd.Value, n, c, h, w int) *autograd.Value {
	hw := h * w
	out := tensor.New(x.T.Shape()...)
	xd := x.T.Data()
	gd := l.Gamma.Value.T.Data()
	bd := l.Beta.Value.T.Data()
	for nc := 0; nc < n*c; nc++ {
		ch := nc % c
		is := float32(1 / math.Sqrt(float64(l.RunningVar.Data()[ch])+l.Eps))
		mu := l.RunningMean.Data()[ch]
		g, b := gd[ch], bd[ch]
		base := nc * hw
		for i := 0; i < hw; i++ {
			out.Data()[base+i] = g*(xd[base+i]-mu)*is + b
		}
	}
	gamma, beta := l.Gamma.Value, l.Beta.Value
	// Inference backward (rarely needed, but keeps eval-mode fine-tuning
	// possible): y = gamma*(x-mu)*is + b with constant statistics.
	return autograd.NewOp("batchnorm_eval", out, []*autograd.Value{x, gamma, beta}, func(dy *tensor.Tensor) {
		dyd := dy.Data()
		dgamma := tensor.New(c)
		dbeta := tensor.New(c)
		dx := tensor.New(x.T.Shape()...)
		for nc := 0; nc < n*c; nc++ {
			ch := nc % c
			is := float32(1 / math.Sqrt(float64(l.RunningVar.Data()[ch])+l.Eps))
			mu := l.RunningMean.Data()[ch]
			base := nc * hw
			for i := 0; i < hw; i++ {
				xh := (xd[base+i] - mu) * is
				dgamma.Data()[ch] += dyd[base+i] * xh
				dbeta.Data()[ch] += dyd[base+i]
				dx.Data()[base+i] = dyd[base+i] * gd[ch] * is
			}
		}
		gamma.Accumulate(dgamma)
		beta.Accumulate(dbeta)
		x.Accumulate(dx)
	})
}
