package nn

import (
	"fmt"
	"math"
	"math/rand"

	"effnetscale/internal/autograd"
	"effnetscale/internal/bf16"
	"effnetscale/internal/tensor"
)

// Param is a trainable tensor with optimizer-relevant metadata.
type Param struct {
	// Name identifies the parameter for debugging and checkpoints.
	Name string
	// Value is the autograd leaf holding the weights and their gradient.
	Value *autograd.Value
	// NoAdapt marks parameters excluded from LARS layer-wise adaptation and
	// weight decay: batch-norm scales/shifts and biases, following You et
	// al. and the paper's §3.1 configuration.
	NoAdapt bool
}

// Data returns the parameter's weight tensor.
func (p *Param) Data() *tensor.Tensor { return p.Value.T }

// Grad returns the parameter's gradient tensor (nil before backward).
func (p *Param) Grad() *tensor.Tensor { return p.Value.Grad }

// BindGrad pins the parameter's gradient to buf, viewed in the parameter's
// shape. buf typically aliases a span of the engine's flattened reduction
// buffer: backward then accumulates straight into the all-reduce payload —
// no Clone on first touch, no post-backward flatten copy.
func (p *Param) BindGrad(buf []float32) {
	p.Value.BindGrad(tensor.FromSlice(buf, p.Data().Shape()...))
}

// RegisterParams registers every parameter's leaf with the tape so Backward
// fires its grad-ready hook (see autograd.Tape).
func RegisterParams(t *autograd.Tape, params []*Param) {
	for _, p := range params {
		t.Register(p.Value)
	}
}

// ParamIndex builds a name→parameter map over params, erroring on duplicate
// names. Checkpoint state is keyed by parameter name, so a duplicate would
// silently alias two parameters' saved state.
func ParamIndex(params []*Param) (map[string]*Param, error) {
	idx := make(map[string]*Param, len(params))
	for _, p := range params {
		if _, dup := idx[p.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		idx[p.Name] = p
	}
	return idx, nil
}

// Layer is a differentiable module. Forward threads an execution context
// carrying train/eval mode and the mixed-precision policy.
type Layer interface {
	Forward(ctx *Ctx, x *autograd.Value) *autograd.Value
	Params() []*Param
}

// Ctx carries per-step execution state through a forward pass.
type Ctx struct {
	// Training selects batch statistics + regularizers (true) versus
	// running statistics and identity regularizers (false).
	Training bool
	// Precision is the mixed-precision policy applied to convolutions.
	Precision bf16.Policy
	// RNG drives dropout and stochastic depth; may be nil in eval mode.
	RNG *rand.Rand
	// Scratch supplies kernel temporaries (im2col buffers, GEMM panels).
	// May be nil, in which case kernels share the process-wide arena; the
	// replica engine sets a per-engine arena so concurrent engines keep
	// separate working sets.
	Scratch *tensor.Scratch
}

// EvalCtx returns a context for inference in full fp32.
func EvalCtx() *Ctx { return &Ctx{} }

// TrainCtx returns a training context with the given seed and the paper's
// default mixed-precision policy (bf16 convolutions).
func TrainCtx(seed int64) *Ctx {
	return &Ctx{Training: true, Precision: bf16.DefaultPolicy, RNG: rand.New(rand.NewSource(seed))}
}

// --- Conv layers ------------------------------------------------------------

// Conv2D is a bias-free 2-D convolution (EfficientNet convs carry no bias;
// the following BatchNorm supplies the shift).
type Conv2D struct {
	W    *Param
	Spec tensor.ConvSpec
}

// NewConv2D creates a conv layer with variance-scaling (fan-out) init, the
// initializer used by the official EfficientNet implementation.
func NewConv2D(rng *rand.Rand, name string, cin, cout, k, stride int) *Conv2D {
	fanOut := cout * k * k
	std := math.Sqrt(2.0 / float64(fanOut))
	w := tensor.Randn(rng, std, cout, cin, k, k)
	pad := tensor.SamePad(k)
	return &Conv2D{
		W:    &Param{Name: name + ".w", Value: autograd.Leaf(w, true)},
		Spec: tensor.ConvSpec{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	}
}

// Forward applies the convolution under the context's precision policy.
func (l *Conv2D) Forward(ctx *Ctx, x *autograd.Value) *autograd.Value {
	return autograd.Conv2D(x, l.W.Value, l.Spec, ctx.Precision, ctx.Scratch)
}

// Params returns the convolution kernel.
func (l *Conv2D) Params() []*Param { return []*Param{l.W} }

// DepthwiseConv2D convolves each channel with its own kernel.
type DepthwiseConv2D struct {
	W    *Param
	Spec tensor.ConvSpec
}

// NewDepthwiseConv2D creates a depthwise conv with fan-out init
// (fan-out = k*k for depthwise, per the EfficientNet reference code).
func NewDepthwiseConv2D(rng *rand.Rand, name string, c, k, stride int) *DepthwiseConv2D {
	std := math.Sqrt(2.0 / float64(k*k))
	w := tensor.Randn(rng, std, c, 1, k, k)
	pad := tensor.SamePad(k)
	return &DepthwiseConv2D{
		W:    &Param{Name: name + ".dw", Value: autograd.Leaf(w, true)},
		Spec: tensor.ConvSpec{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	}
}

// Forward applies the depthwise convolution.
func (l *DepthwiseConv2D) Forward(ctx *Ctx, x *autograd.Value) *autograd.Value {
	return autograd.DepthwiseConv2D(x, l.W.Value, l.Spec, ctx.Precision)
}

// Params returns the depthwise kernel.
func (l *DepthwiseConv2D) Params() []*Param { return []*Param{l.W} }

// --- Dense ------------------------------------------------------------------

// Dense is a fully connected layer y = x@W + b over [N, In] inputs.
type Dense struct {
	W, B *Param
}

// NewDense creates a dense layer with uniform fan-in init.
func NewDense(rng *rand.Rand, name string, in, out int) *Dense {
	bound := 1.0 / math.Sqrt(float64(in))
	w := tensor.Uniform(rng, -bound, bound, in, out)
	b := tensor.New(out)
	return &Dense{
		W: &Param{Name: name + ".w", Value: autograd.Leaf(w, true)},
		B: &Param{Name: name + ".b", Value: autograd.Leaf(b, true), NoAdapt: true},
	}
}

// Forward computes x@W + b.
func (l *Dense) Forward(_ *Ctx, x *autograd.Value) *autograd.Value {
	return autograd.AddRowBias(autograd.MatMul(x, l.W.Value), l.B.Value)
}

// Params returns weight and bias.
func (l *Dense) Params() []*Param { return []*Param{l.W, l.B} }

// --- Activations and containers ---------------------------------------------

// Activation wraps a stateless element-wise function as a Layer. F is the
// differentiable tape form; TF is its tensor-level twin for the tape-free
// inference path (see Inferer), set by the package constructors.
type Activation struct {
	Name string
	F    func(*autograd.Value) *autograd.Value
	TF   func(*tensor.Tensor) *tensor.Tensor
}

// Forward applies the activation.
func (l *Activation) Forward(_ *Ctx, x *autograd.Value) *autograd.Value { return l.F(x) }

// Params returns nil: activations are parameter-free.
func (l *Activation) Params() []*Param { return nil }

// SwishLayer returns EfficientNet's swish activation as a Layer.
func SwishLayer() *Activation {
	return &Activation{Name: "swish", F: autograd.Swish, TF: SwishTensor}
}

// ReLULayer returns a ReLU activation Layer.
func ReLULayer() *Activation {
	return &Activation{Name: "relu", F: autograd.ReLU, TF: ReLUTensor}
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward threads x through every layer in order.
func (s *Sequential) Forward(ctx *Ctx, x *autograd.Value) *autograd.Value {
	for _, l := range s.Layers {
		x = l.Forward(ctx, x)
	}
	return x
}

// Params concatenates all child parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// --- Regularizers -----------------------------------------------------------

// Dropout zeroes activations with probability Rate during training and
// rescales survivors by 1/(1-Rate).
type Dropout struct {
	Rate float64
}

// Forward applies inverted dropout in training mode; identity in eval.
func (l *Dropout) Forward(ctx *Ctx, x *autograd.Value) *autograd.Value {
	if !ctx.Training || l.Rate <= 0 {
		return x
	}
	if ctx.RNG == nil {
		panic("nn: Dropout in training mode requires ctx.RNG")
	}
	keep := float32(1 - l.Rate)
	mask := tensor.New(x.T.Shape()...)
	for i := range mask.Data() {
		if ctx.RNG.Float64() >= l.Rate {
			mask.Data()[i] = 1 / keep
		}
	}
	return autograd.Mul(x, autograd.Constant(mask))
}

// Params returns nil.
func (l *Dropout) Params() []*Param { return nil }

// DropPath implements stochastic depth: during training the entire residual
// branch is dropped per-sample with probability Rate, and kept branches are
// rescaled. EfficientNet applies this to every MBConv residual.
type DropPath struct {
	Rate float64
}

// Forward drops whole samples of the branch output.
func (l *DropPath) Forward(ctx *Ctx, x *autograd.Value) *autograd.Value {
	if !ctx.Training || l.Rate <= 0 {
		return x
	}
	if ctx.RNG == nil {
		panic("nn: DropPath in training mode requires ctx.RNG")
	}
	shape := x.T.Shape()
	n := shape[0]
	rest := x.T.Len() / n
	keep := float32(1 - l.Rate)
	mask := tensor.New(shape...)
	for s := 0; s < n; s++ {
		var v float32
		if ctx.RNG.Float64() >= l.Rate {
			v = 1 / keep
		}
		base := s * rest
		for i := 0; i < rest; i++ {
			mask.Data()[base+i] = v
		}
	}
	return autograd.Mul(x, autograd.Constant(mask))
}

// Params returns nil.
func (l *DropPath) Params() []*Param { return nil }

// --- Squeeze-and-Excitation ---------------------------------------------------

// SqueezeExcite is the SE block from EfficientNet: global-average-pool to
// [N,C], bottleneck dense + swish, expand dense + sigmoid, then channel-wise
// rescale of the input.
type SqueezeExcite struct {
	Reduce, Expand *Dense
	C              int
}

// NewSqueezeExcite builds an SE block for c channels with the given squeezed
// width (EfficientNet uses se_ratio=0.25 of the block's input channels).
func NewSqueezeExcite(rng *rand.Rand, name string, c, squeezed int) *SqueezeExcite {
	if squeezed < 1 {
		squeezed = 1
	}
	return &SqueezeExcite{
		Reduce: NewDense(rng, name+".se_reduce", c, squeezed),
		Expand: NewDense(rng, name+".se_expand", squeezed, c),
		C:      c,
	}
}

// Forward computes x * sigmoid(W2·swish(W1·gap(x))).
func (l *SqueezeExcite) Forward(ctx *Ctx, x *autograd.Value) *autograd.Value {
	if x.T.Dim(1) != l.C {
		panic(fmt.Sprintf("nn: SqueezeExcite built for %d channels, got %d", l.C, x.T.Dim(1)))
	}
	s := autograd.GlobalAvgPool(x) // [N,C]
	s = autograd.Swish(l.Reduce.Forward(ctx, s))
	s = autograd.Sigmoid(l.Expand.Forward(ctx, s))
	return autograd.MulChannelNC(x, s)
}

// Params returns the two dense layers' parameters.
func (l *SqueezeExcite) Params() []*Param {
	return append(l.Reduce.Params(), l.Expand.Params()...)
}
