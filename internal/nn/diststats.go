package nn

import "effnetscale/internal/comm"

// CollectiveStats is the distributed StatsReducer: it sums batch-norm
// statistics across a BN replica group through any comm.Collective, so the
// same §3.4 group reduction can run over a ring, a latency-bound tree, or
// whatever algorithm the group's Provider selected. One instance belongs to
// one replica and must only be driven by that replica's goroutine (the
// collective itself is lockstep SPMD across the group).
type CollectiveStats struct {
	Coll comm.Collective

	buf []float64 // packing buffer, reused across reductions
}

// ReduceStats implements StatsReducer: count and each vector are packed into
// one payload, all-reduced across the group, and unpacked in place.
func (g *CollectiveStats) ReduceStats(count float64, vecs ...[]float64) float64 {
	n := 1
	for _, v := range vecs {
		n += len(v)
	}
	if cap(g.buf) < n {
		g.buf = make([]float64, n)
	}
	buf := g.buf[:0]
	buf = append(buf, count)
	for _, v := range vecs {
		buf = append(buf, v...)
	}
	g.Coll.AllReduceF64(buf)
	off := 1
	for _, v := range vecs {
		copy(v, buf[off:off+len(v)])
		off += len(v)
	}
	return buf[0]
}
