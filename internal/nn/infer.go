package nn

import (
	"fmt"
	"math"

	"effnetscale/internal/bf16"
	"effnetscale/internal/tensor"
)

// This file is the inference-mode half of the train/serve forward split:
// tape-free forwards over plain tensors. Each Infer method computes exactly
// what Forward computes with ctx.Training == false — the same operations in
// the same floating-point order, so results are bit-for-bit identical to the
// eval-mode tape path — but builds no autograd graph: no Value nodes, no
// backward closures, no activation caches kept alive for a backward pass
// that will never run. Evaluation and serving both ride this path; training
// keeps the tape.

// Inferer is a layer with a tape-free inference forward. The policy controls
// the same mixed-precision emulation the training forward applies (bf16
// convolution operands); dropout and stochastic depth are identity, and
// batch normalization uses its running statistics.
type Inferer interface {
	Infer(policy bf16.Policy, x *tensor.Tensor) *tensor.Tensor
}

// roundBF16 returns t rounded to bfloat16 precision when enabled, else t —
// the inference twin of the tape path's operand rounding (paper §3.5).
func roundBF16(t *tensor.Tensor, enabled bool) *tensor.Tensor {
	if !enabled {
		return t
	}
	r := tensor.New(t.Shape()...)
	bf16.RoundSlice(r.Data(), t.Data())
	return r
}

// sigmoid32 matches the tape path's sigmoid exactly (same float64 round trip).
func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// SigmoidTensor applies the logistic function element-wise, tape-free.
func SigmoidTensor(t *tensor.Tensor) *tensor.Tensor {
	return tensor.Apply(t, sigmoid32)
}

// SwishTensor applies x·σ(x) element-wise, tape-free.
func SwishTensor(t *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(t.Shape()...)
	in, od := t.Data(), out.Data()
	for i, x := range in {
		od[i] = x * sigmoid32(x)
	}
	return out
}

// ReLUTensor applies max(0, x) element-wise, tape-free.
func ReLUTensor(t *tensor.Tensor) *tensor.Tensor {
	return tensor.Apply(t, func(x float32) float32 {
		if x < 0 {
			return 0
		}
		return x
	})
}

// Infer implements Inferer.
func (l *Conv2D) Infer(policy bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	xc := roundBF16(x, policy.ConvBF16)
	wc := roundBF16(l.W.Value.T, policy.ConvBF16)
	return tensor.Conv2D(xc, wc, l.Spec)
}

// Infer implements Inferer.
func (l *DepthwiseConv2D) Infer(policy bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	xc := roundBF16(x, policy.ConvBF16)
	wc := roundBF16(l.W.Value.T, policy.ConvBF16)
	return tensor.DepthwiseConv2D(xc, wc, l.Spec)
}

// Infer implements Inferer.
func (l *Dense) Infer(_ bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMul(x, l.W.Value.T)
	n, m := out.Dim(0), out.Dim(1)
	bd := l.B.Value.T.Data()
	od := out.Data()
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			od[i*m+j] += bd[j]
		}
	}
	return out
}

// Infer implements Inferer: running-statistics normalization, with the
// per-channel mean and inverse stddev hoisted out of the spatial loop (the
// tape's eval forward recomputes the sqrt per (sample, channel) pair; the
// values — and therefore the output bits — are identical).
func (l *BatchNorm) Infer(_ bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim4()
	if c != l.c {
		panic(fmt.Sprintf("nn: BatchNorm built for %d channels, got %d", l.c, c))
	}
	hw := h * w
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	gd := l.Gamma.Value.T.Data()
	bd := l.Beta.Value.T.Data()
	mu := l.RunningMean.Data()
	invstd := make([]float32, c)
	for ch := 0; ch < c; ch++ {
		invstd[ch] = float32(1 / math.Sqrt(float64(l.RunningVar.Data()[ch])+l.Eps))
	}
	for nc := 0; nc < n*c; nc++ {
		ch := nc % c
		is, m := invstd[ch], mu[ch]
		g, b := gd[ch], bd[ch]
		base := nc * hw
		for i := 0; i < hw; i++ {
			od[base+i] = g*(xd[base+i]-m)*is + b
		}
	}
	return out
}

// Infer implements Inferer: x * σ(W2·swish(W1·gap(x))), tape-free.
func (l *SqueezeExcite) Infer(policy bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	if x.Dim(1) != l.C {
		panic(fmt.Sprintf("nn: SqueezeExcite built for %d channels, got %d", l.C, x.Dim(1)))
	}
	_, _, h, w := x.Dim4()
	s := tensor.Scale(tensor.SumChannelNC(x), 1/float32(h*w)) // [N,C]
	s = SwishTensor(l.Reduce.Infer(policy, s))
	s = SigmoidTensor(l.Expand.Infer(policy, s))
	return tensor.MulChannelNC(x, s)
}

// Infer implements Inferer: activations are stateless, so the tensor-level
// function runs directly. Activations constructed literally (rather than via
// SwishLayer/ReLULayer) must set TF to be usable on the inference path.
func (l *Activation) Infer(_ bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	if l.TF == nil {
		panic(fmt.Sprintf("nn: activation %q has no tensor-level inference function (TF)", l.Name))
	}
	return l.TF(x)
}

// Infer implements Inferer: dropout is identity outside training.
func (l *Dropout) Infer(_ bf16.Policy, x *tensor.Tensor) *tensor.Tensor { return x }

// Infer implements Inferer: stochastic depth is identity outside training.
func (l *DropPath) Infer(_ bf16.Policy, x *tensor.Tensor) *tensor.Tensor { return x }

// Infer implements Inferer, threading x through every layer. Every child
// must itself implement Inferer; a layer that only has a tape forward is a
// loud error, not a silent fallback onto the tape.
func (s *Sequential) Infer(policy bf16.Policy, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		inf, ok := l.(Inferer)
		if !ok {
			panic(fmt.Sprintf("nn: layer %T has no inference-mode forward", l))
		}
		x = inf.Infer(policy, x)
	}
	return x
}
