package nn

import (
	"math"
	"math/rand"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/tensor"
)

// gradCheckParams verifies analytic gradients of loss() against central
// finite differences for every given parameter.
func gradCheckParams(t *testing.T, name string, params []*Param, loss func() *autograd.Value, tol float64) {
	t.Helper()
	for _, p := range params {
		p.Value.ZeroGrad()
	}
	loss().Backward()
	analytic := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if p.Grad() == nil {
			t.Fatalf("%s: param %s has nil grad", name, p.Name)
		}
		analytic[i] = p.Grad().Clone()
	}
	const eps = 1e-2
	for pi, p := range params {
		for i := range p.Data().Data() {
			orig := p.Data().Data()[i]
			p.Data().Data()[i] = orig + eps
			plus := float64(loss().T.Data()[0])
			p.Data().Data()[i] = orig - eps
			minus := float64(loss().T.Data()[0])
			p.Data().Data()[i] = orig
			numeric := (plus - minus) / (2 * eps)
			a := float64(analytic[pi].Data()[i])
			if math.Abs(a-numeric) > tol*(1+math.Abs(a)+math.Abs(numeric)) {
				t.Fatalf("%s param %s grad[%d]: analytic %v vs numeric %v", name, p.Name, i, a, numeric)
			}
		}
	}
}

func evalNoGradCtx() *Ctx { return &Ctx{} }

func TestConv2DLayerShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, "c1", 2, 3, 3, 2)
	x := autograd.Leaf(tensor.Randn(rng, 1, 1, 2, 8, 8), false)
	ctx := evalNoGradCtx()
	y := conv.Forward(ctx, x)
	wantShape := []int{1, 3, 4, 4}
	for i, d := range wantShape {
		if y.T.Dim(i) != d {
			t.Fatalf("conv output shape %v, want %v", y.T.Shape(), wantShape)
		}
	}
	gradCheckParams(t, "conv2d-layer", conv.Params(), func() *autograd.Value {
		return autograd.Mean(conv.Forward(ctx, x))
	}, 2e-3)
}

func TestDenseLayerGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, "fc", 5, 3)
	x := autograd.Leaf(tensor.Randn(rng, 1, 4, 5), false)
	ctx := evalNoGradCtx()
	gradCheckParams(t, "dense", d.Params(), func() *autograd.Value {
		return autograd.Mean(autograd.Swish(d.Forward(ctx, x)))
	}, 2e-3)
	if !d.B.NoAdapt {
		t.Fatal("dense bias must be flagged NoAdapt for LARS")
	}
	if d.W.NoAdapt {
		t.Fatal("dense weight must not be flagged NoAdapt")
	}
}

func TestBatchNormTrainingNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bn := NewBatchNorm("bn", 3)
	x := autograd.Leaf(tensor.Randn(rng, 2.5, 4, 3, 5, 5), false)
	// Shift channel means so normalization has something to do.
	for i := range x.T.Data() {
		x.T.Data()[i] += 7
	}
	ctx := &Ctx{Training: true, RNG: rng}
	y := bn.Forward(ctx, x)
	n, c, h, w := y.T.Dim4()
	hw := h * w
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for s := 0; s < n; s++ {
			base := (s*c + ch) * hw
			for i := 0; i < hw; i++ {
				v := float64(y.T.Data()[base+i])
				sum += v
				sq += v * v
			}
		}
		m := float64(n * hw)
		mean := sum / m
		variance := sq/m - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d mean after BN = %v, want ~0", ch, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d var after BN = %v, want ~1", ch, variance)
		}
	}
	// Running stats must have moved toward batch stats.
	if bn.RunningMean.Data()[0] == 0 {
		t.Fatal("running mean not updated")
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm("bn", 2)
	// Nontrivial gamma/beta.
	bn.Gamma.Data().Data()[0] = 1.3
	bn.Gamma.Data().Data()[1] = 0.7
	bn.Beta.Data().Data()[0] = 0.2
	xT := tensor.Randn(rng, 1, 3, 2, 3, 3)
	ctx := &Ctx{Training: true, RNG: rng}

	// Check gamma/beta gradients.
	x := autograd.Leaf(xT, false)
	gradCheckParams(t, "bn-params", bn.Params(), func() *autograd.Value {
		return autograd.Mean(autograd.Swish(bn.Forward(ctx, x)))
	}, 3e-3)

	// Check input gradient via a grad-requiring leaf wrapped as a Param.
	xv := autograd.Leaf(xT, true)
	inputParam := &Param{Name: "x", Value: xv}
	gradCheckParams(t, "bn-input", []*Param{inputParam}, func() *autograd.Value {
		return autograd.Mean(autograd.Swish(bn.Forward(ctx, xv)))
	}, 3e-3)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.RunningMean.Data()[0] = 2
	bn.RunningVar.Data()[0] = 4
	bn.Eps = 0
	x := autograd.Constant(tensor.FromSlice([]float32{4, 0, 2, 6}, 1, 1, 2, 2))
	y := bn.Forward(evalNoGradCtx(), x)
	want := []float32{1, -1, 0, 2} // (x-2)/2
	for i, v := range y.T.Data() {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Fatalf("eval BN[%d] = %v, want %v", i, v, want[i])
		}
	}
}

// doublingReducer simulates a BN group of two replicas holding identical
// data: all statistics double, so normalization must be unchanged.
type doublingReducer struct{ calls int }

func (r *doublingReducer) ReduceStats(count float64, vecs ...[]float64) float64 {
	r.calls++
	for _, v := range vecs {
		for i := range v {
			v[i] *= 2
		}
	}
	return count * 2
}

func TestBatchNormGroupReducerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xT := tensor.Randn(rng, 1, 2, 3, 4, 4)
	ctx := &Ctx{Training: true, RNG: rng}

	local := NewBatchNorm("bn", 3)
	grouped := NewBatchNorm("bn", 3)
	red := &doublingReducer{}
	grouped.Reducer = red

	y1 := local.Forward(ctx, autograd.Constant(xT))
	y2 := grouped.Forward(ctx, autograd.Constant(xT))
	for i := range y1.T.Data() {
		if math.Abs(float64(y1.T.Data()[i]-y2.T.Data()[i])) > 1e-5 {
			t.Fatalf("identical-replica group BN differs at %d: %v vs %v", i, y1.T.Data()[i], y2.T.Data()[i])
		}
	}
	if red.calls == 0 {
		t.Fatal("group reducer was never invoked")
	}
}

func TestSqueezeExciteGradAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	se := NewSqueezeExcite(rng, "se", 4, 2)
	x := autograd.Leaf(tensor.Randn(rng, 1, 2, 4, 3, 3), false)
	ctx := evalNoGradCtx()
	y := se.Forward(ctx, x)
	if !tensor.SameShape(y.T, x.T) {
		t.Fatalf("SE output shape %v, want %v", y.T.Shape(), x.T.Shape())
	}
	gradCheckParams(t, "se", se.Params(), func() *autograd.Value {
		return autograd.Mean(se.Forward(ctx, x))
	}, 3e-3)
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := &Dropout{Rate: 0.5}
	x := autograd.Constant(tensor.Ones(1, 1, 10, 10))
	// Eval: identity.
	y := d.Forward(evalNoGradCtx(), x)
	for _, v := range y.T.Data() {
		if v != 1 {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	// Train: elements are 0 or 1/keep.
	ctx := &Ctx{Training: true, RNG: rng}
	y = d.Forward(ctx, x)
	var zeros, scaled int
	for _, v := range y.T.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("dropout produced unexpected value %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout mask degenerate: %d zeros, %d scaled", zeros, scaled)
	}
}

func TestDropPathDropsWholeSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dp := &DropPath{Rate: 0.5}
	x := autograd.Constant(tensor.Ones(16, 2, 2, 2))
	ctx := &Ctx{Training: true, RNG: rng}
	y := dp.Forward(ctx, x)
	n := 16
	rest := y.T.Len() / n
	var kept, dropped int
	for s := 0; s < n; s++ {
		first := y.T.Data()[s*rest]
		for i := 0; i < rest; i++ {
			if y.T.Data()[s*rest+i] != first {
				t.Fatalf("DropPath must act per-sample; sample %d is mixed", s)
			}
		}
		if first == 0 {
			dropped++
		} else {
			kept++
		}
	}
	if kept == 0 || dropped == 0 {
		t.Fatalf("DropPath degenerate: kept=%d dropped=%d", kept, dropped)
	}
}

func TestSequentialComposesParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := &Sequential{Layers: []Layer{
		NewConv2D(rng, "c1", 1, 2, 3, 1),
		NewBatchNorm("bn1", 2),
		SwishLayer(),
	}}
	if got := len(seq.Params()); got != 3 { // conv.w, gamma, beta
		t.Fatalf("Sequential.Params() = %d params, want 3", got)
	}
	x := autograd.Constant(tensor.Ones(2, 1, 5, 5))
	y := seq.Forward(&Ctx{Training: true, RNG: rng}, x)
	if y.T.Dim(1) != 2 {
		t.Fatalf("sequential output channels = %d, want 2", y.T.Dim(1))
	}
}

func TestSwishLayerMatchesFunction(t *testing.T) {
	x := autograd.Constant(tensor.FromSlice([]float32{-1, 0, 1, 2}, 4))
	a := SwishLayer().Forward(evalNoGradCtx(), x)
	b := autograd.Swish(x)
	for i := range a.T.Data() {
		if a.T.Data()[i] != b.T.Data()[i] {
			t.Fatal("SwishLayer must match autograd.Swish")
		}
	}
}
