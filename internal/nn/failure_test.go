package nn

import (
	"math/rand"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/tensor"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestBatchNormChannelMismatchPanics(t *testing.T) {
	bn := NewBatchNorm("bn", 4)
	x := autograd.Constant(tensor.Ones(1, 3, 2, 2)) // 3 channels, BN wants 4
	mustPanic(t, "bn channel mismatch", func() {
		bn.Forward(&Ctx{Training: true}, x)
	})
}

func TestSqueezeExciteChannelMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	se := NewSqueezeExcite(rng, "se", 4, 2)
	x := autograd.Constant(tensor.Ones(1, 8, 2, 2))
	mustPanic(t, "se channel mismatch", func() {
		se.Forward(&Ctx{}, x)
	})
}

func TestDropoutWithoutRNGPanics(t *testing.T) {
	d := &Dropout{Rate: 0.5}
	x := autograd.Constant(tensor.Ones(1, 1, 2, 2))
	mustPanic(t, "dropout nil rng", func() {
		d.Forward(&Ctx{Training: true}, x)
	})
}

func TestDropPathWithoutRNGPanics(t *testing.T) {
	dp := &DropPath{Rate: 0.5}
	x := autograd.Constant(tensor.Ones(2, 1, 2, 2))
	mustPanic(t, "droppath nil rng", func() {
		dp.Forward(&Ctx{Training: true}, x)
	})
}

func TestZeroRateRegularizersAreIdentityEvenWhileTraining(t *testing.T) {
	x := autograd.Constant(tensor.Ones(2, 1, 2, 2))
	ctx := &Ctx{Training: true} // no RNG on purpose: rate 0 must not need it
	if y := (&Dropout{Rate: 0}).Forward(ctx, x); y != x {
		t.Fatal("zero-rate dropout must be identity")
	}
	if y := (&DropPath{Rate: 0}).Forward(ctx, x); y != x {
		t.Fatal("zero-rate droppath must be identity")
	}
}

func TestBatchNormVarianceGuard(t *testing.T) {
	// Constant input: variance is exactly 0; normalization must not
	// produce NaN thanks to eps and the negative-variance clamp.
	bn := NewBatchNorm("bn", 1)
	x := autograd.Constant(tensor.Full(5, 2, 1, 3, 3))
	y := bn.Forward(&Ctx{Training: true}, x)
	for i, v := range y.T.Data() {
		if v != v { // NaN check
			t.Fatalf("BN produced NaN at %d for constant input", i)
		}
	}
}

func TestEvalModeBatchNormBackward(t *testing.T) {
	// Fine-tuning through frozen BN statistics must produce gradients.
	bn := NewBatchNorm("bn", 2)
	bn.RunningMean.Data()[0] = 1
	bn.RunningVar.Data()[1] = 4
	rng := rand.New(rand.NewSource(2))
	xT := tensor.Randn(rng, 1, 2, 2, 3, 3)
	x := autograd.Leaf(xT, true)
	y := bn.Forward(&Ctx{Training: false}, x)
	autograd.Mean(y).Backward()
	if x.Grad == nil {
		t.Fatal("eval-mode BN blocked input gradient")
	}
	if bn.Gamma.Grad() == nil || bn.Beta.Grad() == nil {
		t.Fatal("eval-mode BN blocked parameter gradients")
	}
}
