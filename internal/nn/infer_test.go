package nn

import (
	"math/rand"
	"testing"

	"effnetscale/internal/autograd"
	"effnetscale/internal/bf16"
	"effnetscale/internal/tensor"
)

// assertBitIdentical fails unless got and want match exactly — the inference
// split's contract is bit-for-bit parity with the eval-mode tape forward,
// not approximate agreement.
func assertBitIdentical(t *testing.T, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("shape mismatch: got %v want %v", got.Shape(), want.Shape())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("element %d differs: infer %v, eval-mode forward %v", i, g[i], w[i])
		}
	}
}

// policies exercises both halves of the mixed-precision seam.
var policies = map[string]bf16.Policy{"fp32": bf16.FP32Policy, "bf16": bf16.DefaultPolicy}

func TestInferMatchesEvalForwardPerLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.Randn(rng, 1, 3, 6, 8, 8)

	bn := NewBatchNorm("bn", 6)
	// Non-trivial running statistics: a fresh BN is mean 0 / var 1, which
	// would let a batch-stats bug slip through the parity check.
	for i := range bn.RunningMean.Data() {
		bn.RunningMean.Data()[i] = float32(i)*0.3 - 0.7
		bn.RunningVar.Data()[i] = 0.5 + float32(i)*0.21
	}
	bn.Gamma.Value.T.Data()[2] = 1.7
	bn.Beta.Value.T.Data()[4] = -0.4

	type layer interface {
		Layer
		Inferer
	}
	layers := map[string]layer{
		"conv":      NewConv2D(rng, "c", 6, 4, 3, 2),
		"depthwise": NewDepthwiseConv2D(rng, "dw", 6, 3, 1),
		"batchnorm": bn,
		"se":        NewSqueezeExcite(rng, "se", 6, 2),
		"dropout":   &Dropout{Rate: 0.5},
		"droppath":  &DropPath{Rate: 0.5},
	}
	for pname, pol := range policies {
		ctx := &Ctx{Precision: pol}
		for lname, l := range layers {
			want := l.Forward(ctx, autograd.Constant(x)).T
			got := l.Infer(pol, x)
			t.Run(pname+"/"+lname, func(t *testing.T) { assertBitIdentical(t, got, want) })
		}
	}
}

func TestInferMatchesEvalForwardDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDense(rng, "fc", 10, 5)
	x := tensor.Randn(rng, 1, 4, 10)
	want := d.Forward(EvalCtx(), autograd.Constant(x)).T
	assertBitIdentical(t, d.Infer(bf16.FP32Policy, x), want)
}

func TestSequentialInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := &Sequential{Layers: []Layer{
		NewConv2D(rng, "c", 3, 4, 3, 1),
		NewBatchNorm("bn", 4),
		SwishLayer(),
		&Dropout{Rate: 0.3},
	}}
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	for pname, pol := range policies {
		t.Run(pname, func(t *testing.T) {
			want := seq.Forward(&Ctx{Precision: pol}, autograd.Constant(x)).T
			assertBitIdentical(t, seq.Infer(pol, x), want)
		})
	}
}

func TestActivationInferWithoutTensorFormPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Activation with nil TF on the inference path")
		}
	}()
	a := &Activation{Name: "mystery", F: autograd.ReLU}
	a.Infer(bf16.FP32Policy, tensor.Ones(2, 2))
}

func TestSwishReLUSigmoidTensorMatchTape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := tensor.Randn(rng, 2, 64)
	assertBitIdentical(t, SwishTensor(x), autograd.Swish(autograd.Constant(x)).T)
	assertBitIdentical(t, ReLUTensor(x), autograd.ReLU(autograd.Constant(x)).T)
	assertBitIdentical(t, SigmoidTensor(x), autograd.Sigmoid(autograd.Constant(x)).T)
}
