package elastic_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/checkpoint"
	"effnetscale/internal/data"
	"effnetscale/internal/elastic"
	"effnetscale/internal/mesh"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
)

// elasticEngine builds an engine for the statistical-continuity tests: BN
// groups spanning the full world so batch statistics cover the same global
// batch at every world size, no augmentation or dropout so the trajectory has
// no per-rank randomness, and FP32 so the only cross-world difference is
// floating-point summation order.
func elasticEngine(t testing.TB, world, perBatch, accum int) *replica.Engine {
	t.Helper()
	e, err := replica.New(replica.Config{
		World:           world,
		PerReplicaBatch: perBatch,
		GradAccumSteps:  accum,
		Model:           "pico",
		Dataset:         data.New(data.MiniConfig(4, 64, 16)),
		OptimizerName:   "sgd",
		Schedule:        schedule.Constant(0.05),
		BNGroupSize:     world,
		Precision:       bf16.FP32Policy,
		Seed:            7,
		NoAugment:       true,
		EMADecay:        0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func stepLoss(t testing.TB, e *replica.Engine) float64 {
	t.Helper()
	res, err := e.Step()
	if err != nil {
		t.Fatal(err)
	}
	return res.Loss
}

// TestElasticResumeTrajectory is the tentpole acceptance test: a world-8 run
// killed mid-epoch resumes on worlds 4 and 16 with the global batch held
// fixed, and the post-resume loss trajectory tracks the uninterrupted world-8
// run within floating-point tolerance. Bit-for-bit equality is NOT expected —
// the reduction order moved with the topology — but the optimizer trajectory,
// sample order and BN statistics are preserved exactly in exact arithmetic.
func TestElasticResumeTrajectory(t *testing.T) {
	const killAt, total = 5, 12 // stepsPerEpoch is 4: killAt is mid-epoch

	ref := elasticEngine(t, 8, 2, 1) // global batch 16
	defer ref.Close()
	if ref.StepsPerEpoch() != 4 {
		t.Fatalf("test setup: steps/epoch = %d, want 4", ref.StepsPerEpoch())
	}
	var refLoss []float64
	for s := 0; s < total; s++ {
		refLoss = append(refLoss, stepLoss(t, ref))
	}
	refAcc, err := ref.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}

	interrupted := elasticEngine(t, 8, 2, 1)
	for s := 0; s < killAt; s++ {
		stepLoss(t, interrupted)
	}
	snap, err := interrupted.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	interrupted.Close() // the "kill"

	for _, target := range []struct{ world, batch int }{
		{4, 4},  // coalesce: 2 old ranks per new rank
		{16, 1}, // split: each old rank feeds 2 new ranks
	} {
		t.Run(fmt.Sprintf("world%d", target.world), func(t *testing.T) {
			resharded, err := elastic.Reshard(snap, mesh.Shape{Data: target.world, Model: 1},
				elastic.WithGeometryHint(target.batch, 1))
			if err != nil {
				t.Fatal(err)
			}
			resumed := elasticEngine(t, target.world, target.batch, 1)
			defer resumed.Close()
			if gb := resumed.GlobalBatch(); gb != 16 {
				t.Fatalf("resumed global batch = %d, want 16", gb)
			}
			if err := resumed.RestoreState(resharded); err != nil {
				t.Fatal(err)
			}
			if resumed.StepCount() != killAt {
				t.Fatalf("restored step count %d, want %d", resumed.StepCount(), killAt)
			}
			for s := killAt; s < total; s++ {
				got := stepLoss(t, resumed)
				want := refLoss[s]
				if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
					t.Fatalf("step %d: resumed loss %v vs world-8 loss %v", s, got, want)
				}
			}
			acc, err := resumed.Evaluate(0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(acc-refAcc) > 0.15 {
				t.Fatalf("final accuracy %v far from world-8 accuracy %v", acc, refAcc)
			}
		})
	}
}

// TestPlanGeometryRules pins the geometry solver's preference order on a
// world-4, batch-2, accum-2 snapshot (global batch 16).
func TestPlanGeometryRules(t *testing.T) {
	e := elasticEngine(t, 4, 2, 2)
	defer e.Close()
	stepLoss(t, e)
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		world int
		opts  []elastic.Option
		want  elastic.Geometry
	}{
		{"keeps-old-batch", 8, nil, elastic.Geometry{World: 8, PerReplicaBatch: 2, GradAccum: 1}},
		{"coalesce-keeps-batch", 2, nil, elastic.Geometry{World: 2, PerReplicaBatch: 2, GradAccum: 4}},
		{"exact-hint", 2, []elastic.Option{elastic.WithGeometryHint(4, 2)}, elastic.Geometry{World: 2, PerReplicaBatch: 4, GradAccum: 2}},
		{"batch-hint", 2, []elastic.Option{elastic.WithGeometryHint(8, 0)}, elastic.Geometry{World: 2, PerReplicaBatch: 8, GradAccum: 1}},
		{"undividable-hint-falls-back", 8, []elastic.Option{elastic.WithGeometryHint(3, 0)}, elastic.Geometry{World: 8, PerReplicaBatch: 2, GradAccum: 1}},
		{"identity", 4, nil, elastic.Geometry{World: 4, PerReplicaBatch: 2, GradAccum: 2}},
	} {
		got, err := elastic.Plan(snap, mesh.Shape{Data: tc.world, Model: 1}, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: plan = %+v, want %+v", tc.name, got, tc.want)
		}
		if got.GlobalBatch() != 16 {
			t.Fatalf("%s: plan changed the global batch: %+v", tc.name, got)
		}
	}

	// A world that does not divide the global batch has no geometry.
	if _, err := elastic.Plan(snap, mesh.Shape{Data: 3, Model: 1}); err == nil || !strings.Contains(err.Error(), "global batch") {
		t.Fatalf("world 3 plan = %v, want global-batch error", err)
	}
}

// TestReshardIdentityPreservesBitForBit: resharding to the snapshot's own
// geometry must return the snapshot untouched, so the world-unchanged resume
// path keeps the bit-for-bit contract.
func TestReshardIdentityPreservesBitForBit(t *testing.T) {
	e := elasticEngine(t, 4, 2, 2)
	defer e.Close()
	stepLoss(t, e)
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	out, err := elastic.Reshard(snap, mesh.Shape{Data: 4, Model: 1}, elastic.WithGeometryHint(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out != snap {
		t.Fatal("identity reshard rebuilt the snapshot instead of passing it through")
	}
}

// TestReshardRejectsHybridMesh: model-sharded snapshots and model-sharded
// targets both refuse to reshard.
func TestReshardRejectsHybridMesh(t *testing.T) {
	e, err := replica.New(replica.Config{
		World: 4, PerReplicaBatch: 2, Model: "pico",
		Dataset:       data.New(data.MiniConfig(4, 64, 16)),
		OptimizerName: "sgd", Schedule: schedule.Constant(0.05),
		Precision: bf16.FP32Policy, Seed: 7, NoAugment: true,
		Mesh: mesh.Shape{Data: 2, Model: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := elastic.Reshard(snap, mesh.Shape{Data: 2, Model: 1}); err == nil || !strings.Contains(err.Error(), "2x2") {
		t.Fatalf("hybrid snapshot reshard = %v, want error naming the 2x2 mesh", err)
	}

	flat := elasticEngine(t, 4, 2, 2)
	defer flat.Close()
	stepLoss(t, flat)
	fsnap, err := flat.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := elastic.Reshard(fsnap, mesh.Shape{Data: 2, Model: 2}); err == nil || !strings.Contains(err.Error(), "model axis") {
		t.Fatalf("hybrid target reshard = %v, want model-axis error", err)
	}
}

// TestReshardRejectsLegacySnapshot: a snapshot without the split fingerprint
// cannot be validated for resharding.
func TestReshardRejectsLegacySnapshot(t *testing.T) {
	e := elasticEngine(t, 4, 2, 2)
	defer e.Close()
	stepLoss(t, e)
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	delete(snap.Components["engine"], "trajectory")
	if _, err := elastic.Reshard(snap, mesh.Shape{Data: 2, Model: 1}); err == nil || !strings.Contains(err.Error(), "predates") {
		t.Fatalf("legacy snapshot reshard = %v, want predates-resharding error", err)
	}
}

// TestReshardedSnapshotBindsToTarget: a resharded snapshot restores only into
// the exact geometry it was rewritten for, and old binaries comparing the
// legacy config string can never accept it.
func TestReshardedSnapshotBindsToTarget(t *testing.T) {
	e := elasticEngine(t, 4, 2, 2)
	defer e.Close()
	stepLoss(t, e)
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	resharded, err := elastic.Reshard(snap, mesh.Shape{Data: 2, Model: 1})
	if err != nil {
		t.Fatal(err)
	}
	wrong := elasticEngine(t, 4, 2, 2) // not the target geometry
	defer wrong.Close()
	if err := wrong.RestoreState(resharded); err == nil || !strings.Contains(err.Error(), "resharded for") {
		t.Fatalf("wrong-world restore of resharded snapshot = %v, want resharded-for error", err)
	}
	cfgStr, err := resharded.Components["engine"].Str("config")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cfgStr, "elastic-") {
		t.Fatalf("resharded legacy config %q is not a reject-on-old-binaries sentinel", cfgStr)
	}
}

// TestBNMergeStatistics checks the residue-class merge math directly: with BN
// groups smaller than the world the running statistics genuinely differ
// across ranks, and a 4→2 coalesce must produce the sample-weighted mean and
// the law-of-total-variance pooled variance of each new rank's two sources.
func TestBNMergeStatistics(t *testing.T) {
	e, err := replica.New(replica.Config{
		World: 4, PerReplicaBatch: 2, GradAccumSteps: 2, Model: "pico",
		Dataset:       data.New(data.MiniConfig(4, 64, 16)),
		OptimizerName: "sgd", Schedule: schedule.Constant(0.05),
		BNGroupSize: 2, Precision: bf16.FP32Policy, Seed: 7, NoAugment: true,
		BNMomentum: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for s := 0; s < 2; s++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	resharded, err := elastic.Reshard(snap, mesh.Shape{Data: 2, Model: 1})
	if err != nil {
		t.Fatal(err)
	}

	// TrainSize 64, world 4: every old shard holds 16 samples, so the merge
	// weights are equal. New rank n sources old ranks {n, n+2}.
	for n := 0; n < 2; n++ {
		newC, err := resharded.Component(fmt.Sprintf("replica/%d", n))
		if err != nil {
			t.Fatal(err)
		}
		a, _ := snap.Component(fmt.Sprintf("replica/%d", n))
		b, _ := snap.Component(fmt.Sprintf("replica/%d", n+2))
		gotM, err := newC.F32("bn/0/mean", nil)
		if err != nil {
			t.Fatal(err)
		}
		gotV, err := newC.F32("bn/0/var", nil)
		if err != nil {
			t.Fatal(err)
		}
		ma, _ := a.F32("bn/0/mean", nil)
		mb, _ := b.F32("bn/0/mean", nil)
		va, _ := a.F32("bn/0/var", nil)
		vb, _ := b.F32("bn/0/var", nil)
		differs := false
		for i := range gotM {
			wantM := (float64(ma[i]) + float64(mb[i])) / 2
			wantV := (float64(va[i])+float64(ma[i])*float64(ma[i])+float64(vb[i])+float64(mb[i])*float64(mb[i]))/2 - wantM*wantM
			if math.Abs(float64(gotM[i])-wantM) > 1e-6 {
				t.Fatalf("rank %d mean[%d] = %v, want %v", n, i, gotM[i], wantM)
			}
			if math.Abs(float64(gotV[i])-wantV) > 1e-6 {
				t.Fatalf("rank %d var[%d] = %v, want %v", n, i, gotV[i], wantV)
			}
			if ma[i] != mb[i] {
				differs = true
			}
		}
		if !differs {
			t.Fatalf("rank %d: source BN means identical across groups (merge untested)", n)
		}
		for _, cursor := range []string{"augdraws", "ctxdraws"} {
			v, err := newC.I64(cursor)
			if err != nil || v != 0 {
				t.Fatalf("rank %d %s = %d, %v; want 0 (re-seeded by new coordinate)", n, cursor, v, err)
			}
		}
	}
}

// writeReadRoundTrip guards that resharded snapshots survive serialization —
// the CI drill resumes from files, not in-memory snapshots.
func TestReshardedSnapshotRoundTripsThroughFile(t *testing.T) {
	e := elasticEngine(t, 4, 2, 2)
	defer e.Close()
	stepLoss(t, e)
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	resharded, err := elastic.Reshard(snap, mesh.Shape{Data: 2, Model: 1}, elastic.WithGeometryHint(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/resharded.ckpt"
	if err := checkpoint.WriteSnapshotFile(path, resharded); err != nil {
		t.Fatal(err)
	}
	back, err := checkpoint.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := elasticEngine(t, 2, 4, 2)
	defer resumed.Close()
	if err := resumed.RestoreState(back); err != nil {
		t.Fatal(err)
	}
	if resumed.StepCount() != 1 {
		t.Fatalf("restored step count %d, want 1", resumed.StepCount())
	}
	if _, err := resumed.Step(); err != nil {
		t.Fatal(err)
	}
}
