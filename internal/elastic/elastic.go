package elastic

import (
	"fmt"
	"sort"
	"strings"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/mesh"
)

// Snapshot component and blob keys this package reads and rewrites. They are
// owned by internal/replica (state.go) — the engine writes them, elastic
// re-partitions them. Kept as literals here so elastic depends only on the
// snapshot schema, not on the engine.
const (
	engineComponent = "engine"
	replicaPrefix   = "replica/"
)

// Geometry is one concrete factorization of a global batch across a world:
// GlobalBatch = World × PerReplicaBatch × GradAccum.
type Geometry struct {
	World           int
	PerReplicaBatch int
	GradAccum       int
}

// GlobalBatch returns the geometry's global batch size.
func (g Geometry) GlobalBatch() int { return g.World * g.PerReplicaBatch * g.GradAccum }

// Option configures Plan and Reshard.
type Option func(*options)

type options struct {
	hintBatch int
	hintAccum int
}

// WithGeometryHint prefers the given per-replica batch and accumulation depth
// when re-factorizing the global batch for the new world. The hint is used
// when it divides cleanly (exactly, or the batch alone); otherwise the solver
// falls back to its default rules. Zero values leave the corresponding
// dimension unconstrained.
func WithGeometryHint(perReplicaBatch, gradAccum int) Option {
	return func(o *options) {
		o.hintBatch = perReplicaBatch
		o.hintAccum = gradAccum
	}
}

// snapGeometry reads and validates the snapshot's recorded geometry plus the
// keys resharding needs. It rejects snapshots from before the split
// fingerprint (nothing to validate the trajectory against) and snapshots
// taken on a hybrid mesh (model-sharded per-rank state does not re-partition
// along the data axis).
func snapGeometry(snap *checkpoint.Snapshot) (eng checkpoint.Component, old Geometry, err error) {
	eng, err = snap.Component(engineComponent)
	if err != nil {
		return nil, Geometry{}, err
	}
	if _, err := eng.Str("trajectory"); err != nil {
		return nil, Geometry{}, fmt.Errorf("elastic: snapshot predates elastic resharding (no trajectory fingerprint); re-capture it with a current binary first")
	}
	if meshStr, merr := eng.Str("mesh"); merr == nil {
		shape, perr := mesh.ParseShape(meshStr)
		if perr == nil && shape.Model > 1 {
			return nil, Geometry{}, fmt.Errorf("elastic: snapshot was taken on a %s hybrid mesh; only pure data-parallel (Dx1) snapshots reshard", meshStr)
		}
	}
	for key, dst := range map[string]*int{
		"world": &old.World, "batch": &old.PerReplicaBatch, "accum": &old.GradAccum,
	} {
		v, err := eng.I64(key)
		if err != nil {
			return nil, Geometry{}, fmt.Errorf("elastic: %w", err)
		}
		if v < 1 {
			return nil, Geometry{}, fmt.Errorf("elastic: snapshot %s = %d is not positive", key, v)
		}
		*dst = int(v)
	}
	return eng, old, nil
}

// Plan solves the target geometry for resuming the snapshot on newShape: the
// new world size with a (per-replica batch, grad accumulation) factorization
// that keeps the global batch — and with it the optimizer trajectory, the LR
// schedule and the per-step sample sets — exactly what it was. Preference
// order: the caller's hint when it multiplies out exactly, the hinted batch
// when it divides the per-rank share, the old per-replica batch, the old
// accumulation depth, then batch = share with no accumulation.
func Plan(snap *checkpoint.Snapshot, newShape mesh.Shape, opts ...Option) (Geometry, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if err := newShape.Validate(); err != nil {
		return Geometry{}, fmt.Errorf("elastic: %w", err)
	}
	if newShape.Model > 1 {
		return Geometry{}, fmt.Errorf("elastic: target mesh %s has a model axis; resharding only re-partitions the data axis (Dx1)", newShape)
	}
	_, old, err := snapGeometry(snap)
	if err != nil {
		return Geometry{}, err
	}
	gb := old.GlobalBatch()
	d := newShape.Data
	if gb%d != 0 {
		return Geometry{}, fmt.Errorf("elastic: global batch %d does not divide across world %d (snapshot world %d, batch %d, accum %d)", gb, d, old.World, old.PerReplicaBatch, old.GradAccum)
	}
	share := gb / d // samples per rank per step
	g := Geometry{World: d}
	switch {
	case o.hintBatch > 0 && o.hintAccum > 0 && o.hintBatch*o.hintAccum == share:
		g.PerReplicaBatch, g.GradAccum = o.hintBatch, o.hintAccum
	case o.hintBatch > 0 && share%o.hintBatch == 0:
		g.PerReplicaBatch, g.GradAccum = o.hintBatch, share/o.hintBatch
	case share%old.PerReplicaBatch == 0:
		g.PerReplicaBatch, g.GradAccum = old.PerReplicaBatch, share/old.PerReplicaBatch
	case share%old.GradAccum == 0:
		g.PerReplicaBatch, g.GradAccum = share/old.GradAccum, old.GradAccum
	default:
		g.PerReplicaBatch, g.GradAccum = share, 1
	}
	return g, nil
}

// Reshard rewrites a world-D_old snapshot into one restorable at world
// newShape.Data with the same global batch. Replica-identical state — model
// weights, optimizer slots, EMA shadow — passes through untouched. Per-rank
// state is re-partitioned: each new rank's BN running statistics are merged
// from the old ranks whose data shards feed its new shard (sample-weighted
// mean, variance via the law of total variance), and RNG cursors reset so the
// restore re-seeds streams by the new data coordinate. The result is
// statistically continuous, not bit-for-bit: fp summation order and per-rank
// randomness move with the topology.
//
// When newShape matches the snapshot's own geometry the original snapshot is
// returned unchanged, preserving the bit-for-bit resume path.
func Reshard(snap *checkpoint.Snapshot, newShape mesh.Shape, opts ...Option) (*checkpoint.Snapshot, error) {
	plan, err := Plan(snap, newShape, opts...)
	if err != nil {
		return nil, err
	}
	eng, old, err := snapGeometry(snap)
	if err != nil {
		return nil, err
	}
	if plan == old {
		return snap, nil
	}

	trainSize, err := eng.I64("trainsize")
	if err != nil {
		return nil, fmt.Errorf("elastic: %w", err)
	}
	traj, _ := eng.Str("trajectory")
	step, err := eng.I64("step")
	if err != nil {
		return nil, fmt.Errorf("elastic: %w", err)
	}

	out := checkpoint.NewSnapshot()

	// Engine component: keep the trajectory identity and step position,
	// rewrite the geometry to the target, and mark the snapshot as resharded.
	// The legacy "config" string becomes a sentinel that can never equal a
	// real fingerprint, so pre-elastic binaries reject the snapshot instead
	// of restoring per-rank state into the wrong partitions.
	ne := checkpoint.Component{}
	ne.PutI64("step", step)
	ne.PutStr("trajectory", traj)
	ne.PutI64("trainsize", trainSize)
	ne.PutI64("world", int64(plan.World))
	ne.PutI64("batch", int64(plan.PerReplicaBatch))
	ne.PutI64("accum", int64(plan.GradAccum))
	ne.PutStr("mesh", mesh.Shape{Data: plan.World, Model: 1}.String())
	provenance := fmt.Sprintf("resharded world %d->%d batch %d->%d accum %d->%d",
		old.World, plan.World, old.PerReplicaBatch, plan.PerReplicaBatch, old.GradAccum, plan.GradAccum)
	ne.PutStr("elastic", provenance)
	ne.PutStr("config", fmt.Sprintf("elastic-%s: %s", provenance, traj))
	if err := out.Add(engineComponent, ne); err != nil {
		return nil, err
	}

	// Replica-identical components (model, optim, ema, and anything a caller
	// layered on, like the train session's loop state) pass through.
	for _, key := range snap.Keys() {
		if key == engineComponent || strings.HasPrefix(key, replicaPrefix) {
			continue
		}
		c, err := snap.Component(key)
		if err != nil {
			return nil, err
		}
		if err := out.Add(key, c); err != nil {
			return nil, err
		}
	}

	olds := make([]checkpoint.Component, old.World)
	for r := range olds {
		c, err := snap.Component(fmt.Sprintf("%s%d", replicaPrefix, r))
		if err != nil {
			return nil, err
		}
		olds[r] = c
	}
	for n := 0; n < plan.World; n++ {
		rc, err := mergeReplica(olds, n, plan.World, int(trainSize))
		if err != nil {
			return nil, err
		}
		if err := out.Add(fmt.Sprintf("%s%d", replicaPrefix, n), rc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeReplica builds new rank n's per-replica component from the old ranks
// whose strided data shards intersect its new shard. The strided shard gives
// rank r of world W the permuted positions ≡ r (mod W), so new rank n's
// positions overlap exactly the old ranks o with o ≡ n (mod gcd(D_old,
// D_new)): a coalesce (16→4) merges several old ranks, a split (4→16)
// replicates one. BN running statistics are combined sample-weighted by the
// source shards' sizes; variances pool via the law of total variance. RNG
// cursors reset to zero — the restore re-seeds streams by the new data
// coordinate, and cursor position is trajectory-neutral once bit-for-bit
// continuity is already forfeited.
func mergeReplica(olds []checkpoint.Component, n, newWorld, trainSize int) (checkpoint.Component, error) {
	g := gcd(len(olds), newWorld)
	var sources []int
	var weights []float64
	for o := n % g; o < len(olds); o += g {
		sources = append(sources, o)
		size := trainSize / len(olds)
		if o < trainSize%len(olds) {
			size++
		}
		weights = append(weights, float64(size))
	}

	rc := checkpoint.Component{}
	rc.PutI64("augdraws", 0)
	rc.PutI64("ctxdraws", 0)

	// Every bn/<i>/{mean,var} pair present on the sources merges; source
	// components are schema-identical, so enumerate from the first.
	var bnKeys []string
	for _, key := range olds[sources[0]].Keys() {
		if strings.HasPrefix(key, "bn/") && strings.HasSuffix(key, "/mean") {
			bnKeys = append(bnKeys, strings.TrimSuffix(key, "/mean"))
		}
	}
	sort.Strings(bnKeys)
	var total float64
	for _, w := range weights {
		total += w
	}
	for _, bn := range bnKeys {
		ref := olds[sources[0]][bn+"/mean"]
		width := len(ref.F32)
		mean := make([]float64, width)
		second := make([]float64, width) // E[x^2] accumulator
		for si, o := range sources {
			m, err := olds[o].F32(bn+"/mean", ref.Shape)
			if err != nil {
				return nil, fmt.Errorf("elastic: source rank %d: %w", o, err)
			}
			v, err := olds[o].F32(bn+"/var", ref.Shape)
			if err != nil {
				return nil, fmt.Errorf("elastic: source rank %d: %w", o, err)
			}
			w := weights[si] / total
			for i := range m {
				mean[i] += w * float64(m[i])
				second[i] += w * (float64(v[i]) + float64(m[i])*float64(m[i]))
			}
		}
		outMean := make([]float32, width)
		outVar := make([]float32, width)
		for i := range mean {
			outMean[i] = float32(mean[i])
			variance := second[i] - mean[i]*mean[i]
			if variance < 0 { // fp round-off on identical sources
				variance = 0
			}
			outVar[i] = float32(variance)
		}
		rc.PutF32(bn+"/mean", ref.Shape, outMean)
		rc.PutF32(bn+"/var", ref.Shape, outVar)
	}
	return rc, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
