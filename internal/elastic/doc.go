// Package elastic reshards training snapshots across world sizes.
//
// A replica.Engine snapshot is taken at one topology: D ranks, each holding
// replica-identical state (weights, optimizer slots, EMA shadow) plus private
// per-rank state (BN running statistics, RNG cursors). A plain resume
// requires the identical topology back. Elastic resharding relaxes exactly
// that: Reshard rewrites a world-D_old snapshot into one restorable at
// world D_new, and Plan solves the (per-replica batch, grad accumulation)
// factorization that keeps the global batch — and with it the optimizer
// trajectory, LR schedule and per-step sample sets — unchanged.
//
// The contract is deliberately two-tier. Resuming at the original world is
// bit-for-bit (Reshard returns the snapshot untouched). Resuming at a new
// world is statistically continuous: the same samples flow through the same
// model under the same schedule, but fp summation order and per-rank
// randomness move with the topology, so trajectories agree within floating-
// point tolerance, not bitwise. Per-rank state is re-partitioned along the
// strided data shard's residue classes: BN statistics merge sample-weighted
// (variance via the law of total variance) on a coalesce and replicate on a
// split; RNG streams re-seed by the new data coordinate.
//
// Hybrid (model-sharded) snapshots do not reshard — the model axis has no
// residue-class structure to re-partition — and are rejected on either side.
package elastic
