package bf16

import (
	"math"

	"effnetscale/internal/parallel"
)

// BF16 is a bfloat16 value stored as the high 16 bits of a float32.
type BF16 uint16

// RoundMode selects how fp32→bf16 conversion handles the dropped mantissa
// bits.
type RoundMode int

const (
	// RoundNearestEven rounds to the nearest bfloat16, ties to even.
	// This matches TPU hardware behaviour and is the package default.
	RoundNearestEven RoundMode = iota
	// Truncate drops the low 16 bits. Cheaper but biased toward zero;
	// provided to let tests quantify the difference.
	Truncate
)

// FromFloat32 converts with round-to-nearest-even.
func FromFloat32(f float32) BF16 { return fromBits(math.Float32bits(f)) }

// FromFloat32Mode converts using the given rounding mode.
func FromFloat32Mode(f float32, mode RoundMode) BF16 {
	b := math.Float32bits(f)
	if mode == Truncate {
		return BF16(b >> 16)
	}
	return fromBits(b)
}

func fromBits(b uint32) BF16 {
	// NaN must stay NaN: if the truncated mantissa would be all zeros,
	// force a quiet-NaN bit.
	if b&0x7F800000 == 0x7F800000 && b&0x007FFFFF != 0 {
		return BF16((b >> 16) | 0x0040)
	}
	// Round to nearest even: add 0x7FFF + lsb-of-result before truncating.
	lsb := (b >> 16) & 1
	return BF16((b + 0x7FFF + lsb) >> 16)
}

// roundBits rounds a float32 bit pattern to bfloat16 precision while keeping
// it in 32-bit form (low 16 bits cleared). It is the round+widen composition
// of fromBits and BF16.Float32 without the narrowing shift, which is what the
// slice conversion loops want: one add, one mask, no 16-bit intermediates.
func roundBits(b uint32) uint32 {
	if b&0x7F800000 == 0x7F800000 && b&0x007FFFFF != 0 {
		return (b & 0xFFFF0000) | 0x00400000 // quiet NaN, same as fromBits
	}
	return (b + 0x7FFF + ((b >> 16) & 1)) & 0xFFFF0000
}

// Float32 widens a bfloat16 back to float32 (exact).
func (x BF16) Float32() float32 { return math.Float32frombits(uint32(x) << 16) }

// Round returns f rounded to bfloat16 precision and widened back to float32.
// This is the core primitive for emulating a bf16 compute unit.
func Round(f float32) float32 {
	return math.Float32frombits(roundBits(math.Float32bits(f)))
}

// RoundSlice rounds every element of src to bfloat16 precision, writing into
// dst (which may alias src). Lengths must match. The inner loop is unrolled
// four wide over the pure bit-level rounding formula; only NaNs take the
// branchy path.
func RoundSlice(dst, src []float32) {
	if len(dst) != len(src) {
		panic("bf16: RoundSlice length mismatch")
	}
	parallel.ForChunked(len(src), 2048, func(lo, hi int) {
		d, s := dst[lo:hi], src[lo:hi:hi]
		i := 0
		for ; i+4 <= len(s); i += 4 {
			b0 := math.Float32bits(s[i])
			b1 := math.Float32bits(s[i+1])
			b2 := math.Float32bits(s[i+2])
			b3 := math.Float32bits(s[i+3])
			d[i] = math.Float32frombits(roundBits(b0))
			d[i+1] = math.Float32frombits(roundBits(b1))
			d[i+2] = math.Float32frombits(roundBits(b2))
			d[i+3] = math.Float32frombits(roundBits(b3))
		}
		for ; i < len(s); i++ {
			d[i] = math.Float32frombits(roundBits(math.Float32bits(s[i])))
		}
	})
}

// PackSlice converts src to bfloat16 storage (round-to-nearest-even),
// writing into dst. Lengths must match. Useful for halving the memory
// footprint of checkpoint shards and activation stashes.
func PackSlice(dst []BF16, src []float32) {
	if len(dst) != len(src) {
		panic("bf16: PackSlice length mismatch")
	}
	parallel.ForChunked(len(src), 2048, func(lo, hi int) {
		d, s := dst[lo:hi], src[lo:hi:hi]
		for i, f := range s {
			d[i] = BF16(roundBits(math.Float32bits(f)) >> 16)
		}
	})
}

// UnpackSlice widens bfloat16 storage back to float32 (exact), writing into
// dst. Lengths must match.
func UnpackSlice(dst []float32, src []BF16) {
	if len(dst) != len(src) {
		panic("bf16: UnpackSlice length mismatch")
	}
	parallel.ForChunked(len(src), 2048, func(lo, hi int) {
		d, s := dst[lo:hi], src[lo:hi:hi]
		for i, x := range s {
			d[i] = math.Float32frombits(uint32(x) << 16)
		}
	})
}

// MaxRelError is the worst-case relative rounding error of bfloat16 for
// normal values: half a unit in the last place of a 7-bit mantissa (2^-8).
const MaxRelError = 1.0 / 256.0

// Policy describes which operator classes run in reduced precision, mirroring
// the paper's mixed-precision recipe.
type Policy struct {
	// ConvBF16 applies bfloat16 rounding to convolution inputs and weights
	// (the paper's configuration: "bfloat16 is used for convolutional
	// operations, while all other operations utilize fp32").
	ConvBF16 bool
}

// DefaultPolicy is the paper's §3.5 configuration.
var DefaultPolicy = Policy{ConvBF16: true}

// FP32Policy disables all reduced-precision behaviour.
var FP32Policy = Policy{}
