// Package bf16 implements the bfloat16 floating-point format in software.
//
// The paper's §3.5 trains with mixed precision: convolutions run in bfloat16
// while everything else stays in fp32. TPUs implement bfloat16 natively;
// here the format is emulated by rounding fp32 values to the nearest
// bfloat16 (8-bit exponent, 7-bit mantissa — the top 16 bits of an IEEE-754
// float32).
//
// Seams: Policy is the mixed-precision knob the layer library consults
// (DefaultPolicy rounds convolution inputs/weights, FP32Policy disables
// rounding); Round and RoundSlice are the kernels. The policy flows in via
// replica.Config.Precision / train.WithPrecision, so §3.5's ablation is a
// configuration choice.
package bf16
