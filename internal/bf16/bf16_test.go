package bf16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValuesRoundTrip(t *testing.T) {
	// Values representable in bfloat16 must survive a round trip exactly.
	for _, f := range []float32{0, 1, -1, 0.5, 2, -3.5, 256, 1.0 / 128, 65536, -0.015625} {
		got := Round(f)
		if got != f {
			t.Errorf("Round(%v) = %v, want exact", f, got)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	if !math.IsInf(float64(FromFloat32(float32(math.Inf(1))).Float32()), 1) {
		t.Error("+Inf not preserved")
	}
	if !math.IsInf(float64(FromFloat32(float32(math.Inf(-1))).Float32()), -1) {
		t.Error("-Inf not preserved")
	}
	if !math.IsNaN(float64(FromFloat32(float32(math.NaN())).Float32())) {
		t.Error("NaN not preserved")
	}
	// Signed zero.
	nz := FromFloat32(float32(math.Copysign(0, -1))).Float32()
	if math.Signbit(float64(nz)) != true {
		t.Error("-0 sign lost")
	}
}

func TestRelativeErrorBoundQuick(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		// Skip subnormals, where relative error is unbounded by design,
		// and values beyond bf16's largest normal (≈3.3895e38), which
		// correctly overflow to ±Inf.
		if x != 0 && math.Abs(float64(x)) < 1.2e-38 {
			return true
		}
		if math.Abs(float64(x)) > 3.3895313892515355e38 {
			return math.IsInf(float64(Round(x)), 0) || math.Abs(float64(Round(x))) >= 3.38e38
		}
		r := Round(x)
		if x == 0 {
			return r == 0
		}
		rel := math.Abs(float64(r-x)) / math.Abs(float64(x))
		return rel <= MaxRelError+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundIsIdempotentQuick(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		once := Round(x)
		twice := Round(once)
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundNearestEvenTies(t *testing.T) {
	// 1 + 2^-8 is exactly halfway between 1 (mantissa 0x00) and 1+2^-7
	// (mantissa 0x01); RNE must pick the even mantissa, i.e. 1.
	half := float32(1 + 1.0/256)
	if got := Round(half); got != 1 {
		t.Errorf("RNE tie Round(1+2^-8) = %v, want 1", got)
	}
	// 1 + 3*2^-8 is halfway between mantissa 0x01 and 0x02; even is 0x02.
	half2 := float32(1 + 3.0/256)
	want := float32(1 + 2.0/128)
	if got := Round(half2); got != want {
		t.Errorf("RNE tie Round(1+3*2^-8) = %v, want %v", got, want)
	}
}

func TestTruncateModeBiased(t *testing.T) {
	// Truncation always rounds toward zero for positive values.
	x := float32(1.999999)
	tr := FromFloat32Mode(x, Truncate).Float32()
	rn := FromFloat32Mode(x, RoundNearestEven).Float32()
	if tr > x {
		t.Errorf("Truncate(%v) = %v moved away from zero", x, tr)
	}
	if rn != 2 {
		t.Errorf("RNE(%v) = %v, want 2", x, rn)
	}
}

func TestRoundSlice(t *testing.T) {
	src := []float32{1.0000001, -2.9999, 3, 0}
	dst := make([]float32, len(src))
	RoundSlice(dst, src)
	for i := range src {
		if dst[i] != Round(src[i]) {
			t.Fatalf("RoundSlice[%d] = %v, want %v", i, dst[i], Round(src[i]))
		}
	}
	// In-place aliasing must work.
	RoundSlice(src, src)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("in-place RoundSlice[%d] = %v, want %v", i, src[i], dst[i])
		}
	}
}

func TestRoundSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RoundSlice(make([]float32, 2), make([]float32, 3))
}

func TestMonotonicQuick(t *testing.T) {
	// Rounding must preserve ordering: x <= y implies Round(x) <= Round(y).
	f := func(x, y float32) bool {
		if math.IsNaN(float64(x)) || math.IsNaN(float64(y)) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return Round(x) <= Round(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
