package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Sink consumes telemetry records. The Recorder calls sinks synchronously on
// the training goroutine, in registration order — a slow sink slows
// training, so sinks should buffer and defer real I/O cost where they can.
// SinkFuncs adapts plain functions when only some events matter.
type Sink interface {
	// Step receives every training step.
	Step(StepRecord)
	// Eval receives every evaluation pass.
	Eval(EvalRecord)
	// Epoch receives a summary at every epoch boundary.
	Epoch(EpochRecord)
	// Snapshot receives every snapshot-write outcome.
	Snapshot(SnapshotRecord)
	// Close flushes buffered output. The sink must not be used after Close.
	Close() error
}

// SinkFuncs adapts functions into a Sink; nil fields are skipped.
type SinkFuncs struct {
	StepFn     func(StepRecord)
	EvalFn     func(EvalRecord)
	EpochFn    func(EpochRecord)
	SnapshotFn func(SnapshotRecord)
	CloseFn    func() error
}

// Step implements Sink.
func (f SinkFuncs) Step(r StepRecord) {
	if f.StepFn != nil {
		f.StepFn(r)
	}
}

// Eval implements Sink.
func (f SinkFuncs) Eval(r EvalRecord) {
	if f.EvalFn != nil {
		f.EvalFn(r)
	}
}

// Epoch implements Sink.
func (f SinkFuncs) Epoch(r EpochRecord) {
	if f.EpochFn != nil {
		f.EpochFn(r)
	}
}

// Snapshot implements Sink.
func (f SinkFuncs) Snapshot(r SnapshotRecord) {
	if f.SnapshotFn != nil {
		f.SnapshotFn(r)
	}
}

// Close implements Sink.
func (f SinkFuncs) Close() error {
	if f.CloseFn != nil {
		return f.CloseFn()
	}
	return nil
}

// --- JSONL -------------------------------------------------------------------

// JSONLSink writes one JSON object per event — kind-tagged, machine-mergable
// — to a buffered writer. The caller owns the underlying writer's lifetime;
// Close flushes the buffer but does not close files.
type JSONLSink struct {
	// Label, when non-empty, is stamped into every line as "run" — how a
	// sweep distinguishes its cells inside one shared file.
	Label string

	w *bufio.Writer
	e *json.Encoder
}

// NewJSONL builds a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, e: json.NewEncoder(bw)}
}

// Each record kind gets its own line struct so every measured value is
// always present — a genuine 0 (chance-level accuracy on an early step, a
// step with no starvation) must be distinguishable from "not reported",
// which omitempty would erase.
type jsonlStep struct {
	Kind string `json:"kind"`
	Run  string `json:"run,omitempty"`

	Step  int     `json:"step"`
	Epoch float64 `json:"epoch"`

	WallMS   float64     `json:"wall_ms"`
	Phases   jsonlPhases `json:"phases_ms"`
	Loss     float64     `json:"loss"`
	Accuracy float64     `json:"accuracy"`
	LR       float64     `json:"lr"`
	ImgsPerS float64     `json:"imgs_per_s"`
	Overlap  float64     `json:"overlap_eff"`
	Starved  int64       `json:"starved"`

	CollCount  int64   `json:"coll_count"`
	CollBytes  int64   `json:"coll_bytes"`
	CollBusyMS float64 `json:"coll_busy_ms"`
}

// jsonlPhases is the fixed phase set as a struct, not a map: no per-record
// allocation, and field order is stable instead of map-key-sorted. The JSON
// names must stay in lockstep with Phase.String().
type jsonlPhases struct {
	DataWait   float64 `json:"data_wait"`
	Forward    float64 `json:"forward"`
	Backward   float64 `json:"backward"`
	Reduce     float64 `json:"reduce"`
	ReduceTail float64 `json:"reduce_tail"`
	MPExchange float64 `json:"mp_exchange"`
	Optimizer  float64 `json:"optimizer"`
}

func phasesMS(p [NumPhases]time.Duration) jsonlPhases {
	return jsonlPhases{
		DataWait:   ms(p[PhaseDataWait]),
		Forward:    ms(p[PhaseForward]),
		Backward:   ms(p[PhaseBackward]),
		Reduce:     ms(p[PhaseReduce]),
		ReduceTail: ms(p[PhaseReduceTail]),
		MPExchange: ms(p[PhaseMPExchange]),
		Optimizer:  ms(p[PhaseOptimizer]),
	}
}

type jsonlEval struct {
	Kind     string  `json:"kind"`
	Run      string  `json:"run,omitempty"`
	Step     int     `json:"step"`
	Epoch    float64 `json:"epoch"`
	Accuracy float64 `json:"accuracy"`
	WallMS   float64 `json:"wall_ms"`
	Serial   int     `json:"serial_samples"`
}

type jsonlEpoch struct {
	Kind  string `json:"kind"`
	Run   string `json:"run,omitempty"`
	Epoch int    `json:"epoch"`
	// Steps is the window's step count — deliberately not named "step",
	// which on every other kind is the global step index.
	Steps    int     `json:"steps"`
	WallMS   float64 `json:"wall_ms"`
	ImgsPerS float64 `json:"imgs_per_s"`
	AvgLoss  float64 `json:"avg_loss"`
	Overlap  float64 `json:"overlap_eff"`
	Done     float64 `json:"done"`
	ETA      string  `json:"eta,omitempty"`
}

type jsonlSnapshot struct {
	Kind   string  `json:"kind"`
	Run    string  `json:"run,omitempty"`
	Step   int64   `json:"step"`
	WallMS float64 `json:"wall_ms"`
	Path   string  `json:"path"`
	Err    string  `json:"err,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// Step implements Sink.
func (s *JSONLSink) Step(r StepRecord) {
	s.e.Encode(jsonlStep{
		Kind: "step", Run: s.Label,
		Step: r.Step, Epoch: r.Epoch,
		WallMS: ms(r.Wall), Phases: phasesMS(r.Phases),
		Loss: r.Loss, Accuracy: r.Accuracy, LR: r.LR,
		ImgsPerS: r.ImgsPerSec(), Overlap: r.OverlapEfficiency(), Starved: r.Starved,
		CollCount: r.Collectives.Count, CollBytes: r.Collectives.Bytes,
		CollBusyMS: ms(r.Collectives.Busy),
	})
}

// Eval implements Sink.
func (s *JSONLSink) Eval(r EvalRecord) {
	s.e.Encode(jsonlEval{
		Kind: "eval", Run: s.Label,
		Step: r.Step, Epoch: r.Epoch, Accuracy: r.Accuracy,
		WallMS: ms(r.Wall), Serial: r.SerialSamples,
	})
}

// Epoch implements Sink.
func (s *JSONLSink) Epoch(r EpochRecord) {
	line := jsonlEpoch{
		Kind: "epoch", Run: s.Label,
		Epoch: r.Epoch, Steps: r.Steps,
		WallMS: ms(r.Wall), ImgsPerS: r.ImgsPerSec, AvgLoss: r.AvgLoss,
		Overlap: r.OverlapEfficiency, Done: r.Done,
	}
	if r.ETA > 0 {
		line.ETA = r.ETA.Round(time.Second).String()
	}
	s.e.Encode(line)
}

// Snapshot implements Sink.
func (s *JSONLSink) Snapshot(r SnapshotRecord) {
	s.e.Encode(jsonlSnapshot{
		Kind: "snapshot", Run: s.Label,
		Step: r.Step, WallMS: ms(r.Wall), Path: r.Path, Err: r.Err,
	})
}

// Close implements Sink (flushes; the underlying writer stays open).
func (s *JSONLSink) Close() error { return s.w.Flush() }

// --- CSV ---------------------------------------------------------------------

// CSVSink writes one row per training step (evaluations, epochs and
// snapshots are not step-shaped and are skipped) — the format spreadsheet
// analysis of a single run wants.
type CSVSink struct {
	w      *bufio.Writer
	header bool
}

// NewCSV builds a CSV sink over w; the header row is written with the first
// record.
func NewCSV(w io.Writer) *CSVSink {
	return &CSVSink{w: bufio.NewWriter(w)}
}

// Step implements Sink.
func (s *CSVSink) Step(r StepRecord) {
	if !s.header {
		s.header = true
		cols := []string{"step", "epoch", "wall_ms"}
		for p := Phase(0); p < NumPhases; p++ {
			cols = append(cols, p.String()+"_ms")
		}
		cols = append(cols, "loss", "accuracy", "lr", "imgs_per_s",
			"overlap_eff", "coll_count", "coll_bytes", "coll_busy_ms", "starved")
		fmt.Fprintln(s.w, strings.Join(cols, ","))
	}
	fmt.Fprintf(s.w, "%d,%.4f,%.3f", r.Step, r.Epoch, ms(r.Wall))
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(s.w, ",%.3f", ms(r.Phases[p]))
	}
	fmt.Fprintf(s.w, ",%.6f,%.4f,%.6g,%.1f,%.4f,%d,%d,%.3f,%d\n",
		r.Loss, r.Accuracy, r.LR, r.ImgsPerSec(), r.OverlapEfficiency(),
		r.Collectives.Count, r.Collectives.Bytes, ms(r.Collectives.Busy), r.Starved)
}

// Eval implements Sink.
func (s *CSVSink) Eval(EvalRecord) {}

// Epoch implements Sink.
func (s *CSVSink) Epoch(EpochRecord) {}

// Snapshot implements Sink.
func (s *CSVSink) Snapshot(SnapshotRecord) {}

// Close implements Sink.
func (s *CSVSink) Close() error { return s.w.Flush() }

// --- Console -----------------------------------------------------------------

// ConsoleSink emits a one-line human summary per epoch (and per failed
// snapshot write) through emit — the live training view:
//
//	epoch   3  312.4 img/s  step 41.0ms  data 2% fwd 61% bwd 28% opt 3%  overlap 91%  eta 2m10s
func NewConsole(emit func(string)) Sink {
	return SinkFuncs{
		EpochFn: func(r EpochRecord) {
			stepMS := 0.0
			if r.Steps > 0 {
				stepMS = ms(r.Wall) / float64(r.Steps)
			}
			pct := func(p Phase) float64 {
				if r.Wall <= 0 {
					return 0
				}
				return 100 * float64(r.Phases[p]) / float64(r.Wall)
			}
			line := fmt.Sprintf("epoch %3d  %.1f img/s  step %.1fms  data %.0f%% fwd %.0f%% bwd %.0f%% opt %.0f%%",
				r.Epoch, r.ImgsPerSec, stepMS,
				pct(PhaseDataWait), pct(PhaseForward), pct(PhaseBackward), pct(PhaseOptimizer))
			// Model-axis exchange only exists on hybrid meshes; keep the pure
			// data-parallel line unchanged.
			if r.Phases[PhaseMPExchange] > 0 {
				line += fmt.Sprintf(" mp %.0f%%", pct(PhaseMPExchange))
			}
			line += fmt.Sprintf("  overlap %2.0f%%", 100*r.OverlapEfficiency)
			if r.ETA > 0 {
				line += "  eta " + r.ETA.Round(time.Second).String()
			}
			emit(line)
		},
		SnapshotFn: func(r SnapshotRecord) {
			if r.Err != "" {
				emit("snapshot failed: " + r.Err)
			}
		},
	}
}

// String renders the summary as the end-of-run report the CLIs print.
func (s Summary) String() string {
	if s.Steps == 0 {
		return "telemetry: no steps recorded"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d steps in %v (%.1f img/s)\n",
		s.Steps, s.Wall.Round(time.Millisecond), s.ImgsPerSec())
	fmt.Fprintf(&b, "  phases:")
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(&b, " %s %.1f%%", p, s.PhasePct(p))
	}
	fmt.Fprintf(&b, "\n  comm: %d collectives, %d bytes, busy %v, overlap efficiency %.1f%%, starved %d\n",
		s.Collectives.Count, s.Collectives.Bytes,
		s.Collectives.Busy.Round(time.Millisecond), 100*s.OverlapEfficiency(), s.Starved)
	fmt.Fprintf(&b, "  eval: %d passes, wall %v, serial samples %d",
		s.Evals, s.EvalWall.Round(time.Millisecond), s.EvalSerialSamples)
	if s.Snapshots > 0 {
		fmt.Fprintf(&b, "\n  snapshots: %d writes, wall %v, %d failed",
			s.Snapshots, s.SnapshotWall.Round(time.Millisecond), s.SnapshotErrors)
	}
	return b.String()
}
