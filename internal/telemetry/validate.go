package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
)

// CollectiveLog is a comm.Observer that retains every event — the capture
// side of the measured-vs-modeled validation (and a handy test double).
// Safe for concurrent use.
type CollectiveLog struct {
	mu     sync.Mutex
	events []comm.Event
}

// Collective implements comm.Observer.
func (l *CollectiveLog) Collective(ev comm.Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns a copy of the recorded events, in completion order (events
// from one rank appear in that rank's call order).
func (l *CollectiveLog) Events() []comm.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]comm.Event, len(l.events))
	copy(out, l.events)
	return out
}

// Reset discards the recorded events.
func (l *CollectiveLog) Reset() {
	l.mu.Lock()
	l.events = nil
	l.mu.Unlock()
}

// ValidationConfig parameterizes ValidateCommModel. The zero value selects
// the defaults the acceptance table uses: ring, tree and torus2d at world
// sizes 4, 8 and 16 over three payload sizes.
type ValidationConfig struct {
	// Worlds are the world sizes to measure (default 4, 8, 16).
	Worlds []int
	// PayloadBytes are the all-reduce payload sizes (default 64 KiB, 512 KiB,
	// 2 MiB).
	PayloadBytes []int
	// Reps is the number of timed repetitions per point; the median is kept
	// (default 9).
	Reps int
	// Warmup repetitions are run and discarded before timing starts.
	// 0 selects the default of 3; pass a negative value for no warmup.
	Warmup int
}

func (c *ValidationConfig) defaults() {
	if len(c.Worlds) == 0 {
		c.Worlds = []int{4, 8, 16}
	}
	if len(c.PayloadBytes) == 0 {
		c.PayloadBytes = []int{64 << 10, 512 << 10, 2 << 20}
	}
	if c.Reps < 1 {
		c.Reps = 9
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		c.Warmup = 3
	}
}

// ValidationPoint is one (algorithm, world, payload) cell of the
// measured-vs-modeled table.
type ValidationPoint struct {
	// Provider is the provider family (ring, tree, torus2d).
	Provider string
	// Algorithm is the concrete algorithm the executable collective reported
	// (e.g. "torus2d(2x4)").
	Algorithm string
	World     int
	Bytes     int
	// MeasuredSeconds is the median measured wall time of one all-reduce
	// (max across ranks per repetition — the lockstep critical path).
	MeasuredSeconds float64
	// ModeledSeconds prices the identical algorithm via
	// Provider.ModelAllReduce under the fitted link parameters.
	ModeledSeconds float64
	// ErrorPct is 100 × (measured − modeled) / modeled.
	ErrorPct float64
}

// Validation is the result of a measured-vs-modeled run.
type Validation struct {
	// Fit holds the α-β link parameters least-squares-fitted to the measured
	// ring points. The ring is the calibration set — its cost formula is the
	// model's simplest — and every other algorithm/world/payload cell is
	// then a prediction of the model's *structure* under those two
	// constants, which is the claim the cost model makes.
	Fit comm.LinkParams
	// Points holds every measured cell, in (provider, world, bytes) order.
	Points []ValidationPoint
	// MeanAbsErrPct aggregates |ErrorPct| per provider family.
	MeanAbsErrPct map[string]float64
}

// ValidateCommModel measures the executable collectives (goroutine ranks
// over channels — the same code mini-scale training runs) and replays each
// measurement against the α-β cost model that motivates comm.Auto's
// algorithm choice: it fits the model's two constants to the measured ring
// points, prices every (algorithm, world, payload) cell with
// Provider.ModelAllReduce under the fitted constants, and reports the
// per-cell relative error. Large errors on tree or torus cells mean the
// model mis-ranks algorithms on this transport; small errors mean the
// α-β structure transfers.
func ValidateCommModel(cfg ValidationConfig) (*Validation, error) {
	cfg.defaults()
	providers := []comm.Provider{
		comm.RingProvider(),
		comm.TreeProvider(),
		comm.Torus2DProvider(topology.Slice{}),
	}

	type cell struct {
		prov     comm.Provider
		world    int
		bytes    int
		measured float64
		alg      string
	}
	var cells []cell
	for _, prov := range providers {
		for _, n := range cfg.Worlds {
			for _, bytes := range cfg.PayloadBytes {
				measured, alg, err := measureAllReduce(prov, n, bytes, cfg.Warmup, cfg.Reps)
				if err != nil {
					return nil, fmt.Errorf("telemetry: validate %s n=%d: %w", prov.Name(), n, err)
				}
				cells = append(cells, cell{prov, n, bytes, measured, alg})
			}
		}
	}

	// Fit α (latency) and 1/β (inverse bandwidth) to the ring cells:
	// t = x1·(1/β) + x2·α with x1 = 2(n−1)/n·B and x2 = 2(n−1). Each
	// equation is weighted by 1/t so the fit minimizes *relative* error —
	// the quantity the table reports — instead of letting the
	// largest-payload cells dominate in absolute terms.
	var s11, s12, s22, b1, b2 float64
	for _, c := range cells {
		if c.prov.Name() != "ring" || c.measured <= 0 {
			continue
		}
		w := 1 / c.measured
		x1 := 2 * float64(c.world-1) / float64(c.world) * float64(c.bytes) * w
		x2 := 2 * float64(c.world-1) * w
		t := c.measured * w // 1, by construction
		s11 += x1 * x1
		s12 += x1 * x2
		s22 += x2 * x2
		b1 += x1 * t
		b2 += x2 * t
	}
	det := s11*s22 - s12*s12
	invBW, alpha := 0.0, 0.0
	if det != 0 {
		invBW = (b1*s22 - b2*s12) / det
		alpha = (b2*s11 - b1*s12) / det
	}
	// Degenerate fits (a transport where one term dominates can drive the
	// other slightly negative) are clamped to the single-term solution.
	if invBW <= 0 && s11 > 0 {
		invBW = b1 / s11
		alpha = 0
	}
	if alpha < 0 {
		alpha = 0
		if s11 > 0 {
			invBW = b1 / s11
		}
	}
	if invBW <= 0 {
		return nil, fmt.Errorf("telemetry: validate: degenerate bandwidth fit (no usable ring measurements)")
	}
	fit := comm.LinkParams{BandwidthGBs: 1 / (invBW * 1e9), LatencyUS: alpha * 1e6}

	v := &Validation{Fit: fit, MeanAbsErrPct: map[string]float64{}}
	counts := map[string]int{}
	for _, c := range cells {
		modeled, _ := c.prov.ModelAllReduce(c.bytes, c.world, fit)
		pt := ValidationPoint{
			Provider:        c.prov.Name(),
			Algorithm:       c.alg,
			World:           c.world,
			Bytes:           c.bytes,
			MeasuredSeconds: c.measured,
			ModeledSeconds:  modeled,
		}
		if modeled > 0 {
			pt.ErrorPct = 100 * (c.measured - modeled) / modeled
		}
		v.Points = append(v.Points, pt)
		abs := pt.ErrorPct
		if abs < 0 {
			abs = -abs
		}
		v.MeanAbsErrPct[pt.Provider] += abs
		counts[pt.Provider]++
	}
	for k := range v.MeanAbsErrPct {
		v.MeanAbsErrPct[k] /= float64(counts[k])
	}
	return v, nil
}

// measureAllReduce runs warmup+reps lockstep all-reduces of the payload on a
// fresh instrumented world and returns the median per-op wall time (max
// across ranks per repetition) and the concrete algorithm that ran.
func measureAllReduce(prov comm.Provider, n, bytes, warmup, reps int) (float64, string, error) {
	log := &CollectiveLog{}
	colls, err := comm.InstrumentProvider(prov, log).Connect(n)
	if err != nil {
		return 0, "", err
	}
	words := bytes / 4
	if words < 1 {
		words = 1
	}
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, words)
		for i := range bufs[r] {
			bufs[r][i] = float32(r + i)
		}
	}
	total := warmup + reps
	var wg sync.WaitGroup
	for _, c := range colls {
		wg.Add(1)
		go func(c comm.Collective) {
			defer wg.Done()
			for i := 0; i < total; i++ {
				c.AllReduce(bufs[c.Rank()])
			}
		}(c)
	}
	wg.Wait()

	// Events interleave across ranks but each rank's are in call order;
	// regroup per rank, then take the per-repetition critical path.
	perRank := make([][]time.Duration, n)
	alg := ""
	for _, ev := range log.Events() {
		perRank[ev.Rank] = append(perRank[ev.Rank], ev.Elapsed)
		alg = ev.Algorithm
	}
	walls := make([]float64, 0, reps)
	for i := warmup; i < total; i++ {
		var maxD time.Duration
		for r := 0; r < n; r++ {
			if i >= len(perRank[r]) {
				return 0, "", fmt.Errorf("rank %d recorded %d events, want %d", r, len(perRank[r]), total)
			}
			if perRank[r][i] > maxD {
				maxD = perRank[r][i]
			}
		}
		walls = append(walls, maxD.Seconds())
	}
	sort.Float64s(walls)
	return walls[len(walls)/2], alg, nil
}
