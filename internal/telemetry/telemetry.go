package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"effnetscale/internal/comm"
)

// Phase indexes the sections of one training step that the engine times.
type Phase int

// The step phases, in critical-path order. PhaseReduce is the collective
// busy time on the background gradient-reduction stream — buckets dispatch
// from inside the backward pass the moment their last gradient lands (the
// autograd tape's grad-ready hooks), so most of it runs concurrently with
// PhaseBackward itself — while PhaseReduceTail is the exposed part: the wait
// between backward finishing and the last bucket's all-reduce completing.
// Overlap efficiency is the fraction of PhaseReduce hidden behind other work
// (see StepRecord.OverlapEfficiency).
const (
	// PhaseDataWait is time spent obtaining input batches: blocking on the
	// prefetch pipeline, or rendering+augmenting inline when prefetch is off.
	PhaseDataWait Phase = iota
	// PhaseForward is model forward plus loss computation.
	PhaseForward
	// PhaseBackward is the backward pass over the autograd tape.
	PhaseBackward
	// PhaseReduce is gradient-collective busy time on the overlap stream,
	// most of it concurrent with PhaseBackward (grad-ready bucket dispatch).
	PhaseReduce
	// PhaseReduceTail is reduce time not hidden inside the backward pass.
	PhaseReduceTail
	// PhaseMPExchange is model-axis exchange time on a hybrid mesh: the
	// all-gather that rebuilds full gradients from the per-shard slices after
	// the data-axis reduction. Zero on pure data-parallel runs (M=1).
	PhaseMPExchange
	// PhaseOptimizer is gradient averaging, the optimizer update and EMA.
	PhaseOptimizer
	// NumPhases bounds the phase index space.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"data_wait", "forward", "backward", "reduce", "reduce_tail", "mp_exchange", "optimizer",
}

// String returns the phase's snake_case name (column/field name in sinks).
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// StepSample accumulates one replica's phase timings for one step. All
// methods are nil-receiver-safe and record nothing on a nil sample — the
// disabled fast path costs one pointer check per call and performs no clock
// reads, no allocation and no synchronization, which is what keeps the
// no-telemetry hot path within noise of the uninstrumented engine.
//
// A sample is written by its replica's goroutines only; distinct phases may
// be written from distinct goroutines (the reduction stream owns PhaseReduce)
// as long as no two goroutines touch the same phase concurrently.
type StepSample struct {
	phases  [NumPhases]time.Duration
	starved int64
}

// Now returns the current time, or the zero time on a nil (disabled) sample
// so the hot path never reads the clock when telemetry is off.
func (s *StepSample) Now() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// Add accrues the time since t0 to phase p. No-op on a nil sample.
func (s *StepSample) Add(p Phase, t0 time.Time) {
	if s == nil {
		return
	}
	s.phases[p] += time.Since(t0)
}

// AddStarved accrues input-pipeline starvation events. No-op on nil.
func (s *StepSample) AddStarved(n int64) {
	if s == nil {
		return
	}
	s.starved += n
}

// Reset clears the sample for the next step. No-op on nil.
func (s *StepSample) Reset() {
	if s == nil {
		return
	}
	*s = StepSample{}
}

// Phase returns the accumulated duration of phase p (0 on nil).
func (s *StepSample) Phase(p Phase) time.Duration {
	if s == nil {
		return 0
	}
	return s.phases[p]
}

// MergeSamples folds per-replica samples into one global view: phase
// durations take the maximum across replicas (the slowest replica is the
// critical path of a lockstep step), starvation counts sum (every starved
// pipeline represents real stalled work).
func MergeSamples(samples []StepSample) (phases [NumPhases]time.Duration, starved int64) {
	for i := range samples {
		for p := Phase(0); p < NumPhases; p++ {
			if d := samples[i].phases[p]; d > phases[p] {
				phases[p] = d
			}
		}
		starved += samples[i].starved
	}
	return phases, starved
}

// CollectiveTotals aggregates per-collective accounting over a window: how
// many collective calls ran, the local payload bytes they carried, and the
// rank wall-clock time spent inside them (summed over all ranks — divide by
// the world size for a per-rank mean).
type CollectiveTotals struct {
	Count int64
	Bytes int64
	Busy  time.Duration
}

func (c *CollectiveTotals) add(o CollectiveTotals) {
	c.Count += o.Count
	c.Bytes += o.Bytes
	c.Busy += o.Busy
}

// StepRecord is one global training step, aggregated across replicas.
type StepRecord struct {
	// Step is the 1-based global step number (resume-stable).
	Step int
	// Epoch is the fractional epoch at this step.
	Epoch float64
	// Wall is the step's wall-clock time.
	Wall time.Duration
	// Phases holds the critical-path (max-across-replicas) phase durations.
	Phases [NumPhases]time.Duration
	// Loss / Accuracy / LR mirror the step's training metrics.
	Loss     float64
	Accuracy float64
	LR       float64
	// GlobalBatch is the images consumed by this step.
	GlobalBatch int
	// Collectives accounts every collective call attributed to this step
	// (all ranks, all worlds — gradients, BN statistics, metrics).
	Collectives CollectiveTotals
	// Starved counts input-pipeline starvation events (consumer blocked on
	// an empty pipeline) summed over replicas.
	Starved int64
}

// ImgsPerSec is the step's throughput in images per second.
func (r StepRecord) ImgsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.GlobalBatch) / r.Wall.Seconds()
}

// OverlapEfficiency is the fraction of gradient-reduction busy time hidden
// inside the backward pass: 1 − tail/busy, clamped to [0, 1]. A step with no
// reduction work reports 1 (nothing needed hiding).
func (r StepRecord) OverlapEfficiency() float64 {
	return overlapEfficiency(r.Phases[PhaseReduce], r.Phases[PhaseReduceTail])
}

func overlapEfficiency(busy, tail time.Duration) float64 {
	if busy <= 0 {
		return 1
	}
	if tail >= busy {
		return 0
	}
	return 1 - float64(tail)/float64(busy)
}

// EvalRecord is one evaluation pass.
type EvalRecord struct {
	Step     int
	Epoch    float64
	Accuracy float64
	// Wall is this evaluation's own wall-clock cost.
	Wall time.Duration
	// SerialSamples is the evaluation samples processed serially by the
	// busiest worker — the §3.3 bottleneck measure.
	SerialSamples int
}

// SnapshotRecord is one training-state snapshot write (usually asynchronous;
// Wall is the write's own latency off the critical path).
type SnapshotRecord struct {
	Step int64
	Path string
	Wall time.Duration
	// Err is the write failure, "" on success.
	Err string
}

// EpochRecord summarizes one completed epoch — the cadence of the live
// console view.
type EpochRecord struct {
	// Epoch is the 1-based completed epoch.
	Epoch int
	// Steps is the number of steps recorded in this epoch window.
	Steps int
	// Wall is the summed step wall time of the window.
	Wall time.Duration
	// Phases sums the window's critical-path phase durations.
	Phases [NumPhases]time.Duration
	// ImgsPerSec is the window's training throughput.
	ImgsPerSec float64
	// AvgLoss is the window's mean training loss.
	AvgLoss float64
	// OverlapEfficiency aggregates the window's reduce overlap.
	OverlapEfficiency float64
	// Done is the fraction of the configured run completed, in [0, 1]
	// (0 when the recorder has no run geometry).
	Done float64
	// ETA extrapolates the remaining wall time from the run's mean step
	// wall so far (0 when the recorder has no run geometry).
	ETA time.Duration
}

// RunInfo gives the Recorder the run geometry epoch aggregation and ETA
// need. All fields are optional; a zero RunInfo degrades to per-step records
// only. BeginRun resets the wall-time window, so a resumed run's ETA
// extrapolates only from its own steps.
type RunInfo struct {
	World         int
	GlobalBatch   int
	StepsPerEpoch int
	// TotalSteps is the configured run length in steps (for ETA/Done).
	TotalSteps int
}

// Summary aggregates everything recorded since the last BeginRun (or since
// construction) — the value a finished run reports as Result.Telemetry.
// BeginRun starts a fresh summary, so multi-Run sessions report each run's
// own numbers.
type Summary struct {
	// Steps counts training steps recorded.
	Steps int
	// Wall sums step wall time (training only; evaluation is separate).
	Wall time.Duration
	// Images counts training images consumed.
	Images int64
	// Phases sums the per-step critical-path phase durations.
	Phases [NumPhases]time.Duration
	// Collectives accounts every collective call observed.
	Collectives CollectiveTotals
	// Starved counts input-pipeline starvation events.
	Starved int64
	// Evals / EvalWall / EvalSerialSamples aggregate evaluation passes.
	Evals             int
	EvalWall          time.Duration
	EvalSerialSamples int
	// Snapshots / SnapshotWall / SnapshotErrors aggregate snapshot writes.
	Snapshots      int
	SnapshotWall   time.Duration
	SnapshotErrors int
}

// ImgsPerSec is the run's mean training throughput.
func (s Summary) ImgsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Images) / s.Wall.Seconds()
}

// OverlapEfficiency is the run-wide fraction of gradient-reduction busy time
// hidden inside the backward pass.
func (s Summary) OverlapEfficiency() float64 {
	return overlapEfficiency(s.Phases[PhaseReduce], s.Phases[PhaseReduceTail])
}

// PhasePct is phase p's share of the summed step wall time, in percent.
// PhaseReduce mostly runs concurrently with PhaseBackward, so the phase
// percentages need not sum to 100.
func (s Summary) PhasePct(p Phase) float64 {
	if s.Wall <= 0 {
		return 0
	}
	return 100 * float64(s.Phases[p]) / float64(s.Wall)
}

// Recorder is the engine-facing half of the telemetry subsystem: the
// training engine hands it per-step samples, instrumented collectives report
// per-call events (Recorder implements comm.Observer), and the recorder
// aggregates both into step/epoch records fanned out to the attached sinks
// — in registration order — plus a lifetime Summary.
//
// With no sinks attached the recorder still aggregates the Summary; that
// path allocates nothing per step. Collective events are attributed to the
// step in flight when they are observed; the few scalar collectives an
// evaluation runs between steps fold into the following step's totals, and
// events still pending when Summary is read (the final evaluation's) fold
// into the summary directly.
type Recorder struct {
	sinks []Sink

	// Per-step collective accounting, written by instrumented collectives
	// from every rank's goroutines; swapped out at each StepDone.
	collCount  atomic.Int64
	collBytes  atomic.Int64
	collBusyNS atomic.Int64

	mu   sync.Mutex
	info RunInfo
	sum  Summary
	// Epoch window accumulators.
	epochSteps   int
	epochWall    time.Duration
	epochImages  int64
	epochLossSum float64
	epochPhases  [NumPhases]time.Duration
	// Run window (since BeginRun) for ETA extrapolation.
	runSteps int
	runWall  time.Duration
}

// NewRecorder builds a recorder fanning out to sinks (none is valid: the
// recorder then only aggregates the Summary).
func NewRecorder(sinks ...Sink) *Recorder {
	return &Recorder{sinks: sinks}
}

// BeginRun (re)arms the epoch/ETA geometry and starts a fresh Summary, so
// each Run of a multi-Run session reports its own numbers. Call it at the
// top of each run; a recorder used without BeginRun still produces step
// records and the Summary, but no epoch records.
func (r *Recorder) BeginRun(info RunInfo) {
	r.mu.Lock()
	// Stale collective events from before this run (already folded into the
	// previous Summary read, or orphaned) must not pollute the first step.
	r.takeCollectives()
	r.info = info
	r.sum = Summary{}
	r.runSteps = 0
	r.runWall = 0
	r.resetEpochWindowLocked()
	r.mu.Unlock()
}

func (r *Recorder) resetEpochWindowLocked() {
	r.epochSteps = 0
	r.epochWall = 0
	r.epochImages = 0
	r.epochLossSum = 0
	r.epochPhases = [NumPhases]time.Duration{}
}

// Collective implements comm.Observer: instrumented endpoints report every
// collective call here. Lock-free — three atomic adds on the hot path.
func (r *Recorder) Collective(ev comm.Event) {
	r.collCount.Add(1)
	r.collBytes.Add(int64(ev.Bytes))
	r.collBusyNS.Add(int64(ev.Elapsed))
}

// takeCollectives swaps out the per-step collective accumulators.
func (r *Recorder) takeCollectives() CollectiveTotals {
	return CollectiveTotals{
		Count: r.collCount.Swap(0),
		Bytes: r.collBytes.Swap(0),
		Busy:  time.Duration(r.collBusyNS.Swap(0)),
	}
}

// StepDone records one completed global step. rec.Collectives is filled in
// by the recorder from the events observed since the previous StepDone; the
// caller supplies everything else. Emits the step record (and, at epoch
// boundaries, an epoch record) to every sink in registration order.
func (r *Recorder) StepDone(rec StepRecord) {
	rec.Collectives = r.takeCollectives()

	r.mu.Lock()
	r.sum.Steps++
	r.sum.Wall += rec.Wall
	r.sum.Images += int64(rec.GlobalBatch)
	for p := Phase(0); p < NumPhases; p++ {
		r.sum.Phases[p] += rec.Phases[p]
	}
	r.sum.Collectives.add(rec.Collectives)
	r.sum.Starved += rec.Starved

	r.epochSteps++
	r.epochWall += rec.Wall
	r.epochImages += int64(rec.GlobalBatch)
	r.epochLossSum += rec.Loss
	for p := Phase(0); p < NumPhases; p++ {
		r.epochPhases[p] += rec.Phases[p]
	}
	r.runSteps++
	r.runWall += rec.Wall

	var epochRec EpochRecord
	emitEpoch := false
	if spe := r.info.StepsPerEpoch; spe > 0 && rec.Step%spe == 0 {
		emitEpoch = true
		epochRec = EpochRecord{
			Epoch:             rec.Step / spe,
			Steps:             r.epochSteps,
			Wall:              r.epochWall,
			Phases:            r.epochPhases,
			OverlapEfficiency: overlapEfficiency(r.epochPhases[PhaseReduce], r.epochPhases[PhaseReduceTail]),
		}
		if r.epochWall > 0 {
			epochRec.ImgsPerSec = float64(r.epochImages) / r.epochWall.Seconds()
		}
		if r.epochSteps > 0 {
			epochRec.AvgLoss = r.epochLossSum / float64(r.epochSteps)
		}
		if total := r.info.TotalSteps; total > 0 && r.runSteps > 0 {
			epochRec.Done = float64(rec.Step) / float64(total)
			remaining := total - rec.Step
			if remaining > 0 {
				epochRec.ETA = time.Duration(float64(r.runWall) / float64(r.runSteps) * float64(remaining))
			}
		}
		r.resetEpochWindowLocked()
	}
	r.mu.Unlock()

	for _, s := range r.sinks {
		s.Step(rec)
	}
	if emitEpoch {
		for _, s := range r.sinks {
			s.Epoch(epochRec)
		}
	}
}

// EvalDone records one evaluation pass.
func (r *Recorder) EvalDone(rec EvalRecord) {
	r.mu.Lock()
	r.sum.Evals++
	r.sum.EvalWall += rec.Wall
	r.sum.EvalSerialSamples += rec.SerialSamples
	r.mu.Unlock()
	for _, s := range r.sinks {
		s.Eval(rec)
	}
}

// SnapshotDone records one training-state snapshot write outcome.
func (r *Recorder) SnapshotDone(rec SnapshotRecord) {
	r.mu.Lock()
	r.sum.Snapshots++
	r.sum.SnapshotWall += rec.Wall
	if rec.Err != "" {
		r.sum.SnapshotErrors++
	}
	r.mu.Unlock()
	for _, s := range r.sinks {
		s.Snapshot(rec)
	}
}

// Summary returns a copy of the aggregation since the last BeginRun. It
// first folds in any collective events still pending attribution (the final
// evaluation's reductions run after the last StepDone), so "every
// collective observed" holds for the returned value.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sum.Collectives.add(r.takeCollectives())
	return r.sum
}

// Close closes every sink in registration order, returning the first error.
func (r *Recorder) Close() error {
	var first error
	for _, s := range r.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
