package telemetry

import (
	"testing"
	"time"

	"effnetscale/internal/comm"
)

// TestCollectiveLog verifies the observer records per-rank events in call
// order through real instrumented collectives.
func TestCollectiveLog(t *testing.T) {
	log := &CollectiveLog{}
	colls, err := comm.InstrumentProvider(comm.RingProvider(), log).Connect(3)
	if err != nil {
		t.Fatal(err)
	}
	bufs := [][]float32{{1}, {2}, {3}}
	done := make(chan struct{})
	for _, c := range colls {
		go func(c comm.Collective) {
			c.AllReduce(bufs[c.Rank()])
			c.Barrier()
			done <- struct{}{}
		}(c)
	}
	for range colls {
		<-done
	}
	evs := log.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6 (3 ranks × allreduce+barrier)", len(evs))
	}
	seen := map[int][]comm.Op{}
	for _, ev := range evs {
		if ev.World != 3 {
			t.Fatalf("event world = %d, want 3", ev.World)
		}
		seen[ev.Rank] = append(seen[ev.Rank], ev.Op)
	}
	for r := 0; r < 3; r++ {
		ops := seen[r]
		if len(ops) != 2 || ops[0] != comm.OpAllReduce || ops[1] != comm.OpBarrier {
			t.Fatalf("rank %d ops = %v, want [allreduce barrier]", r, ops)
		}
	}
	if bufs[0][0] != 6 {
		t.Fatalf("instrumented all-reduce result = %v, want 6", bufs[0][0])
	}
	log.Reset()
	if len(log.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

// TestValidateCommModelSmall runs the measured-vs-modeled harness at reduced
// scale and checks its structural guarantees: full cell coverage, a positive
// bandwidth fit, modeled times from the fitted parameters, and consistent
// error arithmetic.
func TestValidateCommModelSmall(t *testing.T) {
	v, err := ValidateCommModel(ValidationConfig{
		Worlds:       []int{2, 4},
		PayloadBytes: []int{8 << 10, 128 << 10},
		Reps:         3,
		Warmup:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Fit.BandwidthGBs <= 0 {
		t.Fatalf("fitted bandwidth %g must be > 0", v.Fit.BandwidthGBs)
	}
	if v.Fit.LatencyUS < 0 {
		t.Fatalf("fitted latency %g must be >= 0", v.Fit.LatencyUS)
	}
	// 3 providers × 2 worlds × 2 payloads.
	if len(v.Points) != 12 {
		t.Fatalf("got %d points, want 12", len(v.Points))
	}
	for _, p := range v.Points {
		if p.MeasuredSeconds <= 0 {
			t.Fatalf("%s n=%d B=%d: measured %g must be > 0", p.Provider, p.World, p.Bytes, p.MeasuredSeconds)
		}
		if p.ModeledSeconds <= 0 {
			t.Fatalf("%s n=%d B=%d: modeled %g must be > 0", p.Provider, p.World, p.Bytes, p.ModeledSeconds)
		}
		wantErr := 100 * (p.MeasuredSeconds - p.ModeledSeconds) / p.ModeledSeconds
		if diff := p.ErrorPct - wantErr; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s n=%d: ErrorPct %g, want %g", p.Provider, p.World, p.ErrorPct, wantErr)
		}
		if p.Algorithm == "" {
			t.Fatalf("%s n=%d: empty resolved algorithm", p.Provider, p.World)
		}
	}
	for _, name := range []string{"ring", "tree", "torus2d"} {
		if _, ok := v.MeanAbsErrPct[name]; !ok {
			t.Fatalf("missing mean error for %s", name)
		}
	}
}

// TestValidationConfigDefaults pins the acceptance-table coverage: ring,
// tree and torus2d at world sizes 4, 8 and 16.
func TestValidationConfigDefaults(t *testing.T) {
	var cfg ValidationConfig
	cfg.defaults()
	if got, want := cfg.Worlds, []int{4, 8, 16}; len(got) != len(want) || got[0] != 4 || got[1] != 8 || got[2] != 16 {
		t.Fatalf("default worlds = %v, want %v", got, want)
	}
	if len(cfg.PayloadBytes) == 0 || cfg.Reps < 1 || cfg.Warmup < 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

// TestMeasureAllReduceEventCount checks the per-repetition critical-path
// regrouping sees exactly warmup+reps events per rank.
func TestMeasureAllReduceEventCount(t *testing.T) {
	med, alg, err := measureAllReduce(comm.TreeProvider(), 4, 4<<10, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if med <= 0 || med > float64(time.Second/time.Nanosecond) {
		t.Fatalf("median = %g s", med)
	}
	if alg != "tree" {
		t.Fatalf("algorithm = %q, want tree", alg)
	}
}
