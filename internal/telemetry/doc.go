// Package telemetry is the measurement layer over the training hot path: a
// low-overhead structured event stream that turns the repo's performance
// mechanisms — bucketed overlapped gradient reduction, input prefetching,
// async snapshots — from claims into per-step numbers.
//
// The engine times each step's phases (data wait, forward, backward, the
// gradient-reduce overlap window and its exposed tail, optimizer apply)
// into per-replica StepSamples; instrumented collectives
// (comm.Instrument/InstrumentProvider) report every call's algorithm,
// payload and rank wall time; the input pipeline counts starvation; the
// checkpoint writer reports write latencies. A Recorder aggregates all of
// it per step and per epoch — throughput (img/s), comm-overlap efficiency
// (the fraction of collective busy time hidden inside the backward pass),
// ETA —
// and fans records out to pluggable Sinks (JSONL file, CSV file, live
// console summary) plus a run-lifetime Summary.
//
// Cost discipline: a nil *Recorder (replica.Config.Telemetry) compiles the
// instrumentation out — StepSample methods are nil-receiver-safe and read
// no clocks — and a Recorder with no sinks attached aggregates the Summary
// with zero allocations per step (TestNoSinkFastPathAllocs,
// BenchmarkStep/nosink: <1% overhead vs telemetry off).
//
// The package also closes the loop on the α-β cost model that motivates
// comm.Auto's algorithm choice: ValidateCommModel times the executable
// ring/tree/torus2d collectives, fits the model's two constants to the
// measured ring points, and reports measured-vs-modeled error per
// algorithm, world size and payload (`podbench -validate`). On the
// goroutine-channel transport the errors grow with world size — the "links"
// share host memory bandwidth where the model assumes dedicated links —
// which is exactly the kind of structural divergence the validation exists
// to surface.
//
// Seams: Sink (Step/Eval/Epoch/Snapshot/Close; SinkFuncs adapts functions),
// comm.Observer (Recorder implements it), train.WithTelemetry /
// Result.Telemetry on the public API.
//
// Paper: the wall-clock decomposition behind Table 1 (compute vs all-reduce
// share) and Figure 1 (time to accuracy), measured on the mini-scale engine
// instead of modelled.
package telemetry
