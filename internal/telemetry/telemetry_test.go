package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"effnetscale/internal/comm"
)

// orderSink records which sink saw which event in which global order.
type orderSink struct {
	name string
	log  *[]string
}

func (s orderSink) Step(r StepRecord)       { *s.log = append(*s.log, s.name+":step") }
func (s orderSink) Eval(r EvalRecord)       { *s.log = append(*s.log, s.name+":eval") }
func (s orderSink) Epoch(r EpochRecord)     { *s.log = append(*s.log, s.name+":epoch") }
func (s orderSink) Snapshot(SnapshotRecord) { *s.log = append(*s.log, s.name+":snapshot") }
func (s orderSink) Close() error            { *s.log = append(*s.log, s.name+":close"); return nil }

// TestSinkFanOutOrder verifies every record reaches all sinks in
// registration order, and that epoch records follow the step that closed the
// epoch.
func TestSinkFanOutOrder(t *testing.T) {
	var log []string
	rec := NewRecorder(orderSink{"a", &log}, orderSink{"b", &log})
	rec.BeginRun(RunInfo{StepsPerEpoch: 2, TotalSteps: 4, GlobalBatch: 8})

	rec.StepDone(StepRecord{Step: 1, Wall: time.Millisecond, GlobalBatch: 8})
	rec.StepDone(StepRecord{Step: 2, Wall: time.Millisecond, GlobalBatch: 8})
	rec.EvalDone(EvalRecord{Step: 2, Accuracy: 0.5})
	rec.SnapshotDone(SnapshotRecord{Step: 2})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"a:step", "b:step", // step 1, no epoch boundary
		"a:step", "b:step", "a:epoch", "b:epoch", // step 2 closes epoch 1
		"a:eval", "b:eval",
		"a:snapshot", "b:snapshot",
		"a:close", "b:close",
	}
	if len(log) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(log), log, len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

// TestNoSinkFastPathAllocs verifies the telemetry-on-but-no-sink hot path —
// sample timing, collective observation, StepDone aggregation — allocates
// nothing per step.
func TestNoSinkFastPathAllocs(t *testing.T) {
	rec := NewRecorder()
	rec.BeginRun(RunInfo{StepsPerEpoch: 100, TotalSteps: 1000, GlobalBatch: 64})
	sample := &StepSample{}
	step := 0
	allocs := testing.AllocsPerRun(100, func() {
		sample.Reset()
		t0 := sample.Now()
		sample.Add(PhaseForward, t0)
		sample.Add(PhaseReduce, t0)
		sample.Add(PhaseMPExchange, t0)
		sample.AddStarved(1)
		rec.Collective(comm.Event{Op: comm.OpAllReduce, Bytes: 4096, Elapsed: time.Microsecond})
		phases, starved := MergeSamples([]StepSample{*sample})
		step++
		rec.StepDone(StepRecord{
			Step: step, Wall: time.Millisecond, Phases: phases,
			GlobalBatch: 64, Starved: starved,
		})
	})
	if allocs != 0 {
		t.Fatalf("no-sink fast path allocated %.1f objects/step, want 0", allocs)
	}
}

// TestNilSampleIsFree verifies the disabled path: nil samples accept every
// call, record nothing, and never read the clock.
func TestNilSampleIsFree(t *testing.T) {
	var s *StepSample
	if got := s.Now(); !got.IsZero() {
		t.Fatalf("nil sample Now() = %v, want zero time (no clock read)", got)
	}
	s.Add(PhaseForward, time.Time{})
	s.AddStarved(3)
	s.Reset()
	if d := s.Phase(PhaseForward); d != 0 {
		t.Fatalf("nil sample Phase = %v, want 0", d)
	}
}

// TestOverlapEfficiencyMath checks the overlap arithmetic on synthetic
// phase records.
func TestOverlapEfficiencyMath(t *testing.T) {
	mk := func(busy, tail time.Duration) StepRecord {
		var r StepRecord
		r.Phases[PhaseReduce] = busy
		r.Phases[PhaseReduceTail] = tail
		return r
	}
	cases := []struct {
		name       string
		busy, tail time.Duration
		want       float64
	}{
		{"fully_hidden", 10 * time.Millisecond, 0, 1},
		{"half_hidden", 10 * time.Millisecond, 5 * time.Millisecond, 0.5},
		{"fully_exposed", 10 * time.Millisecond, 10 * time.Millisecond, 0},
		{"tail_exceeds_busy_clamps", 10 * time.Millisecond, 12 * time.Millisecond, 0},
		{"no_reduction_work", 0, 0, 1},
	}
	for _, c := range cases {
		if got := mk(c.busy, c.tail).OverlapEfficiency(); got != c.want {
			t.Errorf("%s: OverlapEfficiency = %g, want %g", c.name, got, c.want)
		}
	}
}

// TestSummaryAggregation feeds synthetic steps/evals/snapshots and checks
// the lifetime summary: throughput, phase sums, collective accounting and
// the run-wide overlap efficiency.
func TestSummaryAggregation(t *testing.T) {
	rec := NewRecorder()
	rec.BeginRun(RunInfo{StepsPerEpoch: 2, TotalSteps: 4, GlobalBatch: 32})

	var r1 StepRecord
	r1.Step, r1.Wall, r1.GlobalBatch, r1.Loss = 1, 100*time.Millisecond, 32, 2.0
	r1.Phases[PhaseReduce] = 40 * time.Millisecond
	r1.Phases[PhaseReduceTail] = 10 * time.Millisecond
	rec.Collective(comm.Event{Bytes: 1000, Elapsed: 5 * time.Millisecond})
	rec.Collective(comm.Event{Bytes: 500, Elapsed: 3 * time.Millisecond})
	rec.StepDone(r1)

	var r2 StepRecord
	r2.Step, r2.Wall, r2.GlobalBatch, r2.Loss = 2, 100*time.Millisecond, 32, 1.0
	r2.Phases[PhaseReduce] = 20 * time.Millisecond
	r2.Phases[PhaseReduceTail] = 20 * time.Millisecond
	r2.Starved = 3
	rec.StepDone(r2)

	rec.EvalDone(EvalRecord{Wall: 50 * time.Millisecond, SerialSamples: 64})
	rec.SnapshotDone(SnapshotRecord{Wall: 7 * time.Millisecond, Err: "disk full"})

	s := rec.Summary()
	if s.Steps != 2 || s.Images != 64 {
		t.Fatalf("steps/images = %d/%d, want 2/64", s.Steps, s.Images)
	}
	if got, want := s.ImgsPerSec(), 64/0.2; got < want*0.999 || got > want*1.001 {
		t.Fatalf("ImgsPerSec = %g, want %g", got, want)
	}
	// Run-wide overlap: busy 60ms, tail 30ms → 50% hidden.
	if got := s.OverlapEfficiency(); got != 0.5 {
		t.Fatalf("OverlapEfficiency = %g, want 0.5", got)
	}
	if s.Collectives.Count != 2 || s.Collectives.Bytes != 1500 || s.Collectives.Busy != 8*time.Millisecond {
		t.Fatalf("collectives = %+v", s.Collectives)
	}
	if s.Starved != 3 {
		t.Fatalf("starved = %d, want 3", s.Starved)
	}
	if s.Evals != 1 || s.EvalWall != 50*time.Millisecond || s.EvalSerialSamples != 64 {
		t.Fatalf("eval summary = %d/%v/%d", s.Evals, s.EvalWall, s.EvalSerialSamples)
	}
	if s.Snapshots != 1 || s.SnapshotErrors != 1 {
		t.Fatalf("snapshot summary = %d written, %d errors", s.Snapshots, s.SnapshotErrors)
	}
	// PhaseReduce share of 200ms wall: 60ms = 30%.
	if got := s.PhasePct(PhaseReduce); got != 30 {
		t.Fatalf("PhasePct(reduce) = %g, want 30", got)
	}
	if !strings.Contains(s.String(), "2 steps") {
		t.Fatalf("Summary.String() = %q", s.String())
	}
}

// TestEpochRecordAndETA checks epoch boundaries, window reset and the ETA
// extrapolation.
func TestEpochRecordAndETA(t *testing.T) {
	var epochs []EpochRecord
	rec := NewRecorder(SinkFuncs{EpochFn: func(r EpochRecord) { epochs = append(epochs, r) }})
	rec.BeginRun(RunInfo{StepsPerEpoch: 2, TotalSteps: 6, GlobalBatch: 10})

	for step := 1; step <= 4; step++ {
		rec.StepDone(StepRecord{Step: step, Wall: 100 * time.Millisecond, GlobalBatch: 10, Loss: float64(step)})
	}
	if len(epochs) != 2 {
		t.Fatalf("got %d epoch records, want 2", len(epochs))
	}
	e := epochs[1]
	if e.Epoch != 2 || e.Steps != 2 {
		t.Fatalf("epoch record = %+v", e)
	}
	// Window: 2 steps × 100ms for 20 images → 100 img/s; loss mean of 3,4.
	if got := e.ImgsPerSec; got < 99.9 || got > 100.1 {
		t.Fatalf("epoch ImgsPerSec = %g", got)
	}
	if e.AvgLoss != 3.5 {
		t.Fatalf("epoch AvgLoss = %g, want 3.5", e.AvgLoss)
	}
	// 4 of 6 steps done at 100ms/step → 2 steps ≈ 200ms remaining.
	if e.ETA < 190*time.Millisecond || e.ETA > 210*time.Millisecond {
		t.Fatalf("ETA = %v, want ≈200ms", e.ETA)
	}
	if want := 4.0 / 6.0; e.Done < want-1e-9 || e.Done > want+1e-9 {
		t.Fatalf("Done = %g, want %g", e.Done, want)
	}
}

// TestSummaryDrainsPendingCollectives: events observed after the last
// StepDone (the final evaluation's reductions) fold into the Summary
// instead of being lost.
func TestSummaryDrainsPendingCollectives(t *testing.T) {
	rec := NewRecorder()
	rec.BeginRun(RunInfo{GlobalBatch: 8})
	rec.StepDone(StepRecord{Step: 1, Wall: time.Millisecond, GlobalBatch: 8})
	rec.Collective(comm.Event{Bytes: 16, Elapsed: time.Microsecond}) // final eval's
	s := rec.Summary()
	if s.Collectives.Count != 1 || s.Collectives.Bytes != 16 {
		t.Fatalf("pending collective lost: %+v", s.Collectives)
	}
}

// TestBeginRunResetsSummary: each Run of a multi-Run session reports its own
// numbers, and stale collective events never leak into the next run's first
// step.
func TestBeginRunResetsSummary(t *testing.T) {
	var steps []StepRecord
	rec := NewRecorder(SinkFuncs{StepFn: func(r StepRecord) { steps = append(steps, r) }})
	rec.BeginRun(RunInfo{GlobalBatch: 8})
	rec.Collective(comm.Event{Bytes: 100, Elapsed: time.Microsecond})
	rec.StepDone(StepRecord{Step: 1, Wall: time.Millisecond, GlobalBatch: 8})
	rec.Collective(comm.Event{Bytes: 50, Elapsed: time.Microsecond}) // post-step eval
	_ = rec.Summary()

	rec.BeginRun(RunInfo{GlobalBatch: 8})
	rec.Collective(comm.Event{Bytes: 7, Elapsed: time.Microsecond})
	rec.StepDone(StepRecord{Step: 2, Wall: time.Millisecond, GlobalBatch: 8})
	s := rec.Summary()
	if s.Steps != 1 || s.Images != 8 {
		t.Fatalf("second run summary carries first run's steps: %+v", s)
	}
	if s.Collectives.Count != 1 || s.Collectives.Bytes != 7 {
		t.Fatalf("second run inherited stale collectives: %+v", s.Collectives)
	}
	if got := steps[1].Collectives.Bytes; got != 7 {
		t.Fatalf("second run's first step attributed %d bytes, want 7", got)
	}
}

// TestMergeSamples: phases take the max across replicas (critical path),
// starvation sums.
func TestMergeSamples(t *testing.T) {
	var a, b StepSample
	t0 := time.Now().Add(-10 * time.Millisecond)
	a.Add(PhaseForward, t0)
	b.Add(PhaseBackward, t0)
	a.AddStarved(1)
	b.AddStarved(2)
	phases, starved := MergeSamples([]StepSample{a, b})
	if phases[PhaseForward] < 10*time.Millisecond || phases[PhaseBackward] < 10*time.Millisecond {
		t.Fatalf("merged phases = %v", phases)
	}
	if starved != 3 {
		t.Fatalf("merged starved = %d, want 3", starved)
	}
}

// TestJSONLSink checks line shape, kind tagging and the run label.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.Label = "cellA"
	var r StepRecord
	r.Step, r.Wall, r.GlobalBatch = 1, time.Second, 100
	r.Phases[PhaseForward] = 600 * time.Millisecond
	sink.Step(r)
	sink.Eval(EvalRecord{Step: 1, Accuracy: 0.75, Wall: time.Millisecond})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var step map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &step); err != nil {
		t.Fatal(err)
	}
	if step["kind"] != "step" || step["run"] != "cellA" {
		t.Fatalf("step line = %v", step)
	}
	if step["imgs_per_s"].(float64) != 100 {
		t.Fatalf("imgs_per_s = %v", step["imgs_per_s"])
	}
	phases := step["phases_ms"].(map[string]any)
	if phases["forward"].(float64) != 600 {
		t.Fatalf("forward ms = %v", phases["forward"])
	}
	var eval map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &eval); err != nil {
		t.Fatal(err)
	}
	if eval["kind"] != "eval" || eval["accuracy"].(float64) != 0.75 {
		t.Fatalf("eval line = %v", eval)
	}
}

// TestCSVSink checks the header and one row.
func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	var r StepRecord
	r.Step, r.Epoch, r.Wall, r.GlobalBatch = 3, 1.5, 10*time.Millisecond, 20
	sink.Step(r)
	sink.Eval(EvalRecord{}) // not step-shaped: skipped
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header+row: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "step,epoch,wall_ms,data_wait_ms,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "3,1.5000,10.000") {
		t.Fatalf("row = %q", lines[1])
	}
}

// TestPhaseString pins the sink field names.
func TestPhaseString(t *testing.T) {
	want := []string{"data_wait", "forward", "backward", "reduce", "reduce_tail", "mp_exchange", "optimizer"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != want[p] {
			t.Fatalf("Phase(%d) = %q, want %q", p, p.String(), want[p])
		}
	}
	if Phase(99).String() != "unknown" {
		t.Fatalf("out-of-range phase = %q", Phase(99).String())
	}
}
