package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestTopK(t *testing.T) {
	logits := []float32{
		0.1, 0.5, 0.3, 0.1, // argmax 1: top-1 and top-2 hit
		0.9, 0.01, 0.05, 0.03, // argmax 0, runner-up 2: label 1 misses both
		0.2, 0.3, 0.4, 0.1, // argmax 2, runner-up 1: top-2 hit only
	}
	labels := []int{1, 1, 1}
	top1, top2 := TopK(logits, 3, 4, 2, labels)
	if top1 != 1 {
		t.Fatalf("top1 = %d, want 1", top1)
	}
	if top2 != 2 { // rows 0 and 2 contain label 1 in top-2
		t.Fatalf("top2 = %d, want 2", top2)
	}
}

func TestTopKAllCorrect(t *testing.T) {
	logits := []float32{1, 0, 0, 1}
	top1, top1b := TopK(logits, 2, 2, 1, []int{0, 1})
	if top1 != 2 || top1b != 2 {
		t.Fatalf("TopK = %d,%d, want 2,2", top1, top1b)
	}
}

// referenceTopK is the straightforward sort-based implementation (stable,
// earlier index wins ties) the scan-based TopK must agree with.
func referenceTopK(logits []float32, rows, cols, k int, labels []int) (top1, topk int) {
	for r := 0; r < rows; r++ {
		row := logits[r*cols : (r+1)*cols]
		order := make([]int, cols)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
		if order[0] == labels[r] {
			top1++
		}
		for i := 0; i < k && i < cols; i++ {
			if order[i] == labels[r] {
				topk++
				break
			}
		}
	}
	return top1, topk
}

func TestTopKMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		rows, cols, k := 1+rng.Intn(8), 2+rng.Intn(40), 1+rng.Intn(6)
		logits := make([]float32, rows*cols)
		labels := make([]int, rows)
		for i := range logits {
			// Coarse quantization forces plenty of exact ties.
			logits[i] = float32(rng.Intn(5))
		}
		for i := range labels {
			labels[i] = rng.Intn(cols)
		}
		t1, tk := TopK(logits, rows, cols, k, labels)
		r1, rk := referenceTopK(logits, rows, cols, k, labels)
		if t1 != r1 || tk != rk {
			t.Fatalf("trial %d (rows=%d cols=%d k=%d): TopK=(%d,%d), reference=(%d,%d)",
				trial, rows, cols, k, t1, tk, r1, rk)
		}
	}
}

func TestEMA(t *testing.T) {
	e := &EMA{Decay: 0.5}
	if e.Value() != 0 {
		t.Fatal("initial EMA must be 0")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10 (seeded)", got)
	}
	if got := e.Update(0); got != 5 {
		t.Fatalf("second update = %v, want 5", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table 1: test", "Model", "Cores", "Value")
	tab.AddRow("b2", 128, 57.57)
	tab.AddRow("b5", 1024, 9.7600)
	out := tab.String()
	if !strings.Contains(out, "Table 1: test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "57.57") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if strings.Contains(out, "9.7600") {
		t.Fatalf("trailing zeros not trimmed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1, 2.5)
	csv := tab.CSV()
	want := "a,b\n1,2.5\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	if len(tab.Rows()) != 1 {
		t.Fatal("Rows() wrong")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.0:    "1",
		0.801:  "0.801",
		2.8100: "2.81",
		0.0:    "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
