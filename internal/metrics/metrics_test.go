package metrics

import (
	"strings"
	"testing"
)

func TestTopK(t *testing.T) {
	logits := []float32{
		0.1, 0.5, 0.3, 0.1, // argmax 1: top-1 and top-2 hit
		0.9, 0.01, 0.05, 0.03, // argmax 0, runner-up 2: label 1 misses both
		0.2, 0.3, 0.4, 0.1, // argmax 2, runner-up 1: top-2 hit only
	}
	labels := []int{1, 1, 1}
	top1, top2 := TopK(logits, 3, 4, 2, labels)
	if top1 != 1 {
		t.Fatalf("top1 = %d, want 1", top1)
	}
	if top2 != 2 { // rows 0 and 2 contain label 1 in top-2
		t.Fatalf("top2 = %d, want 2", top2)
	}
}

func TestTopKAllCorrect(t *testing.T) {
	logits := []float32{1, 0, 0, 1}
	top1, top1b := TopK(logits, 2, 2, 1, []int{0, 1})
	if top1 != 2 || top1b != 2 {
		t.Fatalf("TopK = %d,%d, want 2,2", top1, top1b)
	}
}

func TestEMA(t *testing.T) {
	e := &EMA{Decay: 0.5}
	if e.Value() != 0 {
		t.Fatal("initial EMA must be 0")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10 (seeded)", got)
	}
	if got := e.Update(0); got != 5 {
		t.Fatalf("second update = %v, want 5", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table 1: test", "Model", "Cores", "Value")
	tab.AddRow("b2", 128, 57.57)
	tab.AddRow("b5", 1024, 9.7600)
	out := tab.String()
	if !strings.Contains(out, "Table 1: test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "57.57") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if strings.Contains(out, "9.7600") {
		t.Fatalf("trailing zeros not trimmed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1, 2.5)
	csv := tab.CSV()
	want := "a,b\n1,2.5\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	if len(tab.Rows()) != 1 {
		t.Fatal("Rows() wrong")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.0:    "1",
		0.801:  "0.801",
		2.8100: "2.81",
		0.0:    "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
