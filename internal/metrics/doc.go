// Package metrics provides accuracy measures, moving averages and the
// plain-text table renderer used to print the reproduced paper tables in
// the same shape as the originals.
//
// Seams: TopK is the allocation-free top-1/top-k scorer over logit batches
// (a rank-counting scan with deterministic tie-breaks — see BenchmarkTopK);
// Table/NewTable render the aligned-text and CSV artifacts podbench and the
// benchmark harness emit.
//
// Paper: the evaluation artifacts — Table 1, Table 2, Figure 1 — are
// printed through this package.
package metrics
