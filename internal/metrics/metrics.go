package metrics

import (
	"fmt"
	"strings"
)

// TopK returns the top-1 and top-k hit counts for a batch of logit rows
// against integer labels.
//
// Only the label's rank matters, not a full ordering, so each row is a
// single allocation-free O(cols) scan counting how many entries outrank the
// label (strictly greater value, or equal value at an earlier index — a
// deterministic tie-break where the old full sort's was arbitrary). The
// previous implementation allocated a value-index pair per logit and sorted
// all of them, O(cols log cols) with ~3 allocations per row — at ImageNet
// scale, a 1000-element sort per image just to test membership in the top 5.
func TopK(logits []float32, rows, cols, k int, labels []int) (top1, topk int) {
	if len(labels) < rows {
		panic("metrics: not enough labels")
	}
	for r := 0; r < rows; r++ {
		row := logits[r*cols : (r+1)*cols]
		label := labels[r]
		lv := row[label]
		rank := 0
		for i, v := range row {
			if v > lv || (v == lv && i < label) {
				rank++
				if rank >= k {
					break
				}
			}
		}
		if rank == 0 {
			top1++
		}
		if rank < k {
			topk++
		}
	}
	return top1, topk
}

// EMA is an exponential moving average.
type EMA struct {
	Decay float64
	val   float64
	init  bool
}

// Update folds x into the average and returns the new value.
func (e *EMA) Update(x float64) float64 {
	if !e.init {
		e.val = x
		e.init = true
	} else {
		e.val = e.Decay*e.val + (1-e.Decay)*x
	}
	return e.val
}

// Value returns the current average (0 before any update).
func (e *EMA) Value() float64 { return e.val }

// Table renders aligned plain-text tables in the visual shape of the
// paper's Tables 1 and 2.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v semantics.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Rows returns the formatted cell matrix (for tests and CSV export).
func (t *Table) Rows() [][]string { return t.rows }

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
