package replica

import (
	"testing"

	"effnetscale/internal/schedule"
)

func TestEngineFullyDeterministic(t *testing.T) {
	// Two engines built from the same config must produce bitwise-identical
	// training trajectories — the reproducibility contract that makes
	// paper-style benchmarking meaningful.
	mk := func() *Engine {
		cfg := miniEngineConfig(4, 4, 4)
		cfg.OptimizerName = "lars"
		cfg.Schedule = schedule.Warmup{Epochs: 1, Inner: schedule.Constant(5)}
		cfg.NoAugment = false // augmentation must be deterministic too
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	for i := 0; i < 4; i++ {
		ra := mustStep(t, a)
		rb := mustStep(t, b)
		if ra.Loss != rb.Loss || ra.Accuracy != rb.Accuracy {
			t.Fatalf("step %d: runs diverged (loss %v vs %v, acc %v vs %v)", i, ra.Loss, rb.Loss, ra.Accuracy, rb.Accuracy)
		}
	}
	ap := a.Replica(0).Model.Params()
	bp := b.Replica(0).Model.Params()
	for i := range ap {
		for j := range ap[i].Data().Data() {
			if ap[i].Data().Data()[j] != bp[i].Data().Data()[j] {
				t.Fatalf("weights diverged at %s[%d]", ap[i].Name, j)
			}
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	cfg1 := miniEngineConfig(2, 4, 1)
	cfg2 := miniEngineConfig(2, 4, 1)
	cfg2.Seed = 99
	a, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := mustStep(t, a), mustStep(t, b)
	if ra.Loss == rb.Loss {
		t.Fatal("different seeds produced identical losses (suspicious)")
	}
}

func TestBNMomentumOverrideApplied(t *testing.T) {
	cfg := miniEngineConfig(2, 4, 1)
	cfg.BNMomentum = 0.42
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, bn := range e.Replica(0).Model.BatchNorms() {
		if bn.Momentum != 0.42 {
			t.Fatalf("BN momentum = %v, want 0.42", bn.Momentum)
		}
	}
	// Zero value keeps the library default.
	cfg2 := miniEngineConfig(2, 4, 1)
	e2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Replica(0).Model.BatchNorms()[0].Momentum; got != 0.99 {
		t.Fatalf("default BN momentum = %v, want 0.99", got)
	}
}
