package replica

import (
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
)

// newTelemetryEngine builds a small multi-replica engine with grad
// accumulation, distributed BN and small buckets — every instrumented path
// lit up at once (and raced over by `go test -race`).
func newTelemetryEngine(t *testing.T, rec *telemetry.Recorder, prefetch int, tweaks ...func(*Config)) *Engine {
	t.Helper()
	ds := data.New(data.MiniConfig(4, 256, 16))
	cfg := Config{
		World:           4,
		PerReplicaBatch: 2,
		Model:           "pico",
		Dataset:         ds,
		OptimizerName:   "sgd",
		Schedule:        schedule.Constant(0.05),
		BNGroupSize:     2,
		Precision:       bf16.FP32Policy,
		Seed:            1,
		GradAccumSteps:  2,
		GradBucketBytes: 32 << 10,
		Collective:      comm.TreeProvider(),
		PrefetchDepth:   prefetch,
		Telemetry:       rec,
	}
	for _, tw := range tweaks {
		tw(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestEngineTelemetry steps an instrumented engine and checks the recorded
// step stream: phase coverage, collective accounting from the instrumented
// collectives, and agreement with the engine's own metrics.
func TestEngineTelemetry(t *testing.T) {
	var steps []telemetry.StepRecord
	rec := telemetry.NewRecorder(telemetry.SinkFuncs{
		StepFn: func(r telemetry.StepRecord) { steps = append(steps, r) },
	})
	eng := newTelemetryEngine(t, rec, 0)

	const n = 3
	var results []StepResult
	for i := 0; i < n; i++ {
		results = append(results, mustStep(t, eng))
	}
	if len(steps) != n {
		t.Fatalf("recorded %d steps, want %d", len(steps), n)
	}
	for i, r := range steps {
		if r.Step != i+1 {
			t.Fatalf("step %d numbered %d", i, r.Step)
		}
		if r.Wall <= 0 {
			t.Fatalf("step %d wall = %v", i, r.Wall)
		}
		if r.GlobalBatch != eng.GlobalBatch() {
			t.Fatalf("step %d global batch = %d, want %d", i, r.GlobalBatch, eng.GlobalBatch())
		}
		if r.Loss != results[i].Loss || r.Accuracy != results[i].Accuracy || r.LR != results[i].LR {
			t.Fatalf("step %d metrics diverge from StepResult: %+v vs %+v", i, r, results[i])
		}
		// Compute phases must have been timed on every step.
		for _, p := range []telemetry.Phase{telemetry.PhaseForward, telemetry.PhaseBackward, telemetry.PhaseReduce, telemetry.PhaseOptimizer} {
			if r.Phases[p] <= 0 {
				t.Fatalf("step %d phase %s = %v, want > 0", i, p, r.Phases[p])
			}
		}
		// World 4 with ~290KB of gradients in 32KiB buckets: the gradient
		// stream alone is many collectives; BN groups and metrics add more.
		if r.Collectives.Count < 10 {
			t.Fatalf("step %d observed %d collectives", i, r.Collectives.Count)
		}
		if r.Collectives.Bytes <= 0 || r.Collectives.Busy <= 0 {
			t.Fatalf("step %d collective totals = %+v", i, r.Collectives)
		}
		if eff := r.OverlapEfficiency(); eff < 0 || eff > 1 {
			t.Fatalf("step %d overlap efficiency %g out of [0,1]", i, eff)
		}
	}
	sum := rec.Summary()
	if sum.Steps != n || sum.Images != int64(n*eng.GlobalBatch()) {
		t.Fatalf("summary = %d steps / %d images", sum.Steps, sum.Images)
	}
}

// TestEngineTelemetryPrefetchMatchesInline verifies instrumentation is
// observation only: with and without telemetry, with and without prefetch,
// and with the in-backward overlap disabled, the training trajectory is
// bit-for-bit identical.
func TestEngineTelemetryPrefetchMatchesInline(t *testing.T) {
	plain := newTelemetryEngine(t, nil, PrefetchOff)
	instr := newTelemetryEngine(t, telemetry.NewRecorder(), 2)
	serial := newTelemetryEngine(t, telemetry.NewRecorder(), 2, func(c *Config) { c.NoBackwardOverlap = true })
	for i := 0; i < 3; i++ {
		a, b, c := mustStep(t, plain), mustStep(t, instr), mustStep(t, serial)
		if a.Loss != b.Loss || a.Accuracy != b.Accuracy {
			t.Fatalf("step %d: instrumented trajectory diverged: %+v vs %+v", i, a, b)
		}
		if a.Loss != c.Loss || a.Accuracy != c.Accuracy {
			t.Fatalf("step %d: serialized-reduction trajectory diverged: %+v vs %+v", i, a, c)
		}
	}
	if sync := instr.WeightsInSync(); sync != "" {
		t.Fatalf("instrumented replicas out of sync at %s", sync)
	}
	for i, p := range plain.Replica(0).Model.Params() {
		q := instr.Replica(0).Model.Params()[i]
		r := serial.Replica(0).Model.Params()[i]
		ad, bd, cd := p.Data().Data(), q.Data().Data(), r.Data().Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("weights diverge at %s[%d]", p.Name, j)
			}
			if ad[j] != cd[j] {
				t.Fatalf("serialized weights diverge at %s[%d]", p.Name, j)
			}
		}
	}
}

// TestEngineTelemetryEvaluate checks instrumented evaluation still reduces
// correctly (the eval collectives flow through the same instrumented
// endpoints).
func TestEngineTelemetryEvaluate(t *testing.T) {
	rec := telemetry.NewRecorder()
	eng := newTelemetryEngine(t, rec, 2)
	eng.Step()
	acc := mustEval(t, eng, 16)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %g out of range", acc)
	}
}
