package replica

import (
	"math"
	"strings"
	"testing"

	"effnetscale/internal/comm"
	"effnetscale/internal/topology"
)

func TestBucketedOverlapKeepsReplicasInSync(t *testing.T) {
	// Tiny buckets force the grad-ready dispatch through many overlapped
	// collectives per step; the core SPMD invariant — bitwise identical
	// weights on every replica — must survive.
	cfg := miniEngineConfig(4, 2, 2)
	cfg.GradBucketBytes = 256 // 64 floats per bucket: hundreds of buckets
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.buckets) < 10 {
		t.Fatalf("expected many buckets at 256 bytes, got %d", len(e.buckets))
	}
	for i := 0; i < 3; i++ {
		res := mustStep(t, e)
		if math.IsNaN(res.Loss) {
			t.Fatalf("step %d: loss is NaN", i)
		}
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged under bucketed overlapped reduction: %s", d)
	}
}

func TestBucketedMatchesUnbucketedWithinTolerance(t *testing.T) {
	// Bucketing changes the ring chunking (hence float summation order) but
	// nothing else: a bucketed run and a one-big-bucket run must track each
	// other closely.
	small := miniEngineConfig(2, 4, 1)
	small.GradBucketBytes = 512
	big := miniEngineConfig(2, 4, 1)
	big.GradBucketBytes = 1 << 30 // one bucket
	a, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.buckets) != 1 {
		t.Fatalf("expected a single bucket, got %d", len(b.buckets))
	}
	for i := 0; i < 2; i++ {
		ra, rb := mustStep(t, a), mustStep(t, b)
		if math.Abs(ra.Loss-rb.Loss) > 1e-3*(1+math.Abs(rb.Loss)) {
			t.Fatalf("step %d: bucketed loss %v vs unbucketed %v", i, ra.Loss, rb.Loss)
		}
	}
}

func TestGradBucketSpansCoverGradient(t *testing.T) {
	for _, tc := range []struct{ gradLen, bytes, want int }{
		{100, 4, 100},   // one float per bucket
		{100, 400, 1},   // exactly one bucket
		{100, 256, 2},   // 64 + 36
		{1, 1 << 20, 1}, // tiny model, default bucket
		{1000, 1024, 4}, // 256-float buckets, ragged tail
	} {
		spans := gradBuckets(tc.gradLen, tc.bytes)
		if len(spans) != tc.want {
			t.Fatalf("gradBuckets(%d, %d) = %d spans, want %d", tc.gradLen, tc.bytes, len(spans), tc.want)
		}
		prev := 0
		for _, s := range spans {
			if s[0] != prev || s[1] <= s[0] {
				t.Fatalf("gradBuckets(%d, %d): bad span %v after %d", tc.gradLen, tc.bytes, s, prev)
			}
			prev = s[1]
		}
		if prev != tc.gradLen {
			t.Fatalf("gradBuckets(%d, %d) covers %d floats", tc.gradLen, tc.bytes, prev)
		}
	}
}

func TestEngineWithTorus2DCollective(t *testing.T) {
	// The hierarchical 2-D algorithm running real training — not just the
	// analytic model: 4 replicas on a 2x2 rank grid, distributed BN, small
	// buckets, loss must fall and replicas must stay bitwise in sync.
	cfg := miniEngineConfig(4, 4, 2)
	cfg.Collective = comm.Torus2DProvider(topology.Slice{Rows: 2, Cols: 2})
	cfg.GradBucketBytes = 1024
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Algorithm(); got != "torus2d(2x2)" {
		t.Fatalf("Algorithm() = %q, want torus2d(2x2)", got)
	}
	first := mustStep(t, e)
	var last StepResult
	for i := 0; i < 7; i++ {
		last = mustStep(t, e)
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged under torus2d: %s", d)
	}
	if math.IsNaN(last.Loss) || last.Loss >= first.Loss*1.5 {
		t.Fatalf("torus2d training went wrong: loss %v -> %v", first.Loss, last.Loss)
	}
	if acc := mustEval(t, e, 16); acc < 0 || acc > 1 {
		t.Fatalf("eval accuracy %v out of range", acc)
	}
}

func TestEngineWithTreeAndAutoCollectives(t *testing.T) {
	for _, tc := range []struct {
		prov comm.Provider
		algo string
	}{
		{comm.TreeProvider(), "tree"},
		{comm.AutoProvider(topology.Slice{Rows: 2, Cols: 2}), "auto["},
	} {
		cfg := miniEngineConfig(4, 2, 4)
		cfg.Collective = tc.prov
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.prov.Name(), err)
		}
		if got := e.Algorithm(); !strings.HasPrefix(got, tc.algo) {
			t.Fatalf("%s: Algorithm() = %q, want prefix %q", tc.prov.Name(), got, tc.algo)
		}
		for i := 0; i < 2; i++ {
			e.Step()
		}
		if d := e.WeightsInSync(); d != "" {
			t.Fatalf("replicas diverged under %s: %s", tc.prov.Name(), d)
		}
	}
}

func TestCollectiveChoiceDoesNotChangeResults(t *testing.T) {
	// Every algorithm computes the same sum in a different order; training
	// trajectories must agree within float tolerance across collectives.
	losses := map[string]float64{}
	for _, prov := range []comm.Provider{
		comm.RingProvider(),
		comm.TreeProvider(),
		comm.Torus2DProvider(topology.Slice{Rows: 2, Cols: 2}),
	} {
		cfg := miniEngineConfig(4, 2, 1)
		cfg.Collective = prov
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last StepResult
		for i := 0; i < 2; i++ {
			last = mustStep(t, e)
		}
		losses[prov.Name()] = last.Loss
	}
	ring := losses["ring"]
	for name, l := range losses {
		if math.Abs(l-ring) > 1e-3*(1+math.Abs(ring)) {
			t.Fatalf("%s loss %v far from ring loss %v", name, l, ring)
		}
	}
}

func TestBucketValidation(t *testing.T) {
	cfg := miniEngineConfig(2, 2, 1)
	cfg.GradBucketBytes = 2 // less than one fp32
	if _, err := New(cfg); err == nil {
		t.Fatal("sub-float bucket size must error")
	}
}
