package replica

import (
	"math"
	"testing"

	"effnetscale/internal/schedule"
)

func TestGradAccumEffectiveBatch(t *testing.T) {
	cfg := miniEngineConfig(2, 4, 1)
	cfg.GradAccumSteps = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.GlobalBatch() != 32 { // 2 × 4 × 4
		t.Fatalf("GlobalBatch = %d, want 32", e.GlobalBatch())
	}
	if e.StepsPerEpoch() != 8 { // 256 / 32
		t.Fatalf("StepsPerEpoch = %d, want 8", e.StepsPerEpoch())
	}
}

func TestGradAccumStaysInSyncAndLearns(t *testing.T) {
	cfg := miniEngineConfig(2, 4, 2)
	cfg.GradAccumSteps = 2
	cfg.Schedule = schedule.Constant(0.1)
	cfg.BNMomentum = 0.9
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := mustStep(t, e)
	var last StepResult
	for i := 0; i < 3*e.StepsPerEpoch(); i++ {
		last = mustStep(t, e)
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged with grad accumulation: %s", d)
	}
	if last.Loss >= first.Loss {
		t.Fatalf("loss did not improve with accumulation: %v -> %v", first.Loss, last.Loss)
	}
	if last.Accuracy < 0.5 {
		t.Fatalf("accumulated training accuracy %.3f too low", last.Accuracy)
	}
}

func TestGradAccumMatchesLargerBatchGradient(t *testing.T) {
	// With BN disabled from the comparison (local stats per micro-batch
	// differ), the *first optimizer update direction* of K=2 accumulation
	// over batch 8 should closely track a single batch-16 step — same
	// samples, same mean gradient up to BN statistics differences. We only
	// check the loss stays in the same regime after one step.
	accum := miniEngineConfig(1, 8, 1)
	accum.GradAccumSteps = 2
	accum.Schedule = schedule.Constant(0.05)
	ea, err := New(accum)
	if err != nil {
		t.Fatal(err)
	}
	big := miniEngineConfig(1, 16, 1)
	big.Schedule = schedule.Constant(0.05)
	eb, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	ra := mustStep(t, ea)
	rb := mustStep(t, eb)
	// Same 16 samples in both cases; losses must be near-identical (they
	// differ only via BN batch statistics).
	if math.Abs(ra.Loss-rb.Loss) > 0.05*(1+rb.Loss) {
		t.Fatalf("accumulated loss %v far from large-batch loss %v", ra.Loss, rb.Loss)
	}
}

func TestEMAEvaluationPath(t *testing.T) {
	cfg := miniEngineConfig(2, 8, 2)
	cfg.EMADecay = 0.9
	cfg.BNMomentum = 0.9
	cfg.Schedule = schedule.Constant(0.1)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*e.StepsPerEpoch(); i++ {
		e.Step()
	}
	// Evaluation must not corrupt the live weights (swap must restore).
	before := e.Replica(0).Model.Params()[0].Data().Clone()
	acc := mustEval(t, e, 16)
	after := e.Replica(0).Model.Params()[0].Data()
	for i := range before.Data() {
		if before.Data()[i] != after.Data()[i] {
			t.Fatal("EMA evaluation corrupted live weights")
		}
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("EMA eval accuracy %v out of range", acc)
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged with EMA: %s", d)
	}
}
