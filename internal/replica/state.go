package replica

import (
	"fmt"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/mesh"
)

// This file composes the full training-state snapshot: the model weights and
// BN statistics, optimizer slots, EMA shadow, step position, and every
// replica's private state (BN group statistics diverge across groups; RNG
// streams diverge per rank). A snapshot captured at a step boundary and
// restored into an engine built from the same configuration continues the
// training trajectory bit-for-bit — the correctness contract the resume
// tests enforce.
//
// Synchronous data parallelism keeps weights, optimizer slots and the EMA
// shadow bitwise identical across replicas (the WeightsInSync invariant), so
// those are captured once from rank 0 and restored into every rank; only BN
// running statistics and RNG cursors are captured per replica.

// Snapshot component keys owned by the engine. "model" is owned by the
// checkpoint.ModelState codec; callers (the train package) may add further
// components — "engine", "model", "optim", "ema" and "replica/<r>" are
// reserved.
const (
	engineComponent  = "engine"
	optimComponent   = "optim"
	emaComponent     = "ema"
	replicaComponent = "replica/%d"
)

// StateComponents returns the component keys a snapshot of this engine
// carries — what RestoreState requires and strict callers check against.
func (e *Engine) StateComponents() []string {
	keys := []string{engineComponent, "model", optimComponent}
	if e.cfg.EMADecay > 0 {
		keys = append(keys, emaComponent)
	}
	for r := range e.replicas {
		keys = append(keys, fmt.Sprintf(replicaComponent, r))
	}
	return keys
}

// ConfigFingerprint renders every configuration field that shapes the
// training trajectory bit-for-bit: the data order (seed, dataset, world,
// batch geometry), the arithmetic (model, optimizer, precision, smoothing,
// BN setup, regularization), and the reduction order (collective algorithm,
// gradient bucket size). A snapshot restores only into an engine with an
// identical fingerprint; trajectory-neutral knobs (prefetch depth, eval
// strategy and cadence) are deliberately excluded. The LR schedule is a
// function and cannot be fingerprinted — resuming with a different schedule
// is the caller's responsibility (the train package rebuilds it from the
// same options).
func (e *Engine) ConfigFingerprint() string {
	c := e.cfg
	d := c.Dataset.Config()
	fp := fmt.Sprintf(
		"model=%s world=%d batch=%d accum=%d opt=%s wd=%g bngroup=%d slice=%dx%d conv_bf16=%t smooth=%g seed=%d dropout=%g dropconnect=%g augment=%t bnmomentum=%g ema=%g collective=%s bucket=%d data[classes=%d train=%d val=%d res=%d noise=%g seed=%d]",
		c.Model, c.World, c.PerReplicaBatch, c.GradAccumSteps, c.OptimizerName, c.WeightDecay,
		c.BNGroupSize, c.Slice.Rows, c.Slice.Cols, c.Precision.ConvBF16, c.LabelSmoothing, c.Seed,
		c.DropoutOverride, c.DropConnectOverride, !c.NoAugment, c.BNMomentum, c.EMADecay,
		e.replicas[0].coll.Algorithm(), c.GradBucketBytes,
		d.NumClasses, d.TrainSize, d.ValSize, d.Resolution, d.NoiseStd, d.Seed,
	)
	// A hybrid mesh changes the data shard layout and reduction order. Pure
	// data parallelism (Model = 1) omits the suffix so snapshots taken before
	// the mesh existed keep restoring.
	if c.Mesh.Model > 1 {
		fp += " mesh=" + c.Mesh.String()
	}
	return fp
}

// CaptureState snapshots the engine's complete training state. Call it at a
// step boundary (between Step calls — e.g. from a training-loop hook); the
// returned snapshot deep-copies everything, so it may be handed to an async
// writer while training continues.
func (e *Engine) CaptureState() (*checkpoint.Snapshot, error) {
	snap := checkpoint.NewSnapshot()

	eng := checkpoint.Component{}
	eng.PutI64("step", int64(e.stepCount))
	eng.PutStr("config", e.ConfigFingerprint())
	eng.PutStr("mesh", e.cfg.Mesh.String())
	if err := snap.Add(engineComponent, eng); err != nil {
		return nil, err
	}

	r0 := e.replicas[0]
	if err := snap.Capture(checkpoint.ModelState(r0.Model)); err != nil {
		return nil, err
	}
	oc, err := r0.opt.CaptureState(r0.Model.Params())
	if err != nil {
		return nil, fmt.Errorf("replica: capture optimizer: %w", err)
	}
	if err := snap.Add(optimComponent, oc); err != nil {
		return nil, err
	}
	if r0.ema != nil {
		ec, err := r0.ema.CaptureState(r0.Model.Params())
		if err != nil {
			return nil, fmt.Errorf("replica: capture EMA: %w", err)
		}
		if err := snap.Add(emaComponent, ec); err != nil {
			return nil, err
		}
	}
	for r, rep := range e.replicas {
		rc := checkpoint.Component{}
		for i, bn := range rep.Model.BatchNorms() {
			rc.PutF32(fmt.Sprintf("bn/%d/mean", i), bn.RunningMean.Shape(), bn.RunningMean.Data())
			rc.PutF32(fmt.Sprintf("bn/%d/var", i), bn.RunningVar.Shape(), bn.RunningVar.Data())
		}
		rc.PutI64("augdraws", int64(rep.augPosition()))
		rc.PutI64("ctxdraws", int64(rep.ctxStream.Draws()))
		if err := snap.Add(fmt.Sprintf(replicaComponent, r), rc); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

// RestoreState overwrites the engine's entire training state from a
// snapshot: weights, BN statistics (per replica), optimizer slots, EMA
// shadow, RNG stream positions, step count, and the input-pipeline cursors
// (pipelines are restarted at the restored position). The snapshot must come
// from an engine with an identical ConfigFingerprint; every component the
// engine expects must be present and internally valid. On error the engine
// may be left partially restored — rebuild it rather than training on.
func (e *Engine) RestoreState(snap *checkpoint.Snapshot) error {
	eng, err := snap.Component(engineComponent)
	if err != nil {
		return err
	}
	savedCfg, err := eng.Str("config")
	if err != nil {
		return err
	}
	// Check the mesh shape before the generic fingerprint diff when a hybrid
	// layout is involved on either side: re-gridding the same ranks (say a
	// 2x2 run resumed as 4x1) deserves a message naming the two shapes, not a
	// wall of fingerprint text. Pure data-parallel world changes (4x1 vs 2x1)
	// keep the configuration error, and snapshots written before the mesh
	// existed carry no "mesh" key — those restore only into pure
	// data-parallel engines, which the fingerprint already enforces.
	if savedMesh, merr := eng.Str("mesh"); merr == nil {
		if cur := e.cfg.Mesh.String(); savedMesh != cur {
			saved, perr := mesh.ParseShape(savedMesh)
			if perr == nil && (saved.Model > 1 || e.cfg.Mesh.Model > 1) {
				return fmt.Errorf(
					"replica: snapshot was taken on a %s mesh but the engine runs a %s mesh; training state is only portable across identical mesh shapes",
					savedMesh, cur)
			}
		}
	}
	if cur := e.ConfigFingerprint(); savedCfg != cur {
		return fmt.Errorf("replica: snapshot configuration does not match engine:\n  snapshot: %s\n  engine:   %s", savedCfg, cur)
	}
	step, err := eng.I64("step")
	if err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("replica: snapshot step %d is negative", step)
	}

	oc, err := snap.Component(optimComponent)
	if err != nil {
		return err
	}
	var ec checkpoint.Component
	if e.cfg.EMADecay > 0 {
		if ec, err = snap.Component(emaComponent); err != nil {
			return err
		}
	} else if _, ok := snap.Components[emaComponent]; ok {
		// Unreachable while EMA decay is part of the fingerprint, but kept:
		// restoring EMA state into an engine that never evaluates it would
		// silently change what "the model" means at eval time.
		return fmt.Errorf("replica: snapshot has EMA state but the engine runs without EMA")
	}

	for r, rep := range e.replicas {
		// Weights, optimizer slots and EMA shadow are replica-identical;
		// restore the same components into each rank's own storage.
		if err := snap.Restore(checkpoint.ModelState(rep.Model)); err != nil {
			return err
		}
		if err := rep.opt.RestoreState(rep.Model.Params(), oc); err != nil {
			return fmt.Errorf("replica: restore optimizer (rank %d): %w", r, err)
		}
		if ec != nil {
			if err := rep.ema.RestoreState(rep.Model.Params(), ec); err != nil {
				return fmt.Errorf("replica: restore EMA (rank %d): %w", r, err)
			}
		}

		rc, err := snap.Component(fmt.Sprintf(replicaComponent, r))
		if err != nil {
			return err
		}
		for i, bn := range rep.Model.BatchNorms() {
			mean, err := rc.F32(fmt.Sprintf("bn/%d/mean", i), bn.RunningMean.Shape())
			if err != nil {
				return fmt.Errorf("replica: rank %d: %w", r, err)
			}
			variance, err := rc.F32(fmt.Sprintf("bn/%d/var", i), bn.RunningVar.Shape())
			if err != nil {
				return fmt.Errorf("replica: rank %d: %w", r, err)
			}
			copy(bn.RunningMean.Data(), mean)
			copy(bn.RunningVar.Data(), variance)
		}
		augDraws, err := rc.I64("augdraws")
		if err != nil {
			return fmt.Errorf("replica: rank %d: %w", r, err)
		}
		ctxDraws, err := rc.I64("ctxdraws")
		if err != nil {
			return fmt.Errorf("replica: rank %d: %w", r, err)
		}
		if augDraws < 0 || ctxDraws < 0 {
			return fmt.Errorf("replica: rank %d: negative RNG cursor", r)
		}
		// RNG streams are seeded by the data-axis coordinate (model-group
		// members share a stream), matching the seeding New performs.
		rep.installRNGs(ctxSeed(e.cfg.Seed, rep.dataRank), uint64(ctxDraws), augSeed(e.cfg.Seed, rep.dataRank), uint64(augDraws))
		// Any running pipeline holds the pre-restore cursor; stop it and
		// let the next Step lazily start a fresh one at the restored
		// micro-batch position (ensurePipelines).
		if rep.pipe != nil {
			rep.pipe.Stop()
			rep.pipe = nil
		}
	}
	e.stepCount = int(step)
	e.pipesUp = false
	return nil
}
