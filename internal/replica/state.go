package replica

import (
	"fmt"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/mesh"
)

// This file composes the full training-state snapshot: the model weights and
// BN statistics, optimizer slots, EMA shadow, step position, and every
// replica's private state (BN group statistics diverge across groups; RNG
// streams diverge per rank). A snapshot captured at a step boundary and
// restored into an engine built from the same configuration continues the
// training trajectory bit-for-bit — the correctness contract the resume
// tests enforce.
//
// Synchronous data parallelism keeps weights, optimizer slots and the EMA
// shadow bitwise identical across replicas (the WeightsInSync invariant), so
// those are captured once from rank 0 and restored into every rank; only BN
// running statistics and RNG cursors are captured per replica.
//
// The configuration fingerprint is split in two. Trajectory fields pin what
// is being trained (model, optimizer, seed, data, the global batch);
// topology fields pin how the work is laid out across ranks (world size,
// per-replica batch, accumulation, BN groups, collective). A plain resume
// requires both to match bit-for-bit; an elastic resume (internal/elastic)
// validates only the trajectory and rewrites the topology — world-changed
// resume is statistically continuous, not bit-for-bit, because fp summation
// order and per-rank RNG streams move with the topology.

// Snapshot component keys owned by the engine. "model" is owned by the
// checkpoint.ModelState codec; callers (the train package) may add further
// components — "engine", "model", "optim", "ema" and "replica/<r>" are
// reserved.
const (
	engineComponent  = "engine"
	optimComponent   = "optim"
	emaComponent     = "ema"
	replicaComponent = "replica/%d"
)

// StateComponents returns the component keys a snapshot of this engine
// carries — what RestoreState requires and strict callers check against.
func (e *Engine) StateComponents() []string {
	keys := []string{engineComponent, "model", optimComponent}
	if e.cfg.EMADecay > 0 {
		keys = append(keys, emaComponent)
	}
	for r := range e.replicas {
		keys = append(keys, fmt.Sprintf(replicaComponent, r))
	}
	return keys
}

// ConfigFingerprint renders every configuration field that shapes the
// training trajectory bit-for-bit: the data order (seed, dataset, world,
// batch geometry), the arithmetic (model, optimizer, precision, smoothing,
// BN setup, regularization), and the reduction order (collective algorithm,
// gradient bucket size). A snapshot restores only into an engine with an
// identical fingerprint; trajectory-neutral knobs (prefetch depth, eval
// strategy and cadence) are deliberately excluded. The LR schedule is a
// function and cannot be fingerprinted — resuming with a different schedule
// is the caller's responsibility (the train package rebuilds it from the
// same options).
//
// This is the legacy single-string form, still written so snapshots restore
// on older binaries; new code validates TrajectoryFingerprint and
// TopologyFingerprint, whose union covers the same fields.
func (e *Engine) ConfigFingerprint() string {
	c := e.cfg
	d := c.Dataset.Config()
	fp := fmt.Sprintf(
		"model=%s world=%d batch=%d accum=%d opt=%s wd=%g bngroup=%d slice=%dx%d conv_bf16=%t smooth=%g seed=%d dropout=%g dropconnect=%g augment=%t bnmomentum=%g ema=%g collective=%s bucket=%d data[classes=%d train=%d val=%d res=%d noise=%g seed=%d]",
		c.Model, c.World, c.PerReplicaBatch, c.GradAccumSteps, c.OptimizerName, c.WeightDecay,
		c.BNGroupSize, c.Slice.Rows, c.Slice.Cols, c.Precision.ConvBF16, c.LabelSmoothing, c.Seed,
		c.DropoutOverride, c.DropConnectOverride, !c.NoAugment, c.BNMomentum, c.EMADecay,
		e.replicas[0].coll.Algorithm(), c.GradBucketBytes,
		d.NumClasses, d.TrainSize, d.ValSize, d.Resolution, d.NoiseStd, d.Seed,
	)
	// A hybrid mesh changes the data shard layout and reduction order. Pure
	// data parallelism (Model = 1) omits the suffix so snapshots taken before
	// the mesh existed keep restoring.
	if c.Mesh.Model > 1 {
		fp += " mesh=" + c.Mesh.String()
	}
	return fp
}

// TrajectoryFingerprint renders the configuration fields that pin the
// training trajectory independent of how it is partitioned across ranks:
// what model trains on what data with what arithmetic, at what global batch.
// The batch appears only as its world-independent product — the strided data
// shard maps global step s to the same sample set under any (world, batch,
// accum) factorization of the same global batch, which is what makes elastic
// resharding statistically sound. Two engines with equal trajectory
// fingerprints train the same trajectory up to fp summation order.
func (e *Engine) TrajectoryFingerprint() string {
	return e.trajectoryFP(e.GlobalBatch())
}

// trajectoryFP is TrajectoryFingerprint with the global batch injected —
// RestoreState uses it to ask "would the trajectories match if only the
// batch factorization differed?" when shaping the world-mismatch error.
func (e *Engine) trajectoryFP(globalBatch int) string {
	c := e.cfg
	d := c.Dataset.Config()
	return fmt.Sprintf(
		"model=%s globalbatch=%d opt=%s wd=%g conv_bf16=%t smooth=%g seed=%d dropout=%g dropconnect=%g augment=%t bnmomentum=%g ema=%g data[classes=%d train=%d val=%d res=%d noise=%g seed=%d]",
		c.Model, globalBatch, c.OptimizerName, c.WeightDecay,
		c.Precision.ConvBF16, c.LabelSmoothing, c.Seed,
		c.DropoutOverride, c.DropConnectOverride, !c.NoAugment, c.BNMomentum, c.EMADecay,
		d.NumClasses, d.TrainSize, d.ValSize, d.Resolution, d.NoiseStd, d.Seed,
	)
}

// TopologyFingerprint renders the configuration fields that pin how the
// trajectory is laid out across ranks: the batch factorization, BN grouping,
// and the reduction machinery (collective algorithm, bucket size, mesh).
// These fields change fp summation order and per-rank state partitioning but
// not the trajectory's statistics — exactly what elastic resharding is
// allowed to rewrite.
func (e *Engine) TopologyFingerprint() string {
	c := e.cfg
	return fmt.Sprintf(
		"world=%d batch=%d accum=%d bngroup=%d slice=%dx%d collective=%s bucket=%d mesh=%s",
		c.World, c.PerReplicaBatch, c.GradAccumSteps, c.BNGroupSize,
		c.Slice.Rows, c.Slice.Cols, e.replicas[0].coll.Algorithm(), c.GradBucketBytes, c.Mesh,
	)
}

// CaptureState snapshots the engine's complete training state. Call it at a
// step boundary (between Step calls — e.g. from a training-loop hook); the
// returned snapshot deep-copies everything, so it may be handed to an async
// writer while training continues.
func (e *Engine) CaptureState() (*checkpoint.Snapshot, error) {
	if e.failed != nil {
		return nil, e.errPoisoned()
	}
	snap := checkpoint.NewSnapshot()

	eng := checkpoint.Component{}
	eng.PutI64("step", int64(e.stepCount))
	eng.PutStr("config", e.ConfigFingerprint())
	eng.PutStr("mesh", e.cfg.Mesh.String())
	// The split fingerprint plus the raw geometry scalars: what elastic
	// resharding validates (trajectory), rewrites (topology, world, batch,
	// accum) and weights BN statistics by (trainsize → per-rank shard sizes).
	eng.PutStr("trajectory", e.TrajectoryFingerprint())
	eng.PutStr("topology", e.TopologyFingerprint())
	eng.PutI64("world", int64(e.cfg.World))
	eng.PutI64("batch", int64(e.cfg.PerReplicaBatch))
	eng.PutI64("accum", int64(e.cfg.GradAccumSteps))
	eng.PutI64("trainsize", int64(e.cfg.Dataset.Config().TrainSize))
	if err := snap.Add(engineComponent, eng); err != nil {
		return nil, err
	}

	r0 := e.replicas[0]
	if err := snap.Capture(checkpoint.ModelState(r0.Model)); err != nil {
		return nil, err
	}
	oc, err := r0.opt.CaptureState(r0.Model.Params())
	if err != nil {
		return nil, fmt.Errorf("replica: capture optimizer: %w", err)
	}
	if err := snap.Add(optimComponent, oc); err != nil {
		return nil, err
	}
	if r0.ema != nil {
		ec, err := r0.ema.CaptureState(r0.Model.Params())
		if err != nil {
			return nil, fmt.Errorf("replica: capture EMA: %w", err)
		}
		if err := snap.Add(emaComponent, ec); err != nil {
			return nil, err
		}
	}
	for r, rep := range e.replicas {
		rc := checkpoint.Component{}
		for i, bn := range rep.Model.BatchNorms() {
			rc.PutF32(fmt.Sprintf("bn/%d/mean", i), bn.RunningMean.Shape(), bn.RunningMean.Data())
			rc.PutF32(fmt.Sprintf("bn/%d/var", i), bn.RunningVar.Shape(), bn.RunningVar.Data())
		}
		rc.PutI64("augdraws", int64(rep.augPosition()))
		rc.PutI64("ctxdraws", int64(rep.ctxStream.Draws()))
		if err := snap.Add(fmt.Sprintf(replicaComponent, r), rc); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

// errPoisoned renders the descriptive error a poisoned engine returns from
// every training entry point.
func (e *Engine) errPoisoned() error {
	return fmt.Errorf("replica: engine unusable after a failed state restore (%v); build a fresh engine and restore again", e.failed)
}

// validateFingerprint checks the snapshot's configuration against the
// engine's before any state is touched. Three snapshot generations exist:
// legacy (single "config" string — full bit-for-bit equality), split
// ("trajectory" + "topology" — both must match, with a friendlier error when
// only the world size differs), and elastic-resharded ("elastic" marker —
// trajectory plus the rewritten geometry must match; the remaining topology
// fields are free to differ, since resharding already forfeits bit-for-bit
// continuity).
func (e *Engine) validateFingerprint(eng checkpoint.Component) error {
	savedTraj, trajErr := eng.Str("trajectory")
	if trajErr != nil {
		// Pre-split snapshot: the single-string comparison it was taken under.
		savedCfg, err := eng.Str("config")
		if err != nil {
			return err
		}
		if cur := e.ConfigFingerprint(); savedCfg != cur {
			return fmt.Errorf("replica: snapshot configuration does not match engine:\n  snapshot: %s\n  engine:   %s", savedCfg, cur)
		}
		return nil
	}

	if _, elastic := eng["elastic"]; elastic {
		// A resharded snapshot was rewritten for one specific target
		// geometry; the engine must be exactly that target. Trajectory
		// equality includes the preserved global batch.
		if savedTraj != e.TrajectoryFingerprint() {
			return fmt.Errorf("replica: resharded snapshot configuration does not match engine (trajectory fields):\n  snapshot: %s\n  engine:   %s", savedTraj, e.TrajectoryFingerprint())
		}
		for _, g := range []struct {
			key string
			cur int
		}{
			{"world", e.cfg.World},
			{"batch", e.cfg.PerReplicaBatch},
			{"accum", e.cfg.GradAccumSteps},
		} {
			v, err := eng.I64(g.key)
			if err != nil {
				return err
			}
			if int(v) != g.cur {
				return fmt.Errorf("replica: snapshot was resharded for %s=%d but the engine runs %s=%d", g.key, v, g.key, g.cur)
			}
		}
		return nil
	}

	// Friendly world-mismatch detection runs before the generic trajectory
	// diff: a pure data-parallel world change (same model, data, seed — only
	// the rank layout moved) deserves a message naming the two world sizes
	// and the escape hatch, not two walls of fingerprint text. Comparing
	// against trajectoryFP at the *snapshot's* global batch makes the check
	// insensitive to the batch refactorization a world change implies.
	savedWorld, worldErr := eng.I64("world")
	if worldErr == nil && int(savedWorld) != e.cfg.World && e.cfg.Mesh.Model == 1 {
		b, berr := eng.I64("batch")
		a, aerr := eng.I64("accum")
		if berr == nil && aerr == nil && savedTraj == e.trajectoryFP(int(savedWorld*b*a)) {
			return fmt.Errorf(
				"replica: snapshot was taken at world %d but the engine runs world %d; a plain resume only restores into an identical topology — resume with elastic resharding (effnettrain -resume -elastic, or elastic.Reshard) to re-partition per-rank state across the new world",
				savedWorld, e.cfg.World)
		}
	}
	if cur := e.TrajectoryFingerprint(); savedTraj != cur {
		return fmt.Errorf("replica: snapshot configuration does not match engine:\n  snapshot: %s\n  engine:   %s", savedTraj, cur)
	}
	savedTopo, err := eng.Str("topology")
	if err != nil {
		return err
	}
	if cur := e.TopologyFingerprint(); savedTopo != cur {
		return fmt.Errorf("replica: snapshot topology configuration does not match engine (the trajectory is compatible; elastic resharding can adapt the snapshot — effnettrain -resume -elastic, or elastic.Reshard):\n  snapshot: %s\n  engine:   %s", savedTopo, cur)
	}
	return nil
}

// replicaRestore is one rank's validated per-replica state, staged during
// RestoreState's validation pass and applied only after everything checked
// out.
type replicaRestore struct {
	rc       checkpoint.Component
	augDraws int64
	ctxDraws int64
}

// RestoreState overwrites the engine's entire training state from a
// snapshot: weights, BN statistics (per replica), optimizer slots, EMA
// shadow, RNG stream positions, step count, and the input-pipeline cursors
// (pipelines are restarted at the restored position). The snapshot must come
// from an engine with a matching configuration (see validateFingerprint);
// every component the engine expects must be present and internally valid.
//
// Validation runs before any mutation, so a rejected snapshot leaves the
// engine untouched and usable. If applying the state fails partway despite
// that (a malformed blob the validation pass could not see), the engine is
// poisoned: Step, Evaluate and CaptureState return a descriptive error until
// a fresh engine is built — nobody trains on half-restored state.
func (e *Engine) RestoreState(snap *checkpoint.Snapshot) error {
	if e.failed != nil {
		return e.errPoisoned()
	}
	eng, err := snap.Component(engineComponent)
	if err != nil {
		return err
	}
	// Check the mesh shape before the generic fingerprint diff when a hybrid
	// layout is involved on either side: re-gridding the same ranks (say a
	// 2x2 run resumed as 4x1) deserves a message naming the two shapes, not a
	// wall of fingerprint text. Pure data-parallel world changes (4x1 vs 2x1)
	// keep the configuration error, and snapshots written before the mesh
	// existed carry no "mesh" key — those restore only into pure
	// data-parallel engines, which the fingerprint already enforces.
	if savedMesh, merr := eng.Str("mesh"); merr == nil {
		if cur := e.cfg.Mesh.String(); savedMesh != cur {
			saved, perr := mesh.ParseShape(savedMesh)
			if perr == nil && (saved.Model > 1 || e.cfg.Mesh.Model > 1) {
				return fmt.Errorf(
					"replica: snapshot was taken on a %s mesh but the engine runs a %s mesh; training state is only portable across identical mesh shapes",
					savedMesh, cur)
			}
		}
	}
	if err := e.validateFingerprint(eng); err != nil {
		return err
	}
	step, err := eng.I64("step")
	if err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("replica: snapshot step %d is negative", step)
	}

	oc, err := snap.Component(optimComponent)
	if err != nil {
		return err
	}
	var ec checkpoint.Component
	if e.cfg.EMADecay > 0 {
		if ec, err = snap.Component(emaComponent); err != nil {
			return err
		}
	} else if _, ok := snap.Components[emaComponent]; ok {
		// Unreachable while EMA decay is part of the fingerprint, but kept:
		// restoring EMA state into an engine that never evaluates it would
		// silently change what "the model" means at eval time.
		return fmt.Errorf("replica: snapshot has EMA state but the engine runs without EMA")
	}

	// Validation pass: every per-replica component must be present with
	// correctly shaped BN blobs and sane RNG cursors before anything mutates.
	states := make([]replicaRestore, len(e.replicas))
	for r, rep := range e.replicas {
		rc, err := snap.Component(fmt.Sprintf(replicaComponent, r))
		if err != nil {
			return err
		}
		for i, bn := range rep.Model.BatchNorms() {
			if _, err := rc.F32(fmt.Sprintf("bn/%d/mean", i), bn.RunningMean.Shape()); err != nil {
				return fmt.Errorf("replica: rank %d: %w", r, err)
			}
			if _, err := rc.F32(fmt.Sprintf("bn/%d/var", i), bn.RunningVar.Shape()); err != nil {
				return fmt.Errorf("replica: rank %d: %w", r, err)
			}
		}
		augDraws, err := rc.I64("augdraws")
		if err != nil {
			return fmt.Errorf("replica: rank %d: %w", r, err)
		}
		ctxDraws, err := rc.I64("ctxdraws")
		if err != nil {
			return fmt.Errorf("replica: rank %d: %w", r, err)
		}
		if augDraws < 0 || ctxDraws < 0 {
			return fmt.Errorf("replica: rank %d: negative RNG cursor", r)
		}
		states[r] = replicaRestore{rc: rc, augDraws: augDraws, ctxDraws: ctxDraws}
	}

	// Mutation pass: from here on a failure leaves some ranks restored and
	// others not, so it poisons the engine rather than trusting the caller
	// to notice "rebuild it" in a doc comment.
	if err := e.applyState(snap, oc, ec, states); err != nil {
		e.failed = err
		return e.errPoisoned()
	}
	e.stepCount = int(step)
	e.pipesUp = false
	return nil
}

// applyState performs RestoreState's mutation phase over pre-validated
// components. Any error here means the engine holds a mix of old and new
// state.
func (e *Engine) applyState(snap *checkpoint.Snapshot, oc, ec checkpoint.Component, states []replicaRestore) error {
	for r, rep := range e.replicas {
		// Weights, optimizer slots and EMA shadow are replica-identical;
		// restore the same components into each rank's own storage.
		if err := snap.Restore(checkpoint.ModelState(rep.Model)); err != nil {
			return err
		}
		if err := rep.opt.RestoreState(rep.Model.Params(), oc); err != nil {
			return fmt.Errorf("replica: restore optimizer (rank %d): %w", r, err)
		}
		if ec != nil {
			if err := rep.ema.RestoreState(rep.Model.Params(), ec); err != nil {
				return fmt.Errorf("replica: restore EMA (rank %d): %w", r, err)
			}
		}

		st := states[r]
		for i, bn := range rep.Model.BatchNorms() {
			mean, err := st.rc.F32(fmt.Sprintf("bn/%d/mean", i), bn.RunningMean.Shape())
			if err != nil {
				return fmt.Errorf("replica: rank %d: %w", r, err)
			}
			variance, err := st.rc.F32(fmt.Sprintf("bn/%d/var", i), bn.RunningVar.Shape())
			if err != nil {
				return fmt.Errorf("replica: rank %d: %w", r, err)
			}
			copy(bn.RunningMean.Data(), mean)
			copy(bn.RunningVar.Data(), variance)
		}
		// RNG streams are seeded by the data-axis coordinate (model-group
		// members share a stream), matching the seeding New performs.
		rep.installRNGs(ctxSeed(e.cfg.Seed, rep.dataRank), uint64(st.ctxDraws), augSeed(e.cfg.Seed, rep.dataRank), uint64(st.augDraws))
		// Any running pipeline holds the pre-restore cursor; stop it and
		// let the next Step lazily start a fresh one at the restored
		// micro-batch position (ensurePipelines).
		if rep.pipe != nil {
			rep.pipe.Stop()
			rep.pipe = nil
		}
	}
	return nil
}
