package replica

import (
	"fmt"
	"strings"
	"testing"

	"effnetscale/internal/checkpoint"
	"effnetscale/internal/schedule"
)

// resumeEngineConfig is the adversarial resume configuration: world > 1 so
// per-rank RNG streams and the metric all-reduce are exercised, BN groups
// smaller than the world so BN running statistics genuinely differ across
// replicas, augmentation + dropout-free pico, gradient accumulation so the
// pipeline cursor moves in micro-steps, LARS slots, EMA shadow, and the
// default prefetching pipeline.
func resumeEngineConfig() Config {
	cfg := miniEngineConfig(4, 4, 2)
	cfg.OptimizerName = "lars"
	cfg.Schedule = schedule.Warmup{Epochs: 1, Inner: schedule.Constant(5)}
	cfg.NoAugment = false
	cfg.GradAccumSteps = 2
	cfg.EMADecay = 0.9
	cfg.BNMomentum = 0.9
	return cfg
}

// diffSnapshots returns a description of the first difference between two
// snapshots, or "" when they are bit-for-bit identical.
func diffSnapshots(a, b *checkpoint.Snapshot) string {
	if fmt.Sprint(a.Keys()) != fmt.Sprint(b.Keys()) {
		return fmt.Sprintf("components %v vs %v", a.Keys(), b.Keys())
	}
	for _, key := range a.Keys() {
		ca, cb := a.Components[key], b.Components[key]
		if fmt.Sprint(ca.Keys()) != fmt.Sprint(cb.Keys()) {
			return fmt.Sprintf("%s: blobs %v vs %v", key, ca.Keys(), cb.Keys())
		}
		for _, bk := range ca.Keys() {
			ba, bb := ca[bk], cb[bk]
			if ba.Str != bb.Str {
				return fmt.Sprintf("%s/%s: %q vs %q", key, bk, ba.Str, bb.Str)
			}
			for i := range ba.I64 {
				if ba.I64[i] != bb.I64[i] {
					return fmt.Sprintf("%s/%s: i64[%d] %d vs %d", key, bk, i, ba.I64[i], bb.I64[i])
				}
			}
			for i := range ba.F64 {
				if ba.F64[i] != bb.F64[i] {
					return fmt.Sprintf("%s/%s: f64[%d] %v vs %v", key, bk, i, ba.F64[i], bb.F64[i])
				}
			}
			if len(ba.F32) != len(bb.F32) {
				return fmt.Sprintf("%s/%s: f32 length %d vs %d", key, bk, len(ba.F32), len(bb.F32))
			}
			for i := range ba.F32 {
				if ba.F32[i] != bb.F32[i] {
					return fmt.Sprintf("%s/%s: f32[%d] %v vs %v", key, bk, i, ba.F32[i], bb.F32[i])
				}
			}
		}
	}
	return ""
}

// TestResumeBitForBit is the engine half of the repo's resume contract: an
// engine killed at an arbitrary (mid-epoch) step and restored from its
// snapshot must finish with state bit-for-bit identical to the uninterrupted
// engine — weights, BN statistics on every rank, optimizer slots, EMA
// shadow, RNG cursors. Comparison is via CaptureState itself, so everything
// a snapshot carries is covered.
func TestResumeBitForBit(t *testing.T) {
	const killAt, total = 5, 12 // stepsPerEpoch is 2 here: killAt is mid-epoch

	ref, err := New(resumeEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	interrupted, err := New(resumeEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := interrupted.StepsPerEpoch(); killAt%got == 0 {
		t.Fatalf("test setup: killAt %d is an epoch boundary (steps/epoch %d); pick a mid-epoch step", killAt, got)
	}
	var refEvals, resEvals []float64
	for s := 0; s < total; s++ {
		mustStep(t, ref)
		refEvals = append(refEvals, mustEval(t, ref, 8))
		if s < killAt {
			mustStep(t, interrupted)
			resEvals = append(resEvals, mustEval(t, interrupted, 8))
		}
	}
	snap, err := interrupted.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	interrupted.Close() // the "kill"

	// A fresh process: new engine from the same config, restored.
	resumed, err := New(resumeEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if resumed.StepCount() != killAt {
		t.Fatalf("restored step count %d, want %d", resumed.StepCount(), killAt)
	}
	for s := killAt; s < total; s++ {
		mustStep(t, resumed)
		resEvals = append(resEvals, mustEval(t, resumed, 8))
	}

	// Bit-for-bit identical eval trajectory...
	for i := range refEvals {
		if refEvals[i] != resEvals[i] {
			t.Fatalf("eval %d: resumed %v vs uninterrupted %v", i, resEvals[i], refEvals[i])
		}
	}
	// ...and bit-for-bit identical final state, including every per-rank
	// component.
	refSnap, err := ref.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	resSnap, err := resumed.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffSnapshots(refSnap, resSnap); d != "" {
		t.Fatalf("resumed state diverged from uninterrupted run at %s", d)
	}
	if sync := resumed.WeightsInSync(); sync != "" {
		t.Fatalf("resumed replicas out of sync at %s", sync)
	}
}

// TestResumeAcrossPrefetchModes: prefetch depth is trajectory-neutral, so a
// snapshot from a prefetching engine must restore into a synchronous one
// (and vice versa) and still match bit-for-bit.
func TestResumeAcrossPrefetchModes(t *testing.T) {
	cfgOn := resumeEngineConfig()
	cfgOff := resumeEngineConfig()
	cfgOff.PrefetchDepth = PrefetchOff

	a, err := New(cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for s := 0; s < 3; s++ {
		a.Step()
	}
	snap, err := a.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	for s := 3; s < 6; s++ {
		a.Step()
		b.Step()
	}
	sa, err := a.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if d := diffSnapshots(sa, sb); d != "" {
		t.Fatalf("prefetch-on and prefetch-off diverged after shared restore at %s", d)
	}
}

func TestRestoreRejectsConfigMismatch(t *testing.T) {
	e, err := New(resumeEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Step()
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Config){
		"seed":      func(c *Config) { c.Seed = 99 },
		"optimizer": func(c *Config) { c.OptimizerName = "sgd" },
		"batch":     func(c *Config) { c.PerReplicaBatch = 2 },
		"bn-group":  func(c *Config) { c.BNGroupSize = 4 },
		"ema":       func(c *Config) { c.EMADecay = 0 },
		"augment":   func(c *Config) { c.NoAugment = true },
	} {
		cfg := resumeEngineConfig()
		mutate(&cfg)
		other, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		err = other.RestoreState(snap)
		other.Close()
		if err == nil || !strings.Contains(err.Error(), "configuration does not match") {
			t.Fatalf("%s mismatch restore = %v, want configuration error", name, err)
		}
	}

	// A pure world change is the one mismatch with a remedy: the error must
	// name both worlds and point at elastic resharding.
	cfg := resumeEngineConfig()
	cfg.World = 2
	other, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = other.RestoreState(snap)
	other.Close()
	if err == nil {
		t.Fatal("world-4 snapshot restored into world-2 engine")
	}
	for _, want := range []string{"world 4", "world 2", "elastic"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("world mismatch error %q does not mention %q", err, want)
		}
	}
}

func TestRestoreRejectsMissingComponent(t *testing.T) {
	e, err := New(resumeEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Step()
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	delete(snap.Components, "replica/3")
	e2, err := New(resumeEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.RestoreState(snap); err == nil || !strings.Contains(err.Error(), "replica/3") {
		t.Fatalf("missing-replica restore = %v, want error naming replica/3", err)
	}
}

func TestStateComponentsEnumerate(t *testing.T) {
	e, err := New(resumeEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	want := e.StateComponents()
	if len(snap.Components) != len(want) {
		t.Fatalf("snapshot has %d components, StateComponents lists %d", len(snap.Components), len(want))
	}
	for _, k := range want {
		if _, ok := snap.Components[k]; !ok {
			t.Fatalf("snapshot missing declared component %q", k)
		}
	}
}

// TestBNStatsDifferAcrossGroupsInSnapshot guards the reason replica state is
// per-rank at all: with BN groups smaller than the world, running statistics
// legitimately diverge across groups, and a weights-only restore would lose
// that.
func TestBNStatsDifferAcrossGroupsInSnapshot(t *testing.T) {
	e, err := New(resumeEngineConfig()) // world 4, BN group 2
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for s := 0; s < 2; s++ {
		e.Step()
	}
	snap, err := e.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := snap.Component("replica/0")
	r3, _ := snap.Component("replica/3")
	m0, err := r0.F32("bn/0/mean", nil)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := r3.F32("bn/0/mean", nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range m0 {
		if m0[i] != m3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("BN running means identical across different BN groups (suspicious test setup)")
	}
}
