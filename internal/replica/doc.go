// Package replica implements the data-parallel training engine at the heart
// of the reproduction: N replicas (goroutines standing in for TPU cores)
// each hold a full copy of the model and a shard of every global batch, run
// forward/backward locally, all-reduce gradients through a pluggable
// comm.Collective (ring by default; tree, hierarchical 2-D torus or
// cost-model-automatic via Config.Collective), and apply identical
// optimizer updates so the replicas never diverge — the same SPMD structure
// the paper's TPU training uses.
//
// Gradient reduction is bucketed and overlapped with the backward pass
// itself: every parameter's gradient is bound into the flattened reduction
// buffer (autograd.Value.BindGrad), the tape's grad-ready hooks report each
// parameter the moment its last gradient contribution lands, and a bucket
// whose members are all ready is handed to the background collective stream
// while backward is still running — only the stem's bucket, ready when
// backward ends, is structurally exposed (the executable cousin of podsim's
// grad-ready overlap model; Config.NoBackwardOverlap serializes dispatch as
// a bit-for-bit identical A/B baseline).
//
// Distributed batch normalization (§3.4) is wired in by giving every
// BatchNorm layer a reducer that all-reduces its per-channel statistics
// across the replica's BN group — through the same Collective interface the
// gradients use.
//
// Seams: Config assembles a run (collective provider, bucket size, prefetch
// depth, BN grouping, precision, optimizer); Engine.Step/Evaluate/
// EvaluateSerial are what the trainloop engine drives; CaptureState/
// RestoreState compose full checkpoint snapshots; Config.Telemetry attaches
// the telemetry recorder, which times every step's phases (data wait,
// forward, backward, the gradient-reduce overlap window and its exposed
// tail, optimizer apply) and instruments every collective — nil keeps the
// hot path free of clock reads entirely.
//
// Paper: §3.1 (large-batch data parallelism, gradient accumulation), §3.3
// (the distributed train+eval loop), §3.4 (distributed BN, topology-aware
// all-reduce).
package replica
