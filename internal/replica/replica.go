package replica

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/mesh"
	"effnetscale/internal/nn"
	"effnetscale/internal/optim"
	"effnetscale/internal/rng"
	"effnetscale/internal/schedule"
	"effnetscale/internal/telemetry"
	"effnetscale/internal/tensor"
	"effnetscale/internal/topology"

	"effnetscale/internal/autograd"
)

// Config assembles a distributed training run.
type Config struct {
	// World is the number of replicas.
	World int
	// PerReplicaBatch is each replica's local batch; the global batch is
	// World × PerReplicaBatch.
	PerReplicaBatch int
	// Model selects the EfficientNet variant (family name).
	Model string
	// Dataset provides sharded training and validation data.
	Dataset *data.Dataset
	// OptimizerName selects the optimizer (see optim.ByName).
	OptimizerName string
	// WeightDecay is the optimizer's L2 coefficient.
	WeightDecay float64
	// Schedule maps fractional epochs to learning rates.
	Schedule schedule.Schedule
	// BNGroupSize is the distributed batch-norm group size (1 = local BN).
	// Must divide World.
	BNGroupSize int
	// Slice is the TPU slice used for 2-D BN group tiling; zero value means
	// a 1×(World/2) layout is assumed.
	Slice topology.Slice
	// Precision is the mixed-precision policy (bf16 convolutions by
	// default in the paper).
	Precision bf16.Policy
	// LabelSmoothing for the softmax cross-entropy (EfficientNet uses 0.1).
	LabelSmoothing float32
	// Seed drives model init and per-replica RNG streams.
	Seed int64
	// DropoutOverride, when >= 0, replaces the model's dropout rate; pass
	// -1 to keep the model family default. The zero value disables dropout,
	// which is the right default for the deterministic mini-scale runs.
	DropoutOverride float64
	// DropConnectOverride behaves like DropoutOverride for stochastic depth.
	DropConnectOverride float64
	// NoAugment disables training-time data augmentation (needed by the
	// N-replica ≡ single-large-batch equivalence tests, where per-replica
	// augmentation RNGs would otherwise produce different pixels).
	NoAugment bool
	// BNMomentum overrides the batch-norm running-statistics EMA decay
	// when non-zero. The TF default of 0.99 assumes tens of thousands of
	// steps; mini-scale runs of a few hundred steps should pass ~0.9 or
	// evaluation will see stale statistics.
	BNMomentum float64
	// GradAccumSteps runs this many micro-batches per replica per global
	// step, accumulating gradients locally before the all-reduce. The
	// effective global batch becomes World × PerReplicaBatch ×
	// GradAccumSteps without growing per-replica memory — how batch 65536
	// fits when HBM cannot hold it at once. 0/1 disables accumulation.
	// Batch-norm statistics remain per-micro-batch, the standard behaviour
	// of gradient accumulation.
	GradAccumSteps int
	// EMADecay, when > 0, maintains an exponential moving average of the
	// weights (the reference EfficientNet setup evaluates the EMA weights).
	EMADecay float64
	// Mesh lays the World ranks out as a Data×Model device mesh (§5 hybrid
	// parallelism): gradients average over the data axis while the 1×1
	// convolutions' channels are sharded across the model axis, with
	// activation all-gathers and gradient-slice exchanges on the model-axis
	// collectives (see internal/mesh). Data×Model must equal World, and the
	// global batch becomes Data × PerReplicaBatch × GradAccumSteps (the M
	// ranks of a model group consume the same data shard). The zero value
	// means World×1 — pure data parallelism, bit-for-bit today's engine.
	Mesh mesh.Shape
	// Collective selects the all-reduce algorithm for gradients, metrics and
	// BN statistics: comm.RingProvider(), comm.TreeProvider(),
	// comm.Torus2DProvider(slice) or comm.AutoProvider(slice). The zero
	// value means ring — today's default.
	Collective comm.Provider
	// GradBucketBytes is the bucket size for overlapped gradient reduction:
	// the flattened gradient is cut into buckets of this many bytes, each
	// all-reduced on a background stream the moment the backward pass has
	// produced the bucket's last gradient. 0 picks DefaultGradBucketBytes.
	GradBucketBytes int
	// NoBackwardOverlap serializes the gradient reduction after the
	// backward pass instead of dispatching buckets from the tape's
	// grad-ready hooks mid-backward. Bucket spans, reduction order within a
	// bucket and the averaging arithmetic are identical either way, so the
	// trajectory is bit-for-bit unchanged — this knob exists purely as the
	// A/B baseline for measuring the overlap win (CI's overlap-smoke job,
	// ROADMAP item 1's before/after reduce_tail numbers).
	NoBackwardOverlap bool
	// PrefetchDepth configures the per-replica input pipeline: the number
	// of rendered batches buffered ahead of the compute loop, with
	// augmentation applied inside the pipeline. 0 means
	// DefaultPrefetchDepth (prefetching is on by default); PrefetchOff
	// disables it and renders every batch synchronously on the training
	// critical path. Both paths produce bit-for-bit identical batches.
	PrefetchDepth int
	// Telemetry, when non-nil, receives per-step phase timings (data wait,
	// forward, backward, gradient-reduce overlap, optimizer apply),
	// per-collective accounting from instrumented collectives, and pipeline
	// starvation counts. Nil (the default) compiles the instrumentation out
	// of the hot path: no clock reads, no atomic traffic, no allocations.
	Telemetry *telemetry.Recorder
}

// DefaultPrefetchDepth is the input-pipeline depth when Config leaves
// PrefetchDepth zero: with the in-use batch that is triple buffering — one
// batch on the accelerator, one rendered and waiting, one rendering.
const DefaultPrefetchDepth = 2

// PrefetchOff disables the input pipeline (Config.PrefetchDepth).
const PrefetchOff = -1

// DefaultGradBucketBytes is the gradient bucket size when Config leaves
// GradBucketBytes zero: 32 KiB. Grad-ready dispatch overlaps reduction
// with the backward pass itself, so the useful bucket granularity is the
// per-layer gradient scale — a bucket can only leave when its *last*
// parameter is ready, and a bucket sized near the whole model degenerates
// to a serialized post-backward reduce (the stem, computed last, gates it).
// 32 KiB (8K fp32) keeps even the mini models in several buckets while
// staying bandwidth-bound per collective.
const DefaultGradBucketBytes = 32 << 10

// StepResult aggregates one global step's metrics across all replicas.
type StepResult struct {
	Loss     float64 // global-batch mean loss
	Accuracy float64 // global-batch top-1 accuracy (training batch)
	LR       float64 // learning rate used
	Epoch    float64 // fractional epoch at this step
}

// Engine owns the replicas and their communication worlds.
type Engine struct {
	cfg      Config
	replicas []*Replica
	// gradLen is the flattened gradient length (identical across replicas).
	gradLen int
	// buckets are the [lo, hi) float spans the flattened gradient is cut
	// into for overlapped reduction — identical across replicas, or the
	// lockstep collectives would deadlock.
	buckets [][2]int
	// paramBuckets[i] is the [first, last] (inclusive) bucket-index range
	// parameter i's gradient span overlaps, in Params() order.
	paramBuckets [][2]int
	// bucketParams[b] counts the parameters overlapping bucket b — the
	// countdown bucket assembly re-arms every step.
	bucketParams []int
	// stepsPerEpoch is ceil(train size / global batch).
	stepsPerEpoch int
	stepCount     int
	// pipesUp records that the input pipelines are running. They start
	// lazily at the first Step so a state restore never pays for batches
	// prefetched at position (0,0) only to be thrown away.
	pipesUp bool
	// failed records a state restore that died mid-apply, leaving a mix of
	// old and new state across the ranks. A poisoned engine refuses to
	// train, evaluate or snapshot (see errPoisoned) — the failure must not
	// be trainable-through.
	failed error
	// samples holds one reusable per-replica phase-timing sample per rank
	// (nil when telemetry is off, which disables all timing).
	samples []telemetry.StepSample
	// scratch is the engine-owned kernel arena: im2col buffers and GEMM
	// packing panels are drawn from it instead of being allocated per conv
	// call. One arena per engine keeps concurrent engines' working sets
	// separate; dropping the engine releases it.
	scratch *tensor.Scratch
}

// Replica is one data-parallel worker.
type Replica struct {
	Rank  int
	Model *efficientnet.Model

	// dataRank is this replica's coordinate on the mesh's data axis — the
	// shard index its batches come from. Equal to Rank when Model = 1.
	dataRank int
	// plan is the model-parallel execution plan (nil on the pure
	// data-parallel path, i.e. whenever the mesh's model axis is 1).
	plan *shardPlan

	coll    comm.Collective // gradient/metrics collective over the data axis
	opt     optim.Optimizer
	ema     *optim.WeightEMA // nil when EMA disabled
	train   *data.Shard
	val     *data.Shard
	ctx     *nn.Ctx
	augRNG  *rand.Rand
	gradBuf []float32
	buckets [][2]int
	batch   *tensor.Tensor
	labels  []int
	accum   int

	// tape drives the backward passes; every parameter is registered with
	// it and has its gradient bound into gradBuf (no flatten copy), so the
	// tape's grad-ready hooks can dispatch reduction buckets mid-backward.
	tape *autograd.Tape
	// slot maps a parameter leaf back to its Params() index — the key into
	// the engine's paramBuckets table. Built once; no per-step allocation.
	slot map[*autograd.Value]int
	// paramBuckets and bucketParams alias the engine's tables.
	paramBuckets [][2]int
	bucketParams []int
	// remaining is the per-bucket countdown of not-yet-ready parameters,
	// re-armed from bucketParams before the final micro-batch's backward.
	remaining []int
	// assembling gates the grad-ready hook: bucket dispatch happens only
	// during the accumulation window's final backward pass.
	assembling bool
	// ready feeds the step's reduction stream; sent counts dispatches.
	ready chan [2]int
	sent  int
	// noOverlap serializes dispatch after backward (Config.NoBackwardOverlap).
	noOverlap bool

	// ctxStream and augStream are the serializable positions of this
	// replica's dropout/stochastic-depth RNG (ctx.RNG) and synchronous-path
	// augmentation RNG (augRNG) — the cursors a training snapshot records.
	ctxStream *rng.Stream
	augStream *rng.Stream
	// augDraws is the augmentation-stream position as of the last consumed
	// micro-batch on the prefetched path (the producer runs ahead, so the
	// pipeline's own stream is not the consumer's position).
	augDraws uint64

	// pipe is the training input pipeline (nil when prefetch is off): it
	// renders and augments micro-batches on a background goroutine so the
	// compute loop never waits on host-side rendering.
	pipe *data.Pipeline
	// prefetch is the resolved pipeline depth (0 = off).
	prefetch int
	// res is the input resolution, needed to size evaluation buffers.
	res int
	// evalPool lazily holds reusable evaluation batch buffers, shared
	// across this replica's evaluation pipelines so Evaluate allocates no
	// tensors after the first call.
	evalPool *data.BufferPool
}

// Algorithm reports the collective algorithm the engine's gradient
// all-reduce runs (including any fallback, per comm.Collective.Algorithm).
func (e *Engine) Algorithm() string { return e.replicas[0].coll.Algorithm() }

// gradBuckets cuts a flattened gradient of gradLen floats into spans of
// bucketBytes each (last one ragged).
func gradBuckets(gradLen, bucketBytes int) [][2]int {
	per := bucketBytes / 4 // fp32 gradients
	if per < 1 {
		per = 1
	}
	var out [][2]int
	for lo := 0; lo < gradLen; lo += per {
		hi := lo + per
		if hi > gradLen {
			hi = gradLen
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// bucketMembership maps parameter gradient spans onto bucket spans: for
// each parameter the inclusive [first, last] range of buckets its span
// overlaps (a bucket boundary may land mid-parameter), and for each bucket
// the number of overlapping parameters. Both inputs must tile [0, gradLen)
// contiguously in ascending order — what paramSpans and gradBuckets
// produce.
func bucketMembership(spans, buckets [][2]int) (paramBuckets [][2]int, members []int) {
	paramBuckets = make([][2]int, len(spans))
	members = make([]int, len(buckets))
	b := 0
	for i, s := range spans {
		for buckets[b][1] <= s[0] {
			b++
		}
		last := b
		for buckets[last][1] < s[1] {
			last++
		}
		paramBuckets[i] = [2]int{b, last}
		for j := b; j <= last; j++ {
			members[j]++
		}
		b = last
	}
	return paramBuckets, members
}

// paramSpans returns each parameter's [lo, hi) span in the flattened
// gradient, in Params() order — the layout BindGrads pins gradients to.
func paramSpans(params []*nn.Param) [][2]int {
	spans := make([][2]int, 0, len(params))
	off := 0
	for _, p := range params {
		n := p.Data().Len()
		spans = append(spans, [2]int{off, off + n})
		off += n
	}
	return spans
}

// New builds the engine: one model copy per replica (identical weights),
// communication worlds for gradients and BN groups, per-replica shards and
// optimizer instances.
func New(cfg Config) (*Engine, error) {
	if cfg.World < 1 {
		return nil, fmt.Errorf("replica: world %d must be >= 1", cfg.World)
	}
	if cfg.PerReplicaBatch < 1 {
		return nil, fmt.Errorf("replica: per-replica batch %d must be >= 1", cfg.PerReplicaBatch)
	}
	if cfg.BNGroupSize == 0 {
		cfg.BNGroupSize = 1
	}
	if cfg.GradAccumSteps < 1 {
		cfg.GradAccumSteps = 1
	}
	if cfg.Mesh == (mesh.Shape{}) {
		cfg.Mesh = mesh.Shape{Data: cfg.World, Model: 1}
	}
	if err := cfg.Mesh.Validate(); err != nil {
		return nil, fmt.Errorf("replica: %v", err)
	}
	if cfg.Mesh.World() != cfg.World {
		return nil, fmt.Errorf("replica: mesh %s covers %d ranks, world is %d", cfg.Mesh, cfg.Mesh.World(), cfg.World)
	}
	if cfg.Mesh.Data%cfg.BNGroupSize != 0 {
		return nil, fmt.Errorf("replica: BN group size %d does not divide the mesh's data axis %d", cfg.BNGroupSize, cfg.Mesh.Data)
	}
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("replica: dataset is required")
	}
	modelCfg, ok := efficientnet.ConfigByName(cfg.Model, cfg.Dataset.Config().NumClasses)
	if !ok {
		return nil, fmt.Errorf("replica: unknown model %q", cfg.Model)
	}
	if cfg.DropoutOverride >= 0 {
		modelCfg.DropoutRate = cfg.DropoutOverride
	}
	if cfg.DropConnectOverride >= 0 {
		modelCfg.DropConnectRate = cfg.DropConnectOverride
	}
	if cfg.Dataset.Config().Resolution != modelCfg.Resolution {
		// The dataset resolution wins: models are resolution-agnostic.
		modelCfg.Resolution = cfg.Dataset.Config().Resolution
	}
	if cfg.GradBucketBytes == 0 {
		cfg.GradBucketBytes = DefaultGradBucketBytes
	}
	if cfg.GradBucketBytes < 4 {
		return nil, fmt.Errorf("replica: grad bucket size %d bytes must hold at least one fp32 value", cfg.GradBucketBytes)
	}
	if cfg.Dataset.Config().TrainSize < cfg.Mesh.Data {
		// Some ranks would hold empty train shards and the lockstep step
		// loop could never feed them — the divide-by-zero this used to hit
		// deep inside BatchIndices, surfaced as a configuration error. Data
		// shards by the mesh's data axis (model-group members share a shard).
		return nil, fmt.Errorf("replica: train split (%d samples) smaller than data axis %d: every data shard needs at least one sample", cfg.Dataset.Config().TrainSize, cfg.Mesh.Data)
	}
	if cfg.PrefetchDepth == 0 {
		cfg.PrefetchDepth = DefaultPrefetchDepth
	}
	if cfg.PrefetchDepth < 0 {
		cfg.PrefetchDepth = 0 // PrefetchOff: synchronous rendering
	}
	prov := cfg.Collective
	if prov.IsZero() {
		prov = comm.RingProvider()
	}
	if cfg.Telemetry != nil {
		// Instrumenting the provider covers the gradient world and every BN
		// group built from it below; the recorder observes each call's
		// algorithm, payload and rank wall time.
		prov = comm.InstrumentProvider(prov, cfg.Telemetry)
	}

	e := &Engine{cfg: cfg, scratch: tensor.NewScratch()}
	if cfg.Telemetry != nil {
		e.samples = make([]telemetry.StepSample, cfg.World)
	}

	// The device mesh carries everything: per-rank data-axis collectives for
	// gradients, BN statistics and metrics, and model-axis collectives for
	// the channel-sharded exchanges. At Model=1 the single data-axis world is
	// exactly the world-wide collective the engine always had.
	msh, err := mesh.Split(prov, cfg.Mesh)
	if err != nil {
		return nil, fmt.Errorf("replica: %v", err)
	}

	// BN groups: contiguous below 16, 2-D tiled above (§3.4). Each group is
	// its own collective world under the same provider. Groups tile the data
	// axis — the M ranks of a model group compute identical activations, so
	// including them would only double-count the same statistics — and each
	// model column gets its own copy of the group worlds.
	var groups [][]int
	if cfg.BNGroupSize > 1 {
		slice := cfg.Slice
		if slice.Rows == 0 {
			slice = topology.Slice{Rows: 1, Cols: (cfg.Mesh.Data + 1) / 2}
		}
		groups, err = topology.BNGroups(cfg.Mesh.Data, cfg.BNGroupSize, slice)
		if err != nil {
			return nil, fmt.Errorf("replica: %v", err)
		}
	}
	bnCollOf := make(map[int]comm.Collective, cfg.World)
	for m := 0; m < cfg.Mesh.Model; m++ {
		for _, g := range groups {
			gcolls, err := prov.Connect(len(g))
			if err != nil {
				return nil, fmt.Errorf("replica: BN group: %v", err)
			}
			for pos, d := range g {
				bnCollOf[cfg.Mesh.Rank(d, m)] = gcolls[pos]
			}
		}
	}

	// Reference model: every replica copies its weights so all start equal.
	ref := efficientnet.New(rand.New(rand.NewSource(cfg.Seed)), modelCfg)
	e.gradLen = ref.NumParams()
	e.buckets = gradBuckets(e.gradLen, cfg.GradBucketBytes)
	e.paramBuckets, e.bucketParams = bucketMembership(paramSpans(ref.Params()), e.buckets)

	// The global batch follows the data axis: model-group members consume
	// the same shard, so only Data distinct batches exist per step.
	globalBatch := cfg.Mesh.Data * cfg.PerReplicaBatch * cfg.GradAccumSteps
	e.stepsPerEpoch = (cfg.Dataset.Config().TrainSize + globalBatch - 1) / globalBatch

	for r := 0; r < cfg.World; r++ {
		d, mIdx := cfg.Mesh.Coords(r)
		m := efficientnet.New(rand.New(rand.NewSource(cfg.Seed)), modelCfg)
		m.CopyWeightsFrom(ref)
		opt, ok := optim.ByName(cfg.OptimizerName, cfg.WeightDecay)
		if !ok {
			e.Close() // stop pipelines of already-built replicas
			return nil, fmt.Errorf("replica: unknown optimizer %q", cfg.OptimizerName)
		}
		rep := &Replica{
			Rank:     r,
			dataRank: d,
			Model:    m,
			coll:     msh.DataColl(r),
			opt:      opt,
			train:    data.NewShard(cfg.Dataset, 0, d, cfg.Mesh.Data),
			val:      data.NewShard(cfg.Dataset, 1, d, cfg.Mesh.Data),
			ctx:      &nn.Ctx{Training: true, Precision: cfg.Precision, Scratch: e.scratch},
			gradBuf:  make([]float32, e.gradLen),
			buckets:  e.buckets,
			batch:    tensor.New(cfg.PerReplicaBatch, 3, modelCfg.Resolution, modelCfg.Resolution),
			labels:   make([]int, cfg.PerReplicaBatch),
			accum:    cfg.GradAccumSteps,
			prefetch: cfg.PrefetchDepth,
			res:      modelCfg.Resolution,
		}
		if cfg.Mesh.Model > 1 {
			// The plan shards the 1×1 convs' channels across the model axis;
			// replicas of a model group must draw identical RNG streams (seeds
			// keyed by d below) so their replicated activations stay bitwise
			// equal and only the sharded exchanges need communication.
			rep.plan = buildShardPlan(m, mIdx, cfg.Mesh.Model, msh.ModelColl(r))
		}
		// The grad-ready wiring: parameters register with the replica's
		// tape and bind their gradients into gradBuf (backward accumulates
		// straight into the reduction payload — the flatten copy is gone),
		// and the hook counts buckets down as leaves become final.
		rep.tape = autograd.NewTape()
		m.RegisterParams(rep.tape)
		if n := m.BindGrads(rep.gradBuf); n != e.gradLen {
			panic(fmt.Sprintf("replica: bound %d gradient floats, gradLen is %d", n, e.gradLen))
		}
		rep.slot = make(map[*autograd.Value]int, len(m.Params()))
		for i, p := range m.Params() {
			rep.slot[p.Value] = i
		}
		rep.paramBuckets = e.paramBuckets
		rep.bucketParams = e.bucketParams
		rep.remaining = make([]int, len(e.buckets))
		rep.noOverlap = cfg.NoBackwardOverlap
		rep.tape.OnGradReady(rep.onGradReady)
		// The RNGs draw through counting streams so a snapshot can record —
		// and a resume can replay — their exact positions. The values are
		// bit-identical to the plain rand.NewSource construction. Seeds key
		// off the data coordinate: the M ranks of a model group see the same
		// batches and the same dropout/drop-path masks.
		rep.installRNGs(ctxSeed(cfg.Seed, d), 0, augSeed(cfg.Seed, d), 0)
		// With prefetch > 0, the pipeline will own the training shard: it
		// renders micro-batches ahead of the compute loop, with
		// augmentation drawn from the same per-replica seed the inline
		// path uses, so both paths produce bit-for-bit identical batch
		// streams. Pipelines start lazily at the first Step (see
		// ensurePipelines), so a RestoreState between New and Step never
		// renders batches it will discard.
		if cfg.EMADecay > 0 {
			rep.ema = optim.NewWeightEMA(cfg.EMADecay)
		}
		var red nn.StatsReducer
		if bc := bnCollOf[r]; bc != nil {
			red = &nn.CollectiveStats{Coll: bc}
		}
		for _, bn := range m.BatchNorms() {
			if red != nil {
				bn.Reducer = red
			}
			if cfg.BNMomentum > 0 {
				bn.Momentum = cfg.BNMomentum
			}
		}
		e.replicas = append(e.replicas, rep)
	}
	return e, nil
}

// ctxSeed derives replica rank's dropout/stochastic-depth RNG seed.
func ctxSeed(seed int64, rank int) int64 { return seed*1000 + int64(rank) }

// augSeed derives replica rank's augmentation RNG seed (shared by the
// synchronous path and the input pipeline, which consume identical streams).
func augSeed(seed int64, rank int) int64 { return seed*2000 + int64(rank) }

// installRNGs (re)builds the replica's RNG streams at the given positions:
// draw 0 for a fresh engine, a snapshot's recorded cursors on restore.
func (r *Replica) installRNGs(ctxSeed int64, ctxDraws uint64, augSeed int64, augDraws uint64) {
	r.ctxStream = rng.Restore(ctxSeed, ctxDraws)
	r.ctx.RNG = r.ctxStream.Rand()
	r.augStream = rng.Restore(augSeed, augDraws)
	r.augRNG = r.augStream.Rand()
	r.augDraws = augDraws
}

// augPosition is the augmentation-stream cursor as of the batches this
// replica has actually trained on — what a snapshot records.
func (r *Replica) augPosition() uint64 {
	if r.pipe != nil {
		return r.augDraws
	}
	return r.augStream.Draws()
}

// startPipeline (re)starts rep's training input pipeline at the given micro
// position, stopping any previous pipeline first.
func (e *Engine) startPipeline(rep *Replica, startEpoch, startStep int, augDraws uint64) error {
	if rep.pipe != nil {
		rep.pipe.Stop()
		rep.pipe = nil
	}
	pipe, err := data.NewPipeline(data.PipelineConfig{
		Shard:         rep.train,
		BatchSize:     e.cfg.PerReplicaBatch,
		StepsPerEpoch: e.stepsPerEpoch * e.cfg.GradAccumSteps,
		Depth:         rep.prefetch,
		Augment:       !e.cfg.NoAugment,
		AugmentSeed:   augSeed(e.cfg.Seed, rep.dataRank),
		StartEpoch:    startEpoch,
		StartStep:     startStep,
		AugDraws:      augDraws,
	})
	if err != nil {
		return fmt.Errorf("replica: input pipeline: %v", err)
	}
	rep.pipe = pipe
	return nil
}

// ensurePipelines starts the input pipelines at the engine's current
// position (step 0 for a fresh engine, the restored cursor after
// RestoreState). Called on the loop goroutine at the top of Step.
func (e *Engine) ensurePipelines() {
	if e.pipesUp {
		return
	}
	e.pipesUp = true
	startEpoch := e.stepCount / e.stepsPerEpoch
	startMicro := (e.stepCount % e.stepsPerEpoch) * e.cfg.GradAccumSteps
	for _, rep := range e.replicas {
		if rep.prefetch > 0 && rep.pipe == nil {
			if err := e.startPipeline(rep, startEpoch, startMicro, rep.augPosition()); err != nil {
				// Unreachable in practice: New validates every input the
				// pipeline checks (shard geometry, batch size, position).
				panic(err.Error())
			}
		}
	}
}

// Close stops every replica's input pipeline and waits for their producer
// goroutines to exit. The engine must not Step or Evaluate after Close.
// Close is idempotent.
func (e *Engine) Close() {
	for _, rep := range e.replicas {
		if rep.pipe != nil {
			rep.pipe.Stop()
		}
	}
}

// Prefetching reports the resolved input-pipeline depth (0 = synchronous
// rendering).
func (e *Engine) Prefetching() int { return e.cfg.PrefetchDepth }

// GlobalBatch returns the effective global batch:
// mesh data axis × PerReplicaBatch × GradAccumSteps (the model axis shares
// data shards, so it does not multiply the batch).
func (e *Engine) GlobalBatch() int {
	return e.cfg.Mesh.Data * e.cfg.PerReplicaBatch * e.cfg.GradAccumSteps
}

// World returns the number of replicas.
func (e *Engine) World() int { return e.cfg.World }

// Mesh returns the engine's device-mesh shape (World×1 when unset).
func (e *Engine) Mesh() mesh.Shape { return e.cfg.Mesh }

// BatchSize returns the replica's local batch size.
func (r *Replica) BatchSize() int { return r.batch.Dim(0) }

// Dataset returns the dataset this replica draws its shards from.
func (r *Replica) Dataset() *data.Dataset { return r.train.D }

// StepsPerEpoch returns the number of global steps per training epoch.
func (e *Engine) StepsPerEpoch() int { return e.stepsPerEpoch }

// StepCount returns the number of global steps the engine has executed —
// after RestoreState, the restored position (the schedule resumes from
// exactly this step).
func (e *Engine) StepCount() int { return e.stepCount }

// Replica returns the rank-r worker (rank 0 is the conventional reference).
func (e *Engine) Replica(r int) *Replica { return e.replicas[r] }

// Step executes one synchronized global training step: every replica runs
// forward/backward on its shard of the batch, gradients are all-reduced in
// overlapped buckets through the configured collective and averaged, and
// each replica applies the identical optimizer update. It refuses to run on
// an engine poisoned by a failed state restore.
func (e *Engine) Step() (StepResult, error) {
	if e.failed != nil {
		return StepResult{}, e.errPoisoned()
	}
	e.ensurePipelines()
	epochF := float64(e.stepCount) / float64(e.stepsPerEpoch)
	lr := e.cfg.Schedule.LR(epochF)
	epoch := e.stepCount / e.stepsPerEpoch
	step := e.stepCount % e.stepsPerEpoch

	rec := e.cfg.Telemetry
	var stepStart time.Time
	if rec != nil {
		stepStart = time.Now()
	}

	results := make([]StepResult, len(e.replicas))
	var wg sync.WaitGroup
	for _, rep := range e.replicas {
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			var sample *telemetry.StepSample
			if rec != nil {
				sample = &e.samples[rep.Rank]
				sample.Reset()
			}
			results[rep.Rank] = rep.trainStep(epoch, step, lr, e.cfg.LabelSmoothing, e.cfg.Mesh.Data, !e.cfg.NoAugment, sample)
		}(rep)
	}
	wg.Wait()
	e.stepCount++

	// All replicas all-reduced their metrics already; replica 0's view is
	// the global view.
	out := results[0]
	out.LR = lr
	out.Epoch = epochF

	if rec != nil {
		phases, starved := telemetry.MergeSamples(e.samples)
		rec.StepDone(telemetry.StepRecord{
			Step:        e.stepCount,
			Epoch:       epochF,
			Wall:        time.Since(stepStart),
			Phases:      phases,
			Loss:        out.Loss,
			Accuracy:    out.Accuracy,
			LR:          lr,
			GlobalBatch: e.GlobalBatch(),
			Starved:     starved,
		})
	}
	return out, nil
}

// trainStep is one replica's share of a global step. dataWorld is the mesh's
// data-axis size — the divisor of the gradient average (equal to the world
// size on a pure data-parallel run). sample, when non-nil, receives the
// replica's phase timings (every timing call is nil-safe and free when
// telemetry is off).
func (r *Replica) trainStep(epoch, step int, lr float64, smoothing float32, dataWorld int, augment bool, sample *telemetry.StepSample) StepResult {
	// Gradients are bound into gradBuf (BindGrads), so clearing the buffer
	// once clears every parameter's gradient; ZeroGrad just marks each
	// bound leaf fresh. A parameter the backward never touches contributes
	// exactly the zeros written here — same as the old flatten's zero fill.
	for i := range r.gradBuf {
		r.gradBuf[i] = 0
	}
	for _, p := range r.Model.Params() {
		p.Value.ZeroGrad()
	}
	if r.plan != nil {
		// The plan's exchange ops time themselves into PhaseMPExchange; the
		// sample is step-scoped, so rebind it each step.
		r.plan.sample = sample
	}
	var starved0 int64
	if sample != nil && r.pipe != nil {
		starved0 = r.pipe.Starved()
	}
	// The reduction stream: a background goroutine all-reduces each bucket
	// the moment the tape's grad-ready hooks complete it — mid-backward,
	// while the tape is still back-propagating through earlier layers (the
	// paper's §3.4 overlap). Dispatch order follows gradient readiness, so
	// output-side buckets reduce under the stem's backward compute. The
	// order is identical across replicas — the graph is structurally
	// identical on every rank (dropout and drop-path are mask multiplies,
	// never structural edits), so the lockstep SPMD property holds — and
	// bucket spans never overlap, so the stream reads a span only after
	// backward finished writing it (the channel send orders the two).
	ready := make(chan [2]int, len(r.buckets))
	streamDone := make(chan struct{})
	r.ready = ready
	r.sent = 0
	go func() {
		defer close(streamDone)
		for b := range ready {
			// PhaseReduce is this stream's collective busy time; the sample's
			// other phases belong to the loop goroutine, so the two writers
			// never touch the same phase (see telemetry.StepSample).
			t0 := sample.Now()
			r.coll.AllReduce(r.gradBuf[b[0]:b[1]])
			sample.Add(telemetry.PhaseReduce, t0)
		}
	}()

	// Run GradAccumSteps micro-batches, accumulating gradients locally
	// before the all-reduce (autograd accumulation across tapes).
	var lossSum float64
	correct := 0
	seen := 0
	for k := 0; k < r.accum; k++ {
		// The prefetched path consumes the next micro-batch from the input
		// pipeline, which rendered and augmented it in the background; the
		// synchronous path renders inline. Batch contents are bit-for-bit
		// identical either way.
		imgs, labels := r.batch, r.labels
		var pb *data.Batch
		t0 := sample.Now()
		if r.pipe != nil {
			var ok bool
			pb, ok = r.pipe.Next()
			if !ok {
				panic("replica: input pipeline closed mid-training (engine used after Close?)")
			}
			if pb.Epoch != epoch || pb.Step != step*r.accum+k {
				panic(fmt.Sprintf("replica: input pipeline out of lockstep: batch (%d,%d), want (%d,%d)", pb.Epoch, pb.Step, epoch, step*r.accum+k))
			}
			imgs, labels = pb.Images, pb.Labels
			// Advance the consumer-side augmentation cursor (see Batch.AugDraws).
			r.augDraws = pb.AugDraws
		} else {
			r.train.FillBatch(epoch, step*r.accum+k, r.batch, r.labels)
			if augment {
				data.Augment(r.batch, r.augRNG)
			}
		}
		sample.Add(telemetry.PhaseDataWait, t0)
		t0 = sample.Now()
		x := autograd.Constant(imgs)
		var logits *autograd.Value
		if r.plan != nil {
			logits = r.plan.forward(r.ctx, r.Model, x)
		} else {
			logits = r.Model.Forward(r.ctx, x)
		}
		loss := autograd.SoftmaxCrossEntropy(logits, labels, smoothing)
		sample.Add(telemetry.PhaseForward, t0)
		t0 = sample.Now()
		if k == r.accum-1 && !r.noOverlap {
			// Arm bucket assembly for the accumulation window's final
			// backward: the hooks below count each bucket down and hand it
			// to the stream when its last parameter fires. Earlier
			// micro-batches only accumulate — their leaves are not final.
			copy(r.remaining, r.bucketParams)
			r.assembling = true
		}
		r.tape.Backward(loss)
		r.assembling = false
		sample.Add(telemetry.PhaseBackward, t0)

		pred := autograd.Argmax(logits.T)
		for i, l := range labels {
			if pred[i] == l {
				correct++
			}
		}
		lossSum += float64(loss.T.Data()[0]) * float64(len(labels))
		seen += len(labels)
		if pb != nil {
			// The tape is done with the pixels; let the producer reuse them.
			r.pipe.Recycle(pb)
		}
	}
	if sample != nil && r.pipe != nil {
		sample.AddStarved(r.pipe.Starved() - starved0)
	}

	if r.noOverlap {
		// Serialized baseline: hand every bucket to the stream only now,
		// after backward completed — the pre-grad-ready engine, kept for
		// A/B measurement. Ascending order, as the flatten used to send.
		for _, b := range r.buckets {
			ready <- b
			r.sent++
		}
	}
	if r.sent != len(r.buckets) {
		// Every registered leaf fires exactly once per backward, so every
		// bucket must have been dispatched: anything else means an
		// unreduced span, which would silently desynchronize the replicas.
		panic(fmt.Sprintf("replica: dispatched %d/%d buckets; a parameter missed its grad-ready hook", r.sent, len(r.buckets)))
	}
	close(ready)
	// Backward is done; whatever reduction remains is exposed on the
	// critical path — the tail the overlap could not hide (at least the
	// stem's bucket, whose last gradient is backward's final product).
	t0 := sample.Now()
	<-streamDone
	sample.Add(telemetry.PhaseReduceTail, t0)
	if r.plan != nil {
		// The data axis reduced only the weight-gradient rows each model
		// rank owns (zeros elsewhere); the model axis now all-gathers the
		// slices so every rank holds the full gradient — and the optimizer
		// below applies the identical update everywhere, keeping the weights
		// bitwise replicated across the whole mesh.
		r.plan.exchangeGrads(r.gradBuf, sample)
	}
	t0 = sample.Now()
	// Average in place: every parameter's Grad aliases gradBuf, so one
	// scale pass readies all of them for the optimizer. Same multiply in
	// the same order as the old copy-out loop — bit-for-bit the same step.
	inv := float32(1) / float32(dataWorld*r.accum)
	for i := range r.gradBuf {
		r.gradBuf[i] *= inv
	}
	r.opt.Step(r.Model.Params(), lr)
	if r.ema != nil {
		r.ema.Update(r.Model.Params())
	}
	sample.Add(telemetry.PhaseOptimizer, t0)

	// Metrics: local sums all-reduced into global means.
	sums := []float64{lossSum, float64(correct), float64(seen)}
	r.coll.AllReduceF64(sums)
	return StepResult{
		Loss:     sums[0] / sums[2],
		Accuracy: sums[1] / sums[2],
	}
}

// onGradReady is the tape's grad-ready hook, called on the loop goroutine
// mid-backward when parameter leaf v has received its last gradient
// contribution of the pass. During the accumulation window's final backward
// it counts the leaf out of each bucket it overlaps and hands completed
// buckets to the reduction stream — early (output-side) buckets all-reduce
// while the tape is still back-propagating through the stem.
func (r *Replica) onGradReady(v *autograd.Value) {
	if !r.assembling {
		return
	}
	i, ok := r.slot[v]
	if !ok {
		panic("replica: grad-ready hook for an unknown parameter leaf")
	}
	pb := r.paramBuckets[i]
	for b := pb[0]; b <= pb[1]; b++ {
		r.remaining[b]--
		if r.remaining[b] == 0 {
			r.ready <- r.buckets[b]
			r.sent++
		}
	}
}

// Evaluate runs distributed evaluation (§3.3): every replica scores its
// shard of the validation split in eval mode, and the correct/total counts
// are all-reduced. maxSamplesPerReplica caps work for quick checks
// (0 = full shard). It refuses to run on an engine poisoned by a failed
// state restore — half-restored weights would score as a model nobody
// trained.
func (e *Engine) Evaluate(maxSamplesPerReplica int) (float64, error) {
	if e.failed != nil {
		return 0, e.errPoisoned()
	}
	accs := make([]float64, len(e.replicas))
	var wg sync.WaitGroup
	for _, rep := range e.replicas {
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			accs[rep.Rank] = rep.evaluate(maxSamplesPerReplica)
		}(rep)
	}
	wg.Wait()
	return accs[0], nil
}

// ValLen returns the size of this replica's validation shard — the serial
// evaluation work one worker performs in the sharded loop.
func (r *Replica) ValLen() int { return r.val.Len() }

// EvaluateSerial scores up to maxSamples validation images (0 = the whole
// split) on replica 0 alone while every other replica idles — the
// serialized-evaluation structure of TPUEstimator (§3.3). It scores the same
// model Evaluate would: EMA shadow weights when enabled, eval mode, the
// training precision policy. Returns the accuracy and the number of images
// actually scored. Like Evaluate, it refuses to run on a poisoned engine.
func (e *Engine) EvaluateSerial(maxSamples int) (float64, int, error) {
	r := e.replicas[0]
	if e.failed != nil {
		return 0, 0, e.errPoisoned()
	}
	if r.ema != nil && r.ema.Steps() > 0 {
		mustSwap(r.ema, r.Model.Params())
		defer mustSwap(r.ema, r.Model.Params())
	}
	shard := data.NewShard(r.train.D, 1, 0, 1) // the whole validation split
	n := shard.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	if n == 0 {
		return 0, 0, nil
	}
	correct, total := r.scoreShard(shard, n)
	if total == 0 {
		return 0, 0, nil
	}
	return float64(correct) / float64(total), total, nil
}

// scoreShard scores the first n validation samples of shard in eval mode and
// returns the correct/total counts. With prefetching enabled the batches are
// rendered ahead by a bounded pipeline drawing on this replica's reusable
// evaluation buffers (allocated once, on first use); either way the ragged
// final batch renders only the samples actually scored — the wrap-around
// tail that used to be rendered and then discarded is never drawn. n must be
// >= 1 and shard non-empty.
func (r *Replica) scoreShard(shard *data.Shard, n int) (correct, total int) {
	bs := r.batch.Dim(0)
	// Evaluation runs on the tape-free inference forward: BN on running
	// stats, regularizers off, no autograd allocations — bit-for-bit the
	// logits the eval-mode tape forward produced, minus the tape.
	score := func(imgs *tensor.Tensor, labels []int, cnt int) {
		logits := r.Model.Infer(r.ctx.Precision, imgs)
		pred := autograd.Argmax(logits)
		for i := 0; i < cnt; i++ {
			if pred[i] == labels[i] {
				correct++
			}
		}
		total += cnt
	}
	if r.prefetch > 0 {
		if r.evalPool == nil {
			r.evalPool = data.NewBufferPool(r.prefetch+1, bs, r.res)
		}
		p, err := data.NewPipeline(data.PipelineConfig{
			Shard:         shard,
			BatchSize:     bs,
			StepsPerEpoch: (n + bs - 1) / bs,
			Depth:         r.prefetch,
			MaxSamples:    n,
			Pool:          r.evalPool,
		})
		if err == nil {
			defer p.Stop()
			for {
				b, ok := p.Next()
				if !ok {
					break
				}
				score(b.Images, b.Labels, b.N)
				p.Recycle(b)
			}
			return correct, total
		}
		// Never skip evaluation over a pipeline problem: score inline.
	}
	for lo := 0; lo < n; lo += bs {
		cnt := bs
		if lo+cnt > n {
			cnt = n - lo
		}
		// Reuse the batch tensor; only the first cnt entries are rendered.
		shard.FillBatchN(0, lo/bs, cnt, r.batch, r.labels)
		score(r.batch, r.labels, cnt)
	}
	return correct, total
}

func (r *Replica) evaluate(maxSamples int) float64 {
	// Evaluate the EMA ("shadow") weights when enabled, as the reference
	// EfficientNet setup does; swap back afterwards.
	if r.ema != nil && r.ema.Steps() > 0 {
		mustSwap(r.ema, r.Model.Params())
		defer mustSwap(r.ema, r.Model.Params())
	}
	n := r.val.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	correct, total := 0, 0
	if n > 0 {
		// Empty validation shards (split smaller than the world) score
		// nothing but still join the metric all-reduce below — the
		// collective is lockstep across all ranks.
		correct, total = r.scoreShard(r.val, n)
	}
	sums := []float64{float64(correct), float64(total)}
	r.coll.AllReduceF64(sums)
	if sums[1] == 0 {
		return 0
	}
	return sums[0] / sums[1]
}

// mustSwap exchanges live and EMA shadow weights. The engine's param set
// never changes after construction, so a Swap mismatch here is a broken
// invariant, not a recoverable condition.
func mustSwap(ema *optim.WeightEMA, params []*nn.Param) {
	if err := ema.Swap(params); err != nil {
		panic("replica: " + err.Error())
	}
}

// WeightsInSync verifies all replicas hold bitwise-identical parameters —
// the core invariant of synchronous data parallelism. Returns the first
// divergent parameter name, or "" when in sync.
func (e *Engine) WeightsInSync() string {
	ref := e.replicas[0].Model.Params()
	for _, rep := range e.replicas[1:] {
		ps := rep.Model.Params()
		for i, p := range ps {
			a, b := ref[i].Data().Data(), p.Data().Data()
			for j := range a {
				if a[j] != b[j] {
					return fmt.Sprintf("%s[%d] (rank %d)", p.Name, j, rep.Rank)
				}
			}
		}
	}
	return ""
}
