package replica

import "testing"

// mustStep runs one global step, failing the test on a poisoned or broken
// engine — the common case for tests that assert on trajectories rather than
// on Step's error path.
func mustStep(t testing.TB, e *Engine) StepResult {
	t.Helper()
	res, err := e.Step()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustEval evaluates with the distributed loop, failing the test on error.
func mustEval(t testing.TB, e *Engine, samplesPerReplica int) float64 {
	t.Helper()
	acc, err := e.Evaluate(samplesPerReplica)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// mustEvalSerial evaluates serially on rank 0, failing the test on error.
func mustEvalSerial(t testing.TB, e *Engine, maxSamples int) (float64, int) {
	t.Helper()
	acc, n, err := e.EvaluateSerial(maxSamples)
	if err != nil {
		t.Fatal(err)
	}
	return acc, n
}
