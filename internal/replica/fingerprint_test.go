package replica

import (
	"reflect"
	"testing"
)

// fingerprintClass records which fingerprint(s) a Config field feeds. The
// split is the elastic-resume contract: trajectory fields pin what is being
// trained (a mismatch is never resumable), topology fields pin how the work
// is partitioned (elastic resharding may rewrite them), and neutral fields
// change neither the trajectory nor the partitioning.
type fingerprintClass int

const (
	classTrajectory fingerprintClass = iota
	classTopology
	// classBoth marks the batch-geometry fields: they appear in the topology
	// fingerprint as themselves and in the trajectory fingerprint only via
	// their product, the global batch — which is exactly why a reshard that
	// preserves the global batch preserves the trajectory.
	classBoth
	classNeutral
)

// fingerprintAllowlist is the reviewed classification of every Config field.
// TestFingerprintCoversConfig fails when a field is added to Config without
// a decision here, or when an entry goes stale — the drift guard that keeps
// new knobs from silently escaping both fingerprints.
var fingerprintAllowlist = map[string]fingerprintClass{
	"World":           classBoth,
	"PerReplicaBatch": classBoth,
	"GradAccumSteps":  classBoth,

	"Model":               classTrajectory,
	"Dataset":             classTrajectory,
	"OptimizerName":       classTrajectory,
	"WeightDecay":         classTrajectory,
	"Precision":           classTrajectory,
	"LabelSmoothing":      classTrajectory,
	"Seed":                classTrajectory,
	"DropoutOverride":     classTrajectory,
	"DropConnectOverride": classTrajectory,
	"NoAugment":           classTrajectory,
	"BNMomentum":          classTrajectory,
	"EMADecay":            classTrajectory,

	"BNGroupSize":     classTopology,
	"Slice":           classTopology,
	"Mesh":            classTopology,
	"Collective":      classTopology,
	"GradBucketBytes": classTopology,

	// Schedule is a function and cannot be fingerprinted; the train session
	// covers it with the lr-curve sample. The rest are observation- or
	// performance-only and provably trajectory-neutral (see the prefetch,
	// overlap and telemetry equivalence tests).
	"Schedule":          classNeutral,
	"NoBackwardOverlap": classNeutral,
	"PrefetchDepth":     classNeutral,
	"Telemetry":         classNeutral,
}

// TestFingerprintCoversConfig reflects over Config and demands that every
// field has a reviewed classification, and every classification a field.
func TestFingerprintCoversConfig(t *testing.T) {
	typ := reflect.TypeOf(Config{})
	seen := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		seen[name] = true
		if _, ok := fingerprintAllowlist[name]; !ok {
			t.Errorf("Config.%s has no fingerprint classification — decide whether it shapes the trajectory, the topology, both, or neither, and add it to fingerprintAllowlist", name)
		}
	}
	for name := range fingerprintAllowlist {
		if !seen[name] {
			t.Errorf("fingerprintAllowlist entry %q names a field Config no longer has", name)
		}
	}
}

// TestFingerprintClassesObservable spot-checks that the classification is
// real: mutating a field moves exactly the fingerprints its class claims.
func TestFingerprintClassesObservable(t *testing.T) {
	base, err := New(miniEngineConfig(4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	for _, tc := range []struct {
		name                string
		mutate              func(*Config)
		trajMoves, topMoves bool
	}{
		{"seed", func(c *Config) { c.Seed = 99 }, true, false},
		{"grad-buckets", func(c *Config) { c.GradBucketBytes = 4096 }, false, true},
		{"bn-group", func(c *Config) { c.BNGroupSize = 4 }, false, true},
		{"prefetch", func(c *Config) { c.PrefetchDepth = PrefetchOff }, false, false},
		// The world-independence claim behind elastic resharding: halving the
		// world while doubling the per-replica batch keeps the trajectory
		// fingerprint (same global batch) and moves only the topology.
		{"refactorized-batch", func(c *Config) {
			c.World, c.PerReplicaBatch, c.BNGroupSize = 2, 4, 1
		}, false, true},
		// An uncompensated world change moves both (the global batch went
		// with it).
		{"world", func(c *Config) { c.World = 2; c.BNGroupSize = 1 }, true, true},
	} {
		cfg := miniEngineConfig(4, 2, 2)
		tc.mutate(&cfg)
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		trajMoved := e.TrajectoryFingerprint() != base.TrajectoryFingerprint()
		topMoved := e.TopologyFingerprint() != base.TopologyFingerprint()
		e.Close()
		if trajMoved != tc.trajMoves {
			t.Errorf("%s: trajectory fingerprint moved=%t, want %t", tc.name, trajMoved, tc.trajMoves)
		}
		if topMoved != tc.topMoves {
			t.Errorf("%s: topology fingerprint moved=%t, want %t", tc.name, topMoved, tc.topMoves)
		}
	}
}

// TestFingerprintUnionCoversLegacy: the legacy single-string fingerprint and
// the split pair must stay field-equivalent — two engines agree on the legacy
// string exactly when they agree on both halves of the split. Spot-checked
// per class rather than parsed, since the formats differ.
func TestFingerprintUnionCoversLegacy(t *testing.T) {
	base, err := New(miniEngineConfig(4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"seed", func(c *Config) { c.Seed = 99 }},
		{"bn-group", func(c *Config) { c.BNGroupSize = 4 }},
		{"ema", func(c *Config) { c.EMADecay = 0.5 }},
		{"buckets", func(c *Config) { c.GradBucketBytes = 4096 }},
	} {
		cfg := miniEngineConfig(4, 2, 2)
		tc.mutate(&cfg)
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		legacyMoved := e.ConfigFingerprint() != base.ConfigFingerprint()
		splitMoved := e.TrajectoryFingerprint() != base.TrajectoryFingerprint() ||
			e.TopologyFingerprint() != base.TopologyFingerprint()
		e.Close()
		if legacyMoved != splitMoved {
			t.Errorf("%s: legacy fingerprint moved=%t but split pair moved=%t — the two generations diverged", tc.name, legacyMoved, splitMoved)
		}
	}
}
