package replica

// Model-parallel execution over the mesh's model axis (§5 hybrid
// parallelism). Parameters stay fully replicated on every rank — what keeps
// snapshots, EMA and WeightsInSync untouched — but the compute of the 1×1
// convolutions (MBConv expand/project, the head conv) is channel-sharded:
// each of the M ranks of a model group convolves only its owned slice of
// output channels, an all-gather on the model axis rebuilds the full
// activation, and the backward all-reduces the partial input gradients. The
// weight gradient each rank produces covers only its owned rows; after the
// data-axis reduction the owned row slices are all-gathered back into full
// gradients (exchangeGrads), so the optimizer applies identical updates
// everywhere and the replication invariant is restored every step.
//
// Together with the data axis this is structurally a reduce-scatter +
// all-gather of the full gradient across the whole mesh — the same
// decomposition a ring all-reduce performs internally.

import (
	"effnetscale/internal/autograd"
	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/efficientnet"
	"effnetscale/internal/nn"
	"effnetscale/internal/telemetry"
	"effnetscale/internal/tensor"
)

// shardedConv records the channel partition of one 1×1 convolution: this
// rank computes output channels [lo, hi) of cout, and its weight rows occupy
// [elemLo, elemHi) of the flattened gradient (rows are contiguous in the
// [cout, cin, 1, 1] layout, which is what makes the slice exchange a plain
// contiguous all-gather).
type shardedConv struct {
	lo, hi int
	// fullLo/fullLen locate the conv's whole weight in the flattened
	// gradient; elemLo/elemHi this rank's owned rows within it.
	fullLo         int
	elemLo, elemHi int
}

// shardPlan is one replica's model-parallel execution plan: which convs it
// shards, over which model-axis collective, with reusable exchange buffers.
// A nil plan (M = 1) means the replica runs the plain data-parallel path.
type shardPlan struct {
	mIdx, M int
	coll    comm.Collective // model-axis collective (world size M, rank mIdx)
	convs   map[*nn.Conv2D]*shardedConv
	list    []*shardedConv // stable order for the packed gradient exchange

	// sample is the step's phase-timing sample, set by trainStep before the
	// forward; model-axis exchange time accrues to PhaseMPExchange.
	sample *telemetry.StepSample

	// Packed gradient-exchange buffers: local holds this rank's owned row
	// slices of every sharded conv, out the all-gathered slices of all M
	// ranks (rank-major).
	mpLocal, mpOut []float32
}

// buildShardPlan partitions the model's shardable 1×1 convs channel-wise
// across M model ranks. A conv whose output-channel count M does not divide
// stays replicated (every rank computes it fully — still correct, just not
// sharded); the plan covers the rest. Returns nil when nothing is shardable.
func buildShardPlan(m *efficientnet.Model, mIdx, M int, coll comm.Collective) *shardPlan {
	offsets := make(map[*nn.Param]int, len(m.Params()))
	off := 0
	for _, p := range m.Params() {
		offsets[p] = off
		off += p.Data().Len()
	}
	sp := &shardPlan{mIdx: mIdx, M: M, coll: coll, convs: make(map[*nn.Conv2D]*shardedConv)}
	local := 0
	for _, conv := range m.ShardableConvs() {
		cout := conv.W.Data().Dim(0)
		if cout%M != 0 {
			continue
		}
		rowElems := conv.W.Data().Len() / cout
		csh := cout / M
		sc := &shardedConv{
			lo:     mIdx * csh,
			hi:     (mIdx + 1) * csh,
			fullLo: offsets[conv.W],
		}
		sc.elemLo = sc.fullLo + sc.lo*rowElems
		sc.elemHi = sc.fullLo + sc.hi*rowElems
		sp.convs[conv] = sc
		sp.list = append(sp.list, sc)
		local += sc.elemHi - sc.elemLo
	}
	if len(sp.list) == 0 {
		return nil
	}
	sp.mpLocal = make([]float32, local)
	sp.mpOut = make([]float32, local*M)
	return sp
}

// roundBF16 mirrors the mixed-precision rounding autograd.Conv2D applies, so
// the sharded conv feeds its kernel the same operand precision.
func roundBF16(t *tensor.Tensor, enabled bool) *tensor.Tensor {
	if !enabled {
		return t
	}
	r := tensor.New(t.Shape()...)
	bf16.RoundSlice(r.Data(), t.Data())
	return r
}

// conv1x1 is the plan's Conv1x1Fn: sharded convs compute only the owned
// output-channel rows and all-gather the activation across the model axis;
// everything else runs the plain layer.
func (sp *shardPlan) conv1x1(ctx *nn.Ctx, l *nn.Conv2D, x *autograd.Value) *autograd.Value {
	sc := sp.convs[l]
	if sc == nil {
		return l.Forward(ctx, x)
	}
	w := l.W
	cout := w.Data().Dim(0)
	cin := w.Data().Dim(1)
	csh := sc.hi - sc.lo
	policy := ctx.Precision
	xc := roundBF16(x.T, policy.ConvBF16)
	// The owned weight rows are a contiguous span of the [cout,cin,1,1]
	// layout; FromSlice views them without copying.
	wRows := tensor.FromSlice(w.Data().Data()[sc.lo*cin:sc.hi*cin], csh, cin, 1, 1)
	wc := roundBF16(wRows, policy.ConvBF16)
	local := tensor.Conv2DScratch(xc, wc, l.Spec, ctx.Scratch) // [N, csh, OH, OW]
	n, _, oh, ow := local.Dim4()
	chunk := csh * oh * ow

	// Activation all-gather: every model rank contributes its channel slice;
	// the gathered buffer is rank-major, so re-interleave per sample into the
	// full [N, cout, OH, OW] activation. Each row of the gather carries a
	// per-sample contiguous channel block — no strided copies.
	t0 := sp.sample.Now()
	gathered := make([]float32, sp.M*n*chunk)
	sp.coll.AllGather(local.Data(), gathered)
	sp.sample.Add(telemetry.PhaseMPExchange, t0)
	out := tensor.New(n, cout, oh, ow)
	for mm := 0; mm < sp.M; mm++ {
		seg := gathered[mm*n*chunk : (mm+1)*n*chunk]
		for i := 0; i < n; i++ {
			copy(out.Data()[(i*cout+mm*csh)*oh*ow:][:chunk], seg[i*chunk:(i+1)*chunk])
		}
	}

	return autograd.NewOp("shardconv1x1", out, []*autograd.Value{x, w.Value}, func(g *tensor.Tensor) {
		// Backward of the gather is a slice: only the owned channels' grads
		// drive this rank's kernel backward.
		gsh := tensor.New(n, csh, oh, ow)
		for i := 0; i < n; i++ {
			copy(gsh.Data()[i*chunk:(i+1)*chunk], g.Data()[(i*cout+sc.lo)*oh*ow:][:chunk])
		}
		gc := roundBF16(gsh, policy.ConvBF16)
		dx, dwSh := tensor.Conv2DBackwardScratch(xc, wc, gc, l.Spec, ctx.Scratch)
		// dx is partial — each rank saw only its output channels — so the
		// model axis sums the contributions (the gradient counterpart of the
		// forward gather).
		t0 := sp.sample.Now()
		sp.coll.AllReduce(dx.Data())
		sp.sample.Add(telemetry.PhaseMPExchange, t0)
		x.Accumulate(dx)
		if w.Value.RequiresGrad() {
			// Owned rows only; the rest stays zero until exchangeGrads
			// rebuilds the full gradient after the data-axis reduction.
			dw := tensor.New(w.Data().Shape()...)
			copy(dw.Data()[sc.lo*cin:sc.hi*cin], dwSh.Data())
			w.Value.Accumulate(dw)
		}
	})
}

// forward runs the sharded forward pass.
func (sp *shardPlan) forward(ctx *nn.Ctx, m *efficientnet.Model, x *autograd.Value) *autograd.Value {
	return m.ForwardConv(ctx, x, sp.conv1x1)
}

// exchangeGrads rebuilds the full gradients of the sharded convs after the
// data-axis reduction: each rank's gradBuf holds data-reduced values on its
// owned row spans (zeros elsewhere), and one packed model-axis all-gather
// distributes every rank's slices to everyone. Runs on the loop goroutine
// under PhaseMPExchange.
func (sp *shardPlan) exchangeGrads(gradBuf []float32, sample *telemetry.StepSample) {
	o := 0
	for _, sc := range sp.list {
		o += copy(sp.mpLocal[o:], gradBuf[sc.elemLo:sc.elemHi])
	}
	t0 := sample.Now()
	sp.coll.AllGather(sp.mpLocal, sp.mpOut)
	sample.Add(telemetry.PhaseMPExchange, t0)
	for mm := 0; mm < sp.M; mm++ {
		seg := sp.mpOut[mm*len(sp.mpLocal) : (mm+1)*len(sp.mpLocal)]
		o := 0
		for _, sc := range sp.list {
			n := sc.elemHi - sc.elemLo
			dst := sc.fullLo + mm*n
			copy(gradBuf[dst:dst+n], seg[o:o+n])
			o += n
		}
	}
}
