package replica

import (
	"reflect"
	"testing"
)

// TestBucketMembershipEdgeCases pins the parameter↔bucket tables the
// grad-ready dispatch counts down: bucket boundaries landing mid-parameter,
// ragged last buckets, a bucket swallowing the whole gradient, and a
// single-parameter model.
func TestBucketMembershipEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name    string
		spans   [][2]int
		buckets [][2]int
		wantPB  [][2]int
		wantMem []int
	}{
		{
			name:    "boundary mid-parameter",
			spans:   [][2]int{{0, 3}, {3, 10}}, // second param straddles the edge at 5
			buckets: [][2]int{{0, 5}, {5, 10}},
			wantPB:  [][2]int{{0, 0}, {0, 1}},
			wantMem: []int{2, 1},
		},
		{
			name:    "ragged last bucket",
			spans:   [][2]int{{0, 4}, {4, 9}},
			buckets: [][2]int{{0, 4}, {4, 8}, {8, 9}},
			wantPB:  [][2]int{{0, 0}, {1, 2}},
			wantMem: []int{1, 1, 1},
		},
		{
			name:    "bucket covers whole gradient",
			spans:   [][2]int{{0, 2}, {2, 5}, {5, 7}},
			buckets: [][2]int{{0, 7}},
			wantPB:  [][2]int{{0, 0}, {0, 0}, {0, 0}},
			wantMem: []int{3},
		},
		{
			name:    "single parameter across buckets",
			spans:   [][2]int{{0, 6}},
			buckets: [][2]int{{0, 4}, {4, 6}},
			wantPB:  [][2]int{{0, 1}},
			wantMem: []int{1, 1},
		},
		{
			name:    "single parameter single bucket",
			spans:   [][2]int{{0, 6}},
			buckets: [][2]int{{0, 6}},
			wantPB:  [][2]int{{0, 0}},
			wantMem: []int{1},
		},
	} {
		pb, mem := bucketMembership(tc.spans, tc.buckets)
		if !reflect.DeepEqual(pb, tc.wantPB) {
			t.Errorf("%s: paramBuckets = %v, want %v", tc.name, pb, tc.wantPB)
		}
		if !reflect.DeepEqual(mem, tc.wantMem) {
			t.Errorf("%s: members = %v, want %v", tc.name, mem, tc.wantMem)
		}
	}
}

// TestBucketMembershipMatchesEngineTables cross-checks the real engine's
// tables: every parameter's bucket range must cover its span, and member
// counts must sum to the total number of (param, bucket) overlaps.
func TestBucketMembershipMatchesEngineTables(t *testing.T) {
	e, err := New(miniEngineConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	spans := paramSpans(e.Replica(0).Model.Params())
	if len(e.paramBuckets) != len(spans) {
		t.Fatalf("paramBuckets has %d entries for %d params", len(e.paramBuckets), len(spans))
	}
	overlaps := 0
	for i, s := range spans {
		pb := e.paramBuckets[i]
		if e.buckets[pb[0]][1] <= s[0] || e.buckets[pb[1]][0] >= s[1] {
			t.Fatalf("param %d span %v not covered by buckets %v", i, s, pb)
		}
		overlaps += pb[1] - pb[0] + 1
	}
	sum := 0
	for _, m := range e.bucketParams {
		if m < 1 {
			t.Fatalf("a bucket with no members can never dispatch: %v", e.bucketParams)
		}
		sum += m
	}
	if sum != overlaps {
		t.Fatalf("member counts sum to %d, want %d overlaps", sum, overlaps)
	}
}

// TestOverlapVsSerializedBitwise runs the same training twice — grad-ready
// in-backward dispatch vs all buckets after backward — and requires
// bit-for-bit identical weights: the overlap changes when buckets reduce,
// never what they contain or the averaging order.
func TestOverlapVsSerializedBitwise(t *testing.T) {
	overlapped := miniEngineConfig(4, 2, 2)
	serialized := miniEngineConfig(4, 2, 2)
	serialized.NoBackwardOverlap = true
	a, err := New(overlapped)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(serialized)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 4; i++ {
		ra, rb := mustStep(t, a), mustStep(t, b)
		if ra.Loss != rb.Loss || ra.Accuracy != rb.Accuracy {
			t.Fatalf("step %d: overlapped %+v vs serialized %+v", i, ra, rb)
		}
	}
	for i, p := range a.Replica(0).Model.Params() {
		q := b.Replica(0).Model.Params()[i]
		pd, qd := p.Data().Data(), q.Data().Data()
		for j := range pd {
			if pd[j] != qd[j] {
				t.Fatalf("weights diverge at %s[%d]: %v vs %v", p.Name, j, pd[j], qd[j])
			}
		}
	}
}
