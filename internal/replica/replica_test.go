package replica

import (
	"math"
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/schedule"
)

func miniEngineConfig(world, perBatch, bnGroup int) Config {
	ds := data.New(data.MiniConfig(4, 256, 16))
	return Config{
		World:               world,
		PerReplicaBatch:     perBatch,
		Model:               "pico",
		Dataset:             ds,
		OptimizerName:       "sgd",
		WeightDecay:         0,
		Schedule:            schedule.Constant(0.05),
		BNGroupSize:         bnGroup,
		Precision:           bf16.FP32Policy,
		LabelSmoothing:      0,
		Seed:                7,
		DropoutOverride:     0,
		DropConnectOverride: 0,
		NoAugment:           true,
	}
}

func TestEngineValidation(t *testing.T) {
	cfg := miniEngineConfig(4, 2, 1)
	cfg.World = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("world 0 must error")
	}
	cfg = miniEngineConfig(4, 2, 3)
	if _, err := New(cfg); err == nil {
		t.Fatal("non-dividing BN group must error")
	}
	cfg = miniEngineConfig(4, 2, 1)
	cfg.Model = "b99"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown model must error")
	}
	cfg = miniEngineConfig(4, 2, 1)
	cfg.OptimizerName = "bogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown optimizer must error")
	}
	cfg = miniEngineConfig(4, 2, 1)
	cfg.Dataset = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("nil dataset must error")
	}
}

func TestReplicasStayInSync(t *testing.T) {
	// The defining invariant of synchronous data parallelism: after any
	// number of steps, all replicas hold bitwise-identical weights.
	e, err := New(miniEngineConfig(4, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas differ at init: %s", d)
	}
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged after training: %s", d)
	}
}

func TestReplicasStayInSyncWithDistributedBN(t *testing.T) {
	e, err := New(miniEngineConfig(4, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged with distributed BN: %s", d)
	}
}

func TestDataParallelEquivalence(t *testing.T) {
	// 4 replicas × batch 4 with full-world BN must match 1 replica × batch
	// 16 step for step (same global batch content, same full-batch BN
	// statistics), up to floating-point reduction order.
	multi, err := New(miniEngineConfig(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(miniEngineConfig(1, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rm := mustStep(t, multi)
		rs := mustStep(t, single)
		if math.Abs(rm.Loss-rs.Loss) > 1e-3*(1+math.Abs(rs.Loss)) {
			t.Fatalf("step %d: multi loss %v vs single loss %v", i, rm.Loss, rs.Loss)
		}
	}
	// Weights must agree closely after the steps.
	mp := multi.Replica(0).Model.Params()
	sp := single.Replica(0).Model.Params()
	var maxDiff float64
	for i := range mp {
		a, b := mp[i].Data().Data(), sp[i].Data().Data()
		for j := range a {
			d := math.Abs(float64(a[j] - b[j]))
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 5e-4 {
		t.Fatalf("weights diverged between multi and single: max diff %v", maxDiff)
	}
}

func TestGlobalBatchAndSteps(t *testing.T) {
	e, err := New(miniEngineConfig(4, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e.GlobalBatch() != 32 {
		t.Fatalf("GlobalBatch = %d, want 32", e.GlobalBatch())
	}
	if e.StepsPerEpoch() != 8 { // 256 / 32
		t.Fatalf("StepsPerEpoch = %d, want 8", e.StepsPerEpoch())
	}
}

func TestStepMetricsSane(t *testing.T) {
	e, err := New(miniEngineConfig(2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	r := mustStep(t, e)
	if r.Loss <= 0 || math.IsNaN(r.Loss) {
		t.Fatalf("loss = %v", r.Loss)
	}
	// 4 classes: untrained accuracy should be below ~0.8 and >= 0.
	if r.Accuracy < 0 || r.Accuracy > 1 {
		t.Fatalf("accuracy = %v out of range", r.Accuracy)
	}
	if r.LR != 0.05 {
		t.Fatalf("LR = %v, want 0.05", r.LR)
	}
}

func TestEvaluateDistributed(t *testing.T) {
	e, err := New(miniEngineConfig(4, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	acc := mustEval(t, e, 8)
	if acc < 0 || acc > 1 {
		t.Fatalf("eval accuracy = %v out of range", acc)
	}
	// Evaluation must not change weights.
	before := e.Replica(0).Model.Params()[0].Data().Clone()
	e.Evaluate(4)
	after := e.Replica(0).Model.Params()[0].Data()
	for i := range before.Data() {
		if before.Data()[i] != after.Data()[i] {
			t.Fatal("evaluation mutated weights")
		}
	}
}

func TestMiniTrainingLearns(t *testing.T) {
	// Full-stack integration: 2 replicas, distributed BN, real SynthImageNet
	// — training accuracy must rise well above chance (25% for 4 classes).
	cfg := miniEngineConfig(2, 8, 2)
	cfg.OptimizerName = "sgd"
	cfg.Schedule = schedule.Warmup{Epochs: 1, Inner: schedule.Constant(0.1)}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last StepResult
	steps := 3 * e.StepsPerEpoch() // 3 epochs
	var accSum float64
	var accN int
	for i := 0; i < steps; i++ {
		last = mustStep(t, e)
		if i >= steps-8 {
			accSum += last.Accuracy
			accN++
		}
	}
	finalAcc := accSum / float64(accN)
	if finalAcc < 0.5 {
		t.Fatalf("training accuracy after %d steps = %.3f, want > 0.5 (chance = 0.25); last loss %.3f", steps, finalAcc, last.Loss)
	}
	if d := e.WeightsInSync(); d != "" {
		t.Fatalf("replicas diverged: %s", d)
	}
}
