package replica

import (
	"testing"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/schedule"
)

// TestPrefetchMatchesInline is the acceptance test for the input pipeline:
// with augmentation on, the prefetched engine (default) and the synchronous
// engine must produce bitwise-identical loss trajectories and weights.
func TestPrefetchMatchesInline(t *testing.T) {
	mk := func(prefetch int) *Engine {
		cfg := miniEngineConfig(4, 4, 4)
		cfg.NoAugment = false
		cfg.GradAccumSteps = 2
		cfg.PrefetchDepth = prefetch
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	pre, inline := mk(0), mk(PrefetchOff)
	defer pre.Close()
	if pre.Prefetching() == 0 {
		t.Fatal("default config did not enable prefetching")
	}
	if inline.Prefetching() != 0 {
		t.Fatal("PrefetchOff did not disable prefetching")
	}
	steps := pre.StepsPerEpoch() + 2 // cross an epoch boundary
	for i := 0; i < steps; i++ {
		rp, ri := mustStep(t, pre), mustStep(t, inline)
		if rp.Loss != ri.Loss || rp.Accuracy != ri.Accuracy {
			t.Fatalf("step %d: prefetched (loss %v acc %v) != inline (loss %v acc %v)", i, rp.Loss, rp.Accuracy, ri.Loss, ri.Accuracy)
		}
	}
	pp, ip := pre.Replica(0).Model.Params(), inline.Replica(0).Model.Params()
	for i := range pp {
		a, b := pp[i].Data().Data(), ip[i].Data().Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("weights diverged at %s[%d]", pp[i].Name, j)
			}
		}
	}
}

func TestPrefetchedEvalMatchesInline(t *testing.T) {
	mk := func(prefetch int) *Engine {
		cfg := miniEngineConfig(4, 4, 1) // val split 64, shard 16 per rank
		cfg.PrefetchDepth = prefetch
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	pre, inline := mk(0), mk(PrefetchOff)
	defer pre.Close()
	// Ragged cap: 10 samples per replica at batch 4 forces a partial final
	// batch on both paths.
	for _, cap := range []int{0, 10} {
		if a, b := mustEval(t, pre, cap), mustEval(t, inline, cap); a != b {
			t.Fatalf("Evaluate(%d): prefetched %v != inline %v", cap, a, b)
		}
	}
	accP, nP := mustEvalSerial(t, pre, 10)
	accI, nI := mustEvalSerial(t, inline, 10)
	if accP != accI || nP != nI {
		t.Fatalf("EvaluateSerial: prefetched (%v, %d) != inline (%v, %d)", accP, nP, accI, nI)
	}
	// Reusing the eval pool across calls must not change results.
	if a, b := mustEval(t, pre, 10), mustEval(t, inline, 10); a != b {
		t.Fatalf("second Evaluate: prefetched %v != inline %v", a, b)
	}
}

func TestEvaluateWithEmptyValShards(t *testing.T) {
	// ValSize < World: some ranks hold empty validation shards. They must
	// contribute zero counts to the all-reduce instead of panicking.
	for _, prefetch := range []int{0, PrefetchOff} {
		ds := data.New(data.Config{NumClasses: 2, TrainSize: 16, ValSize: 2, Resolution: 16, NoiseStd: 0.25, Seed: 1})
		e, err := New(Config{
			World: 4, PerReplicaBatch: 2, Model: "pico", Dataset: ds,
			OptimizerName: "sgd", Schedule: schedule.Constant(0.05),
			Precision: bf16.FP32Policy, Seed: 1, NoAugment: true,
			PrefetchDepth: prefetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		acc := mustEval(t, e, 0)
		if acc < 0 || acc > 1 {
			t.Fatalf("prefetch=%d: eval accuracy %v out of range", prefetch, acc)
		}
		e.Close()
	}
}

func TestTrainSplitSmallerThanWorldErrors(t *testing.T) {
	ds := data.New(data.Config{NumClasses: 2, TrainSize: 2, ValSize: 2, Resolution: 16, NoiseStd: 0.25, Seed: 1})
	_, err := New(Config{
		World: 4, PerReplicaBatch: 1, Model: "pico", Dataset: ds,
		OptimizerName: "sgd", Schedule: schedule.Constant(0.05),
		Precision: bf16.FP32Policy, Seed: 1, NoAugment: true,
	})
	if err == nil {
		t.Fatal("train split smaller than world must error, not panic later")
	}
}

func TestCloseIsIdempotentAndStopsPipelines(t *testing.T) {
	e, err := New(miniEngineConfig(2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	e.Close()
	e.Close()
	for r := 0; r < e.World(); r++ {
		if pipe := e.Replica(r).pipe; pipe != nil {
			if _, ok := pipe.Next(); ok {
				t.Fatalf("rank %d pipeline still delivering after Close", r)
			}
		}
	}
}
