package replica

import (
	"math"
	"strings"
	"testing"

	"effnetscale/internal/mesh"
)

// meshEngineConfig is miniEngineConfig laid out as a d×m mesh.
func meshEngineConfig(d, m, perBatch, bnGroup int) Config {
	cfg := miniEngineConfig(d*m, perBatch, bnGroup)
	cfg.Mesh = mesh.Shape{Data: d, Model: m}
	return cfg
}

// TestMeshM1BitForBit pins the hybrid engine's degenerate case: an explicit
// D×1 mesh is the pure data-parallel engine, bit for bit — same losses, same
// weights. The mesh must cost nothing when the model axis is trivial.
func TestMeshM1BitForBit(t *testing.T) {
	plain, err := New(miniEngineConfig(4, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	meshed, err := New(meshEngineConfig(4, 1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer meshed.Close()
	for i := 0; i < 3; i++ {
		rp := mustStep(t, plain)
		rm := mustStep(t, meshed)
		if rp.Loss != rm.Loss {
			t.Fatalf("step %d: plain loss %v != 4x1 mesh loss %v", i, rp.Loss, rm.Loss)
		}
	}
	pp := plain.Replica(0).Model.Params()
	mp := meshed.Replica(0).Model.Params()
	for i := range pp {
		a, b := pp[i].Data().Data(), mp[i].Data().Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("param %d elem %d: plain %v != meshed %v", i, j, a[j], b[j])
			}
		}
	}
}

// TestMeshHybridEquivalence trains the same global batch as a 2×2 hybrid
// mesh (2 data replicas × 2 model shards, per-replica batch 8) and as a
// single replica with the full batch of 16, and demands the same trajectory
// up to floating-point reduction order — the hybrid counterpart of
// TestDataParallelEquivalence. The BN group spans the data axis in both, so
// batch statistics cover the full global batch.
func TestMeshHybridEquivalence(t *testing.T) {
	hybrid, err := New(meshEngineConfig(2, 2, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer hybrid.Close()
	single, err := New(miniEngineConfig(1, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if gb := hybrid.GlobalBatch(); gb != 16 {
		t.Fatalf("2x2 mesh global batch = %d, want 16 (model axis must not multiply data)", gb)
	}
	for i := 0; i < 2; i++ {
		rh := mustStep(t, hybrid)
		rs := mustStep(t, single)
		if math.Abs(rh.Loss-rs.Loss) > 1e-3*(1+math.Abs(rs.Loss)) {
			t.Fatalf("step %d: hybrid loss %v vs single loss %v", i, rh.Loss, rs.Loss)
		}
	}
	hp := hybrid.Replica(0).Model.Params()
	sp := single.Replica(0).Model.Params()
	var maxDiff float64
	for i := range hp {
		a, b := hp[i].Data().Data(), sp[i].Data().Data()
		for j := range a {
			d := math.Abs(float64(a[j] - b[j]))
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 5e-4 {
		t.Fatalf("weights diverged between hybrid and single: max diff %v", maxDiff)
	}
}

// TestMeshWeightsInSync checks the replication invariant under sharded
// compute: after the gradient exchange every rank of the 2×2 mesh — across
// both axes — must hold bitwise identical weights.
func TestMeshWeightsInSync(t *testing.T) {
	e, err := New(meshEngineConfig(2, 2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.Step()
		if d := e.WeightsInSync(); d != "" {
			t.Fatalf("after step %d: %s", i+1, d)
		}
	}
}

// TestMeshValidation exercises the engine's mesh checks.
func TestMeshValidation(t *testing.T) {
	cfg := miniEngineConfig(4, 2, 1)
	cfg.Mesh = mesh.Shape{Data: 2, Model: 4}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "mesh") {
		t.Fatalf("mesh/world mismatch accepted: %v", err)
	}
	cfg = meshEngineConfig(2, 2, 2, 2)
	cfg.BNGroupSize = 4 // exceeds the data axis
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "data axis") {
		t.Fatalf("BN group larger than data axis accepted: %v", err)
	}
}

// TestRestoreRejectsMeshShapeChange captures a 2×2 hybrid run and tries to
// resume it as 4×1 pure data parallelism over the same four ranks. The
// restore must fail with an error naming both shapes — re-gridding changes
// the data sharding and reduction order, so the trajectory is not portable.
func TestRestoreRejectsMeshShapeChange(t *testing.T) {
	hybrid, err := New(meshEngineConfig(2, 2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer hybrid.Close()
	hybrid.Step()
	snap, err := hybrid.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := New(meshEngineConfig(4, 1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	err = flat.RestoreState(snap)
	if err == nil {
		t.Fatal("restoring a 2x2 snapshot into a 4x1 engine succeeded")
	}
	if !strings.Contains(err.Error(), "2x2") || !strings.Contains(err.Error(), "4x1") {
		t.Fatalf("mesh-shape error does not name both shapes: %v", err)
	}

	// The round trip into an identically shaped engine must still work.
	same, err := New(meshEngineConfig(2, 2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer same.Close()
	if err := same.RestoreState(snap); err != nil {
		t.Fatalf("restore into identical 2x2 engine: %v", err)
	}
}

// TestMeshFingerprintSuffix pins the compatibility contract: pure
// data-parallel fingerprints are byte-identical with and without an explicit
// mesh (old snapshots keep restoring), and only hybrid shapes add the
// mesh term.
func TestMeshFingerprintSuffix(t *testing.T) {
	plain, err := New(miniEngineConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	meshed, err := New(meshEngineConfig(2, 1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer meshed.Close()
	if a, b := plain.ConfigFingerprint(), meshed.ConfigFingerprint(); a != b {
		t.Fatalf("2x1 mesh fingerprint differs from plain world-2:\n  %s\n  %s", a, b)
	}
	if strings.Contains(plain.ConfigFingerprint(), "mesh=") {
		t.Fatal("pure data-parallel fingerprint must not carry a mesh term")
	}
	hybrid, err := New(meshEngineConfig(1, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer hybrid.Close()
	if !strings.Contains(hybrid.ConfigFingerprint(), "mesh=1x2") {
		t.Fatalf("hybrid fingerprint lacks mesh term: %s", hybrid.ConfigFingerprint())
	}
}
