// Resume: demonstrate the versioned training-state snapshot API end to end —
// train with periodic snapshots, "crash" mid-epoch, resume from disk in a
// fresh session, and verify the resumed trajectory is bit-for-bit identical
// to an uninterrupted run.
//
// Snapshots capture everything a faithful resume needs: model weights, BN
// running statistics (per replica — BN groups diverge), optimizer slots, the
// EMA shadow, the schedule position, and each replica's RNG and
// data-pipeline cursors. A weights-only checkpoint (train.Session.
// SaveCheckpoint) cannot do this: it would restart the optimizer, EMA,
// schedule and input order from scratch.
package main

import (
	"fmt"
	"log"
	"os"

	"effnetscale/internal/data"
	"effnetscale/internal/train"
)

func opts(extra ...train.Option) []train.Option {
	base := []train.Option{
		train.WithModel("pico"),
		train.WithWorld(2),
		train.WithPerReplicaBatch(4),
		train.WithData(data.MiniConfig(4, 64, 16)),
		train.WithOptimizer("lars", 1e-5),
		train.WithLinearScaling(20, 1, train.PolynomialDecay),
		train.WithEMA(0.9),
		train.WithSeed(11),
		train.WithEpochs(3),
		train.WithEvalSamples(8),
	}
	return append(base, extra...)
}

func run(label string, o ...train.Option) *train.Result {
	sess, err := train.New(o...)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if path, step, ok := sess.ResumedFrom(); ok {
		fmt.Printf("%s: resumed from %s at step %d\n", label, path, step)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d steps, peak top-1 %.4f\n", label, res.StepsRun, res.PeakAccuracy)
	return res
}

func main() {
	dir, err := os.MkdirTemp("", "effnet-snapshots-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The reference: one uninterrupted run.
	ref := run("uninterrupted", opts()...)

	// The same run, snapshotting every 2 steps and "preempted" mid-epoch at
	// step 7 (StopAfterStep stands in for a kill; effnettrain's
	// -kill-at-step flag does it with a real os.Exit).
	run("interrupted",
		opts(
			train.WithSnapshotDir(dir),
			train.WithSnapshotEvery(2),
			train.WithKeepLast(3),
			train.WithCallbacks(train.StopAfterStep(7)),
		)...)

	// A fresh session resumes from the newest snapshot on disk and finishes
	// the job.
	res := run("resumed", opts(train.WithResume(dir))...)
	if !res.Resumed {
		log.Fatal("resumed run did not report Result.Resumed")
	}

	if res.PeakAccuracy != ref.PeakAccuracy {
		log.Fatalf("trajectories diverged: resumed peak %v, uninterrupted %v", res.PeakAccuracy, ref.PeakAccuracy)
	}
	fmt.Println("resumed trajectory matches the uninterrupted run bit-for-bit ✓")
}
