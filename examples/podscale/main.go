// Podscale simulates the paper's headline run — EfficientNet-B5 on 1024
// TPU-v3 cores at global batch 65536 — end to end: step-time breakdown,
// modelled accuracy trajectory, and the time-to-83% figure, alongside the
// scaling sweep of Figure 1.
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/metrics"
	"effnetscale/internal/podsim"
)

func main() {
	cfg := podsim.TrainConfig{
		Model: "b5", Optimizer: "lars", GlobalBatch: 65536,
		LRPer256: 0.081, Decay: "polynomial", WarmupEpochs: 43, Epochs: 350,
	}
	const cores = 1024

	sb, err := podsim.ModelStep(cfg.Model, cores, cfg.GlobalBatch, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Headline run: EfficientNet-B5, 1024 TPU-v3 cores, global batch 65536, LARS")
	fmt.Printf("  per-core batch:       %d\n", sb.PerCoreBatch)
	fmt.Printf("  compute / step:       %.1f ms\n", sb.ComputeSeconds*1000)
	fmt.Printf("  gradient all-reduce:  %.2f ms (%.2f%% of step)\n", sb.AllReduceSeconds*1000, sb.AllReducePct())
	fmt.Printf("  distributed BN cost:  %.3f ms (group size %d)\n", sb.BNSeconds*1000, sb.BNGroupSize)

	pt, err := podsim.TimeToPeak(cfg, cores, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  modelled time to peak: %.1f minutes → top-1 %.3f\n", pt.MinutesToPeak, pt.PeakAcc)
	fmt.Printf("  paper:                 64 minutes → top-1 0.830\n\n")

	traj := metrics.NewTable("Modelled accuracy trajectory (B5 @ 65536)", "Epoch", "Top-1")
	for _, e := range []float64{10, 43, 100, 200, 300, 348} {
		acc, err := podsim.AccuracyAtEpoch(cfg, e)
		if err != nil {
			log.Fatal(err)
		}
		traj.AddRow(e, round4(acc))
	}
	fmt.Print(traj.String())
	fmt.Println()

	pts, err := podsim.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fig := metrics.NewTable("Figure 1 sweep: time to peak vs slice size", "Model", "Cores", "Batch", "Optimizer", "Minutes", "Top-1")
	for _, p := range pts {
		fig.AddRow(p.Model, p.Cores, p.GlobalBatch, p.Optimizer, round1(p.MinutesToPeak), round4(p.PeakAcc))
	}
	fmt.Print(fig.String())
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }
func round4(v float64) float64 { return float64(int(v*10000+0.5)) / 10000 }
