// Distbn explores the paper's §3.4 distributed batch normalization: the BN
// group size trades normalization batch (accuracy) against communication.
// It runs real mini-scale training at several group sizes, then prints the
// modelled pod-scale cost of 1-D runs versus the 2-D tiling the paper uses
// for groups larger than 16.
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/bf16"
	"effnetscale/internal/comm"
	"effnetscale/internal/data"
	"effnetscale/internal/metrics"
	"effnetscale/internal/schedule"
	"effnetscale/internal/topology"
	"effnetscale/internal/train"
)

func main() {
	// Part 1 — real training: vary the BN group on 8 replicas. Per-replica
	// batch 4 is deliberately small so local BN statistics are noisy and
	// grouping visibly helps.
	ds := data.New(data.MiniConfig(8, 2048, 16))
	const (
		world    = 8
		perBatch = 4
		epochs   = 5
	)
	tab := metrics.NewTable(
		"Real mini-scale training: BN group size vs accuracy (8 replicas × batch 4)",
		"BN group", "BN batch", "Final train acc", "Val acc")
	for _, group := range []int{1, 2, 4, 8} {
		tail := train.NewTrailingAccuracy(4)
		sess, err := train.New(
			train.WithModel("pico"),
			train.WithWorld(world),
			train.WithPerReplicaBatch(perBatch),
			train.WithDataset(ds),
			train.WithOptimizer("sgd", 0),
			train.WithSchedule(schedule.Warmup{Epochs: 0.5, Inner: schedule.Constant(0.1)}),
			train.WithBNGroup(group),
			train.WithPrecision(bf16.FP32Policy),
			train.WithLabelSmoothing(0.1),
			train.WithSeed(5),
			train.WithBNMomentum(0.9),
			train.WithEpochs(epochs),
			train.WithEvalEvery(1<<30), // evaluate once, at the end
			train.WithEvalSamples(64),
			train.WithCallbacks(tail),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		sess.Close() // each round owns its replicas' input pipelines
		tab.AddRow(group, group*perBatch, round3(tail.Mean()), round3(res.PeakAccuracy))
	}
	fmt.Print(tab.String())

	// Part 2 — modelled pod-scale cost: 1-D contiguous groups vs 2-D tiles
	// on a 1024-core slice (the >16 regime where the paper tiles).
	slice, err := topology.SliceForCores(1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	cost := metrics.NewTable(
		"Modelled BN stats all-reduce on 1024 cores (per step, B2 channel payload)",
		"Group size", "Grouping", "Diameter (hops)", "Cost (µs)")
	const statsBytes = 2 * 15000 * 8 // ≈ B2's total BN channels × 2 vectors × float64
	for _, group := range []int{8, 16, 32, 64} {
		groups, err := topology.BNGroups(1024, group, slice)
		if err != nil {
			log.Fatal(err)
		}
		kind := "1-D run"
		if group > 16 {
			kind = "2-D tile"
		}
		d := topology.GroupDiameter(groups[0], slice)
		us := comm.GroupAllReduceSeconds(statsBytes, group, d, comm.TPUv3Links) * 1e6
		cost.AddRow(group, kind, d, round1(us))

		// Counterfactual: force a 1-D run of the same size for comparison.
		if group > 16 {
			strung := make([]int, group)
			for i := range strung {
				strung[i] = i
			}
			d1 := topology.GroupDiameter(strung, slice)
			us1 := comm.GroupAllReduceSeconds(statsBytes, group, d1, comm.TPUv3Links) * 1e6
			cost.AddRow(group, "1-D (counterfactual)", d1, round1(us1))
		}
	}
	fmt.Print(cost.String())
	fmt.Println("\n2-D tiling keeps group members close in both torus dimensions, cutting")
	fmt.Println("the latency term of the statistics all-reduce — the §3.4 rationale.")
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }
func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
