// Evalloop demonstrates the paper's §3.3 bottleneck: with TPUEstimator,
// evaluation runs serially on a dedicated worker, so end-to-end time depends
// heavily on evaluation; the distributed train+eval loop shards evaluation
// across all replicas. Both loops are run for real on the mini engine and
// their evaluation costs compared.
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/metrics"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/trainloop"
)

func main() {
	const (
		world    = 8
		perBatch = 8
		epochs   = 2
		evalPer  = 32
	)

	tab := metrics.NewTable(
		fmt.Sprintf("Eval-loop ablation (%d replicas, %d epochs, %d eval samples/replica)", world, epochs, evalPer),
		"Loop", "Peak acc", "Serial eval samples", "Eval wall time", "Total time")

	for _, mode := range []trainloop.LoopMode{trainloop.Distributed, trainloop.Estimator} {
		eng := newEngine()
		res := trainloop.Run(trainloop.Config{
			Engine:                eng,
			Epochs:                epochs,
			EvalSamplesPerReplica: evalPer,
			Mode:                  mode,
		})
		tab.AddRow(mode.String(), round3(res.PeakAccuracy), res.EvalSerialSamples,
			res.EvalWallTime.Round(1e6), res.TotalTime.Round(1e6))
	}
	fmt.Print(tab.String())
	fmt.Printf("\nThe Estimator loop pushes %d× more evaluation work through a single\n", world)
	fmt.Println("worker per eval — the §3.3 bottleneck the distributed loop removes.")
}

func newEngine() *replica.Engine {
	ds := data.New(data.MiniConfig(8, 2048, 16))
	eng, err := replica.New(replica.Config{
		World:               8,
		PerReplicaBatch:     8,
		Model:               "pico",
		Dataset:             ds,
		OptimizerName:       "sgd",
		Schedule:            schedule.Constant(0.05),
		BNGroupSize:         1,
		Precision:           bf16.FP32Policy,
		LabelSmoothing:      0.1,
		Seed:                3,
		DropoutOverride:     0,
		DropConnectOverride: 0,
		BNMomentum:          0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
