// Evalloop demonstrates the paper's §3.3 bottleneck: with TPUEstimator,
// evaluation runs serially on a dedicated worker, so end-to-end time depends
// heavily on evaluation; the distributed train+eval loop shards evaluation
// across all replicas. Both strategies are pluggable train.EvalStrategy
// implementations, run for real on the mini engine and compared.
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/metrics"
	"effnetscale/internal/schedule"
	"effnetscale/internal/train"
)

func main() {
	const (
		world    = 8
		perBatch = 8
		epochs   = 2
		evalPer  = 32
	)

	tab := metrics.NewTable(
		fmt.Sprintf("Eval-loop ablation (%d replicas, %d epochs, %d eval samples/replica)", world, epochs, evalPer),
		"Loop", "Peak acc", "Serial eval samples", "Eval wall time", "Total time")

	for _, strategy := range []train.EvalStrategy{train.Distributed{}, train.Estimator{}} {
		sess, err := train.New(
			train.WithModel("pico"),
			train.WithWorld(world),
			train.WithPerReplicaBatch(perBatch),
			train.WithData(data.MiniConfig(8, 2048, 16)),
			train.WithOptimizer("sgd", 0),
			train.WithSchedule(schedule.Constant(0.05)),
			train.WithPrecision(bf16.FP32Policy),
			train.WithLabelSmoothing(0.1),
			train.WithSeed(3),
			train.WithEpochs(epochs),
			train.WithEvalSamples(evalPer),
			train.WithEvalStrategy(strategy),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		sess.Close() // each strategy run owns its replicas' input pipelines
		tab.AddRow(strategy.Name(), round3(res.PeakAccuracy), res.EvalSerialSamples,
			res.EvalWallTime.Round(1e6), res.TotalTime.Round(1e6))
	}
	fmt.Print(tab.String())
	fmt.Printf("\nThe Estimator loop pushes %d× more evaluation work through a single\n", world)
	fmt.Println("worker per eval — the §3.3 bottleneck the distributed loop removes.")
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
