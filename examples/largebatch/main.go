// Largebatch reproduces the paper's §3.1 story at laptop scale: with a fixed
// sample budget, RMSProp's accuracy degrades as the global batch grows while
// LARS (with the linear LR scaling rule and warmup) holds up much better.
// This is the real-training counterpart of Table 2's optimizer comparison,
// one train.Session per grid cell.
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/data"
	"effnetscale/internal/metrics"
	"effnetscale/internal/schedule"
	"effnetscale/internal/train"
)

func main() {
	const (
		classes   = 8
		trainSize = 4096
		epochs    = 5
	)
	ds := data.New(data.MiniConfig(classes, trainSize, 16))

	table := metrics.NewTable(
		"Mini-scale Table 2 analogue: fixed 5-epoch budget, growing global batch",
		"Optimizer", "Global batch", "Steps", "Final train acc", "Val acc")

	for _, batch := range []int{64, 256, 1024} {
		for _, opt := range []string{"rmsprop", "lars"} {
			trainAcc, valAcc, steps := run(ds, opt, batch, epochs)
			table.AddRow(opt, batch, steps, round3(trainAcc), round3(valAcc))
		}
	}
	fmt.Print(table.String())
	fmt.Println("\nExpected shape (cf. paper Table 2): RMSProp falls off as batch grows;")
	fmt.Println("LARS with scaled LR + warmup holds accuracy at the largest batch.")
}

func run(ds *data.Dataset, opt string, globalBatch, epochs int) (trainAcc, valAcc float64, steps int) {
	const world = 4

	// RMSProp follows the §3.2 linear scaling rule — exactly what breaks it
	// at large batch. LARS gets a large, roughly batch-independent *global*
	// LR (mirroring the paper's LARS rows, whose per-256 LR halves as batch
	// doubles), warmup, polynomial decay — the large-batch recipe of §3.1–3.2.
	var sched train.Option
	if opt == "rmsprop" {
		sched = train.WithLinearScaling(0.1, 0.5, train.ExponentialDecay)
	} else {
		sched = train.WithSchedule(schedule.Warmup{Epochs: 1, Inner: schedule.Polynomial{Peak: 10, End: 0, TotalEpochs: float64(epochs), Power: 2}})
	}

	tail := train.NewTrailingAccuracy(4)
	sess, err := train.New(
		train.WithModel("pico"),
		train.WithWorld(world),
		train.WithPerReplicaBatch(globalBatch/world),
		train.WithDataset(ds),
		train.WithOptimizer(opt, 1e-5),
		sched,
		train.WithBNGroupAll(),
		train.WithLabelSmoothing(0.1),
		train.WithSeed(7),
		train.WithBNMomentum(0.9),
		train.WithEpochs(epochs),
		train.WithEvalEvery(1<<30), // evaluate once, at the end
		train.WithEvalSamples(64),
		train.WithCallbacks(tail),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	return tail.Mean(), res.PeakAccuracy, res.StepsRun
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
