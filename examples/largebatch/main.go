// Largebatch reproduces the paper's §3.1 story at laptop scale: with a fixed
// sample budget, RMSProp's accuracy degrades as the global batch grows while
// LARS (with the linear LR scaling rule and warmup) holds up much better.
// This is the real-training counterpart of Table 2's optimizer comparison.
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/metrics"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
)

func main() {
	const (
		classes   = 8
		trainSize = 4096
		epochs    = 5
	)
	ds := data.New(data.MiniConfig(classes, trainSize, 16))

	table := metrics.NewTable(
		"Mini-scale Table 2 analogue: fixed 5-epoch budget, growing global batch",
		"Optimizer", "Global batch", "Steps", "Final train acc", "Val acc")

	for _, batch := range []int{64, 256, 1024} {
		for _, opt := range []string{"rmsprop", "lars"} {
			trainAcc, valAcc, steps := run(ds, opt, batch, epochs)
			table.AddRow(opt, batch, steps, round3(trainAcc), round3(valAcc))
		}
	}
	fmt.Print(table.String())
	fmt.Println("\nExpected shape (cf. paper Table 2): RMSProp falls off as batch grows;")
	fmt.Println("LARS with scaled LR + warmup holds accuracy at the largest batch.")
}

func run(ds *data.Dataset, opt string, globalBatch, epochs int) (trainAcc, valAcc float64, steps int) {
	const world = 4
	perBatch := globalBatch / world

	var sched schedule.Schedule
	switch opt {
	case "rmsprop":
		// EfficientNet-style: a small per-256 LR linearly scaled with the
		// batch (the §3.2 rule), short warmup, exponential decay. The
		// linear rule is exactly what breaks RMSProp at large batch.
		peak := schedule.ScaledLR(0.1, globalBatch)
		sched = schedule.Warmup{Epochs: 0.5, Inner: schedule.Exponential{Peak: peak, Rate: 0.97, DecayEpochs: 2.4, Staircase: true}}
	default:
		// LARS: a large, roughly batch-independent *global* LR (mirroring
		// the paper's LARS rows, whose per-256 LR halves as batch doubles),
		// warmup, polynomial decay — the large-batch recipe of §3.1–3.2.
		sched = schedule.Warmup{Epochs: 1, Inner: schedule.Polynomial{Peak: 10, End: 0, TotalEpochs: float64(epochs), Power: 2}}
	}

	eng, err := replica.New(replica.Config{
		World:               world,
		PerReplicaBatch:     perBatch,
		Model:               "pico",
		Dataset:             ds,
		OptimizerName:       opt,
		WeightDecay:         1e-5,
		Schedule:            sched,
		BNGroupSize:         world,
		Precision:           bf16.DefaultPolicy,
		LabelSmoothing:      0.1,
		Seed:                7,
		DropoutOverride:     0,
		DropConnectOverride: 0,
		BNMomentum:          0.9,
	})
	if err != nil {
		log.Fatal(err)
	}

	total := epochs * eng.StepsPerEpoch()
	var accSum float64
	var accN int
	for s := 0; s < total; s++ {
		r := eng.Step()
		if s >= total-4 { // average the last few training batches
			accSum += r.Accuracy
			accN++
		}
	}
	return accSum / float64(accN), eng.Evaluate(64), total
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
