// Quickstart: train a tiny EfficientNet on SynthImageNet across 4 goroutine
// replicas with the paper's full recipe — LARS, linear LR scaling, warmup +
// polynomial decay, distributed batch norm, bf16 convolutions and the
// distributed train+eval loop — in under a minute on a laptop.
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/bf16"
	"effnetscale/internal/data"
	"effnetscale/internal/replica"
	"effnetscale/internal/schedule"
	"effnetscale/internal/trainloop"
)

func main() {
	// A small, learnable synthetic stand-in for ImageNet (see DESIGN.md).
	ds := data.New(data.MiniConfig(8, 2048, 32))

	const (
		replicas = 4
		perBatch = 16
		epochs   = 8
	)
	globalBatch := replicas * perBatch

	eng, err := replica.New(replica.Config{
		World:           replicas,
		PerReplicaBatch: perBatch,
		Model:           "pico",
		Dataset:         ds,
		OptimizerName:   "lars",
		WeightDecay:     1e-5,
		// Linear scaling rule + warmup + polynomial decay (§3.2). LARS
		// wants a large nominal LR — its layer-wise trust ratios scale
		// every update down (≈40·64/256 = global LR 10 here).
		Schedule:            schedule.LARSPreset(40, globalBatch, 2, epochs),
		BNGroupSize:         4, // distributed batch norm over all replicas (§3.4)
		Precision:           bf16.DefaultPolicy,
		LabelSmoothing:      0.1,
		Seed:                42,
		DropoutOverride:     -1,
		DropConnectOverride: -1,
		BNMomentum:          0.9,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quickstart: EfficientNet-Pico, %d replicas × batch %d (global %d), LARS + poly decay\n",
		replicas, perBatch, globalBatch)

	res := trainloop.Run(trainloop.Config{
		Engine:                eng,
		Epochs:                epochs,
		EvalSamplesPerReplica: 64,
		Mode:                  trainloop.Distributed,
		Progress:              func(s string) { fmt.Println(s) },
	})

	fmt.Printf("\npeak top-1 accuracy %.4f (chance %.3f) in %v\n",
		res.PeakAccuracy, 1.0/8, res.TimeToPeak.Round(1e6))
	if sync := eng.WeightsInSync(); sync != "" {
		log.Fatalf("replicas out of sync: %s", sync)
	}
	fmt.Println("replicas verified bitwise in sync ✓")
}
