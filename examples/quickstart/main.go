// Quickstart: train a tiny EfficientNet on SynthImageNet across 4 goroutine
// replicas with the paper's full recipe — LARS, linear LR scaling, warmup +
// polynomial decay, distributed batch norm, bf16 convolutions and the
// distributed train+eval loop — in under a minute on a laptop.
//
// The whole composition is one preset on the train.Session API; every choice
// can be overridden by a later option (train.WithEpochs, train.WithModel,
// train.WithData, ...).
package main

import (
	"fmt"
	"log"

	"effnetscale/internal/train"
)

func main() {
	sess, err := train.New(
		train.MiniRecipe(), // EfficientNet-Pico, 4 replicas × batch 16, LARS + poly decay
		train.WithCallbacks(train.Progress(func(s string) { fmt.Println(s) })),
	)
	if err != nil {
		log.Fatal(err)
	}

	defer sess.Close()

	fmt.Printf("quickstart: EfficientNet-Pico, %d replicas (global batch %d), LARS + poly decay\n",
		sess.Engine().World(), sess.GlobalBatch())

	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npeak top-1 accuracy %.4f (chance %.3f) in %v\n",
		res.PeakAccuracy, 1.0/8, res.TimeToPeak.Round(1e6))
	if sync := sess.Engine().WeightsInSync(); sync != "" {
		log.Fatalf("replicas out of sync: %s", sync)
	}
	fmt.Println("replicas verified bitwise in sync ✓")
}
