// Trainserve: close the train-to-serve loop end to end — train a mini
// recipe with periodic training-state snapshots, boot the batched inference
// server from the snapshot directory, serve predictions, then train further
// and watch the server hot-reload the newer snapshot without dropping
// in-flight requests.
//
// This is the serving-side dual of the paper's large-batch insight: the
// server coalesces concurrent requests into one tape-free forward
// (serve.Batcher), and the Loader's atomic model swap means a production
// server follows a live training run's snapshots with zero downtime.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"effnetscale/internal/data"
	"effnetscale/internal/serve"
	"effnetscale/internal/train"
)

// trainInto runs (or resumes) the mini recipe with periodic snapshots into
// dir. A resumed run must keep the configured length — it shapes the LR
// schedule — so the first phase pauses partway with StopAfterStep and the
// second resumes the same 4-epoch run to completion.
func trainInto(dir string, label string, extra ...train.Option) {
	opts := []train.Option{
		train.WithModel("pico"),
		train.WithWorld(2),
		train.WithPerReplicaBatch(4),
		train.WithData(data.MiniConfig(4, 64, 16)),
		train.WithOptimizer("lars", 1e-5),
		train.WithLinearScaling(20, 1, train.PolynomialDecay),
		train.WithSeed(11),
		train.WithEpochs(4),
		train.WithEvalSamples(8),
		train.WithSnapshotDir(dir),
		train.WithSnapshotEvery(4),
	}
	sess, err := train.New(append(opts, extra...)...)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d steps, peak top-1 %.4f\n", label, res.StepsRun, res.PeakAccuracy)
}

func main() {
	dir, err := os.MkdirTemp("", "effnet-trainserve-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1: train the first half of the run, snapshotting as we go.
	trainInto(dir, "initial training", train.WithCallbacks(train.StopAfterStep(16)))

	// Phase 2: boot the server from the snapshot directory. The loader
	// derives the architecture from the snapshot itself and keeps watching
	// the directory for newer ones.
	swapped := make(chan string, 1)
	loader, err := serve.NewLoader(serve.LoaderConfig{
		SnapshotDir: dir,
		Poll:        50 * time.Millisecond,
		OnSwap: func(tag string) {
			select {
			case swapped <- tag: // continued training reloads repeatedly; one signal is enough
			default:
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer loader.Close()
	batcher, err := serve.NewBatcher(serve.Config{Provider: loader, MaxBatch: 8, MaxWait: time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer batcher.Close()

	_, tag := loader.Current()
	fmt.Printf("serving: booted from %s (res %d, %d classes)\n", tag, batcher.Resolution(), batcher.Classes())

	predict := func() serve.Prediction {
		px := make([]float32, batcher.SampleLen()) // a zero image; any pixels work
		p, err := batcher.Predict(px)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	p := predict()
	fmt.Printf("serving: class %d from %s (batch %d)\n", p.Class, p.Model, p.BatchSize)

	// Phase 3: train further while the server keeps answering. The loop
	// below hammers Predict throughout the training run and the hot swap;
	// every request must succeed — in-flight batches finish on the weights
	// they captured, later ones see the new snapshot.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	served := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				predict()
				served++
			}
		}
	}()

	trainInto(dir, "continued training", train.WithResume(dir)) // writes newer snapshots

	select {
	case tag := <-swapped:
		fmt.Printf("serving: hot-reloaded %s after %d reload(s)\n", tag, loader.Reloads())
	case <-time.After(10 * time.Second):
		log.Fatal("hot reload never happened")
	}
	close(stop)
	wg.Wait()

	p = predict()
	fmt.Printf("serving: class %d now from %s; %d requests served across the swap, none dropped\n",
		p.Class, p.Model, served)
}
